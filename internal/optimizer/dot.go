package optimizer

import (
	"fmt"
	"strings"
)

// DOT renders the physical plan in Graphviz format, clustering
// operators by host (the layout of the paper's plan figures).
func (p *Plan) DOT() string {
	var b strings.Builder
	b.WriteString("digraph physical {\n  rankdir=BT;\n")
	byHost := make(map[int][]*Op)
	for _, op := range p.Ops {
		byHost[op.Host] = append(byHost[op.Host], op)
	}
	for host := 0; host < p.Hosts; host++ {
		ops := byHost[host]
		if len(ops) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_host%d {\n    label=\"host %d\";\n", host, host)
		for _, op := range ops {
			shape := "ellipse"
			switch op.Kind {
			case OpScan:
				shape = "box"
			case OpUnion:
				shape = "invtriangle"
			case OpAggregate, OpAggSub, OpAggSuper, OpWindow:
				shape = "house"
			case OpJoin:
				shape = "diamond"
			case OpOutput:
				shape = "doublecircle"
			}
			fmt.Fprintf(&b, "    o%d [shape=%s, label=%q];\n", op.ID, shape, dotOpLabel(op))
		}
		b.WriteString("  }\n")
	}
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			style := ""
			if in.Host != op.Host {
				style = " [color=red, penwidth=2]" // network edge
			}
			fmt.Fprintf(&b, "  o%d -> o%d%s;\n", in.ID, op.ID, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func dotOpLabel(op *Op) string {
	switch op.Kind {
	case OpScan:
		return fmt.Sprintf("%s p%d", op.Stream, op.Partition)
	case OpUnion:
		return "∪"
	case OpOutput:
		return "out " + op.Logical.QueryName
	default:
		name := op.Logical.QueryName
		prefix := ""
		switch op.Kind {
		case OpAggregate:
			prefix = "γ "
		case OpAggSub:
			prefix = "γ-sub "
		case OpAggSuper:
			prefix = "γ-super "
		case OpJoin:
			prefix = "⋈ "
		case OpSelProj:
			prefix = "σ/π "
		case OpWindow:
			prefix = "win "
		}
		if op.Partition >= 0 {
			return fmt.Sprintf("%s%s p%d", prefix, name, op.Partition)
		}
		return prefix + name
	}
}
