package cluster

import (
	"testing"

	"qap/internal/core"
	"qap/internal/gsql"
	"qap/internal/netgen"
	"qap/internal/optimizer"
	"qap/internal/plan"
	"qap/internal/schema"
)

// A TCP stream and a DNS-ish stream whose client column plays the role
// of TCP's source address under a different name. Both reuse the
// generator's 8-column layout (DNS maps clientIP=srcIP's column).
const crossDDL = `
TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)
DNS(time increasing, clientIP, server, qtype, rcode, size, flags, seq)`

const crossQueries = `
query talkers:
SELECT TCP.time, TCP.srcIP, DNS.server, TCP.len + DNS.size AS effort
FROM TCP JOIN DNS
WHERE TCP.time = DNS.time AND TCP.srcIP = DNS.clientIP AND TCP.seq = DNS.seq

query dns_volume:
SELECT tb, clientIP, COUNT(*) AS lookups
FROM DNS GROUP BY time/60 AS tb, clientIP`

func buildCross(t testing.TB) *plan.Graph {
	t.Helper()
	g, err := plan.Build(schema.MustParse(crossDDL), gsql.MustParseQuerySet(crossQueries))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func crossTraces(t testing.TB) map[string][]netgen.Packet {
	t.Helper()
	cfg := netgen.DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 120, 300
	cfg.SrcHosts, cfg.DstHosts = 40, 30
	a := netgen.Generate(cfg)
	cfg.Seed = 7
	b := netgen.Generate(cfg)
	return map[string][]netgen.Packet{"TCP": a.Packets, "DNS": b.Packets}
}

func runCross(t testing.TB, g *plan.Graph, ss core.StreamSets, o optimizer.Options) *Result {
	t.Helper()
	o.StreamSets = ss
	p, err := optimizer.Build(g, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(p, DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(crossTraces(t))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPerStreamCrossJoinEquivalence(t *testing.T) {
	g := buildCross(t)
	want := runCross(t, g, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1})
	if len(want.Outputs["talkers"]) == 0 || len(want.Outputs["dns_volume"]) == 0 {
		t.Fatalf("workload produced no rows: talkers=%d dns=%d",
			len(want.Outputs["talkers"]), len(want.Outputs["dns_volume"]))
	}
	// Per-stream sets from the analyzer: TCP on srcIP, DNS on
	// clientIP — position-aligned for the join, and satisfying the
	// DNS aggregation.
	per, err := core.OptimizePerStream(g, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if per.Sets.Get("TCP").IsEmpty() || per.Sets.Get("DNS").IsEmpty() {
		t.Fatalf("per-stream analysis produced %s", per.Sets)
	}
	got := runCross(t, g, per.Sets, optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true})
	for name, rows := range want.Outputs {
		wm, gm := rowMultiset(rows), rowMultiset(got.Outputs[name])
		if len(rows) != len(got.Outputs[name]) {
			t.Fatalf("%s: %d vs %d rows", name, len(rows), len(got.Outputs[name]))
		}
		for k, c := range wm {
			if gm[k] != c {
				t.Fatalf("%s: multiset mismatch", name)
			}
		}
	}
}

func TestPerStreamCrossJoinPushesDown(t *testing.T) {
	g := buildCross(t)
	per, err := core.OptimizePerStream(g, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.Build(g, nil, optimizer.Options{
		Hosts: 2, PartitionsPerHost: 2, PartialAgg: true, StreamSets: per.Sets})
	if err != nil {
		t.Fatal(err)
	}
	// The cross-stream join runs per partition; the DNS aggregation
	// runs per partition too (clientIP is in its stream's set).
	if got := p.CountKind(optimizer.OpJoin); got != 4 {
		t.Errorf("per-partition joins = %d, want 4\n%s", got, p)
	}
	if got := p.CountKind(optimizer.OpAggregate); got != 4 {
		t.Errorf("per-partition aggregates = %d, want 4\n%s", got, p)
	}
}
