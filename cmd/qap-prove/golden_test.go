package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qap"
	"qap/internal/netgen"
	"qap/internal/prove"
)

var update = flag.Bool("update-certs", false, "rewrite the certificate golden files instead of comparing")

// TestCertificateGoldens proves every example query set under the
// analysis's recommended partitioning and pins the canonical
// certificate bytes. The goldens are the CI qap-prove check: any
// change to the derivation rules, the certificate format, or the
// analysis's recommendations shows up as a diff here.
func TestCertificateGoldens(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "queries", "*.gsql"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example query sets found")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".gsql")
		t.Run(name, func(t *testing.T) {
			queries, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := qap.Load(netgen.SchemaDDL, string(queries))
			if err != nil {
				t.Fatal(err)
			}
			analysis, err := sys.Analyze(nil)
			if err != nil {
				t.Fatal(err)
			}
			cert := prove.Prove(sys.Graph, analysis.Best)
			if err := prove.Verify(sys.Graph, cert); err != nil {
				t.Fatalf("emitted certificate fails verification: %v", err)
			}
			got, err := cert.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".cert.golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run `go test ./cmd/qap-prove -update-certs` to create the goldens)", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s certificate drifted from the golden (re-run with -update-certs if intended):\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
			// The golden itself must still verify against a fresh plan:
			// the committed artifact is a checkable proof, not a blob.
			parsed, err := prove.ParseCertificate(want)
			if err != nil {
				t.Fatal(err)
			}
			if err := prove.Verify(sys.Graph, parsed); err != nil {
				t.Errorf("golden certificate fails verification: %v", err)
			}
		})
	}
}
