package live

import (
	"fmt"

	"qap/internal/exec"
)

// ProtocolVersion is bumped on any wire-incompatible change; the
// handshake rejects a peer speaking a different version.
const ProtocolVersion = 1

// Hello opens (or resumes) a session, splitter -> node.
type Hello struct {
	Version int
	// Host is the leaf island the splitter expects this node to serve.
	Host int
	// BatchSize is the engine's operator batch size; the node must
	// execute with the same one for byte-identical results.
	BatchSize int
	// ResumeLink is the last link-stream sequence the collector has
	// applied from this node; the node retransmits everything after it.
	ResumeLink uint64
	// Streams is the canonical cursor order of the run's source
	// streams (lower-case names): group Stream indexes and advance
	// tags are defined against it.
	Streams []string
	// Fingerprint identifies the plan + run configuration; a node
	// serving a different deployment refuses the session.
	Fingerprint string
}

// Welcome answers a Hello, node -> splitter.
type Welcome struct {
	Version int
	// ResumeFeed is the last feed sequence the node has executed; the
	// splitter retransmits everything after it.
	ResumeFeed uint64
	// HasResult announces that the node will ship a final Result frame
	// (remote mode) after its last link.
	HasResult bool
}

// Group is one destination partition's routed tuples within a round.
type Group struct {
	// Tag is the canonical delivery tag (the round-local sequence of
	// the group's first tuple, in the splitter's push phase).
	Tag uint64
	// Stream indexes Hello.Streams; Part is the destination partition.
	Stream int
	Part   int
	Tuples exec.Batch
}

// Round is one watermark round of a feed.
type Round struct {
	Round  int
	WM     uint64
	Adv    bool
	Flush  bool
	Groups []Group
}

// FeedMsg carries a batch of rounds for one host.
type FeedMsg struct {
	Seq    uint64
	Last   bool
	Rounds []Round
}

// ItemKind enumerates captured island-crossing deliveries; the values
// are the wire encoding.
type ItemKind uint8

// The item kinds, mirroring the simulator's link items.
const (
	ItemPush ItemKind = iota
	ItemPushBatch
	ItemAdvance
	ItemFlush
)

// Item is one captured delivery into the central island.
type Item struct {
	Round int
	Tag   uint64
	Kind  ItemKind
	// Edge is the deterministic island-crossing edge id assigned at
	// compile time.
	Edge  int
	WM    uint64
	MWM   uint64
	Tuple exec.Tuple
	Batch exec.Batch
}

// LinkMsg ships a node's captured deliveries for a range of rounds.
type LinkMsg struct {
	Seq uint64
	// Host is stamped by the receiving splitter session.
	Host    int
	Through int
	Done    bool
	Items   []Item
}

// ---- encoding ----

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// appendBatchBlob embeds a batch as a length-prefixed exec wire blob,
// so the decoder can hand the exact span to exec.DecodeBatchWire.
func appendBatchBlob(dst []byte, b exec.Batch) []byte {
	at := len(dst)
	dst = appendU32(dst, 0)
	dst = exec.AppendBatchWire(dst, b)
	n := uint32(len(dst) - at - 4)
	dst[at], dst[at+1], dst[at+2], dst[at+3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	return dst
}

func (m *Hello) encode(dst []byte) []byte {
	dst = append(dst, byte(m.Version))
	dst = appendU32(dst, uint32(m.Host))
	dst = appendU32(dst, uint32(m.BatchSize))
	dst = appendU64(dst, m.ResumeLink)
	dst = appendU16(dst, uint16(len(m.Streams)))
	for _, s := range m.Streams {
		dst = appendString(dst, s)
	}
	return appendString(dst, m.Fingerprint)
}

func (m *Welcome) encode(dst []byte) []byte {
	dst = append(dst, byte(m.Version))
	dst = appendU64(dst, m.ResumeFeed)
	flags := byte(0)
	if m.HasResult {
		flags |= 1
	}
	return append(dst, flags)
}

func (m *FeedMsg) encode(dst []byte) []byte {
	dst = appendU64(dst, m.Seq)
	flags := byte(0)
	if m.Last {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendU32(dst, uint32(len(m.Rounds)))
	for i := range m.Rounds {
		r := &m.Rounds[i]
		dst = appendU32(dst, uint32(r.Round))
		dst = appendU64(dst, r.WM)
		rf := byte(0)
		if r.Adv {
			rf |= 1
		}
		if r.Flush {
			rf |= 2
		}
		dst = append(dst, rf)
		dst = appendU32(dst, uint32(len(r.Groups)))
		for gi := range r.Groups {
			g := &r.Groups[gi]
			dst = appendU64(dst, g.Tag)
			dst = appendU16(dst, uint16(g.Stream))
			dst = appendU32(dst, uint32(g.Part))
			dst = appendBatchBlob(dst, g.Tuples)
		}
	}
	return dst
}

func (m *LinkMsg) encode(dst []byte) []byte {
	dst = appendU64(dst, m.Seq)
	flags := byte(0)
	if m.Done {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendU64(dst, uint64(int64(m.Through)))
	dst = appendU32(dst, uint32(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		dst = appendU32(dst, uint32(it.Round))
		dst = appendU64(dst, it.Tag)
		dst = append(dst, byte(it.Kind))
		dst = appendU32(dst, uint32(it.Edge))
		dst = appendU64(dst, it.WM)
		dst = appendU64(dst, it.MWM)
		switch it.Kind {
		case ItemPush:
			dst = appendBatchBlob(dst, exec.Batch{it.Tuple})
		case ItemPushBatch:
			dst = appendBatchBlob(dst, it.Batch)
		}
	}
	return dst
}

// ---- decoding ----

type protoDecoder struct {
	data []byte
	off  int
}

func (d *protoDecoder) fail(what string) error {
	return fmt.Errorf("live: truncated %s at offset %d", what, d.off)
}

func (d *protoDecoder) u8(what string) (byte, error) {
	if d.off >= len(d.data) {
		return 0, d.fail(what)
	}
	v := d.data[d.off]
	d.off++
	return v, nil
}

func (d *protoDecoder) u16(what string) (int, error) {
	if d.off+2 > len(d.data) {
		return 0, d.fail(what)
	}
	v := int(d.data[d.off])<<8 | int(d.data[d.off+1])
	d.off += 2
	return v, nil
}

func (d *protoDecoder) u32(what string) (uint32, error) {
	if d.off+4 > len(d.data) {
		return 0, d.fail(what)
	}
	p := d.data[d.off:]
	d.off += 4
	return uint32(p[0])<<24 | uint32(p[1])<<16 | uint32(p[2])<<8 | uint32(p[3]), nil
}

func (d *protoDecoder) u64(what string) (uint64, error) {
	if d.off+8 > len(d.data) {
		return 0, d.fail(what)
	}
	p := d.data[d.off:]
	d.off += 8
	return uint64(p[0])<<56 | uint64(p[1])<<48 | uint64(p[2])<<40 | uint64(p[3])<<32 |
		uint64(p[4])<<24 | uint64(p[5])<<16 | uint64(p[6])<<8 | uint64(p[7]), nil
}

func (d *protoDecoder) str(what string) (string, error) {
	n, err := d.u32(what)
	if err != nil {
		return "", err
	}
	if d.off+int(n) > len(d.data) {
		return "", d.fail(what)
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *protoDecoder) batch(what string) (exec.Batch, error) {
	n, err := d.u32(what)
	if err != nil {
		return nil, err
	}
	if d.off+int(n) > len(d.data) {
		return nil, d.fail(what)
	}
	b, err := exec.DecodeBatchWire(d.data[d.off : d.off+int(n)])
	if err != nil {
		return nil, fmt.Errorf("live: %s: %w", what, err)
	}
	d.off += int(n)
	return b, nil
}

func (d *protoDecoder) finish(what string) error {
	if d.off != len(d.data) {
		return fmt.Errorf("live: %d trailing bytes after %s", len(d.data)-d.off, what)
	}
	return nil
}

func decodeHello(data []byte) (*Hello, error) {
	d := protoDecoder{data: data}
	m := &Hello{}
	v, err := d.u8("hello version")
	if err != nil {
		return nil, err
	}
	m.Version = int(v)
	host, err := d.u32("hello host")
	if err != nil {
		return nil, err
	}
	m.Host = int(host)
	bs, err := d.u32("hello batch size")
	if err != nil {
		return nil, err
	}
	m.BatchSize = int(bs)
	if m.ResumeLink, err = d.u64("hello resume"); err != nil {
		return nil, err
	}
	ns, err := d.u16("hello stream count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < ns; i++ {
		s, err := d.str("hello stream name")
		if err != nil {
			return nil, err
		}
		m.Streams = append(m.Streams, s)
	}
	if m.Fingerprint, err = d.str("hello fingerprint"); err != nil {
		return nil, err
	}
	return m, d.finish("hello")
}

func decodeWelcome(data []byte) (*Welcome, error) {
	d := protoDecoder{data: data}
	m := &Welcome{}
	v, err := d.u8("welcome version")
	if err != nil {
		return nil, err
	}
	m.Version = int(v)
	if m.ResumeFeed, err = d.u64("welcome resume"); err != nil {
		return nil, err
	}
	flags, err := d.u8("welcome flags")
	if err != nil {
		return nil, err
	}
	m.HasResult = flags&1 != 0
	return m, d.finish("welcome")
}

func decodeFeed(data []byte) (*FeedMsg, error) {
	d := protoDecoder{data: data}
	m := &FeedMsg{}
	var err error
	if m.Seq, err = d.u64("feed seq"); err != nil {
		return nil, err
	}
	flags, err := d.u8("feed flags")
	if err != nil {
		return nil, err
	}
	m.Last = flags&1 != 0
	nr, err := d.u32("feed round count")
	if err != nil {
		return nil, err
	}
	m.Rounds = make([]Round, 0, nr)
	for i := uint32(0); i < nr; i++ {
		var r Round
		rd, err := d.u32("round index")
		if err != nil {
			return nil, err
		}
		r.Round = int(rd)
		if r.WM, err = d.u64("round watermark"); err != nil {
			return nil, err
		}
		rf, err := d.u8("round flags")
		if err != nil {
			return nil, err
		}
		r.Adv, r.Flush = rf&1 != 0, rf&2 != 0
		ng, err := d.u32("round group count")
		if err != nil {
			return nil, err
		}
		for g := uint32(0); g < ng; g++ {
			var gr Group
			if gr.Tag, err = d.u64("group tag"); err != nil {
				return nil, err
			}
			if gr.Stream, err = d.u16("group stream"); err != nil {
				return nil, err
			}
			part, err := d.u32("group partition")
			if err != nil {
				return nil, err
			}
			gr.Part = int(part)
			if gr.Tuples, err = d.batch("group tuples"); err != nil {
				return nil, err
			}
			r.Groups = append(r.Groups, gr)
		}
		m.Rounds = append(m.Rounds, r)
	}
	return m, d.finish("feed")
}

func decodeLink(data []byte) (*LinkMsg, error) {
	d := protoDecoder{data: data}
	m := &LinkMsg{}
	var err error
	if m.Seq, err = d.u64("link seq"); err != nil {
		return nil, err
	}
	flags, err := d.u8("link flags")
	if err != nil {
		return nil, err
	}
	m.Done = flags&1 != 0
	through, err := d.u64("link through")
	if err != nil {
		return nil, err
	}
	m.Through = int(int64(through))
	ni, err := d.u32("link item count")
	if err != nil {
		return nil, err
	}
	m.Items = make([]Item, 0, ni)
	for i := uint32(0); i < ni; i++ {
		var it Item
		rd, err := d.u32("item round")
		if err != nil {
			return nil, err
		}
		it.Round = int(rd)
		if it.Tag, err = d.u64("item tag"); err != nil {
			return nil, err
		}
		k, err := d.u8("item kind")
		if err != nil {
			return nil, err
		}
		it.Kind = ItemKind(k)
		edge, err := d.u32("item edge")
		if err != nil {
			return nil, err
		}
		it.Edge = int(edge)
		if it.WM, err = d.u64("item wm"); err != nil {
			return nil, err
		}
		if it.MWM, err = d.u64("item mwm"); err != nil {
			return nil, err
		}
		switch it.Kind {
		case ItemPush:
			b, err := d.batch("item tuple")
			if err != nil {
				return nil, err
			}
			if len(b) != 1 {
				return nil, fmt.Errorf("live: push item carries %d tuples", len(b))
			}
			it.Tuple = b[0]
		case ItemPushBatch:
			if it.Batch, err = d.batch("item batch"); err != nil {
				return nil, err
			}
		case ItemAdvance, ItemFlush:
		default:
			return nil, fmt.Errorf("live: unknown item kind %d", k)
		}
		m.Items = append(m.Items, it)
	}
	return m, d.finish("link")
}

// decodeSeq peeks the leading sequence number shared by feed, link,
// and result frames.
func decodeSeq(data []byte) (uint64, error) {
	d := protoDecoder{data: data}
	return d.u64("frame seq")
}
