package main

import (
	"flag"
	"testing"

	"qap/internal/cmdtest"
)

func TestUsageGolden(t *testing.T) {
	cmdtest.CheckUsage(t, "qap-node", func(fs *flag.FlagSet) { defineFlags(fs) })
}
