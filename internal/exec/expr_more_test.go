package exec

import (
	"testing"
	"testing/quick"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

func i64(v int64) sqlval.Value { return sqlval.Int(v) }

func TestIntArithmetic(t *testing.T) {
	r := res("a", "b")
	cases := []struct {
		src  string
		tp   Tuple
		want sqlval.Value
	}{
		{"a + b", Tuple{i64(-2), i64(3)}, i64(1)},
		{"a - b", Tuple{i64(-2), i64(3)}, i64(-5)},
		{"a * b", Tuple{i64(-2), i64(3)}, i64(-6)},
		{"a / b", Tuple{i64(-7), i64(2)}, i64(-3)},
		{"a % b", Tuple{i64(-7), i64(2)}, i64(-1)},
		{"a & b", Tuple{i64(6), i64(3)}, i64(2)},
		{"a | b", Tuple{i64(6), i64(1)}, i64(7)},
		{"a ^ b", Tuple{i64(6), i64(3)}, i64(5)},
		{"a << b", Tuple{i64(3), i64(2)}, i64(12)},
		{"a >> b", Tuple{i64(-8), i64(1)}, i64(-4)},
		{"a / 0", Tuple{i64(5), i64(0)}, sqlval.Null},
		{"a % 0", Tuple{i64(5), i64(0)}, sqlval.Null},
	}
	for _, c := range cases {
		f := MustCompile(gsql.MustParseExpr(c.src), r, nil)
		got := f(c.tp)
		if !equalOrBothNull(got, c.want) {
			t.Errorf("%s over %v = %v, want %v", c.src, c.tp, got, c.want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	r := res("x", "y")
	cases := []struct {
		src  string
		tp   Tuple
		want sqlval.Value
	}{
		{"x + y", Tuple{sqlval.Float(1.5), sqlval.Float(2)}, sqlval.Float(3.5)},
		{"x - y", Tuple{sqlval.Float(1.5), sqlval.Float(2)}, sqlval.Float(-0.5)},
		{"x * y", Tuple{sqlval.Float(1.5), sqlval.Float(2)}, sqlval.Float(3)},
		{"x / y", Tuple{sqlval.Float(3), sqlval.Float(2)}, sqlval.Float(1.5)},
		{"x / y", Tuple{sqlval.Float(3), sqlval.Float(0)}, sqlval.Null},
		// Mixed uint/float promotes to float.
		{"x + y", Tuple{u(2), sqlval.Float(0.5)}, sqlval.Float(2.5)},
		// Bit operations on floats are NULL.
		{"x & y", Tuple{sqlval.Float(3), sqlval.Float(2)}, sqlval.Null},
	}
	for _, c := range cases {
		f := MustCompile(gsql.MustParseExpr(c.src), r, nil)
		got := f(c.tp)
		if !equalOrBothNull(got, c.want) {
			t.Errorf("%s over %v = %v, want %v", c.src, c.tp, got, c.want)
		}
	}
}

func TestAbsAndNegKinds(t *testing.T) {
	r := res("x")
	abs := MustCompile(gsql.MustParseExpr("ABS(x)"), r, nil)
	if got := abs(Tuple{sqlval.Float(-2.5)}); !got.Equal(sqlval.Float(2.5)) {
		t.Errorf("ABS(-2.5) = %v", got)
	}
	if got := abs(Tuple{u(7)}); !got.Equal(u(7)) {
		t.Errorf("ABS(7) = %v", got)
	}
	if !abs(Tuple{sqlval.Str("x")}).IsNull() {
		t.Error("ABS of string should be NULL")
	}
	neg := MustCompile(gsql.MustParseExpr("-x"), r, nil)
	if got := neg(Tuple{sqlval.Float(2)}); !got.Equal(sqlval.Float(-2)) {
		t.Errorf("-2.0 = %v", got)
	}
	if !neg(Tuple{sqlval.Null}).IsNull() {
		t.Error("-NULL should be NULL")
	}
	bitnot := MustCompile(gsql.MustParseExpr("~x"), r, nil)
	if !bitnot(Tuple{sqlval.Str("a")}).IsNull() {
		t.Error("~string should be NULL")
	}
}

func TestParamsGetCaseInsensitive(t *testing.T) {
	p := Params{"Pattern": u(5)}
	if v, ok := p.Get("PATTERN"); !ok || !v.Equal(u(5)) {
		t.Error("case-insensitive parameter lookup failed")
	}
	if _, ok := p.Get("other"); ok {
		t.Error("missing parameter should not resolve")
	}
	var nilP Params
	if _, ok := nilP.Get("x"); ok {
		t.Error("nil params should resolve nothing")
	}
}

func TestCompileAllPropagatesErrors(t *testing.T) {
	r := res("a")
	exprs := []gsql.Expr{
		gsql.MustParseExpr("a + 1"),
		gsql.MustParseExpr("nosuch"),
	}
	if _, err := CompileAll(exprs, r, nil); err == nil {
		t.Error("CompileAll should surface resolution errors")
	}
	fs, err := CompileAll(exprs[:1], r, nil)
	if err != nil || len(fs) != 1 {
		t.Errorf("CompileAll = %v, %v", fs, err)
	}
}

// TestEvalMatchesGoSemanticsProperty: uint arithmetic agrees with Go's
// for random operands.
func TestEvalMatchesGoSemanticsProperty(t *testing.T) {
	r := res("a", "b")
	add := MustCompile(gsql.MustParseExpr("a + b"), r, nil)
	div := MustCompile(gsql.MustParseExpr("a / b"), r, nil)
	and := MustCompile(gsql.MustParseExpr("a & b"), r, nil)
	f := func(a, b uint64) bool {
		tp := Tuple{u(a), u(b)}
		if got, _ := add(tp).AsUint(); got != a+b {
			return false
		}
		if b != 0 {
			if got, _ := div(tp).AsUint(); got != a/b {
				return false
			}
		} else if !div(tp).IsNull() {
			return false
		}
		got, _ := and(tp).AsUint()
		return got == a&b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{u(1), sqlval.Str("x"), sqlval.Null}
	if got := tp.String(); got != `(1, "x", NULL)` {
		t.Errorf("Tuple.String() = %q", got)
	}
}

func TestDiscardAndUnionAccessors(t *testing.T) {
	var d Discard
	d.Push(Tuple{u(1)})
	d.Advance(5)
	d.Flush()
	un := NewUnion(3, &Collector{})
	if un.Inputs() != 3 {
		t.Errorf("Inputs() = %d", un.Inputs())
	}
}
