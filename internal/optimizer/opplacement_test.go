package optimizer

import (
	"testing"
)

func TestOperatorPlacementSpreadsNodes(t *testing.T) {
	g := buildGraph(t, complexSet)
	p, err := BuildOperatorPlacement(g, Options{Hosts: 3, PartitionsPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each of the three query nodes lands on its own host, centralized
	// (no per-partition copies).
	hosts := map[string]int{}
	for _, op := range p.Ops {
		if op.Logical == nil || op.Kind == OpScan || op.Kind == OpOutput {
			continue
		}
		if op.Partition != -1 {
			t.Errorf("%s should be centralized", op.Label())
		}
		hosts[op.Logical.QueryName] = op.Host
	}
	if len(hosts) != 3 {
		t.Fatalf("placed %d nodes, want 3", len(hosts))
	}
	if hosts["flows"] == hosts["heavy_flows"] && hosts["heavy_flows"] == hosts["flow_pairs"] {
		t.Error("operators should spread across hosts")
	}
	// Topological order still holds.
	pos := make(map[*Op]int)
	for i, op := range p.Ops {
		pos[op] = i
	}
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			if pos[in] >= pos[op] {
				t.Fatalf("op %s before its input %s", op.Label(), in.Label())
			}
		}
	}
}

func TestOperatorPlacementValidation(t *testing.T) {
	g := buildGraph(t, flowsOnly)
	if _, err := BuildOperatorPlacement(g, Options{Hosts: 0, PartitionsPerHost: 1}); err == nil {
		t.Error("zero hosts should fail")
	}
	if _, err := BuildOperatorPlacement(g, Options{Hosts: 1, PartitionsPerHost: 0}); err == nil {
		t.Error("zero partitions should fail")
	}
}
