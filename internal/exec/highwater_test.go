package exec

import (
	"testing"

	"qap/internal/gsql"
)

// TestGroupHighWater: the high water is the peak live group count —
// sampled just before emission — not the post-emit residue, since the
// peak is what a warm-started run must presize for.
func TestGroupHighWater(t *testing.T) {
	aggs := []AggColumn{{Factory: mustFactory(t, "COUNT")}}
	agg := buildColAgg(t, Discard{}, aggs, []*ColExpr{nil}, nil)

	// Epoch 0 (time 0, wm < 16): 8 distinct srcIP groups.
	var rows Batch
	for i := 0; i < 8; i++ {
		rows = append(rows, Tuple{u(0), u(uint64(i)), u(0), u(0), u(1)})
	}
	agg.PushBatch(rows)
	if hw := agg.GroupHighWater(); hw != 8 {
		t.Fatalf("high water = %d, want 8", hw)
	}
	// Advance past epoch 0: all 8 emit; live count drops to 0 but the
	// high water must hold.
	agg.Advance(16)
	if n := agg.GroupCount(); n != 0 {
		t.Fatalf("live groups after advance = %d, want 0", n)
	}
	if hw := agg.GroupHighWater(); hw != 8 {
		t.Fatalf("high water after emit = %d, want 8", hw)
	}
	// Epoch 1 with fewer groups must not lower it; more must raise it.
	rows = rows[:0]
	for i := 0; i < 12; i++ {
		rows = append(rows, Tuple{u(16), u(uint64(i)), u(0), u(0), u(1)})
	}
	agg.PushBatch(rows)
	agg.Flush()
	if hw := agg.GroupHighWater(); hw != 12 {
		t.Fatalf("high water after flush = %d, want 12", hw)
	}
}

// TestColRowInterleave: pushing rows after a columnar batch forces
// colSyncPending — the pending columnar groups must register in the
// map before the row path updates them, and the merged result must
// match a pure row-path run byte for byte.
func TestColRowInterleave(t *testing.T) {
	r := colTestResolver
	aggs := []AggColumn{
		{Factory: mustFactory(t, "MIN"), Arg: MustCompile(gsql.MustParseExpr("len"), r, nil)},
	}
	colArgs := []*ColExpr{colPtr(mustCompileCol(t, "len", r, nil))}
	var outRef, outMix Collector
	ref := buildColAgg(t, &outRef, aggs, colArgs, nil)
	mix := buildColAgg(t, &outMix, aggs, colArgs, nil)

	first, second := colTestRows(64), colTestRows(64)
	var cb ColBatch
	if !cb.SetFromRows(first) {
		t.Fatal("SetFromRows failed")
	}
	mix.PushCols(&cb) // MIN is map-backed: groups land in colPending
	if len(mix.colPending) == 0 {
		t.Fatal("columnar push left no pending groups; interleave not exercised")
	}
	mix.PushBatch(second) // row path must sync pending groups first

	ref.PushBatch(first)
	ref.PushBatch(second)

	ref.Flush()
	mix.Flush()
	diffBatches(t, "interleaved push", outRef.Rows, outMix.Rows)
}
