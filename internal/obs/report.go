package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RunReport is the machine-readable record of one run (or one
// analysis): the plan, per-operator stats, per-host metrics, search
// instrumentation, and wall-clock timing.
//
// Determinism contract: every field outside Timing is a pure function
// of the inputs (trace, plan, configuration other than worker count).
// Two reports of the same run differ only under the "timing" key, so
// Canonical() — or deleting that key from the JSON — yields
// byte-identical documents for any worker count.
type RunReport struct {
	SchemaVersion  int          `json:"schema_version"`
	DurationSec    float64      `json:"duration_sec"`
	CapacityPerSec float64      `json:"capacity_per_sec"`
	Plan           *PlanInfo    `json:"plan,omitempty"`
	Nodes          []NodeReport `json:"nodes,omitempty"`
	Hosts          []HostReport `json:"hosts,omitempty"`
	// LoadWindowSec and LoadSeries are the online monitoring section:
	// per-host counter deltas per LoadWindowSec of trace time,
	// present only when the run enabled load monitoring. The series
	// is deterministic (bit-equal across engines and worker counts).
	LoadWindowSec int           `json:"load_window_sec,omitempty"`
	LoadSeries    []LoadWindow  `json:"load_series,omitempty"`
	Search        *SearchReport `json:"search,omitempty"`
	Timing        *Timing       `json:"timing,omitempty"`
}

// Canonical returns a shallow copy with the nondeterministic Timing
// section removed, the form differential tests compare byte for byte.
func (r *RunReport) Canonical() *RunReport {
	cp := *r
	cp.Timing = nil
	return &cp
}

// JSON renders the report as indented JSON with a trailing newline.
// encoding/json emits struct fields in declaration order, so the bytes
// are deterministic.
func (r *RunReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// fnum renders a float the way Prometheus text exposition expects,
// with the shortest exact representation.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelEscape escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and newline take backslash escapes;
// everything else — including non-ASCII UTF-8 — passes through as-is.
// Go's %q is not a substitute: it emits \xNN/\uNNNN escapes the
// exposition format does not define, so a query name like "häufig"
// would render as an unparseable label value.
func labelEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// label renders one name="value" pair with proper value escaping.
func label(name, value string) string {
	return name + `="` + labelEscape(value) + `"`
}

// Prometheus renders the report in the Prometheus text exposition
// format (metric families sorted, nodes by ID, hosts by index), for
// scraping or for eyeballing a run. Timing is included as gauges when
// present; deterministic consumers should ignore the qap_timing_*
// family.
func (r *RunReport) Prometheus() string {
	var b strings.Builder
	emit := func(name, typ, help string, lines []string) {
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}

	if r.DurationSec > 0 {
		emit("qap_run_duration_seconds", "gauge", "Simulated trace duration.",
			[]string{"qap_run_duration_seconds " + fnum(r.DurationSec)})
	}

	nodes := append([]NodeReport(nil), r.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	nodeCounter := func(name, help string, f func(n *NodeReport) (string, bool)) {
		var lines []string
		for i := range nodes {
			n := &nodes[i]
			v, ok := f(n)
			if !ok {
				continue
			}
			lines = append(lines, name+"{"+
				label("id", strconv.Itoa(n.ID))+","+
				label("kind", n.Kind)+","+
				label("query", n.Query)+","+
				label("host", strconv.Itoa(n.Host))+"} "+v)
		}
		emit(name, "counter", help, lines)
	}
	nodeCounter("qap_node_rows_in", "Tuples delivered to the operator.",
		func(n *NodeReport) (string, bool) { return strconv.FormatInt(n.RowsIn, 10), true })
	nodeCounter("qap_node_rows_out", "Tuples emitted by the operator.",
		func(n *NodeReport) (string, bool) { return strconv.FormatInt(n.RowsOut, 10), true })
	nodeCounter("qap_node_advances", "Watermark deliveries to the operator.",
		func(n *NodeReport) (string, bool) { return strconv.FormatInt(n.Advances, 10), true })
	nodeCounter("qap_node_flushes", "End-of-stream flush deliveries to the operator.",
		func(n *NodeReport) (string, bool) { return strconv.FormatInt(n.Flushes, 10), true })
	nodeCounter("qap_node_cpu_units", "Work units charged to the operator.",
		func(n *NodeReport) (string, bool) { return fnum(n.CPUUnits), true })
	nodeCounter("qap_node_net_tuples_in", "Cross-host tuple arrivals at the operator.",
		func(n *NodeReport) (string, bool) { return strconv.FormatInt(n.NetTuplesIn, 10), n.NetTuplesIn > 0 })
	nodeCounter("qap_node_ipc_tuples_in", "Same-host cross-process tuple arrivals at the operator.",
		func(n *NodeReport) (string, bool) { return strconv.FormatInt(n.IPCTuplesIn, 10), n.IPCTuplesIn > 0 })

	hosts := append([]HostReport(nil), r.Hosts...)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].Host < hosts[j].Host })
	hostMetric := func(name, typ, help string, f func(h *HostReport) string) {
		var lines []string
		for i := range hosts {
			h := &hosts[i]
			lines = append(lines, name+"{"+label("host", strconv.Itoa(h.Host))+"} "+f(h))
		}
		emit(name, typ, help, lines)
	}
	hostMetric("qap_host_cpu_units", "counter", "Work units charged to the host.",
		func(h *HostReport) string { return fnum(h.CPUUnits) })
	hostMetric("qap_host_cpu_load_pct", "gauge", "Host CPU utilization percentage.",
		func(h *HostReport) string { return fnum(h.CPULoadPct) })
	hostMetric("qap_host_net_tuples_in", "counter", "Cross-host tuple arrivals.",
		func(h *HostReport) string { return strconv.FormatInt(h.NetTuplesIn, 10) })
	hostMetric("qap_host_net_bytes_in", "counter", "Cross-host byte arrivals.",
		func(h *HostReport) string { return strconv.FormatInt(h.NetBytesIn, 10) })
	hostMetric("qap_host_ipc_tuples_in", "counter", "Same-host cross-process tuple arrivals.",
		func(h *HostReport) string { return strconv.FormatInt(h.IPCTuplesIn, 10) })
	hostMetric("qap_host_tuples", "counter", "Tuples delivered to operators on the host.",
		func(h *HostReport) string { return strconv.FormatInt(h.Tuples, 10) })

	if len(r.LoadSeries) > 0 {
		windowMetric := func(name, help string, f func(h *HostWindow) string) {
			var lines []string
			for wi := range r.LoadSeries {
				w := &r.LoadSeries[wi]
				for hi := range w.Hosts {
					h := &w.Hosts[hi]
					lines = append(lines, name+"{"+
						label("host", strconv.Itoa(h.Host))+","+
						label("window", strconv.Itoa(w.Window))+"} "+f(h))
				}
			}
			emit(name, "gauge", help, lines)
		}
		emit("qap_host_window_seconds", "gauge", "Load-monitoring window length in trace seconds.",
			[]string{"qap_host_window_seconds " + strconv.Itoa(r.LoadWindowSec)})
		windowMetric("qap_host_window_cpu_units", "Work units charged to the host within the window.",
			func(h *HostWindow) string { return fnum(h.CPUUnits) })
		windowMetric("qap_host_window_net_tuples_in", "Cross-host tuple arrivals within the window.",
			func(h *HostWindow) string { return strconv.FormatInt(h.NetTuplesIn, 10) })
		windowMetric("qap_host_window_net_bytes_in", "Cross-host byte arrivals within the window.",
			func(h *HostWindow) string { return strconv.FormatInt(h.NetBytesIn, 10) })
	}

	if s := r.Search; s != nil {
		emit("qap_search_candidates_enumerated", "counter", "Candidate subsets recorded by the search.",
			[]string{"qap_search_candidates_enumerated " + strconv.FormatInt(s.Enumerated, 10)})
		emit("qap_search_sets_evaluated", "counter", "Distinct partitioning sets costed.",
			[]string{"qap_search_sets_evaluated " + strconv.FormatInt(s.UniqueSets, 10)})
		emit("qap_search_candidates_deduped", "counter", "Candidates sharing an already-costed set.",
			[]string{"qap_search_candidates_deduped " + strconv.FormatInt(s.Deduped, 10)})
		emit("qap_search_pruned", "counter", "Expansion steps pruned before recording.",
			[]string{"qap_search_pruned " + strconv.FormatInt(s.Pruned, 10)})
		emit("qap_search_cost_cache_hits", "counter", "Cost-model memo-cache hits.",
			[]string{"qap_search_cost_cache_hits " + strconv.FormatInt(s.CacheHits, 10)})
		var workers []string
		for w, n := range s.PerWorkerEvals {
			workers = append(workers, fmt.Sprintf("qap_search_worker_evals{%s} %d",
				label("worker", strconv.Itoa(w)), n))
		}
		emit("qap_search_worker_evals", "counter", "Set evaluations per search worker.", workers)
	}

	if t := r.Timing; t != nil {
		emit("qap_timing_wall_nanos", "gauge", "Wall-clock run time (nondeterministic).",
			[]string{"qap_timing_wall_nanos " + strconv.FormatInt(t.WallNanos, 10)})
		emit("qap_timing_workers", "gauge", "Configured worker count.",
			[]string{"qap_timing_workers " + strconv.Itoa(t.Workers)})
	}
	return b.String()
}

// BenchSeries is one measured line of a benchmark figure.
type BenchSeries struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// BenchFigure is one regenerated evaluation figure in a BenchReport.
type BenchFigure struct {
	ID     string        `json:"id"`
	Title  string        `json:"title"`
	Metric string        `json:"metric"`
	Hosts  []int         `json:"hosts"`
	Series []BenchSeries `json:"series"`
}

// BenchConfig records the knobs a benchmark ran under.
type BenchConfig struct {
	RatePPS     int   `json:"rate_pps"`
	DurationSec int   `json:"duration_sec"`
	MaxHosts    int   `json:"max_hosts"`
	Seed        int64 `json:"seed"`
	Workers     int   `json:"workers"`
}

// ExecBenchRow is one batch size's measurement in an ExecBenchReport.
// Every field except BatchSize is a wall-clock or allocator fact about
// the measuring host; the canonical query output is identical across
// rows by the engine's determinism contract.
type ExecBenchRow struct {
	BatchSize int `json:"batch_size"`
	// Columnar marks a measurement of the columnar batch execution
	// path; absent/false rows measured the row paths.
	Columnar     bool    `json:"columnar,omitempty"`
	NanosPerRun  int64   `json:"nanos_per_run"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	BytesPerRun  uint64  `json:"bytes_per_run"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	// SpeedupVsScalar and AllocRatioVsScalar compare this row against
	// the batch-size-1 row of the same report (1.0 for that row).
	SpeedupVsScalar    float64 `json:"speedup_vs_scalar"`
	AllocRatioVsScalar float64 `json:"alloc_ratio_vs_scalar"`
}

// ExecBenchReport is the machine-readable BENCH_exec.json emitted by
// qap-bench -exec: the batched-vs-scalar hot-path trajectory on the
// Figure 8 workload. The gate fields record the acceptance bar the
// batched path is held to (>= GateMinSpeedup rows/sec at
// <= GateMaxAllocRatio allocs/op versus batch size 1).
type ExecBenchReport struct {
	SchemaVersion     int            `json:"schema_version"`
	Name              string         `json:"name"`
	Config            BenchConfig    `json:"config"`
	Rows              []ExecBenchRow `json:"rows"`
	RowsPerRun        int            `json:"rows_per_run"`
	RunsPerBatchSize  int            `json:"runs_per_batch_size"`
	GateMinSpeedup    float64        `json:"gate_min_speedup"`
	GateMaxAllocRatio float64        `json:"gate_max_alloc_ratio"`
	GateMet           bool           `json:"gate_met"`
	// The columnar gate holds the columnar rows (Columnar == true) to
	// a stricter bar versus the same scalar baseline. The fields are
	// zero in reports generated before the columnar path existed;
	// qap-bench -check enforces the gate only when the thresholds are
	// present.
	GateMinColumnarSpeedup    float64 `json:"gate_min_columnar_speedup,omitempty"`
	GateMaxColumnarAllocRatio float64 `json:"gate_max_columnar_alloc_ratio,omitempty"`
	ColumnarGateMet           bool    `json:"columnar_gate_met,omitempty"`
}

// DriftWindowRow is one monitoring window of a DriftBenchReport: the
// measured max-host network rate with the static plan versus the
// adaptive controller over the same drifting trace.
type DriftWindowRow struct {
	Window               int     `json:"window"`
	StartSec             uint64  `json:"start_sec"`
	StaticMaxHostBps     float64 `json:"static_max_host_bps"`
	AdaptiveMaxHostBps   float64 `json:"adaptive_max_host_bps"`
	AdaptiveUsesFinalSet bool    `json:"adaptive_uses_final_set"`
}

// DriftBenchReport is the machine-readable BENCH_drift.json emitted by
// qap-bench -drift: the adaptive-repartitioning experiment over a
// skew-shift trace. Everything here except nothing is deterministic —
// the whole report is a pure function of the scenario config.
type DriftBenchReport struct {
	SchemaVersion int     `json:"schema_version"`
	Name          string  `json:"name"`
	LoadWindowSec int     `json:"load_window_sec"`
	TriggerFactor float64 `json:"trigger_factor"`
	// Bound and NewBound are the Section 4.2.1 predicted max-host
	// network rates (bytes/sec) for the initial and post-switch sets
	// under their respective statistics.
	Bound    float64 `json:"bound_bps"`
	NewBound float64 `json:"new_bound_bps"`
	// TriggerWindow is the monitoring window whose measured load
	// first exceeded TriggerFactor×Bound (-1: never fired).
	TriggerWindow int     `json:"trigger_window"`
	TriggerRate   float64 `json:"trigger_rate_bps"`
	SwitchTimeSec uint64  `json:"switch_time_sec"`
	InitialSet    string  `json:"initial_set"`
	FinalSet      string  `json:"final_set"`
	Repartitioned bool    `json:"repartitioned"`
	// PostSwitchPeakBps is the adaptive run's peak max-host rate in
	// the windows after the switch; WithinBoundAfterSwitch records
	// whether it stays under TriggerFactor×NewBound.
	PostSwitchPeakBps      float64          `json:"post_switch_peak_bps"`
	WithinBoundAfterSwitch bool             `json:"within_bound_after_switch"`
	Rows                   []DriftWindowRow `json:"rows"`
}

// BenchReport is the machine-readable BENCH_<name>.json emitted by
// qap-bench: the figure series (deterministic) plus the wall-clock cost
// of producing them (the perf trajectory).
type BenchReport struct {
	SchemaVersion int           `json:"schema_version"`
	Name          string        `json:"name"`
	Config        BenchConfig   `json:"config"`
	Figures       []BenchFigure `json:"figures"`
	// WallNanos is the wall-clock time the experiment took; with
	// Config it is the measured simulator throughput over PRs.
	WallNanos int64 `json:"wall_nanos"`
	// SimulatedPacketsPerSec is trace packets processed per wall
	// second across every configuration the experiment ran.
	SimulatedPacketsPerSec float64 `json:"simulated_packets_per_sec"`
}
