package exec

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"qap/internal/sqlval"
)

// wireSampleBatch is a batch covering every value kind, including the
// float edge cases that text encodings mangle (NaN, ±Inf, -0, ULP
// neighbors) and empty/non-ASCII strings.
func wireSampleBatch() Batch {
	return Batch{
		{sqlval.Null, sqlval.Uint(0), sqlval.Uint(math.MaxUint64), sqlval.Int(-1)},
		{sqlval.Int(math.MinInt64), sqlval.Int(math.MaxInt64)},
		{sqlval.Float(0), sqlval.Float(math.Copysign(0, -1)), sqlval.Float(math.NaN()),
			sqlval.Float(math.Inf(1)), sqlval.Float(math.Inf(-1)),
			sqlval.Float(1.0000000000000002), sqlval.Float(-1.7976931348623157e308)},
		{sqlval.Bool(true), sqlval.Bool(false)},
		{sqlval.Str(""), sqlval.Str("srcIP"), sqlval.Str("αβγ\x00\xff")},
		{}, // the empty tuple is legal on the wire
	}
}

// sameWireValue compares decoded against original bit-exactly: floats
// by their IEEE bits (NaN == NaN on the wire), everything else by kind
// and payload.
func sameWireValue(a, b sqlval.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == sqlval.KindFloat {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return math.Float64bits(af) == math.Float64bits(bf)
	}
	return reflect.DeepEqual(a, b)
}

func sameWireBatch(t *testing.T, want, got Batch) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("tuple count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("tuple %d: column count want %d, got %d", i, len(want[i]), len(got[i]))
		}
		for c := range want[i] {
			if !sameWireValue(want[i][c], got[i][c]) {
				t.Fatalf("tuple %d col %d: want %v, got %v", i, c, want[i][c], got[i][c])
			}
		}
	}
}

// TestWireRoundTripSample: the codec is the identity on a batch
// covering every kind and the float edge cases, and the re-encoding is
// byte-identical (the canonical fixed point).
func TestWireRoundTripSample(t *testing.T) {
	b := wireSampleBatch()
	enc := AppendBatchWire(nil, b)
	dec, err := DecodeBatchWire(enc)
	if err != nil {
		t.Fatal(err)
	}
	sameWireBatch(t, b, dec)
	re := AppendBatchWire(nil, dec)
	if !bytes.Equal(enc, re) {
		t.Fatal("re-encoding a decoded batch changed the bytes")
	}
}

// TestWireRoundTripGenerated is the property over realistic traffic:
// tuples built exactly like the live splitter builds them (a
// deterministic packet-shaped generator over the TCP schema's column
// mix) must survive the wire bit-exactly at every batch size,
// including ragged final chunks.
//
// The generator lives here rather than importing netgen: exec is
// below netgen in the dependency order.
func TestWireRoundTripGenerated(t *testing.T) {
	rng := uint64(1)
	next := func() uint64 { // xorshift64
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	mkTuple := func() Tuple {
		return Tuple{
			sqlval.Uint(next() % 1000),       // time
			sqlval.Uint(next() & 0xFFFFFFFF), // srcIP
			sqlval.Uint(next() & 0xFFFFFFFF), // destIP
			sqlval.Uint(next() & 0xFFFF),     // srcPort
			sqlval.Uint(next() & 0xFFFF),     // destPort
			sqlval.Uint(next() % 1500),       // len
			sqlval.Uint(next()),              // seq
			sqlval.Uint(next() & 0xFF),       // flags
		}
	}
	for _, n := range []int{0, 1, 7, 256, 1024} {
		b := make(Batch, 0, n)
		for i := 0; i < n; i++ {
			b = append(b, mkTuple())
		}
		enc := AppendBatchWire(nil, b)
		dec, err := DecodeBatchWire(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sameWireBatch(t, b, dec)
		if re := AppendBatchWire(nil, dec); !bytes.Equal(enc, re) {
			t.Fatalf("n=%d: re-encoding changed the bytes", n)
		}
	}
}

// TestWireRejectsTruncation: every strict prefix of a valid encoding
// must be rejected (no partial decode), and so must trailing garbage.
// Every rejection must be a positioned *WireError.
func TestWireRejectsTruncation(t *testing.T) {
	enc := AppendBatchWire(nil, wireSampleBatch())
	for n := 0; n < len(enc); n++ {
		_, err := DecodeBatchWire(enc[:n])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(enc))
		}
		we, ok := err.(*WireError)
		if !ok {
			t.Fatalf("prefix %d: error is %T, want *WireError", n, err)
		}
		if we.Offset < 0 || we.Offset > n {
			t.Fatalf("prefix %d: error offset %d out of range", n, we.Offset)
		}
	}
	trailing := append(append([]byte(nil), enc...), 0)
	if _, err := DecodeBatchWire(trailing); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

// TestWireRejectsOversized: the wire limits bound every
// attacker-controlled length before it sizes an allocation.
func TestWireRejectsOversized(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"tuples", appendWireU32(nil, MaxWireTuples+1)},
		{"cols", append(appendWireU32(nil, 1), 0xFF, 0xFF)},
		{"string", append(append(append(appendWireU32(nil, 1),
			0, 1), byte(sqlval.KindString)), appendWireU32(nil, MaxWireString+1)...)},
	}
	for _, tc := range cases {
		if _, err := DecodeBatchWire(tc.data); err == nil {
			t.Errorf("%s: oversized input decoded without error", tc.name)
		}
	}
}

// TestWireRejectsNonCanonical: inputs with no canonical preimage —
// bool bytes other than 0/1, unknown kinds — must be rejected, or
// encode(decode(x)) == x breaks.
func TestWireRejectsNonCanonical(t *testing.T) {
	// One single-column tuple with a bool value of 2.
	bad := append(appendWireU32(nil, 1), 0, 1, byte(sqlval.KindBool), 2)
	if _, err := DecodeBatchWire(bad); err == nil {
		t.Error("non-canonical bool byte decoded without error")
	}
	// Unknown kind byte.
	bad = append(appendWireU32(nil, 1), 0, 1, 0xEE)
	if _, err := DecodeBatchWire(bad); err == nil {
		t.Error("unknown value kind decoded without error")
	}
}

// TestWireKindsPinned pins the sqlval.Kind numbering the codec puts on
// the wire. Renumbering sqlval is a wire break: this test is the tripwire.
func TestWireKindsPinned(t *testing.T) {
	pins := []struct {
		kind sqlval.Kind
		want byte
	}{
		{sqlval.KindNull, 0},
		{sqlval.KindUint, 1},
		{sqlval.KindInt, 2},
		{sqlval.KindFloat, 3},
		{sqlval.KindBool, 4},
		{sqlval.KindString, 5},
	}
	for _, p := range pins {
		if byte(p.kind) != p.want {
			t.Errorf("sqlval kind %v renumbered to %d (wire pins %d); bump the live ProtocolVersion", p.kind, byte(p.kind), p.want)
		}
	}
}

// TestWireDecodedTuplesAreClamped: decoded tuples must be
// capacity-clamped so appending to one cannot clobber its slab
// neighbor (the immutable-tuple contract).
func TestWireDecodedTuplesAreClamped(t *testing.T) {
	b := Batch{{sqlval.Uint(1)}, {sqlval.Uint(2)}}
	dec, err := DecodeBatchWire(AppendBatchWire(nil, b))
	if err != nil {
		t.Fatal(err)
	}
	_ = append(dec[0], sqlval.Uint(99)) // must copy, not overwrite dec[1][0]
	if u, _ := dec[1][0].AsUint(); u != 2 {
		t.Fatal("append through a decoded tuple clobbered its neighbor")
	}
}

// FuzzBatchCodec holds the codec to its canonical fixed point: any
// input that decodes must re-encode to the identical bytes, and the
// decoded batch must survive a second round trip.
func FuzzBatchCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendWireU32(nil, 0))
	f.Add(AppendBatchWire(nil, wireSampleBatch()))
	f.Add(AppendBatchWire(nil, Batch{{sqlval.Uint(7), sqlval.Str("x")}}))
	f.Add(append(appendWireU32(nil, 1), 0, 1, byte(sqlval.KindBool), 2))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatchWire(data)
		if err != nil {
			// Rejected input must carry a positioned error.
			if _, ok := err.(*WireError); !ok {
				t.Fatalf("decode error is %T, want *WireError: %v", err, err)
			}
			return
		}
		re := AppendBatchWire(nil, b)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode accepted non-canonical input:\n in:  %x\n out: %x", data, re)
		}
		b2, err := DecodeBatchWire(re)
		if err != nil {
			t.Fatalf("re-encoded bytes failed to decode: %v", err)
		}
		if len(b2) != len(b) {
			t.Fatalf("round trip changed tuple count: %d vs %d", len(b), len(b2))
		}
	})
}
