// Package obs is the deterministic observability layer: plain counter
// structs the execution engine and the partitioning search accumulate
// into, and machine-readable renderings of a run (JSON run reports,
// Prometheus-style text).
//
// The package draws a hard line between two kinds of data:
//
//   - Deterministic counters (OpStats, SearchStats except its
//     wall-clock spans, HostReport, NodeReport): pure functions of the
//     input trace and the plan. The cluster engine shards them per
//     execution island and merges shards in a fixed order, so they are
//     bit-equal for any worker count — the same guarantee the engine
//     already makes for query outputs and host metrics.
//
//   - Wall-clock timing (Timing, SearchStats.EnumerateNanos/CostNanos):
//     measured with time.Now and kept strictly outside deterministic
//     state. In a RunReport every nondeterministic or
//     configuration-varying field lives under the single top-level
//     "timing" JSON key; strip that one key and two reports of the same
//     trace are byte-identical regardless of worker count.
//
// obs deliberately imports nothing from the rest of the repository so
// that every layer (core, cluster, the root package, the cmds) can
// depend on it without cycles.
package obs

import (
	"encoding/json"
	"os"
)

// SchemaVersion is the current version of the JSON report formats.
// Bump it when a field changes meaning or is removed; adding fields is
// backward compatible and does not bump.
const SchemaVersion = 1

// OpStats holds one physical operator's deterministic counters. All
// fields are accumulated on the operator's execution island, in the
// engine's canonical event order, so they are bit-equal (including the
// float64 CPU sum) for any worker count.
type OpStats struct {
	// RowsIn counts tuples delivered to the operator's input ports
	// (for a join: probes into either hash table).
	RowsIn int64 `json:"rows_in"`
	// RowsOut counts tuples the operator emitted (for a join: matches
	// plus outer-join padding; for a window: flushed window results).
	RowsOut int64 `json:"rows_out"`
	// Advances counts watermark deliveries to the operator's inputs.
	Advances int64 `json:"advances"`
	// Flushes counts end-of-stream flush deliveries to the operator's
	// inputs (a window operator's final pane flushes ride on these and
	// on Advances).
	Flushes int64 `json:"flushes"`
	// CPUUnits is the work charged to the operator: its per-tuple
	// operator cost plus any IPC/remote transfer surcharge.
	CPUUnits float64 `json:"cpu_units"`
	// NetTuplesIn / NetBytesIn count arrivals that crossed hosts.
	NetTuplesIn int64 `json:"net_tuples_in"`
	NetBytesIn  int64 `json:"net_bytes_in"`
	// IPCTuplesIn counts same-host arrivals that crossed a process
	// boundary.
	IPCTuplesIn int64 `json:"ipc_tuples_in"`
}

// Add accumulates o into s.
func (s *OpStats) Add(o *OpStats) {
	s.RowsIn += o.RowsIn
	s.RowsOut += o.RowsOut
	s.Advances += o.Advances
	s.Flushes += o.Flushes
	s.CPUUnits += o.CPUUnits
	s.NetTuplesIn += o.NetTuplesIn
	s.NetBytesIn += o.NetBytesIn
	s.IPCTuplesIn += o.IPCTuplesIn
}

// NodeReport is one physical operator's identity plus its measured
// stats in a RunReport.
type NodeReport struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"`
	// Query is the logical query node the operator implements, or the
	// scanned stream name for scans.
	Query string `json:"query,omitempty"`
	Host  int    `json:"host"`
	// Partition is the stream partition served, or -1 for host-level
	// and central operators.
	Partition int `json:"partition"`
	OpStats
	// PassRate is RowsOut/RowsIn (0 when no input): the measured
	// selectivity of a select/project, the match rate of a join, the
	// reduction factor of an aggregation.
	PassRate float64 `json:"pass_rate"`
}

// HostReport is one simulated host's accounting in a RunReport.
type HostReport struct {
	Host            int     `json:"host"`
	CPUUnits        float64 `json:"cpu_units"`
	CPULoadPct      float64 `json:"cpu_load_pct"`
	OverloadFactor  float64 `json:"overload_factor"`
	NetTuplesIn     int64   `json:"net_tuples_in"`
	NetBytesIn      int64   `json:"net_bytes_in"`
	IPCTuplesIn     int64   `json:"ipc_tuples_in"`
	Tuples          int64   `json:"tuples"`
	NetTuplesPerSec float64 `json:"net_tuples_per_sec"`
}

// HostWindow is one host's deterministic counter deltas over one load
// window: what the host did during [window*W, (window+1)*W) of trace
// time, as opposed to HostReport's whole-run totals.
type HostWindow struct {
	Host        int     `json:"host"`
	CPUUnits    float64 `json:"cpu_units"`
	NetTuplesIn int64   `json:"net_tuples_in"`
	NetBytesIn  int64   `json:"net_bytes_in"`
	IPCTuplesIn int64   `json:"ipc_tuples_in"`
	Tuples      int64   `json:"tuples"`
}

// LoadWindow is one closed monitoring window of a run's load series:
// per-host counter deltas over [StartSec, EndSec) of trace time. The
// engines close windows at watermark boundaries in canonical event
// order, so the series is bit-equal for any worker count or batch
// size, like every other deterministic report section.
type LoadWindow struct {
	Window   int          `json:"window"`
	StartSec uint64       `json:"start_sec"`
	EndSec   uint64       `json:"end_sec"`
	Hosts    []HostWindow `json:"hosts"`
}

// MaxHostNetBytesPerSec returns the window's peak per-host network
// ingress rate in bytes per second — the measured quantity the
// Section 4.2.1 load bound constrains. Zero for an empty window.
func (w LoadWindow) MaxHostNetBytesPerSec() float64 {
	sec := float64(w.EndSec - w.StartSec)
	if sec <= 0 {
		return 0
	}
	maxBytes := int64(0)
	for i := range w.Hosts {
		if b := w.Hosts[i].NetBytesIn; b > maxBytes {
			maxBytes = b
		}
	}
	return float64(maxBytes) / sec
}

// FirstLoadViolation scans a load series for the first window whose
// measured max-host network rate exceeds factor times the predicted
// bound (bytes per second), skipping the first warmup windows. It
// returns the window index and the offending rate, or -1 when the
// series stays within the inflated bound. This is the adaptive
// repartitioning trigger: deterministic, because the series itself is.
func FirstLoadViolation(series []LoadWindow, boundBytesPerSec, factor float64, warmup int) (int, float64) {
	if factor <= 0 {
		factor = 1
	}
	limit := boundBytesPerSec * factor
	for i := range series {
		if series[i].Window < warmup {
			continue
		}
		if rate := series[i].MaxHostNetBytesPerSec(); rate > limit {
			return series[i].Window, rate
		}
	}
	return -1, 0
}

// PlanInfo summarizes the physical plan a run executed.
type PlanInfo struct {
	Hosts             int `json:"hosts"`
	Partitions        int `json:"partitions"`
	PartitionsPerHost int `json:"partitions_per_host"`
	AggregatorHost    int `json:"aggregator_host"`
	// Partitioning is the splitter's hash set in its canonical text
	// form; empty means round-robin (query-agnostic) splitting.
	Partitioning string `json:"partitioning"`
	Operators    int    `json:"operators"`
}

// SearchStats instruments the partitioning search. All exported JSON
// fields are deterministic for a fixed worker count; the two Nanos
// spans are wall-clock and deliberately excluded from JSON (report
// builders that want them place them under Timing).
type SearchStats struct {
	// Enumerated counts candidate node subsets recorded by the DP
	// expansion (equals the length of the candidate list).
	Enumerated int64 `json:"enumerated"`
	// Pruned counts expansion steps discarded before recording: initial
	// sets unusable for the source streams plus failed reconciliations.
	Pruned int64 `json:"pruned"`
	// UniqueSets counts the distinct partitioning sets actually costed.
	UniqueSets int64 `json:"unique_sets"`
	// Deduped counts candidates whose set had already been costed
	// (Enumerated - UniqueSets).
	Deduped int64 `json:"deduped"`
	// CacheHits counts cost-model memo-cache hits outside the batch
	// evaluation (e.g. repeated baseline evaluations).
	CacheHits int64 `json:"cache_hits"`
	// PerWorkerEvals[w] counts the set evaluations worker w performed;
	// deterministic for a fixed worker count (index-strided
	// assignment), length 1 for the sequential search.
	PerWorkerEvals []int64 `json:"per_worker_evals,omitempty"`
	// EnumerateNanos and CostNanos are wall-clock spans of the two
	// search phases. They live outside the deterministic state and
	// outside the JSON encoding.
	EnumerateNanos int64 `json:"-"`
	CostNanos      int64 `json:"-"`
}

// SearchReport is the search's section of a report: the outcome plus
// the instrumentation counters.
type SearchReport struct {
	// Recommended is the chosen set's canonical text; empty when no
	// partitioning beats centralized execution.
	Recommended string  `json:"recommended"`
	BestCost    float64 `json:"best_cost"`
	CentralCost float64 `json:"central_cost"`
	Candidates  int     `json:"candidates"`
	SearchStats
}

// Timing collects wall-clock spans and engine-configuration details.
// Everything here either varies run to run (wall time) or varies with
// the execution configuration (worker count, engine choice, transport
// counters), so it is quarantined under the single top-level "timing"
// key of a RunReport: strip that key and reports are byte-identical
// across worker counts.
type Timing struct {
	Workers     int    `json:"workers"`
	Engine      string `json:"engine"` // "sequential" or "parallel"
	BatchRounds int    `json:"batch_rounds,omitempty"`
	WallNanos   int64  `json:"wall_nanos"`
	// Rounds is the number of watermark rounds the driver played
	// (distinct timestamps plus the flush round).
	Rounds int64 `json:"rounds,omitempty"`
	// Batches and LinkItems count the parallel engine's transport
	// traffic: feed messages shipped and island-crossing deliveries
	// replayed. Zero under the sequential engine.
	Batches   int64 `json:"batches,omitempty"`
	LinkItems int64 `json:"link_items,omitempty"`
	// SearchEnumerateNanos / SearchCostNanos are the search phases'
	// wall-clock spans when the report covers an analysis.
	SearchEnumerateNanos int64 `json:"search_enumerate_nanos,omitempty"`
	SearchCostNanos      int64 `json:"search_cost_nanos,omitempty"`
}

// WriteJSON writes v to path as indented JSON with a trailing newline.
func WriteJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
