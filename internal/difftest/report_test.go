package difftest

import (
	"strings"
	"testing"
)

// TestReportString pins the repro format: a failing report must carry
// the seed, the rerun command, the trace literal, the query text, and
// every mismatch with its axis — everything needed to reproduce the
// failure from the one-line summary.
func TestReportString(t *testing.T) {
	ok := &Report{Seed: 7, Configs: 12, Queries: "SELECT 1"}
	if !ok.OK() {
		t.Fatal("report with no mismatches must be OK")
	}
	if s := ok.String(); !strings.Contains(s, "seed 7: PASS (12 configurations") {
		t.Errorf("pass rendering: %q", s)
	}

	bad := &Report{
		Seed:    42,
		Configs: 9,
		Queries: "SELECT COUNT(*)\nFROM TCP",
		Mismatches: []Mismatch{
			{Axis: "columnar", Config: "columnar hosts=2 workers=4 batch=64", Detail: "line 3 differs"},
			{Axis: "batched", Config: "batch=7", Detail: "OpStats differ"},
		},
	}
	if bad.OK() {
		t.Fatal("report with mismatches must not be OK")
	}
	s := bad.String()
	for _, want := range []string{
		"seed 42: FAIL (2 of 9 configurations mismatched)",
		"first failure: axis columnar, config columnar hosts=2 workers=4 batch=64",
		"rerun: go run ./cmd/qap-difftest -seed 42",
		"queries:\n    SELECT COUNT(*)\n    FROM TCP",
		"mismatch [columnar: columnar hosts=2 workers=4 batch=64]:\n    line 3 differs",
		"mismatch [batched: batch=7]:\n    OpStats differ",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q in:\n%s", want, s)
		}
	}
}

// TestFirstDiff pins the mismatch localizer: first differing line with
// both sides, or the length note when one output is a prefix of the
// other.
func TestFirstDiff(t *testing.T) {
	d := firstDiff("a\nb\nc", "a\nX\nc")
	if !strings.Contains(d, "line 2:") || !strings.Contains(d, "baseline: b") || !strings.Contains(d, "variant:  X") {
		t.Errorf("firstDiff = %q", d)
	}
	d = firstDiff("a\nb", "a\nb\nc")
	if !strings.Contains(d, "lengths differ: baseline 2 lines, variant 3 lines") {
		t.Errorf("firstDiff on prefix = %q", d)
	}
}
