package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"qap/internal/core"
	"qap/internal/gsql"
	"qap/internal/netgen"
	"qap/internal/plan"
	"qap/internal/schema"
)

var update = flag.Bool("update", false, "rewrite golden files")

// load builds the plan DAG for a query set over the TCP schema.
func load(t *testing.T, ddl, queries string) (*plan.Graph, *gsql.QuerySet) {
	t.Helper()
	cat, err := schema.Parse(ddl)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gsql.ParseQuerySet(queries)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plan.Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	return g, qs
}

// lintText lints a query set over the TCP schema and returns the
// human rendering, deriving candidate sets from the node requirements.
func lintText(t *testing.T, queries string) *Report {
	t.Helper()
	g, qs := load(t, netgen.SchemaDDL, queries)
	var opts Options
	opts.Source = "<test>"
	return Run(g, qs, opts)
}

func figure1Source(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "examples", "queries", "figure1.gsql"))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFigure1Golden pins the full diagnostic output for the paper's
// Figure 1 query set, analysis included, against a golden file.
func TestFigure1Golden(t *testing.T) {
	g, qs := load(t, netgen.SchemaDDL, figure1Source(t))
	res, err := core.Optimize(g, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.Source = "figure1.gsql"
	opts.Analysis = res
	rep := Run(g, qs, opts)

	got := rep.Human()
	golden := filepath.Join("testdata", "figure1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch (rerun with -update after reviewing)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFigure1ExplainsEveryNodeAndSet is the acceptance criterion: for
// every query node and every candidate partitioning set, the report
// says whether the set is compatible (QAP003) or which scope rule
// excluded it (QAP004) — or that the node is universal (QAP001).
func TestFigure1ExplainsEveryNodeAndSet(t *testing.T) {
	g, qs := load(t, netgen.SchemaDDL, figure1Source(t))
	res, err := core.Optimize(g, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.Analysis = res
	rep := Run(g, qs, opts)

	sets := candidateSets(g, opts)
	if len(sets) == 0 {
		t.Fatal("no candidate sets derived")
	}
	for _, n := range g.QueryNodes() {
		universal := false
		explained := make(map[string]bool)
		for _, d := range rep.Diagnostics {
			if d.Query != n.QueryName {
				continue
			}
			switch d.Code {
			case CodeUniversal:
				universal = true
			case CodeSetCompatible, CodeSetExcluded:
				for _, ps := range sets {
					if strings.Contains(d.Message, ps.String()) {
						explained[ps.String()] = true
					}
				}
				if d.Code == CodeSetExcluded && !strings.Contains(d.Message, "Section 3.5") {
					t.Errorf("%s: exclusion cites no scope rule: %s", n.QueryName, d.Message)
				}
			}
		}
		if universal {
			continue
		}
		for _, ps := range sets {
			if !explained[ps.String()] {
				t.Errorf("node %s: candidate set %s not explained", n.QueryName, ps)
			}
		}
	}
}

// TestDeterministicOutput asserts the report bytes are identical
// across repeated runs and across analysis worker counts.
func TestDeterministicOutput(t *testing.T) {
	src := figure1Source(t)
	render := func(workers int) (string, string) {
		g, qs := load(t, netgen.SchemaDDL, src)
		o := core.DefaultOptions()
		o.Workers = workers
		res, err := core.Optimize(g, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		var opts Options
		opts.Source = "figure1.gsql"
		opts.Analysis = res
		rep := Run(g, qs, opts)
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Human(), string(j)
	}
	h1, j1 := render(1)
	for _, w := range []int{1, 2, 8} {
		for run := 0; run < 3; run++ {
			h, j := render(w)
			if h != h1 || j != j1 {
				t.Fatalf("output differs at workers=%d run %d", w, run)
			}
		}
	}
}

func hasCode(rep *Report, code string) bool {
	for _, d := range rep.Diagnostics {
		if d.Code == code {
			return true
		}
	}
	return false
}

func diagsWith(rep *Report, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestMisalignedWindows(t *testing.T) {
	rep := lintText(t, `
query a:
SELECT tb, srcIP, COUNT(*) as cnt FROM TCP GROUP BY time/60 as tb, srcIP

query b:
SELECT tb2, srcIP, COUNT(*) as cnt2 FROM TCP GROUP BY time/30 as tb2, srcIP

query j:
SELECT S1.tb, S1.cnt, S2.cnt2 FROM a S1, b S2
WHERE S1.srcIP = S2.srcIP AND S1.tb = S2.tb2`)
	ds := diagsWith(rep, CodeWindowMisaligned)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP005, got %d: %v", len(ds), rep.Diagnostics)
	}
	if !strings.Contains(ds[0].Message, "time / 60") || !strings.Contains(ds[0].Message, "time / 30") {
		t.Errorf("QAP005 should name both window expressions: %s", ds[0].Message)
	}
	if hasCode(rep, CodeCrossEpochJoin) {
		t.Error("misaligned windows misreported as cross-epoch offset")
	}
}

func TestCrossEpochJoinIsNotMisaligned(t *testing.T) {
	rep := lintText(t, figure1Source(t))
	if hasCode(rep, CodeWindowMisaligned) {
		t.Error("flow_pairs tb = tb+1 wrongly flagged as misaligned")
	}
	ds := diagsWith(rep, CodeCrossEpochJoin)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP011 for flow_pairs, got %d", len(ds))
	}
	if ds[0].Query != "flow_pairs" {
		t.Errorf("QAP011 on %q, want flow_pairs", ds[0].Query)
	}
}

func TestUncoverableJoinKey(t *testing.T) {
	g, qs := load(t, netgen.SchemaDDL, `
query j:
SELECT S1.srcIP, S2.destIP FROM TCP S1, TCP S2
WHERE S1.time/60 = S2.time/60 AND S1.srcIP = S2.destIP`)
	var opts Options
	opts.Sets = []core.Set{core.MustParseSet("srcIP")}
	rep := Run(g, qs, opts)
	ds := diagsWith(rep, CodeSetExcluded)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP004, got %d: %v", len(ds), rep.Diagnostics)
	}
	if !strings.Contains(ds[0].Message, "3.5.3") {
		t.Errorf("exclusion should cite join-key coverage: %s", ds[0].Message)
	}
}

func TestHavingEvaluatesCentrally(t *testing.T) {
	rep := lintText(t, `
query heavy:
SELECT tb, srcIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP
HAVING COUNT(*) > 100`)
	ds := diagsWith(rep, CodeHavingCentral)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP006, got %d: %v", len(ds), rep.Diagnostics)
	}
	// The diagnostic anchors at the HAVING clause, not the query head.
	if ds[0].Line != 6 {
		t.Errorf("QAP006 at line %d, want 6 (the HAVING clause)", ds[0].Line)
	}
}

func TestHolisticAggregate(t *testing.T) {
	rep := lintText(t, `
query fanout:
SELECT tb, srcIP, COUNT_DISTINCT(destIP) as dsts
FROM TCP
GROUP BY time/60 as tb, srcIP`)
	ds := diagsWith(rep, CodeHolisticAggregate)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP007, got %d: %v", len(ds), rep.Diagnostics)
	}
	if !strings.Contains(ds[0].Message, "APPROX_COUNT_DISTINCT") {
		t.Errorf("QAP007 should suggest the splittable alternative: %s", ds[0].Message)
	}
	// A holistic aggregate can't split, so no QAP006 even with HAVING.
	if hasCode(rep, CodeHavingCentral) {
		t.Error("unexpected QAP006 without a HAVING clause")
	}
}

func TestUnpartitionableSlidingWindow(t *testing.T) {
	rep := lintText(t, `
query w:
SELECT pane, COUNT(*) as cnt
FROM TCP
GROUP BY time/10 AS pane
WINDOW 6`)
	ds := diagsWith(rep, CodeUnpartitionable)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP002, got %d: %v", len(ds), rep.Diagnostics)
	}
	if !strings.Contains(ds[0].Message, "3.5.1") {
		t.Errorf("QAP002 should cite the temporal exclusion: %s", ds[0].Message)
	}
}

func TestDeadColumn(t *testing.T) {
	rep := lintText(t, figure1Source(t))
	ds := diagsWith(rep, CodeDeadColumn)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP008, got %d: %v", len(ds), rep.Diagnostics)
	}
	if ds[0].Query != "flows" || !strings.Contains(ds[0].Message, `"destIP"`) {
		t.Errorf("QAP008 should flag flows.destIP: %s", ds[0])
	}
}

func TestNullPaddedGroupKey(t *testing.T) {
	rep := lintText(t, `
query a:
SELECT tb, srcIP, COUNT(*) as cnt FROM TCP GROUP BY time/60 as tb, srcIP

query b:
SELECT tb, destIP, COUNT(*) as pkts FROM TCP GROUP BY time/60 as tb, destIP

query j:
SELECT S1.tb AS tb, S1.srcIP AS srcIP, S2.pkts AS pkts
FROM a S1 LEFT OUTER JOIN b S2 ON S1.tb = S2.tb AND S1.srcIP = S2.destIP

query g:
SELECT tb, pkts, COUNT(*) as n FROM j GROUP BY tb, pkts`)
	ds := diagsWith(rep, CodeNullPadded)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP009, got %d: %v", len(ds), rep.Diagnostics)
	}
	if ds[0].Query != "g" || !strings.Contains(ds[0].Message, `"pkts"`) {
		t.Errorf("QAP009 should flag g grouping on padded pkts: %s", ds[0])
	}
}

func TestJoinKeyTypeMismatch(t *testing.T) {
	ddl := netgen.SchemaDDL + "\nWEB(time increasing, url string, srcIP)"
	g, qs := load(t, ddl, `
query j:
SELECT S1.srcIP FROM TCP S1, WEB S2
WHERE S1.time/60 = S2.time/60 AND S1.srcIP = S2.url`)
	rep := Run(g, qs, Options{})
	ds := diagsWith(rep, CodeKeyTypeMismatch)
	if len(ds) != 1 {
		t.Fatalf("want 1 QAP010, got %d: %v", len(ds), rep.Diagnostics)
	}
	if !rep.HasErrors() {
		t.Error("QAP010 is an error; HasErrors should be true")
	}
}

func TestLoadErrorReport(t *testing.T) {
	_, err := gsql.ParseQuerySet("query broken:\nSELECT FROM TCP")
	if err == nil {
		t.Fatal("want parse error")
	}
	rep := LoadErrorReport("broken.gsql", err)
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Code != CodeLoadError {
		t.Fatalf("want exactly one QAP000, got %v", rep.Diagnostics)
	}
	if !rep.HasErrors() {
		t.Error("load failures are errors")
	}
	if rep.Diagnostics[0].Line == 0 {
		t.Error("QAP000 should carry the parser's position")
	}
}

// TestJSONSchema validates the machine-readable report shape: required
// keys, code and severity formats, registry consistency, round-trip.
func TestJSONSchema(t *testing.T) {
	g, qs := load(t, netgen.SchemaDDL, figure1Source(t))
	res, err := core.Optimize(g, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(g, qs, Options{Source: "figure1.gsql", Analysis: res})
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(b, []byte("\n")) {
		t.Error("JSON output must end with a newline")
	}

	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "source", "diagnostics", "errors", "warnings", "infos"} {
		if _, ok := m[key]; !ok {
			t.Errorf("missing top-level key %q", key)
		}
	}
	codeRE := regexp.MustCompile(`^QAP\d{3}$`)
	diags, ok := m["diagnostics"].([]any)
	if !ok || len(diags) == 0 {
		t.Fatalf("diagnostics missing or empty: %v", m["diagnostics"])
	}
	for i, raw := range diags {
		d, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("diagnostic %d is not an object", i)
		}
		code, _ := d["code"].(string)
		if !codeRE.MatchString(code) {
			t.Errorf("diagnostic %d: bad code %q", i, code)
		}
		sev, _ := d["severity"].(string)
		if sev != "error" && sev != "warning" && sev != "info" {
			t.Errorf("diagnostic %d: bad severity %q", i, sev)
		}
		if sev != codeSeverity(code).String() {
			t.Errorf("diagnostic %d: severity %q disagrees with registry %q for %s", i, sev, codeSeverity(code), code)
		}
		if _, ok := d["line"].(float64); !ok {
			t.Errorf("diagnostic %d: line is not a number", i)
		}
		if _, ok := d["message"].(string); !ok {
			t.Errorf("diagnostic %d: message is not a string", i)
		}
	}

	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("JSON round trip is not byte-identical")
	}
}

// TestCodesRegistry keeps the registry, the emitted codes, and the
// DESIGN.md documentation table consistent.
func TestCodesRegistry(t *testing.T) {
	seen := make(map[string]bool)
	for i, c := range Codes {
		if want := fmt.Sprintf("QAP%03d", i); c.Code != want {
			t.Errorf("registry entry %d: code %s, want %s (dense ascending order)", i, c.Code, want)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %s", c.Code)
		}
		seen[c.Code] = true
		if c.Title == "" || c.Section == "" {
			t.Errorf("%s: empty title or section", c.Code)
		}
	}

	design, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Codes {
		if !bytes.Contains(design, []byte(c.Code)) {
			t.Errorf("DESIGN.md does not document %s", c.Code)
		}
	}
}
