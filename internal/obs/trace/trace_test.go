package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"qap/internal/obs"
)

// sampleTrace is a small hand-built trace with two hosts, a central
// island, one monitoring window, and a timing trailer.
func sampleTrace() *Trace {
	return &Trace{Records: []Event{
		{Kind: KindHeader, SchemaVersion: obs.SchemaVersion, Hosts: 2,
			AggregatorHost: 1, WindowSec: 10, DurationSec: 8, Partitioning: "{srcIP}"},
		{Kind: KindRound, Round: 0, WM: 3, Rows: 5},
		{Kind: KindFlush, Round: 1, WM: 7},
		{Kind: KindHostWindow, Window: 0, Host: 0, NetTuplesIn: 5, NetBytesIn: 200, Tuples: 9},
		{Kind: KindHostWindow, Window: 0, Host: 1, IPCTuplesIn: 3, Tuples: 4},
		{Kind: KindHostWindow, Window: 0, Central: true, Tuples: 2, NetBytesIn: 40, NetTuplesIn: 1},
		{Kind: KindOpWindow, Window: 0, Host: 0, Op: 2, OpKind: "Aggregate",
			Query: "q0", RowsIn: 9, RowsOut: 3, Groups: 3},
		{Kind: KindEpochFlush, Host: 0, Op: 2, WM: 3, Groups: 2, Rows: 2},
		{Kind: KindTiming, Engine: "parallel", Workers: 4, BatchSize: 256,
			WallNanos: 12345, Rounds: 2, Batches: 2, LinkItems: 1},
	}}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	b, err := tr.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("round trip changed records:\n got %+v\nwant %+v", got.Records, tr.Records)
	}
}

func TestCanonicalJSONLStripsTiming(t *testing.T) {
	tr := sampleTrace()
	b, err := tr.CanonicalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"timing"`)) || bytes.Contains(b, []byte("wall_nanos")) {
		t.Fatalf("canonical JSONL leaked the timing trailer:\n%s", b)
	}
	full, err := tr.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(full, []byte(`"kind":"timing"`)) {
		t.Fatalf("full JSONL missing the timing trailer:\n%s", full)
	}
	// Canonical output is the full output minus exactly the timing line.
	if got, want := bytes.Count(b, []byte("\n")), bytes.Count(full, []byte("\n"))-1; got != want {
		t.Fatalf("canonical has %d lines, want %d", got, want)
	}
}

func TestReadJSONLRejectsKindless(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"host":3}` + "\n")); err == nil {
		t.Fatal("expected an error for a record with no kind")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected an error for malformed JSON")
	}
	// Blank lines are tolerated.
	got, err := ReadJSONL(strings.NewReader("\n" + `{"kind":"flush"}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 || got.Records[0].Kind != KindFlush {
		t.Fatalf("got %+v", got.Records)
	}
}

func TestOmitEmptyIsLossless(t *testing.T) {
	// A zero-valued event (apart from Kind) encodes to just the kind and
	// decodes back to the same zero values.
	b, err := json.Marshal(&Event{Kind: KindFlush})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"kind":"flush"}` {
		t.Fatalf("zero event encoded as %s", b)
	}
}

func TestRingModeKeepsLastEvents(t *testing.T) {
	c := NewCollector(Config{Mode: ModeRing, RingSize: 3})
	s := c.NewShard()
	for i := 0; i < 5; i++ {
		s.Emit(Event{Kind: KindRound, Round: i})
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped())
	}
	tr := c.Gather(Event{Kind: KindHeader, Hosts: 1, WindowSec: 1, DurationSec: 1})
	rounds := []int{}
	for _, e := range tr.Records {
		if e.Kind == KindRound {
			rounds = append(rounds, e.Round)
		}
	}
	if !reflect.DeepEqual(rounds, []int{2, 3, 4}) {
		t.Fatalf("ring kept rounds %v, want [2 3 4]", rounds)
	}
}

func TestRingDefaultSize(t *testing.T) {
	c := NewCollector(Config{Mode: ModeRing})
	s := c.NewShard()
	for i := 0; i < DefaultRingSize+10; i++ {
		s.Emit(Event{Kind: KindRound, Round: i})
	}
	if s.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", s.Dropped())
	}
}

func TestNilShardIsSafe(t *testing.T) {
	var s *Shard
	s.Emit(Event{Kind: KindRound})
	if s.Dropped() != 0 {
		t.Fatal("nil shard reported drops")
	}
}

func TestGatherConcatenatesInRegistrationOrder(t *testing.T) {
	c := NewCollector(Config{})
	a, b := c.NewShard(), c.NewShard()
	b.Emit(Event{Kind: KindRound, Round: 2}) // written "first" in time
	a.Emit(Event{Kind: KindRound, Round: 1})
	tr := c.Gather(Event{Kind: KindHeader}, Event{Kind: KindTiming})
	kinds := []string{}
	rounds := []int{}
	for _, e := range tr.Records {
		kinds = append(kinds, e.Kind)
		rounds = append(rounds, e.Round)
	}
	if !reflect.DeepEqual(kinds, []string{KindHeader, KindRound, KindRound, KindTiming}) {
		t.Fatalf("kinds = %v", kinds)
	}
	if rounds[1] != 1 || rounds[2] != 2 {
		t.Fatalf("registration order not respected: rounds = %v", rounds)
	}
}

func TestWithPhaseCopies(t *testing.T) {
	tr := sampleTrace()
	ph := tr.WithPhase("initial")
	if tr.Records[0].Phase != "" {
		t.Fatal("WithPhase mutated the original")
	}
	for _, e := range ph.Records {
		if e.Phase != "initial" {
			t.Fatalf("record %+v missing phase", e)
		}
	}
	if got := ph.Phases(); !reflect.DeepEqual(got, []string{"initial"}) {
		t.Fatalf("Phases() = %v", got)
	}
	if hdr := ph.Header("initial"); hdr == nil || hdr.Hosts != 2 {
		t.Fatalf("Header(initial) = %+v", hdr)
	}
	if hdr := ph.Header("final"); hdr != nil {
		t.Fatalf("Header(final) = %+v, want nil", hdr)
	}
}

func TestHostLoadSeriesRebuild(t *testing.T) {
	tr := sampleTrace()
	series := tr.HostLoadSeries("")
	if len(series) != 1 {
		t.Fatalf("got %d windows, want 1", len(series))
	}
	w := series[0]
	if w.Window != 0 || w.StartSec != 0 || w.EndSec != 8 {
		t.Fatalf("window geometry %+v", w)
	}
	// Host 0 is untouched by the central fold; host 1 (the aggregator)
	// absorbs the central island's counters.
	want := []obs.HostWindow{
		{Host: 0, NetTuplesIn: 5, NetBytesIn: 200, Tuples: 9},
		{Host: 1, NetTuplesIn: 1, NetBytesIn: 40, IPCTuplesIn: 3, Tuples: 6},
	}
	if !reflect.DeepEqual(w.Hosts, want) {
		t.Fatalf("hosts:\n got %+v\nwant %+v", w.Hosts, want)
	}
}

func TestHostLoadSeriesNilCases(t *testing.T) {
	empty := &Trace{}
	if s := empty.HostLoadSeries(""); s != nil {
		t.Fatalf("empty trace produced a series: %+v", s)
	}
	// A header with no host_window events (e.g. a ring capture that
	// dropped them) yields nil, not an all-zero series.
	headerOnly := &Trace{Records: []Event{
		{Kind: KindHeader, Hosts: 2, WindowSec: 10, DurationSec: 30},
	}}
	if s := headerOnly.HostLoadSeries(""); s != nil {
		t.Fatalf("header-only trace produced a series: %+v", s)
	}
}

func TestStripCPUUnits(t *testing.T) {
	in := []obs.LoadWindow{{
		Window: 0, StartSec: 0, EndSec: 10,
		Hosts: []obs.HostWindow{
			{Host: 0, CPUUnits: 12.5, NetTuplesIn: 3, Tuples: 4},
			{Host: 1, CPUUnits: 0.25, NetBytesIn: 9},
		},
	}}
	out := StripCPUUnits(in)
	if in[0].Hosts[0].CPUUnits != 12.5 {
		t.Fatal("StripCPUUnits mutated its input")
	}
	if out[0].Hosts[0].CPUUnits != 0 || out[0].Hosts[1].CPUUnits != 0 {
		t.Fatalf("CPUUnits not zeroed: %+v", out[0].Hosts)
	}
	if out[0].Hosts[0].NetTuplesIn != 3 || out[0].Hosts[1].NetBytesIn != 9 {
		t.Fatalf("integer counters damaged: %+v", out[0].Hosts)
	}
	if StripCPUUnits(nil) != nil {
		t.Fatal("StripCPUUnits(nil) != nil")
	}
}

func TestChromeJSONDeterministicAndValid(t *testing.T) {
	tr := sampleTrace()
	a, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("ChromeJSON is not deterministic for identical input")
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &f); err != nil {
		t.Fatalf("ChromeJSON output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("ChromeJSON produced no events")
	}
	// No wall-clock timestamps: every ts must be trace time (bounded by
	// the run duration in microseconds, plus the window span).
	for _, e := range f.TraceEvents {
		if ts, ok := e["ts"].(float64); ok && ts > 100e6 {
			t.Fatalf("suspiciously large ts %v in %+v", ts, e)
		}
	}
}
