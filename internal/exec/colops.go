package exec

// Columnar fast paths for the batched operators. Every PushCols here
// is observably identical to PushBatch over the pivoted rows — same
// downstream batches in the same order, same Late counts, same
// emission bytes — so engines can hand any operator a ColBatch and
// fall back to the row path whenever a kernel does not apply.

import (
	"qap/internal/sqlval"
)

// pushColsRows is the shared fallback: pivot to durable rows and run
// the scalar batched path.
func pushColsRows(c BatchConsumer, cb *ColBatch) {
	b := cb.AppendRows(GetBatch())
	c.PushBatch(b)
	PutBatch(b)
}

// PushCols implements ColConsumer. The vectorized path needs an
// all-uint batch, a truth kernel for the filter, and uint kernels for
// every projection; anything else pivots to the row path.
//
//qap:hot
func (o *FilterProject) PushCols(cb *ColBatch) {
	if o.Filter == nil && o.Projs == nil {
		PushColsAll(o.Out, cb)
		return
	}
	fast := cb.AllUint() &&
		(o.Filter == nil || (o.ColFilter != nil && o.ColFilter.Truth != nil)) &&
		(o.Projs == nil || o.colProjsReady())
	if !fast {
		pushColsRows(o, cb)
		return
	}
	work := cb
	if o.Filter != nil {
		tv := o.ColFilter.Truth(cb)
		keep := 0
		for _, w := range tv {
			if w != 0 {
				keep++
			}
		}
		if keep == 0 {
			return // like the scalar path: no downstream call
		}
		if keep < cb.Len {
			o.colCompact(cb, tv, keep)
			work = &o.colPass
		}
	}
	if o.Projs != nil {
		o.colProject(work)
		work = &o.colOut
	}
	PushColsAll(o.Out, work)
}

func (o *FilterProject) colProjsReady() bool {
	if len(o.ColProjs) != len(o.Projs) {
		return false
	}
	for i := range o.ColProjs {
		if o.ColProjs[i].U == nil {
			return false
		}
	}
	return true
}

// colCompact copies the selected rows of every (all-uint) column into
// the reused colPass scratch.
//
//qap:hot
func (o *FilterProject) colCompact(cb *ColBatch, tv []uint64, keep int) {
	p := &o.colPass
	if cap(p.Cols) < len(cb.Cols) {
		//qap:allow hotalloc -- column headers sized once per operator width
		p.Cols = make([]ColVec, len(cb.Cols))
	}
	p.Cols = p.Cols[:len(cb.Cols)]
	for c := range cb.Cols {
		src := cb.Cols[c].U64
		d := &p.Cols[c]
		d.Kind = sqlval.KindUint
		d.Str, d.Valid = nil, nil
		d.U64 = growUints(d.U64, keep)
		k := 0
		for i, w := range tv {
			if w != 0 {
				d.U64[k] = src[i]
				k++
			}
		}
	}
	p.Len = keep
}

// colProject evaluates every projection kernel over in; the output
// columns alias kernel scratch (or input columns for bare column
// refs), which is fine under the only-during-the-call contract.
//
//qap:hot
func (o *FilterProject) colProject(in *ColBatch) {
	out := &o.colOut
	if cap(out.Cols) < len(o.ColProjs) {
		//qap:allow hotalloc -- column headers sized once per operator width
		out.Cols = make([]ColVec, len(o.ColProjs))
	}
	out.Cols = out.Cols[:len(o.ColProjs)]
	for k := range o.ColProjs {
		d := &out.Cols[k]
		d.Kind = sqlval.KindUint
		d.Str, d.Valid = nil, nil
		d.U64 = o.ColProjs[k].U(in)
	}
	out.Len = in.Len
}

// PushCols implements ColConsumer: a union port forwards unchanged.
func (p *unionPort) PushCols(cb *ColBatch) { PushColsAll(p.u.Out, cb) }

// colSlot is one entry of the aggregate's columnar group table: the
// word hash, the raw key words (carved from colWords), and the group
// it resolves to — either a row-path groupState (gs) or, in dense
// mode, index gi-1 into the dense arrays (gi 0 means "not dense").
// A slot is live iff gen matches the aggregate's current colGen;
// bumping colGen retires every slot at once, so an epoch reset costs
// O(1) instead of a table-wide clear. gen packs into what would be
// gi's padding, so the tag is free.
type colSlot struct {
	h     uint64
	words []uint64
	gs    *groupState
	gi    int32
	gen   uint32
}

const colTableMin = 1024

// colSupported reports whether every kernel the vectorized aggregate
// needs is present.
func (o *Aggregate) colSupported() bool {
	if len(o.cfg.ColGroupBy) != len(o.cfg.GroupBy) {
		return false
	}
	for i := range o.cfg.ColGroupBy {
		if o.cfg.ColGroupBy[i].U == nil {
			return false
		}
	}
	if o.cfg.PreFilter != nil && (o.cfg.ColPreFilter == nil || o.cfg.ColPreFilter.Truth == nil) {
		return false
	}
	for i, a := range o.cfg.Aggs {
		if a.Arg == nil {
			continue
		}
		if len(o.cfg.ColArgs) != len(o.cfg.Aggs) || o.cfg.ColArgs[i] == nil || o.cfg.ColArgs[i].U == nil {
			return false
		}
	}
	return true
}

// PushCols implements ColConsumer: group keys and aggregate arguments
// evaluate as whole-column kernels, then each row probes an
// open-addressing cache keyed by the raw key words. For all-uint
// values, word equality coincides with encoded-key equality
// (appendKeyValue maps a uint u to tag 2 or 4 plus u's big-endian
// bytes, injectively), so the cache resolves to exactly the group the
// row path would — misses consult the groups map itself before
// creating anything, keeping the two paths coherent.
//
//qap:hot
func (o *Aggregate) PushCols(cb *ColBatch) {
	if o.colReady == 0 {
		if o.colSupported() {
			o.colReady = 1
		} else {
			o.colReady = -1
		}
	}
	if o.colReady < 0 || !cb.AllUint() {
		pushColsRows(o, cb)
		return
	}
	kvs := o.colKeyVecs[:0]
	for i := range o.cfg.ColGroupBy {
		kvs = append(kvs, o.cfg.ColGroupBy[i].U(cb))
	}
	o.colKeyVecs = kvs
	var filt []uint64
	if o.cfg.PreFilter != nil {
		filt = o.cfg.ColPreFilter.Truth(cb)
	}
	avs := o.colArgVecs[:0]
	for i, a := range o.cfg.Aggs {
		if a.Arg == nil {
			avs = append(avs, nil)
		} else {
			avs = append(avs, o.cfg.ColArgs[i].U(cb))
		}
	}
	o.colArgVecs = avs
	if o.colDirty {
		o.colResetTable()
	}
	if len(o.colTable) == 0 {
		size := colTableMin
		// A SizeHint warm-starts the table past the doubling chain: pick
		// the power of two that keeps the hinted count under 75% load.
		for h := o.cfg.SizeHint; size*3 <= h*4; {
			size *= 2
		}
		//qap:allow hotalloc -- slot table built once, then reused across epochs
		o.colTable = make([]colSlot, size)
		o.colGen = 1
	}
	lateCheck := o.boundarySet && o.cfg.EpochIdx >= 0
	var epochVec []uint64
	var boundWord uint64
	wordLate := false
	if lateCheck {
		epochVec = kvs[o.cfg.EpochIdx]
		if u, ok := o.boundary.AsUint(); ok && o.boundary.Kind() == sqlval.KindUint {
			// The usual case: a uint boundary against uint epochs
			// compares as raw words, sparing a Value.Compare per row.
			boundWord, wordLate = u, true
		}
	}
	if o.denseReady == 0 {
		o.denseInit()
	}
	if o.denseReady > 0 && (o.denseN > 0 || (len(o.groups) == 0 && len(o.colPending) == 0)) {
		o.densePush(cb, kvs, avs, filt, epochVec, boundWord, wordLate, lateCheck)
		return
	}
	n := cb.Len
	for i := 0; i < n; i++ {
		if filt != nil && filt[i] == 0 {
			continue
		}
		if lateCheck {
			if wordLate {
				if epochVec[i] < boundWord {
					o.Late++
					continue
				}
			} else if sqlval.Uint(epochVec[i]).Compare(o.boundary) < 0 {
				o.Late++
				continue
			}
		}
		gs := o.colGroup(kvs, i)
		for a := range avs {
			if avs[a] == nil {
				gs.accs[a].Add(sqlval.Uint(1))
			} else {
				gs.accs[a].Add(sqlval.Uint(avs[a][i]))
			}
		}
	}
}

// colGroup resolves row i's group through the slot cache, falling
// back to the row-path map (and newGroup) on a miss.
//
//qap:hot
func (o *Aggregate) colGroup(kvs [][]uint64, i int) *groupState {
	h := hashKeyWords(kvs, i)
	mask := uint64(len(o.colTable) - 1)
	j := h & mask
	for {
		s := &o.colTable[j]
		if s.gen != o.colGen {
			break
		}
		if s.gs != nil && s.h == h && keyWordsEqual(s.words, kvs, i) {
			return s.gs
		}
		j = (j + 1) & mask
	}
	vals := o.valsBuf[:0]
	for _, kv := range kvs {
		vals = append(vals, sqlval.Uint(kv[i]))
	}
	o.valsBuf = vals
	kb := AppendKey(o.keyBuf[:0], vals)
	o.keyBuf = kb
	gs, ok := o.groups[string(kb)]
	if !ok {
		// Created columnar: the slot-table entry installed below is the
		// group's only index until emitBefore or a row-path push syncs
		// it into the map, sparing the map insert and its key-string
		// allocation on the hot path.
		gs = o.newGroup(kb, vals)
		o.colPending = append(o.colPending, gs)
	}
	return o.colInsert(j, h, gs, kvs, i)
}

// colInsert caches gs under row i's key words at the probed slot.
func (o *Aggregate) colInsert(j, h uint64, gs *groupState, kvs [][]uint64, i int) *groupState {
	start := len(o.colWords)
	for _, kv := range kvs {
		o.colWords = append(o.colWords, kv[i])
	}
	words := o.colWords[start:len(o.colWords):len(o.colWords)]
	o.colTable[j] = colSlot{h: h, words: words, gs: gs, gen: o.colGen}
	o.colCount++
	if o.colCount*4 >= len(o.colTable)*3 {
		o.colGrow()
	}
	return gs
}

// colGrow doubles the slot table, rehashing live slots; key-word
// slices stay valid (they point into colWords).
func (o *Aggregate) colGrow() {
	old := o.colTable
	o.colTable = make([]colSlot, len(old)*2)
	mask := uint64(len(o.colTable) - 1)
	for i := range old {
		s := &old[i]
		if s.gen != o.colGen {
			continue
		}
		j := s.h & mask
		for o.colTable[j].gen == o.colGen {
			j = (j + 1) & mask
		}
		o.colTable[j] = *s
	}
}

// colResetTable retires every slot after emitBefore removed groups:
// bumping the generation invalidates the whole table in O(1). On the
// (unreachable in practice) wraparound to 0 — the zero value of
// untouched slots — it falls back to a physical clear.
func (o *Aggregate) colResetTable() {
	o.colGen++
	if o.colGen == 0 {
		for i := range o.colTable {
			o.colTable[i] = colSlot{}
		}
		o.colGen = 1
	}
	o.colCount = 0
	o.colWords = o.colWords[:0]
	o.colDirty = false
}

// hashKeyWords mixes row i's key words (FNV-1a over words, with a
// final fold so sequential keys spread across table buckets). Purely
// internal: output bytes never depend on it.
//
//qap:hot
func hashKeyWords(kvs [][]uint64, i int) uint64 {
	h := uint64(14695981039346656037)
	for _, kv := range kvs {
		h = (h ^ kv[i]) * 1099511628211
	}
	return h ^ (h >> 29)
}

//qap:hot
func keyWordsEqual(words []uint64, kvs [][]uint64, i int) bool {
	for k, w := range words {
		if kvs[k][i] != w {
			return false
		}
	}
	return true
}

// denseAccKind names the word-vectorizable accumulator kinds the
// dense columnar group store supports. Each replicates its Accum
// counterpart exactly for non-NULL uint-kind inputs (AsInt and AsUint
// are raw-bit conversions for uint words, so integer sum and bit ops
// over words are bit-identical to the interface path).
type denseAccKind uint8

const (
	denseCount denseAccKind = iota
	denseSum
	denseBitOr
	denseBitAnd
	denseBitXor
)

// denseInit probes each aggregate factory once and records whether
// every accumulator is word-vectorizable from its zero state.
func (o *Aggregate) denseInit() {
	o.denseReady = -1
	kinds := make([]denseAccKind, len(o.cfg.Aggs))
	for i, a := range o.cfg.Aggs {
		switch p := a.Factory().(type) {
		case *countAccum:
			if p.n != 0 {
				return
			}
			kinds[i] = denseCount
		case *sumAccum:
			if p.isFloat || p.any || p.i != 0 {
				return
			}
			kinds[i] = denseSum
		case *bitAccum:
			if p.any || p.acc != 0 {
				return
			}
			switch p.op {
			case bitOr:
				kinds[i] = denseBitOr
			case bitAnd:
				kinds[i] = denseBitAnd
			case bitXor:
				kinds[i] = denseBitXor
			default:
				return
			}
		default:
			return
		}
	}
	o.denseAcc = kinds
	if o.denseAccW == nil {
		o.denseAccW = make([][]uint64, len(kinds))
	}
	if h := o.cfg.SizeHint; h > 0 {
		// Warm-start the dense arrays so a hinted run never pays the
		// append doubling chain for key words, views, or state words.
		if nk := len(o.cfg.GroupBy); cap(o.colWords) < h*nk {
			o.colWords = make([]uint64, 0, h*nk)
		}
		if cap(o.denseKeys) < h {
			o.denseKeys = make([][]uint64, 0, h)
		}
		if cap(o.denseDone) < h {
			o.denseDone = make([]int32, 0, h)
		}
		for a := range o.denseAccW {
			if cap(o.denseAccW[a]) < h {
				o.denseAccW[a] = make([]uint64, 0, h)
			}
		}
	}
	o.denseReady = 1
}

// densePush is the struct-of-arrays aggregate path: one pass resolves
// every surviving row to a dense group index, then each aggregate
// accumulates over (slot, row) pairs in a tight per-kind loop with no
// interface dispatch and no per-group objects.
//
//qap:hot
func (o *Aggregate) densePush(cb *ColBatch, kvs, avs [][]uint64, filt, epochVec []uint64, boundWord uint64, wordLate, lateCheck bool) {
	slots := o.denseSlots[:0]
	rows := o.denseRows[:0]
	n := cb.Len
	for i := 0; i < n; i++ {
		if filt != nil && filt[i] == 0 {
			continue
		}
		if lateCheck {
			if wordLate {
				if epochVec[i] < boundWord {
					o.Late++
					continue
				}
			} else if sqlval.Uint(epochVec[i]).Compare(o.boundary) < 0 {
				o.Late++
				continue
			}
		}
		slots = append(slots, o.denseGroup(kvs, i))
		rows = append(rows, int32(i))
	}
	o.denseSlots, o.denseRows = slots, rows
	for j, kind := range o.denseAcc {
		w := o.denseAccW[j]
		switch kind {
		case denseCount:
			// COUNT(*) and COUNT(arg) both count every surviving row:
			// dense inputs are non-NULL by construction.
			for _, g := range slots {
				w[g]++
			}
		case denseSum:
			av := avs[j]
			for k, g := range slots {
				w[g] = uint64(int64(w[g]) + int64(av[rows[k]]))
			}
		case denseBitOr:
			av := avs[j]
			for k, g := range slots {
				w[g] |= av[rows[k]]
			}
		case denseBitAnd:
			av := avs[j]
			for k, g := range slots {
				w[g] &= av[rows[k]]
			}
		case denseBitXor:
			av := avs[j]
			for k, g := range slots {
				w[g] ^= av[rows[k]]
			}
		}
	}
}

// denseGroup resolves row i to its dense group index, creating the
// group (key words into colWords, a zero state word per aggregate) on
// a miss. Slot entries store gi+1 so the zero value stays "empty".
//
//qap:hot
func (o *Aggregate) denseGroup(kvs [][]uint64, i int) int32 {
	h := hashKeyWords(kvs, i)
	mask := uint64(len(o.colTable) - 1)
	j := h & mask
	for {
		s := &o.colTable[j]
		if s.gen != o.colGen {
			break
		}
		if s.gi != 0 && s.h == h && keyWordsEqual(s.words, kvs, i) {
			return s.gi - 1
		}
		j = (j + 1) & mask
	}
	start := len(o.colWords)
	for _, kv := range kvs {
		o.colWords = append(o.colWords, kv[i])
	}
	words := o.colWords[start:len(o.colWords):len(o.colWords)]
	gi := int32(o.denseN)
	o.denseN++
	o.denseKeys = append(o.denseKeys, words)
	for a := range o.denseAccW {
		o.denseAccW[a] = append(o.denseAccW[a], 0)
	}
	if o.cfg.EpochIdx >= 0 {
		o.noteEpoch(sqlval.Uint(words[o.cfg.EpochIdx]))
	}
	o.colTable[j] = colSlot{h: h, words: words, gi: gi + 1, gen: o.colGen}
	o.colCount++
	if o.colCount*4 >= len(o.colTable)*3 {
		o.colGrow()
	}
	return gi
}

// hashWords is hashKeyWords over an already-gathered word slice; the
// two must agree so reinserted survivors land where probes look.
func hashWords(words []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range words {
		h = (h ^ w) * 1099511628211
	}
	return h ^ (h >> 29)
}

// denseResult reconstructs aggregate j's result Value for dense group
// g, mirroring the corresponding Accum.Result (any is always true in
// dense mode: every group saw at least one non-NULL add).
func (o *Aggregate) denseResult(j int, g int32) sqlval.Value {
	w := o.denseAccW[j][g]
	switch o.denseAcc[j] {
	case denseSum:
		if i := int64(w); i < 0 {
			return sqlval.Int(i)
		}
		return sqlval.Uint(w)
	default:
		return sqlval.Uint(w)
	}
}

// denseMigrate converts every dense group into an ordinary map-owned
// groupState (restoring accumulator state field-for-field) so the row
// path can take over. Called before any row-path lookup; rare, so it
// allocates its own scratch rather than clobbering pushFast's.
func (o *Aggregate) denseMigrate() {
	vals := make([]sqlval.Value, 0, len(o.cfg.GroupBy))
	var kb []byte
	for g := 0; g < o.denseN; g++ {
		words := o.denseKeys[g]
		vals = vals[:0]
		for _, w := range words {
			vals = append(vals, sqlval.Uint(w))
		}
		kb = AppendKey(kb[:0], vals)
		gs := o.newGroup(kb, vals)
		for j, kind := range o.denseAcc {
			w := o.denseAccW[j][g]
			switch kind {
			case denseCount:
				gs.accs[j].(*countAccum).n = w
			case denseSum:
				a := gs.accs[j].(*sumAccum)
				a.i, a.any = int64(w), true
			default:
				a := gs.accs[j].(*bitAccum)
				a.acc, a.any = w, true
			}
		}
		o.groups[string(gs.key)] = gs
	}
	o.denseReset()
	o.colDirty = true
}

// denseReset clears the dense arrays; key-word views die with the
// next colResetTable truncation of colWords.
func (o *Aggregate) denseReset() {
	o.denseN = 0
	o.denseKeys = o.denseKeys[:0]
	for j := range o.denseAccW {
		o.denseAccW[j] = o.denseAccW[j][:0]
	}
}

// denseEmit drains dense groups with epoch < boundary (all groups
// when boundary is nil) in the row path's deterministic (epoch,
// encoded key bytes) order — for all-uint keys that equals unsigned
// word order, column-major. Survivors are compacted and reinserted
// into a fresh slot table, since retiring groups invalidates both the
// table and their colWords views.
func (o *Aggregate) denseEmit(boundary *sqlval.Value) {
	nk := len(o.cfg.GroupBy)
	eIdx := o.cfg.EpochIdx
	if boundary != nil && eIdx < 0 {
		return // epochless groups drain only at Flush
	}
	var boundWord uint64
	wordB := false
	if boundary != nil {
		if u, ok := boundary.AsUint(); ok && boundary.Kind() == sqlval.KindUint {
			boundWord, wordB = u, true
		}
	}
	retired := func(g int) bool {
		if boundary == nil {
			return true
		}
		ew := o.denseKeys[g][eIdx]
		if wordB {
			return ew < boundWord
		}
		return sqlval.Uint(ew).Compare(*boundary) < 0
	}
	done := o.denseDone[:0]
	for g := 0; g < o.denseN; g++ {
		if retired(g) {
			done = append(done, int32(g))
		}
	}
	o.denseDone = done
	if len(done) == 0 {
		return
	}
	if cap(o.denseRows) < len(done) {
		o.denseRows = make([]int32, len(done))
	}
	o.denseSort(done, o.denseRows[:len(done)], nk, eIdx)
	na := len(o.cfg.Aggs)
	outLen := o.denseDeliver(done, nk, na)
	total := o.denseN
	if len(done) == total {
		o.denseReset()
		o.colResetTable()
		o.minEpoch, o.minSet = sqlval.Value{}, false
	} else {
		o.denseCompact(retired, nk, eIdx)
	}
	if o.cfg.OnEpochFlush != nil {
		o.cfg.OnEpochFlush(o.lastWM, len(done), outLen)
	}
}

// denseDeliver builds and pushes the sorted epoch batch, returning
// the emitted row count. With ColEmit on and no Having/Post, the
// output columns build straight from the dense arrays (all results
// are uint words unless an integer sum went negative); otherwise rows
// materialize exactly like the map path's emit and the usual
// SetFromRows/PushAll delivery applies.
func (o *Aggregate) denseDeliver(done []int32, nk, na int) int {
	direct := o.cfg.ColEmit && o.cfg.Having == nil && o.cfg.Post == nil && nk+na > 0
	if direct {
		for j, kind := range o.denseAcc {
			if kind != denseSum {
				continue
			}
			w := o.denseAccW[j]
			for _, g := range done {
				if int64(w[g]) < 0 {
					direct = false
					break
				}
			}
			if !direct {
				break
			}
		}
	}
	if direct {
		ec := &o.emitCols
		width := nk + na
		if cap(ec.Cols) < width {
			ec.Cols = make([]ColVec, width)
		}
		ec.Cols = ec.Cols[:width]
		m := len(done)
		for c := 0; c < width; c++ {
			d := &ec.Cols[c]
			d.Kind = sqlval.KindUint
			d.Str, d.Valid = nil, nil
			d.U64 = growUints(d.U64, m)
			if c < nk {
				for k, g := range done {
					d.U64[k] = o.denseKeys[g][c]
				}
			} else {
				w := o.denseAccW[c-nk]
				for k, g := range done {
					d.U64[k] = w[g]
				}
			}
		}
		ec.Len = m
		PushColsAll(o.cfg.Out, ec)
		return m
	}
	out := o.emitBuf[:0]
	if o.cfg.Post == nil {
		width := nk + na
		backing := make([]sqlval.Value, 0, len(done)*width)
		for _, g := range done {
			start := len(backing)
			for _, w := range o.denseKeys[g] {
				backing = append(backing, sqlval.Uint(w))
			}
			for j := 0; j < na; j++ {
				backing = append(backing, o.denseResult(j, g))
			}
			row := Tuple(backing[start:len(backing):len(backing)])
			if o.cfg.Having != nil && !o.cfg.Having(row).AsBool() {
				backing = backing[:start]
				continue
			}
			out = append(out, row)
		}
	} else {
		np := len(o.cfg.Post)
		backing := make([]sqlval.Value, 0, len(done)*np)
		for _, g := range done {
			row := o.rowBuf[:0]
			for _, w := range o.denseKeys[g] {
				row = append(row, sqlval.Uint(w))
			}
			for j := 0; j < na; j++ {
				row = append(row, o.denseResult(j, g))
			}
			o.rowBuf = row
			if o.cfg.Having != nil && !o.cfg.Having(row).AsBool() {
				continue
			}
			start := len(backing)
			for _, p := range o.cfg.Post {
				backing = append(backing, p(row))
			}
			out = append(out, Tuple(backing[start:len(backing):len(backing)]))
		}
	}
	o.emitBuf = out
	if o.cfg.ColEmit && len(out) > 0 && o.emitCols.SetFromRows(out) {
		PushColsAll(o.cfg.Out, &o.emitCols)
	} else {
		PushAll(o.cfg.Out, out)
	}
	return len(out)
}

// denseKeyLess is the comparison the dense radix order encodes:
// epoch word first, then key words column-major, all unsigned.
func (o *Aggregate) denseKeyLess(a, b int32, nk, eIdx int) bool {
	ka, kb := o.denseKeys[a], o.denseKeys[b]
	if eIdx >= 0 && ka[eIdx] != kb[eIdx] {
		return ka[eIdx] < kb[eIdx]
	}
	for c := 0; c < nk; c++ {
		if ka[c] != kb[c] {
			return ka[c] < kb[c]
		}
	}
	return false
}

// denseInsertion insertion-sorts a small segment by full-key compare.
func (o *Aggregate) denseInsertion(gs []int32, nk, eIdx int) {
	for i := 1; i < len(gs); i++ {
		g := gs[i]
		j := i - 1
		for j >= 0 && o.denseKeyLess(g, gs[j], nk, eIdx) {
			gs[j+1] = gs[j]
			j--
		}
		gs[j+1] = g
	}
}

// denseSort sorts the retired group indices by (epoch word, key words
// column-major), all unsigned — the same order the row path's encoded
// key bytes produce for all-uint keys. Fixed-width radix keys waste
// most of their bytes on network data (epoch counters and IPv4 words
// leave high bytes constant), so it first computes OR/AND masks per
// key word over the whole set and MSD-radix-sorts over only the byte
// positions that actually vary.
func (o *Aggregate) denseSort(gs, scratch []int32, nk, eIdx int) {
	if len(gs) <= radixCutoff {
		o.denseInsertion(gs, nk, eIdx)
		return
	}
	pos := o.densePos[:0]
	addWord := func(wi int) {
		var orw uint64
		andw := ^uint64(0)
		for _, g := range gs {
			w := o.denseKeys[g][wi]
			orw |= w
			andw &= w
		}
		diff := orw ^ andw
		for b := 0; b < 8; b++ {
			if byte(diff>>(56-8*uint(b))) != 0 {
				pos = append(pos, uint16(wi<<3|b))
			}
		}
	}
	if eIdx >= 0 {
		addWord(eIdx)
	}
	for c := 0; c < nk; c++ {
		if c != eIdx {
			addWord(c)
		}
	}
	o.densePos = pos
	if len(pos) == 0 {
		return // all keys identical
	}
	o.denseRadix(gs, scratch, pos, nk, eIdx, 0)
}

// denseRadix MSD-radix-sorts over the varying byte positions denseSort
// computed, falling back to insertion sort on small segments (full-key
// compare is safe there: the prefix positions are already fixed, and
// positions not in the list are constant across the whole set).
func (o *Aggregate) denseRadix(gs, scratch []int32, pos []uint16, nk, eIdx, depth int) {
	for {
		if len(gs) <= radixCutoff || depth >= len(pos) {
			o.denseInsertion(gs, nk, eIdx)
			return
		}
		p := pos[depth]
		wi, sh := int(p>>3), 56-8*uint(p&7)
		var counts [256]int
		for _, g := range gs {
			counts[byte(o.denseKeys[g][wi]>>sh)]++
		}
		first := -1
		single := true
		for b, c := range counts {
			if c != 0 {
				if first < 0 {
					first = b
				} else {
					single = false
					break
				}
			}
		}
		if single {
			depth++
			continue
		}
		var offs [256]int
		sum := 0
		for b, c := range counts {
			offs[b] = sum
			sum += c
		}
		for _, g := range gs {
			b := byte(o.denseKeys[g][wi] >> sh)
			scratch[offs[b]] = g
			offs[b]++
		}
		copy(gs, scratch)
		start := 0
		for b := 0; b < 256; b++ {
			c := counts[b]
			if c > 1 {
				o.denseRadix(gs[start:start+c], scratch[start:start+c], pos, nk, eIdx, depth+1)
			}
			start += c
		}
		return
	}
}

// denseCompact copies surviving groups' key words and state out of
// the dense arrays (their views point into colWords, which the table
// reset truncates), rebuilds the table, and reinserts them.
func (o *Aggregate) denseCompact(retired func(int) bool, nk, eIdx int) {
	sw := o.survWords[:0]
	if o.survAccW == nil {
		o.survAccW = make([][]uint64, len(o.denseAcc))
	}
	for j := range o.survAccW {
		o.survAccW[j] = o.survAccW[j][:0]
	}
	var survMin uint64
	nsurv := 0
	for g := 0; g < o.denseN; g++ {
		if retired(g) {
			continue
		}
		sw = append(sw, o.denseKeys[g]...)
		for j := range o.denseAccW {
			o.survAccW[j] = append(o.survAccW[j], o.denseAccW[j][g])
		}
		ew := o.denseKeys[g][eIdx]
		if nsurv == 0 || ew < survMin {
			survMin = ew
		}
		nsurv++
	}
	o.survWords = sw
	o.denseReset()
	o.colResetTable()
	for s := 0; s < nsurv; s++ {
		src := sw[s*nk : (s+1)*nk]
		start := len(o.colWords)
		o.colWords = append(o.colWords, src...)
		words := o.colWords[start:len(o.colWords):len(o.colWords)]
		h := hashWords(words)
		mask := uint64(len(o.colTable) - 1)
		j := h & mask
		for o.colTable[j].gen == o.colGen {
			j = (j + 1) & mask
		}
		gi := int32(o.denseN)
		o.denseN++
		o.denseKeys = append(o.denseKeys, words)
		for a := range o.denseAccW {
			o.denseAccW[a] = append(o.denseAccW[a], o.survAccW[a][s])
		}
		o.colTable[j] = colSlot{h: h, words: words, gi: gi + 1, gen: o.colGen}
		o.colCount++
		if o.colCount*4 >= len(o.colTable)*3 {
			o.colGrow()
		}
	}
	o.minEpoch, o.minSet = sqlval.Uint(survMin), nsurv > 0
}

func (s *JoinSideConfig) colKeysReady() bool {
	if len(s.ColKeys) != len(s.Keys) {
		return false
	}
	for i := range s.ColKeys {
		if s.ColKeys[i].U == nil {
			return false
		}
	}
	return true
}

// PushCols implements ColConsumer. The join stores tuples either way,
// so the batch always pivots to durable rows; what vectorizes is the
// key evaluation — whole-column kernels instead of one closure tree
// per tuple — before each row runs the ordinary build/probe.
//
//qap:hot
func (p *joinPort) PushCols(cb *ColBatch) {
	if cb.Len == 0 {
		return
	}
	j := p.j
	b := cb.AppendRows(GetBatch())
	side := &j.cfg.Left
	myTab, otherTab := j.leftTab, j.rightTab
	if !p.left {
		side = &j.cfg.Right
		myTab, otherTab = j.rightTab, j.leftTab
	}
	if cb.AllUint() && side.colKeysReady() {
		kvs := j.colKeyVecs[:0]
		for i := range side.ColKeys {
			kvs = append(kvs, side.ColKeys[i].U(cb))
		}
		j.colKeyVecs = kvs
		for i, t := range b {
			vals := j.valsBuf[:0]
			for _, kv := range kvs {
				vals = append(vals, sqlval.Uint(kv[i]))
			}
			j.valsBuf = vals
			j.probeInsert(t, p.left, side, myTab, otherTab, vals)
		}
	} else {
		for _, t := range b {
			j.pushFast(t, p.left)
		}
	}
	PutBatch(b)
}
