package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches a path from the test server and returns status, body.
func get(t *testing.T, srv *httptest.Server, path string) (int, http.Header, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// TestTelemetryMetricsServesReportBytes is the /metrics contract: the
// endpoint serves exactly rep.Prometheus() — same bytes a -prom-out
// file would hold — with the exposition content type, and re-publishing
// swaps the whole document atomically.
func TestTelemetryMetricsServesReportBytes(t *testing.T) {
	tel := NewTelemetry()
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	// Before any report: empty body, still well-typed.
	code, hdr, body := get(t, srv, "/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("pre-publish /metrics = %d %q, want 200 with empty body", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the Prometheus exposition type", ct)
	}

	rep := sampleReport()
	tel.SetReport(rep)
	_, _, body = get(t, srv, "/metrics")
	if want := rep.Prometheus(); body != want {
		t.Errorf("/metrics body differs from rep.Prometheus():\n--- served ---\n%s--- rendered ---\n%s", body, want)
	}

	// Publishing a new report replaces the document wholesale.
	rep2 := sampleReport()
	rep2.DurationSec = 999
	tel.SetReport(rep2)
	_, _, body = get(t, srv, "/metrics")
	if !strings.Contains(body, "qap_run_duration_seconds 999") {
		t.Errorf("re-published report not served:\n%s", body)
	}
}

// TestTelemetryDebugEndpoints: /debug/vars exposes the "qap" expvar
// map mirroring the headline gauges, and the pprof index is mounted.
func TestTelemetryDebugEndpoints(t *testing.T) {
	tel := NewTelemetry()
	tel.SetReport(sampleReport())
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	code, _, body := get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	for _, want := range []string{`"qap"`, `"hosts": 1`, `"nodes": 2`, `"duration_sec": 120`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/vars missing %s:\n%s", want, body)
		}
	}

	code, _, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ = %d, want the pprof index page", code)
	}
	// The dedicated pprof handlers must be routed too. cmdline is the
	// cheap one to hit (profile would block for its sampling window);
	// the index page above already links /debug/pprof/profile.
	code, _, body = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d with %d bytes, want 200 with the process args", code, len(body))
	}
}
