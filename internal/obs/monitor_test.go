package obs

import (
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping is the regression test for the exposition
// format bug: label values used to be rendered with Go's %q, which
// emits \xNN/\uNNNN escapes the Prometheus text format does not define,
// so any non-ASCII query name produced an unparseable exposition. Only
// backslash, double quote, and newline may be escaped; everything else
// must pass through byte-for-byte.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := sampleReport()
	r.Nodes[0].Query = "q-héavy \"x\\y\nz"
	out := r.Prometheus()
	if want := `query="q-héavy \"x\\y\nz"`; !strings.Contains(out, want) {
		t.Errorf("rendering missing properly escaped label %s:\n%s", want, out)
	}
	for _, bad := range []string{`\x`, `\u00`, "h\\xc3"} {
		if strings.Contains(out, bad) {
			t.Errorf("rendering contains Go-quoting artifact %q:\n%s", bad, out)
		}
	}
	// Every sample line must still be parseable: name{labels} value or
	// name value, with balanced quotes outside escapes.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if open := strings.IndexByte(line, '{'); open >= 0 {
			close := strings.LastIndexByte(line, '}')
			if close < open {
				t.Fatalf("malformed sample line: %s", line)
			}
			quotes := 0
			body := line[open+1 : close]
			for i := 0; i < len(body); i++ {
				switch body[i] {
				case '\\':
					i++ // skip the escaped byte
				case '"':
					quotes++
				}
			}
			if quotes%2 != 0 {
				t.Errorf("unbalanced quotes in labels of: %s", line)
			}
		}
	}
}

// TestPrometheusWindowFamily: a monitored report exposes the windowed
// load series as qap_host_window_* gauges labeled by host and window.
func TestPrometheusWindowFamily(t *testing.T) {
	r := sampleReport()
	r.LoadWindowSec = 10
	r.LoadSeries = []LoadWindow{
		{Window: 0, StartSec: 0, EndSec: 10, Hosts: []HostWindow{
			{Host: 0, CPUUnits: 12.5, NetTuplesIn: 3, NetBytesIn: 96, Tuples: 40},
			{Host: 1, Tuples: 7},
		}},
		{Window: 1, StartSec: 10, EndSec: 20, Hosts: []HostWindow{
			{Host: 0, NetBytesIn: 320, Tuples: 11},
		}},
	}
	out := r.Prometheus()
	for _, want := range []string{
		"qap_host_window_seconds 10",
		`qap_host_window_net_bytes_in{host="0",window="0"} 96`,
		`qap_host_window_net_bytes_in{host="0",window="1"} 320`,
		`qap_host_window_net_tuples_in{host="0",window="0"} 3`,
		`qap_host_window_cpu_units{host="0",window="0"} 12.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendering:\n%s", want, out)
		}
	}
	// Unmonitored reports must not grow empty families.
	if plain := sampleReport().Prometheus(); strings.Contains(plain, "qap_host_window") {
		t.Error("window family emitted without monitoring enabled")
	}
}

// TestMaxHostNetBytesPerSec covers the window-rate helper, including
// the degenerate empty and zero-length windows.
func TestMaxHostNetBytesPerSec(t *testing.T) {
	w := LoadWindow{StartSec: 10, EndSec: 20, Hosts: []HostWindow{
		{Host: 0, NetBytesIn: 100}, {Host: 1, NetBytesIn: 450}, {Host: 2, NetBytesIn: 0},
	}}
	if got := w.MaxHostNetBytesPerSec(); got != 45 {
		t.Errorf("rate = %v, want 45", got)
	}
	if got := (LoadWindow{StartSec: 5, EndSec: 5}).MaxHostNetBytesPerSec(); got != 0 {
		t.Errorf("zero-length window rate = %v, want 0", got)
	}
	if got := (LoadWindow{StartSec: 0, EndSec: 10}).MaxHostNetBytesPerSec(); got != 0 {
		t.Errorf("empty window rate = %v, want 0", got)
	}
}

// TestFirstLoadViolation covers the trigger scan: warmup skipping,
// factor inflation (and the factor<=0 fallback to 1), and the
// first-hit-wins contract.
func TestFirstLoadViolation(t *testing.T) {
	mk := func(win int, bps int64) LoadWindow {
		return LoadWindow{Window: win, StartSec: uint64(win) * 10, EndSec: uint64(win+1) * 10,
			Hosts: []HostWindow{{Host: 0, NetBytesIn: bps * 10}}}
	}
	series := []LoadWindow{mk(0, 900), mk(1, 400), mk(2, 650), mk(3, 800)}

	// Bound 500, factor 1.2 -> threshold 600: window 0 is warmup, so
	// the first violation is window 2 at 650 B/s.
	if win, rate := FirstLoadViolation(series, 500, 1.2, 1); win != 2 || rate != 650 {
		t.Errorf("violation = (%d, %v), want (2, 650)", win, rate)
	}
	// factor <= 0 behaves as 1.
	if win, _ := FirstLoadViolation(series, 500, 0, 1); win != 2 {
		t.Errorf("factor 0: window %d, want 2", win)
	}
	// Warmup larger than the series: nothing fires.
	if win, rate := FirstLoadViolation(series, 500, 1.2, 10); win != -1 || rate != 0 {
		t.Errorf("all-warmup scan = (%d, %v), want (-1, 0)", win, rate)
	}
	// Everything inside the bound: nothing fires.
	if win, _ := FirstLoadViolation(series, 1000, 1.5, 0); win != -1 {
		t.Errorf("in-bound scan fired at window %d", win)
	}
	if win, _ := FirstLoadViolation(nil, 0, 1, 0); win != -1 {
		t.Errorf("empty series fired at window %d", win)
	}
}
