package qap

import (
	"fmt"
	"strings"

	"qap/internal/netgen"
)

// The paper's evaluation workloads (Section 6), verbatim where the
// paper gives GSQL and reconstructed from its prose otherwise.
const (
	// SuspiciousFlowsQuery is Section 6.1's aggregation: traffic flows
	// filtered to those whose OR-ed TCP flags match an attack pattern
	// (~5% of flows in the trace).
	SuspiciousFlowsQuery = `
query suspicious:
SELECT tb, srcIP, destIP, srcPort, destPort,
       OR_AGGR(flags) as orflag, COUNT(*) as cnt, SUM(len) as bytes
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP, srcPort, destPort
HAVING OR_AGGR(flags) = #PATTERN#`

	// QuerySetSection62 pairs an independent subnet aggregation
	// (grouping on srcIP & 0xFFF0, destIP) with the TCP-jitter query:
	// a self-join pairing consecutive packets (by sequence number) of
	// the same flow within an epoch, aggregated into per-flow jitter
	// statistics — "often used ... for monitoring TCP session jitter".
	QuerySetSection62 = `
query subnet_agg:
SELECT tb, subnet, destIP, COUNT(*) as cnt, SUM(len) as bytes
FROM TCP
GROUP BY time/60 AS tb, srcIP & 0xFFF0 AS subnet, destIP

query jitter_pairs:
SELECT S1.time AS t1, S1.srcIP AS srcIP, S1.destIP AS destIP,
       S1.srcPort AS srcPort, S1.destPort AS destPort,
       S2.time - S1.time AS delay
FROM TCP S1, TCP S2
WHERE S1.time/60 = S2.time/60 AND S1.srcIP = S2.srcIP AND S1.destIP = S2.destIP
  AND S1.srcPort = S2.srcPort AND S1.destPort = S2.destPort
  AND S1.seq + 1 = S2.seq

query jitter:
SELECT tb, srcIP, destIP, srcPort, destPort,
       AVG(delay) AS avg_delay, MAX(delay) AS max_delay, COUNT(*) AS pairs
FROM jitter_pairs
GROUP BY t1/60 AS tb, srcIP, destIP, srcPort, destPort`

	// ComplexQuerySet is the Section 3.2 / 6.3 DAG: flows,
	// heavy_flows, and the flow_pairs self-join across epochs.
	ComplexQuerySet = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP

query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1`
)

// ExperimentConfig scales the paper's experiments to the host running
// them.
type ExperimentConfig struct {
	// Trace configures the synthetic packet trace shared by every
	// configuration in a figure.
	Trace netgen.Config
	// MaxHosts is the largest cluster size (the paper sweeps 1-4).
	MaxHosts int
	// PartitionsPerHost matches the paper's 2 partitions per host.
	PartitionsPerHost int
	// CalibrationLoad is the aggregator CPU percentage the first
	// (naive) configuration should show on a single host; the host
	// capacity is derived from it, mirroring how the paper's absolute
	// percentages reflect their fixed 2008 hardware.
	CalibrationLoad float64
	// Workers selects the simulator's execution engine (see
	// DeployConfig.Workers); results are identical for any value.
	Workers int
	// BatchSize selects the operator batch size (see
	// DeployConfig.BatchSize); canonical results are identical for any
	// value.
	BatchSize int
}

// DefaultExperimentConfig returns a laptop-scale version of the
// paper's setup.
func DefaultExperimentConfig() ExperimentConfig {
	tr := netgen.DefaultConfig()
	tr.DurationSec = 300
	tr.PacketsPerSec = 1500
	// A diverse address mix keeps per-epoch group cardinalities a
	// sizeable fraction of the packet rate, as in the paper's
	// data-center trace where partial-aggregate duplication dominated
	// the partition-agnostic configurations.
	tr.SrcHosts = 6000
	tr.DstHosts = 4000
	tr.ZipfS = 1.1
	return ExperimentConfig{
		Trace:             tr,
		MaxHosts:          4,
		PartitionsPerHost: 2,
		CalibrationLoad:   55,
	}
}

// Series is one line of a figure: a configuration measured across
// cluster sizes.
type Series struct {
	Name   string
	Values []float64 // indexed by hosts-1
}

// Figure is a regenerated evaluation figure.
type Figure struct {
	ID     string // e.g. "8"
	Title  string
	Metric string // e.g. "CPU load (%)" or "network load (tuples/sec)"
	Hosts  []int
	Series []Series
}

// Table renders the figure as an aligned text table, one row per
// cluster size — the same series the paper plots.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s [%s]\n", f.ID, f.Title, f.Metric)
	fmt.Fprintf(&b, "%8s", "# nodes")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %22s", s.Name)
	}
	b.WriteByte('\n')
	for i, h := range f.Hosts {
		fmt.Fprintf(&b, "%8d", h)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "  %22.1f", s.Values[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Strategy is one system configuration compared within a figure.
type Strategy struct {
	Name string
	// Partitioning is the splitter hash set; nil = round robin.
	Partitioning Set
	// PartialScope selects the pre-aggregation granularity.
	PartialScope Scope
	// DisablePartialAgg turns partial aggregation off entirely.
	DisablePartialAgg bool
}

// experiment measures a query set under several strategies across
// cluster sizes, reporting aggregator CPU and network load plus the
// mean leaf CPU load.
type experimentResult struct {
	CPU, Net *Figure
	// LeafCPU[name][i] is the mean non-aggregator host load.
	LeafCPU map[string][]float64
}

func runExperiment(id, title, queries string, strategies []Strategy, cfg ExperimentConfig) (*experimentResult, error) {
	if cfg.MaxHosts <= 0 {
		cfg.MaxHosts = 4
	}
	if cfg.PartitionsPerHost <= 0 {
		cfg.PartitionsPerHost = 2
	}
	if cfg.CalibrationLoad <= 0 {
		cfg.CalibrationLoad = 55
	}
	sys, err := Load(netgen.SchemaDDL, queries)
	if err != nil {
		return nil, err
	}
	trace := netgen.Generate(cfg.Trace)
	params := map[string]Value{"PATTERN": Uint(netgen.AttackPattern)}

	run := func(st Strategy, hosts int, capacity float64) (*RunResult, error) {
		dep, err := sys.Deploy(DeployConfig{
			Hosts:             hosts,
			PartitionsPerHost: cfg.PartitionsPerHost,
			Partitioning:      st.Partitioning,
			PartialScope:      st.PartialScope,
			DisablePartialAgg: st.DisablePartialAgg,
			Costs:             CostConfig{CapacityPerSec: capacity},
			Params:            params,
			Workers:           cfg.Workers,
			BatchSize:         cfg.BatchSize,
		})
		if err != nil {
			return nil, err
		}
		return dep.Run("TCP", trace.Packets)
	}

	// Calibrate host capacity so the first strategy's single-host run
	// shows CalibrationLoad percent on the aggregator.
	base, err := run(strategies[0], 1, 0)
	if err != nil {
		return nil, err
	}
	capacity := base.Metrics.Hosts[0].CPUUnits /
		(base.Metrics.DurationSec * cfg.CalibrationLoad / 100)

	res := &experimentResult{
		CPU:     &Figure{ID: id, Title: title, Metric: "CPU load on aggregator node (%)"},
		Net:     &Figure{ID: nextFigID(id), Title: title, Metric: "network load on aggregator node (tuples/sec)"},
		LeafCPU: make(map[string][]float64),
	}
	for h := 1; h <= cfg.MaxHosts; h++ {
		res.CPU.Hosts = append(res.CPU.Hosts, h)
		res.Net.Hosts = append(res.Net.Hosts, h)
	}
	for _, st := range strategies {
		cpu := Series{Name: st.Name}
		net := Series{Name: st.Name}
		for h := 1; h <= cfg.MaxHosts; h++ {
			r, err := run(st, h, capacity)
			if err != nil {
				return nil, fmt.Errorf("qap: %s at %d hosts: %w", st.Name, h, err)
			}
			cpu.Values = append(cpu.Values, r.Metrics.CPULoad(0))
			net.Values = append(net.Values, r.Metrics.NetLoad(0))
			res.LeafCPU[st.Name] = append(res.LeafCPU[st.Name], r.Metrics.LeafCPULoad(0))
		}
		res.CPU.Series = append(res.CPU.Series, cpu)
		res.Net.Series = append(res.Net.Series, net)
	}
	return res, nil
}

// nextFigID maps a CPU figure number to its network companion
// (8 -> 9, 10 -> 11, 13 -> 14).
func nextFigID(id string) string {
	switch id {
	case "8":
		return "9"
	case "10":
		return "11"
	case "13":
		return "14"
	default:
		return id + "-net"
	}
}

// Figures8and9 reproduces Section 6.1: the suspicious-flows
// aggregation under Naive (round robin, per-partition partials),
// Optimized (round robin, per-host partials), and Partitioned (the
// analyzer's compatible set), measuring the aggregator's CPU and
// network load for 1..MaxHosts.
func Figures8and9(cfg ExperimentConfig) (cpu, net *Figure, err error) {
	strategies := []Strategy{
		{Name: "Naive", PartialScope: ScopePartition},
		{Name: "Optimized", PartialScope: ScopeHost},
		{Name: "Partitioned", Partitioning: MustParseSet("srcIP, destIP, srcPort, destPort"), PartialScope: ScopeHost},
	}
	res, err := runExperiment("8", "simple aggregation query (suspicious flows)", SuspiciousFlowsQuery, strategies, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.CPU, res.Net, nil
}

// LeafLoads reproduces Section 6.1's leaf-node claim (load on each
// leaf drops from ~80% to ~24% as hosts grow 1 to 4): the mean leaf
// CPU load per cluster size for the Naive configuration.
func LeafLoads(cfg ExperimentConfig) ([]float64, error) {
	strategies := []Strategy{{Name: "Naive", PartialScope: ScopePartition}}
	res, err := runExperiment("8", "leaf load", SuspiciousFlowsQuery, strategies, cfg)
	if err != nil {
		return nil, err
	}
	return res.LeafCPU["Naive"], nil
}

// Figures10and11 reproduces Section 6.2: an aggregation on
// (srcIP & 0xFFF0, destIP) plus the jitter self-join, under Naive,
// the suboptimal partitioning compatible only with the join, and the
// cost-model optimum compatible with both.
func Figures10and11(cfg ExperimentConfig) (cpu, net *Figure, err error) {
	strategies := []Strategy{
		{Name: "Naive", PartialScope: ScopePartition},
		{Name: "Partitioned (suboptimal)", Partitioning: MustParseSet("srcIP, destIP, srcPort, destPort"), PartialScope: ScopeHost},
		{Name: "Partitioned (optimal)", Partitioning: MustParseSet("srcIP & 0xFFF0, destIP"), PartialScope: ScopeHost},
	}
	res, err := runExperiment("10", "query set: subnet aggregation + jitter self-join", QuerySetSection62, strategies, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.CPU, res.Net, nil
}

// Figures13and14 reproduces Section 6.3: the flows / heavy_flows /
// flow_pairs DAG under Naive, Optimized, the partially compatible
// (srcIP, destIP), and the fully compatible (srcIP).
func Figures13and14(cfg ExperimentConfig) (cpu, net *Figure, err error) {
	strategies := []Strategy{
		{Name: "Naive", PartialScope: ScopePartition},
		{Name: "Optimized", PartialScope: ScopeHost},
		{Name: "Partitioned (partial)", Partitioning: MustParseSet("srcIP, destIP"), PartialScope: ScopeHost},
		{Name: "Partitioned (full)", Partitioning: MustParseSet("srcIP"), PartialScope: ScopeHost},
	}
	res, err := runExperiment("13", "complex query set: flows / heavy_flows / flow_pairs", ComplexQuerySet, strategies, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.CPU, res.Net, nil
}
