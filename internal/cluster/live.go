package cluster

// The live TCP backend (RunConfig.Engine == EngineLive).
//
// The live engine is the paper's Section 3.3 architecture made real:
// each leaf island runs as a node behind a TCP listener (in-process
// goroutines by default, separate qap-node processes via
// LiveConfig.Nodes), the driver plays the splitter and ships every
// island its hash-routed rounds as length-prefixed serialized tuple
// batches over a persistent connection with credit-based backpressure,
// and the nodes ship their captured island-crossing deliveries back as
// link messages. The collector side feeds those into the exact same
// central replay merge the simulator's parallel engine uses
// (replayLinks), so canonical outputs, OpStats, monitoring series, and
// trace bytes are byte-identical to the simulator:
//
//   - The driver reproduces the parallel engine's round structure
//     verbatim — same rounds, same tags, same per-destination grouping
//     (scalar rounds ship maximal same-destination runs whose tags the
//     node re-expands per tuple; batched rounds ship the batched
//     driver's per-partition groups) — so each node executes exactly
//     the event sequence the simulator's worker would.
//
//   - Tuples travel in the exec batch wire codec, which round-trips
//     every value bit-exactly (floats as IEEE bits), so operator state
//     evolves identically on both sides of the wire.
//
//   - The transport (internal/live) delivers each direction's frames
//     exactly once and in order across reconnects, so a dropped,
//     duplicated, or stalled connection changes nothing but wall time.
//
// In-process nodes execute directly against this Runner's islands, so
// finalize sees their shards as usual. Remote nodes (qap-node) execute
// against their own compiled copy of the plan and ship their island
// shards back in a final result frame, which installHostShard copies
// into the local islands before finalize.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"qap/internal/exec"
	"qap/internal/live"
	"qap/internal/netgen"
	"qap/internal/obs"
	"qap/internal/obs/trace"
	"qap/internal/sqlval"
)

// LiveConfig tunes the live backend.
type LiveConfig struct {
	// Nodes lists one remote qap-node address per leaf host. Empty (the
	// default) runs every node in-process on its own goroutine.
	Nodes []string
	// Timeout bounds every blocking transport step (default 30s); a
	// wedged node fails the run with a positioned error.
	Timeout time.Duration
	// Credits is the per-host feed credit window (unacknowledged feed
	// messages the splitter may hold; default 4) — the backpressure
	// bound on splitter memory.
	Credits int
	// LinkWindow bounds a node's unacknowledged link frames (default
	// 256).
	LinkWindow int
	// MaxAttempts bounds consecutive failed connection attempts per
	// host before the run fails (default 8).
	MaxAttempts int
	// AcceptGrace is how long a served host waits for its first
	// connection (ServeLiveHost; default the transport timeout).
	AcceptGrace time.Duration
	// Faults injects deterministic transport misbehavior (dropped,
	// duplicated, stalled, cut connections) for recovery testing.
	Faults *live.FaultPlan
}

// transportTimeout is the effective live transport timeout.
func (c LiveConfig) transportTimeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

// liveTransportConfig maps LiveConfig onto the transport knobs.
func (r *Runner) liveTransportConfig() live.Config {
	return live.Config{
		Timeout:     r.liveCfg.Timeout,
		Credits:     r.liveCfg.Credits,
		LinkWindow:  r.liveCfg.LinkWindow,
		MaxAttempts: r.liveCfg.MaxAttempts,
	}
}

// runLive executes the trace on the live TCP backend. The caller
// goroutine runs the central replay loop, exactly like runParallel.
func (r *Runner) runLive(cursors []*streamCursor) (*Result, error) {
	hosts := r.plan.Hosts
	bs := r.batchSize

	advTargets, flushTargets := r.buildTargets(cursors)
	outs := make([][]exec.Consumer, len(cursors))
	streams := make([]string, len(cursors))
	for i, c := range cursors {
		outs[i] = c.rt.outs
		streams[i] = c.name
	}
	fp := r.liveFingerprint()

	lcfg := r.liveTransportConfig()
	if r.liveCfg.Faults != nil {
		lcfg.Dial = r.liveCfg.Faults.Dial(live.DefaultDial(r.liveCfg.transportTimeout()))
	}
	// The replay receive guard: an explicit DriveTimeout wins, else the
	// transport timeout (the live backend never runs unguarded).
	recvTimeout := r.driveTimeout
	if recvTimeout <= 0 {
		recvTimeout = r.liveCfg.transportTimeout()
	}

	remote := len(r.liveCfg.Nodes) > 0
	if remote && len(r.liveCfg.Nodes) != hosts {
		return nil, fmt.Errorf("cluster: live: %d node addresses for %d hosts", len(r.liveCfg.Nodes), hosts)
	}
	var nodes []*live.Node
	var nodeWG sync.WaitGroup
	nodeErr := make(chan error, hosts+1)
	addrs := r.liveCfg.Nodes
	if !remote {
		for h := 0; h < hosts; h++ {
			x := &islandExec{
				r: r, isl: r.islands[h],
				adv: advTargets[h], flush: flushTargets[h],
				outs: outs, bs: bs,
			}
			ncfg := lcfg
			if r.liveCfg.Faults != nil {
				ncfg.WrapAccept = r.liveCfg.Faults.WrapAccept(h)
			}
			n, err := live.NewNode(ncfg, live.NodeOptions{
				Host:        h,
				Fingerprint: fp,
				BatchSize:   bs,
				NewExecutor: func(*live.Hello) (live.Executor, error) { return x, nil },
			}, "")
			if err != nil {
				for _, prev := range nodes {
					prev.Close()
				}
				return nil, err
			}
			nodes = append(nodes, n)
			addrs = append(addrs, n.Addr())
		}
		for _, n := range nodes {
			nodeWG.Add(1)
			go func(n *live.Node) {
				defer nodeWG.Done()
				if err := n.Serve(); err != nil {
					select {
					case nodeErr <- err:
					default:
					}
				}
			}(n)
		}
	}

	sp := live.NewSplitter(lcfg, live.Hello{BatchSize: bs, Streams: streams, Fingerprint: fp}, addrs)
	sp.Start()
	closeAll := func() {
		sp.Close()
		for _, n := range nodes {
			n.Close()
		}
		nodeWG.Wait()
	}

	driveErr := make(chan error, 1)
	var driverWG sync.WaitGroup
	var dAny bool
	var dMax uint64
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		if err := r.driveLive(sp, cursors, &dAny, &dMax); err != nil {
			driveErr <- err
		}
	}()

	recv := func(waiting string) (linkBatch, error) {
		timer := time.NewTimer(recvTimeout) //qap:allow walltime -- stall guard only; a timeout poisons the run, never shapes its outputs
		defer timer.Stop()
		select {
		case m := <-sp.Links():
			return r.linkBatchOf(m)
		case err := <-sp.Errs():
			return linkBatch{}, err
		case err := <-nodeErr:
			return linkBatch{}, err
		case err := <-driveErr:
			return linkBatch{}, err
		case <-timer.C:
			return linkBatch{}, fmt.Errorf("cluster: live drive stalled: no link message within %s (%s)",
				recvTimeout, waiting)
		}
	}
	if err := r.replayLinks(hosts, recv); err != nil {
		closeAll()
		return nil, err
	}

	// Every done link has been applied, so the driver has shipped its
	// last feed; join it and surface any late error.
	driverWG.Wait()
	select {
	case err := <-driveErr:
		closeAll()
		return nil, err
	default:
	}
	// Wait for the peers to finish draining acks (and to collect the
	// remote result frames).
	if err := sp.Wait(recvTimeout); err != nil {
		closeAll()
		return nil, err
	}
	if remote {
		for h := 0; h < hosts; h++ {
			if err := r.installHostShard(h, sp.Result(h)); err != nil {
				closeAll()
				return nil, err
			}
		}
	}
	// In-process nodes exit on their own once fully acknowledged;
	// closeAll is then a no-op join that also gives finalize a
	// happens-before edge on every island shard.
	closeAll()
	return r.finalize(dAny, dMax), nil
}

// driveLive is the live splitter: the same canonical cursor merge,
// routing, round structure, and tagging as the simulator's drivers,
// shipped as serialized feed messages instead of channel sends.
func (r *Runner) driveLive(sp *live.Splitter, cursors []*streamCursor, dAny *bool, dMax *uint64) error {
	hosts := r.plan.Hosts
	bs := r.batchSize
	batched := bs > 1

	cursorIdx := make(map[*streamCursor]int, len(cursors))
	for i, c := range cursors {
		cursorIdx[c] = i
	}

	pend := make([][]live.Round, hosts)
	pendingRounds := 0
	round := -1
	ship := func(last bool) error {
		for i := 0; i < hosts; i++ {
			m := &live.FeedMsg{Last: last, Rounds: pend[i]}
			if err := sp.SendFeed(i, m); err != nil {
				return err
			}
			// SendFeed serialized the message; recycle the containers.
			for ri := range pend[i] {
				for gi := range pend[i][ri].Groups {
					exec.PutBatch(pend[i][ri].Groups[gi].Tuples)
				}
			}
			pend[i] = nil
		}
		pendingRounds = 0
		r.engBatches += int64(hosts)
		return nil
	}
	openRound := func(wm uint64) {
		round++
		r.engRounds++
		for i := 0; i < hosts; i++ {
			pend[i] = append(pend[i], live.Round{Round: round, WM: wm, Adv: true})
		}
	}
	if batched {
		for _, c := range cursors {
			c.gidx = make([]int, len(c.rt.outs))
			c.gstamp = make([]int, len(c.rt.outs))
			for p := range c.gstamp {
				c.gstamp[p] = -1
			}
		}
	}
	var valSlab []sqlval.Value
	var lastTime uint64
	first := true
	seq := uint64(0) // round-local push sequence
	for {
		best := nextCursor(cursors)
		if best == nil {
			break
		}
		pk := &best.packets[best.pos]
		best.pos++
		*dAny = true
		if pk.Time > *dMax {
			*dMax = pk.Time
		}
		if first || pk.Time > lastTime {
			if !first {
				if r.trDriver != nil {
					r.trDriver.Emit(trace.Event{Kind: trace.KindRound, Round: round, WM: lastTime, Rows: int64(seq)})
				}
				pendingRounds++
				if pendingRounds >= r.batchRounds {
					if err := ship(false); err != nil {
						return err
					}
				}
			}
			openRound(pk.Time)
			seq = 0
			lastTime, first = pk.Time, false
		}
		if cap(valSlab)-len(valSlab) < netgen.TupleCols {
			valSlab = make([]sqlval.Value, 0, tupleSlabVals)
		}
		var t exec.Tuple
		valSlab, t = pk.AppendTuple(valSlab)
		idx := best.rt.route(t)
		id := best.rt.islands[idx]
		sIdx := cursorIdx[best]
		hr := &pend[id][len(pend[id])-1]
		if batched {
			// One group per destination partition per round, tagged with
			// its first tuple's sequence — the batched drivers' grouping.
			if best.gstamp[idx] != round {
				best.gstamp[idx] = round
				best.gidx[idx] = len(hr.Groups)
				hr.Groups = append(hr.Groups, live.Group{
					Tag: phasePush | seq, Stream: sIdx, Part: idx, Tuples: exec.GetBatch(),
				})
			}
			g := &hr.Groups[best.gidx[idx]]
			g.Tuples = append(g.Tuples, t)
		} else {
			// Scalar rounds ship maximal same-destination runs of
			// consecutive sequences; the node re-expands them into
			// per-tuple tagged pushes, reproducing the scalar engine's
			// interleaved delivery order exactly.
			extended := false
			if n := len(hr.Groups); n > 0 {
				g := &hr.Groups[n-1]
				if g.Stream == sIdx && g.Part == idx && g.Tag+uint64(len(g.Tuples)) == phasePush|seq {
					g.Tuples = append(g.Tuples, t)
					extended = true
				}
			}
			if !extended {
				hr.Groups = append(hr.Groups, live.Group{
					Tag: phasePush | seq, Stream: sIdx, Part: idx,
					Tuples: append(exec.GetBatch(), t),
				})
			}
		}
		seq++
	}
	r.emitDriverTail(round, int64(seq), lastTime)
	// The flush round.
	round++
	r.engRounds++
	for i := 0; i < hosts; i++ {
		pend[i] = append(pend[i], live.Round{Round: round, Flush: true})
	}
	return ship(true)
}

// linkBatchOf converts a received link message into the replay merge's
// input, resolving wire edge ids back to the compiled edges.
func (r *Runner) linkBatchOf(m *live.LinkMsg) (linkBatch, error) {
	if m.Host < 0 || m.Host >= r.plan.Hosts {
		return linkBatch{}, fmt.Errorf("cluster: live link from unknown host %d", m.Host)
	}
	b := linkBatch{isl: m.Host, through: m.Through, done: m.Done}
	if len(m.Items) > 0 {
		b.items = make([]linkItem, len(m.Items))
	}
	for i := range m.Items {
		it := &m.Items[i]
		if it.Edge < 0 || it.Edge >= len(r.edges) {
			return linkBatch{}, fmt.Errorf("cluster: live link from host %d names unknown edge %d", m.Host, it.Edge)
		}
		li := linkItem{round: it.Round, tag: it.Tag, e: r.edges[it.Edge], wm: it.WM, mwm: it.MWM}
		switch it.Kind {
		case live.ItemPush:
			li.kind, li.t = itemPush, it.Tuple
		case live.ItemPushBatch:
			li.kind, li.b = itemPushBatch, it.Batch
		case live.ItemAdvance:
			li.kind = itemAdvance
		case live.ItemFlush:
			li.kind = itemFlush
		default:
			return linkBatch{}, fmt.Errorf("cluster: live link from host %d has unknown item kind %d", m.Host, it.Kind)
		}
		b.items[i] = li
	}
	return b, nil
}

// islandExec executes one leaf island's feed messages — the node-side
// half of the live backend. It reproduces the parallel engine's worker
// loop exactly: advances, tagged pushes, flushes, window closes, and
// island-crossing capture into the outbox.
type islandExec struct {
	r          *Runner
	isl        *island
	adv, flush []tagged
	// outs[s][p] is stream s's partition-p scan entry, with s indexing
	// the splitter's canonical stream order.
	outs [][]exec.Consumer
	bs   int
	// colScratch pivots delivered chunks into columns when the runner
	// is columnar; Execute runs on one goroutine per node, so the
	// scratch has a single writer.
	colScratch exec.ColBatch
	// shipResult marks a remotely served island (ServeLiveHost): the
	// final island shards travel back in a result frame.
	shipResult bool
}

// Execute implements live.Executor.
func (x *islandExec) Execute(m *live.FeedMsg) (*live.LinkMsg, error) {
	isl := x.isl
	r := x.r
	last := 0
	for ri := range m.Rounds {
		rd := &m.Rounds[ri]
		isl.curRound = rd.Round
		last = rd.Round
		if rd.Adv {
			isl.curWM = rd.WM
			// Close the leaf island's monitoring windows at the same
			// boundary every other engine does: before the new round
			// touches any counter.
			if r.winSec > 0 {
				isl.closeWindowsTo(int(rd.WM / r.winSec))
			}
			for _, at := range x.adv {
				isl.curTag = at.tag
				at.c.Advance(rd.WM)
			}
		}
		for gi := range rd.Groups {
			g := &rd.Groups[gi]
			if g.Stream < 0 || g.Stream >= len(x.outs) || g.Part < 0 || g.Part >= len(x.outs[g.Stream]) {
				return nil, fmt.Errorf("group targets stream %d partition %d out of range", g.Stream, g.Part)
			}
			out := x.outs[g.Stream][g.Part]
			if x.bs > 1 {
				isl.curTag = g.Tag
				for off := 0; off < len(g.Tuples); off += x.bs {
					end := off + x.bs
					if end > len(g.Tuples) {
						end = len(g.Tuples)
					}
					chunk := g.Tuples[off:end]
					if r.columnar && x.colScratch.SetFromRows(chunk) {
						exec.PushColsAll(out, &x.colScratch)
					} else {
						exec.PushAll(out, chunk)
					}
				}
			} else {
				for i := range g.Tuples {
					isl.curTag = g.Tag + uint64(i)
					out.Push(g.Tuples[i])
				}
			}
		}
		if rd.Flush {
			for _, ft := range x.flush {
				isl.curTag = ft.tag
				ft.c.Flush()
			}
		}
	}
	items := isl.outbox
	isl.outbox = nil
	lm := &live.LinkMsg{Through: last, Done: m.Last}
	if len(items) > 0 {
		lm.Items = make([]live.Item, len(items))
	}
	for i := range items {
		it := &items[i]
		li := live.Item{Round: it.round, Tag: it.tag, Edge: it.e.id, WM: it.wm, MWM: it.mwm}
		switch it.kind {
		case itemPush:
			li.Kind, li.Tuple = live.ItemPush, it.t
		case itemPushBatch:
			li.Kind, li.Batch = live.ItemPushBatch, it.b
		case itemAdvance:
			li.Kind = live.ItemAdvance
		case itemFlush:
			li.Kind = live.ItemFlush
		}
		lm.Items[i] = li
	}
	return lm, nil
}

// liveHostShard is the serialized island state a remote node ships
// back in its result frame, in the shape finalize needs.
type liveHostShard struct {
	Metrics  HostMetrics         `json:"metrics"`
	LastSnap HostMetrics         `json:"last_snap"`
	CurWin   int                 `json:"cur_win"`
	Wins     []HostMetrics       `json:"wins,omitempty"`
	Rows     map[string]int64    `json:"rows,omitempty"`
	Ops      map[int]obs.OpStats `json:"ops,omitempty"`
	LastOps  map[int]obs.OpStats `json:"last_ops,omitempty"`
	Trace    []trace.Event       `json:"trace,omitempty"`
}

// Result implements live.Executor.
func (x *islandExec) Result() ([]byte, error) {
	if !x.shipResult {
		return nil, nil
	}
	isl := x.isl
	sh := liveHostShard{
		Metrics:  isl.metrics,
		LastSnap: isl.lastSnap,
		CurWin:   isl.curWin,
		Wins:     isl.wins,
		Trace:    isl.tr.Events(),
	}
	if len(isl.rows) > 0 {
		sh.Rows = make(map[string]int64, len(isl.rows))
		for name, n := range isl.rows { //qap:allow maprange -- map-to-map copy, order-insensitive
			sh.Rows[name] = *n
		}
	}
	if len(isl.ops) > 0 {
		sh.Ops = make(map[int]obs.OpStats, len(isl.ops))
		for id, st := range isl.ops { //qap:allow maprange -- map-to-map copy, order-insensitive
			sh.Ops[id] = *st
		}
	}
	if len(isl.lastOps) > 0 {
		sh.LastOps = make(map[int]obs.OpStats, len(isl.lastOps))
		for id, st := range isl.lastOps { //qap:allow maprange -- map-to-map copy, order-insensitive
			sh.LastOps[id] = st
		}
	}
	return json.Marshal(&sh)
}

// installHostShard copies a remote node's shipped island shards into
// the local island, so finalize and mergeLoadSeries see exactly the
// state an in-process run would have produced.
func (r *Runner) installHostShard(host int, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("cluster: live node %d shipped no result shard", host)
	}
	var sh liveHostShard
	if err := json.Unmarshal(payload, &sh); err != nil {
		return fmt.Errorf("cluster: live node %d result shard: %w", host, err)
	}
	isl := r.islands[host]
	isl.metrics = sh.Metrics
	isl.lastSnap = sh.LastSnap
	isl.curWin = sh.CurWin
	isl.wins = sh.Wins
	for name, v := range sh.Rows { //qap:allow maprange -- map-to-map copy, order-insensitive
		n, ok := isl.rows[name]
		if !ok {
			n = new(int64)
			isl.rows[name] = n
		}
		*n = v
	}
	for id, st := range sh.Ops { //qap:allow maprange -- map-to-map copy, order-insensitive
		p, ok := isl.ops[id]
		if !ok {
			return fmt.Errorf("cluster: live node %d shipped stats for unknown op %d", host, id)
		}
		*p = st
	}
	if len(sh.LastOps) > 0 {
		if isl.lastOps == nil {
			isl.lastOps = make(map[int]obs.OpStats, len(sh.LastOps))
		}
		for id, st := range sh.LastOps { //qap:allow maprange -- map-to-map copy, order-insensitive
			isl.lastOps[id] = st
		}
	}
	isl.tr.EmitAll(sh.Trace)
	return nil
}

// liveFingerprint identifies the deployment a live session serves:
// plan shape, operator graph, partitioning, costs, batch size, and the
// observability configuration. A splitter and a node built from
// different configurations refuse to pair, instead of diverging
// silently.
func (r *Runner) liveFingerprint() string {
	h := sha256.New()
	p := r.plan
	partitioning := p.Set.String()
	if p.StreamSets != nil {
		partitioning = p.StreamSets.String()
	}
	fmt.Fprintf(h, "hosts=%d parts=%d pph=%d agg=%d bs=%d columnar=%t win=%d collect=%t trace=%t\n",
		p.Hosts, p.Partitions, p.PartitionsPerHost, p.AggregatorHost,
		r.batchSize, r.columnar, r.winSec, r.collect, r.tracer != nil)
	fmt.Fprintf(h, "set=%s\ncosts=%+v\n", partitioning, r.cost)
	for _, op := range p.Ops {
		fmt.Fprintf(h, "op %d %s host=%d proc=%d part=%d in=", op.ID, op.Kind, op.Host, op.Proc, op.Partition)
		for _, in := range op.Inputs {
			fmt.Fprintf(h, "%d,", in.ID)
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// ServeLiveHost serves one leaf host of this runner's deployment as a
// live node on addr (e.g. ":9431"), for running hosts as separate OS
// processes (cmd/qap-node). The runner must be compiled with Engine
// EngineLive and the same plan and RunConfig the splitter uses — the
// deployment fingerprint in the handshake enforces it. ready, when
// non-nil, receives the bound listen address before serving. Blocks
// until the host's work is complete and acknowledged; several hosts of
// one runner may be served concurrently from one process.
func (r *Runner) ServeLiveHost(host int, addr string, ready func(addr string)) error {
	if r.engine != EngineLive {
		return fmt.Errorf("cluster: ServeLiveHost requires Engine %q", EngineLive)
	}
	if !r.parallel {
		return fmt.Errorf("cluster: plan is not parallelizable; the live backend cannot serve it")
	}
	if host < 0 || host >= r.plan.Hosts {
		return fmt.Errorf("cluster: host %d out of range (plan has %d)", host, r.plan.Hosts)
	}
	x := &islandExec{r: r, isl: r.islands[host], bs: r.batchSize, shipResult: true}
	lcfg := r.liveTransportConfig()
	if r.liveCfg.Faults != nil {
		lcfg.WrapAccept = r.liveCfg.Faults.WrapAccept(host)
	}
	opt := live.NodeOptions{
		Host:        host,
		Fingerprint: r.liveFingerprint(),
		BatchSize:   r.batchSize,
		SendResult:  true,
		AcceptGrace: r.liveCfg.AcceptGrace,
		NewExecutor: func(h *live.Hello) (live.Executor, error) {
			// The Hello fixes the canonical stream (cursor) order the
			// splitter merged; resolve it against our routers to build
			// the same advance targets and scan entry table.
			if len(h.Streams) != len(r.routers) {
				return nil, fmt.Errorf("splitter feeds %d streams, plan has %d", len(h.Streams), len(r.routers))
			}
			outs := make([][]exec.Consumer, len(h.Streams))
			cs := make([]*streamCursor, len(h.Streams))
			for i, name := range h.Streams {
				rt, ok := r.routers[name]
				if !ok {
					return nil, fmt.Errorf("plan has no source stream %q", name)
				}
				outs[i] = rt.outs
				cs[i] = &streamCursor{name: name, rt: rt}
			}
			adv, flush := r.buildTargets(cs)
			x.adv, x.flush, x.outs = adv[host], flush[host], outs
			return x, nil
		},
	}
	n, err := live.NewNode(lcfg, opt, addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(n.Addr())
	}
	return n.Serve()
}
