package plan

import (
	"strings"
	"testing"

	"qap/internal/gsql"
	"qap/internal/schema"
)

const tcpDDL = `TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags)`

// The paper's Section 3.2 query set: flows -> heavy_flows -> flow_pairs.
const complexSet = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP

query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1
`

func buildComplex(t *testing.T) *Graph {
	t.Helper()
	cat := schema.MustParse(tcpDDL)
	qs := gsql.MustParseQuerySet(complexSet)
	g, err := Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFigure1PlanShape(t *testing.T) {
	g := buildComplex(t)
	// Figure 1: TCP -> gamma1 (flows) -> gamma2 (heavy_flows) -> self-join.
	if got := len(g.Nodes); got != 4 {
		t.Fatalf("node count = %d, want 4 (source, flows, heavy_flows, flow_pairs)", got)
	}
	flows, ok := g.Node("flows")
	if !ok || flows.Kind != KindAggregate {
		t.Fatalf("flows node missing or wrong kind %v", flows.Kind)
	}
	hf, _ := g.Node("heavy_flows")
	fp, _ := g.Node("flow_pairs")
	if hf.Inputs[0] != flows {
		t.Error("heavy_flows must read flows")
	}
	if fp.Kind != KindJoin || len(fp.Inputs) != 2 || fp.Inputs[0] != hf || fp.Inputs[1] != hf {
		t.Error("flow_pairs must self-join heavy_flows")
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != fp {
		t.Errorf("roots = %v, want just flow_pairs", roots)
	}
	// Plan printer shows the gamma1 -> gamma2 -> join chain.
	s := g.String()
	for _, want := range []string{"join flow_pairs", "aggregate heavy_flows", "aggregate flows", "source TCP"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan print missing %q:\n%s", want, s)
		}
	}
}

func TestFlowsAggregateShape(t *testing.T) {
	g := buildComplex(t)
	flows, _ := g.Node("flows")
	if len(flows.GroupBy) != 3 {
		t.Fatalf("flows group-by count = %d", len(flows.GroupBy))
	}
	if !flows.GroupBy[0].Temporal {
		t.Error("tb = time/60 must be temporal")
	}
	if flows.GroupBy[1].Temporal || flows.GroupBy[2].Temporal {
		t.Error("srcIP/destIP must not be temporal")
	}
	if flows.EpochGroupCol() != 0 {
		t.Errorf("epoch group col = %d, want 0", flows.EpochGroupCol())
	}
	if len(flows.Aggs) != 1 || flows.Aggs[0].Spec.Name != "COUNT" || flows.Aggs[0].Name != "cnt" {
		t.Errorf("flows aggs = %v", flows.Aggs)
	}
	// Output columns: tb, srcIP, destIP, cnt.
	names := []string{"tb", "srcIP", "destIP", "cnt"}
	if len(flows.OutCols) != 4 {
		t.Fatalf("out cols = %d", len(flows.OutCols))
	}
	for i, want := range names {
		if flows.OutCols[i].Name != want {
			t.Errorf("col %d = %q, want %q", i, flows.OutCols[i].Name, want)
		}
	}
}

func TestLineagePropagation(t *testing.T) {
	g := buildComplex(t)
	flows, _ := g.Node("flows")
	// srcIP output column traces to base TCP.srcIP.
	_, src, _ := flows.Col("srcIP")
	if src.Lineage.Base == nil || !strings.EqualFold(src.Lineage.Base.Attr, "srcIP") {
		t.Fatalf("flows.srcIP lineage = %+v", src.Lineage)
	}
	// cnt is an aggregate: opaque.
	_, cnt, _ := flows.Col("cnt")
	if cnt.Lineage.Base != nil {
		t.Error("cnt must be opaque")
	}
	// tb traces to time but is temporal.
	_, tb, _ := flows.Col("tb")
	if !tb.Lineage.Temporal {
		t.Error("tb must be temporal")
	}
	if tb.Lineage.Base == nil || tb.Lineage.Base.Expr.String() != "TCP.time / 60" {
		t.Errorf("tb base expr = %v", tb.Lineage.Base)
	}
	// Two levels up: heavy_flows.srcIP still traces to TCP.srcIP.
	hf, _ := g.Node("heavy_flows")
	_, hsrc, _ := hf.Col("srcIP")
	if hsrc.Lineage.Base == nil || !strings.EqualFold(hsrc.Lineage.Base.Stream, "TCP") ||
		!strings.EqualFold(hsrc.Lineage.Base.Attr, "srcIP") {
		t.Errorf("heavy_flows.srcIP lineage = %+v", hsrc.Lineage)
	}
	// Join outputs: S1.srcIP traces to base; S1.max_cnt opaque.
	fp, _ := g.Node("flow_pairs")
	_, jsrc, _ := fp.Col("srcIP")
	if jsrc.Lineage.Base == nil {
		t.Error("flow_pairs.srcIP should trace to TCP.srcIP")
	}
	_, mc, _ := fp.Col("max_cnt")
	if mc.Lineage.Base != nil {
		t.Error("flow_pairs.max_cnt must be opaque")
	}
}

func TestJoinKeyExtraction(t *testing.T) {
	g := buildComplex(t)
	fp, _ := g.Node("flow_pairs")
	if len(fp.LeftKeys) != 2 {
		t.Fatalf("join keys = %d, want 2", len(fp.LeftKeys))
	}
	// S1.srcIP = S2.srcIP and S1.tb = S2.tb + 1.
	if fp.LeftKeys[0].String() != "S1.srcIP" || fp.RightKeys[0].String() != "S2.srcIP" {
		t.Errorf("key 0 = %s=%s", fp.LeftKeys[0], fp.RightKeys[0])
	}
	if fp.RightKeys[1].String() != "S2.tb + 1" {
		t.Errorf("key 1 right = %s", fp.RightKeys[1])
	}
	if fp.TemporalKey != 1 {
		t.Errorf("temporal key index = %d, want 1", fp.TemporalKey)
	}
	// Duplicate select names get uniquified.
	if fp.OutCols[2].Name != "max_cnt" || fp.OutCols[3].Name != "S2_max_cnt" {
		t.Errorf("join out col names: %q, %q", fp.OutCols[2].Name, fp.OutCols[3].Name)
	}
}

func TestJoinSidePredicatesSplit(t *testing.T) {
	cat := schema.MustParse("A(ts increasing, x, v); B(ts increasing, x, w)")
	qs := gsql.MustParseQuerySet(`
SELECT A.x, A.v + B.w
FROM A JOIN B
WHERE A.ts = B.ts AND A.x = B.x AND A.v > 10 AND B.w < 5 AND A.v != B.w`)
	g, err := Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	j := g.Roots()[0]
	if j.LeftFilter == nil || j.LeftFilter.String() != "A.v > 10" {
		t.Errorf("left filter = %v", j.LeftFilter)
	}
	if j.RightFilter == nil || j.RightFilter.String() != "B.w < 5" {
		t.Errorf("right filter = %v", j.RightFilter)
	}
	if j.Residual == nil || j.Residual.String() != "A.v != B.w" {
		t.Errorf("residual = %v", j.Residual)
	}
	if len(j.LeftKeys) != 2 || j.TemporalKey != 0 {
		t.Errorf("keys = %d temporal = %d", len(j.LeftKeys), j.TemporalKey)
	}
	// Mixed-side expression A.v + B.w must be opaque.
	if j.OutCols[1].Lineage.Base != nil {
		t.Error("A.v + B.w must have opaque lineage")
	}
}

func TestHavingAddsAggregate(t *testing.T) {
	cat := schema.MustParse(tcpDDL)
	qs := gsql.MustParseQuerySet(`
SELECT tb, srcIP, COUNT(*) AS cnt
FROM TCP
GROUP BY time/60 AS tb, srcIP
HAVING SUM(len) > 1000`)
	g, err := Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Roots()[0]
	if len(n.Aggs) != 2 {
		t.Fatalf("aggs = %v, want COUNT and SUM", n.Aggs)
	}
	if n.Having == nil {
		t.Fatal("HAVING lost")
	}
}

func TestAggregateReuseAndSelectivity(t *testing.T) {
	cat := schema.MustParse(tcpDDL)
	qs := gsql.MustParseQuerySet(`
SELECT tb, OR_AGGR(flags) AS orflag, COUNT(*)
FROM TCP
GROUP BY time AS tb
HAVING OR_AGGR(flags) = 17`)
	g, err := Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Roots()[0]
	// OR_AGGR in HAVING reuses the select-list aggregate.
	if len(n.Aggs) != 2 {
		t.Fatalf("aggs = %v, want OR_AGGR + COUNT only", n.Aggs)
	}
	if n.Aggs[0].Name != "orflag" {
		t.Errorf("first agg name = %q", n.Aggs[0].Name)
	}
	if !strings.Contains(n.Having.String(), "orflag") {
		t.Errorf("HAVING should reference orflag: %s", n.Having)
	}
}

func TestSelectProjectNode(t *testing.T) {
	cat := schema.MustParse(tcpDDL)
	qs := gsql.MustParseQuerySet(`SELECT time, srcIP & 0xFFF0 AS subnet, len FROM TCP WHERE destPort = 80`)
	g, err := Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Roots()[0]
	if n.Kind != KindSelectProject {
		t.Fatalf("kind = %v", n.Kind)
	}
	if n.Filter == nil {
		t.Error("filter lost")
	}
	_, subnet, ok := n.Col("subnet")
	if !ok || subnet.Lineage.Base == nil {
		t.Fatalf("subnet lineage missing")
	}
	if got := subnet.Lineage.Base.Expr.String(); got != "TCP.srcIP & 0xFFF0" {
		t.Errorf("subnet base = %q", got)
	}
}

func TestSharedSourceNode(t *testing.T) {
	cat := schema.MustParse(tcpDDL)
	qs := gsql.MustParseQuerySet(`
query a: SELECT time, srcIP FROM TCP
query b: SELECT time, destIP FROM TCP`)
	g, err := Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Sources()); got != 1 {
		t.Errorf("sources = %d, want 1 (shared)", got)
	}
	src := g.Sources()[0]
	if len(src.Parents) != 2 {
		t.Errorf("source parents = %d", len(src.Parents))
	}
	if got := len(g.Roots()); got != 2 {
		t.Errorf("roots = %d", got)
	}
}

func TestBuildErrors(t *testing.T) {
	cat := schema.MustParse(tcpDDL + "\nB(ts increasing, x)")
	cases := []struct {
		name string
		src  string
	}{
		{"unknown stream", "SELECT a FROM NOPE"},
		{"unknown column", "SELECT nosuch FROM TCP"},
		{"ambiguous column", "SELECT time FROM TCP T1, TCP T2 WHERE T1.time = T2.time AND T1.srcIP = T2.srcIP"},
		{"having without group", "SELECT time FROM TCP HAVING COUNT(*) > 1"},
		{"non-grouped column", "SELECT srcIP, destIP FROM TCP GROUP BY time AS tb, srcIP"},
		{"agg in where", "SELECT time FROM TCP WHERE COUNT(*) > 1"},
		{"join and group", "SELECT COUNT(*) FROM TCP T1, TCP T2 WHERE T1.time = T2.time GROUP BY T1.time AS tb"},
		{"join without equality", "SELECT T1.time FROM TCP T1, TCP T2 WHERE T1.len > T2.len"},
		{"join without temporal", "SELECT T1.time FROM TCP T1, TCP T2 WHERE T1.srcIP = T2.srcIP"},
		{"same binding twice", "SELECT T1.time FROM TCP T1, B T1 WHERE T1.time = T1.ts"},
		{"unaliased group expr", "SELECT COUNT(*) FROM TCP GROUP BY time/60"},
		{"nested aggregate", "SELECT SUM(COUNT(*)) FROM TCP GROUP BY time AS tb"},
		{"duplicate group name", "SELECT COUNT(*) FROM TCP GROUP BY time AS tb, len AS tb"},
	}
	for _, c := range cases {
		qs, err := gsql.ParseQuerySet(c.src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", c.name, err)
			continue
		}
		if _, err := Build(cat, qs); err == nil {
			t.Errorf("%s: Build should fail for %q", c.name, c.src)
		}
	}
}

func TestWindowedAggregateValidation(t *testing.T) {
	cat := schema.MustParse(tcpDDL)
	// Valid: temporal pane + splittable aggregates.
	g, err := Build(cat, gsql.MustParseQuerySet(`
SELECT pane, srcIP, COUNT(*), AVG(len) FROM TCP
GROUP BY time/10 AS pane, srcIP WINDOW 6`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Roots()[0].WindowPanes != 6 {
		t.Error("WindowPanes not propagated")
	}
	// Invalid: no temporal group term.
	if _, err := Build(cat, gsql.MustParseQuerySet(`
SELECT srcIP, COUNT(*) FROM TCP GROUP BY srcIP WINDOW 6`)); err == nil {
		t.Error("window without temporal pane should fail")
	}
	// Invalid: holistic aggregate cannot merge across panes.
	if _, err := Build(cat, gsql.MustParseQuerySet(`
SELECT pane, COUNT_DISTINCT(srcIP) FROM TCP GROUP BY time/10 AS pane WINDOW 6`)); err == nil {
		t.Error("holistic aggregate in window should fail")
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := buildComplex(t)
	pos := make(map[*Node]int)
	for i, n := range g.Nodes {
		pos[n] = i
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n] {
				t.Errorf("node %s appears before its input %s", n.QueryName, in.QueryName)
			}
		}
	}
}
