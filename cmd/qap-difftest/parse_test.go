package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got := parseInts(" 1, 2 ,4,,")
	if want := []int{1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseInts = %v, want %v", got, want)
	}
	if out := parseInts(""); out != nil {
		t.Errorf("parseInts(\"\") = %v, want nil", out)
	}
}
