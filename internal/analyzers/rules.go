package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// wallFuncs are the time-package functions that read the wall clock or
// schedule against it.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// Walltime flags wall-clock reads and random sources: simulated
// results must not depend on when or where they run. Quarantined
// timing paths (obs.Timing fields excluded from comparisons) carry
// //qap:allow walltime.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/Since/Sleep and math/rand outside quarantined timing paths",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import of %s: random state breaks run-to-run determinism unless explicitly seeded and quarantined", path)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallFuncs[sel.Sel.Name] {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := p.Info.Uses[ident].(*types.PkgName)
				if !ok || pkgName.Imported().Path() != "time" {
					return true
				}
				p.Reportf(sel.Pos(), "call to time.%s reads the wall clock; deterministic outputs must not depend on it", sel.Sel.Name)
				return true
			})
		}
	},
}

// MapRange flags range statements over maps: Go randomizes map
// iteration order, so any map range feeding output, accounting, or
// scheduling must sort first (or be order-insensitive) and carry
// //qap:allow maprange.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flags range over a map; iteration order is nondeterministic",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(p.Info.TypeOf(rs.X)) {
					return true
				}
				p.Reportf(rs.Pos(), "range over map %s: iteration order varies run to run — sort keys first or annotate the order-insensitive loop", typeLabel(p, rs.X))
				return true
			})
		}
	},
}

// Fanout flags goroutine launches inside map-range bodies: spawn order
// (and therefore any work-distribution or channel-send order derived
// from it) would vary run to run. The cluster engine must fan out over
// slices.
var Fanout = &Analyzer{
	Name: "fanout",
	Doc:  "flags go statements launched from inside a map-range body",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(p.Info.TypeOf(rs.X)) {
					return true
				}
				ast.Inspect(rs.Body, func(inner ast.Node) bool {
					if g, ok := inner.(*ast.GoStmt); ok {
						p.Reportf(g.Pos(), "goroutine launched from inside a map range: spawn order varies run to run — fan out over a slice")
					}
					return true
				})
				return true
			})
		}
	},
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// typeLabel renders the ranged expression's type compactly for the
// finding message.
func typeLabel(p *Pass, e ast.Expr) string {
	t := p.Info.TypeOf(e)
	if t == nil {
		return "?"
	}
	s := t.String()
	// Strip the module path qualifier for readability.
	s = strings.ReplaceAll(s, "qap/internal/", "")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
