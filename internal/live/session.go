package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Config tunes the live transport. The zero value picks the defaults;
// both the splitter and the nodes of one deployment must agree on
// MaxFrame.
type Config struct {
	// Timeout bounds every blocking transport step: one frame read or
	// write, a dial, a credit-exhausted feed append, and the node's
	// wait for a (re)connect. A wedged peer therefore surfaces as a
	// positioned error instead of a hang. Default 30s.
	Timeout time.Duration
	// MaxFrame bounds one frame's payload. Default DefaultMaxFrame.
	MaxFrame int
	// Credits is the feed credit window: the splitter keeps at most
	// this many unacknowledged feed frames per host, which is what
	// bounds splitter memory when a node consumes slowly. Default 4.
	Credits int
	// LinkWindow bounds a node's unacknowledged link frames the same
	// way. Default 256.
	LinkWindow int
	// MaxAttempts is how many consecutive failed connection attempts
	// (dial or handshake) a splitter peer tolerates before giving up.
	// Default 8.
	MaxAttempts int
	// Dial replaces net.DialTimeout; the fault-injection harness hooks
	// here. Arguments are the host index and the per-host connection
	// attempt counter.
	Dial func(host, attempt int, addr string) (net.Conn, error)
	// WrapAccept, on a node, wraps each accepted connection; the
	// argument is the per-node session counter. Fault-injection hook.
	WrapAccept func(conn net.Conn, session int) net.Conn
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

func (c Config) maxFrame() int {
	if c.MaxFrame > 0 {
		return c.MaxFrame
	}
	return DefaultMaxFrame
}

func (c Config) credits() int {
	if c.Credits > 0 {
		return c.Credits
	}
	return 4
}

func (c Config) linkWindow() int {
	if c.LinkWindow > 0 {
		return c.LinkWindow
	}
	return 256
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c Config) dialFn() func(host, attempt int, addr string) (net.Conn, error) {
	if c.Dial != nil {
		return c.Dial
	}
	return DefaultDial(c.timeout())
}

// DefaultDial is the dial function a zero Config uses: plain TCP with
// the given timeout. Exported so wrappers (e.g. FaultPlan.Dial) can
// compose with the default behavior.
func DefaultDial(timeout time.Duration) func(host, attempt int, addr string) (net.Conn, error) {
	return func(_, _ int, addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	}
}

var (
	errOutboxClosed = errors.New("live: session closed")
	errStopped      = errors.New("live: stopped")
)

// outbox is one direction's sequenced, resumable send stream: frames
// stay queued until the peer's cumulative ack drops them, a reconnect
// rewinds the unacked tail for retransmission, and a bounded queue
// blocks the producer — the credit-based backpressure.
type outbox struct {
	mu sync.Mutex
	// frames[i] is the fully encoded frame with sequence firstSeq+i.
	frames   [][]byte
	firstSeq uint64
	// sent counts the frames already written on the current connection.
	sent   int
	limit  int
	closed bool
	// space and work are closed-and-replaced to broadcast "queue
	// shrank" and "new frame / rewind" respectively.
	space chan struct{}
	work  chan struct{}
}

func newOutbox(limit int) *outbox {
	return &outbox{
		firstSeq: 1,
		limit:    limit,
		space:    make(chan struct{}),
		work:     make(chan struct{}),
	}
}

// append encodes one frame (enc receives the assigned sequence) and
// queues it, blocking until the credit window has room or the deadline
// passes.
func (o *outbox) append(typ byte, deadline time.Time, enc func(seq uint64, dst []byte) []byte) (uint64, error) {
	var timer *time.Timer
	for {
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			return 0, errOutboxClosed
		}
		if o.limit <= 0 || len(o.frames) < o.limit {
			seq := o.firstSeq + uint64(len(o.frames))
			o.frames = append(o.frames, appendFrame(nil, typ, enc(seq, nil)))
			close(o.work)
			o.work = make(chan struct{})
			o.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return seq, nil
		}
		queued := len(o.frames)
		ch := o.space
		o.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(time.Until(deadline)) //qap:allow walltime -- credit-stall guard; a timeout fails the send, never shapes outputs
		}
		select {
		case <-ch:
		case <-timer.C:
			return 0, fmt.Errorf("live: credit window stalled: %d unacked frames", queued)
		}
	}
}

// ack drops every frame with sequence <= seq.
func (o *outbox) ack(seq uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if seq < o.firstSeq {
		return
	}
	n := int(seq - o.firstSeq + 1)
	if n > len(o.frames) {
		n = len(o.frames)
	}
	if n == 0 {
		return
	}
	copy(o.frames, o.frames[n:])
	for i := len(o.frames) - n; i < len(o.frames); i++ {
		o.frames[i] = nil
	}
	o.frames = o.frames[:len(o.frames)-n]
	o.firstSeq += uint64(n)
	o.sent -= n
	if o.sent < 0 {
		o.sent = 0
	}
	close(o.space)
	o.space = make(chan struct{})
}

// rewind resumes after a reconnect: the peer's applied-through
// sequence acts as an ack, and everything after it is marked unsent so
// the new connection's writer retransmits it.
func (o *outbox) rewind(applied uint64) {
	o.ack(applied)
	o.mu.Lock()
	o.sent = 0
	close(o.work)
	o.work = make(chan struct{})
	o.mu.Unlock()
}

// tryNext hands the writer the next unsent frame, if any.
func (o *outbox) tryNext() ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.sent < len(o.frames) {
		f := o.frames[o.sent]
		o.sent++
		return f, true
	}
	return nil, false
}

// workChan returns the channel closed on the next append or rewind.
// Grab it before tryNext to avoid sleeping through a wakeup.
func (o *outbox) workChan() chan struct{} {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.work
}

func (o *outbox) empty() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.frames) == 0
}

func (o *outbox) close() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return
	}
	o.closed = true
	close(o.space)
	o.space = make(chan struct{})
	close(o.work)
	o.work = make(chan struct{})
}

// session pumps one established connection: the reader runs in the
// caller's goroutine, while writer (spawned by the caller) drains the
// outbox and the pending cumulative ack of the peer's stream.
type session struct {
	conn     net.Conn
	timeout  time.Duration
	maxFrame int
	out      *outbox
	ackType  byte

	mu       sync.Mutex
	ackSeq   uint64
	ackDirty bool
	werr     error

	kick chan struct{}
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func newSession(conn net.Conn, cfg Config, out *outbox, ackType byte) *session {
	return &session{
		conn:     conn,
		timeout:  cfg.timeout(),
		maxFrame: cfg.maxFrame(),
		out:      out,
		ackType:  ackType,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
}

func (s *session) start() {
	s.wg.Add(1)
	go s.writer()
}

// shutdown stops the writer and closes the connection; safe to call
// more than once.
func (s *session) shutdown() {
	s.once.Do(func() { close(s.stop) })
	s.conn.Close()
	s.wg.Wait()
}

// setAck records that the peer's stream has been applied through seq;
// the writer sends the latest value.
func (s *session) setAck(seq uint64) {
	s.mu.Lock()
	if seq > s.ackSeq {
		s.ackSeq = seq
	}
	s.ackDirty = true
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// writeErr reports the writer's failure, if any, to prefer it over the
// secondary read error its conn-close provokes.
func (s *session) writeErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

func (s *session) writer() {
	defer s.wg.Done()
	var scratch []byte
	var ackPayload [8]byte
	fail := func(err error) {
		s.mu.Lock()
		if s.werr == nil {
			s.werr = err
		}
		s.mu.Unlock()
		s.conn.Close() // unblock the reader
	}
	for {
		s.mu.Lock()
		dirty, ack := s.ackDirty, s.ackSeq
		s.ackDirty = false
		s.mu.Unlock()
		if dirty {
			appendU64(ackPayload[:0], ack)
			s.conn.SetWriteDeadline(time.Now().Add(s.timeout)) //qap:allow walltime -- I/O deadline; transport pacing never shapes outputs
			var err error
			if scratch, err = writeFrame(s.conn, scratch, s.ackType, ackPayload[:]); err != nil {
				fail(err)
				return
			}
			continue
		}
		work := s.out.workChan()
		if frame, ok := s.out.tryNext(); ok {
			s.conn.SetWriteDeadline(time.Now().Add(s.timeout)) //qap:allow walltime -- I/O deadline; transport pacing never shapes outputs
			if _, err := s.conn.Write(frame); err != nil {
				fail(err)
				return
			}
			continue
		}
		select {
		case <-s.kick:
		case <-work:
		case <-s.stop:
			return
		}
	}
}

// read returns the next frame, with the configured deadline applied.
// The payload is valid until the next call.
func (s *session) read(buf []byte) (typ byte, payload, newBuf []byte, err error) {
	s.conn.SetReadDeadline(time.Now().Add(s.timeout)) //qap:allow walltime -- I/O deadline; transport pacing never shapes outputs
	return readFrame(s.conn, s.maxFrame, buf)
}

func decodeAck(data []byte) (uint64, error) {
	d := protoDecoder{data: data}
	v, err := d.u64("ack")
	if err != nil {
		return 0, err
	}
	return v, d.finish("ack")
}
