package cluster

import (
	"strings"
	"testing"
)

// TestOverloadFactorAtCapacity: a host whose demanded work exactly
// equals its budget is not overloaded — the boundary must report 0, not
// an epsilon.
func TestOverloadFactorAtCapacity(t *testing.T) {
	m := &Metrics{
		Hosts:       []HostMetrics{{CPUUnits: 6000}},
		DurationSec: 60,
		Capacity:    100,
	}
	if got := m.OverloadFactor(0); got != 0 {
		t.Errorf("OverloadFactor at exactly capacity = %v, want 0", got)
	}
	if got := m.CPULoad(0); got != 100 {
		t.Errorf("CPULoad at exactly capacity = %v, want 100", got)
	}
	// One unit over the budget: the shed fraction is excess/demand.
	m.Hosts[0].CPUUnits = 6001
	want := 1.0 / 6001
	if got := m.OverloadFactor(0); got != want {
		t.Errorf("OverloadFactor just over capacity = %v, want %v", got, want)
	}
}

// TestLeafCPULoadAggregatorOnly: with a single host that host is both
// aggregator and leaf; LeafCPULoad must report its load rather than an
// empty mean.
func TestLeafCPULoadAggregatorOnly(t *testing.T) {
	m := &Metrics{
		Hosts:       []HostMetrics{{CPUUnits: 300}},
		DurationSec: 10,
		Capacity:    100,
	}
	if got, want := m.LeafCPULoad(0), m.CPULoad(0); got != want {
		t.Errorf("LeafCPULoad single host = %v, want %v", got, want)
	}
}

// TestLoadsWithZeroDenominators: zero capacity or zero duration must
// yield 0 loads, never NaN or Inf.
func TestLoadsWithZeroDenominators(t *testing.T) {
	cases := []struct {
		name     string
		capacity float64
		duration float64
	}{
		{"zero capacity", 0, 60},
		{"zero duration", 100, 0},
		{"both zero", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &Metrics{
				Hosts:       []HostMetrics{{CPUUnits: 500, NetTuplesIn: 7, NetBytesIn: 70, IPCTuplesIn: 3}},
				DurationSec: tc.duration,
				Capacity:    tc.capacity,
			}
			if got := m.CPULoad(0); got != 0 {
				t.Errorf("CPULoad = %v, want 0", got)
			}
			if got := m.OverloadFactor(0); got != 0 {
				t.Errorf("OverloadFactor = %v, want 0", got)
			}
			if tc.duration == 0 {
				if got := m.NetLoad(0); got != 0 {
					t.Errorf("NetLoad = %v, want 0", got)
				}
			}
		})
	}
}

// TestLoadsHostOutOfRange: the accessors must tolerate host indexes
// outside the slice — report builders iterate over configured host
// counts, which can exceed the hosts a degenerate run actually
// recorded — returning 0 instead of panicking.
func TestLoadsHostOutOfRange(t *testing.T) {
	m := &Metrics{
		Hosts:       []HostMetrics{{CPUUnits: 500, NetTuplesIn: 7}},
		DurationSec: 10,
		Capacity:    100,
	}
	for _, host := range []int{-1, 1, 99} {
		if got := m.CPULoad(host); got != 0 {
			t.Errorf("CPULoad(%d) = %v, want 0", host, got)
		}
		if got := m.OverloadFactor(host); got != 0 {
			t.Errorf("OverloadFactor(%d) = %v, want 0", host, got)
		}
		if got := m.NetLoad(host); got != 0 {
			t.Errorf("NetLoad(%d) = %v, want 0", host, got)
		}
	}
	// Sanity: in-range still measures.
	if got := m.CPULoad(0); got != 50 {
		t.Errorf("CPULoad(0) = %v, want 50", got)
	}
}

// TestHostMetricsSub: the snapshot delta used by the load monitor.
func TestHostMetricsSub(t *testing.T) {
	a := HostMetrics{CPUUnits: 10, NetTuplesIn: 20, NetBytesIn: 300, IPCTuplesIn: 4, Tuples: 50}
	b := HostMetrics{CPUUnits: 4, NetTuplesIn: 5, NetBytesIn: 100, IPCTuplesIn: 1, Tuples: 20}
	want := HostMetrics{CPUUnits: 6, NetTuplesIn: 15, NetBytesIn: 200, IPCTuplesIn: 3, Tuples: 30}
	if got := a.sub(b); got != want {
		t.Errorf("sub = %+v, want %+v", got, want)
	}
	if got := a.sub(a); got != (HostMetrics{}) {
		t.Errorf("self-sub = %+v, want zero", got)
	}
}

// TestStringEmptyTrace: rendering metrics of an empty trace
// (DurationSec 0) must not produce NaN rates.
func TestStringEmptyTrace(t *testing.T) {
	m := &Metrics{
		Hosts: []HostMetrics{{NetBytesIn: 1234, IPCTuplesIn: 56, Tuples: 78}},
	}
	out := m.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("String() with zero duration renders NaN/Inf:\n%s", out)
	}
	if !strings.Contains(out, "tuples 78") {
		t.Errorf("String() missing tuple count:\n%s", out)
	}
}
