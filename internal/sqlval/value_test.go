package sqlval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Uint(7), KindUint},
		{Int(-3), KindInt},
		{Float(2.5), KindFloat},
		{Bool(true), KindBool},
		{Str("x"), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if u, ok := Uint(42).AsUint(); !ok || u != 42 {
		t.Errorf("Uint(42).AsUint() = %d,%v", u, ok)
	}
	if i, ok := Int(-5).AsInt(); !ok || i != -5 {
		t.Errorf("Int(-5).AsInt() = %d,%v", i, ok)
	}
	if f, ok := Float(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("Float(1.5).AsFloat() = %g,%v", f, ok)
	}
	if s, ok := Str("hi").AsString(); !ok || s != "hi" {
		t.Errorf("Str.AsString() = %q,%v", s, ok)
	}
	if _, ok := Str("hi").AsUint(); ok {
		t.Error("Str.AsUint() should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("Null.AsFloat() should fail")
	}
}

func TestAsBool(t *testing.T) {
	if Null.AsBool() {
		t.Error("NULL must be false")
	}
	if !Uint(1).AsBool() || Uint(0).AsBool() {
		t.Error("uint truthiness wrong")
	}
	if !Str("x").AsBool() || Str("").AsBool() {
		t.Error("string truthiness wrong")
	}
}

func TestEqualCrossKindNumeric(t *testing.T) {
	if !Uint(5).Equal(Int(5)) {
		t.Error("Uint(5) != Int(5)")
	}
	if !Int(5).Equal(Float(5)) {
		t.Error("Int(5) != Float(5)")
	}
	if Uint(5).Equal(Str("5")) {
		t.Error("numeric should not equal string")
	}
	if !Null.Equal(Null) {
		t.Error("grouping equality: NULL == NULL")
	}
	if Null.Equal(Uint(0)) {
		t.Error("NULL != 0")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Uint(1), Uint(2), -1},
		{Uint(2), Uint(1), 1},
		{Uint(2), Uint(2), 0},
		{Int(-1), Uint(0), -1},
		{Uint(math.MaxUint64), Int(-1), 1},
		{Int(-5), Int(-2), -1},
		{Float(1.5), Uint(2), -1},
		{Null, Uint(0), -1},
		{Uint(0), Null, 1},
		{Null, Null, 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b uint64, na, nb bool) bool {
		var va, vb Value
		if na {
			va = Int(int64(a))
		} else {
			va = Uint(a)
		}
		if nb {
			vb = Int(int64(b))
		} else {
			vb = Uint(b)
		}
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualValuesProperty(t *testing.T) {
	// Values that compare equal across kinds must hash equally (they
	// may land in the same group or partition).
	f := func(u uint32) bool {
		a, b := Uint(uint64(u)), Int(int64(u))
		if !a.Equal(b) {
			return false
		}
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Floats holding exact small integers hash like the integer.
	if Float(42).Hash() != Uint(42).Hash() {
		t.Error("Float(42) and Uint(42) must hash equally")
	}
}

func TestEqualCompareConsistencyProperty(t *testing.T) {
	// Equal(a, b) holds exactly when Compare(a, b) == 0, across kinds.
	mk := func(tag uint8, v uint64) Value {
		switch tag % 5 {
		case 0:
			return Uint(v % 64)
		case 1:
			return Int(int64(v%64) - 32)
		case 2:
			return Float(float64(v%64) / 2)
		case 3:
			return Bool(v%2 == 0)
		default:
			return Null
		}
	}
	f := func(t1 uint8, v1 uint64, t2 uint8, v2 uint64) bool {
		a, b := mk(t1, v1), mk(t2, v2)
		return a.Equal(b) == (a.Compare(b) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	// Compare is transitive over mixed numerics.
	f := func(a, b, c int32) bool {
		va, vb, vc := Int(int64(a)), Uint(uint64(uint32(b))), Float(float64(c))
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 {
			return va.Compare(vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashTupleDistributes(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := HashTuple([]Value{Uint(uint64(i)), Str("k")})
		seen[h] = true
	}
	if len(seen) < 990 {
		t.Errorf("too many hash collisions: %d distinct of 1000", len(seen))
	}
}

func TestWireSize(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Null, 1},
		{Bool(true), 2},
		{Uint(9), 9},
		{Int(-1), 9},
		{Float(3), 9},
		{Str("abc"), 6},
	}
	for _, c := range cases {
		if got := c.v.WireSize(); got != c.want {
			t.Errorf("WireSize(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Uint(7), "7"},
		{Int(-7), "-7"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{Str("a"), `"a"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := FormatIPv4(Uint(0x0A000001)); got != "10.0.0.1" {
		t.Errorf("FormatIPv4 = %q", got)
	}
}
