package plan

import (
	"errors"
	"strings"
	"testing"

	"qap/internal/gsql"
	"qap/internal/schema"
)

func buildErr(t *testing.T, queries string) error {
	t.Helper()
	cat := schema.MustParse(`TCP(time increasing, srcIP, destIP, len)`)
	qs, err := gsql.ParseQuerySet(queries)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(cat, qs)
	if err == nil {
		t.Fatal("want build error")
	}
	return err
}

func TestBuilderErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		name, queries string
		line, col     int
		contains      string
	}{
		{
			"unknown stream",
			"query q:\nSELECT srcIP FROM NOPE",
			2, 19, "no such stream or query",
		},
		{
			"unknown column",
			"query q:\nSELECT srcIP, wat AS w\nFROM TCP",
			2, 15, "wat",
		},
		{
			"having without group by",
			"query q:\nSELECT srcIP FROM TCP\nHAVING srcIP > 2",
			3, 1, "HAVING",
		},
		{
			"window on sliding holistic",
			"query q:\nSELECT pane, COUNT_DISTINCT(srcIP) AS u\nFROM TCP\nGROUP BY time/10 AS pane\nWINDOW 6",
			5, 1, "",
		},
		{
			"join without equality",
			"query q:\nSELECT S1.srcIP\nFROM TCP S1, TCP S2\nWHERE S1.len > S2.len",
			4, 1, "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := buildErr(t, tc.queries)
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error %T is not *plan.Error: %v", err, err)
			}
			pos := gsql.ErrPos(err)
			if pos.Line != tc.line || pos.Col != tc.col {
				t.Errorf("position %s, want %d:%d (error: %v)", pos, tc.line, tc.col, err)
			}
			if perr.Query != "q" {
				t.Errorf("query %q, want q", perr.Query)
			}
			if !strings.Contains(err.Error(), pos.String()) {
				t.Errorf("message %q does not render the position", err)
			}
			if tc.contains != "" && !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("message %q does not mention %q", err, tc.contains)
			}
		})
	}
}

func TestNodesCarryQueryPositions(t *testing.T) {
	cat := schema.MustParse(`TCP(time increasing, srcIP, destIP, len)`)
	qs, err := gsql.ParseQuerySet(`query a:
SELECT tb, srcIP, COUNT(*) AS cnt
FROM TCP
GROUP BY time/60 AS tb, srcIP

query b:
SELECT tb, srcIP FROM a`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.QueryNodes() {
		want := map[string]gsql.Pos{
			"a": {Line: 1, Col: 7},
			"b": {Line: 6, Col: 7},
		}[n.QueryName]
		if n.Pos != want {
			t.Errorf("node %s pos %s, want %s", n.QueryName, n.Pos, want)
		}
	}
	for _, s := range g.Sources() {
		if s.Pos.IsValid() {
			t.Errorf("source %s should have no position", s.Stream.Name)
		}
	}
}
