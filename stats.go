package qap

import (
	"fmt"
	"sort"
	"strings"

	"qap/internal/netgen"
	"qap/internal/plan"
)

// MeasureStats runs the query set once, centralized and instrumented,
// over sample traces and returns workload statistics measured from the
// actual execution: per-stream tuple rates and per-node selectivity
// factors. Feeding these to Analyze closes the loop the paper
// describes — the analysis is "not as reliant on the quality of the
// cost model" precisely because cheap measured statistics slot in.
func (s *System) MeasureStats(streams map[string][]netgen.Packet) (*StaticStats, error) {
	dep, err := s.Deploy(DeployConfig{
		Hosts:             1,
		PartitionsPerHost: 1,
		DisablePartialAgg: true,
		Params:            s.defaultParams(),
	})
	if err != nil {
		return nil, err
	}
	res, err := dep.RunStreams(streams)
	if err != nil {
		return nil, err
	}

	stats := NewStats()
	duration := res.Metrics.DurationSec
	if duration <= 0 {
		// An all-empty sample (zero duration) has no rates to measure;
		// the old behavior clamped to 1s and silently reported every
		// rate as zero-over-one, which downstream costing trusts.
		names := make([]string, 0, len(streams))
		for name := range streams { //qap:allow maprange -- names collected then sorted below
			names = append(names, name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("qap: MeasureStats: sample traces %v are empty (measured duration %.0fs); rates are undefined — supply a non-empty sample", names, duration)
	}
	streamRows := make(map[string]float64, len(streams))
	for name, packets := range streams { //qap:allow maprange -- per-stream rates, order-insensitive
		rate := float64(len(packets)) / duration
		stats.SetRate(name, rate)
		streamRows[strings.ToLower(name)] = float64(len(packets))
	}

	// Selectivity = output rows / input rows, walking the DAG in
	// topological order so each node's input counts are known.
	rows := make(map[string]float64, len(res.NodeRows))
	for name, n := range res.NodeRows { //qap:allow maprange -- map-to-map copy, order-insensitive
		rows[name] = float64(n)
	}
	nodeRows := func(n *plan.Node) (float64, error) {
		if n.Kind == plan.KindSource {
			c, ok := streamRows[strings.ToLower(n.Stream.Name)]
			if !ok {
				return 0, fmt.Errorf("qap: no sample trace for stream %q", n.Stream.Name)
			}
			return c, nil
		}
		return rows[strings.ToLower(n.QueryName)], nil
	}
	for _, n := range s.Graph.QueryNodes() {
		in := 0.0
		for _, child := range n.Inputs {
			c, err := nodeRows(child)
			if err != nil {
				return nil, err
			}
			in += c
		}
		out := rows[strings.ToLower(n.QueryName)]
		if in > 0 {
			stats.SetSelectivity(n.QueryName, out/in)
		} else {
			// A starved node measured zero input. Record the measured
			// zero explicitly: skipping it (the old behavior) silently
			// fell back to the static heuristic, so a node the sample
			// proved dead kept a fabricated non-zero output rate.
			stats.SetSelectivity(n.QueryName, 0)
		}
	}
	return stats, nil
}

// defaultParams supplies the generator's attack pattern for query sets
// using #PATTERN#; user-bound parameters take precedence at Deploy.
func (s *System) defaultParams() map[string]Value {
	return map[string]Value{"PATTERN": Uint(netgen.AttackPattern)}
}
