// Command qap-trace inspects the deterministic causal traces written
// by qap-run -trace-out: JSONL event streams keyed by epoch, round,
// window, host, and operator (never wall clock), emitted by both
// cluster engines and the adaptive controller.
//
// Usage:
//
//	qap-trace [-phase p] [-topk n] [-chrome file] trace.jsonl
//	qap-trace -explain-violation [-bound bps] [-factor f] trace.jsonl
//	qap-trace -explain-repartition trace.jsonl
//
// The default view prints each phase's header and per-host load
// timeline rebuilt from the trace's host_window records. -topk ranks
// the heaviest operators per monitoring window by network bytes.
//
// -explain-violation walks the causal chain behind a load-bound
// violation: it uses the recorded controller decision when the trace
// has one (an adaptive run), otherwise it scans the rebuilt load
// series against -bound and -factor. It names the violating window and
// host and the operators that contributed the bytes, and exits 0 when
// a violation is found, 1 when the trace stays within the bound.
//
// -explain-repartition prints the controller's decision chain (trigger
// evaluation, drain, statistics refresh, re-optimization, switch and
// replay or confirmation) and exits 0 when the trace contains a
// repartition switch, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"qap/internal/obs"
	"qap/internal/obs/trace"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	phase              string
	topk               int
	chrome             string
	explainViolation   bool
	explainRepartition bool
	bound              float64
	factor             float64
	warmup             int
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.StringVar(&f.phase, "phase", "", "restrict to one phase of a composed adaptive trace: initial, controller, or final (empty = first header's phase)")
	fs.IntVar(&f.topk, "topk", 0, "also rank the top-K heaviest operators per window by network bytes (0 = off)")
	fs.StringVar(&f.chrome, "chrome", "", "write the trace as Chrome trace_event JSON (about:tracing / Perfetto) to this file")
	fs.BoolVar(&f.explainViolation, "explain-violation", false, "explain the first load-bound violation and exit 0 if one exists, 1 otherwise")
	fs.BoolVar(&f.explainRepartition, "explain-repartition", false, "print the adaptive controller's decision chain and exit 0 if the trace repartitioned, 1 otherwise")
	fs.Float64Var(&f.bound, "bound", 0, "predicted max-host network rate (bytes/sec) for -explain-violation when the trace has no recorded controller decision")
	fs.Float64Var(&f.factor, "factor", 1.5, "bound inflation factor for -explain-violation (matches the controller's trigger-factor)")
	fs.IntVar(&f.warmup, "warmup", 1, "ramp-up windows skipped by the -explain-violation scan")
	return f
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qap-trace [flags] trace.jsonl (use - for stdin)")
		os.Exit(2)
	}

	var r io.Reader
	if name := flag.Arg(0); name == "-" {
		r = os.Stdin
	} else {
		file, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer file.Close()
		r = file
	}
	tr, err := trace.ReadJSONL(r)
	if err != nil {
		fatal(err)
	}
	if len(tr.Records) == 0 {
		fatal(fmt.Errorf("trace is empty"))
	}

	if f.chrome != "" {
		b, err := tr.ChromeJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(f.chrome, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", f.chrome)
	}

	switch {
	case f.explainViolation:
		if !explainViolation(tr, f) {
			os.Exit(1)
		}
	case f.explainRepartition:
		if !explainRepartition(tr) {
			os.Exit(1)
		}
	default:
		summarize(tr, f)
	}
}

// summarize prints each phase's header and load timeline (all phases
// when -phase is empty).
func summarize(tr *trace.Trace, f *appFlags) {
	phases := tr.Phases()
	if f.phase != "" {
		phases = []string{f.phase}
	}
	counts := map[string]int{}
	for _, e := range tr.Records {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts { //qap:allow maprange -- kinds collected then sorted below
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("%d records", len(tr.Records))
	for _, k := range kinds {
		fmt.Printf("  %s=%d", k, counts[k])
	}
	fmt.Println()

	for _, phase := range phases {
		hdr := tr.Header(phase)
		if hdr == nil {
			fatal(fmt.Errorf("no header for phase %q (phases: %v)", phase, tr.Phases()))
		}
		name := phase
		if name == "" {
			name = "(run)"
		}
		fmt.Printf("\nphase %s: %d hosts (aggregator %d), window %ds, duration %.0fs, partitioning %s\n",
			name, hdr.Hosts, hdr.AggregatorHost, hdr.WindowSec, hdr.DurationSec, hdr.Partitioning)
		series := tr.HostLoadSeries(phase)
		if series == nil {
			fmt.Println("  no host_window records (load monitoring off, or a ring capture dropped them)")
			continue
		}
		fmt.Printf("%8s  %13s  %14s  %s\n", "window", "span", "max-host B/s", "per-host net bytes")
		for _, w := range series {
			fmt.Printf("%8d  [%5d,%5d)s  %14.0f  ", w.Window, w.StartSec, w.EndSec, w.MaxHostNetBytesPerSec())
			for h, hw := range w.Hosts {
				if h > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%d:%d", h, hw.NetBytesIn)
			}
			fmt.Println()
		}
		if f.topk > 0 {
			printTopOps(tr, phase, f.topk)
		}
	}
}

// printTopOps ranks each window's operators by network bytes received.
func printTopOps(tr *trace.Trace, phase string, k int) {
	byWin := map[int][]*trace.Event{}
	maxWin := -1
	for i := range tr.Records {
		e := &tr.Records[i]
		if e.Kind != trace.KindOpWindow || e.Phase != phase {
			continue
		}
		byWin[e.Window] = append(byWin[e.Window], e)
		if e.Window > maxWin {
			maxWin = e.Window
		}
	}
	fmt.Printf("  top %d operators per window by network bytes:\n", k)
	for w := 0; w <= maxWin; w++ {
		ops := byWin[w]
		sort.SliceStable(ops, func(i, j int) bool {
			if ops[i].NetBytesIn != ops[j].NetBytesIn {
				return ops[i].NetBytesIn > ops[j].NetBytesIn
			}
			return ops[i].Op < ops[j].Op
		})
		if len(ops) > k {
			ops = ops[:k]
		}
		for _, e := range ops {
			fmt.Printf("    win %3d  %s  op %d %s %s: %d net B, %d rows in\n",
				w, location(e), e.Op, e.OpKind, e.Query, e.NetBytesIn, e.RowsIn)
		}
	}
}

func location(e *trace.Event) string {
	if e.Central {
		return "central"
	}
	return fmt.Sprintf("host %d", e.Host)
}

// explainViolation names the first load-bound violation and the
// operators behind it. It prefers the controller's recorded decision
// (trigger_eval carries the bound, the factor, and the verdict);
// without one it scans the rebuilt series against -bound. Returns
// whether a violation was found.
func explainViolation(tr *trace.Trace, f *appFlags) bool {
	win, rate, bound, factor := -1, 0.0, f.bound, f.factor
	loadPhase := f.phase
	if ev := findKind(tr, trace.KindTriggerEval); ev != nil {
		bound, factor = ev.Bound, ev.Factor
		win, rate = ev.Window, ev.Rate
		if loadPhase == "" {
			loadPhase = "initial"
		}
		fmt.Printf("controller evaluated set %s against %.2f x bound %.0f B/s\n", ev.Set, factor, bound)
		if win < 0 {
			fmt.Println("verdict: no window violated the bound; the trigger never fired")
			return false
		}
	} else {
		if bound <= 0 {
			fatal(fmt.Errorf("trace has no recorded controller decision; pass -bound (the predicted max-host B/s)"))
		}
		series := tr.HostLoadSeries(loadPhase)
		if series == nil {
			fatal(fmt.Errorf("trace has no host_window records to scan"))
		}
		win, rate = obs.FirstLoadViolation(series, bound, factor, f.warmup)
		fmt.Printf("scanning against %.2f x bound %.0f B/s (warmup %d)\n", factor, bound, f.warmup)
		if win < 0 {
			fmt.Println("verdict: no window violated the bound")
			return false
		}
	}

	fmt.Printf("verdict: window %d violated the bound: measured %.0f B/s > %.0f B/s\n",
		win, rate, bound*factor)
	series := tr.HostLoadSeries(loadPhase)
	hdr := tr.Header(loadPhase)
	if series == nil || win >= len(series) || hdr == nil {
		return true
	}
	w := series[win]
	worst, worstBytes := -1, int64(-1)
	for _, hw := range w.Hosts {
		if hw.NetBytesIn > worstBytes {
			worst, worstBytes = hw.Host, hw.NetBytesIn
		}
	}
	fmt.Printf("violating window [%d,%d)s, heaviest host %d with %d net bytes\n",
		w.StartSec, w.EndSec, worst, worstBytes)

	// The causal chain: the operators on that host (central-island
	// operators fold into the aggregator host) that received the bytes.
	var ops []*trace.Event
	for i := range tr.Records {
		e := &tr.Records[i]
		if e.Kind != trace.KindOpWindow || e.Phase != hdr.Phase || e.Window != win {
			continue
		}
		h := e.Host
		if e.Central {
			h = hdr.AggregatorHost
		}
		if h == worst {
			ops = append(ops, e)
		}
	}
	sort.SliceStable(ops, func(i, j int) bool {
		if ops[i].NetBytesIn != ops[j].NetBytesIn {
			return ops[i].NetBytesIn > ops[j].NetBytesIn
		}
		return ops[i].Op < ops[j].Op
	})
	if len(ops) > 5 {
		ops = ops[:5]
	}
	fmt.Println("contributing operators:")
	for _, e := range ops {
		fmt.Printf("  %s  op %d %s %s: %d net B, %d tuples, %d rows in\n",
			location(e), e.Op, e.OpKind, e.Query, e.NetBytesIn, e.NetTuplesIn, e.RowsIn)
	}
	return true
}

// explainRepartition prints the controller's decision chain. Returns
// whether the trace contains a repartition switch.
func explainRepartition(tr *trace.Trace) bool {
	seen := false
	switched := false
	for i := range tr.Records {
		e := &tr.Records[i]
		switch e.Kind {
		case trace.KindTriggerEval:
			seen = true
			if e.Window < 0 {
				fmt.Printf("trigger_eval: set %s stayed within %.2f x bound %.0f B/s; never fired\n",
					e.Set, e.Factor, e.Bound)
			} else {
				fmt.Printf("trigger_eval: set %s, window %d measured %.0f B/s against %.2f x bound %.0f B/s\n",
					e.Set, e.Window, e.Rate, e.Factor, e.Bound)
			}
		case trace.KindTrigger:
			fmt.Printf("trigger: window %d, drain at t=%ds (%s)\n", e.Window, e.WM, e.Note)
		case trace.KindStatsRefresh:
			fmt.Printf("stats_refresh: %s\n", e.Note)
		case trace.KindReanalyze:
			fmt.Printf("reanalyze: recommends %s (refreshed bound %.0f B/s)\n", e.Set, e.Bound)
		case trace.KindConfirm:
			fmt.Printf("confirm: re-optimization kept %s; no switch (post-trigger peak %.0f B/s)\n", e.Set, e.Rate)
		case trace.KindSwitch:
			switched = true
			fmt.Printf("switch: deploy %s at t=%ds (refreshed bound %.0f B/s)\n", e.Set, e.WM, e.Bound)
		case trace.KindReplay:
			fmt.Printf("replay: set %s, post-switch peak %.0f B/s (%s)\n", e.Set, e.Rate, e.Note)
		}
	}
	if !seen {
		fmt.Println("trace has no controller records (not an adaptive run)")
		return false
	}
	if !switched {
		fmt.Println("verdict: no repartition switch")
		return false
	}
	fmt.Println("verdict: repartitioned")
	return true
}

// findKind returns the first record of the given kind.
func findKind(tr *trace.Trace, kind string) *trace.Event {
	for i := range tr.Records {
		if tr.Records[i].Kind == kind {
			return &tr.Records[i]
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-trace:", err)
	os.Exit(2)
}
