package core

import (
	"sort"
	"strings"

	"qap/internal/gsql"
	"qap/internal/plan"
)

// StreamSets assigns each source stream its own partitioning set — the
// paper's stated future work ("expanding the analysis algorithms to
// handle different partitioning schemes for different input streams").
// Keys are lower-case stream names.
//
// Semantics: the splitter hashes stream s's tuples by the element
// vector StreamSets[s]; tuples of different streams land in the same
// partition when their element vectors hash equally. A cross-stream
// join is therefore compatible only when the two streams' sets are
// position-aligned: equal length, and position i of each set applies
// the same coarsening shape to the two sides of one join-key pair, so
// matching tuples produce identical vectors.
type StreamSets map[string]Set

// String renders the assignment deterministically.
func (ss StreamSets) String() string {
	names := make([]string, 0, len(ss))
	for name := range ss { //qap:allow maprange -- names collected then sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + ":" + ss[name].String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Get returns the stream's set.
func (ss StreamSets) Get(stream string) Set { return ss[strings.ToLower(stream)] }

// IsEmpty reports whether no stream has a partitioning.
func (ss StreamSets) IsEmpty() bool {
	for _, s := range ss { //qap:allow maprange -- any-empty check, order-insensitive
		if !s.IsEmpty() {
			return false
		}
	}
	return true
}

// shapeOf extracts the coarsening shape of an element expression
// relative to its bare attribute: the canonical form for the
// mask/div lattice, so that R.custIP & 0xFF00 and S.srcIP & 0xFF00
// compare as "the same function".
func shapeOf(e Elem) form { return classify(e.Expr) }

func sameShape(a, b Elem) bool {
	fa, fb := shapeOf(a), shapeOf(b)
	if fa.kind == formOther || fb.kind == formOther {
		// Fall back to structural identity of the expressions with
		// attribute references erased.
		ea, _ := substituteRefs(a.Expr, func(*gsql.ColumnRef) (gsql.Expr, bool) {
			return &gsql.ColumnRef{Name: "_"}, true
		})
		eb, _ := substituteRefs(b.Expr, func(*gsql.ColumnRef) (gsql.Expr, bool) {
			return &gsql.ColumnRef{Name: "_"}, true
		})
		return gsql.EqualExpr(ea, eb)
	}
	return fa == fb
}

// CompatibleStreams reports whether the per-stream partitioning is
// compatible with node n. Single-stream nodes check their stream's set
// against the usual requirement; cross-stream joins additionally
// require position-aligned sets as described on StreamSets.
func CompatibleStreams(ss StreamSets, n *plan.Node) bool {
	switch n.Kind {
	case plan.KindSource, plan.KindSelectProject:
		return true
	case plan.KindAggregate:
		streams := nodeStreams(n)
		if len(streams) != 1 {
			return false
		}
		set := ss.Get(streams[0])
		if set.IsEmpty() {
			return false
		}
		req := NodeRequirement(n)
		return SubsetCompatible(set, req.CompatSet)
	case plan.KindJoin:
		return joinCompatibleStreams(ss, n)
	default:
		return false
	}
}

// nodeStreams lists the base streams a node's subtree reads.
func nodeStreams(n *plan.Node) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(*plan.Node)
	walk = func(x *plan.Node) {
		if x.Kind == plan.KindSource {
			key := strings.ToLower(x.Stream.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
			return
		}
		for _, in := range x.Inputs {
			walk(in)
		}
	}
	walk(n)
	sort.Strings(out)
	return out
}

func joinCompatibleStreams(ss StreamSets, n *plan.Node) bool {
	ls := nodeStreams(n.Inputs[0])
	rs := nodeStreams(n.Inputs[1])
	if len(ls) != 1 || len(rs) != 1 {
		return false
	}
	leftSet, rightSet := ss.Get(ls[0]), ss.Get(rs[0])
	if leftSet.IsEmpty() || rightSet.IsEmpty() {
		return false
	}
	if ls[0] == rs[0] {
		// Self-join over one stream: the single-set compatibility test
		// applies.
		return SubsetCompatible(leftSet, NodeRequirement(n).CompatSet)
	}
	if len(leftSet) != len(rightSet) {
		return false
	}
	// Each position of the two sets must be a same-shaped coarsening
	// of the two sides of one join-key pair.
	type pair struct{ l, r Elem }
	var pairs []pair
	for i := range n.LeftKeys {
		ll := n.SideLineage(0, n.LeftKeys[i])
		rl := n.SideLineage(1, n.RightKeys[i])
		if ll.Base == nil || rl.Base == nil || ll.Temporal || rl.Temporal {
			continue
		}
		pairs = append(pairs, pair{
			l: Elem{Attr: ll.Base.Attr, Expr: ll.Base.Expr},
			r: Elem{Attr: rl.Base.Attr, Expr: rl.Base.Expr},
		})
	}
	for i := range leftSet {
		le, re := leftSet[i], rightSet[i]
		ok := false
		for _, p := range pairs {
			if IsCoarseningOf(le, p.l) && IsCoarseningOf(re, p.r) && sameShape(le, re) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// DistributableStreams is Distributable under per-stream partitioning.
func DistributableStreams(ss StreamSets, n *plan.Node) bool {
	if n.Kind == plan.KindSource {
		return true
	}
	if !CompatibleStreams(ss, n) {
		return false
	}
	for _, in := range n.Inputs {
		if !DistributableStreams(ss, in) {
			return false
		}
	}
	return true
}

// PerStreamResult is the outcome of the per-stream search.
type PerStreamResult struct {
	// Sets is the recommended assignment (streams with no useful
	// partitioning are absent).
	Sets StreamSets
	// PerStream holds the independent single-stream analyses.
	PerStream map[string]*Result
	// CrossJoins lists cross-stream joins whose position-aligned
	// requirements were added to both streams' candidate pools.
	CrossJoins []string
}

// OptimizePerStream extends the Section 4 analysis to one partitioning
// set per input stream: queries reading only one stream constrain only
// that stream's set (so two streams with disjoint monitoring queries
// no longer conflict, which the shared-set assumption forces), and
// cross-stream equi-joins contribute position-aligned requirements to
// both streams.
//
// The search runs the standard dynamic program once per stream over
// the nodes reading it; a cross-stream join participates in both
// streams' searches via its side's key expressions, and the final
// assignment is validated (and the join's own aligned sets substituted
// on failure) through CompatibleStreams.
func OptimizePerStream(g *plan.Graph, stats Stats, opts Options) (*PerStreamResult, error) {
	res := &PerStreamResult{
		Sets:      make(StreamSets),
		PerStream: make(map[string]*Result),
	}
	// Bucket query nodes by the single stream they read; cross-stream
	// joins are handled separately.
	buckets := make(map[string][]*plan.Node)
	var crossJoins []*plan.Node
	for _, n := range g.QueryNodes() {
		streams := nodeStreams(n)
		switch {
		case len(streams) == 1:
			buckets[streams[0]] = append(buckets[streams[0]], n)
		case n.Kind == plan.KindJoin && len(streams) == 2:
			crossJoins = append(crossJoins, n)
			res.CrossJoins = append(res.CrossJoins, n.QueryName)
		default:
			// A non-join node spanning streams (aggregation over a
			// cross-stream join): it constrains nothing directly; its
			// inputs already did.
		}
	}

	// Run the single-set analysis per stream over the sub-DAG of
	// nodes reading it. The existing Optimize works on the full graph;
	// requirements of nodes outside the bucket are universal there, so
	// restricting the candidate pool suffices: build a filtered view
	// by reusing Optimize on the whole graph but seeding only this
	// stream's nodes. Simplest correct approach: run Optimize on the
	// full graph with a stats view unchanged, then keep only elements
	// whose attributes belong to this stream.
	for _, src := range g.Sources() {
		stream := strings.ToLower(src.Stream.Name)
		nodes := buckets[stream]
		if len(nodes) == 0 && len(crossJoins) == 0 {
			continue
		}
		sub, err := optimizeBucket(g, stats, opts, nodes, crossJoins, 0, stream)
		if err != nil {
			return nil, err
		}
		res.PerStream[stream] = sub
		if !sub.Best.IsEmpty() {
			res.Sets[stream] = sub.Best
		}
	}

	// Validate cross-stream joins; where the independent choices broke
	// the position alignment, repair by assigning both streams an
	// aligned subset of the join's key pairs — choosing, among the
	// non-empty subsets, the one keeping the most query nodes
	// compatible (ties: fewer elements, for cheaper hashing).
	for _, j := range crossJoins {
		if CompatibleStreams(res.Sets, j) {
			continue
		}
		ls := nodeStreams(j.Inputs[0])
		rs := nodeStreams(j.Inputs[1])
		if len(ls) != 1 || len(rs) != 1 {
			continue
		}
		lset, rset := joinSideSets(j)
		if lset.IsEmpty() {
			continue
		}
		k := len(lset)
		if k > 6 {
			k = 6
		}
		bestScore, bestSize := -1, 0
		var bestL, bestR Set
		for mask := 1; mask < 1<<k; mask++ {
			var cl, cr Set
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					cl = append(cl, lset[i])
					cr = append(cr, rset[i])
				}
			}
			trial := make(StreamSets, len(res.Sets))
			for s, set := range res.Sets { //qap:allow maprange -- map-to-map copy, order-insensitive
				trial[s] = set
			}
			trial[ls[0]], trial[rs[0]] = cl, cr
			if !CompatibleStreams(trial, j) {
				continue
			}
			score := 0
			for _, n := range g.QueryNodes() {
				if CompatibleStreams(trial, n) {
					score++
				}
			}
			if score > bestScore || (score == bestScore && len(cl) < bestSize) {
				bestScore, bestSize = score, len(cl)
				bestL, bestR = cl, cr
			}
		}
		if bestScore >= 0 {
			res.Sets[ls[0]], res.Sets[rs[0]] = bestL, bestR
		}
	}
	return res, nil
}

// joinSideSets extracts the position-aligned per-side requirement of a
// cross-stream join: the base expressions of each non-temporal key
// pair, in pair order.
func joinSideSets(n *plan.Node) (left, right Set) {
	for i := range n.LeftKeys {
		ll := n.SideLineage(0, n.LeftKeys[i])
		rl := n.SideLineage(1, n.RightKeys[i])
		if ll.Base == nil || rl.Base == nil || ll.Temporal || rl.Temporal {
			continue
		}
		left = append(left, Elem{Attr: ll.Base.Attr, Expr: ll.Base.Expr})
		right = append(right, Elem{Attr: rl.Base.Attr, Expr: rl.Base.Expr})
	}
	return left, right
}

// optimizeBucket runs the single-set DP restricted to one stream's
// nodes, including each cross-stream join via its side reading this
// stream.
func optimizeBucket(g *plan.Graph, stats Stats, opts Options, nodes []*plan.Node, crossJoins []*plan.Node, _ int, stream string) (*Result, error) {
	// Requirements for this bucket: the nodes' own, plus the
	// stream-side keys of cross joins touching the stream.
	extra := make(map[*plan.Node]Set)
	for _, j := range crossJoins {
		ls := nodeStreams(j.Inputs[0])
		rs := nodeStreams(j.Inputs[1])
		lset, rset := joinSideSets(j)
		if len(ls) == 1 && ls[0] == stream && !lset.IsEmpty() {
			extra[j] = lset
		}
		if len(rs) == 1 && rs[0] == stream && !rset.IsEmpty() {
			extra[j] = rset
		}
	}
	if len(nodes) == 0 && len(extra) == 0 {
		return &Result{PerNode: map[string]Requirement{}}, nil
	}
	inBucket := make(map[*plan.Node]bool, len(nodes))
	for _, b := range nodes {
		inBucket[b] = true
	}
	// The search core evaluates candidates with the global single-set
	// cost model, which undervalues candidates for *other* streams'
	// nodes; since those are marked universal here, the relative
	// ordering of this stream's candidates is preserved. Candidate
	// validity is scoped to this stream's schema.
	var streamSchema *plan.Node
	for _, src := range g.Sources() {
		if strings.ToLower(src.Stream.Name) == stream {
			streamSchema = src
			break
		}
	}
	validFor := func(s Set) bool {
		if streamSchema == nil {
			return false
		}
		for _, e := range s {
			if _, _, ok := streamSchema.Stream.Lookup(e.Attr); !ok {
				return false
			}
		}
		return true
	}
	return optimize(g, stats, opts, func(n *plan.Node) Requirement {
		if s, ok := extra[n]; ok {
			return Requirement{Set: s, CompatSet: s}
		}
		if inBucket[n] {
			return NodeRequirement(n)
		}
		// Nodes outside the bucket do not constrain this stream.
		return Requirement{Universal: true}
	}, validFor)
}
