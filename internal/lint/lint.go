// Package lint is the static semantic analyzer for GSQL query sets:
// a rule-based diagnostic engine over the parsed queries and the built
// logical plan DAG. Each rule encodes a piece of the paper's static
// reasoning — the Section 3 scope rules deciding which partitioning
// sets are compatible with each node, and the Section 5 Opt_Eligible
// conditions deciding which plan transformations are legal — and
// reports it as a stable QAP0xx diagnostic with a source position.
//
// Diagnostics follow the obs package's determinism conventions: the
// report is canonically sorted, JSON key order is struct declaration
// order, and the output is byte-identical across runs and worker
// counts (the engine never iterates a map into its output).
package lint

import (
	"fmt"
	"strings"

	"qap/internal/core"
	"qap/internal/gsql"
	"qap/internal/plan"
	"qap/internal/schema"
)

// Options configures a lint run.
type Options struct {
	// Sets are the candidate partitioning sets every node is explained
	// against. When empty they are derived from the analysis
	// recommendation (if given) plus each node's recommended set.
	Sets []core.Set
	// Analysis optionally supplies a completed partitioning search so
	// the recommended set is explained first.
	Analysis *core.Result
	// Source labels the input in the report (e.g. a file name).
	Source string
}

// Run lints a built query DAG and returns the diagnostic report. The
// query set qs supplies source positions; it may be nil when only
// plan-level rules are wanted.
func Run(g *plan.Graph, qs *gsql.QuerySet, opts Options) *Report {
	r := &Report{Source: opts.Source, Diagnostics: []Diagnostic{}}
	l := &linter{g: g, qs: qs, rep: r}
	l.sets = candidateSets(g, opts)

	for _, n := range g.Nodes {
		if n.Kind == plan.KindSource {
			continue
		}
		l.lintCompatibility(n)
		switch n.Kind {
		case plan.KindAggregate:
			l.lintAggregate(n)
		case plan.KindJoin:
			l.lintJoin(n)
		}
		l.lintDeadColumns(n)
	}
	r.finish()
	return r
}

// LoadErrorReport wraps a parse/build failure as a report with a
// single QAP000 diagnostic at the error's position, so qap-lint can
// render load failures in the same format as rule findings.
func LoadErrorReport(source string, err error) *Report {
	pos := gsql.ErrPos(err)
	r := &Report{Source: source, Diagnostics: []Diagnostic{{
		Code:     CodeLoadError,
		Severity: SevError,
		Line:     pos.Line,
		Col:      pos.Col,
		Message:  err.Error(),
		Section:  codeSection(CodeLoadError),
	}}}
	r.finish()
	return r
}

// candidateSets derives the partitioning sets to explain, in a fixed
// order: the analysis recommendation first, then each query node's
// recommended set in DAG order, deduplicated by canonical text.
func candidateSets(g *plan.Graph, opts Options) []core.Set {
	if len(opts.Sets) > 0 {
		return opts.Sets
	}
	var sets []core.Set
	seen := make(map[string]bool)
	add := func(s core.Set) {
		if s.IsEmpty() || seen[s.String()] {
			return
		}
		seen[s.String()] = true
		sets = append(sets, s)
	}
	if opts.Analysis != nil {
		add(opts.Analysis.Best)
	}
	for _, n := range g.Nodes {
		if n.Kind == plan.KindSource {
			continue
		}
		add(core.NodeRequirement(n).Set)
	}
	return sets
}

type linter struct {
	g    *plan.Graph
	qs   *gsql.QuerySet
	rep  *Report
	sets []core.Set
}

// emit appends a diagnostic with the code's registered severity and
// default paper section.
func (l *linter) emit(code string, pos gsql.Pos, query, format string, args ...any) {
	l.emitSection(code, codeSection(code), pos, query, format, args...)
}

// emitSection appends a diagnostic citing a specific paper section.
func (l *linter) emitSection(code, section string, pos gsql.Pos, query, format string, args ...any) {
	l.rep.Diagnostics = append(l.rep.Diagnostics, Diagnostic{
		Code:     code,
		Severity: codeSeverity(code),
		Line:     pos.Line,
		Col:      pos.Col,
		Query:    query,
		Message:  fmt.Sprintf(format, args...),
		Section:  section,
	})
}

// ---- compatibility explanations (paper Sections 3.4-3.5) ----

func (l *linter) lintCompatibility(n *plan.Node) {
	req := core.NodeRequirement(n)
	if req.Universal {
		l.emit(CodeUniversal, n.Pos, n.QueryName,
			"compatible with any partitioning: selections and projections apply per tuple, so any routing preserves the output")
		return
	}
	if req.CompatSet.IsEmpty() {
		l.emit(CodeUnpartitionable, n.Pos, n.QueryName,
			"no stream partitioning is compatible (%s); this node and everything above it must execute centrally",
			l.unpartitionableCause(n))
	}
	for _, ps := range l.sets {
		if core.Compatible(ps, n) {
			l.emitSection(CodeSetCompatible, l.ruleSection(n), n.Pos, n.QueryName,
				"partitioning %s is compatible: %s", ps, l.compatibleCause(n))
		} else {
			l.emitSection(CodeSetExcluded, l.ruleSection(n), n.Pos, n.QueryName,
				"partitioning %s excluded: %s", ps, l.exclusionCause(ps, n, req))
		}
	}
}

// ruleSection names the scope rule that governs a node's kind.
func (l *linter) ruleSection(n *plan.Node) string {
	switch n.Kind {
	case plan.KindAggregate:
		return "3.5.2"
	case plan.KindJoin:
		return "3.5.3"
	default:
		return "3.4"
	}
}

// compatibleCause states which scope rule a compatible set satisfies.
func (l *linter) compatibleCause(n *plan.Node) string {
	switch n.Kind {
	case plan.KindAggregate:
		return "every element is a coarsening of a GROUP BY expression, so each group is confined to one partition (group-by coverage)"
	case plan.KindJoin:
		return "every element is a coarsening of a shared equi-join key expression, so matching tuples meet in one partition (join-key coverage)"
	default:
		return "the node places no constraint on routing"
	}
}

// unpartitionableCause explains why a node's compatibility set is
// empty, term by term.
func (l *linter) unpartitionableCause(n *plan.Node) string {
	var parts []string
	switch n.Kind {
	case plan.KindAggregate:
		for _, g := range n.GroupBy {
			lin := n.LineageOf(g.Expr)
			switch {
			case lin.Base == nil:
				parts = append(parts, fmt.Sprintf("GROUP BY term %q does not trace to a scalar expression over one base attribute", g.Name))
			case lin.Temporal && n.WindowPanes > 1:
				parts = append(parts, fmt.Sprintf("GROUP BY term %q is the sliding window's temporal expression, excluded so group placement cannot change mid-window (Section 3.5.1)", g.Name))
			}
		}
		if len(n.GroupBy) == 0 {
			parts = append(parts, "the aggregation has no GROUP BY, so its single group spans every partition")
		}
	case plan.KindJoin:
		for i := range n.LeftKeys {
			ll := n.SideLineage(0, n.LeftKeys[i])
			rl := n.SideLineage(1, n.RightKeys[i])
			switch {
			case ll.Base == nil || rl.Base == nil:
				parts = append(parts, fmt.Sprintf("join key %s = %s does not trace to base attributes on both sides", n.LeftKeys[i], n.RightKeys[i]))
			case !strings.EqualFold(ll.Base.Attr, rl.Base.Attr):
				parts = append(parts, fmt.Sprintf("join key %s = %s relates different base attributes (%s vs %s)", n.LeftKeys[i], n.RightKeys[i], ll.Base.Attr, rl.Base.Attr))
			case !equalNoQual(ll.Base.Expr, rl.Base.Expr):
				parts = append(parts, fmt.Sprintf("join key %s = %s computes different expressions of %s on each side (%s vs %s), so no shared partitioning co-locates matches", n.LeftKeys[i], n.RightKeys[i], ll.Base.Attr, ll.Base.Expr, rl.Base.Expr))
			}
		}
	}
	if len(parts) == 0 {
		return "no term yields a partitionable base expression"
	}
	return strings.Join(parts, "; ")
}

// exclusionCause explains, element by element, which scope rule
// rejected the candidate set for the node.
func (l *linter) exclusionCause(ps core.Set, n *plan.Node, req core.Requirement) string {
	if ps.IsEmpty() {
		return "the empty set routes tuples arbitrarily and is compatible with nothing"
	}
	var parts []string
	for _, e := range ps {
		if coveredBy(e, req.CompatSet) {
			continue
		}
		parts = append(parts, l.elemExclusion(e, n, req))
	}
	if len(parts) == 0 {
		return "the set satisfies no scope rule"
	}
	return strings.Join(parts, "; ")
}

// coveredBy reports whether elem e is a coarsening of some element of
// the requirement set (the per-element half of SubsetCompatible).
func coveredBy(e core.Elem, req core.Set) bool {
	for _, g := range req {
		if core.IsCoarseningOf(e, g) {
			return true
		}
	}
	return false
}

// elemExclusion explains why one element of a candidate set fails the
// node's scope rule.
func (l *linter) elemExclusion(e core.Elem, n *plan.Node, req core.Requirement) string {
	attrInReq := false
	for _, g := range req.CompatSet {
		if strings.EqualFold(g.Attr, e.Attr) {
			attrInReq = true
			break
		}
	}
	switch n.Kind {
	case plan.KindAggregate:
		if attrInReq {
			return fmt.Sprintf("element %s is not a coarsening of the node's expression over %s, so one group could span several partitions (group-by coverage, Section 3.5.2)", e, e.Attr)
		}
		// The attribute may appear only in temporal GROUP BY terms
		// that the sliding-window rule excluded.
		for _, g := range n.GroupBy {
			lin := n.LineageOf(g.Expr)
			if lin.Base != nil && lin.Temporal && n.WindowPanes > 1 && strings.EqualFold(lin.Base.Attr, e.Attr) {
				return fmt.Sprintf("element %s matches only the sliding window's temporal expression %s, excluded so group placement cannot change mid-window (temporal exclusion, Section 3.5.1)", e, lin.Base.Expr)
			}
		}
		return fmt.Sprintf("no GROUP BY expression is a function of %s, so grouping by it would split groups across partitions (group-by coverage, Section 3.5.2)", e.Attr)
	case plan.KindJoin:
		if attrInReq {
			return fmt.Sprintf("element %s is not a coarsening of the node's shared join-key expression over %s (join-key coverage, Section 3.5.3)", e, e.Attr)
		}
		for i := range n.LeftKeys {
			ll := n.SideLineage(0, n.LeftKeys[i])
			rl := n.SideLineage(1, n.RightKeys[i])
			if ll.Base == nil || rl.Base == nil {
				continue
			}
			if (strings.EqualFold(ll.Base.Attr, e.Attr) || strings.EqualFold(rl.Base.Attr, e.Attr)) &&
				!equalNoQual(ll.Base.Expr, rl.Base.Expr) {
				return fmt.Sprintf("the join key relating %s computes different expressions on each side (%s vs %s); no shared partitioning expression co-locates matching tuples (join-key coverage, Section 3.5.3)", e.Attr, ll.Base.Expr, rl.Base.Expr)
			}
		}
		return fmt.Sprintf("no equi-join key is computed from %s identically on both sides (join-key coverage, Section 3.5.3)", e.Attr)
	default:
		return fmt.Sprintf("element %s satisfies no scope rule", e)
	}
}

// ---- aggregation rules (paper Section 5.2) ----

func (l *linter) lintAggregate(n *plan.Node) {
	var holistic []string
	for _, a := range n.Aggs {
		if !a.Spec.Splittable {
			holistic = append(holistic, a.String())
		}
	}
	if len(holistic) > 0 {
		l.emit(CodeHolisticAggregate, n.Pos, n.QueryName,
			"holistic aggregate %s cannot be split into sub- and super-aggregates; under an incompatible partitioning the whole aggregation (and its input stream) centralizes — consider APPROX_COUNT_DISTINCT",
			strings.Join(holistic, ", "))
	}
	if n.Having != nil && len(holistic) == 0 && !core.NodeRequirement(n).Universal {
		pos := l.havingPos(n)
		l.emit(CodeHavingCentral, pos, n.QueryName,
			"when this aggregation is split into sub- and super-aggregates, HAVING evaluates centrally on the super-aggregate: sub-aggregates stream unfiltered partial groups to the aggregator")
	}
}

// havingPos finds the HAVING clause position of the node's defining
// query, falling back to the node position.
func (l *linter) havingPos(n *plan.Node) gsql.Pos {
	if l.qs != nil {
		if q, ok := l.qs.Lookup(n.QueryName); ok && q.Stmt.HavingPos.IsValid() {
			return q.Stmt.HavingPos
		}
	}
	return n.Pos
}

// ---- join rules (paper Sections 3.1 and 5.3) ----

func (l *linter) lintJoin(n *plan.Node) {
	l.lintWindowAlignment(n)
	l.lintKeyTypes(n)
	l.lintNullPadding(n)
}

// lintWindowAlignment checks that both join inputs tumble on the same
// window expression (paper Section 3.1: a join matches tuples within
// the same time window). A pair offset by a whole number of windows —
// the paper's flow_pairs S1.tb = S2.tb+1 — is aligned, and reported
// as an informational cross-epoch join.
func (l *linter) lintWindowAlignment(n *plan.Node) {
	if n.TemporalKey < 0 {
		return
	}
	ll := n.SideLineage(0, n.LeftKeys[n.TemporalKey])
	rl := n.SideLineage(1, n.RightKeys[n.TemporalKey])
	if ll.Base == nil || rl.Base == nil {
		return
	}
	if equalNoQual(ll.Base.Expr, rl.Base.Expr) {
		return
	}
	lbase, loff := stripOffset(ll.Base.Expr)
	rbase, roff := stripOffset(rl.Base.Expr)
	if equalNoQual(lbase, rbase) {
		l.emit(CodeCrossEpochJoin, n.Pos, n.QueryName,
			"temporal join key offsets the window index (%s vs %s, offset %+d): each result pairs tuples from windows %d apart",
			ll.Base.Expr, rl.Base.Expr, loff-roff, abs64(loff-roff))
		return
	}
	l.emit(CodeWindowMisaligned, n.Pos, n.QueryName,
		"join inputs tumble on different window expressions (%s vs %s): window boundaries disagree, so matching tuples can fall into windows that never align",
		ll.Base.Expr, rl.Base.Expr)
}

// lintKeyTypes flags equi-join key pairs whose two sides have
// incompatible types: the equality can never hold, and under
// NULL-padding projections a schema mismatch silently drops matches.
func (l *linter) lintKeyTypes(n *plan.Node) {
	for i := range n.LeftKeys {
		lt, lok := keyType(n.Inputs[0], n.LeftKeys[i])
		rt, rok := keyType(n.Inputs[1], n.RightKeys[i])
		if !lok || !rok {
			continue
		}
		if (lt == schema.TString) != (rt == schema.TString) {
			l.emit(CodeKeyTypeMismatch, n.Pos, n.QueryName,
				"join key %s = %s compares incompatible types (%v vs %v); the equality can never hold",
				n.LeftKeys[i], n.RightKeys[i], lt, rt)
		}
	}
}

// keyType resolves the coarse type of a join key expression when it is
// a plain column reference into the given input.
func keyType(in *plan.Node, e gsql.Expr) (schema.Type, bool) {
	ref, ok := e.(*gsql.ColumnRef)
	if !ok {
		return 0, false
	}
	for _, c := range in.OutCols {
		if strings.EqualFold(c.Name, ref.Name) {
			return c.Type, true
		}
	}
	return 0, false
}

// lintNullPadding flags outer-join output columns that the padded side
// supplies — they are NULL on padding rows — when a downstream query
// groups or joins on them: every padding row lands in the NULL group
// or never matches.
func (l *linter) lintNullPadding(n *plan.Node) {
	var padded []string
	for _, p := range n.JoinProjs {
		side, mixed := projSide(n, p.Expr)
		if mixed || side < 0 {
			continue
		}
		isPadded := false
		switch n.JoinType {
		case gsql.JoinLeftOuter:
			isPadded = side == 1
		case gsql.JoinRightOuter:
			isPadded = side == 0
		case gsql.JoinFullOuter:
			isPadded = true
		}
		if isPadded {
			padded = append(padded, p.Name)
		}
	}
	if len(padded) == 0 {
		return
	}
	for _, parent := range n.Parents {
		for _, e := range groupingExprs(parent) {
			gsql.WalkExpr(e, func(x gsql.Expr) bool {
				ref, ok := x.(*gsql.ColumnRef)
				if !ok {
					return true
				}
				for _, name := range padded {
					if strings.EqualFold(ref.Name, name) && refReaches(parent, n, ref) {
						l.emit(CodeNullPadded, parent.Pos, parent.QueryName,
							"column %q is NULL-padded by the %s in query %s; grouping or joining on it collects every padding row into the NULL group",
							name, n.JoinType, n.QueryName)
					}
				}
				return true
			})
		}
	}
}

// projSide classifies which join input a projection reads: 0 left,
// 1 right, -1 none; mixed is true when it reads both.
func projSide(n *plan.Node, e gsql.Expr) (side int, mixed bool) {
	side = -1
	gsql.WalkExpr(e, func(x gsql.Expr) bool {
		ref, ok := x.(*gsql.ColumnRef)
		if !ok {
			return true
		}
		s := refSide(n, ref)
		if s < 0 {
			return true
		}
		if side >= 0 && side != s {
			mixed = true
		}
		side = s
		return true
	})
	return side, mixed
}

// refSide resolves which input of a join a column reference reads.
func refSide(n *plan.Node, ref *gsql.ColumnRef) int {
	if ref.Qualifier != "" {
		switch {
		case strings.EqualFold(ref.Qualifier, n.LeftBind):
			return 0
		case strings.EqualFold(ref.Qualifier, n.RightBind):
			return 1
		}
		return -1
	}
	for side, in := range n.Inputs {
		for _, c := range in.OutCols {
			if strings.EqualFold(c.Name, ref.Name) {
				return side
			}
		}
	}
	return -1
}

// groupingExprs returns the expressions a node uses for grouping or
// key matching — the places a NULL-padded input column is hazardous.
func groupingExprs(n *plan.Node) []gsql.Expr {
	var out []gsql.Expr
	switch n.Kind {
	case plan.KindAggregate:
		for _, g := range n.GroupBy {
			out = append(out, g.Expr)
		}
	case plan.KindJoin:
		out = append(out, n.LeftKeys...)
		out = append(out, n.RightKeys...)
	}
	return out
}

// refReaches reports whether parent's column reference ref resolves to
// child's output (rather than to the other input of a join parent).
func refReaches(parent, child *plan.Node, ref *gsql.ColumnRef) bool {
	for i, in := range parent.Inputs {
		if in != child {
			continue
		}
		bind := parent.InBind
		if parent.Kind == plan.KindJoin {
			if i == 0 {
				bind = parent.LeftBind
			} else {
				bind = parent.RightBind
			}
		}
		if ref.Qualifier == "" || strings.EqualFold(ref.Qualifier, bind) {
			return true
		}
	}
	return false
}

// ---- dead columns (paper Section 5.4) ----

// lintDeadColumns flags output columns of a non-root query that no
// downstream query reads: the paper's select/project push exists
// precisely because shipping unread columns wastes network bandwidth.
func (l *linter) lintDeadColumns(n *plan.Node) {
	if len(n.Parents) == 0 || len(n.OutCols) == 0 {
		return
	}
	used := make([]bool, len(n.OutCols))
	for _, p := range n.Parents {
		for _, e := range inputExprs(p) {
			gsql.WalkExpr(e, func(x gsql.Expr) bool {
				ref, ok := x.(*gsql.ColumnRef)
				if !ok {
					return true
				}
				if !refReaches(p, n, ref) {
					return true
				}
				for ci, c := range n.OutCols {
					if strings.EqualFold(c.Name, ref.Name) {
						used[ci] = true
					}
				}
				return true
			})
		}
	}
	for ci, c := range n.OutCols {
		if !used[ci] {
			l.emit(CodeDeadColumn, n.Pos, n.QueryName,
				"output column %q is never read by any downstream query; it is shipped to the aggregator for nothing — project it away",
				c.Name)
		}
	}
}

// inputExprs returns every expression of a node that reads its inputs
// (post-aggregation expressions read group/aggregate names, not input
// columns, and are deliberately excluded).
func inputExprs(n *plan.Node) []gsql.Expr {
	var out []gsql.Expr
	add := func(e gsql.Expr) {
		if e != nil {
			out = append(out, e)
		}
	}
	switch n.Kind {
	case plan.KindSelectProject:
		add(n.Filter)
		for _, p := range n.Projs {
			add(p.Expr)
		}
	case plan.KindAggregate:
		add(n.PreFilter)
		for _, g := range n.GroupBy {
			add(g.Expr)
		}
		for _, a := range n.Aggs {
			add(a.Arg)
		}
	case plan.KindJoin:
		add(n.LeftFilter)
		add(n.RightFilter)
		add(n.Residual)
		for _, e := range n.LeftKeys {
			add(e)
		}
		for _, e := range n.RightKeys {
			add(e)
		}
		for _, p := range n.JoinProjs {
			add(p.Expr)
		}
	}
	return out
}

// ---- expression helpers ----

// equalNoQual compares expressions ignoring column qualifiers, the
// same equivalence the scope rules use (core's exprEqualNoQual).
func equalNoQual(a, b gsql.Expr) bool {
	return gsql.EqualExpr(stripQual(a), stripQual(b))
}

func stripQual(e gsql.Expr) gsql.Expr {
	c := gsql.CloneExpr(e)
	gsql.WalkExpr(c, func(x gsql.Expr) bool {
		if ref, ok := x.(*gsql.ColumnRef); ok {
			ref.Qualifier = ""
		}
		return true
	})
	return c
}

// stripOffset removes a top-level "+ c" / "- c" integer offset from an
// expression, returning the base and the signed offset.
func stripOffset(e gsql.Expr) (gsql.Expr, int64) {
	bin, ok := e.(*gsql.Binary)
	if !ok || (bin.Op != gsql.OpAdd && bin.Op != gsql.OpSub) {
		return e, 0
	}
	if num, ok := bin.R.(*gsql.NumberLit); ok && !num.IsFloat {
		off := int64(num.U)
		if bin.Op == gsql.OpSub {
			off = -off
		}
		return bin.L, off
	}
	if num, ok := bin.L.(*gsql.NumberLit); ok && !num.IsFloat && bin.Op == gsql.OpAdd {
		return bin.R, int64(num.U)
	}
	return e, 0
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
