package trace

import "testing"

// Committed allocation budgets for the tracing layer's presence on the
// batched execution hot path, in allocations per operation as measured
// by testing.AllocsPerRun — the same budget-table idiom as
// internal/exec/alloc_test.go. The engines call Emit unconditionally on
// possibly-nil shards, so these budgets are what "tracing off is free"
// means at the allocation level.
const (
	// Emit on a nil shard is the tracing-off hot path: a nil check and
	// return, no allocations ever.
	allocBudgetEmitDisabled = 0
	// Emit on a full ring overwrites in place: steady-state capture
	// costs no allocations no matter how long the run is.
	allocBudgetEmitRingSteady = 0
)

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

func TestAllocsEmitDisabled(t *testing.T) {
	skipIfRace(t)
	var s *Shard
	e := Event{Kind: KindHostWindow, Window: 3, Host: 1, NetTuplesIn: 5, NetBytesIn: 160}
	got := testing.AllocsPerRun(1000, func() { s.Emit(e) })
	if got > allocBudgetEmitDisabled {
		t.Errorf("nil Shard.Emit: %.3f allocs/op, budget %d", got, allocBudgetEmitDisabled)
	}
}

func TestAllocsEmitRingSteadyState(t *testing.T) {
	skipIfRace(t)
	c := NewCollector(Config{Mode: ModeRing, RingSize: 8})
	s := c.NewShard()
	e := Event{Kind: KindRound, Round: 1, WM: 10, Tuples: 4}
	for i := 0; i < 8; i++ {
		s.Emit(e) // fill the ring so every further Emit overwrites
	}
	got := testing.AllocsPerRun(1000, func() { s.Emit(e) })
	if got > allocBudgetEmitRingSteady {
		t.Errorf("full-ring Shard.Emit: %.3f allocs/op, budget %d", got, allocBudgetEmitRingSteady)
	}
}
