package gsql

import (
	"strings"
	"testing"
)

// The three queries from paper Section 3.2 / 6.3.
const paperQuerySet = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP

query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1
`

func TestParsePaperQuerySet(t *testing.T) {
	qs, err := ParseQuerySet(paperQuerySet)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Queries) != 3 {
		t.Fatalf("got %d queries, want 3", len(qs.Queries))
	}
	flows := qs.Queries[0]
	if flows.Name != "flows" {
		t.Errorf("first query name = %q", flows.Name)
	}
	if len(flows.Stmt.Items) != 4 || len(flows.Stmt.GroupBy) != 3 {
		t.Errorf("flows shape wrong: %d items, %d group-by", len(flows.Stmt.Items), len(flows.Stmt.GroupBy))
	}
	if flows.Stmt.GroupBy[0].Alias != "tb" {
		t.Errorf("first group-by alias = %q, want tb", flows.Stmt.GroupBy[0].Alias)
	}
	div, ok := flows.Stmt.GroupBy[0].Expr.(*Binary)
	if !ok || div.Op != OpDiv {
		t.Fatalf("group-by 0 is %T, want division", flows.Stmt.GroupBy[0].Expr)
	}
	cnt, ok := flows.Stmt.Items[3].Expr.(*FuncCall)
	if !ok || !cnt.Star || !strings.EqualFold(cnt.Name, "COUNT") {
		t.Errorf("4th item should be COUNT(*), got %v", flows.Stmt.Items[3].Expr)
	}

	fp := qs.Queries[2]
	if fp.Stmt.From.Join != JoinInner {
		t.Errorf("flow_pairs join type = %v", fp.Stmt.From.Join)
	}
	if fp.Stmt.From.Left.Alias != "S1" || fp.Stmt.From.Right.Alias != "S2" {
		t.Errorf("aliases = %q,%q", fp.Stmt.From.Left.Alias, fp.Stmt.From.Right.Alias)
	}
	if fp.Stmt.Where == nil {
		t.Fatal("flow_pairs must have WHERE")
	}
	and, ok := fp.Stmt.Where.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("WHERE should be AND, got %v", fp.Stmt.Where)
	}
}

func TestParseHavingWithParam(t *testing.T) {
	qs, err := ParseQuerySet(`
SELECT tb, srcIP, destIP, srcPort, destPort,
       OR_AGGR(flags) as orflag, COUNT(*), SUM(len)
FROM TCP
GROUP BY time as tb, srcIP, destIP, srcPort, destPort
HAVING OR_AGGR(flags) = #PATTERN#
`)
	if err != nil {
		t.Fatal(err)
	}
	q := qs.Queries[0]
	if q.Name != "q1" {
		t.Errorf("anonymous query name = %q, want q1", q.Name)
	}
	if q.Stmt.Having == nil {
		t.Fatal("HAVING missing")
	}
	eq := q.Stmt.Having.(*Binary)
	if _, ok := eq.R.(*ParamRef); !ok {
		t.Errorf("HAVING rhs should be a parameter, got %T", eq.R)
	}
	if !HasAggregate(q.Stmt.Having) {
		t.Error("HAVING contains OR_AGGR; HasAggregate should be true")
	}
}

func TestParseJoinForms(t *testing.T) {
	cases := []struct {
		src  string
		join JoinType
	}{
		{"SELECT a FROM X JOIN Y WHERE X.t = Y.t", JoinInner},
		{"SELECT a FROM X INNER JOIN Y WHERE X.t = Y.t", JoinInner},
		{"SELECT a FROM X LEFT JOIN Y WHERE X.t = Y.t", JoinLeftOuter},
		{"SELECT a FROM X LEFT OUTER JOIN Y WHERE X.t = Y.t", JoinLeftOuter},
		{"SELECT a FROM X RIGHT OUTER JOIN Y WHERE X.t = Y.t", JoinRightOuter},
		{"SELECT a FROM X FULL OUTER JOIN Y WHERE X.t = Y.t", JoinFullOuter},
		{"SELECT a FROM X AS l, Y AS r WHERE l.t = r.t", JoinInner},
	}
	for _, c := range cases {
		qs, err := ParseQuerySet(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got := qs.Queries[0].Stmt.From.Join; got != c.join {
			t.Errorf("%s: join = %v, want %v", c.src, got, c.join)
		}
	}
}

func TestParseJoinWithOn(t *testing.T) {
	qs, err := ParseQuerySet("SELECT a FROM X JOIN Y ON X.t = Y.t AND X.k = Y.k")
	if err != nil {
		t.Fatal(err)
	}
	if qs.Queries[0].Stmt.From.On == nil {
		t.Fatal("ON clause not captured")
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a + b * c", "a + b * c"},
		{"(a + b) * c", "(a + b) * c"},
		{"srcIP & 0xFFF0", "srcIP & 0xFFF0"},
		{"time/60", "time / 60"},
		{"a = b and c = d or e = f", "a = b AND c = d OR e = f"},
		{"not a = b", "NOT (a = b)"},
		{"a << 2 + 1", "a << 2 + 1"}, // + binds tighter than <<
		{"~x & 3", "~x & 3"},
		{"-a * b", "-a * b"},
		{"a % 7 = 0", "a % 7 = 0"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.src, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("ParseExpr(%q).String() = %q, want %q", c.src, got, c.want)
		}
		// Render must reparse to an equal tree.
		e2, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("reparse %q: %v", e.String(), err)
			continue
		}
		if !EqualExpr(e, e2) {
			t.Errorf("round trip of %q not stable: %q vs %q", c.src, e, e2)
		}
	}
}

func TestParseWindowClause(t *testing.T) {
	qs, err := ParseQuerySet(`
SELECT pane, srcIP, COUNT(*) FROM TCP
GROUP BY time/10 AS pane, srcIP
HAVING COUNT(*) > 3
WINDOW 6`)
	if err != nil {
		t.Fatal(err)
	}
	stmt := qs.Queries[0].Stmt
	if stmt.WindowPanes != 6 {
		t.Errorf("WindowPanes = %d", stmt.WindowPanes)
	}
	// Renders and reparses.
	qs2, err := ParseQuerySet(qs.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, qs.String())
	}
	if qs2.Queries[0].Stmt.WindowPanes != 6 {
		t.Error("WINDOW lost in round trip")
	}
	for _, bad := range []string{
		"SELECT COUNT(*) FROM TCP GROUP BY time AS tb WINDOW 0",
		"SELECT COUNT(*) FROM TCP GROUP BY time AS tb WINDOW x",
		"SELECT srcIP FROM TCP WINDOW 4",
	} {
		if _, err := ParseQuerySet(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM X GROUP a",
		"SELECT a FROM X WHERE",
		"SELECT FROM X",
		"SELECT nosuchfunc(a) FROM X",
		"SELECT SUM(*) FROM X",
		"SELECT SUM(a, b) FROM X",
		"SELECT a FROM X HAVING (",
		"query : SELECT a FROM X",
		"SELECT #unterminated FROM X",
		"query dup: SELECT a FROM X query dup: SELECT a FROM X",
	}
	for _, src := range cases {
		if _, err := ParseQuerySet(src); err == nil {
			t.Errorf("ParseQuerySet(%q) should fail", src)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := Tokens("x <= 10 << 2 <> y -- comment\n# another\n'str' #P# 0x1F 3.5")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	want := []TokKind{TokIdent, TokLe, TokNumber, TokShl, TokNumber, TokNeq,
		TokIdent, TokString, TokParam, TokNumber, TokNumber, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[8].Text != "P" {
		t.Errorf("param text = %q", toks[8].Text)
	}
	if toks[9].Text != "0x1F" {
		t.Errorf("hex literal text = %q", toks[9].Text)
	}
}

func TestHashCommentVsParam(t *testing.T) {
	// '#' followed by a name and '#' is a parameter; anything else
	// starts a comment.
	e, err := ParseExpr("flags = #ATTACK#")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Binary).R.(*ParamRef); !ok {
		t.Error("rhs should be param")
	}
	if _, err := ParseExpr("flags # not a param\n= 3"); err != nil {
		t.Errorf("comment form should parse: %v", err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	e := MustParseExpr("SUM(len) + COUNT(*) * (srcIP & 0xFF)")
	c := CloneExpr(e)
	if !EqualExpr(e, c) {
		t.Error("clone not equal")
	}
	// Mutating the clone must not affect the original.
	c.(*Binary).Op = OpSub
	if EqualExpr(e, c) {
		t.Error("mutation leaked")
	}
	if !EqualExpr(MustParseExpr("SrcIP"), MustParseExpr("srcip")) {
		t.Error("identifier comparison should be case-insensitive")
	}
}

func TestAggregateRegistry(t *testing.T) {
	for _, name := range []string{"COUNT", "sum", "Min", "MAX", "AVG", "OR_AGGR", "AND_AGGR", "XOR_AGGR"} {
		if !IsAggregateName(name) {
			t.Errorf("%s should be an aggregate", name)
		}
	}
	if IsAggregateName("LEN") {
		t.Error("LEN is not an aggregate")
	}
	spec, _ := LookupAgg("count")
	if spec.SuperName != "SUM" {
		t.Errorf("COUNT super = %q, want SUM", spec.SuperName)
	}
	if spec, _ := LookupAgg("COUNT_DISTINCT"); spec.Splittable {
		t.Error("COUNT_DISTINCT must be holistic (not splittable)")
	}
	calls := AggregateCalls(MustParseExpr("SUM(a) + MAX(b) - c"))
	if len(calls) != 2 {
		t.Errorf("found %d aggregate calls, want 2", len(calls))
	}
}

func TestQuerySetString(t *testing.T) {
	qs := MustParseQuerySet(paperQuerySet)
	rendered := qs.String()
	qs2, err := ParseQuerySet(rendered)
	if err != nil {
		t.Fatalf("reparse rendered set: %v\n%s", err, rendered)
	}
	if len(qs2.Queries) != 3 || qs2.Queries[2].Name != "flow_pairs" {
		t.Error("rendered set does not round-trip")
	}
}
