package core

import (
	"reflect"
	"testing"
)

// TestSearchStatsPopulated: an optimization run must account for every
// recorded candidate and every costed set, with the bookkeeping
// identities holding exactly.
func TestSearchStatsPopulated(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	res, err := Optimize(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := &res.Search
	if s.Enumerated != int64(len(res.Candidates)) {
		t.Errorf("Enumerated=%d, want len(Candidates)=%d", s.Enumerated, len(res.Candidates))
	}
	if s.UniqueSets <= 0 || s.UniqueSets > s.Enumerated {
		t.Errorf("UniqueSets=%d out of range (Enumerated=%d)", s.UniqueSets, s.Enumerated)
	}
	if s.Deduped != s.Enumerated-s.UniqueSets {
		t.Errorf("Deduped=%d, want Enumerated-UniqueSets=%d", s.Deduped, s.Enumerated-s.UniqueSets)
	}
	// Sequential search: a single worker evaluated every unique set.
	if len(s.PerWorkerEvals) != 1 || s.PerWorkerEvals[0] != s.UniqueSets {
		t.Errorf("PerWorkerEvals=%v, want [%d]", s.PerWorkerEvals, s.UniqueSets)
	}
	// The baseline is evaluated twice (PlanCost + TotalCost of the
	// empty set); the second lookup must hit the memo cache.
	if s.CacheHits < 1 {
		t.Errorf("CacheHits=%d, want >= 1", s.CacheHits)
	}
	if s.EnumerateNanos < 0 || s.CostNanos < 0 {
		t.Errorf("negative wall-clock spans: enum=%d cost=%d", s.EnumerateNanos, s.CostNanos)
	}
}

// TestSearchStatsWorkerDeterminism: every counter except the wall-clock
// spans must be identical across repeated runs at a fixed worker count,
// and everything except PerWorkerEvals must be identical across worker
// counts. PerWorkerEvals must sum to UniqueSets and follow the strided
// assignment exactly.
func TestSearchStatsWorkerDeterminism(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	canon := func(r *Result) SearchStatsView {
		return SearchStatsView{
			Enumerated: r.Search.Enumerated,
			Pruned:     r.Search.Pruned,
			UniqueSets: r.Search.UniqueSets,
			Deduped:    r.Search.Deduped,
			CacheHits:  r.Search.CacheHits,
		}
	}
	want, err := Optimize(g, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		var prev []int64
		for rep := 0; rep < 3; rep++ {
			got, err := Optimize(g, nil, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if canon(got) != canon(want) {
				t.Fatalf("workers=%d rep=%d: stats %+v, want %+v", workers, rep, canon(got), canon(want))
			}
			var sum int64
			for _, n := range got.Search.PerWorkerEvals {
				sum += n
			}
			if sum != got.Search.UniqueSets {
				t.Errorf("workers=%d: PerWorkerEvals sums to %d, want %d", workers, sum, got.Search.UniqueSets)
			}
			if prev != nil && !reflect.DeepEqual(prev, got.Search.PerWorkerEvals) {
				t.Errorf("workers=%d rep=%d: PerWorkerEvals drifted: %v vs %v",
					workers, rep, got.Search.PerWorkerEvals, prev)
			}
			prev = got.Search.PerWorkerEvals
		}
	}
}

// SearchStatsView is the comparable subset of the search stats used by
// the determinism test (everything but wall-clock spans and the
// per-worker split).
type SearchStatsView struct {
	Enumerated, Pruned, UniqueSets, Deduped, CacheHits int64
}
