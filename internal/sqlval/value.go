// Package sqlval defines the runtime value representation shared by the
// GSQL expression evaluator, the streaming operators, and the cluster
// simulator's wire-size accounting.
//
// Values are small immutable variants: NULL, unsigned and signed 64-bit
// integers, 64-bit floats, booleans, and strings. Network-monitoring
// schemas are dominated by unsigned integers (IP addresses, ports,
// packet lengths, timestamps), so Uint is the common case and the
// representation keeps it allocation-free.
package sqlval

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindUint
	KindInt
	KindFloat
	KindBool
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindUint:
		return "uint"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	bits uint64 // Uint/Int/Float/Bool payload
	str  string // String payload
}

// Null is the NULL value.
var Null = Value{}

// Uint returns an unsigned integer value.
func Uint(u uint64) Value { return Value{kind: KindUint, bits: u} }

// Int returns a signed integer value.
func Int(i int64) Value { return Value{kind: KindInt, bits: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, bits: math.Float64bits(f)} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, bits: 1}
	}
	return Value{kind: KindBool}
}

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsUint returns the value as a uint64. Signed integers are converted;
// the second result is false if the value is not numeric.
func (v Value) AsUint() (uint64, bool) {
	switch v.kind {
	case KindUint, KindBool:
		return v.bits, true
	case KindInt:
		return uint64(int64(v.bits)), true
	case KindFloat:
		return uint64(math.Float64frombits(v.bits)), true
	default:
		return 0, false
	}
}

// AsInt returns the value as an int64; the second result is false if
// the value is not numeric.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindUint, KindBool:
		return int64(v.bits), true
	case KindInt:
		return int64(v.bits), true
	case KindFloat:
		return int64(math.Float64frombits(v.bits)), true
	default:
		return 0, false
	}
}

// AsFloat returns the value as a float64; the second result is false
// if the value is not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindUint, KindBool:
		return float64(v.bits), true
	case KindInt:
		return float64(int64(v.bits)), true
	case KindFloat:
		return math.Float64frombits(v.bits), true
	default:
		return 0, false
	}
}

// AsBool returns the value as a boolean. NULL is false. Numeric values
// are true when non-zero.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindString:
		return v.str != ""
	default:
		return v.bits != 0
	}
}

// AsString returns the string payload; the second result is false if
// the value is not a string.
func (v Value) AsString() (string, bool) {
	if v.kind == KindString {
		return v.str, true
	}
	return "", false
}

// Equal reports whether two values are equal. NULL equals nothing,
// including NULL (SQL semantics are applied by the evaluator; Equal is
// the grouping/join-key equality, under which NULL == NULL so that
// NULL group keys collapse into one group, matching GROUP BY).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Cross-kind numeric equality (uint vs int vs float).
		if v.isNumeric() && o.isNumeric() {
			return numericCompare(v, o) == 0
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.str == o.str
	default:
		return v.bits == o.bits
	}
}

func (v Value) isNumeric() bool {
	switch v.kind {
	case KindUint, KindInt, KindFloat, KindBool:
		return true
	}
	return false
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything; cross-kind numerics compare by value;
// otherwise kinds order by Kind then payload.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.isNumeric() && o.isNumeric() {
		return numericCompare(v, o)
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	// Same non-numeric kind: string.
	switch {
	case v.str < o.str:
		return -1
	case v.str > o.str:
		return 1
	default:
		return 0
	}
}

func numericCompare(a, b Value) int {
	if a.kind == KindFloat || b.kind == KindFloat {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	// Integer comparison careful about signedness.
	aNeg := a.kind == KindInt && int64(a.bits) < 0
	bNeg := b.kind == KindInt && int64(b.bits) < 0
	switch {
	case aNeg && !bNeg:
		return -1
	case !aNeg && bNeg:
		return 1
	case aNeg && bNeg:
		ai, bi := int64(a.bits), int64(b.bits)
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	default:
		switch {
		case a.bits < b.bits:
			return -1
		case a.bits > b.bits:
			return 1
		default:
			return 0
		}
	}
}

// fnv-1a constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashInto folds the value into an FNV-1a running hash. Numeric kinds
// that compare equal hash equally.
func (v Value) HashInto(h uint64) uint64 {
	switch v.kind {
	case KindNull:
		h ^= 0x9e
		h *= fnvPrime
		return h
	case KindString:
		for i := 0; i < len(v.str); i++ {
			h ^= uint64(v.str[i])
			h *= fnvPrime
		}
		return h
	case KindFloat:
		f := math.Float64frombits(v.bits)
		if f == math.Trunc(f) && f >= 0 && f < 1e18 {
			return hashU64(h, uint64(f))
		}
		return hashU64(h, v.bits)
	default:
		return hashU64(h, v.bits)
	}
}

func hashU64(h, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= fnvPrime
		u >>= 8
	}
	return h
}

// Hash returns a standalone hash of the value.
func (v Value) Hash() uint64 { return v.HashInto(fnvOffset) }

// HashTuple hashes a sequence of values, as used by the hash splitter
// and the grouping hash tables.
func HashTuple(vs []Value) uint64 {
	h := uint64(fnvOffset)
	for _, v := range vs {
		h = v.HashInto(h)
	}
	return h
}

// WireSize returns the number of bytes the value occupies in the
// simulated wire format: 1 kind byte plus the payload. Strings carry a
// 2-byte length prefix.
func (v Value) WireSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindBool:
		return 2
	case KindString:
		return 3 + len(v.str)
	default:
		return 9
	}
}

// String renders the value for display and trace output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindUint:
		return strconv.FormatUint(v.bits, 10)
	case KindInt:
		return strconv.FormatInt(int64(v.bits), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.bits), 'g', -1, 64)
	case KindBool:
		if v.bits != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindString:
		return strconv.Quote(v.str)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.kind))
	}
}

// FormatIPv4 renders a uint value as dotted-quad notation; non-uint
// values fall back to String.
func FormatIPv4(v Value) string {
	u, ok := v.AsUint()
	if !ok {
		return v.String()
	}
	return fmt.Sprintf("%d.%d.%d.%d", byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
