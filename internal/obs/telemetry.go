package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Telemetry is the live observation surface of a run: an HTTP handler
// serving the Prometheus rendering of the last published RunReport at
// /metrics (byte-identical to what -metrics-out's report renders),
// expvar counters at /debug/vars, and the net/http/pprof profiling
// endpoints under /debug/pprof/. It is the scrape-and-profile surface
// a long-lived qap-serve will later mount; qap-run exposes it behind
// -telemetry-addr.
type Telemetry struct {
	mu   sync.RWMutex
	prom []byte
}

var (
	telemetryVars     *expvar.Map
	telemetryVarsOnce sync.Once
)

// telemetryMap lazily publishes the process-wide "qap" expvar map.
// expvar.NewMap panics on duplicate registration, hence the Once.
func telemetryMap() *expvar.Map {
	telemetryVarsOnce.Do(func() { telemetryVars = expvar.NewMap("qap") })
	return telemetryVars
}

// NewTelemetry builds an empty telemetry surface; /metrics serves no
// samples until SetReport publishes a run.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// SetReport publishes a run report: /metrics serves exactly
// rep.Prometheus() until the next call, and the "qap" expvar map
// mirrors the headline gauges.
func (t *Telemetry) SetReport(rep *RunReport) {
	if rep == nil {
		return
	}
	rendered := []byte(rep.Prometheus())
	t.mu.Lock()
	t.prom = rendered
	t.mu.Unlock()

	m := telemetryMap()
	m.Add("reports_published_total", 1)
	setFloat := func(name string, v float64) {
		f := new(expvar.Float)
		f.Set(v)
		m.Set(name, f)
	}
	setInt := func(name string, v int64) {
		i := new(expvar.Int)
		i.Set(v)
		m.Set(name, i)
	}
	setFloat("duration_sec", rep.DurationSec)
	setFloat("capacity_per_sec", rep.CapacityPerSec)
	setInt("hosts", int64(len(rep.Hosts)))
	setInt("nodes", int64(len(rep.Nodes)))
	setInt("load_windows", int64(len(rep.LoadSeries)))
}

// Handler returns the telemetry mux. The pprof handlers are mounted
// explicitly rather than via http.DefaultServeMux so embedding hosts
// control exactly what they expose.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		t.mu.RLock()
		b := t.prom
		t.mu.RUnlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(b)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves Handler in a background goroutine.
// Close the returned listener to stop; Serve never blocks.
func (t *Telemetry) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: t.Handler()}
	go srv.Serve(ln) // returns when the listener closes
	return ln, nil
}
