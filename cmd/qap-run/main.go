// Command qap-run executes a GSQL query set on the simulated cluster
// over a synthetic packet trace and reports the query outputs and the
// per-host CPU/network load, under a chosen partitioning strategy.
//
// Usage:
//
//	qap-run [-queries file] [-partition set] [-hosts n] [-rate pps]
//	        [-duration sec] [-seed n] [-show n] [-plan]
//
// Examples:
//
//	qap-run -partition srcIP -hosts 4
//	qap-run -queries monitor.gsql -partition 'srcIP & 0xFFF0, destIP'
//	qap-run -partition srcIP -metrics-out report.json   # JSON run report
//	qap-run -partition srcIP -report                    # Prometheus text
//	qap-run -drift -adaptive                            # drift + repartition
//
// With -drift the generated trace gains a second phase with the
// source/destination pools swapped and the rate trebled; with
// -adaptive the run is driven by the online repartitioning controller:
// load is monitored per -load-window, and when the measured max-host
// network rate exceeds -trigger-factor times the cost model's bound
// the statistics are refreshed, the optimizer re-runs, and the stream
// is replayed on the new partitioning.
//
// To check a query set statically before running it — partitioning
// compatibility per node, window alignment, dead columns — see
// cmd/qap-lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"qap"
	"qap/internal/netgen"
)

func main() {
	queryFile := flag.String("queries", "", "GSQL query set file (default: the paper's Section 3.2 set)")
	partition := flag.String("partition", "", "partitioning set, e.g. 'srcIP, destIP' (empty = round robin)")
	hosts := flag.Int("hosts", 4, "cluster size")
	pph := flag.Int("pph", 2, "stream partitions per host")
	rate := flag.Int("rate", 2000, "trace packet rate (packets/sec)")
	duration := flag.Int("duration", 120, "trace duration (sec)")
	seed := flag.Int64("seed", 1, "trace random seed")
	show := flag.Int("show", 5, "result rows to print per query")
	showPlan := flag.Bool("plan", false, "print the distributed physical plan")
	dotPlan := flag.Bool("dot", false, "print the physical plan as Graphviz DOT and exit")
	naiveScope := flag.Bool("naive", false, "use per-partition (naive) partial aggregation")
	noPartial := flag.Bool("nopartial", false, "disable partial aggregation (required for the Section 4.2.1 load bound to be tight)")
	traceFile := flag.String("trace", "", "CSV trace file to replay instead of generating one")
	dumpFile := flag.String("dump", "", "write the generated trace to this CSV file")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulator worker goroutines (1 = sequential engine; results are identical)")
	batch := flag.Int("batch", 0, "operator batch size (0 = engine default, 1 = tuple-at-a-time; results are identical)")
	metricsOut := flag.String("metrics-out", "", "write the machine-readable JSON run report to this file")
	report := flag.Bool("report", false, "print the run report in Prometheus text format")
	drift := flag.Bool("drift", false, "append a drifted phase to the generated trace: pools swapped, 3x rate, same duration")
	adaptive := flag.Bool("adaptive", false, "monitor load and repartition online when the bound is violated")
	triggerFactor := flag.Float64("trigger-factor", 1.5, "repartition when measured load exceeds this factor times the bound")
	loadWindow := flag.Int("load-window", 0, "load-monitoring window in trace seconds (0 = off; -adaptive defaults to 10)")
	flag.Parse()

	queries := qap.ComplexQuerySet
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		queries = string(b)
	}
	sys, err := qap.Load(netgen.SchemaDDL, queries)
	if err != nil {
		fatal(err)
	}

	var ps qap.Set
	if *partition != "" {
		ps, err = qap.ParseSet(*partition)
		if err != nil {
			fatal(err)
		}
	}
	scope := qap.ScopeHost
	if *naiveScope {
		scope = qap.ScopePartition
	}
	params := map[string]qap.Value{"PATTERN": qap.Uint(netgen.AttackPattern)}

	// Assemble the trace. preDriftSec is how much of its prefix is
	// representative of the pre-drift regime (used by -adaptive to
	// measure deploy-time statistics).
	var packets []netgen.Packet
	preDriftSec := uint64(*duration)
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		packets, err = netgen.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if n := len(packets); n > 0 {
			// Without generator metadata, treat the first half of the
			// replayed trace as the pre-drift regime.
			preDriftSec = (packets[n-1].Time + 1) / 2
		}
		fmt.Printf("trace: %d packets from %s\n", len(packets), *traceFile)
	} else {
		cfg := netgen.DefaultConfig()
		cfg.Seed, cfg.DurationSec, cfg.PacketsPerSec = *seed, *duration, *rate
		if *drift {
			cfg.Phases = []netgen.Phase{
				{DurationSec: *duration},
				{DurationSec: *duration, PacketsPerSec: 3 * *rate,
					SrcHosts: cfg.DstHosts, DstHosts: cfg.SrcHosts},
			}
		}
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		trace := netgen.Generate(cfg)
		packets = trace.Packets
		fmt.Printf("trace: %d packets over %ds (%d flows, %d suspicious)\n",
			len(packets), cfg.TotalDurationSec(), trace.TotalFlows, trace.AttackFlows)
	}
	if *dumpFile != "" {
		f, err := os.Create(*dumpFile)
		if err != nil {
			fatal(err)
		}
		err = netgen.WriteCSV(f, packets)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", *dumpFile)
	}

	baseCfg := qap.DeployConfig{
		Hosts:             *hosts,
		PartitionsPerHost: *pph,
		Partitioning:      ps,
		PartialScope:      scope,
		DisablePartialAgg: *noPartial,
		Costs:             qap.CostConfig{CapacityPerSec: float64(*rate) * 3},
		Params:            params,
		Workers:           *workers,
		BatchSize:         *batch,
		CollectStats:      *metricsOut != "" || *report,
		LoadWindowSec:     *loadWindow,
	}

	var res *qap.RunResult
	if *adaptive {
		res = runAdaptive(sys, baseCfg, packets, preDriftSec, *triggerFactor, *loadWindow, *show)
	} else {
		dep, err := sys.Deploy(baseCfg)
		if err != nil {
			fatal(err)
		}
		if *dotPlan {
			fmt.Print(dep.PlanDOT())
			return
		}
		if *showPlan {
			fmt.Println("distributed plan:")
			fmt.Print(dep.PlanString())
			fmt.Println()
		}
		if ps.IsEmpty() {
			fmt.Println("partitioning: round robin (query-agnostic)")
		} else {
			fmt.Printf("partitioning: %s\n", ps)
		}
		res, err = dep.Run("TCP", packets)
		if err != nil {
			fatal(err)
		}
	}

	printOutputs(res, *show)
	fmt.Println("\nload:")
	fmt.Print(res.Metrics.String())

	if rep := res.Report(); rep != nil {
		if *metricsOut != "" {
			b, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*metricsOut, b, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote run report to %s\n", *metricsOut)
		}
		if *report {
			fmt.Println("\nreport:")
			fmt.Print(rep.Prometheus())
		}
	}
}

// runAdaptive drives the online repartitioning controller: measure
// statistics on the pre-drift prefix, optimize, then run the full
// trace under monitoring with the given trigger. Returns the final
// (authoritative) run result.
func runAdaptive(sys *qap.System, deploy qap.DeployConfig, packets []netgen.Packet, preDriftSec uint64, factor float64, loadWindow, show int) *qap.RunResult {
	cut := sort.Search(len(packets), func(i int) bool { return packets[i].Time >= preDriftSec })
	stats, err := sys.MeasureStats(map[string][]netgen.Packet{"TCP": packets[:cut]})
	if err != nil {
		fatal(fmt.Errorf("measuring pre-drift statistics: %w", err))
	}
	analysis, err := sys.Analyze(stats)
	if err != nil {
		fatal(err)
	}
	if deploy.Partitioning.IsEmpty() {
		deploy.Partitioning = analysis.Best
	}
	fmt.Printf("partitioning: %s (adaptive, trigger %.2fx bound)\n", deploy.Partitioning, factor)

	ares, err := sys.RunAdaptive(qap.AdaptiveConfig{
		Deploy:        deploy,
		Stats:         stats,
		Analysis:      analysis,
		TriggerFactor: factor,
		LoadWindowSec: loadWindow,
	}, map[string][]netgen.Packet{"TCP": packets})
	if err != nil {
		fatal(err)
	}

	if ares.TriggerWindow < 0 {
		fmt.Printf("trigger: never fired (bound %.0f B/s, factor %.2f)\n", ares.Bound, ares.TriggerFactor)
		return ares.Final
	}
	fmt.Printf("trigger: window %d (t=%ds) measured %.0f B/s > %.2f x bound %.0f B/s\n",
		ares.TriggerWindow, ares.SwitchTimeSec, ares.TriggerRate, ares.TriggerFactor, ares.Bound)
	if !ares.Repartitioned {
		fmt.Printf("re-optimization confirmed %s; no switch\n", ares.InitialSet)
		return ares.Final
	}
	fmt.Printf("repartitioned: %s -> %s at t=%ds\n", ares.InitialSet, ares.FinalSet, ares.SwitchTimeSec)
	fmt.Printf("post-switch peak %.0f B/s vs refreshed bound %.0f B/s (within bound: %v)\n",
		ares.PostSwitchPeak, ares.NewBound, ares.WithinBoundAfterSwitch())
	return ares.Final
}

func printOutputs(res *qap.RunResult, show int) {
	for _, name := range res.OutputNames() {
		rows := res.Outputs[name]
		fmt.Printf("\n%s: %d rows\n", name, len(rows))
		for i, r := range rows {
			if i >= show {
				fmt.Printf("  ... %d more\n", len(rows)-show)
				break
			}
			fmt.Printf("  %s\n", r)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-run:", err)
	os.Exit(1)
}
