// Package netgen generates synthetic, flow-structured TCP packet
// traces that stand in for the paper's one-hour AT&T data-center
// capture (Section 6): Zipf-skewed host popularity, geometric flow
// lengths, realistic TCP flag sequences, and a configurable fraction
// of "suspicious" flows whose OR-ed flags match an attack pattern (the
// Section 6.1 workload filters those with HAVING OR_AGGR(flags) =
// pattern). Generation is fully deterministic for a given Config.
package netgen

import (
	"math"
	"math/rand" //qap:allow walltime -- generator is explicitly seeded per trace
	"sort"

	"qap/internal/exec"
	"qap/internal/sqlval"
)

// TCP flag bits.
const (
	FlagFIN uint64 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// AttackPattern is the OR of flags that marks a suspicious flow (a
// SYN/RST/URG mix that never occurs in a well-formed TCP session, for
// which the OR is FIN|SYN|PSH|ACK).
const AttackPattern = FlagSYN | FlagRST | FlagURG

// NormalPattern is the OR of flags of a complete well-formed flow.
const NormalPattern = FlagFIN | FlagSYN | FlagPSH | FlagACK

// SchemaDDL is the stream definition traces conform to; seq is the
// packet's position within its flow (TCP sequence stand-in).
const SchemaDDL = `TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)`

// Packet is one captured packet.
type Packet struct {
	Time     uint64 // seconds since trace start
	SrcIP    uint64
	DestIP   uint64
	SrcPort  uint64
	DestPort uint64
	Len      uint64
	Flags    uint64
	Seq      uint64 // position within the flow
}

// Tuple renders the packet in SchemaDDL column order.
func (p Packet) Tuple() exec.Tuple {
	return exec.Tuple{
		sqlval.Uint(p.Time), sqlval.Uint(p.SrcIP), sqlval.Uint(p.DestIP),
		sqlval.Uint(p.SrcPort), sqlval.Uint(p.DestPort),
		sqlval.Uint(p.Len), sqlval.Uint(p.Flags), sqlval.Uint(p.Seq),
	}
}

// TupleCols is the number of values Tuple and AppendTuple produce.
const TupleCols = 8

// AppendTuple materializes the packet's tuple into buf's spare
// capacity and returns the grown buffer plus the tuple, which is
// capacity-clamped so later appends cannot bleed into it. Batch
// drivers carve many tuples out of one shared backing slab this way
// instead of allocating one array per packet (the slab must not be
// recycled: operators may retain the tuples).
func (p Packet) AppendTuple(buf []sqlval.Value) ([]sqlval.Value, exec.Tuple) {
	n := len(buf)
	buf = append(buf,
		sqlval.Uint(p.Time), sqlval.Uint(p.SrcIP), sqlval.Uint(p.DestIP),
		sqlval.Uint(p.SrcPort), sqlval.Uint(p.DestPort),
		sqlval.Uint(p.Len), sqlval.Uint(p.Flags), sqlval.Uint(p.Seq))
	return buf, exec.Tuple(buf[n:len(buf):len(buf)])
}

// Config controls trace generation.
type Config struct {
	Seed        int64
	DurationSec int
	// PacketsPerSec is the average aggregate packet rate.
	PacketsPerSec int
	// SrcHosts and DstHosts are the distinct address pool sizes.
	SrcHosts, DstHosts int
	// ZipfS is the host-popularity skew (> 1; larger = more skew).
	ZipfS float64
	// MeanFlowPackets is the average packets per flow (geometric).
	MeanFlowPackets float64
	// AttackFraction of flows are suspicious (default 5%, matching
	// the paper's trace).
	AttackFraction float64
	// Ports is the ephemeral port range size.
	Ports int
}

// DefaultConfig mirrors the paper's trace shape at a laptop-friendly
// rate; the benches scale PacketsPerSec and DurationSec.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		DurationSec:     120,
		PacketsPerSec:   2000,
		SrcHosts:        2000,
		DstHosts:        1000,
		ZipfS:           1.2,
		MeanFlowPackets: 8,
		AttackFraction:  0.05,
		Ports:           4096,
	}
}

// Trace is a generated, time-ordered packet sequence.
type Trace struct {
	Packets []Packet
	Config  Config
	// AttackFlows and TotalFlows report the generated flow mix.
	AttackFlows, TotalFlows int
}

// Generate builds a deterministic trace for the configuration.
func Generate(cfg Config) *Trace {
	if cfg.DurationSec <= 0 {
		cfg.DurationSec = 1
	}
	if cfg.PacketsPerSec <= 0 {
		cfg.PacketsPerSec = 1000
	}
	// A single-address pool is legal (the Zipf degenerates to a point
	// mass); only zero/negative pools fall back to the default.
	if cfg.SrcHosts < 1 {
		cfg.SrcHosts = 2
	}
	if cfg.DstHosts < 1 {
		cfg.DstHosts = 2
	}
	// The negated comparisons also catch NaN: rand.NewZipf returns nil
	// for s <= 1 (and misbehaves for non-finite s), which would panic
	// at the first draw.
	if !(cfg.ZipfS > 1) || math.IsInf(cfg.ZipfS, 0) {
		cfg.ZipfS = 1.2
	}
	if !(cfg.MeanFlowPackets >= 1) {
		cfg.MeanFlowPackets = 1
	}
	if !(cfg.AttackFraction >= 0) {
		cfg.AttackFraction = 0
	} else if cfg.AttackFraction > 1 {
		cfg.AttackFraction = 1
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 4096
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	srcZipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.SrcHosts-1))
	dstZipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.DstHosts-1))

	budget := cfg.DurationSec * cfg.PacketsPerSec
	tr := &Trace{Config: cfg}
	packets := make([]Packet, 0, budget+16)
	for len(packets) < budget {
		flow := makeFlow(r, srcZipf, dstZipf, cfg)
		tr.TotalFlows++
		if flow.attack {
			tr.AttackFlows++
		}
		packets = append(packets, flow.packets...)
	}
	packets = packets[:budget]
	sort.SliceStable(packets, func(i, j int) bool { return packets[i].Time < packets[j].Time })
	tr.Packets = packets
	return tr
}

type flow struct {
	attack  bool
	packets []Packet
}

func makeFlow(r *rand.Rand, srcZipf, dstZipf *rand.Zipf, cfg Config) flow {
	var f flow
	f.attack = r.Float64() < cfg.AttackFraction
	src := 0x0A000000 + srcZipf.Uint64()              // 10.0.0.0/8
	dst := 0xC0A80000 + dstZipf.Uint64()              // 192.168.0.0/16-ish
	sport := uint64(1024 + r.Intn(cfg.Ports))         // ephemeral
	dport := []uint64{80, 443, 53, 22, 25}[r.Intn(5)] // services
	n := 1 + geometric(r, cfg.MeanFlowPackets)
	start := uint64(r.Intn(cfg.DurationSec))
	// Spread the flow's packets over up to ~30 seconds.
	span := n / 4
	if span > 30 {
		span = 30
	}
	for i := 0; i < n; i++ {
		t := start
		if span > 0 {
			t += uint64(r.Intn(span + 1))
		}
		if int(t) >= cfg.DurationSec {
			t = uint64(cfg.DurationSec - 1)
		}
		f.packets = append(f.packets, Packet{
			Time:     t,
			SrcIP:    src,
			DestIP:   dst,
			SrcPort:  sport,
			DestPort: dport,
			Len:      uint64(40 + r.Intn(1460)),
			Flags:    flowFlags(r, f.attack, i, n),
		})
	}
	sort.SliceStable(f.packets, func(a, b int) bool { return f.packets[a].Time < f.packets[b].Time })
	// Sequence numbers follow time order within the flow.
	for i := range f.packets {
		f.packets[i].Seq = uint64(i)
	}
	return f
}

// flowFlags produces per-packet flags such that the OR over a
// complete flow is exactly NormalPattern for well-formed flows and
// exactly AttackPattern for suspicious ones.
func flowFlags(r *rand.Rand, attack bool, i, n int) uint64 {
	if attack {
		switch {
		case i == 0:
			return FlagSYN | FlagURG
		case i == n-1:
			return FlagRST
		default:
			return []uint64{FlagSYN, FlagRST, FlagURG}[r.Intn(3)]
		}
	}
	switch {
	case n == 1:
		return FlagSYN | FlagACK | FlagPSH | FlagFIN
	case i == 0:
		return FlagSYN
	case i == n-1:
		return FlagFIN | FlagACK
	default:
		if r.Intn(2) == 0 {
			return FlagACK | FlagPSH
		}
		return FlagACK
	}
}

// geometric samples a geometric-ish count with the given mean. Means
// at or below one (including zero, negative, and NaN — the negated
// comparison catches all three) yield zero extra packets, so callers
// always get single-packet flows rather than a division by zero or an
// endless rejection loop.
func geometric(r *rand.Rand, mean float64) int {
	if !(mean > 1) {
		return 0
	}
	p := 1 / mean
	n := 0
	for r.Float64() > p && n < 10000 {
		n++
	}
	return n
}
