// Command qap-node serves one host of a live cluster deployment as its
// own OS process: it compiles the same distributed plan the splitter
// (qap-run -engine live) uses, binds the chosen host's operators to a
// TCP listener, executes the serialized tuple batches the splitter
// ships, and streams the island-crossing results back. When the run
// completes, the node ships its result shards (metrics, operator
// stats, monitoring windows, trace events) and exits.
//
// Usage:
//
//	qap-node -host 0 -listen :9430 [deployment flags]
//
// The deployment flags (-queries, -partition, -hosts, -pph, -rate,
// -batch, ...) must match the splitter's invocation exactly: both
// sides hash their deployment configuration into a fingerprint and the
// handshake rejects a mismatch, so a misconfigured node fails fast
// instead of silently diverging.
//
// Example — a 2-host cluster on three terminals:
//
//	qap-node -host 0 -listen :9430 -partition srcIP -hosts 2
//	qap-node -host 1 -listen :9431 -partition srcIP -hosts 2
//	qap-run -engine live -nodes 'localhost:9430,localhost:9431' -partition srcIP -hosts 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qap"
	"qap/internal/netgen"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	host        int
	listen      string
	acceptGrace time.Duration
	netTimeout  time.Duration

	// Deployment flags — the splitter's vocabulary, same defaults.
	queryFile  string
	partition  string
	hosts      int
	pph        int
	rate       int
	naiveScope bool
	noPartial  bool
	batch      int
	columnar   bool
	collect    bool
	loadWindow int
	traceOn    bool
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.IntVar(&f.host, "host", 0, "which leaf host of the deployment this node serves")
	fs.StringVar(&f.listen, "listen", "127.0.0.1:0", "TCP listen address for the splitter to dial")
	fs.DurationVar(&f.acceptGrace, "accept-grace", 2*time.Minute, "how long to wait for the splitter's first connection")
	fs.DurationVar(&f.netTimeout, "net-timeout", 0, "live transport timeout: read, write, and credit waits (0 = 30s default)")
	fs.StringVar(&f.queryFile, "queries", "", "GSQL query set file (default: the paper's Section 3.2 set)")
	fs.StringVar(&f.partition, "partition", "", "partitioning set, e.g. 'srcIP, destIP' (empty = round robin)")
	fs.IntVar(&f.hosts, "hosts", 4, "cluster size")
	fs.IntVar(&f.pph, "pph", 2, "stream partitions per host")
	fs.IntVar(&f.rate, "rate", 2000, "trace packet rate (packets/sec); sets the capacity model like qap-run")
	fs.BoolVar(&f.naiveScope, "naive", false, "use per-partition (naive) partial aggregation")
	fs.BoolVar(&f.noPartial, "nopartial", false, "disable partial aggregation")
	fs.IntVar(&f.batch, "batch", 0, "operator batch size (0 = engine default, 1 = tuple-at-a-time)")
	fs.BoolVar(&f.columnar, "columnar", false, "use the columnar batch execution path (match the splitter; the deployment fingerprint enforces it)")
	fs.BoolVar(&f.collect, "collect", false, "collect per-operator stats (match the splitter: -metrics-out/-report/-prom-out/-telemetry-addr imply it)")
	fs.IntVar(&f.loadWindow, "load-window", 0, "load-monitoring window in trace seconds (match the splitter)")
	fs.BoolVar(&f.traceOn, "trace", false, "enable causal tracing (match the splitter's -trace-out/-trace-chrome)")
	return f
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()

	queries := qap.ComplexQuerySet
	if f.queryFile != "" {
		b, err := os.ReadFile(f.queryFile)
		if err != nil {
			fatal(err)
		}
		queries = string(b)
	}
	sys, err := qap.Load(netgen.SchemaDDL, queries)
	if err != nil {
		fatal(err)
	}
	var ps qap.Set
	if f.partition != "" {
		ps, err = qap.ParseSet(f.partition)
		if err != nil {
			fatal(err)
		}
	}
	scope := qap.ScopeHost
	if f.naiveScope {
		scope = qap.ScopePartition
	}
	cfg := qap.DeployConfig{
		Hosts:             f.hosts,
		PartitionsPerHost: f.pph,
		Partitioning:      ps,
		PartialScope:      scope,
		DisablePartialAgg: f.noPartial,
		Costs:             qap.CostConfig{CapacityPerSec: float64(f.rate) * 3},
		Params:            map[string]qap.Value{"PATTERN": qap.Uint(netgen.AttackPattern)},
		BatchSize:         f.batch,
		Columnar:          f.columnar,
		CollectStats:      f.collect,
		LoadWindowSec:     f.loadWindow,
		Engine:            qap.EngineLive,
		Live: qap.LiveOptions{
			Timeout:     f.netTimeout,
			AcceptGrace: f.acceptGrace,
		},
	}
	if f.traceOn {
		cfg.Trace = &qap.RunTraceConfig{}
	}
	dep, err := sys.Deploy(cfg)
	if err != nil {
		fatal(err)
	}
	err = dep.ServeLiveHost(f.host, f.listen, func(addr string) {
		fmt.Printf("qap-node: host %d listening on %s\n", f.host, addr)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("qap-node: host %d done\n", f.host)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-node:", err)
	os.Exit(1)
}
