// Jitter monitoring (paper Section 6.2): a query set mixing an
// independent subnet aggregation with a TCP-jitter self-join whose
// partitioning requirements conflict. The analyzer reconciles them —
// (srcIP & 0xFFF0, destIP) is a coarsening of the join's keys, so one
// partitioning satisfies both — and the example shows what happens
// when the splitter hardware forces the suboptimal choice instead.
package main

import (
	"fmt"
	"log"

	"qap"
)

func main() {
	sys, err := qap.Load(qap.TCPSchemaDDL, qap.QuerySetSection62)
	if err != nil {
		log.Fatal(err)
	}

	// Per-query requirements, before reconciliation.
	fmt.Println("per-query partitioning requirements:")
	reqs := sys.Requirements()
	for _, name := range []string{"subnet_agg", "jitter_pairs", "jitter"} {
		fmt.Printf("  %-14s %s\n", name, reqs[name].Set)
	}

	analysis, err := sys.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconciled optimum: %s (plan cost %.0f B/s vs centralized %.0f B/s)\n\n",
		analysis.Best, analysis.BestCost, analysis.CentralCost)

	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 180
	trace := qap.GenerateTrace(cfg)

	run := func(name string, ps qap.Set) {
		dep, err := sys.Deploy(qap.DeployConfig{
			Hosts:        4,
			Partitioning: ps,
			Costs:        qap.CostConfig{CapacityPerSec: float64(cfg.PacketsPerSec) * 3},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Run("TCP", trace.Packets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s aggregator cpu %5.1f%%  net %7.0f tup/s  (jitter rows: %d, subnet rows: %d)\n",
			name, res.Metrics.CPULoad(0), res.Metrics.NetLoad(0),
			len(res.Outputs["jitter"]), len(res.Outputs["subnet_agg"]))
	}
	run("round robin:", nil)
	run("suboptimal (join's set):", qap.MustParseSet("srcIP, destIP, srcPort, destPort"))
	run("optimal (reconciled):", analysis.Best)

	// A few per-flow jitter measurements from the optimal run.
	dep, err := sys.Deploy(qap.DeployConfig{Hosts: 4, Partitioning: analysis.Best})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Run("TCP", trace.Packets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample jitter rows (epoch, src, dst, sport, dport, avg_delay, max_delay, pairs):")
	for i, r := range res.Outputs["jitter"] {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", r)
	}
}
