// Command qap-analyze runs the query-aware partitioning analysis on a
// GSQL query set: it prints every query's inferred compatible
// partitioning set, the reconciled candidates with their costs, and
// the recommended optimal partitioning (paper Sections 3-4).
//
// Usage:
//
//	qap-analyze [-schema file] [-queries file] [-explain set] [-lint]
//
// Without -queries it analyzes the paper's Section 3.2 example set.
// With -lint it also prints the static semantic analyzer's QAP0xx
// diagnostics (see cmd/qap-lint for the standalone tool).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"qap"
	"qap/internal/netgen"
	"qap/internal/obs"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	schemaFile string
	queryFile  string
	explain    string
	dot        bool
	perStream  bool
	workers    int
	metricsOut string
	report     bool
	lint       bool
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.StringVar(&f.schemaFile, "schema", "", "stream DDL file (default: the built-in TCP schema)")
	fs.StringVar(&f.queryFile, "queries", "", "GSQL query set file (default: the paper's Section 3.2 set)")
	fs.StringVar(&f.explain, "explain", "", "also explain plan costs under this partitioning set, e.g. 'srcIP, destIP'")
	fs.BoolVar(&f.dot, "dot", false, "print the logical query DAG as Graphviz DOT and exit")
	fs.BoolVar(&f.perStream, "per-stream", false, "also run the per-stream analysis (one set per input stream)")
	fs.IntVar(&f.workers, "workers", runtime.GOMAXPROCS(0), "candidate-costing worker goroutines (1 = sequential; results are identical for any value)")
	fs.StringVar(&f.metricsOut, "metrics-out", "", "write the machine-readable JSON analysis report to this file")
	fs.BoolVar(&f.report, "report", false, "print the analysis report in Prometheus text format")
	fs.BoolVar(&f.lint, "lint", false, "also run the static semantic analyzer and print its QAP0xx diagnostics")
	return f
}

func main() {
	fl := defineFlags(flag.CommandLine)
	flag.Parse()
	schemaFile, queryFile := &fl.schemaFile, &fl.queryFile
	explain, dot, perStream := &fl.explain, &fl.dot, &fl.perStream
	workers, metricsOut, report, lintFlag := &fl.workers, &fl.metricsOut, &fl.report, &fl.lint

	ddl := netgen.SchemaDDL
	if *schemaFile != "" {
		b, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		ddl = string(b)
	}
	queries := qap.ComplexQuerySet
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		queries = string(b)
	}

	sys, err := qap.Load(ddl, queries)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(sys.GraphDOT())
		return
	}
	fmt.Println("schema:")
	fmt.Println("  " + sys.Catalog.String())
	fmt.Printf("\nquery set (%d queries):\n", len(sys.Queries.Queries))
	for _, q := range sys.Queries.Queries {
		fmt.Printf("  %s\n", q.Name)
	}

	opts := qap.DefaultSearchOptions()
	opts.Workers = *workers
	started := time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
	res, err := sys.AnalyzeWith(nil, opts)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(started) //qap:allow walltime -- wall time quarantined in obs.Timing
	fmt.Println("\nanalysis:")
	fmt.Print(res.Summary())

	if *lintFlag {
		source := *queryFile
		if source == "" {
			source = "<builtin>"
		}
		fmt.Println("\nlint:")
		fmt.Print(sys.Lint(res, source).Human())
	}

	if *metricsOut != "" || *report {
		recommended := ""
		if !res.Best.IsEmpty() {
			recommended = res.Best.String()
		}
		rep := &obs.RunReport{
			SchemaVersion: obs.SchemaVersion,
			Search: &obs.SearchReport{
				Recommended: recommended,
				BestCost:    res.BestCost,
				CentralCost: res.CentralCost,
				Candidates:  len(res.Candidates),
				SearchStats: res.Search,
			},
			Timing: &obs.Timing{
				Workers:              *workers,
				Engine:               "search",
				WallNanos:            int64(wall),
				SearchEnumerateNanos: res.Search.EnumerateNanos,
				SearchCostNanos:      res.Search.CostNanos,
			},
		}
		if *metricsOut != "" {
			if err := obs.WriteJSON(*metricsOut, rep); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote analysis report to %s\n", *metricsOut)
		}
		if *report {
			fmt.Println("\nreport:")
			fmt.Print(rep.Prometheus())
		}
	}

	if *perStream {
		ps, err := sys.AnalyzePerStream(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nper-stream analysis: %s\n", ps.Sets)
		if len(ps.CrossJoins) > 0 {
			fmt.Printf("  cross-stream joins aligned: %v\n", ps.CrossJoins)
		}
	}

	if *explain != "" {
		ps, err := qap.ParseSet(*explain)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ncost under %s: %.0f B/s (centralized %.0f B/s)\n",
			ps, sys.PlanCost(ps, nil), sys.PlanCost(nil, nil))
		// Sorted, not map order: tool output must be stable run to run.
		reqs := sys.Requirements()
		names := make([]string, 0, len(reqs))
		for name := range reqs { //qap:allow maprange -- keys collected then sorted below
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ok, _ := sys.Compatible(ps, name)
			fmt.Printf("  %-24s compatible=%v\n", name, ok)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-analyze:", err)
	os.Exit(1)
}
