package exec

import (
	"fmt"
	"math/rand" //qap:allow walltime -- test generator is explicitly seeded
	"testing"

	"qap/internal/gsql"
)

// scalarSink is a Consumer that is deliberately NOT a BatchConsumer,
// so PushAll must fall back to the per-tuple loop.
type scalarSink struct {
	rows []Tuple
}

func (s *scalarSink) Push(t Tuple)   { s.rows = append(s.rows, t) }
func (s *scalarSink) Advance(uint64) {}
func (s *scalarSink) Flush()         {}

func TestPushAllScalarFallback(t *testing.T) {
	s := &scalarSink{}
	b := Batch{Tuple{u(1)}, Tuple{u(2)}, Tuple{u(3)}}
	PushAll(s, b)
	if len(s.rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(s.rows))
	}
	for i, r := range s.rows {
		if !r[0].Equal(u(uint64(i + 1))) {
			t.Errorf("row %d = %v, want (%d)", i, r, i+1)
		}
	}
	// Empty batches are a no-op on either path.
	PushAll(s, nil)
	PushAll(&Collector{}, Batch{})
	if len(s.rows) != 3 {
		t.Errorf("empty batch added rows")
	}
}

func TestPushAllBatchFastPath(t *testing.T) {
	c := &Collector{}
	b := Batch{Tuple{u(7)}, Tuple{u(8)}}
	PushAll(c, b)
	if len(c.Rows) != 2 || !c.Rows[1][0].Equal(u(8)) {
		t.Fatalf("rows = %v", c.Rows)
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if len(b) != 0 {
		t.Fatalf("fresh batch has len %d", len(b))
	}
	b = append(b, Tuple{u(1)}, Tuple{u(2)})
	PutBatch(b)
	got := GetBatch()
	if len(got) != 0 {
		t.Errorf("recycled batch not reset: len %d", len(got))
	}
	PutBatch(nil)     // zero-cap batches are dropped, not pooled
	PutBatch(Batch{}) // likewise
	PutBatch(got)
}

// chunked delivers tuples to c in batches of size bs (the tail batch
// may be ragged), mimicking how the cluster driver chunks a round.
func chunked(c Consumer, tuples []Tuple, bs int) {
	for off := 0; off < len(tuples); off += bs {
		end := off + bs
		if end > len(tuples) {
			end = len(tuples)
		}
		PushAll(c, Batch(tuples[off:end]))
	}
}

// sameRows asserts two emission sequences are identical — order,
// arity, and values.
func sameRows(t *testing.T, name string, scalar, batched []Tuple) {
	t.Helper()
	if len(scalar) != len(batched) {
		t.Fatalf("%s: scalar emitted %d rows, batched %d", name, len(scalar), len(batched))
	}
	for i := range scalar {
		if fmt.Sprint(scalar[i]) != fmt.Sprint(batched[i]) {
			t.Fatalf("%s: row %d differs:\n  scalar:  %v\n  batched: %v",
				name, i, scalar[i], batched[i])
		}
	}
}

// genPackets produces a deterministic pseudo-random (time, srcIP,
// destIP, len) stream spanning several epochs, time-sorted.
func genPackets(n int) []Tuple {
	r := rand.New(rand.NewSource(42))
	tuples := make([]Tuple, n)
	tm := uint64(0)
	for i := range tuples {
		tm += uint64(r.Intn(3))
		tuples[i] = Tuple{u(tm), u(uint64(r.Intn(9))), u(uint64(r.Intn(5))), u(uint64(20 + r.Intn(200)))}
	}
	return tuples
}

func TestFilterProjectBatchMatchesScalar(t *testing.T) {
	r := res("time", "srcIP", "destIP", "len")
	build := func(out Consumer) *FilterProject {
		return &FilterProject{
			Filter: MustCompile(gsql.MustParseExpr("len > 100"), r, nil),
			Projs: []EvalFunc{
				MustCompile(gsql.MustParseExpr("time / 60"), r, nil),
				MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
			},
			Out: out,
		}
	}
	tuples := genPackets(500)
	for _, bs := range []int{1, 7, 64, 1024} {
		scalarOut, batchedOut := &Collector{}, &Collector{}
		scalar, batched := build(scalarOut), build(batchedOut)
		for _, tp := range tuples {
			scalar.Push(tp)
		}
		chunked(batched, tuples, bs)
		sameRows(t, fmt.Sprintf("FilterProject bs=%d", bs), scalarOut.Rows, batchedOut.Rows)
	}
	// Pass-through (no projection) and all-filtered batches.
	passScalar, passBatched := &Collector{}, &Collector{}
	sp := &FilterProject{Out: passScalar}
	bp := &FilterProject{Out: passBatched}
	for _, tp := range tuples {
		sp.Push(tp)
	}
	chunked(bp, tuples, 16)
	sameRows(t, "FilterProject passthrough", passScalar.Rows, passBatched.Rows)

	none := &Collector{}
	nf := &FilterProject{Filter: MustCompile(gsql.MustParseExpr("len < 0"), r, nil), Out: none}
	chunked(nf, tuples, 16)
	if len(none.Rows) != 0 {
		t.Errorf("all-filtered batch emitted %d rows", len(none.Rows))
	}
}

// runAgg drives one aggregate over the tuple stream with watermarks
// every epoch, either scalar or chunked, and returns its emissions.
func runAgg(tuples []Tuple, bs int) []Tuple {
	sink := &Collector{}
	agg := buildFlowsAgg(sink)
	lastWM := uint64(0)
	flushPending := func(upTo uint64) {
		for wm := lastWM + 60; wm <= upTo; wm += 60 {
			agg.Advance(wm)
			lastWM = wm
		}
	}
	if bs <= 1 {
		for _, tp := range tuples {
			tm, _ := tp[0].AsUint()
			flushPending(tm)
			agg.Push(tp)
		}
	} else {
		// Batch tuples between watermark boundaries, as the cluster
		// driver batches rounds between advances.
		pending := Batch{}
		for _, tp := range tuples {
			tm, _ := tp[0].AsUint()
			if tm >= lastWM+60 {
				chunked(agg, pending, bs)
				pending = pending[:0]
				flushPending(tm)
			}
			pending = append(pending, tp)
		}
		chunked(agg, pending, bs)
	}
	agg.Flush()
	return sink.Rows
}

func TestAggregateBatchMatchesScalar(t *testing.T) {
	tuples := genPackets(2000)
	want := runAgg(tuples, 1)
	if len(want) == 0 {
		t.Fatal("scalar run emitted nothing; bad workload")
	}
	for _, bs := range []int{2, 7, 64, 1024} {
		sameRows(t, fmt.Sprintf("Aggregate bs=%d", bs), want, runAgg(tuples, bs))
	}
}

// runJoin drives the flow_pairs self-join over per-epoch (tb, srcIP,
// cnt) rows with watermarks between epochs, and returns its emissions.
func runJoin(jt gsql.JoinType, rows []Tuple, bs int) []Tuple {
	sink := &Collector{}
	j := buildPairsJoin(jt, sink)
	lastTB := uint64(0)
	for _, tp := range rows {
		tb, _ := tp[0].AsUint()
		if tb > lastTB {
			j.LeftIn().Advance(tb * 60)
			j.RightIn().Advance(tb * 60)
			lastTB = tb
		}
		if bs <= 1 {
			j.LeftIn().Push(tp)
			j.RightIn().Push(tp)
		} else {
			PushAll(j.LeftIn(), Batch{tp})
			PushAll(j.RightIn(), Batch{tp})
		}
	}
	j.LeftIn().Flush()
	j.RightIn().Flush()
	return sink.Rows
}

func TestJoinBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var rows []Tuple
	for tb := uint64(0); tb < 6; tb++ {
		for src := uint64(0); src < 8; src++ {
			if r.Intn(3) == 0 {
				continue // ragged epochs: some flows skip epochs
			}
			rows = append(rows, Tuple{u(tb), u(src), u(uint64(1 + r.Intn(50)))})
		}
	}
	for _, jt := range []gsql.JoinType{gsql.JoinInner, gsql.JoinLeftOuter, gsql.JoinFullOuter} {
		want := runJoin(jt, rows, 1)
		got := runJoin(jt, rows, 8)
		sameRows(t, fmt.Sprintf("Join type=%v", jt), want, got)
		if jt == gsql.JoinInner && len(want) == 0 {
			t.Fatal("inner join emitted nothing; bad workload")
		}
	}
}
