package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolleak checks the pooled-batch ownership contract from
// internal/exec: every container acquired with exec.GetBatch must be
// released with exec.PutBatch — or have its ownership transferred by
// storing it, returning it, or sending it — on every control-flow
// path. Passing a live batch as a plain call argument is a read, not
// a transfer: the pool contract says consumers copy what they keep,
// so the producer still owes the PutBatch.
//
// The analysis is a per-function walk over the statement tree with a
// possibly-live-at-exit state: branches fork the live set and exits
// (returns and the fall-off end) report any batch still owed. It is
// deliberately conservative about transfers — a batch stored into a
// struct, captured by a closure, or handed to a goroutine stops being
// tracked rather than reported — so a finding means a path where the
// container is provably dropped.
var Poolleak = &Analyzer{
	Name: "poolleak",
	Doc:  "flags pooled batches (exec.GetBatch) not returned via PutBatch on every path",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &leakWalker{p: p, reported: map[*types.Var]bool{}}
				s, term := w.stmts(fd.Body.List, leakState{})
				if !term {
					w.exit(s, fd.Body.Rbrace)
				}
			}
		}
	},
}

// Hotalloc flags heap-allocating expressions inside functions whose
// doc comment carries the //qap:hot directive — the batched operator
// push paths and the cluster drive loops, which run once per tuple or
// per batch and must stay allocation-free to keep the BENCH_exec
// allocation gate green. Flagged: make, new, slice and map composite
// literals, address-taken composite literals, and closures. Value
// struct literals and append are not flagged (no fresh heap cell in
// the steady state). Deliberate one-time or amortized allocations
// carry //qap:allow hotalloc with a reason.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap-allocating expressions inside //qap:hot functions",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHot(fd) {
					continue
				}
				name := fd.Name.Name
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.UnaryExpr:
						if e.Op == token.AND {
							if _, ok := e.X.(*ast.CompositeLit); ok {
								p.Reportf(e.Pos(), "&%s allocates in hot function %s — reuse a pooled or preallocated value", typeLabel(p, e.X), name)
								return false
							}
						}
					case *ast.CompositeLit:
						if isRefLit(p.Info.TypeOf(e)) {
							p.Reportf(e.Pos(), "%s literal allocates its backing store in hot function %s", typeLabel(p, e), name)
						}
					case *ast.FuncLit:
						p.Reportf(e.Pos(), "closure allocates in hot function %s — hoist it out of the hot path", name)
					case *ast.CallExpr:
						if id, ok := e.Fun.(*ast.Ident); ok {
							if _, builtin := p.Info.Uses[id].(*types.Builtin); builtin && (id.Name == "make" || id.Name == "new") {
								p.Reportf(e.Pos(), "%s allocates in hot function %s", id.Name, name)
							}
						}
					}
					return true
				})
			}
		}
	},
}

// isHot reports whether the function's doc comment carries the
// //qap:hot directive.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "qap:hot" || strings.HasPrefix(text, "qap:hot ") {
			return true
		}
	}
	return false
}

// isRefLit reports whether a composite literal of type t allocates a
// backing store (slice or map); struct and array literals are values.
func isRefLit(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// leakState maps a live (acquired, not yet released or transferred)
// batch variable to the position of its GetBatch call.
type leakState map[*types.Var]token.Pos

func (s leakState) clone() leakState {
	c := leakState{}
	for v, pos := range s { //qap:allow maprange -- building a copy; order-insensitive
		c[v] = pos
	}
	return c
}

// union merges b into a: a variable possibly live on either branch is
// possibly live after the join.
func union(a, b leakState) leakState {
	for v, pos := range b { //qap:allow maprange -- set union; order-insensitive
		if _, ok := a[v]; !ok {
			a[v] = pos
		}
	}
	return a
}

// leakWalker carries one function's poolleak analysis.
type leakWalker struct {
	p        *Pass
	reported map[*types.Var]bool
}

// stmts flows the live set through a statement list. The returned
// bool means every path through the list reached an exit, so nothing
// flows past it.
func (w *leakWalker) stmts(list []ast.Stmt, s leakState) (leakState, bool) {
	for _, st := range list {
		var term bool
		s, term = w.stmt(st, s)
		if term {
			return s, true
		}
	}
	return s, false
}

func (w *leakWalker) stmt(st ast.Stmt, s leakState) (leakState, bool) {
	switch x := st.(type) {
	case *ast.AssignStmt:
		w.assign(x, s)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				vs, ok := sp.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					if w.isAcquire(val) {
						if i < len(vs.Names) {
							if v := w.varObj(vs.Names[i]); v != nil {
								s[v] = val.Pos()
							}
						}
						continue
					}
					w.scan(val, s, true)
				}
			}
		}
	case *ast.ExprStmt:
		w.scan(x.X, s, false)
	case *ast.SendStmt:
		w.scan(x.Chan, s, false)
		w.scan(x.Value, s, true)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.scan(r, s, true)
		}
		w.exit(s, x.Pos())
		return leakState{}, true
	case *ast.IfStmt:
		if x.Init != nil {
			s, _ = w.stmt(x.Init, s)
		}
		w.scan(x.Cond, s, false)
		thenS, thenT := w.stmts(x.Body.List, s.clone())
		elseS, elseT := s, false
		if x.Else != nil {
			elseS, elseT = w.stmt(x.Else, s.clone())
		}
		switch {
		case thenT && elseT:
			return leakState{}, true
		case thenT:
			return elseS, false
		case elseT:
			return thenS, false
		default:
			return union(thenS, elseS), false
		}
	case *ast.BlockStmt:
		return w.stmts(x.List, s)
	case *ast.ForStmt:
		if x.Init != nil {
			s, _ = w.stmt(x.Init, s)
		}
		if x.Cond != nil {
			w.scan(x.Cond, s, false)
		}
		bodyS, bodyT := w.stmts(x.Body.List, s.clone())
		if !bodyT && x.Post != nil {
			bodyS, _ = w.stmt(x.Post, bodyS)
		}
		return union(s, bodyS), false
	case *ast.RangeStmt:
		w.scan(x.X, s, false)
		bodyS, _ := w.stmts(x.Body.List, s.clone())
		return union(s, bodyS), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			s, _ = w.stmt(x.Init, s)
		}
		if x.Tag != nil {
			w.scan(x.Tag, s, false)
		}
		return w.clauses(x.Body.List, s)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			s, _ = w.stmt(x.Init, s)
		}
		if as, ok := x.Assign.(*ast.AssignStmt); ok {
			for _, r := range as.Rhs {
				w.scan(r, s, false)
			}
		} else if es, ok := x.Assign.(*ast.ExprStmt); ok {
			w.scan(es.X, s, false)
		}
		return w.clauses(x.Body.List, s)
	case *ast.SelectStmt:
		if len(x.Body.List) == 0 {
			return s, false
		}
		merged := leakState{}
		allTerm := true
		for _, cc := range x.Body.List {
			c := cc.(*ast.CommClause)
			cs := s.clone()
			if c.Comm != nil {
				cs, _ = w.stmt(c.Comm, cs)
			}
			cs, ct := w.stmts(c.Body, cs)
			if !ct {
				merged = union(merged, cs)
				allTerm = false
			}
		}
		if allTerm {
			return leakState{}, true
		}
		return merged, false
	case *ast.DeferStmt:
		if w.isPutBatch(x.Call) {
			w.release(x.Call.Args[0], s)
			return s, false
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure that puts a batch releases it on
			// every exit; other captured batches escape.
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && w.isPutBatch(call) {
					w.release(call.Args[0], s)
				}
				return true
			})
			w.escapeAll(fl.Body, s)
			return s, false
		}
		w.escapeAll(x.Call, s)
	case *ast.GoStmt:
		w.escapeAll(x.Call, s)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, s)
	}
	return s, false
}

// clauses flows each switch clause from a fork of the incoming state.
// The incoming state stays in the merge: an expression switch may
// match no case.
func (w *leakWalker) clauses(list []ast.Stmt, s leakState) (leakState, bool) {
	merged := s.clone()
	allTerm := len(list) > 0
	hasDefault := false
	for _, cc := range list {
		c, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		for _, e := range c.List {
			w.scan(e, s, false)
		}
		cs, ct := w.stmts(c.Body, s.clone())
		if !ct {
			merged = union(merged, cs)
			allTerm = false
		}
	}
	if allTerm && hasDefault {
		return leakState{}, true
	}
	return merged, false
}

// assign handles acquires (v := exec.GetBatch(), v := append(exec.GetBatch(), ...)),
// neutral self-appends (v = append(v, ...)), and transfers (any live
// batch on the right of an assignment escapes into the destination).
func (w *leakWalker) assign(x *ast.AssignStmt, s leakState) {
	pairwise := len(x.Lhs) == len(x.Rhs)
	for i, rhs := range x.Rhs {
		var lid *ast.Ident
		if pairwise {
			lid, _ = x.Lhs[i].(*ast.Ident)
		}
		if w.isAcquire(rhs) {
			if lid != nil && lid.Name != "_" {
				if v := w.varObj(lid); v != nil {
					if pos, live := s[v]; live && !w.reported[v] {
						w.reported[v] = true
						w.p.Reportf(pos, "pooled batch %s overwritten before PutBatch — the container is lost", v.Name())
					}
					s[v] = rhs.Pos()
				}
			}
			continue
		}
		if lid != nil && w.isSelfAppend(lid, rhs) {
			continue // v = append(v, ...) grows the same container
		}
		w.scan(rhs, s, true)
	}
	for _, lhs := range x.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			w.scan(lhs, s, false)
		}
	}
}

// scan walks an expression. transfer marks a context where a live
// batch identifier escapes (stored, returned, sent, address taken) —
// ownership moves and we stop tracking it. Plain call arguments are
// reads under the pool contract, so they do not transfer.
func (w *leakWalker) scan(e ast.Expr, s leakState, transfer bool) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		if transfer {
			if v := w.varObj(x); v != nil {
				delete(s, v)
			}
		}
	case *ast.ParenExpr:
		w.scan(x.X, s, transfer)
	case *ast.CallExpr:
		if w.isPutBatch(x) {
			w.release(x.Args[0], s)
			return
		}
		w.scan(x.Fun, s, false)
		for _, a := range x.Args {
			w.scan(a, s, false)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			w.scan(el, s, true)
		}
	case *ast.UnaryExpr:
		w.scan(x.X, s, transfer || x.Op == token.AND)
	case *ast.StarExpr:
		w.scan(x.X, s, false)
	case *ast.SelectorExpr:
		w.scan(x.X, s, false)
	case *ast.IndexExpr:
		w.scan(x.X, s, false)
		w.scan(x.Index, s, false)
	case *ast.SliceExpr:
		// A slice of the container aliases its backing store, so it
		// transfers exactly when the slice expression itself does.
		w.scan(x.X, s, transfer)
		w.scan(x.Low, s, false)
		w.scan(x.High, s, false)
		w.scan(x.Max, s, false)
	case *ast.BinaryExpr:
		w.scan(x.X, s, false)
		w.scan(x.Y, s, false)
	case *ast.TypeAssertExpr:
		w.scan(x.X, s, transfer)
	case *ast.FuncLit:
		w.escapeAll(x.Body, s)
	}
}

// escapeAll stops tracking every live batch mentioned under n —
// goroutines and closures may retain what they capture.
func (w *leakWalker) escapeAll(n ast.Node, s leakState) {
	ast.Inspect(n, func(nn ast.Node) bool {
		if id, ok := nn.(*ast.Ident); ok {
			if v := w.varObj(id); v != nil {
				delete(s, v)
			}
		}
		return true
	})
}

// exit reports every batch still live at a function exit.
func (w *leakWalker) exit(s leakState, at token.Pos) {
	line := w.p.Fset.Position(at).Line
	for v, acq := range s { //qap:allow maprange -- each var reports once; RunAll sorts findings
		if w.reported[v] {
			continue
		}
		w.reported[v] = true
		w.p.Reportf(acq, "pooled batch %s acquired here may leak: no PutBatch on the path to the exit at line %d", v.Name(), line)
	}
}

// release drops the batch named by arg (if tracked) from the live set.
func (w *leakWalker) release(arg ast.Expr, s leakState) {
	if id, ok := unparen(arg).(*ast.Ident); ok {
		if v := w.varObj(id); v != nil {
			delete(s, v)
		}
	}
}

// varObj resolves an identifier to a live-trackable variable object.
func (w *leakWalker) varObj(id *ast.Ident) *types.Var {
	v, _ := w.p.Info.ObjectOf(id).(*types.Var)
	return v
}

// isAcquire reports whether e yields a fresh pooled container:
// exec.GetBatch() itself, or append(exec.GetBatch(), ...) which grows
// the fresh container in place.
func (w *leakWalker) isAcquire(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if w.isExecFunc(call, "GetBatch") {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if _, builtin := w.p.Info.Uses[id].(*types.Builtin); builtin {
			return w.isAcquire(call.Args[0])
		}
	}
	return false
}

// isSelfAppend reports whether rhs is append(lid, ...): the assigned
// container is the (possibly regrown) same one, so liveness persists.
func (w *leakWalker) isSelfAppend(lid *ast.Ident, rhs ast.Expr) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, builtin := w.p.Info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	first, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	lv, fv := w.varObj(lid), w.varObj(first)
	return lv != nil && lv == fv
}

func (w *leakWalker) isPutBatch(call *ast.CallExpr) bool {
	return len(call.Args) == 1 && w.isExecFunc(call, "PutBatch")
}

// isExecFunc reports whether the call targets the named function of a
// package named exec (the pool lives in qap/internal/exec; matching
// on the package name keeps the analyzer testable in fixture modules).
func (w *leakWalker) isExecFunc(call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := w.p.Info.ObjectOf(id).(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Name() == "exec"
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
