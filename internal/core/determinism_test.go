package core

import (
	"testing"
)

// wideSet gives the search many distinct per-query requirement sets so
// the DP frontier branches and, with a small MaxStates, truncates.
const wideSet = `
query by_src:
SELECT tb, srcIP, COUNT(*) as c1 FROM TCP GROUP BY time/60 as tb, srcIP

query by_dst:
SELECT tb, destIP, COUNT(*) as c2 FROM TCP GROUP BY time/60 as tb, destIP

query by_ports:
SELECT tb, srcPort, destPort, COUNT(*) as c3
FROM TCP GROUP BY time/60 as tb, srcPort, destPort

query by_pair:
SELECT tb, srcIP, destIP, COUNT(*) as c4
FROM TCP GROUP BY time/60 as tb, srcIP, destIP

query by_subnet:
SELECT tb, subnet, COUNT(*) as c5
FROM TCP GROUP BY time/60 as tb, srcIP & 0xFFF0 as subnet

query by_flow:
SELECT tb, srcIP, destIP, srcPort, destPort, COUNT(*) as c6
FROM TCP GROUP BY time/60 as tb, srcIP, destIP, srcPort, destPort`

// snapshot reduces a Result to its deterministic content (Search holds
// quarantined wall-clock nanos, so it is compared field-by-field).
func snapshot(r *Result) string {
	s := r.Summary()
	for _, c := range r.Candidates {
		s += "|" + c.Set.String()
	}
	return s
}

// TestSearchDeterministic pins the fix for the DP expansion's former
// map-order dependence: the candidate list, the recommendation, and
// the explored-state accounting must be identical run to run, for any
// worker count, including when MaxStates truncates the frontier.
func TestSearchDeterministic(t *testing.T) {
	g := buildGraph(t, tcpDDL, wideSet)
	for _, tc := range []struct {
		name      string
		maxStates int
		workers   int
	}{
		{"full/sequential", 0, 1},
		{"full/parallel", 0, 8},
		{"truncated/sequential", 8, 1},
		{"truncated/parallel", 8, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func() *Result {
				opts := DefaultOptions()
				if tc.maxStates > 0 {
					opts.MaxStates = tc.maxStates
				}
				opts.Workers = tc.workers
				res, err := Optimize(g, nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			first := run()
			want := snapshot(first)
			for i := 0; i < 5; i++ {
				res := run()
				if got := snapshot(res); got != want {
					t.Fatalf("run %d differs:\n--- got ---\n%s\n--- want ---\n%s", i, got, want)
				}
				if res.Search.Enumerated != first.Search.Enumerated ||
					res.Search.Pruned != first.Search.Pruned ||
					res.Search.UniqueSets != first.Search.UniqueSets {
					t.Fatalf("run %d search accounting differs: %+v vs %+v",
						i, res.Search, first.Search)
				}
			}
		})
	}
}

// TestSearchWorkerIndependence asserts sequential and parallel costing
// agree exactly (not just within tolerance).
func TestSearchWorkerIndependence(t *testing.T) {
	g := buildGraph(t, tcpDDL, wideSet)
	base := ""
	for _, w := range []int{1, 2, 4, 16} {
		opts := DefaultOptions()
		opts.Workers = w
		res, err := Optimize(g, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = snapshot(res)
			continue
		}
		if got := snapshot(res); got != base {
			t.Fatalf("workers=%d result differs:\n--- got ---\n%s\n--- want ---\n%s", w, got, base)
		}
	}
}
