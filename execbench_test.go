package qap

import (
	"testing"

	"qap/internal/netgen"
)

// TestThroughputMeasurers exercises the public measurement API end to
// end on a tiny trace: both the row-batched and columnar measurers
// must produce sane, internally consistent reports. The numbers
// themselves are wall-clock facts and are not asserted beyond
// positivity — the committed gate lives in BENCH_exec.json.
func TestThroughputMeasurers(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement replays full traces")
	}
	trace := netgen.DefaultConfig()
	trace.DurationSec = 2
	trace.PacketsPerSec = 300

	batched, err := BatchedThroughput(trace, []int{1, 64}, 0) // runs <= 0 clamps to 1
	if err != nil {
		t.Fatalf("BatchedThroughput: %v", err)
	}
	columnar, err := ColumnarThroughput(trace, []int{64}, 1)
	if err != nil {
		t.Fatalf("ColumnarThroughput: %v", err)
	}
	if len(batched) != 2 || len(columnar) != 1 {
		t.Fatalf("got %d batched and %d columnar results, want 2 and 1", len(batched), len(columnar))
	}
	for _, r := range append(batched, columnar...) {
		if r.Runs != 1 {
			t.Errorf("batch %d: Runs = %d, want 1", r.BatchSize, r.Runs)
		}
		if r.Rows <= 0 || r.NanosPerRun <= 0 || r.RowsPerSec <= 0 {
			t.Errorf("batch %d: non-positive measurement %+v", r.BatchSize, r)
		}
	}
	if batched[0].BatchSize != 1 || batched[1].BatchSize != 64 {
		t.Errorf("batched sizes %d,%d, want 1,64", batched[0].BatchSize, batched[1].BatchSize)
	}
	if batched[0].Columnar || batched[1].Columnar {
		t.Error("BatchedThroughput results marked columnar")
	}
	if !columnar[0].Columnar {
		t.Error("ColumnarThroughput result not marked columnar")
	}
	if batched[0].Rows != columnar[0].Rows {
		t.Errorf("row counts differ: %d vs %d (same trace)", batched[0].Rows, columnar[0].Rows)
	}
}
