package cluster

import (
	"testing"

	"qap/internal/core"
	"qap/internal/exec"
	"qap/internal/optimizer"
)

// keyOf identifies a window row by its group columns (pane, src, dst).
func keyOf(r exec.Tuple) string { return exec.Key(r[:3]) }

const slidingQuery = `
query sliding_flows:
SELECT pane, srcIP, destIP, COUNT(*) AS cnt, SUM(len) AS bytes, AVG(len) AS alen
FROM TCP
GROUP BY time/10 AS pane, srcIP, destIP
WINDOW 6`

// TestSlidingWindowDistributedEquivalence: pane-based sliding windows
// under every strategy must match the centralized run — per-partition
// windows under a compatible partitioning, and the central
// cross-host-merging window under round robin.
func TestSlidingWindowDistributedEquivalence(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, slidingQuery)
	want := centralized(t, g, tr)
	if len(want.Outputs["sliding_flows"]) == 0 {
		t.Fatal("no window rows")
	}
	for _, cfg := range []struct {
		name string
		ps   core.Set
		o    optimizer.Options
	}{
		{"round-robin", nil, optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}},
		{"round-robin-partition-scope", nil, optimizer.Options{Hosts: 3, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopePartition}},
		{"partitioned", core.MustParseSet("srcIP, destIP"), optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			got := runConfig(t, g, cfg.ps, cfg.o, tr)
			// AVG reassociates floating point; compare with the
			// multiset on integer columns and tolerance on AVG.
			wr, gr := want.Outputs["sliding_flows"], got.Outputs["sliding_flows"]
			if len(wr) != len(gr) {
				t.Fatalf("row counts: %d vs %d", len(wr), len(gr))
			}
			type row struct{ cnt, bytes uint64 }
			idx := make(map[string]row, len(wr))
			for _, r := range wr {
				c, _ := r[3].AsUint()
				b, _ := r[4].AsUint()
				idx[keyOf(r)] = row{c, b}
			}
			for _, r := range gr {
				c, _ := r[3].AsUint()
				b, _ := r[4].AsUint()
				w, ok := idx[keyOf(r)]
				if !ok || w.cnt != c || w.bytes != b {
					t.Fatalf("window row mismatch: %v (want %+v)", r, w)
				}
			}
		})
	}
}

func TestWindowOneEqualsTumbling(t *testing.T) {
	tr := smallTrace(t)
	sliding := buildGraph(t, `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) AS cnt
FROM TCP GROUP BY time/60 AS tb, srcIP, destIP
WINDOW 1`)
	tumbling := buildGraph(t, `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) AS cnt
FROM TCP GROUP BY time/60 AS tb, srcIP, destIP`)
	a := centralized(t, sliding, tr)
	b := centralized(t, tumbling, tr)
	sameOutputs(t, "flows", b.Outputs["flows"], a.Outputs["flows"])
}

func TestWindowedPlanShapes(t *testing.T) {
	g := buildGraph(t, slidingQuery)
	// Compatible: sub + window per partition, nothing central.
	p := optimizer.MustBuild(g, core.MustParseSet("srcIP, destIP"),
		optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true})
	if p.CountKind(optimizer.OpWindow) != 4 || p.CountKind(optimizer.OpAggSub) != 4 {
		t.Errorf("compatible windowed plan: %d windows, %d subs\n%s",
			p.CountKind(optimizer.OpWindow), p.CountKind(optimizer.OpAggSub), p)
	}
	// Incompatible: per-host subs + one central window.
	p2 := optimizer.MustBuild(g, nil,
		optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost})
	if p2.CountKind(optimizer.OpWindow) != 1 || p2.CountKind(optimizer.OpAggSub) != 2 {
		t.Errorf("incompatible windowed plan: %d windows, %d subs\n%s",
			p2.CountKind(optimizer.OpWindow), p2.CountKind(optimizer.OpAggSub), p2)
	}
}

func TestWindowTemporalPartitioningRejected(t *testing.T) {
	// Section 3.5.1: a sliding window must not be partitioned on a
	// temporal expression — the compatibility test refuses it even
	// though the same set passes for the tumbling version.
	sliding := buildGraph(t, slidingQuery)
	n := sliding.Roots()[0]
	if core.Compatible(core.MustParseSet("time/10, srcIP, destIP"), n) {
		t.Error("temporal element must be incompatible with a sliding window")
	}
	tumbling := buildGraph(t, `
query flows:
SELECT pane, srcIP, destIP, COUNT(*) AS cnt
FROM TCP GROUP BY time/10 AS pane, srcIP, destIP`)
	if !core.Compatible(core.MustParseSet("time/10, srcIP, destIP"), tumbling.Roots()[0]) {
		t.Error("the same set should be compatible with the tumbling version")
	}
}
