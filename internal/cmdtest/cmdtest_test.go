package cmdtest

import (
	"flag"
	"os"
	"strings"
	"testing"
)

func demoFlags(fs *flag.FlagSet) {
	fs.Int("hosts", 4, "leaf island count")
	fs.Int("workers", 16, "worker goroutines per stage")
	fs.String("out", "", "metrics output path")
}

// TestCheckUsage drives the harness through both of its branches from
// a temp directory: -update writes the golden, a second run compares
// clean against it.
func TestCheckUsage(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	old := *update
	defer func() { *update = old }()

	*update = true
	CheckUsage(t, "demo", demoFlags)
	data, err := os.ReadFile("testdata/usage.golden")
	if err != nil {
		t.Fatalf("-update did not write the golden: %v", err)
	}
	for _, want := range []string{"-hosts int", "leaf island count", "(default GOMAXPROCS)"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("golden missing %q:\n%s", want, data)
		}
	}

	*update = false
	CheckUsage(t, "demo", demoFlags)
}

// TestNormalize pins the one machine-dependent rewrite: worker counts
// default to GOMAXPROCS, and only those lines are touched.
func TestNormalize(t *testing.T) {
	in := "  -workers int\n    \tworker goroutines per stage (default 16)\n  -hosts int\n    \tleaf island count (default 4)\n"
	out := normalize(in)
	if !strings.Contains(out, "worker goroutines per stage (default GOMAXPROCS)") {
		t.Errorf("worker default not normalized:\n%s", out)
	}
	if !strings.Contains(out, "leaf island count (default 4)") {
		t.Errorf("non-worker default rewritten:\n%s", out)
	}
}
