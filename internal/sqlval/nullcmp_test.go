package sqlval

import (
	"fmt"
	"testing"
)

// kindSamples holds representative values of every Kind, including the
// signedness and float edge cases the cross-kind comparison must order
// correctly. The differential oracle leans on these semantics twice:
// outer-join NULL padding (grouping and sorting padded rows) and the
// canonical row ordering used to compare distributed vs centralized
// outputs.
var kindSamples = map[Kind][]Value{
	KindNull:   {Null},
	KindUint:   {Uint(0), Uint(7), Uint(1 << 40), Uint(^uint64(0))},
	KindInt:    {Int(-9), Int(0), Int(7), Int(1 << 40)},
	KindFloat:  {Float(-2.5), Float(0), Float(7), Float(7.5)},
	KindBool:   {Bool(false), Bool(true)},
	KindString: {Str(""), Str("abc"), Str("abd")},
}

var allKinds = []Kind{KindNull, KindUint, KindInt, KindFloat, KindBool, KindString}

func allSamples() []Value {
	var vs []Value
	for _, k := range allKinds {
		vs = append(vs, kindSamples[k]...)
	}
	return vs
}

// TestCompareEveryKindPair checks Compare across every ordered pair of
// kinds: antisymmetry, Equal/Compare agreement, and the documented
// cross-kind rules (NULL first, numerics by value, then Kind order).
func TestCompareEveryKindPair(t *testing.T) {
	for _, ka := range allKinds {
		for _, kb := range allKinds {
			t.Run(fmt.Sprintf("%s_vs_%s", ka, kb), func(t *testing.T) {
				for _, a := range kindSamples[ka] {
					for _, b := range kindSamples[kb] {
						c, rc := a.Compare(b), b.Compare(a)
						if c != -rc {
							t.Errorf("Compare(%s,%s)=%d but reverse=%d", a, b, c, rc)
						}
						if (c == 0) != a.Equal(b) {
							t.Errorf("Compare(%s,%s)=%d disagrees with Equal=%v", a, b, c, a.Equal(b))
						}
						if a.Equal(b) != b.Equal(a) {
							t.Errorf("Equal(%s,%s) not symmetric", a, b)
						}
					}
				}
			})
		}
	}
}

// TestCompareTotalOrder verifies transitivity over the full sample set
// by sorting: every adjacent pair must be <=, and the sort must be
// stable under re-comparison (a total preorder, no cycles).
func TestCompareTotalOrder(t *testing.T) {
	vs := allSamples()
	for _, a := range vs {
		for _, b := range vs {
			for _, c := range vs {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("transitivity violated: %s <= %s <= %s but %s > %s", a, b, c, a, c)
				}
			}
		}
	}
}

// TestNullSemantics pins SQL-flavored NULL behavior: NULL groups with
// NULL (Equal true — grouping keys), sorts before every other value,
// and hashes consistently with Equal.
func TestNullSemantics(t *testing.T) {
	if !Null.Equal(Null) {
		t.Error("NULL must group with NULL (Equal true for grouping keys)")
	}
	if Null.Compare(Null) != 0 {
		t.Error("Compare(NULL, NULL) must be 0")
	}
	for _, v := range allSamples() {
		if v.IsNull() {
			continue
		}
		if Null.Compare(v) != -1 || v.Compare(Null) != 1 {
			t.Errorf("NULL must sort before %s", v)
		}
		if Null.Equal(v) || v.Equal(Null) {
			t.Errorf("NULL must not equal %s", v)
		}
	}
	if Null.Hash() != Null.Hash() {
		t.Error("NULL hash unstable")
	}
}

// TestCrossKindNumericEquality checks the numeric tower: equal values
// of different kinds are Equal, Compare 0, and hash identically (the
// partitioning router and group maps rely on hash-consistency).
func TestCrossKindNumericEquality(t *testing.T) {
	triples := [][]Value{
		{Uint(0), Int(0), Float(0)},
		{Uint(7), Int(7), Float(7)},
		{Uint(1), Int(1), Bool(true)},
		{Uint(0), Int(0), Bool(false)},
	}
	for _, tr := range triples {
		for _, a := range tr {
			for _, b := range tr {
				if !a.Equal(b) {
					t.Errorf("%s (%s) should equal %s (%s)", a, a.Kind(), b, b.Kind())
				}
				if a.Compare(b) != 0 {
					t.Errorf("Compare(%s,%s) != 0", a, b)
				}
				if a.Hash() != b.Hash() {
					t.Errorf("equal values hash differently: %s (%s) vs %s (%s)", a, a.Kind(), b, b.Kind())
				}
			}
		}
	}
}

// TestCrossKindNumericOrdering checks signed/unsigned/float ordering
// across kind boundaries, including the extremes where a naive cast
// would flip the sign.
func TestCrossKindNumericOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(-9), Uint(0), -1},
		{Int(-9), Uint(^uint64(0)), -1},
		{Uint(^uint64(0)), Int(7), 1},
		{Float(-2.5), Int(-2), -1},
		{Float(7.5), Uint(7), 1},
		{Int(-9), Float(0), -1},
		{Bool(true), Uint(2), -1},
		{Bool(false), Int(-1), 1},
		{Uint(1 << 40), Int(1 << 40), 0},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%s %s, %s %s) = %d, want %d",
				tc.a.Kind(), tc.a, tc.b.Kind(), tc.b, got, tc.want)
		}
	}
}
