package cluster

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"qap/internal/core"
	"qap/internal/netgen"
	"qap/internal/optimizer"
)

// runBatch builds and runs a plan with explicit worker count and batch
// size, stats collection on.
func runBatch(t testing.TB, queries string, ps core.Set, o optimizer.Options, streams map[string][]netgen.Packet, workers, batch int) *Result {
	t.Helper()
	g := buildGraph(t, queries)
	p, err := optimizer.Build(g, ps, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: workers, BatchSize: batch, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// canonOutputs renders the result's outputs order-insensitively: per
// query, the sorted row renderings. Batched execution regroups
// deliveries within a round, which may permute join probe order, so
// batched-vs-scalar equivalence is canonical rather than positional.
func canonOutputs(res *Result) map[string][]string {
	out := make(map[string][]string, len(res.Outputs))
	for name, rows := range res.Outputs { //qap:allow maprange -- per-key sort; map rebuilt key-for-key
		rs := make([]string, len(rows))
		for i, r := range rows {
			rs[i] = r.String()
		}
		sort.Strings(rs)
		out[name] = rs
	}
	return out
}

// sameResultCanonical asserts batched-vs-scalar equivalence: canonical
// outputs, node-row counts, and per-operator integer counters must be
// identical; per-operator and per-host CPUUnits may differ only by
// float summation order.
func sameResultCanonical(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(canonOutputs(want), canonOutputs(got)) {
		t.Errorf("%s: canonical outputs differ", name)
	}
	if !reflect.DeepEqual(want.NodeRows, got.NodeRows) {
		t.Errorf("%s: NodeRows differ: %v vs %v", name, want.NodeRows, got.NodeRows)
	}
	if len(want.OpStats) != len(got.OpStats) {
		t.Fatalf("%s: OpStats count differs: %d vs %d", name, len(want.OpStats), len(got.OpStats))
	}
	for id, w := range want.OpStats { //qap:allow maprange -- per-id compare, order-free
		g := got.OpStats[id]
		if g == nil {
			t.Fatalf("%s: op %d missing in batched run", name, id)
		}
		wi, gi := *w, *g
		wi.CPUUnits, gi.CPUUnits = 0, 0
		if wi != gi {
			t.Errorf("%s: op %d integer counters differ:\n  scalar:  %+v\n  batched: %+v", name, id, *w, *g)
		}
		if d := math.Abs(w.CPUUnits - g.CPUUnits); d > 1e-9*math.Max(math.Abs(w.CPUUnits), 1) {
			t.Errorf("%s: op %d CPUUnits differ beyond tolerance: %v vs %v", name, id, w.CPUUnits, g.CPUUnits)
		}
	}
	for i, wh := range want.Metrics.Hosts {
		gh := got.Metrics.Hosts[i]
		if wh.Tuples != gh.Tuples || wh.NetTuplesIn != gh.NetTuplesIn ||
			wh.NetBytesIn != gh.NetBytesIn || wh.IPCTuplesIn != gh.IPCTuplesIn {
			t.Errorf("%s: host %d integer metrics differ:\n  scalar:  %+v\n  batched: %+v", name, i, wh, gh)
		}
		if d := math.Abs(wh.CPUUnits - gh.CPUUnits); d > 1e-9*math.Max(math.Abs(wh.CPUUnits), 1) {
			t.Errorf("%s: host %d CPUUnits differ beyond tolerance: %v vs %v", name, i, wh.CPUUnits, gh.CPUUnits)
		}
	}
}

// TestBatchedMatchesScalar is the cluster-level equivalence gate for
// the batch-at-a-time hot path: every workload and topology must
// produce the scalar path's canonical outputs and deterministic
// counters at every batch size, on both engines.
func TestBatchedMatchesScalar(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	querySets := []struct {
		name    string
		queries string
		ps      core.Set
	}{
		{"flows", flowsQuery, core.MustParseSet("srcIP, destIP")},
		{"complex", complexSet, core.MustParseSet("srcIP")},
		{"suspicious", suspiciousQuery, core.MustParseSet("srcIP, destIP, srcPort, destPort")},
	}
	for _, qs := range querySets {
		for _, hosts := range []int{1, 4} {
			o := optimizer.Options{Hosts: hosts, PartitionsPerHost: 2, PartialAgg: true}
			t.Run(fmt.Sprintf("%s/hosts=%d", qs.name, hosts), func(t *testing.T) {
				want := runBatch(t, qs.queries, qs.ps, o, streams, 1, 1)
				for _, bs := range []int{7, 64, 1024} {
					for _, workers := range []int{1, 4} {
						got := runBatch(t, qs.queries, qs.ps, o, streams, workers, bs)
						sameResultCanonical(t, fmt.Sprintf("bs=%d workers=%d", bs, workers), want, got)
					}
				}
			})
		}
	}
}

// TestBatchedSameBatchBitIdentical: with the batch size held fixed,
// the worker count must not move a byte — the parallel engine replays
// the sequential batched engine's delivery schedule exactly.
func TestBatchedSameBatchBitIdentical(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}
	for _, bs := range []int{7, 256} {
		want := runBatch(t, complexSet, core.MustParseSet("srcIP"), o, streams, 1, bs)
		got := runBatch(t, complexSet, core.MustParseSet("srcIP"), o, streams, 4, bs)
		sameResult(t, want, got)
	}
}

// TestBatchedAggregateOrderStable gates the epoch-drain map pre-sizing
// (Aggregate.emitBefore, Join.evict) against output reordering: an
// aggregation query's final rows are emitted in sorted (epoch, key)
// order per watermark, so a multi-epoch run — each epoch fully
// draining and rebuilding the group map pre-sized from the last — must
// produce *positionally* identical output on the scalar path, the
// batched path, and across repeated fresh runs.
func TestBatchedAggregateOrderStable(t *testing.T) {
	tr := smallTrace(t) // 3 epochs of 60s; every group drains at each boundary
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	ps := core.MustParseSet("srcIP, destIP")
	want := runBatch(t, flowsQuery, ps, o, streams, 1, 1)
	if len(want.Outputs["flows"]) == 0 {
		t.Fatal("flows query emitted nothing; bad workload")
	}
	for run := 0; run < 3; run++ {
		got := runBatch(t, flowsQuery, ps, o, streams, 1, 64)
		if !reflect.DeepEqual(want.Outputs, got.Outputs) {
			t.Fatalf("run %d: batched aggregate output order drifted from scalar", run)
		}
	}
}
