package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Prometheus golden files instead of comparing")

// checkGolden compares a rendering against testdata/<name>.golden,
// rewriting the golden under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create the goldens)", err)
	}
	if got != string(want) {
		t.Errorf("%s rendering drifted from the golden (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestPrometheusGoldenEmpty pins the exposition for a bare report:
// nothing measured means a zero-byte document — no empty metric
// families, no placeholder samples.
func TestPrometheusGoldenEmpty(t *testing.T) {
	r := &RunReport{SchemaVersion: SchemaVersion}
	checkGolden(t, "prom_empty", r.Prometheus())
}

// TestPrometheusGoldenDrift pins the exposition for a monitored
// multi-host run in the shape the drift scenario produces: four hosts,
// a windowed load series whose last window spikes on one host, and a
// fixed timing block. Every byte of the rendering is covered, so any
// change to metric names, label order, or number formatting shows up
// as a diff here before it breaks a scrape config.
func TestPrometheusGoldenDrift(t *testing.T) {
	r := &RunReport{
		SchemaVersion:  SchemaVersion,
		DurationSec:    60,
		CapacityPerSec: 12000,
		Plan: &PlanInfo{
			Hosts: 4, Partitions: 8, PartitionsPerHost: 2,
			Partitioning: "( srcIP )", Operators: 3,
		},
		Nodes: []NodeReport{
			{ID: 0, Kind: "scan", Query: "TCP", Host: 0, Partition: 0,
				OpStats:  OpStats{RowsIn: 1800, RowsOut: 1800, CPUUnits: 1800},
				PassRate: 1},
			{ID: 1, Kind: "aggregate", Query: "flows", Host: 0, Partition: -1,
				OpStats:  OpStats{RowsIn: 1800, RowsOut: 120, Advances: 6, Flushes: 1, CPUUnits: 2400.25, NetTuplesIn: 420, NetBytesIn: 13440},
				PassRate: 0.066},
		},
		Hosts: []HostReport{
			{Host: 0, CPUUnits: 4200.25, CPULoadPct: 35, Tuples: 3600, NetTuplesIn: 420, NetBytesIn: 13440},
			{Host: 1, CPUUnits: 900, CPULoadPct: 7.5, Tuples: 800, NetTuplesIn: 60, NetBytesIn: 1920},
			{Host: 2, CPUUnits: 880, CPULoadPct: 7.3, Tuples: 790, NetTuplesIn: 55, NetBytesIn: 1760},
			{Host: 3, CPUUnits: 0, Tuples: 0},
		},
		LoadWindowSec: 10,
		LoadSeries: []LoadWindow{
			{Window: 0, StartSec: 0, EndSec: 10, Hosts: []HostWindow{
				{Host: 0, CPUUnits: 700, NetTuplesIn: 70, NetBytesIn: 2240, Tuples: 600},
				{Host: 1, CPUUnits: 150, NetTuplesIn: 10, NetBytesIn: 320, Tuples: 130},
				{Host: 2, Tuples: 120},
				{Host: 3},
			}},
			{Window: 1, StartSec: 10, EndSec: 20, Hosts: []HostWindow{
				{Host: 0, CPUUnits: 3500.25, NetTuplesIn: 350, NetBytesIn: 11200, Tuples: 3000},
				{Host: 1, CPUUnits: 750, NetTuplesIn: 50, NetBytesIn: 1600, Tuples: 670},
				{Host: 2, NetTuplesIn: 55, NetBytesIn: 1760, Tuples: 670},
				{Host: 3},
			}},
		},
		Timing: &Timing{Workers: 4, BatchRounds: 256, Engine: "parallel",
			WallNanos: 98765432, Rounds: 60, Batches: 240, LinkItems: 480},
	}
	checkGolden(t, "prom_drift", r.Prometheus())
}

// TestPrometheusGoldenEscaping pins the exposition-format escaping
// rules on label values: backslash, double quote, and newline are the
// only escapes; UTF-8 and exotic-but-legal bytes pass through raw.
func TestPrometheusGoldenEscaping(t *testing.T) {
	r := &RunReport{
		SchemaVersion: SchemaVersion,
		DurationSec:   1,
		Plan: &PlanInfo{
			Hosts: 1, Partitions: 1, PartitionsPerHost: 1,
			Partitioning: `( "src\IP" )`, Operators: 2,
		},
		Nodes: []NodeReport{
			{ID: 0, Kind: "scan", Query: "q-héavy \"x\\y\nz", Host: 0, Partition: 0,
				OpStats: OpStats{RowsIn: 1, RowsOut: 1}, PassRate: 1},
			{ID: 1, Kind: "aggregate", Query: "tab\there{brace}", Host: 0, Partition: -1,
				OpStats: OpStats{RowsIn: 1, RowsOut: 1}, PassRate: 1},
		},
	}
	checkGolden(t, "prom_escaping", r.Prometheus())
}
