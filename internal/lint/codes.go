package lint

// CodeInfo describes one registered lint rule: its stable code, fixed
// severity, a short title, and the paper section the rule encodes.
type CodeInfo struct {
	Code     string
	Severity Severity
	Title    string
	Section  string
}

// Lint rule codes. Codes are append-only: a retired rule keeps its
// number reserved so historical reports stay unambiguous.
const (
	// CodeLoadError reports that the query set failed to parse or the
	// plan failed to build; the position is the parser's/builder's.
	CodeLoadError = "QAP000"
	// CodeUniversal marks nodes compatible with any partitioning.
	CodeUniversal = "QAP001"
	// CodeUnpartitionable marks nodes no stream partitioning can
	// distribute, forcing central execution of the node and everything
	// above it.
	CodeUnpartitionable = "QAP002"
	// CodeSetCompatible explains that a candidate partitioning set
	// satisfies a node's scope rule.
	CodeSetCompatible = "QAP003"
	// CodeSetExcluded explains which scope rule excluded a candidate
	// partitioning set for a node.
	CodeSetExcluded = "QAP004"
	// CodeWindowMisaligned flags a join whose two inputs tumble on
	// different window expressions.
	CodeWindowMisaligned = "QAP005"
	// CodeHavingCentral notes that a HAVING clause evaluates centrally
	// on the super-aggregate when the aggregation is split.
	CodeHavingCentral = "QAP006"
	// CodeHolisticAggregate flags holistic aggregates that block the
	// sub/super-aggregate split.
	CodeHolisticAggregate = "QAP007"
	// CodeDeadColumn flags output columns no downstream query reads.
	CodeDeadColumn = "QAP008"
	// CodeNullPadded flags outer-join NULL-padded columns used in a
	// downstream GROUP BY or join key.
	CodeNullPadded = "QAP009"
	// CodeKeyTypeMismatch flags equi-join key pairs of incompatible
	// types.
	CodeKeyTypeMismatch = "QAP010"
	// CodeCrossEpochJoin notes a temporal join key offset by whole
	// windows (the paper's flow_pairs pattern).
	CodeCrossEpochJoin = "QAP011"
)

// Codes is the rule registry, ordered by code. The DESIGN.md table of
// QAP codes mirrors this list; TestCodesRegistry keeps the two honest.
var Codes = []CodeInfo{
	{CodeLoadError, SevError, "query set failed to parse or plan", "3.2"},
	{CodeUniversal, SevInfo, "node compatible with any partitioning", "3.4"},
	{CodeUnpartitionable, SevWarning, "no compatible partitioning; node runs centrally", "3.5"},
	{CodeSetCompatible, SevInfo, "candidate partitioning set compatible with node", "3.4-3.5"},
	{CodeSetExcluded, SevInfo, "candidate partitioning set excluded by a scope rule", "3.5.1-3.5.3"},
	{CodeWindowMisaligned, SevWarning, "tumbling windows misaligned across join inputs", "3.1, 3.5.1"},
	{CodeHavingCentral, SevInfo, "HAVING evaluates centrally on the super-aggregate", "5.2.2"},
	{CodeHolisticAggregate, SevWarning, "holistic aggregate blocks the sub/super split", "5.2.1-5.2.2"},
	{CodeDeadColumn, SevWarning, "output column never read downstream", "5.4"},
	{CodeNullPadded, SevWarning, "outer-join NULL-padded column in GROUP BY/join key", "5.3"},
	{CodeKeyTypeMismatch, SevError, "equi-join key types incompatible", "5.3"},
	{CodeCrossEpochJoin, SevInfo, "temporal join key offset by whole windows", "3.2"},
}

// codeSeverity returns the registered severity for a code.
func codeSeverity(code string) Severity {
	for _, c := range Codes {
		if c.Code == code {
			return c.Severity
		}
	}
	return SevInfo
}

// codeSection returns the registered paper section for a code.
func codeSection(code string) string {
	for _, c := range Codes {
		if c.Code == code {
			return c.Section
		}
	}
	return ""
}
