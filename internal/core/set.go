package core

import (
	"fmt"
	"sort"
	"strings"

	"qap/internal/gsql"
)

// exprEqualNoQual compares two element expressions modulo attribute
// qualifiers and identifier case.
func exprEqualNoQual(a, b gsql.Expr) bool {
	return gsql.EqualExpr(normalizeAttrRef(a), normalizeAttrRef(b))
}

// Set is a partitioning set: an unordered collection of elements, each
// a scalar expression over one base attribute (paper Section 3.3).
// The tuple's partition is determined by hashing the element values
// together. Any non-empty subset of a compatible partitioning set is
// also compatible, so sets are kept deduplicated with at most one
// element per attribute (two elements on the same attribute are
// redundant: the finer one determines the coarser).
type Set []Elem

// ParseSet parses a comma-separated partitioning set such as
// "srcIP & 0xFFF0, destIP".
func ParseSet(src string) (Set, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, nil
	}
	var out Set
	depth := 0
	start := 0
	flush := func(end int) error {
		part := strings.TrimSpace(src[start:end])
		if part == "" {
			return fmt.Errorf("core: empty element in partitioning set %q", src)
		}
		e, err := ParseElem(part)
		if err != nil {
			return err
		}
		out = append(out, e)
		return nil
	}
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(src)); err != nil {
		return nil, err
	}
	return out.Normalize(), nil
}

// MustParseSet is ParseSet that panics on error.
func MustParseSet(src string) Set {
	s, err := ParseSet(src)
	if err != nil {
		panic(err)
	}
	return s
}

// Normalize deduplicates the set, keeping one element per attribute.
// When two elements partition the same attribute, the finer one (the
// one the other is a function of) is kept; unrelated pairs keep the
// first. The result is sorted by attribute for deterministic output.
func (s Set) Normalize() Set {
	var out Set
	for _, e := range s {
		merged := false
		for i, have := range out {
			if !sameAttr(have, e) {
				continue
			}
			merged = true
			// Keep the finer of the two: if have is a function of e,
			// e is finer.
			if IsCoarseningOf(have, e) && !exprEqualNoQual(have.Expr, e.Expr) {
				out[i] = e
			}
			break
		}
		if !merged {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i].Attr) < strings.ToLower(out[j].Attr)
	})
	return out
}

// String renders the set in the paper's parenthesized form, e.g.
// "(srcIP & 0xFFF0, destIP)"; the empty set renders as "()".
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// Equal reports whether two normalized sets have the same elements.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	a, b := s.Normalize(), o.Normalize()
	for i := range a {
		if !sameAttr(a[i], b[i]) || !exprEqualNoQual(a[i].Expr, b[i].Expr) {
			return false
		}
	}
	return true
}

// Reconcile computes the largest partitioning set compatible with
// queries requiring either input set (paper Section 4.1,
// Reconcile_Partn_Sets): elements on the same attribute reconcile via
// the scalar-expression lattice; attributes present in only one input
// are dropped, since partitioning on them would split the other
// query's groups. The empty set means the requirements conflict.
func Reconcile(a, b Set) Set {
	var out Set
	for _, ea := range a {
		for _, eb := range b {
			if !sameAttr(ea, eb) {
				continue
			}
			if r, ok := ReconcileElems(ea, eb); ok {
				out = append(out, r)
			}
		}
	}
	return out.Normalize()
}

// SubsetCompatible reports whether s is element-wise compatible with
// req: every element of s must be a function of some element of req,
// so partitioning by s never separates tuples that req would group
// together. A non-empty s against an empty req is incompatible.
func SubsetCompatible(s, req Set) bool {
	if s.IsEmpty() {
		return false
	}
	for _, e := range s {
		ok := false
		for _, g := range req {
			if IsCoarseningOf(e, g) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
