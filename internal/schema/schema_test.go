package schema

import (
	"strings"
	"testing"
)

func TestParsePaperSchemas(t *testing.T) {
	c, err := Parse(`
# The packet schema from Section 3.1 of the paper.
PKT(time increasing, srcIP, destIP, len)
TCP(time uint increasing, srcIP uint, destIP uint,
    srcPort uint, destPort uint, len uint, flags uint)
`)
	if err != nil {
		t.Fatal(err)
	}
	pkt, ok := c.Stream("PKT")
	if !ok {
		t.Fatal("PKT not found")
	}
	if len(pkt.Attrs) != 4 {
		t.Fatalf("PKT has %d attrs, want 4", len(pkt.Attrs))
	}
	if _, a, ok := pkt.Lookup("time"); !ok || a.Order != Increasing {
		t.Errorf("time should be increasing, got %+v ok=%v", a, ok)
	}
	if _, a, ok := pkt.Lookup("srcip"); !ok || a.Type != TUint || a.Temporal() {
		t.Errorf("srcIP lookup (case-insensitive) failed: %+v ok=%v", a, ok)
	}
	tcp, _ := c.Stream("tcp")
	if got := len(tcp.TemporalAttrs()); got != 1 {
		t.Errorf("TCP temporal attrs = %d, want 1", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"PKT(",
		"PKT()",
		"(time)",
		"PKT(time weird)",
		"PKT(time, time)",
		"PKT(time)\nPKT(x)",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSemicolonsAndComments(t *testing.T) {
	c, err := Parse("A(x); B(y int decreasing) -- trailing\n# whole-line comment\nC(z string)")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Streams()); got != 3 {
		t.Fatalf("got %d streams, want 3", got)
	}
	_, a, _ := c.Streams()[1].Lookup("y")
	if a.Type != TInt || a.Order != Decreasing {
		t.Errorf("B.y = %+v", a)
	}
	if c.Streams()[2].Attrs[0].Type != TString {
		t.Error("C.z should be string")
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "PKT(time uint increasing, srcIP uint, note string)"
	c := MustParse(src)
	rendered := c.String()
	if rendered != src {
		t.Errorf("String() = %q, want %q", rendered, src)
	}
	// Rendered DDL must reparse to the same thing.
	c2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if c2.String() != rendered {
		t.Error("round trip unstable")
	}
}

func TestCatalogDuplicate(t *testing.T) {
	c := NewCatalog()
	s, _ := NewStream("S", []Attribute{{Name: "a"}})
	if err := c.Add(s); err != nil {
		t.Fatal(err)
	}
	s2, _ := NewStream("s", []Attribute{{Name: "b"}})
	if err := c.Add(s2); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate error, got %v", err)
	}
}

func TestTypeValueKinds(t *testing.T) {
	for _, typ := range []Type{TUint, TInt, TFloat, TBool, TString} {
		if typ.String() == "" || strings.HasPrefix(typ.String(), "type(") {
			t.Errorf("missing name for %d", typ)
		}
	}
}
