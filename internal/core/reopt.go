package core

import (
	"time"

	"qap/internal/plan"
)

// Reoptimize re-runs the partitioning decision under refreshed
// workload statistics without re-enumerating the candidate space. The
// Section 4.2.2 enumeration is a pure function of the query graph —
// requirements, reconciliation, and the DP expansion never look at
// stats; only the costing of the recorded candidates does — so an
// adaptive controller reacting to drift can reuse a prior search's
// candidate list and pay only the re-costing, which is the expensive
// part the worker pool already parallelizes.
//
// The result is identical to a fresh Optimize on the same graph and
// stats (asserted by TestReoptimizeMatchesFreshOptimize), minus the
// enumeration wall-clock. A nil prior falls back to a full Optimize.
func Reoptimize(g *plan.Graph, prior *Result, stats Stats, opts Options) (*Result, error) {
	if prior == nil {
		return Optimize(g, stats, opts)
	}
	cm := NewCostModel(g, stats)
	res := &Result{PerNode: make(map[string]Requirement, len(prior.PerNode))}
	for name, req := range prior.PerNode { //qap:allow maprange -- map-to-map copy, order-insensitive
		res.PerNode[name] = req
	}
	res.CentralCost = cm.PlanCost(nil)
	res.CentralTotal = cm.TotalCost(nil)
	// Carry the enumeration-phase counters over (the candidate list is
	// the prior enumeration's); the costing counters are refilled.
	res.Search.Enumerated = prior.Search.Enumerated
	res.Search.Pruned = prior.Search.Pruned
	res.Candidates = make([]Candidate, len(prior.Candidates))
	for i, c := range prior.Candidates {
		res.Candidates[i] = Candidate{Queries: c.Queries, Set: c.Set}
	}
	costStart := time.Now() //qap:allow walltime -- wall time quarantined in SearchStats nanos
	fillCandidateCosts(cm, res.Candidates, opts.Workers, &res.Search)
	res.Search.CostNanos = int64(time.Since(costStart)) //qap:allow walltime -- wall time quarantined in SearchStats nanos
	res.Search.CacheHits = cm.cacheHits
	rankAndSelect(res)
	return res, nil
}
