package live

import (
	"errors"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected pipe with a sink goroutine draining one
// end, so faultConn writes never block, plus a counter of delivered
// frames (one byte each in these tests).
func pipePair(t *testing.T) (net.Conn, func() int) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	got := make(chan int, 1)
	got <- 0
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			if n > 0 {
				c := <-got
				got <- c + n
			}
			if err != nil {
				return
			}
		}
	}()
	return a, func() int { c := <-got; got <- c; return c }
}

// TestFaultPlanActions scripts each action against a specific write
// index and checks both the stream effect and the hit counter.
func TestFaultPlanActions(t *testing.T) {
	t.Run("drop", func(t *testing.T) {
		conn, delivered := pipePair(t)
		plan := &FaultPlan{Faults: []Fault{{Host: 0, Session: -1, Write: 1, Action: FaultDrop}}}
		fc := plan.WrapAccept(0)(conn, 0)
		for i := 0; i < 3; i++ {
			if _, err := fc.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, "writes drained", func() bool { return delivered() == 2 })
		if plan.Hits() != 1 {
			t.Fatalf("plan hits = %d, want 1", plan.Hits())
		}
	})
	t.Run("dup", func(t *testing.T) {
		conn, delivered := pipePair(t)
		plan := &FaultPlan{Faults: []Fault{{Host: -1, Session: -1, Write: 0, Action: FaultDup}}}
		fc := plan.WrapAccept(2)(conn, 5)
		if _, err := fc.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "duplicated write drained", func() bool { return delivered() == 2 })
	})
	t.Run("stall", func(t *testing.T) {
		conn, delivered := pipePair(t)
		plan := &FaultPlan{Faults: []Fault{{Host: -1, Session: -1, Write: -1, Action: FaultStall, Stall: 10 * time.Millisecond}}}
		fc := plan.WrapAccept(0)(conn, 0)
		start := time.Now()
		if _, err := fc.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		if time.Since(start) < 10*time.Millisecond {
			t.Fatal("stall fault did not sleep")
		}
		waitFor(t, "stalled write drained", func() bool { return delivered() == 1 })
	})
	t.Run("cut", func(t *testing.T) {
		conn, _ := pipePair(t)
		plan := &FaultPlan{Faults: []Fault{{Host: 1, Session: 0, Write: 0, Action: FaultCut}}}
		fc := plan.WrapAccept(1)(conn, 0)
		if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjectedCut) {
			t.Fatalf("cut write err = %v, want ErrInjectedCut", err)
		}
		// The underlying conn is closed: further writes fail for real.
		if _, err := conn.Write([]byte{2}); err == nil {
			t.Fatal("connection survived a scripted cut")
		}
	})
	t.Run("no-match", func(t *testing.T) {
		conn, delivered := pipePair(t)
		plan := &FaultPlan{Faults: []Fault{{Host: 7, Session: 7, Write: 7, Action: FaultDrop}}}
		fc := plan.WrapAccept(0)(conn, 0)
		if _, err := fc.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "unmatched write drained", func() bool { return delivered() == 1 })
		if plan.Hits() != 0 {
			t.Fatalf("plan hits = %d, want 0", plan.Hits())
		}
	})
}

// TestFaultPlanDial: the splitter-side wrapper threads (host, attempt)
// into the fault coordinates and passes dial errors through untouched.
func TestFaultPlanDial(t *testing.T) {
	conn, delivered := pipePair(t)
	plan := &FaultPlan{Faults: []Fault{{Host: 4, Session: 1, Write: 0, Action: FaultDrop}}}
	dial := plan.Dial(func(host, attempt int, addr string) (net.Conn, error) {
		if addr != "x:1" {
			t.Fatalf("dial addr = %q", addr)
		}
		return conn, nil
	})
	fc, err := dial(4, 1, "x:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte{2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second write drained", func() bool { return delivered() == 1 })
	if plan.Hits() != 1 {
		t.Fatalf("plan hits = %d, want 1", plan.Hits())
	}

	wantErr := errors.New("refused")
	failing := plan.Dial(func(host, attempt int, addr string) (net.Conn, error) { return nil, wantErr })
	if _, err := failing(0, 0, "y:2"); !errors.Is(err, wantErr) {
		t.Fatalf("dial error = %v, want passthrough", err)
	}
}
