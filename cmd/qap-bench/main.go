// Command qap-bench regenerates the data behind every measured figure
// of the paper's evaluation (Figures 8, 9, 10, 11, 13, 14) and prints
// the same series as text tables.
//
// Usage:
//
//	qap-bench [-fig 8|10|13|all] [-rate pps] [-duration sec]
//	          [-hosts n] [-leaf]
//	qap-bench -exec [-exec-runs n] [-rate pps] [-duration sec]
//	qap-bench -check dir
//
// A figure number selects the experiment that produces it (CPU and
// network figures come from the same sweep: 8 prints 8+9, 10 prints
// 10+11, 13 prints 13+14).
//
// -exec runs the batched-vs-scalar hot-path microbenchmark instead
// (the Figure 8 workload at batch sizes 1/64/256/1024, the same shape
// as BenchmarkBatchedThroughput) and, with -bench-out, writes
// BENCH_exec.json including the >=2x speedup / <=0.25x allocs gate
// verdict. The committed seed was produced by:
//
//	qap-bench -exec -rate 2000 -duration 60 -exec-runs 20 -bench-out .
//
// -drift runs the adaptive-repartitioning experiment instead: a
// two-phase skew-shift trace under the default drift scenario, static
// versus adaptive, and, with -bench-out, writes BENCH_drift.json (the
// per-window static/adaptive load comparison plus the trigger and
// bound verdicts; see EXPERIMENTS.md).
//
// -check re-validates committed bench reports without re-running the
// experiments: it decodes BENCH_exec.json and BENCH_drift.json from
// the given directory (strictly — schema version asserted), recomputes
// every derived gate field from the stored raw measurements, and exits
// nonzero when a verdict disagrees with what is committed or a gate no
// longer holds. CI runs it so stale bench files fail fast.
//
// Reported numbers are deterministic for any -workers value; the
// determinism contract is machine-enforced by cmd/qap-vet, and the
// wall-clock reads below are quarantined under the report's "timing"
// key.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"qap"
	"qap/internal/netgen"
	"qap/internal/obs"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	fig        string
	rate       int
	duration   int
	hosts      int
	seed       int64
	leaf       bool
	workers    int
	batch      int
	benchOut   string
	execBench  bool
	execRuns   int
	driftBench bool
	check      string
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.StringVar(&f.fig, "fig", "all", "figure to regenerate: 8, 9, 10, 11, 13, 14, or all")
	fs.IntVar(&f.rate, "rate", 1500, "trace packet rate (packets/sec)")
	fs.IntVar(&f.duration, "duration", 300, "trace duration (sec)")
	fs.IntVar(&f.hosts, "hosts", 4, "maximum cluster size")
	fs.Int64Var(&f.seed, "seed", 1, "trace random seed")
	fs.BoolVar(&f.leaf, "leaf", false, "also print the Section 6.1 leaf-load series")
	fs.IntVar(&f.workers, "workers", runtime.GOMAXPROCS(0), "simulator worker goroutines (1 = sequential engine; results are identical for any value)")
	fs.IntVar(&f.batch, "batch", 0, "operator batch size (0 = engine default, 1 = tuple-at-a-time; results are identical for any value)")
	fs.StringVar(&f.benchOut, "bench-out", "", "also write each experiment's machine-readable BENCH_<name>.json into this directory")
	fs.BoolVar(&f.execBench, "exec", false, "run the batched-vs-scalar execution microbenchmark instead of the figure experiments")
	fs.IntVar(&f.execRuns, "exec-runs", 5, "measured trace replays per batch size for -exec")
	fs.BoolVar(&f.driftBench, "drift", false, "run the adaptive-repartitioning drift experiment instead of the figure experiments")
	fs.StringVar(&f.check, "check", "", "re-validate the committed BENCH_exec.json/BENCH_drift.json in this directory against their embedded gates and exit")
	return f
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()

	if f.check != "" {
		runCheck(f.check)
		return
	}

	cfg := qap.DefaultExperimentConfig()
	cfg.Trace.Seed = f.seed
	cfg.Trace.PacketsPerSec = f.rate
	cfg.Trace.DurationSec = f.duration
	cfg.MaxHosts = f.hosts
	cfg.Workers = f.workers
	cfg.BatchSize = f.batch

	if f.execBench {
		runExec(f.seed, f.rate, f.duration, f.execRuns, f.benchOut)
		return
	}
	if f.driftBench {
		runDrift(f.seed, f.workers, f.batch, f.benchOut)
		return
	}

	type experiment struct {
		name string
		ids  []string
		run  func(qap.ExperimentConfig) (*qap.Figure, *qap.Figure, error)
	}
	experiments := []experiment{
		{"fig8_9", []string{"8", "9"}, qap.Figures8and9},
		{"fig10_11", []string{"10", "11"}, qap.Figures10and11},
		{"fig13_14", []string{"13", "14"}, qap.Figures13and14},
	}

	ran := false
	for _, ex := range experiments {
		if f.fig != "all" && f.fig != ex.ids[0] && f.fig != ex.ids[1] {
			continue
		}
		ran = true
		started := time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
		cpu, net, err := ex.run(cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(started) //qap:allow walltime -- wall time quarantined in obs.Timing
		fmt.Println(cpu.Table())
		fmt.Println(net.Table())
		if f.benchOut != "" {
			writeBench(f.benchOut, ex.name, cfg, wall, cpu, net)
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (use 8, 9, 10, 11, 13, 14, or all)", f.fig))
	}

	if f.leaf {
		started := time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
		loads, err := qap.LeafLoads(cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(started) //qap:allow walltime -- wall time quarantined in obs.Timing
		fmt.Println("Section 6.1 leaf-node CPU load (Naive configuration):")
		fmt.Printf("%8s  %10s\n", "# nodes", "leaf CPU %")
		hosts := make([]int, len(loads))
		for i, l := range loads {
			fmt.Printf("%8d  %10.1f\n", i+1, l)
			hosts[i] = i + 1
		}
		if f.benchOut != "" {
			leafFig := &qap.Figure{
				ID: "leaf", Title: "Leaf-node CPU load (Naive)", Metric: "CPU load (%)",
				Hosts:  hosts,
				Series: []qap.Series{{Name: "Naive", Values: loads}},
			}
			writeBench(f.benchOut, "leaf", cfg, wall, leafFig)
		}
	}
}

// runCheck is the -check mode: decode the committed bench reports
// strictly and recompute every derived gate verdict from the stored
// raw measurements. Any disagreement — or a gate that no longer holds
// — exits nonzero.
func runCheck(dir string) {
	problems := 0
	problems += checkExec(filepath.Join(dir, "BENCH_exec.json"))
	problems += checkDrift(filepath.Join(dir, "BENCH_drift.json"))
	if problems > 0 {
		fmt.Printf("check: %d problem(s)\n", problems)
		os.Exit(1)
	}
	fmt.Println("check: all bench gates hold")
}

// approxEq compares stored and recomputed float ratios. The committed
// values were computed by this same code path, so only decode drift or
// a hand-edited file can move them.
func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}

// checkExec re-validates BENCH_exec.json; returns the problem count.
func checkExec(path string) int {
	bad := func(format string, args ...any) int {
		fmt.Printf("check %s: FAIL: %s\n", path, fmt.Sprintf(format, args...))
		return 1
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return bad("%v", err)
	}
	var rep obs.ExecBenchReport
	if err := obs.DecodeStrict(data, &rep); err != nil {
		return bad("%v", err)
	}
	var scalar *obs.ExecBenchRow
	for i := range rep.Rows {
		if rep.Rows[i].BatchSize == 1 && !rep.Rows[i].Columnar {
			scalar = &rep.Rows[i]
		}
	}
	if scalar == nil {
		return bad("no batch-size-1 scalar baseline row")
	}
	problems := 0
	gateMet, columnarGateMet := false, false
	for _, row := range rep.Rows {
		speedup, allocRatio := 0.0, 0.0
		if scalar.RowsPerSec > 0 {
			speedup = row.RowsPerSec / scalar.RowsPerSec
		}
		if scalar.AllocsPerRun > 0 {
			allocRatio = float64(row.AllocsPerRun) / float64(scalar.AllocsPerRun)
		}
		if !approxEq(speedup, row.SpeedupVsScalar) || !approxEq(allocRatio, row.AllocRatioVsScalar) {
			problems += bad("batch %d (columnar=%v): stored ratios (%.6f, %.6f) != recomputed (%.6f, %.6f)",
				row.BatchSize, row.Columnar, row.SpeedupVsScalar, row.AllocRatioVsScalar, speedup, allocRatio)
		}
		switch {
		case row.Columnar && speedup >= rep.GateMinColumnarSpeedup && allocRatio <= rep.GateMaxColumnarAllocRatio:
			columnarGateMet = true
		case !row.Columnar && row.BatchSize > 1 && speedup >= rep.GateMinSpeedup && allocRatio <= rep.GateMaxAllocRatio:
			gateMet = true
		}
	}
	if gateMet != rep.GateMet {
		problems += bad("stored gate_met=%v but recomputed %v (thresholds >=%.1fx speedup, <=%.2fx allocs)",
			rep.GateMet, gateMet, rep.GateMinSpeedup, rep.GateMaxAllocRatio)
	}
	if !gateMet {
		problems += bad("batched-execution gate does not hold: no batched row reaches >=%.1fx speedup at <=%.2fx allocs",
			rep.GateMinSpeedup, rep.GateMaxAllocRatio)
	}
	// Columnar thresholds are additive: reports written before the
	// columnar path existed carry neither thresholds nor columnar rows
	// and are checked only against the batched gate above.
	if rep.GateMinColumnarSpeedup > 0 {
		if columnarGateMet != rep.ColumnarGateMet {
			problems += bad("stored columnar_gate_met=%v but recomputed %v (thresholds >=%.1fx speedup, <=%.2fx allocs)",
				rep.ColumnarGateMet, columnarGateMet, rep.GateMinColumnarSpeedup, rep.GateMaxColumnarAllocRatio)
		}
		if !columnarGateMet {
			problems += bad("columnar-execution gate does not hold: no columnar row reaches >=%.1fx speedup at <=%.2fx allocs",
				rep.GateMinColumnarSpeedup, rep.GateMaxColumnarAllocRatio)
		}
	}
	if problems == 0 {
		fmt.Printf("check %s: ok (gate met, %d rows)\n", path, len(rep.Rows))
	}
	return problems
}

// checkDrift re-validates BENCH_drift.json; returns the problem count.
func checkDrift(path string) int {
	bad := func(format string, args ...any) int {
		fmt.Printf("check %s: FAIL: %s\n", path, fmt.Sprintf(format, args...))
		return 1
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return bad("%v", err)
	}
	var rep obs.DriftBenchReport
	if err := obs.DecodeStrict(data, &rep); err != nil {
		return bad("%v", err)
	}
	problems := 0
	if rep.TriggerWindow < 0 {
		problems += bad("trigger never fired; the drift scenario must violate the bound")
	}
	if !rep.Repartitioned {
		problems += bad("controller did not repartition; the drift scenario must switch sets")
	}
	within := rep.PostSwitchPeakBps <= rep.TriggerFactor*rep.NewBound
	if within != rep.WithinBoundAfterSwitch {
		problems += bad("stored within_bound_after_switch=%v but recomputed %v (peak %.0f vs %.2f x bound %.0f)",
			rep.WithinBoundAfterSwitch, within, rep.PostSwitchPeakBps, rep.TriggerFactor, rep.NewBound)
	}
	if !within {
		problems += bad("post-switch peak %.0f B/s exceeds %.2f x refreshed bound %.0f B/s",
			rep.PostSwitchPeakBps, rep.TriggerFactor, rep.NewBound)
	}
	// The per-window rows must cover the trigger window and mark the
	// post-switch windows as running the final set.
	seenTrigger := false
	for _, row := range rep.Rows {
		if row.Window == rep.TriggerWindow {
			seenTrigger = true
		}
		if rep.Repartitioned && row.StartSec >= rep.SwitchTimeSec && !row.AdaptiveUsesFinalSet {
			problems += bad("window %d starts at t=%ds (after the switch at t=%ds) but is not marked as using the final set",
				row.Window, row.StartSec, rep.SwitchTimeSec)
		}
	}
	if rep.TriggerWindow >= 0 && !seenTrigger {
		problems += bad("trigger window %d missing from the per-window rows", rep.TriggerWindow)
	}
	if problems == 0 {
		fmt.Printf("check %s: ok (trigger window %d, repartitioned, within bound)\n", path, rep.TriggerWindow)
	}
	return problems
}

// writeBench emits one experiment's BENCH_<name>.json: the figure
// series (deterministic) plus the wall-clock cost of producing them.
func writeBench(dir, name string, cfg qap.ExperimentConfig, wall time.Duration, figs ...*qap.Figure) {
	rep := &obs.BenchReport{
		SchemaVersion: obs.SchemaVersion,
		Name:          name,
		Config: obs.BenchConfig{
			RatePPS:     cfg.Trace.PacketsPerSec,
			DurationSec: cfg.Trace.DurationSec,
			MaxHosts:    cfg.MaxHosts,
			Seed:        cfg.Trace.Seed,
			Workers:     cfg.Workers,
		},
		WallNanos: int64(wall),
	}
	runs := 0
	for _, f := range figs {
		bf := obs.BenchFigure{ID: f.ID, Title: f.Title, Metric: f.Metric, Hosts: f.Hosts}
		for _, s := range f.Series {
			bf.Series = append(bf.Series, obs.BenchSeries{Name: s.Name, Values: s.Values})
		}
		rep.Figures = append(rep.Figures, bf)
	}
	// The CPU and network figures of one experiment come from the same
	// sweep, so the run count is one figure's series x cluster sizes.
	if len(figs) > 0 {
		runs = len(figs[0].Series) * len(figs[0].Hosts)
	}
	if sec := wall.Seconds(); sec > 0 {
		packets := float64(runs) * float64(cfg.Trace.PacketsPerSec) * float64(cfg.Trace.DurationSec)
		rep.SimulatedPacketsPerSec = packets / sec
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := obs.WriteJSON(path, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// execBatchSizes is the batch-size sweep of the hot-path benchmark;
// batch 1 is the tuple-at-a-time scalar baseline the gate ratios are
// computed against. execColumnarBatchSizes is the columnar sweep
// (columnar requires batching, so there is no columnar batch-1 row).
var (
	execBatchSizes         = []int{1, 64, 256, 1024}
	execColumnarBatchSizes = []int{64, 256, 1024}
)

// Gate thresholds for the batched path (ISSUE 5 acceptance): at least
// one batched row must clear both versus batch size 1. The columnar
// path (ISSUE 10) is held to a stricter bar against the same scalar
// baseline.
const (
	execGateMinSpeedup            = 2.0
	execGateMaxAllocRatio         = 0.25
	execGateMinColumnarSpeedup    = 5.0
	execGateMaxColumnarAllocRatio = 0.05
)

// runExec measures the batched-vs-scalar hot path on the Figure 8
// workload and optionally writes BENCH_exec.json. The trace uses the
// netgen defaults (the benchmark's shape) rather than the figure
// experiments' widened address mix, so the numbers line up with
// BenchmarkBatchedThroughput.
func runExec(seed int64, rate, duration, runs int, benchOut string) {
	trace := netgen.DefaultConfig()
	trace.Seed = seed
	trace.PacketsPerSec = rate
	trace.DurationSec = duration

	results, err := qap.BatchedThroughput(trace, execBatchSizes, runs)
	if err != nil {
		fatal(err)
	}
	colResults, err := qap.ColumnarThroughput(trace, execColumnarBatchSizes, runs)
	if err != nil {
		fatal(err)
	}
	results = append(results, colResults...)

	rep := &obs.ExecBenchReport{
		SchemaVersion: obs.SchemaVersion,
		Name:          "exec",
		Config: obs.BenchConfig{
			RatePPS:     rate,
			DurationSec: duration,
			MaxHosts:    1,
			Seed:        seed,
			Workers:     1,
		},
		RunsPerBatchSize:          runs,
		GateMinSpeedup:            execGateMinSpeedup,
		GateMaxAllocRatio:         execGateMaxAllocRatio,
		GateMinColumnarSpeedup:    execGateMinColumnarSpeedup,
		GateMaxColumnarAllocRatio: execGateMaxColumnarAllocRatio,
	}
	var scalar qap.BatchedThroughputResult
	for _, r := range results {
		if r.BatchSize == 1 && !r.Columnar {
			scalar = r
		}
	}
	fmt.Printf("Batched vs scalar execution (suspicious flows, %d rows, %d runs/batch):\n", scalar.Rows, runs)
	fmt.Printf("%8s  %9s  %12s  %12s  %14s  %12s  %9s  %9s\n",
		"batch", "path", "ns/run", "rows/s", "B/run", "allocs/run", "speedup", "allocs x")
	for _, r := range results {
		row := obs.ExecBenchRow{
			BatchSize:    r.BatchSize,
			Columnar:     r.Columnar,
			NanosPerRun:  r.NanosPerRun,
			RowsPerSec:   r.RowsPerSec,
			BytesPerRun:  r.BytesPerRun,
			AllocsPerRun: r.AllocsPerRun,
		}
		if scalar.RowsPerSec > 0 {
			row.SpeedupVsScalar = r.RowsPerSec / scalar.RowsPerSec
		}
		if scalar.AllocsPerRun > 0 {
			row.AllocRatioVsScalar = float64(r.AllocsPerRun) / float64(scalar.AllocsPerRun)
		}
		switch {
		case r.Columnar &&
			row.SpeedupVsScalar >= execGateMinColumnarSpeedup &&
			row.AllocRatioVsScalar <= execGateMaxColumnarAllocRatio:
			rep.ColumnarGateMet = true
		case !r.Columnar && r.BatchSize > 1 &&
			row.SpeedupVsScalar >= execGateMinSpeedup &&
			row.AllocRatioVsScalar <= execGateMaxAllocRatio:
			rep.GateMet = true
		}
		rep.Rows = append(rep.Rows, row)
		rep.RowsPerRun = r.Rows
		path := "batched"
		if r.Columnar {
			path = "columnar"
		} else if r.BatchSize == 1 {
			path = "scalar"
		}
		fmt.Printf("%8d  %9s  %12d  %12.0f  %14d  %12d  %8.2fx  %8.3fx\n",
			r.BatchSize, path, r.NanosPerRun, r.RowsPerSec, r.BytesPerRun, r.AllocsPerRun,
			row.SpeedupVsScalar, row.AllocRatioVsScalar)
	}
	fmt.Printf("gate (>=%.1fx rows/s, <=%.2fx allocs vs batch=1): met=%v\n",
		execGateMinSpeedup, execGateMaxAllocRatio, rep.GateMet)
	fmt.Printf("columnar gate (>=%.1fx rows/s, <=%.2fx allocs vs batch=1): met=%v\n",
		execGateMinColumnarSpeedup, execGateMaxColumnarAllocRatio, rep.ColumnarGateMet)

	if benchOut != "" {
		path := filepath.Join(benchOut, "BENCH_exec.json")
		if err := obs.WriteJSON(path, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// runDrift executes the adaptive-repartitioning drift experiment and
// prints the static-vs-adaptive per-window comparison; with benchOut it
// also writes BENCH_drift.json.
func runDrift(seed int64, workers, batch int, benchOut string) {
	sc := qap.DefaultDriftScenario()
	sc.Trace.Seed = seed
	sc.Workers = workers
	sc.BatchSize = batch
	rep, ares, err := qap.RunDriftExperiment(sc)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Adaptive repartitioning under drift (window %ds, trigger %.2fx bound):\n",
		rep.LoadWindowSec, rep.TriggerFactor)
	fmt.Printf("  initial set %s (bound %.0f B/s)\n", rep.InitialSet, rep.Bound)
	if rep.TriggerWindow < 0 {
		fmt.Println("  trigger never fired")
	} else {
		fmt.Printf("  trigger: window %d, measured %.0f B/s; switch at t=%ds\n",
			rep.TriggerWindow, rep.TriggerRate, rep.SwitchTimeSec)
		fmt.Printf("  final set %s (refreshed bound %.0f B/s), repartitioned=%v\n",
			rep.FinalSet, rep.NewBound, rep.Repartitioned)
		fmt.Printf("  post-switch peak %.0f B/s, within bound: %v\n",
			rep.PostSwitchPeakBps, rep.WithinBoundAfterSwitch)
	}
	fmt.Printf("%8s  %8s  %14s  %14s  %s\n", "window", "t (s)", "static B/s", "adaptive B/s", "set")
	for _, row := range rep.Rows {
		set := rep.InitialSet
		if row.AdaptiveUsesFinalSet {
			set = rep.FinalSet
		}
		fmt.Printf("%8d  %8d  %14.0f  %14.0f  %s\n",
			row.Window, row.StartSec, row.StaticMaxHostBps, row.AdaptiveMaxHostBps, set)
	}
	_ = ares

	if benchOut != "" {
		path := filepath.Join(benchOut, "BENCH_drift.json")
		if err := obs.WriteJSON(path, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-bench:", err)
	os.Exit(1)
}
