// Package qap reproduces "Query-Aware Partitioning for Monitoring
// Massive Network Data Streams" (Johnson, Muthukrishnan, Shkapenyuk,
// Spatscheck, 2008): a query-analysis framework that infers the
// optimal way to partition a high-rate network stream for a whole set
// of continuous GSQL queries, and a partition-aware distributed query
// optimizer that rewrites plans to exploit whatever partitioning the
// splitter hardware provides.
//
// The typical flow:
//
//	sys, _ := qap.Load(netgen.SchemaDDL, queryText)
//	analysis, _ := sys.Analyze(nil)          // recommended partitioning
//	dep, _ := sys.Deploy(qap.DeployConfig{   // distributed plan + cluster
//	    Hosts: 4, Partitioning: analysis.Best,
//	})
//	res, _ := dep.Run("TCP", trace.Packets)  // outputs + load metrics
package qap

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qap/internal/cluster"
	"qap/internal/core"
	"qap/internal/exec"
	"qap/internal/gsql"
	"qap/internal/lint"
	"qap/internal/netgen"
	"qap/internal/obs"
	"qap/internal/obs/trace"
	"qap/internal/optimizer"
	"qap/internal/plan"
	"qap/internal/schema"
	"qap/internal/sqlval"
)

// Re-exported core types: partitioning sets and analysis results.
type (
	// Set is a partitioning set: scalar expressions over base stream
	// attributes that the splitter hashes tuples by.
	Set = core.Set
	// Elem is one element of a partitioning set.
	Elem = core.Elem
	// Requirement is one query node's compatibility requirement.
	Requirement = core.Requirement
	// Analysis is the result of the optimal-partitioning search.
	Analysis = core.Result
	// StreamSets assigns a distinct partitioning set per source
	// stream (the paper's future-work extension).
	StreamSets = core.StreamSets
	// PerStreamAnalysis is the result of the per-stream search.
	PerStreamAnalysis = core.PerStreamResult
	// Stats supplies workload statistics to the cost model.
	Stats = core.Stats
	// StaticStats is a configurable Stats implementation.
	StaticStats = core.StaticStats
	// Tuple is a result row.
	Tuple = exec.Tuple
	// Metrics is the per-host load accounting of a run.
	Metrics = cluster.Metrics
	// CostConfig sets the simulator's CPU cost model.
	CostConfig = cluster.CostConfig
	// SearchOptions configures the partitioning search (state cap,
	// worker pool size).
	SearchOptions = core.Options
	// Scope selects partial-aggregation granularity.
	Scope = optimizer.Scope
	// Value is a runtime SQL value.
	Value = sqlval.Value
	// RunReport is the machine-readable record of a run: plan summary,
	// per-operator stats, per-host metrics, timing. Everything outside
	// its Timing section is deterministic.
	RunReport = obs.RunReport
	// OpStats holds one physical operator's deterministic counters.
	OpStats = obs.OpStats
	// SearchStats instruments the partitioning search.
	SearchStats = obs.SearchStats
	// SearchReport is the search section of a RunReport.
	SearchReport = obs.SearchReport
	// LoadWindow is one closed window of a monitored run's load
	// series (per-host counter deltas over a slice of trace time).
	LoadWindow = obs.LoadWindow
	// HostWindow is one host's counter deltas within a LoadWindow.
	HostWindow = obs.HostWindow
	// Telemetry is the live HTTP observation surface: the run report's
	// Prometheus rendering at /metrics, expvar at /debug/vars, and
	// net/http/pprof under /debug/pprof/.
	Telemetry = obs.Telemetry
)

// NewTelemetry builds an empty telemetry surface; publish a run with
// its SetReport and serve it with its Serve or Handler.
func NewTelemetry() *Telemetry { return obs.NewTelemetry() }

// Partial-aggregation scopes (see optimizer.Scope).
const (
	ScopePartition = optimizer.ScopePartition
	ScopeHost      = optimizer.ScopeHost
)

// ParseSet parses a partitioning set such as "srcIP & 0xFFF0, destIP".
func ParseSet(src string) (Set, error) { return core.ParseSet(src) }

// MustParseSet is ParseSet that panics on error.
func MustParseSet(src string) Set { return core.MustParseSet(src) }

// NewStats returns workload statistics with heuristic defaults.
func NewStats() *StaticStats { return core.NewStaticStats() }

// Reconcile computes the largest partitioning set compatible with
// queries requiring either input set (paper Section 4.1).
func Reconcile(a, b Set) Set { return core.Reconcile(a, b) }

// System is a loaded schema plus an analyzed query set.
type System struct {
	Catalog *schema.Catalog
	Queries *gsql.QuerySet
	Graph   *plan.Graph
}

// Load parses stream DDL and a GSQL query set and builds the logical
// query DAG.
func Load(ddl, queries string) (*System, error) {
	cat, err := schema.Parse(ddl)
	if err != nil {
		return nil, err
	}
	qs, err := gsql.ParseQuerySet(queries)
	if err != nil {
		return nil, err
	}
	g, err := plan.Build(cat, qs)
	if err != nil {
		return nil, err
	}
	return &System{Catalog: cat, Queries: qs, Graph: g}, nil
}

// MustLoad is Load that panics on error, for examples and tests with
// constant inputs.
func MustLoad(ddl, queries string) *System {
	s, err := Load(ddl, queries)
	if err != nil {
		panic(err)
	}
	return s
}

// DefaultSearchOptions returns the standard search options.
func DefaultSearchOptions() SearchOptions { return core.DefaultOptions() }

// Analyze runs the paper's Section 4 algorithm: infer every node's
// compatible partitioning set, reconcile them, and search for the set
// minimizing the maximum per-node network cost. A nil stats uses the
// heuristic defaults.
func (s *System) Analyze(stats Stats) (*Analysis, error) {
	return s.AnalyzeWith(stats, DefaultSearchOptions())
}

// AnalyzeWith is Analyze with explicit search options; SearchOptions.
// Workers > 1 fans the candidate cost evaluations across a worker pool
// without changing the result.
func (s *System) AnalyzeWith(stats Stats, opts SearchOptions) (*Analysis, error) {
	return core.Optimize(s.Graph, stats, opts)
}

// AnalyzePerStream runs the per-stream variant of the analysis: each
// source stream gets its own partitioning set, so queries over
// different streams no longer conflict, and cross-stream equi-joins
// are satisfied by position-aligned sets.
func (s *System) AnalyzePerStream(stats Stats) (*PerStreamAnalysis, error) {
	return core.OptimizePerStream(s.Graph, stats, core.DefaultOptions())
}

// Requirements returns every query's inferred partitioning
// requirement, keyed by query name.
func (s *System) Requirements() map[string]Requirement {
	out := make(map[string]Requirement)
	for n, r := range core.Requirements(s.Graph) { //qap:allow maprange -- map-to-map copy, order-insensitive
		if n.Kind != plan.KindSource {
			out[n.QueryName] = r
		}
	}
	return out
}

// Compatible reports whether partitioning by ps is compatible with the
// named query (paper Section 3.4).
func (s *System) Compatible(ps Set, query string) (bool, error) {
	n, ok := s.Graph.Node(query)
	if !ok {
		return false, fmt.Errorf("qap: no such query %q", query)
	}
	return core.Compatible(ps, n), nil
}

// PlanCost evaluates the Section 4.2.1 cost model: the maximum bytes
// per second any single node receives under partitioning ps.
func (s *System) PlanCost(ps Set, stats Stats) float64 {
	return core.NewCostModel(s.Graph, stats).PlanCost(ps)
}

// PlanTotalCost evaluates the sum-of-nodes variant of the Section
// 4.2.1 cost model: total bytes per second shipped under partitioning
// ps. It upper-bounds the network ingress of any single host in a
// deployment of ps without partial aggregation, which is what the
// load-bound monitor compares measured rates against.
func (s *System) PlanTotalCost(ps Set, stats Stats) float64 {
	return core.NewCostModel(s.Graph, stats).TotalCost(ps)
}

// Reanalyze re-runs the partitioning decision under refreshed
// statistics by re-costing a prior analysis's candidate list — the
// Section 4.2.2 enumeration depends only on the query graph, so it is
// skipped. The result is identical to a fresh Analyze under the same
// stats; a nil prior falls back to one.
func (s *System) Reanalyze(prior *Analysis, stats Stats) (*Analysis, error) {
	return core.Reoptimize(s.Graph, prior, stats, DefaultSearchOptions())
}

// LintReport is the static analyzer's diagnostic report.
type LintReport = lint.Report

// Lint runs the static semantic analyzer over the loaded query set:
// per-node partitioning-compatibility explanations, window alignment,
// HAVING placement, holistic aggregates, dead columns, and outer-join
// NULL-padding hazards. A non-nil analysis explains its recommended
// set first; source labels the input in the report.
func (s *System) Lint(analysis *Analysis, source string) *LintReport {
	var opts lint.Options
	opts.Source = source
	opts.Analysis = analysis
	return lint.Run(s.Graph, s.Queries, opts)
}

// LintLoadError wraps a Load failure as a lint report with a single
// QAP000 diagnostic, so tooling renders parse and build errors in the
// same format as rule findings.
func LintLoadError(source string, err error) *LintReport {
	return lint.LoadErrorReport(source, err)
}

// DeployConfig selects the cluster shape and strategy.
type DeployConfig struct {
	// Hosts is the cluster size; PartitionsPerHost the splitter
	// fan-out per host (the paper uses 2 for dual-core machines).
	Hosts, PartitionsPerHost int
	// Partitioning is the splitter's hash set; empty/nil partitions
	// round robin (query-agnostic).
	Partitioning Set
	// PerStream, when non-nil, partitions each source stream by its
	// own set and takes precedence over Partitioning.
	PerStream StreamSets
	// DisablePartialAgg turns off the sub/super-aggregate rewrite for
	// incompatible aggregations.
	DisablePartialAgg bool
	// PartialScope selects per-partition (naive) or per-host
	// (optimized) pre-aggregation; the default is per host.
	PartialScope Scope
	// Costs configures the CPU accounting; zero value uses defaults.
	Costs CostConfig
	// Params binds #NAME# query parameters.
	Params map[string]Value
	// Workers selects the simulator's execution engine: <= 1 runs the
	// sequential engine; > 1 runs one worker goroutine per simulated
	// host (capped at Hosts) plus a splitter and a central replay
	// goroutine. Results are byte-identical either way.
	Workers int
	// BatchSize selects the execution hot path: 0 (the default) runs
	// batch-at-a-time with the engine's default batch size, 1 forces
	// the legacy tuple-at-a-time scalar path, and larger values batch
	// up to that many tuples per operator call. Canonical results are
	// identical at every batch size; see cluster.RunConfig.BatchSize.
	BatchSize int
	// Columnar selects the columnar batch execution path: batched
	// drivers deliver each round's tuples as typed column vectors and
	// operators run compiled column kernels where the plan supports
	// them. Requires batching (ignored at BatchSize 1); canonical
	// results, stats, and traces are byte-identical to the row paths.
	// See cluster.RunConfig.Columnar.
	Columnar bool
	// CollectStats enables the per-operator observability layer:
	// RunResult.OpStats and RunResult.Report() are populated. The
	// counters are sharded like the host metrics, so they too are
	// bit-equal for any worker count; when false no instrumentation is
	// installed and the run is as fast as before the layer existed.
	CollectStats bool
	// LoadWindowSec enables online load monitoring: per-host counter
	// deltas are sampled every LoadWindowSec seconds of trace time
	// into RunResult.LoadSeries (independent of CollectStats). The
	// series is bit-equal for any Workers or BatchSize value; 0
	// disables monitoring.
	LoadWindowSec int
	// Trace enables deterministic causal tracing into RunResult.Trace:
	// structured events keyed by round, window, host, and operator
	// (never wall clock), whose canonical JSONL export is
	// byte-identical for any Workers or BatchSize value. Implies
	// CollectStats; when LoadWindowSec is 0 window events default to
	// cluster.DefaultTraceWindowSec pacing. Nil (the default) disables
	// tracing; the run is never perturbed either way.
	Trace *RunTraceConfig
	// Engine selects the cluster backend: EngineSim ("" or "sim") runs
	// the in-process simulator; EngineLive ("live") runs each leaf host
	// as a node behind a real TCP listener — in-process goroutine nodes
	// by default, separate qap-node processes via Live.Nodes — with the
	// splitter shipping serialized tuple batches over persistent
	// connections. Canonical results, OpStats, monitoring series, and
	// trace bytes are byte-identical across backends.
	Engine string
	// Live tunes the live backend (addresses, timeouts, credit
	// windows, fault injection); ignored by the simulator.
	Live LiveOptions
	// DriveTimeout bounds every blocking receive in the drive loops of
	// both backends, so a wedged worker or node fails the run with a
	// positioned error instead of hanging. 0 leaves the simulator
	// unguarded and the live backend on its transport timeout.
	DriveTimeout time.Duration
}

// The DeployConfig.Engine values.
const (
	// EngineSim is the in-process simulator (the default).
	EngineSim = cluster.EngineSim
	// EngineLive is the live TCP backend.
	EngineLive = cluster.EngineLive
)

// LiveOptions tunes the live TCP backend; see cluster.LiveConfig.
type LiveOptions = cluster.LiveConfig

// Deployment is a compiled distributed plan ready to run traces.
type Deployment struct {
	sys    *System
	plan   *optimizer.Plan
	cfg    DeployConfig
	params exec.Params

	// hintMu guards sizeHints: per-operator group high-water marks
	// harvested from completed runs and fed to the next run's engine as
	// a warm-start (pre-sized hash state skips the growth chains a
	// fresh instantiation otherwise re-pays). Purely a performance
	// carry-over — canonical outputs never depend on it.
	hintMu    sync.Mutex
	sizeHints map[int]int
}

// Deploy builds the partition-aware distributed plan (Section 5) for
// the configured cluster and partitioning.
func (s *System) Deploy(cfg DeployConfig) (*Deployment, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1
	}
	if cfg.PartitionsPerHost <= 0 {
		cfg.PartitionsPerHost = 2
	}
	p, err := optimizer.Build(s.Graph, cfg.Partitioning, optimizer.Options{
		Hosts:             cfg.Hosts,
		PartitionsPerHost: cfg.PartitionsPerHost,
		PartialAgg:        !cfg.DisablePartialAgg,
		PartialScope:      cfg.PartialScope,
		StreamSets:        cfg.PerStream,
	})
	if err != nil {
		return nil, err
	}
	params := make(exec.Params, len(cfg.Params))
	for k, v := range cfg.Params { //qap:allow maprange -- map-to-map copy, order-insensitive
		params[k] = v
	}
	return &Deployment{sys: s, plan: p, cfg: cfg, params: params}, nil
}

// PlanString renders the physical plan for inspection.
func (d *Deployment) PlanString() string { return d.plan.String() }

// PlanDOT renders the physical plan as Graphviz DOT, clustered by
// host with network edges highlighted.
func (d *Deployment) PlanDOT() string { return d.plan.DOT() }

// GraphDOT renders the logical query DAG as Graphviz DOT.
func (s *System) GraphDOT() string { return s.Graph.DOT() }

// RunResult is one run's outputs and metrics.
type RunResult struct {
	// Outputs maps each root query to its result rows.
	Outputs map[string][]Tuple
	// NodeRows counts every logical query node's complete output rows
	// (intermediate nodes included), the input to MeasureStats.
	NodeRows map[string]int64
	// Metrics is the per-host CPU and network accounting.
	Metrics *Metrics
	// OpStats maps physical operator IDs to their counters; nil unless
	// DeployConfig.CollectStats was set.
	OpStats map[int]*OpStats
	// LoadSeries is the online monitoring output: per-host counter
	// deltas per DeployConfig.LoadWindowSec of trace time. Nil unless
	// monitoring was enabled.
	LoadSeries []LoadWindow
	// Trace is the run's causal trace; nil unless DeployConfig.Trace
	// was set. Its CanonicalJSONL is byte-identical for any
	// Workers/BatchSize, and HostLoadSeries rebuilds LoadSeries from
	// its host_window events — exact on every integer counter, with
	// the float CPUUnits quarantined (left zero).
	Trace *RunTrace

	report *RunReport
}

// Report returns the run's machine-readable report, or nil unless
// DeployConfig.CollectStats was set. Strip the report's Timing section
// (Canonical) and the JSON is byte-identical for any worker count.
func (r *RunResult) Report() *RunReport { return r.report }

// OutputNames returns the result's query names in sorted order — the
// canonical iteration order for printing Outputs (Go map order is
// random and must not leak into tool output).
func (r *RunResult) OutputNames() []string {
	names := make([]string, 0, len(r.Outputs))
	for name := range r.Outputs { //qap:allow maprange -- names collected then sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Run streams a packet trace through a fresh instantiation of the
// deployment. Each call starts from clean operator state, so a
// Deployment can run many traces.
func (d *Deployment) Run(stream string, packets []netgen.Packet) (*RunResult, error) {
	return d.RunStreams(map[string][]netgen.Packet{stream: packets})
}

// RunStreams feeds one trace per source stream, interleaved in global
// time order, for query sets that join several input streams.
func (d *Deployment) RunStreams(streams map[string][]netgen.Packet) (*RunResult, error) {
	r, err := d.newRunner()
	if err != nil {
		return nil, err
	}
	res, err := r.RunStreams(streams)
	if err != nil {
		return nil, err
	}
	d.mergeSizeHints(res.SizeHints)
	return &RunResult{
		Outputs:    res.Outputs,
		NodeRows:   res.NodeRows,
		Metrics:    res.Metrics,
		OpStats:    res.OpStats,
		LoadSeries: res.LoadSeries,
		Trace:      res.Trace,
		report:     res.Report,
	}, nil
}

// newRunner instantiates the deployment's cluster runner with fresh
// operator state.
func (d *Deployment) newRunner() (*cluster.Runner, error) {
	costs := d.cfg.Costs
	if costs.ScanCost == 0 && costs.RemoteCost == 0 {
		def := cluster.DefaultCosts()
		def.CapacityPerSec = costs.CapacityPerSec
		costs = def
	}
	return cluster.NewRunner(d.plan, cluster.RunConfig{
		Costs:         costs,
		Params:        d.params,
		Workers:       d.cfg.Workers,
		BatchSize:     d.cfg.BatchSize,
		Columnar:      d.cfg.Columnar,
		SizeHints:     d.copySizeHints(),
		CollectStats:  d.cfg.CollectStats,
		LoadWindowSec: d.cfg.LoadWindowSec,
		Trace:         d.cfg.Trace,
		Engine:        d.cfg.Engine,
		Live:          d.cfg.Live,
		DriveTimeout:  d.cfg.DriveTimeout,
	})
}

// copySizeHints snapshots the warm-start hints for a new runner (the
// runner must not share a map a concurrent Run could be merging into).
func (d *Deployment) copySizeHints() map[int]int {
	d.hintMu.Lock()
	defer d.hintMu.Unlock()
	if len(d.sizeHints) == 0 {
		return nil
	}
	cp := make(map[int]int, len(d.sizeHints))
	for id, n := range d.sizeHints { //qap:allow maprange -- map-to-map copy, order-insensitive
		cp[id] = n
	}
	return cp
}

// mergeSizeHints folds a finished run's group high-water marks into
// the deployment's warm-start hints (max per operator).
func (d *Deployment) mergeSizeHints(hints map[int]int) {
	if len(hints) == 0 {
		return
	}
	d.hintMu.Lock()
	defer d.hintMu.Unlock()
	if d.sizeHints == nil {
		d.sizeHints = make(map[int]int, len(hints))
	}
	for id, n := range hints { //qap:allow maprange -- max-merge, order-insensitive
		if n > d.sizeHints[id] {
			d.sizeHints[id] = n
		}
	}
}

// ServeLiveHost serves one leaf host of this deployment as a live TCP
// node on addr, for running hosts as separate OS processes
// (cmd/qap-node). The deployment must be built with Engine EngineLive
// and the exact configuration the splitter process uses — the
// handshake's deployment fingerprint rejects anything else. ready,
// when non-nil, receives the bound listen address before serving.
// Blocks until the host's work is complete and acknowledged.
func (d *Deployment) ServeLiveHost(host int, addr string, ready func(addr string)) error {
	r, err := d.newRunner()
	if err != nil {
		return err
	}
	return r.ServeLiveHost(host, addr, ready)
}

// Uint wraps a uint64 as a parameter value.
func Uint(v uint64) Value { return sqlval.Uint(v) }

// Str wraps a string as a parameter value.
func Str(s string) Value { return sqlval.Str(s) }

// Trace generation re-exports, so applications can drive deployments
// with synthetic traffic through the public API alone.
type (
	// TraceConfig controls synthetic trace generation.
	TraceConfig = netgen.Config
	// Trace is a generated time-ordered packet sequence.
	Trace = netgen.Trace
	// Packet is one captured packet.
	Packet = netgen.Packet
)

// Causal-trace re-exports ("Run" prefixed: TraceConfig already names
// the packet-trace generator configuration above).
type (
	// RunTrace is a run's deterministic causal trace: the event
	// sequence DeployConfig.Trace captures.
	RunTrace = trace.Trace
	// RunTraceConfig configures causal trace capture (full run or
	// bounded flight-recorder ring).
	RunTraceConfig = trace.Config
	// TraceEvent is one causal trace record.
	TraceEvent = trace.Event
)

// TCPSchemaDDL is the packet stream schema generated traces conform to.
const TCPSchemaDDL = netgen.SchemaDDL

// AttackPattern is the OR of TCP flags marking a suspicious flow in
// generated traces (bind it to the #PATTERN# parameter).
const AttackPattern = netgen.AttackPattern

// DefaultTraceConfig returns a laptop-scale trace configuration.
func DefaultTraceConfig() TraceConfig { return netgen.DefaultConfig() }

// GenerateTrace builds a deterministic synthetic packet trace.
func GenerateTrace(cfg TraceConfig) *Trace { return netgen.Generate(cfg) }
