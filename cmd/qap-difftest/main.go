// Command qap-difftest runs the randomized differential tester from
// the command line: generate seeded workloads, run the equivalence
// oracle over each, and print PASS/FAIL per seed. On failure the
// output is a complete, minimized repro — the seed, the trace
// configuration literal, the generated query text, and the command
// that re-runs exactly that workload.
//
// Usage:
//
//	qap-difftest [-seed n] [-n count] [-hosts list] [-workers list]
//	             [-batches list] [-live] [-columnar] [-v]
//
// Examples:
//
//	qap-difftest -n 50                 # seeds 0..49
//	qap-difftest -seed 1337            # reproduce one seed
//	qap-difftest -seed 7 -v            # verbose: show the workload too
//	qap-difftest -n 5 -live            # include the live TCP backend axis
//	qap-difftest -n 5 -columnar        # include the columnar execution axis
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qap/internal/difftest"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	seed     int64
	n        int64
	hosts    string
	workers  string
	batches  string
	live     bool
	columnar bool
	verbose  bool
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.Int64Var(&f.seed, "seed", -1, "check exactly this workload seed (repro mode)")
	fs.Int64Var(&f.n, "n", 20, "number of seeds to check, starting at 0 (ignored with -seed)")
	fs.StringVar(&f.hosts, "hosts", "1,2,4", "comma-separated host counts to sweep")
	fs.StringVar(&f.workers, "workers", "1,4", "comma-separated engine worker counts to sweep (results are identical for any value)")
	fs.StringVar(&f.batches, "batches", "1,7,64,1024", "comma-separated operator batch sizes for the batched-equivalence section (results are identical for any value)")
	fs.BoolVar(&f.live, "live", false, "add the live-vs-sim axis: re-run every cell on the live TCP backend and inject transport faults")
	fs.BoolVar(&f.columnar, "columnar", false, "add the columnar axis: re-run the workers × batch matrix on the columnar engine path and compare bytes against the scalar reference")
	fs.BoolVar(&f.verbose, "v", false, "print the generated workload for passing seeds too")
	return f
}

func main() {
	fl := defineFlags(flag.CommandLine)
	flag.Parse()
	seed, n := &fl.seed, &fl.n
	hosts, workers, batches, verbose := &fl.hosts, &fl.workers, &fl.batches, &fl.verbose

	opts := difftest.Options{
		Hosts:      parseInts(*hosts),
		Workers:    parseInts(*workers),
		BatchSizes: parseInts(*batches),
		Live:       fl.live,
		Columnar:   fl.columnar,
	}
	seeds := make([]int64, 0, *n)
	if *seed >= 0 {
		seeds = append(seeds, *seed)
	} else {
		for s := int64(0); s < *n; s++ {
			seeds = append(seeds, s)
		}
	}

	failed := 0
	for _, s := range seeds {
		rep, err := difftest.CheckSeed(s, opts)
		if err != nil {
			// The generator guarantees runnable workloads; a failure
			// here is itself a bug worth a repro.
			fmt.Printf("seed %d: ERROR (workload not runnable): %v\n", s, err)
			fmt.Printf("rerun: go run ./cmd/qap-difftest -seed %d\n", s)
			failed++
			continue
		}
		if rep.OK() {
			if *verbose {
				fmt.Print(rep)
				fmt.Printf("queries:\n%s\n", rep.Queries)
			} else {
				fmt.Printf("seed %d: PASS (%d configurations)\n", s, rep.Configs)
			}
			continue
		}
		fmt.Print(rep)
		failed++
	}
	if failed > 0 {
		fmt.Printf("%d of %d seeds FAILED\n", failed, len(seeds))
		os.Exit(1)
	}
	fmt.Printf("all %d seeds passed\n", len(seeds))
}

func parseInts(list string) []int {
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "qap-difftest: bad count %q in list\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
