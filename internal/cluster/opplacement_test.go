package cluster

import (
	"testing"

	"qap/internal/core"
	"qap/internal/optimizer"
)

// TestOperatorPlacementEquivalence checks the query-plan-partitioning
// baseline computes exactly the same results as the centralized and
// query-aware plans, and reproduces the paper's Section 1 claim: the
// host carrying the low-level aggregation stays near the centralized
// load while the query-aware plan's worst host drops far below it.
func TestOperatorPlacementEquivalence(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, complexSet)
	want := centralized(t, g, tr)

	p, err := optimizer.BuildOperatorPlacement(g, optimizer.Options{Hosts: 3, PartitionsPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(p, DefaultCosts(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run("TCP", tr.Packets)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range want.Outputs {
		sameOutputs(t, name, rows, got.Outputs[name])
	}

	maxUnits := func(res *Result) float64 {
		maxU := 0.0
		for _, h := range res.Metrics.Hosts {
			if h.CPUUnits > maxU {
				maxU = h.CPUUnits
			}
		}
		return maxU
	}
	central := maxUnits(want)
	opPlace := maxUnits(got)
	qa := maxUnits(runConfig(t, g, core.MustParseSet("srcIP"),
		optimizer.Options{Hosts: 3, PartitionsPerHost: 2, PartialAgg: true}, tr))

	// The operator-placement bottleneck host stays within ~2x of the
	// centralized load (it still ingests the whole stream, plus
	// forwarding overhead), while query-aware partitioning cuts the
	// worst host well below half of centralized.
	if opPlace < central/2 {
		t.Errorf("operator placement should not relieve the bottleneck: %f vs central %f", opPlace, central)
	}
	if qa >= central/2 {
		t.Errorf("query-aware should cut the worst host: %f vs central %f", qa, central)
	}
	if qa >= opPlace {
		t.Errorf("query-aware (%f) should beat operator placement (%f)", qa, opPlace)
	}
}
