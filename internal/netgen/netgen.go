// Package netgen generates synthetic, flow-structured TCP packet
// traces that stand in for the paper's one-hour AT&T data-center
// capture (Section 6): Zipf-skewed host popularity, geometric flow
// lengths, realistic TCP flag sequences, and a configurable fraction
// of "suspicious" flows whose OR-ed flags match an attack pattern (the
// Section 6.1 workload filters those with HAVING OR_AGGR(flags) =
// pattern). Generation is fully deterministic for a given Config.
package netgen

import (
	"fmt"
	"math"
	"math/rand" //qap:allow walltime -- generator is explicitly seeded per trace
	"sort"

	"qap/internal/exec"
	"qap/internal/sqlval"
)

// TCP flag bits.
const (
	FlagFIN uint64 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// AttackPattern is the OR of flags that marks a suspicious flow (a
// SYN/RST/URG mix that never occurs in a well-formed TCP session, for
// which the OR is FIN|SYN|PSH|ACK).
const AttackPattern = FlagSYN | FlagRST | FlagURG

// NormalPattern is the OR of flags of a complete well-formed flow.
const NormalPattern = FlagFIN | FlagSYN | FlagPSH | FlagACK

// SchemaDDL is the stream definition traces conform to; seq is the
// packet's position within its flow (TCP sequence stand-in).
const SchemaDDL = `TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)`

// Packet is one captured packet.
type Packet struct {
	Time     uint64 // seconds since trace start
	SrcIP    uint64
	DestIP   uint64
	SrcPort  uint64
	DestPort uint64
	Len      uint64
	Flags    uint64
	Seq      uint64 // position within the flow
}

// Tuple renders the packet in SchemaDDL column order.
func (p Packet) Tuple() exec.Tuple {
	return exec.Tuple{
		sqlval.Uint(p.Time), sqlval.Uint(p.SrcIP), sqlval.Uint(p.DestIP),
		sqlval.Uint(p.SrcPort), sqlval.Uint(p.DestPort),
		sqlval.Uint(p.Len), sqlval.Uint(p.Flags), sqlval.Uint(p.Seq),
	}
}

// TupleCols is the number of values Tuple and AppendTuple produce.
const TupleCols = 8

// AppendTuple materializes the packet's tuple into buf's spare
// capacity and returns the grown buffer plus the tuple, which is
// capacity-clamped so later appends cannot bleed into it. Batch
// drivers carve many tuples out of one shared backing slab this way
// instead of allocating one array per packet (the slab must not be
// recycled: operators may retain the tuples).
func (p Packet) AppendTuple(buf []sqlval.Value) ([]sqlval.Value, exec.Tuple) {
	n := len(buf)
	buf = append(buf,
		sqlval.Uint(p.Time), sqlval.Uint(p.SrcIP), sqlval.Uint(p.DestIP),
		sqlval.Uint(p.SrcPort), sqlval.Uint(p.DestPort),
		sqlval.Uint(p.Len), sqlval.Uint(p.Flags), sqlval.Uint(p.Seq))
	return buf, exec.Tuple(buf[n:len(buf):len(buf)])
}

// AppendCols appends the packet's values to cb's eight all-uint
// columns, in exactly the SchemaDDL order Tuple and AppendTuple
// produce. An empty (or Reset) batch is shaped on first use; column
// capacity is reused across rounds, so the columnar drivers refill
// recycled batches without allocating.
//
//qap:hot
func (p Packet) AppendCols(cb *exec.ColBatch) {
	if len(cb.Cols) != TupleCols {
		if cap(cb.Cols) < TupleCols {
			cb.Cols = make([]exec.ColVec, TupleCols) //qap:allow hotalloc -- batch shaped once, then recycled
		}
		cb.Cols = cb.Cols[:TupleCols]
		for i := range cb.Cols {
			cb.Cols[i] = exec.ColVec{Kind: sqlval.KindUint, U64: cb.Cols[i].U64[:0]}
		}
	}
	cb.Cols[0].U64 = append(cb.Cols[0].U64, p.Time)
	cb.Cols[1].U64 = append(cb.Cols[1].U64, p.SrcIP)
	cb.Cols[2].U64 = append(cb.Cols[2].U64, p.DestIP)
	cb.Cols[3].U64 = append(cb.Cols[3].U64, p.SrcPort)
	cb.Cols[4].U64 = append(cb.Cols[4].U64, p.DestPort)
	cb.Cols[5].U64 = append(cb.Cols[5].U64, p.Len)
	cb.Cols[6].U64 = append(cb.Cols[6].U64, p.Flags)
	cb.Cols[7].U64 = append(cb.Cols[7].U64, p.Seq)
	cb.Len++
}

// Config controls trace generation. Every field is required to be
// valid (see Validate); defaults live only in DefaultConfig, so a
// config built from user input is never quietly rewritten.
type Config struct {
	Seed        int64
	DurationSec int
	// PacketsPerSec is the average aggregate packet rate.
	PacketsPerSec int
	// SrcHosts and DstHosts are the distinct address pool sizes.
	SrcHosts, DstHosts int
	// ZipfS is the host-popularity skew (> 1; larger = more skew).
	ZipfS float64
	// MeanFlowPackets is the average packets per flow (geometric).
	MeanFlowPackets float64
	// AttackFraction of flows are suspicious (default 5%, matching
	// the paper's trace).
	AttackFraction float64
	// Ports is the ephemeral port range size.
	Ports int
	// Phases, when non-empty, turns the trace into a drifting
	// workload: the phases play back to back, each inheriting the
	// base config where a phase field is zero. With phases the base
	// DurationSec is ignored and the trace lasts TotalDurationSec().
	Phases []Phase
}

// Phase is one segment of a drifting trace. DurationSec is required;
// every other field overrides the base Config within the phase, with
// zero meaning "inherit the base value". (Consequently a phase cannot
// reset AttackFraction to exactly zero; use a negligible positive
// fraction for an attack-free phase over an attack-bearing base.)
type Phase struct {
	DurationSec     int
	PacketsPerSec   int
	SrcHosts        int
	DstHosts        int
	ZipfS           float64
	MeanFlowPackets float64
	AttackFraction  float64
}

// TotalDurationSec is the trace length in seconds: the sum of phase
// durations, or DurationSec when no phases are configured.
func (c Config) TotalDurationSec() int {
	if len(c.Phases) == 0 {
		return c.DurationSec
	}
	total := 0
	for _, p := range c.Phases {
		total += p.DurationSec
	}
	return total
}

// phaseConfig resolves one phase against the base config: zero phase
// fields inherit, non-zero fields override.
func (c Config) phaseConfig(p Phase) Config {
	eff := c
	eff.Phases = nil
	eff.DurationSec = p.DurationSec
	if p.PacketsPerSec != 0 {
		eff.PacketsPerSec = p.PacketsPerSec
	}
	if p.SrcHosts != 0 {
		eff.SrcHosts = p.SrcHosts
	}
	if p.DstHosts != 0 {
		eff.DstHosts = p.DstHosts
	}
	if p.ZipfS != 0 {
		eff.ZipfS = p.ZipfS
	}
	if p.MeanFlowPackets != 0 {
		eff.MeanFlowPackets = p.MeanFlowPackets
	}
	if p.AttackFraction != 0 {
		eff.AttackFraction = p.AttackFraction
	}
	return eff
}

// Validate checks the configuration and returns an error naming the
// first offending field. Zero-valued required fields are errors, not
// defaults — start from DefaultConfig to get the paper's trace shape.
// CLIs and workload generators must call Validate on any config built
// from external input before handing it to Generate, which treats an
// invalid config as a programmer error and panics.
func (c Config) Validate() error {
	if err := validateFields(c, "Config", len(c.Phases) > 0); err != nil {
		return err
	}
	for i, p := range c.Phases {
		pos := fmt.Sprintf("Config.Phases[%d]", i)
		if err := validateFields(c.phaseConfig(p), pos, false); err != nil {
			return err
		}
	}
	return nil
}

// validateFields checks the scalar generation parameters of one
// resolved configuration (the base config or one phase's effective
// config). skipDuration suppresses the DurationSec check for a base
// config whose duration is superseded by phases.
func validateFields(c Config, pos string, skipDuration bool) error {
	if !skipDuration && c.DurationSec < 1 {
		return fmt.Errorf("netgen: %s.DurationSec = %d, need >= 1", pos, c.DurationSec)
	}
	if c.PacketsPerSec < 1 {
		return fmt.Errorf("netgen: %s.PacketsPerSec = %d, need >= 1", pos, c.PacketsPerSec)
	}
	if c.SrcHosts < 1 {
		return fmt.Errorf("netgen: %s.SrcHosts = %d, need >= 1", pos, c.SrcHosts)
	}
	if c.DstHosts < 1 {
		return fmt.Errorf("netgen: %s.DstHosts = %d, need >= 1", pos, c.DstHosts)
	}
	// The negated comparisons also catch NaN: rand.NewZipf returns nil
	// for s <= 1 (and misbehaves for non-finite s), which would panic
	// at the first draw.
	if !(c.ZipfS > 1) || math.IsInf(c.ZipfS, 0) {
		return fmt.Errorf("netgen: %s.ZipfS = %v, need a finite skew > 1", pos, c.ZipfS)
	}
	if !(c.MeanFlowPackets >= 1) || math.IsInf(c.MeanFlowPackets, 0) {
		return fmt.Errorf("netgen: %s.MeanFlowPackets = %v, need a finite mean >= 1", pos, c.MeanFlowPackets)
	}
	if !(c.AttackFraction >= 0 && c.AttackFraction <= 1) {
		return fmt.Errorf("netgen: %s.AttackFraction = %v, need a fraction in [0, 1]", pos, c.AttackFraction)
	}
	if c.Ports < 1 {
		return fmt.Errorf("netgen: %s.Ports = %d, need >= 1", pos, c.Ports)
	}
	return nil
}

// DefaultConfig mirrors the paper's trace shape at a laptop-friendly
// rate; the benches scale PacketsPerSec and DurationSec.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		DurationSec:     120,
		PacketsPerSec:   2000,
		SrcHosts:        2000,
		DstHosts:        1000,
		ZipfS:           1.2,
		MeanFlowPackets: 8,
		AttackFraction:  0.05,
		Ports:           4096,
	}
}

// Trace is a generated, time-ordered packet sequence.
type Trace struct {
	Packets []Packet
	Config  Config
	// AttackFlows and TotalFlows report the generated flow mix.
	AttackFlows, TotalFlows int
}

// Generate builds a deterministic trace for the configuration. The
// config must be valid: Generate panics with the Validate error
// otherwise (callers holding external input validate first).
//
// Phases share one random stream in order, so a multi-phase trace is
// deterministic as a whole, and a phase-free config generates exactly
// the same packets as before phases existed (single-phase playback
// degenerates to the original algorithm).
func Generate(cfg Config) *Trace {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Config: cfg}
	phases := cfg.Phases
	if len(phases) == 0 {
		phases = []Phase{{DurationSec: cfg.DurationSec}}
	}
	var packets []Packet
	offset := uint64(0)
	for _, p := range phases {
		eff := cfg.phaseConfig(p)
		// Zipf construction draws nothing from r, so per-phase
		// reconstruction keeps the phase-free stream unchanged.
		srcZipf := rand.NewZipf(r, eff.ZipfS, 1, uint64(eff.SrcHosts-1))
		dstZipf := rand.NewZipf(r, eff.ZipfS, 1, uint64(eff.DstHosts-1))

		budget := eff.DurationSec * eff.PacketsPerSec
		ph := make([]Packet, 0, budget+16)
		for len(ph) < budget {
			flow := makeFlow(r, srcZipf, dstZipf, eff)
			tr.TotalFlows++
			if flow.attack {
				tr.AttackFlows++
			}
			ph = append(ph, flow.packets...)
		}
		ph = ph[:budget]
		sort.SliceStable(ph, func(i, j int) bool { return ph[i].Time < ph[j].Time })
		if offset > 0 {
			for i := range ph {
				ph[i].Time += offset
			}
		}
		packets = append(packets, ph...)
		offset += uint64(eff.DurationSec)
	}
	tr.Packets = packets
	return tr
}

type flow struct {
	attack  bool
	packets []Packet
}

func makeFlow(r *rand.Rand, srcZipf, dstZipf *rand.Zipf, cfg Config) flow {
	var f flow
	f.attack = r.Float64() < cfg.AttackFraction
	src := 0x0A000000 + srcZipf.Uint64()              // 10.0.0.0/8
	dst := 0xC0A80000 + dstZipf.Uint64()              // 192.168.0.0/16-ish
	sport := uint64(1024 + r.Intn(cfg.Ports))         // ephemeral
	dport := []uint64{80, 443, 53, 22, 25}[r.Intn(5)] // services
	n := 1 + geometric(r, cfg.MeanFlowPackets)
	start := uint64(r.Intn(cfg.DurationSec))
	// Spread the flow's packets over up to ~30 seconds.
	span := n / 4
	if span > 30 {
		span = 30
	}
	for i := 0; i < n; i++ {
		t := start
		if span > 0 {
			t += uint64(r.Intn(span + 1))
		}
		if int(t) >= cfg.DurationSec {
			t = uint64(cfg.DurationSec - 1)
		}
		f.packets = append(f.packets, Packet{
			Time:     t,
			SrcIP:    src,
			DestIP:   dst,
			SrcPort:  sport,
			DestPort: dport,
			Len:      uint64(40 + r.Intn(1460)),
			Flags:    flowFlags(r, f.attack, i, n),
		})
	}
	sort.SliceStable(f.packets, func(a, b int) bool { return f.packets[a].Time < f.packets[b].Time })
	// Sequence numbers follow time order within the flow.
	for i := range f.packets {
		f.packets[i].Seq = uint64(i)
	}
	return f
}

// flowFlags produces per-packet flags such that the OR over a
// complete flow is exactly NormalPattern for well-formed flows and
// exactly AttackPattern for suspicious ones.
func flowFlags(r *rand.Rand, attack bool, i, n int) uint64 {
	if attack {
		switch {
		case i == 0:
			return FlagSYN | FlagURG
		case i == n-1:
			return FlagRST
		default:
			return []uint64{FlagSYN, FlagRST, FlagURG}[r.Intn(3)]
		}
	}
	switch {
	case n == 1:
		return FlagSYN | FlagACK | FlagPSH | FlagFIN
	case i == 0:
		return FlagSYN
	case i == n-1:
		return FlagFIN | FlagACK
	default:
		if r.Intn(2) == 0 {
			return FlagACK | FlagPSH
		}
		return FlagACK
	}
}

// geometric samples a geometric-ish count with the given mean. Means
// at or below one (including zero, negative, and NaN — the negated
// comparison catches all three) yield zero extra packets, so callers
// always get single-packet flows rather than a division by zero or an
// endless rejection loop.
func geometric(r *rand.Rand, mean float64) int {
	if !(mean > 1) {
		return 0
	}
	p := 1 / mean
	n := 0
	for r.Float64() > p && n < 10000 {
		n++
	}
	return n
}
