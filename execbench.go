package qap

import (
	"runtime"
	"time"

	"qap/internal/netgen"
)

// BatchedThroughputResult is one batch size's measurement from
// BatchedThroughput. Rates and allocation counts are wall-clock facts
// about the measuring host, not deterministic engine outputs; only the
// canonical query results (which BatchedThroughput discards) fall
// under the determinism contract.
type BatchedThroughputResult struct {
	// BatchSize is the DeployConfig.BatchSize the runs used
	// (1 = tuple-at-a-time scalar path).
	BatchSize int
	// Columnar marks a measurement of the columnar batch execution
	// path (DeployConfig.Columnar) rather than the row batched path.
	Columnar bool
	// Runs is the number of measured end-to-end trace replays.
	Runs int
	// Rows is the number of input packets per replay.
	Rows int
	// NanosPerRun is the mean wall time of one replay.
	NanosPerRun int64
	// RowsPerSec is input packets processed per wall second.
	RowsPerSec float64
	// BytesPerRun and AllocsPerRun are the mean heap bytes and heap
	// objects allocated per replay (runtime.MemStats deltas).
	BytesPerRun  uint64
	AllocsPerRun uint64
}

// BatchedThroughput measures the Figure 8 workload — the
// suspicious-flows aggregation on a single host, sequential engine —
// once per requested batch size, mirroring BenchmarkBatchedThroughput.
// Each batch size gets one unmeasured warm-up replay, then `runs`
// measured replays bracketed by runtime.ReadMemStats. The canonical
// output is identical at every batch size (the differential sweep
// enforces this); what varies, and what this reports, is the cost of
// producing it.
func BatchedThroughput(trace netgen.Config, batchSizes []int, runs int) ([]BatchedThroughputResult, error) {
	return measureThroughput(trace, batchSizes, runs, false)
}

// ColumnarThroughput measures the same workload over the columnar
// batch execution path (DeployConfig.Columnar): compiled column
// kernels over typed vectors instead of per-tuple closure evaluation.
// Batch size 1 is a meaningless request here (columnar requires
// batching and would silently measure the scalar path), so callers
// pass only sizes > 1 and compare against BatchedThroughput's scalar
// baseline.
func ColumnarThroughput(trace netgen.Config, batchSizes []int, runs int) ([]BatchedThroughputResult, error) {
	return measureThroughput(trace, batchSizes, runs, true)
}

func measureThroughput(trace netgen.Config, batchSizes []int, runs int, columnar bool) ([]BatchedThroughputResult, error) {
	if runs <= 0 {
		runs = 1
	}
	sys, err := Load(netgen.SchemaDDL, SuspiciousFlowsQuery)
	if err != nil {
		return nil, err
	}
	tr := netgen.Generate(trace)
	results := make([]BatchedThroughputResult, 0, len(batchSizes))
	for _, batch := range batchSizes {
		dep, err := sys.Deploy(DeployConfig{
			Hosts: 1, PartitionsPerHost: 1, Workers: 1, BatchSize: batch, Columnar: columnar,
			Params: map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
		})
		if err != nil {
			return nil, err
		}
		if _, err := dep.Run("TCP", tr.Packets); err != nil { // warm-up
			return nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		started := time.Now() //qap:allow walltime -- throughput measurement, quarantined in BENCH_exec.json
		for i := 0; i < runs; i++ {
			if _, err := dep.Run("TCP", tr.Packets); err != nil {
				return nil, err
			}
		}
		wall := time.Since(started) //qap:allow walltime -- throughput measurement, quarantined in BENCH_exec.json
		runtime.ReadMemStats(&after)
		res := BatchedThroughputResult{
			BatchSize:    batch,
			Columnar:     columnar,
			Runs:         runs,
			Rows:         len(tr.Packets),
			NanosPerRun:  wall.Nanoseconds() / int64(runs),
			BytesPerRun:  (after.TotalAlloc - before.TotalAlloc) / uint64(runs),
			AllocsPerRun: (after.Mallocs - before.Mallocs) / uint64(runs),
		}
		if sec := wall.Seconds(); sec > 0 {
			res.RowsPerSec = float64(len(tr.Packets)) * float64(runs) / sec
		}
		results = append(results, res)
	}
	return results, nil
}
