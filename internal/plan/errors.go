package plan

import (
	"fmt"

	"qap/internal/gsql"
)

// Error is a positioned plan build error. It carries the query being
// built and the source position of the offending construct in the
// query-set text, so builder errors and lint diagnostics render the
// same "line:col" positions.
type Error struct {
	Query string   // query being built; "" for set-level errors
	Pos   gsql.Pos // source position; zero when unknown
	Msg   string
}

// Error renders "plan: line:col: query NAME: msg", omitting the parts
// that are unknown.
func (e *Error) Error() string {
	switch {
	case e.Query != "" && e.Pos.IsValid():
		return fmt.Sprintf("plan: %s: query %s: %s", e.Pos, e.Query, e.Msg)
	case e.Query != "":
		return fmt.Sprintf("plan: query %s: %s", e.Query, e.Msg)
	case e.Pos.IsValid():
		return fmt.Sprintf("plan: %s: %s", e.Pos, e.Msg)
	default:
		return "plan: " + e.Msg
	}
}

// SourcePos exposes the position to gsql.ErrPos.
func (e *Error) SourcePos() gsql.Pos { return e.Pos }

// errf builds a positioned *Error.
func errf(query string, pos gsql.Pos, format string, args ...any) *Error {
	return &Error{Query: query, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
