package core

import (
	"fmt"
	"sort"
	"strings"

	"qap/internal/plan"
	"qap/internal/schema"
)

// Stats supplies the workload statistics the cost model needs (paper
// Section 4.2.1): per-stream tuple rates and per-node selectivity
// factors (expected output tuples per input tuple during one epoch).
type Stats interface {
	// StreamTupleRate returns the tuple arrival rate of a source
	// stream in tuples per second.
	StreamTupleRate(stream string) float64
	// Selectivity returns the node's selectivity factor.
	Selectivity(n *plan.Node) float64
}

// StaticStats is a Stats implementation backed by explicit values with
// heuristic defaults, suitable both for hand configuration and for
// loading measured statistics.
type StaticStats struct {
	// DefaultRate applies to streams absent from Rates (tuples/sec).
	DefaultRate float64
	// Rates maps lower-case stream names to tuple rates.
	Rates map[string]float64
	// Selectivities maps lower-case query names to measured
	// selectivity factors, overriding the heuristics.
	Selectivities map[string]float64
}

// NewStaticStats returns stats with the package defaults.
func NewStaticStats() *StaticStats {
	return &StaticStats{
		DefaultRate:   100000,
		Rates:         make(map[string]float64),
		Selectivities: make(map[string]float64),
	}
}

// SetRate records a stream's tuple rate.
func (s *StaticStats) SetRate(stream string, rate float64) {
	s.Rates[strings.ToLower(stream)] = rate
}

// SetSelectivity records a query node's measured selectivity.
func (s *StaticStats) SetSelectivity(query string, sel float64) {
	s.Selectivities[strings.ToLower(query)] = sel
}

// StreamTupleRate implements Stats.
func (s *StaticStats) StreamTupleRate(stream string) float64 {
	if r, ok := s.Rates[strings.ToLower(stream)]; ok {
		return r
	}
	return s.DefaultRate
}

// Selectivity implements Stats. Heuristic defaults: aggregations
// reduce to 10% of their input (flow-style grouping), HAVING clauses
// halve that again, filters pass 30%, projections pass everything,
// joins emit 20% of the larger input.
func (s *StaticStats) Selectivity(n *plan.Node) float64 {
	if sel, ok := s.Selectivities[strings.ToLower(n.QueryName)]; ok {
		return sel
	}
	switch n.Kind {
	case plan.KindAggregate:
		sel := 0.1
		if n.Having != nil {
			sel *= 0.5
		}
		return sel
	case plan.KindJoin:
		return 0.2
	case plan.KindSelectProject:
		if n.Filter != nil {
			return 0.3
		}
		return 1.0
	default:
		return 1.0
	}
}

// TupleSize estimates the wire size in bytes of a tuple with the given
// columns: an 8-byte header plus each column's typical encoding.
func TupleSize(cols []plan.ColDef) float64 {
	size := 8.0
	for _, c := range cols {
		if c.Type == schema.TString {
			size += 24
		} else {
			size += 9
		}
	}
	return size
}

// CostModel evaluates the paper's Section 4.2.1 objective: the cost of
// a plan under a partitioning set is the maximum number of bytes any
// single node receives over the network per unit time.
type CostModel struct {
	Graph *plan.Graph
	Stats Stats

	tupleRates map[*plan.Node]float64
	// reqs caches every node's requirement; inference walks lineage
	// and clones expressions, far too costly to repeat per candidate.
	reqs map[*plan.Node]Requirement
	// costCache memoizes evaluated partitioning sets by their
	// canonical text: the subset search reconciles many node subsets
	// to the same set.
	costCache map[string][2]float64
	// cacheHits counts costCache lookups that hit; a deterministic
	// function of the evaluate() call sequence.
	cacheHits int64
}

// NewCostModel builds a cost model over a query graph.
func NewCostModel(g *plan.Graph, stats Stats) *CostModel {
	if stats == nil {
		stats = NewStaticStats()
	}
	cm := &CostModel{
		Graph:      g,
		Stats:      stats,
		tupleRates: make(map[*plan.Node]float64),
		reqs:       make(map[*plan.Node]Requirement, len(g.Nodes)),
		costCache:  make(map[string][2]float64),
	}
	for _, n := range g.Nodes {
		cm.reqs[n] = NodeRequirement(n)
	}
	return cm
}

// compatible is the cached-requirement version of Compatible.
func (c *CostModel) compatible(ps Set, n *plan.Node) bool {
	if ps.IsEmpty() {
		return false
	}
	req := c.reqs[n]
	if req.Universal {
		return true
	}
	return SubsetCompatible(ps, req.CompatSet)
}

// evaluate computes (max, total) node costs for a partitioning in one
// topological pass, memoized by the set's canonical text.
func (c *CostModel) evaluate(ps Set) (maxCost, total float64) {
	key := ps.String()
	if v, ok := c.costCache[key]; ok {
		c.cacheHits++
		return v[0], v[1]
	}
	maxCost, total = c.evaluateUncached(ps)
	c.costCache[key] = [2]float64{maxCost, total}
	return maxCost, total
}

// evaluateUncached is evaluate without the memo cache. After
// prefillRates it neither reads nor writes any mutable CostModel state,
// so distinct sets may be evaluated concurrently (the parallel
// candidate search relies on this).
func (c *CostModel) evaluateUncached(ps Set) (maxCost, total float64) {
	distributable := make(map[*plan.Node]bool, len(c.Graph.Nodes))
	for _, n := range c.Graph.Nodes {
		if n.Kind == plan.KindSource {
			distributable[n] = true
			continue
		}
		ok := c.compatible(ps, n)
		for _, in := range n.Inputs {
			ok = ok && distributable[in]
		}
		distributable[n] = ok
	}
	for _, n := range c.Graph.QueryNodes() {
		var cost float64
		if distributable[n] {
			ships := len(n.Parents) == 0
			for _, parent := range n.Parents {
				if !distributable[parent] {
					ships = true
					break
				}
			}
			if ships {
				cost = c.OutputByteRate(n)
			}
		} else {
			for _, child := range n.Inputs {
				if child.Kind == plan.KindSource || distributable[child] {
					cost += c.OutputByteRate(child)
				}
			}
		}
		if cost > maxCost {
			maxCost = cost
		}
		total += cost
	}
	return maxCost, total
}

// prefillRates memoizes every node's output tuple rate up front, after
// which OutputTupleRate (and thus evaluateUncached) only reads the
// rate map and is safe to call from multiple goroutines.
func (c *CostModel) prefillRates() {
	for _, n := range c.Graph.Nodes {
		c.OutputTupleRate(n)
	}
}

// OutputTupleRate returns the node's steady-state output rate in
// tuples per second: sources emit at the stream rate; other nodes
// scale the sum of their inputs by their selectivity factor.
func (c *CostModel) OutputTupleRate(n *plan.Node) float64 {
	if r, ok := c.tupleRates[n]; ok {
		return r
	}
	var rate float64
	if n.Kind == plan.KindSource {
		rate = c.Stats.StreamTupleRate(n.Stream.Name)
	} else {
		in := 0.0
		for _, child := range n.Inputs {
			in += c.OutputTupleRate(child)
		}
		rate = in * c.Stats.Selectivity(n)
	}
	c.tupleRates[n] = rate
	return rate
}

// OutputByteRate is the node's output in bytes per second.
func (c *CostModel) OutputByteRate(n *plan.Node) float64 {
	return c.OutputTupleRate(n) * TupleSize(n.OutCols)
}

// InputByteRate is the bytes per second arriving at the node from its
// children.
func (c *CostModel) InputByteRate(n *plan.Node) float64 {
	in := 0.0
	for _, child := range n.Inputs {
		in += c.OutputByteRate(child)
	}
	return in
}

// NodeCost is the network receive rate attributed to one node under
// partitioning ps (paper Section 4.2.1):
//
//   - 0 when the node processes only local data — it is distributable
//     and every consumer is distributable too (its output never
//     crosses the network), or it runs centrally with all inputs
//     already central;
//   - its input rate when it runs centrally but a child is distributed
//     (the full input crosses the network);
//   - its output rate when it is distributable and its output must be
//     unioned centrally (it is a root, or feeds a central consumer).
func (c *CostModel) NodeCost(n *plan.Node, ps Set) float64 {
	if n.Kind == plan.KindSource {
		return 0
	}
	if Distributable(ps, n) {
		for _, parent := range n.Parents {
			if !Distributable(ps, parent) {
				return c.OutputByteRate(n)
			}
		}
		if len(n.Parents) == 0 {
			return c.OutputByteRate(n)
		}
		return 0
	}
	// Central node: it pays for inputs arriving from distributed
	// children; inputs from other central nodes are local.
	cost := 0.0
	for _, child := range n.Inputs {
		if child.Kind == plan.KindSource || Distributable(ps, child) {
			cost += c.OutputByteRate(child)
		}
	}
	return cost
}

// PlanCost is max over all query nodes of NodeCost (the paper's
// objective: avoid overloading any single host).
func (c *CostModel) PlanCost(ps Set) float64 {
	maxCost, _ := c.evaluate(ps)
	return maxCost
}

// TotalCost is the sum variant of the objective, used by the
// cost-objective ablation and the search's tie-break.
func (c *CostModel) TotalCost(ps Set) float64 {
	_, total := c.evaluate(ps)
	return total
}

// Explain renders a per-node cost breakdown for diagnostics.
func (c *CostModel) Explain(ps Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "partitioning %s\n", ps)
	nodes := c.Graph.QueryNodes()
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		status := "central"
		if Distributable(ps, n) {
			status = "distributed"
		}
		fmt.Fprintf(&b, "  %-24s %-11s in=%.0f B/s out=%.0f B/s cost=%.0f B/s\n",
			n.QueryName, status, c.InputByteRate(n), c.OutputByteRate(n), c.NodeCost(n, ps))
	}
	fmt.Fprintf(&b, "  plan cost (max) = %.0f B/s\n", c.PlanCost(ps))
	return b.String()
}
