package qap

import (
	"strings"
	"testing"

	"qap/internal/netgen"
)

func TestLoadAndAnalyzeComplexSet(t *testing.T) {
	sys, err := Load(netgen.SchemaDDL, ComplexQuerySet)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Section 3.2: (srcIP) satisfies all three queries.
	if !res.Best.Equal(MustParseSet("srcIP")) {
		t.Fatalf("recommended = %s, want (srcIP)\n%s", res.Best, res.Summary())
	}
	reqs := sys.Requirements()
	if len(reqs) != 3 {
		t.Fatalf("requirements for %d queries, want 3", len(reqs))
	}
	if !reqs["flows"].Set.Equal(MustParseSet("srcIP, destIP")) {
		t.Errorf("flows requirement = %s", reqs["flows"].Set)
	}
	ok, err := sys.Compatible(res.Best, "heavy_flows")
	if err != nil || !ok {
		t.Errorf("heavy_flows should be compatible with %s (err %v)", res.Best, err)
	}
	if _, err := sys.Compatible(res.Best, "nope"); err == nil {
		t.Error("unknown query should error")
	}
	// The cost model prefers the recommended set over centralized.
	if sys.PlanCost(res.Best, nil) >= sys.PlanCost(nil, nil) {
		t.Error("recommended set should cost less than centralized")
	}
}

func TestAnalyzeSection62PicksSubnetSet(t *testing.T) {
	sys := MustLoad(netgen.SchemaDDL, QuerySetSection62)
	stats := NewStats()
	// The subnet aggregation dominates the network volume.
	stats.SetSelectivity("subnet_agg", 0.4)
	stats.SetSelectivity("jitter_pairs", 0.5)
	stats.SetSelectivity("jitter", 0.2)
	res, err := sys.Analyze(stats)
	if err != nil {
		t.Fatal(err)
	}
	// The analyzer's set must satisfy every query in the set — the
	// Section 6.2 "optimal" (srcIP & 0xFFF0, destIP) does.
	for _, q := range []string{"subnet_agg", "jitter_pairs", "jitter"} {
		if ok, _ := sys.Compatible(res.Best, q); !ok {
			t.Errorf("recommended %s incompatible with %s\n%s", res.Best, q, res.Summary())
		}
	}
	if !res.Best.Equal(MustParseSet("srcIP & 0xFFF0, destIP")) {
		t.Errorf("recommended = %s, want (srcIP & 0xFFF0, destIP)", res.Best)
	}
}

func TestDeployAndRunQuickstart(t *testing.T) {
	sys := MustLoad(netgen.SchemaDDL, ComplexQuerySet)
	dep, err := sys.Deploy(DeployConfig{
		Hosts:        4,
		Partitioning: MustParseSet("srcIP"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := dep.PlanString(); !strings.Contains(s, "join flow_pairs") {
		t.Errorf("plan missing pushed-down join:\n%s", s)
	}
	cfg := netgen.DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 120, 300
	tr := netgen.Generate(cfg)
	res, err := dep.Run("TCP", tr.Packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["flow_pairs"]) == 0 {
		t.Error("flow_pairs produced no rows")
	}
	if res.Metrics.Hosts[0].Tuples == 0 {
		t.Error("no accounting recorded")
	}
	// Re-running the same deployment starts from clean state.
	res2, err := dep.Run("TCP", tr.Packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Outputs["flow_pairs"]) != len(res.Outputs["flow_pairs"]) {
		t.Error("deployment reuse is not stateless")
	}
}

func TestDeployDefaultsAndParams(t *testing.T) {
	sys := MustLoad(netgen.SchemaDDL, SuspiciousFlowsQuery)
	// Missing params must fail deployment-compile at Run.
	dep, err := sys.Deploy(DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Run("TCP", nil); err == nil {
		t.Error("unbound #PATTERN# should fail")
	}
	dep, err = sys.Deploy(DeployConfig{
		Params: map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := netgen.DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 120, 300
	res, err := dep.Run("TCP", netgen.Generate(cfg).Packets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["suspicious"]) == 0 {
		t.Error("no suspicious flows found")
	}
}

// figureConfig returns a fast trace for shape tests.
func figureConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.Trace.DurationSec = 150
	cfg.Trace.PacketsPerSec = 600
	return cfg
}

func series(f *Figure, name string) []float64 {
	for _, s := range f.Series {
		if s.Name == name {
			return s.Values
		}
	}
	return nil
}

func TestFigures8and9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	cpu, net, err := Figures8and9(figureConfig())
	if err != nil {
		t.Fatal(err)
	}
	naive, part := series(cpu, "Naive"), series(cpu, "Partitioned")
	// Naive aggregator CPU grows with cluster size; Partitioned
	// declines and ends far below Naive.
	if naive[3] <= naive[1] {
		t.Errorf("naive CPU should grow: %v", naive)
	}
	if part[3] >= part[0] || part[3] >= naive[3]/2 {
		t.Errorf("partitioned CPU should fall well below naive: %v vs %v", part, naive)
	}
	nNaive, nOpt, nPart := series(net, "Naive"), series(net, "Optimized"), series(net, "Partitioned")
	if nNaive[3] <= nNaive[1] {
		t.Errorf("naive net should grow: %v", nNaive)
	}
	if nOpt[3] >= nNaive[3] {
		t.Errorf("optimized net should undercut naive: %v vs %v", nOpt, nNaive)
	}
	if nPart[3] >= nNaive[3]/10 {
		t.Errorf("partitioned net should be bounded by output size: %v vs %v", nPart, nNaive)
	}
}

func TestFigures13and14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	cpu, net, err := Figures13and14(figureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering at 4 nodes: Naive > Optimized >
	// Partitioned(partial) > Partitioned(full), on both metrics.
	for _, f := range []*Figure{cpu, net} {
		naive := series(f, "Naive")[3]
		opt := series(f, "Optimized")[3]
		part := series(f, "Partitioned (partial)")[3]
		full := series(f, "Partitioned (full)")[3]
		if !(naive > opt && opt > part && part > full) {
			t.Errorf("figure %s ordering violated: naive=%.1f opt=%.1f partial=%.1f full=%.1f",
				f.ID, naive, opt, part, full)
		}
	}
	if s := cpu.Table(); !strings.Contains(s, "Figure 13") || !strings.Contains(s, "# nodes") {
		t.Errorf("table rendering broken:\n%s", s)
	}
}

func TestLeafLoadsDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	loads, err := LeafLoads(figureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Section 6.1: leaf load drops steeply from 1 to 4 hosts.
	if len(loads) != 4 || loads[3] >= loads[0]/2 {
		t.Errorf("leaf loads should drop sharply: %v", loads)
	}
}

func TestPerStreamPublicAPI(t *testing.T) {
	sys := MustLoad(`
TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)
DNS(time increasing, clientIP, server, clientPort, qtype, size, flags, qseq)`, `
query tcp_flows:
SELECT tb, srcIP, destIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, srcIP, destIP

query dns_volume:
SELECT tb, clientIP, COUNT(*) FROM DNS GROUP BY time/60 AS tb, clientIP`)

	// The shared-set analysis fails (no attribute exists in both
	// stream schemas), the per-stream analysis succeeds.
	shared, err := sys.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Best.IsEmpty() {
		t.Errorf("shared-set best = %s, want empty", shared.Best)
	}
	per, err := sys.AnalyzePerStream(nil)
	if err != nil {
		t.Fatal(err)
	}
	if per.Sets.Get("TCP").IsEmpty() || per.Sets.Get("DNS").IsEmpty() {
		t.Fatalf("per-stream sets = %s", per.Sets)
	}
	dep, err := sys.Deploy(DeployConfig{Hosts: 2, PerStream: per.Sets})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTraceConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 120, 200
	a := GenerateTrace(cfg)
	cfg.Seed = 3
	b := GenerateTrace(cfg)
	res, err := dep.RunStreams(map[string][]netgen.Packet{"TCP": a.Packets, "DNS": b.Packets})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["tcp_flows"]) == 0 || len(res.Outputs["dns_volume"]) == 0 {
		t.Error("per-stream deployment produced no rows")
	}
}

func TestParseSetErrors(t *testing.T) {
	if _, err := ParseSet("srcIP + destIP"); err == nil {
		t.Error("multi-attribute element should fail")
	}
	s, err := ParseSet("")
	if err != nil || !s.IsEmpty() {
		t.Errorf("empty set parse: %v %v", s, err)
	}
}
