package main

import (
	"flag"
	"testing"

	"qap/internal/cmdtest"
)

func TestUsageGolden(t *testing.T) {
	cmdtest.CheckUsage(t, "qap-prove", func(fs *flag.FlagSet) { defineFlags(fs) })
}
