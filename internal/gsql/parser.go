package gsql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser parses GSQL query sets and standalone expressions.
type Parser struct {
	lex *Lexer
	tok Token // current token
	err error
	// depth tracks expression-nesting recursion; see maxExprDepth.
	depth int
}

// NewParser returns a parser over src positioned at the first token.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseQuerySet parses a whole query-set file in the paper's form:
//
//	query flows:
//	SELECT tb, srcIP, destIP, COUNT(*) AS cnt
//	FROM TCP
//	GROUP BY time/60 AS tb, srcIP, destIP
//
//	query heavy_flows:
//	SELECT tb, srcIP, MAX(cnt) AS max_cnt
//	FROM flows
//	GROUP BY tb, srcIP
//
// A bare SELECT with no "query NAME:" header is also accepted and
// named q1, q2, ... in order. Statements may be separated by ';'.
func ParseQuerySet(src string) (*QuerySet, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	qs := &QuerySet{}
	anon := 0
	for {
		for p.tok.Kind == TokSemi {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if p.tok.Kind == TokEOF {
			break
		}
		name := ""
		namePos := p.pos()
		if p.isKeyword("QUERY") {
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokIdent {
				return nil, p.expectedErr("query name")
			}
			name, namePos = p.tok.Text, p.pos()
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokColon {
				return nil, p.expectedErr("':' after query name")
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		stmt, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if name == "" {
			anon++
			name = fmt.Sprintf("q%d", anon)
		}
		if _, dup := qs.Lookup(name); dup {
			return nil, Errorf(namePos, "duplicate query name %q", name)
		}
		qs.Queries = append(qs.Queries, &Query{Name: name, Stmt: stmt, Pos: namePos})
	}
	if len(qs.Queries) == 0 {
		return nil, &Error{Msg: "no queries in input"}
	}
	return qs, nil
}

// MustParseQuerySet is ParseQuerySet that panics on error; for tests
// and examples with constant query text.
func MustParseQuerySet(src string) *QuerySet {
	qs, err := ParseQuerySet(src)
	if err != nil {
		panic(err)
	}
	return qs
}

// ParseExpr parses a standalone scalar expression (used for
// partitioning-set specifications like "srcIP & 0xFFF0").
func ParseExpr(src string) (Expr, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, Errorf(p.pos(), "unexpected %s after expression", p.tok)
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *Parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, kw)
}

func (p *Parser) acceptKeyword(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.next()
	}
	return false, nil
}

func (p *Parser) expectKeyword(kw string) error {
	ok, err := p.acceptKeyword(kw)
	if err != nil {
		return err
	}
	if !ok {
		return p.expectedErr("'" + kw + "'")
	}
	return nil
}

// pos returns the current token's source position.
func (p *Parser) pos() Pos { return PosOf(p.tok) }

func (p *Parser) expectedErr(what string) error {
	return Errorf(p.pos(), "expected %s, found %s", what, p.tok)
}

// reservedAfterExpr lists keywords that end an expression or clause, so
// an identifier alias is not confused with them.
var clauseKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"HAVING": true, "QUERY": true, "JOIN": true, "LEFT": true,
	"RIGHT": true, "FULL": true, "INNER": true, "OUTER": true,
	"ON": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"BY": true, "WINDOW": true,
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	selPos := p.pos()
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Pos: selPos}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	clausePos := p.pos()
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		stmt.WherePos = clausePos
		stmt.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	clausePos = p.pos()
	if ok, err := p.acceptKeyword("GROUP"); err != nil {
		return nil, err
	} else if ok {
		stmt.GroupPos = clausePos
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseGroupItem()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	clausePos = p.pos()
	if ok, err := p.acceptKeyword("HAVING"); err != nil {
		return nil, err
	} else if ok {
		stmt.HavingPos = clausePos
		stmt.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	clausePos = p.pos()
	if ok, err := p.acceptKeyword("WINDOW"); err != nil {
		return nil, err
	} else if ok {
		stmt.WindowPos = clausePos
		if p.tok.Kind != TokNumber {
			return nil, p.expectedErr("pane count after WINDOW")
		}
		n, err := strconv.ParseUint(p.tok.Text, 0, 32)
		if err != nil || n == 0 {
			return nil, Errorf(p.pos(), "WINDOW pane count must be a positive integer")
		}
		if len(stmt.GroupBy) == 0 {
			return nil, Errorf(clausePos, "WINDOW requires GROUP BY")
		}
		stmt.WindowPanes = n
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	pos := p.pos()
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	alias, err := p.parseOptionalAlias()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: e, Alias: alias, Pos: pos}, nil
}

func (p *Parser) parseGroupItem() (GroupItem, error) {
	pos := p.pos()
	e, err := p.parseExpr()
	if err != nil {
		return GroupItem{}, err
	}
	alias, err := p.parseOptionalAlias()
	if err != nil {
		return GroupItem{}, err
	}
	return GroupItem{Expr: e, Alias: alias, Pos: pos}, nil
}

func (p *Parser) parseOptionalAlias() (string, error) {
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return "", err
	} else if ok {
		if p.tok.Kind != TokIdent {
			return "", p.expectedErr("alias after AS")
		}
		alias := p.tok.Text
		return alias, p.next()
	}
	// Bare alias: an identifier that is not a clause keyword.
	if p.tok.Kind == TokIdent && !clauseKeywords[strings.ToUpper(p.tok.Text)] {
		alias := p.tok.Text
		return alias, p.next()
	}
	return "", nil
}

func (p *Parser) parseFrom() (FromClause, error) {
	left, err := p.parseTableRef()
	if err != nil {
		return FromClause{}, err
	}
	fc := FromClause{Left: left}
	// Comma join: FROM a S1, b S2 (inner join; predicates in WHERE).
	if p.tok.Kind == TokComma {
		if err := p.next(); err != nil {
			return FromClause{}, err
		}
		right, err := p.parseTableRef()
		if err != nil {
			return FromClause{}, err
		}
		fc.Join, fc.Right = JoinInner, right
		return fc, nil
	}
	jt := JoinNone
	switch {
	case p.isKeyword("JOIN"), p.isKeyword("INNER"):
		jt = JoinInner
	case p.isKeyword("LEFT"):
		jt = JoinLeftOuter
	case p.isKeyword("RIGHT"):
		jt = JoinRightOuter
	case p.isKeyword("FULL"):
		jt = JoinFullOuter
	}
	if jt == JoinNone {
		return fc, nil
	}
	if err := p.next(); err != nil { // consume JOIN/INNER/LEFT/RIGHT/FULL
		return FromClause{}, err
	}
	if jt != JoinInner || p.isKeyword("OUTER") || p.isKeyword("JOIN") {
		if _, err := p.acceptKeyword("OUTER"); err != nil {
			return FromClause{}, err
		}
		if _, err := p.acceptKeyword("JOIN"); err != nil {
			return FromClause{}, err
		}
	}
	right, err := p.parseTableRef()
	if err != nil {
		return FromClause{}, err
	}
	fc.Join, fc.Right = jt, right
	if ok, err := p.acceptKeyword("ON"); err != nil {
		return FromClause{}, err
	} else if ok {
		fc.On, err = p.parseExpr()
		if err != nil {
			return FromClause{}, err
		}
	}
	return fc, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	if p.tok.Kind != TokIdent {
		return TableRef{}, p.expectedErr("stream or query name")
	}
	tr := TableRef{Name: p.tok.Text, Pos: p.pos()}
	if err := p.next(); err != nil {
		return TableRef{}, err
	}
	alias, err := p.parseOptionalAlias()
	if err != nil {
		return TableRef{}, err
	}
	tr.Alias = alias
	return tr, nil
}

// Expression parsing: precedence climbing. The ladder (loosest first):
// OR, AND, NOT, comparison, | ^, &, << >>, + -, * / %, unary, primary.

// maxExprDepth bounds expression nesting. The parser (and every later
// recursive walk: plan building, compilation, rendering) descends once
// per nesting level, so pathological inputs — kilobytes of '(' or '-' —
// would otherwise grow the stack without bound. Fuzzing found this;
// real query sets nest a handful of levels.
const maxExprDepth = 500

// enter counts one level of expression recursion; leave undoes it.
func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxExprDepth {
		return Errorf(p.pos(), "expression nested deeper than %d levels", maxExprDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

func (p *Parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseBitOr()
	if err != nil {
		return nil, err
	}
	var op BinOp
	switch p.tok.Kind {
	case TokEq:
		op = OpEq
	case TokNeq:
		op = OpNeq
	case TokLt:
		op = OpLt
	case TokLe:
		op = OpLe
	case TokGt:
		op = OpGt
	case TokGe:
		op = OpGe
	default:
		return l, nil
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	r, err := p.parseBitOr()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r}, nil
}

func (p *Parser) parseBitOr() (Expr, error) {
	l, err := p.parseBitAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPipe || p.tok.Kind == TokCaret {
		op := OpBitOr
		if p.tok.Kind == TokCaret {
			op = OpBitXor
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseBitAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseBitAnd() (Expr, error) {
	l, err := p.parseShift()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokAmp {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseShift()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpBitAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseShift() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokShl || p.tok.Kind == TokShr {
		op := OpShl
		if p.tok.Kind == TokShr {
			op = OpShr
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := OpAdd
		if p.tok.Kind == TokMinus {
			op = OpSub
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokStar || p.tok.Kind == TokSlash || p.tok.Kind == TokPercent {
		var op BinOp
		switch p.tok.Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		default:
			op = OpMod
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.tok.Kind {
	case TokMinus:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, X: x}, nil
	case TokTilde:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpBitNot, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokNumber:
		return p.parseNumber()
	case TokString:
		s := p.tok.Text
		return &StringLit{S: s}, p.next()
	case TokParam:
		name := p.tok.Text
		return &ParamRef{Name: name}, p.next()
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind != TokRParen {
			return nil, p.expectedErr("')'")
		}
		return e, p.next()
	case TokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.expectedErr("expression")
	}
}

func (p *Parser) parseNumber() (Expr, error) {
	text, pos := p.tok.Text, p.pos()
	if err := p.next(); err != nil {
		return nil, err
	}
	if strings.ContainsAny(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, Errorf(pos, "bad float literal %q: %v", text, err)
		}
		return &NumberLit{IsFloat: true, F: f, Text: text}, nil
	}
	u, err := strconv.ParseUint(text, 0, 64)
	if err != nil {
		return nil, Errorf(pos, "bad integer literal %q: %v", text, err)
	}
	return &NumberLit{U: u, Text: text}, nil
}

func (p *Parser) parseIdentExpr() (Expr, error) {
	name, pos := p.tok.Text, p.pos()
	if err := p.next(); err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case TokLParen:
		return p.parseCall(name, pos)
	case TokDot:
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokIdent {
			return nil, p.expectedErr("column name after '.'")
		}
		col := p.tok.Text
		return &ColumnRef{Qualifier: name, Name: col}, p.next()
	default:
		return &ColumnRef{Name: name}, nil
	}
}

func (p *Parser) parseCall(name string, pos Pos) (Expr, error) {
	if err := p.next(); err != nil { // '('
		return nil, err
	}
	call := &FuncCall{Name: name}
	if p.tok.Kind == TokStar {
		call.Star = true
		if err := p.next(); err != nil {
			return nil, err
		}
	} else if p.tok.Kind != TokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if p.tok.Kind != TokRParen {
		return nil, p.expectedErr("')'")
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	if !IsAggregateName(name) && !IsScalarFuncName(name) {
		return nil, Errorf(pos, "unknown function %q", name)
	}
	if spec, ok := LookupAgg(name); ok {
		if call.Star && strings.ToUpper(name) != "COUNT" {
			return nil, Errorf(pos, "%s(*) is only valid for COUNT", name)
		}
		if spec.NeedsArg && len(call.Args) != 1 {
			return nil, Errorf(pos, "%s requires exactly one argument", spec.Name)
		}
		if !spec.NeedsArg && !call.Star && len(call.Args) > 1 {
			return nil, Errorf(pos, "%s takes at most one argument", spec.Name)
		}
	}
	return call, nil
}
