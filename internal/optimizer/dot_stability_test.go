package optimizer

import (
	"testing"

	"qap/internal/core"
	"qap/internal/gsql"
	"qap/internal/plan"
	"qap/internal/schema"
)

const dotQuerySet = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP

query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1`

// TestDOTByteStable asserts both DOT renderings — the logical graph's
// and the physical plan's — are byte-identical across independent
// builds from the same text: map-iteration order must never reach the
// output.
func TestDOTByteStable(t *testing.T) {
	render := func() (string, string) {
		cat, err := schema.Parse(`TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags)`)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := gsql.ParseQuerySet(dotQuerySet)
		if err != nil {
			t.Fatal(err)
		}
		g, err := plan.Build(cat, qs)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Build(g, core.MustParseSet("srcIP"), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return g.DOT(), p.DOT()
	}
	logical, physical := render()
	if logical == "" || physical == "" {
		t.Fatal("empty DOT output")
	}
	for i := 0; i < 10; i++ {
		l, p := render()
		if l != logical {
			t.Fatalf("logical DOT differs on rebuild %d", i)
		}
		if p != physical {
			t.Fatalf("physical DOT differs on rebuild %d", i)
		}
	}
}
