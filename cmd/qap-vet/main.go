// Command qap-vet runs the repo's static analyzers over the module's
// own Go source. The determinism analyzers catch the three ways
// nondeterminism has historically leaked into simulated results:
// wall-clock reads (time.Now and friends) and math/rand outside
// quarantined timing paths (walltime), range statements over maps
// (maprange), and goroutines launched from map-range bodies (fanout).
// The hot-path analyzers guard the batched execution path: poolleak
// flags exec.GetBatch containers not released via PutBatch (or
// ownership-transferred) on every control-flow path, and hotalloc
// flags heap-allocating expressions inside functions annotated
// //qap:hot. Finally, stalesuppress fails the run when a //qap:allow
// comment no longer suppresses any diagnostic, so exemptions cannot
// outlive the code they excused.
//
// Usage:
//
//	qap-vet [dir]
//
// dir defaults to the current directory; qap-vet locates the enclosing
// module root and checks every non-test package under it. Deliberately
// exempt sites carry a "//qap:allow <analyzer> -- reason" comment on
// the same line or the line above. Findings print one per line in
// file:line:col form, sorted, and a non-empty report exits 1.
package main

import (
	"fmt"
	"os"
	"strings"

	"qap/internal/analyzers"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		// Accept a go-style "./..." pattern: the module is always
		// checked as a whole, so only the base directory matters.
		dir = strings.TrimSuffix(os.Args[1], "...")
		if dir == "" {
			dir = "."
		}
	}
	root, err := analyzers.ModuleRoot(dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analyzers.Load(root)
	if err != nil {
		fatal(err)
	}
	findings := analyzers.RunAll(pkgs, analyzers.All)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qap-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-vet:", err)
	os.Exit(2)
}
