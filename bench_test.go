package qap

// Benchmarks regenerating every measured figure of the paper's
// evaluation (Figures 8-11, 13, 14), plus ablations over the design
// choices DESIGN.md calls out. Each benchmark iteration replays the
// full experiment sweep (all strategies x cluster sizes) on a scaled
// trace and reports the figure's headline numbers as custom metrics,
// so `go test -bench` output carries the reproduced series.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The same data, at larger scale, is printed as tables by
// `go run ./cmd/qap-bench`.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"qap/internal/cluster"
	"qap/internal/netgen"
	"qap/internal/optimizer"
)

// benchConfig is a reduced-scale trace so each figure sweep runs in a
// couple of seconds.
func benchConfig() ExperimentConfig {
	cfg := DefaultExperimentConfig()
	cfg.Trace.DurationSec = 150
	cfg.Trace.PacketsPerSec = 600
	return cfg
}

// reportSeries publishes each series' 1-host and MaxHosts values as
// benchmark metrics, e.g. "Naive@4hosts".
func reportSeries(b *testing.B, f *Figure, unit string) {
	b.Helper()
	for _, s := range f.Series {
		b.ReportMetric(s.Values[0], fmt.Sprintf("%s@1host_%s", sanitize(s.Name), unit))
		b.ReportMetric(s.Values[len(s.Values)-1], fmt.Sprintf("%s@%dhosts_%s", sanitize(s.Name), len(s.Values), unit))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkParallelSpeedup compares sequential vs parallel wall-clock
// on the Figure 8 sweep and reports the ratio. On a single-core
// machine the ratio hovers around 1x (the engines produce identical
// results either way); with spare cores the per-host workers overlap
// and the ratio climbs toward the host count.
func BenchmarkParallelSpeedup(b *testing.B) {
	run := func(workers int) time.Duration {
		cfg := benchConfig()
		cfg.Workers = workers
		start := time.Now()
		if _, _, err := Figures8and9(cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		seq += run(1)
		par += run(runtime.GOMAXPROCS(0))
	}
	b.ReportMetric(seq.Seconds()/float64(b.N), "seq_s/op")
	b.ReportMetric(par.Seconds()/float64(b.N), "par_s/op")
	b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_x")
}

func BenchmarkFigure8AggregatorCPU(b *testing.B) {
	var cpu *Figure
	for i := 0; i < b.N; i++ {
		var err error
		cpu, _, err = Figures8and9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, cpu, "cpu%")
}

func BenchmarkFigure9AggregatorNet(b *testing.B) {
	var net *Figure
	for i := 0; i < b.N; i++ {
		var err error
		_, net, err = Figures8and9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, net, "tup/s")
}

func BenchmarkFigure10QuerySetCPU(b *testing.B) {
	var cpu *Figure
	for i := 0; i < b.N; i++ {
		var err error
		cpu, _, err = Figures10and11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, cpu, "cpu%")
}

func BenchmarkFigure11QuerySetNet(b *testing.B) {
	var net *Figure
	for i := 0; i < b.N; i++ {
		var err error
		_, net, err = Figures10and11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, net, "tup/s")
}

func BenchmarkFigure13ComplexCPU(b *testing.B) {
	var cpu *Figure
	for i := 0; i < b.N; i++ {
		var err error
		cpu, _, err = Figures13and14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, cpu, "cpu%")
}

func BenchmarkFigure14ComplexNet(b *testing.B) {
	var net *Figure
	for i := 0; i < b.N; i++ {
		var err error
		_, net, err = Figures13and14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, net, "tup/s")
}

func BenchmarkLeafLoadDrop(b *testing.B) {
	var loads []float64
	for i := 0; i < b.N; i++ {
		var err error
		loads, err = LeafLoads(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(loads[0], "leaf@1host_cpu%")
	b.ReportMetric(loads[3], "leaf@4hosts_cpu%")
}

// ---- ablations ----

// BenchmarkAblationRemoteCostRatio sweeps the remote-to-local CPU cost
// ratio: the paper's argument that partition-agnostic plans can exceed
// centralized load hinges on remote tuples being expensive. The metric
// is the naive 4-host aggregator CPU relative to 1 host.
func BenchmarkAblationRemoteCostRatio(b *testing.B) {
	cfg := benchConfig()
	for _, ratio := range []float64{1, 3, 6, 12} {
		b.Run(fmt.Sprintf("remote=%gx", ratio), func(b *testing.B) {
			var growth float64
			for i := 0; i < b.N; i++ {
				sys := MustLoad(netgen.SchemaDDL, SuspiciousFlowsQuery)
				trace := netgen.Generate(cfg.Trace)
				costs := cluster.DefaultCosts()
				costs.RemoteCost = costs.ScanCost * ratio
				costs.CapacityPerSec = 1
				cpu := func(hosts int) float64 {
					dep, err := sys.Deploy(DeployConfig{
						Hosts: hosts, PartitionsPerHost: 2,
						PartialScope: ScopePartition,
						Costs:        costs,
						Params:       map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := dep.Run("TCP", trace.Packets)
					if err != nil {
						b.Fatal(err)
					}
					return res.Metrics.Hosts[0].CPUUnits
				}
				growth = cpu(4) / cpu(1)
			}
			b.ReportMetric(growth, "naive4v1_cpu_ratio")
		})
	}
}

// BenchmarkAblationHavingSelectivity sweeps the suspicious-flow rate:
// the HAVING clause's selectivity drives the Figure 8/9 gap, since
// only the partitioned plan can filter flows before shipping them.
func BenchmarkAblationHavingSelectivity(b *testing.B) {
	for _, frac := range []float64{0.01, 0.05, 0.25, 1.0} {
		b.Run(fmt.Sprintf("attack=%g", frac), func(b *testing.B) {
			var partNet float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Trace.AttackFraction = frac
				sys := MustLoad(netgen.SchemaDDL, SuspiciousFlowsQuery)
				trace := netgen.Generate(cfg.Trace)
				dep, err := sys.Deploy(DeployConfig{
					Hosts: 4, PartitionsPerHost: 2,
					Partitioning: MustParseSet("srcIP, destIP, srcPort, destPort"),
					Params:       map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := dep.Run("TCP", trace.Packets)
				if err != nil {
					b.Fatal(err)
				}
				partNet = res.Metrics.NetLoad(0)
			}
			b.ReportMetric(partNet, "partitioned_net_tup/s")
		})
	}
}

// BenchmarkAblationSkew sweeps the Zipf skew of source addresses: hash
// partitioning on few hot keys imbalances the leaf hosts; the metric
// is the max/mean leaf CPU ratio under (srcIP) partitioning.
func BenchmarkAblationSkew(b *testing.B) {
	for _, s := range []float64{1.05, 1.2, 1.5, 2.5} {
		b.Run(fmt.Sprintf("zipf=%g", s), func(b *testing.B) {
			var imbalance float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Trace.ZipfS = s
				sys := MustLoad(netgen.SchemaDDL, ComplexQuerySet)
				trace := netgen.Generate(cfg.Trace)
				dep, err := sys.Deploy(DeployConfig{
					Hosts: 4, PartitionsPerHost: 2,
					Partitioning: MustParseSet("srcIP"),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := dep.Run("TCP", trace.Packets)
				if err != nil {
					b.Fatal(err)
				}
				maxU, sum := 0.0, 0.0
				for _, h := range res.Metrics.Hosts {
					if h.CPUUnits > maxU {
						maxU = h.CPUUnits
					}
					sum += h.CPUUnits
				}
				imbalance = maxU / (sum / float64(len(res.Metrics.Hosts)))
			}
			b.ReportMetric(imbalance, "max/mean_leaf_cpu")
		})
	}
}

// BenchmarkAblationPartialScope compares the two pre-aggregation
// granularities directly: partial tuples shipped to the aggregator
// per second under per-partition vs per-host scope.
func BenchmarkAblationPartialScope(b *testing.B) {
	for _, scope := range []struct {
		name string
		s    Scope
	}{{"partition", ScopePartition}, {"host", ScopeHost}} {
		b.Run(scope.name, func(b *testing.B) {
			var net float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				sys := MustLoad(netgen.SchemaDDL, SuspiciousFlowsQuery)
				trace := netgen.Generate(cfg.Trace)
				dep, err := sys.Deploy(DeployConfig{
					Hosts: 4, PartitionsPerHost: 2,
					PartialScope: scope.s,
					Params:       map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := dep.Run("TCP", trace.Packets)
				if err != nil {
					b.Fatal(err)
				}
				net = res.Metrics.NetLoad(0)
			}
			b.ReportMetric(net, "aggregator_net_tup/s")
		})
	}
}

// BenchmarkBaselineQueryPlanPartitioning measures the baseline the
// paper argues against (Sections 1-2): Borealis-style query plan
// partitioning, one operator per host with streams forwarded between
// them. The metric is the maximum host CPU at 4 hosts relative to the
// centralized single-host run — near or above 1.0 means adding hosts
// did not relieve the bottleneck operator, versus the query-aware
// plan's large reduction.
func BenchmarkBaselineQueryPlanPartitioning(b *testing.B) {
	cfg := benchConfig()
	var opRatio, qaRatio float64
	for i := 0; i < b.N; i++ {
		sys := MustLoad(netgen.SchemaDDL, ComplexQuerySet)
		trace := netgen.Generate(cfg.Trace)
		costs := cluster.DefaultCosts()
		costs.CapacityPerSec = 1

		maxHostUnits := func(p *optimizer.Plan) float64 {
			r, err := cluster.New(p, costs, nil)
			if err != nil {
				b.Fatal(err)
			}
			res, err := r.Run("TCP", trace.Packets)
			if err != nil {
				b.Fatal(err)
			}
			maxU := 0.0
			for _, h := range res.Metrics.Hosts {
				if h.CPUUnits > maxU {
					maxU = h.CPUUnits
				}
			}
			return maxU
		}
		central := maxHostUnits(optimizer.MustBuild(sys.Graph, nil,
			optimizer.Options{Hosts: 1, PartitionsPerHost: 1}))
		opPlace, err := optimizer.BuildOperatorPlacement(sys.Graph,
			optimizer.Options{Hosts: 4, PartitionsPerHost: 2})
		if err != nil {
			b.Fatal(err)
		}
		opRatio = maxHostUnits(opPlace) / central
		qa := optimizer.MustBuild(sys.Graph, MustParseSet("srcIP"),
			optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true})
		qaRatio = maxHostUnits(qa) / central
	}
	b.ReportMetric(opRatio, "queryplan_max/central")
	b.ReportMetric(qaRatio, "queryaware_max/central")
}

// BenchmarkBatchedThroughput compares the batch-at-a-time hot path
// against the tuple-at-a-time scalar path on the Figure 8 workload
// (the suspicious-flows aggregation on one host). SetBytes counts
// packets, so the MB/s column reads as M rows/s; rows/s is also
// reported directly. Run with -benchmem: the batched path's gate is
// >= 2x rows/sec at <= 0.25x allocs/op versus batch=1, recorded in
// BENCH_exec.json (see cmd/qap-bench -exec).
func BenchmarkBatchedThroughput(b *testing.B) {
	cfg := netgen.DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 60, 2000
	trace := netgen.Generate(cfg)
	sys := MustLoad(netgen.SchemaDDL, SuspiciousFlowsQuery)
	run := func(batch int, columnar bool) func(b *testing.B) {
		return func(b *testing.B) {
			dep, err := sys.Deploy(DeployConfig{
				Hosts: 1, PartitionsPerHost: 1, Workers: 1, BatchSize: batch, Columnar: columnar,
				Params: map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dep.Run("TCP", trace.Packets); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(trace.Packets)))
			b.ReportMetric(float64(len(trace.Packets))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		}
	}
	for _, batch := range []int{1, 64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", batch), run(batch, false))
	}
	// The columnar path's gate is >= 5x rows/sec at <= 0.05x allocs/op
	// versus batch=1 (same report; see cmd/qap-bench -exec).
	for _, batch := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("columnar/batch=%d", batch), run(batch, true))
	}
}

// BenchmarkAnalyzer measures the partitioning analysis itself — query
// compilation, requirement inference, and the DP search — on the
// paper's complex set.
func BenchmarkAnalyzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := Load(netgen.SchemaDDL, ComplexQuerySet)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Analyze(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorThroughput measures raw single-host engine
// throughput (packets/sec through the flows aggregation), the
// substrate number everything else scales from.
func BenchmarkExecutorThroughput(b *testing.B) {
	cfg := netgen.DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 60, 2000
	trace := netgen.Generate(cfg)
	sys := MustLoad(netgen.SchemaDDL, "SELECT tb, srcIP, destIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, srcIP, destIP")
	p := optimizer.MustBuild(sys.Graph, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cluster.New(p, cluster.DefaultCosts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run("TCP", trace.Packets); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(trace.Packets)))
}
