// Package analyzers enforces the repo's determinism contract on its
// own Go source: simulated results must be byte-identical across runs
// and worker counts, so wall-clock reads, random sources, and
// map-iteration order must never leak into output or accounting paths.
//
// The package is a small vet-style framework built only on the
// standard library (go/ast, go/parser, go/types) because the build
// environment has no golang.org/x/tools. Analyzers walk type-checked
// packages and report findings; a site that is deliberately exempt —
// wall-clock timing quarantined behind obs.Timing, a map range that
// sorts before emitting — carries a
//
//	//qap:allow <analyzer>
//
// comment on the same line or the line above, which suppresses that
// analyzer there. Findings are sorted by position, so qap-vet output
// is itself deterministic.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one determinism check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in findings and in
	// //qap:allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package through the pass.
	Run func(*Pass)
}

// All is the registry of determinism analyzers, in reporting order.
var All = []*Analyzer{Walltime, MapRange, Fanout}

// Finding is one analyzer report at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the familiar file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allow    allowMap
	findings *[]Finding
}

// Reportf records a finding unless a //qap:allow comment suppresses
// this analyzer at the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(position, p.Analyzer.Name) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowMap indexes //qap:allow comments: file name -> line -> names.
type allowMap map[string]map[int][]string

// allows reports whether the analyzer is suppressed at the position —
// an allow comment on the same line or the line above matches.
func (m allowMap) allows(pos token.Position, name string) bool {
	lines := m[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, allowed := range lines[line] {
			if allowed == name || allowed == "all" {
				return true
			}
		}
	}
	return false
}

// buildAllowMap scans a package's comments for //qap:allow directives.
func buildAllowMap(fset *token.FileSet, files []*ast.File) allowMap {
	m := allowMap{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "qap:allow") {
					continue
				}
				names := strings.Fields(strings.TrimPrefix(text, "qap:allow"))
				// A "--" ends the name list; the rest is the reason.
				for i, n := range names {
					if strings.HasPrefix(n, "--") {
						names = names[:i]
						break
					}
				}
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				if m[pos.Filename] == nil {
					m[pos.Filename] = map[int][]string{}
				}
				m[pos.Filename][pos.Line] = append(m[pos.Filename][pos.Line], names...)
			}
		}
	}
	return m
}

// RunAll runs every registered analyzer over the packages and returns
// the findings sorted by position, analyzer, and message.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		allow := buildAllowMap(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				allow:    allow,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}
