package optimizer

import (
	"fmt"

	"qap/internal/core"
	"qap/internal/plan"
)

// Build constructs the distributed physical plan for a query graph
// under a given stream partitioning. An empty set means the splitter
// partitions query-agnostically (round robin), so no node is
// partition-compatible and every stateful operator either centralizes
// or, when enabled, splits into partial aggregates.
func Build(g *plan.Graph, ps core.Set, opts Options) (*Plan, error) {
	if opts.Hosts <= 0 {
		return nil, fmt.Errorf("optimizer: Hosts must be positive, got %d", opts.Hosts)
	}
	if opts.PartitionsPerHost <= 0 {
		return nil, fmt.Errorf("optimizer: PartitionsPerHost must be positive, got %d", opts.PartitionsPerHost)
	}
	if opts.AggregatorHost < 0 || opts.AggregatorHost >= opts.Hosts {
		return nil, fmt.Errorf("optimizer: AggregatorHost %d out of range [0,%d)", opts.AggregatorHost, opts.Hosts)
	}
	b := &builder{
		plan: &Plan{
			Outputs:           make(map[string]*Op),
			Hosts:             opts.Hosts,
			Partitions:        opts.Hosts * opts.PartitionsPerHost,
			PartitionsPerHost: opts.PartitionsPerHost,
			AggregatorHost:    opts.AggregatorHost,
			Set:               ps,
			StreamSets:        opts.StreamSets,
			Graph:             g,
		},
		opts: opts,
		impl: make(map[*plan.Node]*implInfo),
	}
	for _, src := range g.Sources() {
		b.buildScans(src)
	}
	for _, n := range g.QueryNodes() {
		if err := b.buildNode(n); err != nil {
			return nil, err
		}
	}
	for _, root := range g.Roots() {
		in := b.centralize(b.impl[root])
		out := b.newOp(OpOutput, b.plan.AggregatorHost, -1, root)
		out.Inputs = []*Op{in}
		b.plan.Outputs[root.QueryName] = out
	}
	return b.plan, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func MustBuild(g *plan.Graph, ps core.Set, opts Options) *Plan {
	p, err := Build(g, ps, opts)
	if err != nil {
		panic(err)
	}
	return p
}

type implInfo struct {
	// parts holds per-partition producers when the node runs
	// partitioned; nil when it runs centrally.
	parts []*Op
	// central is the central producer: the node's own operator when
	// centralized, or the memoized union over parts.
	central *Op
}

type builder struct {
	plan   *Plan
	opts   Options
	nextID int
	impl   map[*plan.Node]*implInfo
}

// compatible applies the shared-set or per-stream compatibility test,
// whichever the plan was configured with.
func (b *builder) compatible(n *plan.Node) bool {
	if b.plan.StreamSets != nil {
		return core.CompatibleStreams(b.plan.StreamSets, n)
	}
	return core.Compatible(b.plan.Set, n)
}

func (b *builder) newOp(kind OpKind, host, partition int, logical *plan.Node) *Op {
	op := &Op{ID: b.nextID, Kind: kind, Host: host, Partition: partition, Proc: partition, Logical: logical}
	b.nextID++
	b.plan.Ops = append(b.plan.Ops, op)
	return op
}

// centralize returns the operator producing the node's complete
// stream on the aggregator host, inserting (and memoizing) a union
// over per-partition producers when needed.
func (b *builder) centralize(info *implInfo) *Op {
	if info.central != nil {
		return info.central
	}
	union := b.newOp(OpUnion, b.plan.AggregatorHost, -1, nil)
	union.Inputs = append(union.Inputs, info.parts...)
	info.central = union
	return union
}

func (b *builder) buildScans(src *plan.Node) {
	info := &implInfo{}
	for p := 0; p < b.plan.Partitions; p++ {
		scan := b.newOp(OpScan, b.plan.HostOfPartition(p), p, src)
		scan.Stream = src.Stream.Name
		info.parts = append(info.parts, scan)
	}
	b.impl[src] = info
}

func (b *builder) buildNode(n *plan.Node) error {
	switch n.Kind {
	case plan.KindSelectProject:
		b.buildSelProj(n)
	case plan.KindAggregate:
		b.buildAggregate(n)
	case plan.KindJoin:
		b.buildJoin(n)
	default:
		return fmt.Errorf("optimizer: unexpected node kind %v for %s", n.Kind, n.QueryName)
	}
	return nil
}

// buildSelProj pushes selection/projection below the merge
// unconditionally (Section 5.4): it is compatible with any
// partitioning, and pushing it keeps the partitioned property alive
// for operators above it.
func (b *builder) buildSelProj(n *plan.Node) {
	child := b.impl[n.Inputs[0]]
	info := &implInfo{}
	if child.parts != nil {
		for p, in := range child.parts {
			op := b.newOp(OpSelProj, in.Host, p, n)
			op.Inputs = []*Op{in}
			info.parts = append(info.parts, op)
		}
	} else {
		op := b.newOp(OpSelProj, b.plan.AggregatorHost, -1, n)
		op.Inputs = []*Op{child.central}
		info.central = op
	}
	b.impl[n] = info
}

func (b *builder) buildAggregate(n *plan.Node) {
	child := b.impl[n.Inputs[0]]
	if n.WindowPanes > 1 {
		b.buildWindowedAggregate(n, child)
		return
	}
	info := &implInfo{}
	switch {
	case child.parts != nil && b.compatible(n):
		// Section 5.2.1: one full aggregation per partition; results
		// need no further processing centrally.
		for p, in := range child.parts {
			op := b.newOp(OpAggregate, in.Host, p, n)
			op.Inputs = []*Op{in}
			info.parts = append(info.parts, op)
		}
	case child.parts != nil && b.opts.PartialAgg && splittable(n):
		// Section 5.2.2: sub-aggregates close to the data, one
		// super-aggregate centrally.
		subs := b.buildSubAggs(n, child.parts)
		union := b.newOp(OpUnion, b.plan.AggregatorHost, -1, nil)
		union.Inputs = subs
		super := b.newOp(OpAggSuper, b.plan.AggregatorHost, -1, n)
		super.Inputs = []*Op{union}
		info.central = super
	default:
		in := b.centralize(child)
		op := b.newOp(OpAggregate, b.plan.AggregatorHost, -1, n)
		op.Inputs = []*Op{in}
		info.central = op
	}
	b.impl[n] = info
}

// buildWindowedAggregate lowers a pane-based sliding-window
// aggregation: per-pane sub-aggregates produce partials, a window
// operator merges the trailing panes. Under a compatible partitioning
// the whole chain runs per partition; otherwise the sub-aggregates
// stay close to the data and one central window merges across hosts
// and panes at once.
func (b *builder) buildWindowedAggregate(n *plan.Node, child *implInfo) {
	info := &implInfo{}
	switch {
	case child.parts != nil && b.compatible(n):
		for p, in := range child.parts {
			sub := b.newOp(OpAggSub, in.Host, p, n)
			sub.Inputs = []*Op{in}
			win := b.newOp(OpWindow, in.Host, p, n)
			win.Inputs = []*Op{sub}
			info.parts = append(info.parts, win)
		}
	case child.parts != nil && b.opts.PartialAgg:
		subs := b.buildSubAggs(n, child.parts)
		union := b.newOp(OpUnion, b.plan.AggregatorHost, -1, nil)
		union.Inputs = subs
		win := b.newOp(OpWindow, b.plan.AggregatorHost, -1, n)
		win.Inputs = []*Op{union}
		info.central = win
	default:
		in := b.centralize(child)
		sub := b.newOp(OpAggSub, b.plan.AggregatorHost, -1, n)
		sub.Inputs = []*Op{in}
		win := b.newOp(OpWindow, b.plan.AggregatorHost, -1, n)
		win.Inputs = []*Op{sub}
		info.central = win
	}
	b.impl[n] = info
}

// buildSubAggs creates the pre-aggregation layer: per partition, or
// per host with a local union in front.
func (b *builder) buildSubAggs(n *plan.Node, parts []*Op) []*Op {
	if b.opts.PartialScope == ScopePartition {
		subs := make([]*Op, len(parts))
		for p, in := range parts {
			sub := b.newOp(OpAggSub, in.Host, p, n)
			sub.Inputs = []*Op{in}
			subs[p] = sub
		}
		return subs
	}
	// ScopeHost: group the partitions living on each host.
	byHost := make(map[int][]*Op)
	order := make([]int, 0, b.plan.Hosts)
	for _, in := range parts {
		if _, seen := byHost[in.Host]; !seen {
			order = append(order, in.Host)
		}
		byHost[in.Host] = append(byHost[in.Host], in)
	}
	var subs []*Op
	for _, host := range order {
		ins := byHost[host]
		var feed *Op
		proc := ins[0].Proc // co-locate with the host's first partition
		if len(ins) == 1 {
			feed = ins[0]
		} else {
			local := b.newOp(OpUnion, host, -1, nil)
			local.Proc = proc
			local.Inputs = ins
			feed = local
		}
		sub := b.newOp(OpAggSub, host, -1, n)
		sub.Proc = proc
		sub.Inputs = []*Op{feed}
		subs = append(subs, sub)
	}
	return subs
}

func splittable(n *plan.Node) bool {
	for _, a := range n.Aggs {
		if !a.Spec.Splittable {
			return false
		}
	}
	return true
}

func (b *builder) buildJoin(n *plan.Node) {
	left := b.impl[n.Inputs[0]]
	right := b.impl[n.Inputs[1]]
	info := &implInfo{}
	if left.parts != nil && right.parts != nil && b.compatible(n) {
		// Section 5.3: pair-wise joins, one per partition. Matching
		// tuples are co-located by the compatible partitioning, so
		// outer-join padding is also correct per partition.
		for p := range left.parts {
			op := b.newOp(OpJoin, left.parts[p].Host, p, n)
			op.Inputs = []*Op{left.parts[p], right.parts[p]}
			info.parts = append(info.parts, op)
		}
	} else {
		l, rr := b.centralize(left), b.centralize(right)
		op := b.newOp(OpJoin, b.plan.AggregatorHost, -1, n)
		op.Inputs = []*Op{l, rr}
		info.central = op
	}
	b.impl[n] = info
}
