package exec

import (
	"fmt"
	"strings"

	"qap/internal/sqlval"
)

// Accum is one aggregate accumulator instance, living for one group in
// one window epoch.
type Accum interface {
	// Add folds one argument value in. COUNT ignores its argument;
	// NULL arguments are skipped by value-based aggregates (SQL
	// semantics).
	Add(v sqlval.Value)
	// Result produces the aggregate value.
	Result() sqlval.Value
}

// AccumFactory creates fresh accumulators for new groups. A factory is
// not safe for concurrent use: the simple accumulator kinds are carved
// out of factory-local slabs. The runner constructs one factory per
// physical operator, and each operator executes on a single island
// goroutine, so this is never observable there; external callers that
// share a factory across goroutines must synchronize.
type AccumFactory func() Accum

// accumSlabSize is the number of accumulators carved per slab
// allocation. Accumulators are per-(group, epoch), so a slab is
// retained at most one epoch past its last carve.
const accumSlabSize = 256

// slabbed returns a factory that carves accumulators out of chunked
// slabs instead of boxing each one, amortizing the per-group
// allocation that dominates high-cardinality aggregation.
func slabbed[T any, PT interface {
	*T
	Accum
}](init T) AccumFactory {
	var slab []T
	return func() Accum {
		if len(slab) == 0 {
			slab = make([]T, accumSlabSize)
		}
		a := &slab[0]
		slab = slab[1:]
		*a = init
		return PT(a)
	}
}

// NewAccumFactory returns a factory for the named aggregate function.
// The supported names are those in the gsql registry plus AVG_MERGE,
// the super-aggregate of a split AVG (its Add receives partial sums
// via Add and partial counts via Add2; see avgMergeAccum).
func NewAccumFactory(name string) (AccumFactory, error) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return slabbed[countAccum, *countAccum](countAccum{}), nil
	case "SUM":
		return slabbed[sumAccum, *sumAccum](sumAccum{}), nil
	case "MIN":
		return slabbed[minmaxAccum, *minmaxAccum](minmaxAccum{wantLess: true}), nil
	case "MAX":
		return slabbed[minmaxAccum, *minmaxAccum](minmaxAccum{}), nil
	case "AVG":
		return slabbed[avgAccum, *avgAccum](avgAccum{}), nil
	case "OR_AGGR":
		return slabbed[bitAccum, *bitAccum](bitAccum{op: bitOr}), nil
	case "AND_AGGR":
		return slabbed[bitAccum, *bitAccum](bitAccum{op: bitAnd, acc: ^uint64(0)}), nil
	case "XOR_AGGR":
		return slabbed[bitAccum, *bitAccum](bitAccum{op: bitXor}), nil
	case "COUNT_DISTINCT":
		return func() Accum { return &countDistinctAccum{seen: make(map[string]bool)} }, nil
	case "VARIANCE":
		return slabbed[varAccum, *varAccum](varAccum{}), nil
	case "STDDEV":
		return slabbed[varAccum, *varAccum](varAccum{sqrt: true}), nil
	case "SUMSQ":
		return slabbed[sumsqAccum, *sumsqAccum](sumsqAccum{}), nil
	case "APPROX_COUNT_DISTINCT":
		return func() Accum { return &hllAccum{} }, nil
	case "HLL_SKETCH":
		return func() Accum { return &hllSketchAccum{} }, nil
	case "HLL_MERGE":
		return func() Accum { return &hllMergeAccum{} }, nil
	default:
		return nil, fmt.Errorf("exec: unknown aggregate %q", name)
	}
}

// sumsqAccum sums squared values; it is the second moment partial of a
// split VARIANCE/STDDEV.
type sumsqAccum struct {
	sum float64
	any bool
}

func (a *sumsqAccum) Add(v sqlval.Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	a.any = true
	a.sum += f * f
}

func (a *sumsqAccum) Result() sqlval.Value {
	if !a.any {
		return sqlval.Null
	}
	return sqlval.Float(a.sum)
}

type countAccum struct{ n uint64 }

// Add counts non-NULL values; COUNT(*) callers pass a constant.
func (a *countAccum) Add(v sqlval.Value) {
	if !v.IsNull() {
		a.n++
	}
}
func (a *countAccum) Result() sqlval.Value { return sqlval.Uint(a.n) }

type sumAccum struct {
	isFloat bool
	f       float64
	i       int64
	any     bool
}

func (a *sumAccum) Add(v sqlval.Value) {
	if v.IsNull() {
		return
	}
	a.any = true
	if v.Kind() == sqlval.KindFloat || a.isFloat {
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		f, _ := v.AsFloat()
		a.f += f
		return
	}
	i, _ := v.AsInt()
	a.i += i
}

func (a *sumAccum) Result() sqlval.Value {
	switch {
	case !a.any:
		return sqlval.Null
	case a.isFloat:
		return sqlval.Float(a.f)
	case a.i < 0:
		return sqlval.Int(a.i)
	default:
		return sqlval.Uint(uint64(a.i))
	}
}

type minmaxAccum struct {
	wantLess bool
	best     sqlval.Value
	any      bool
}

func (a *minmaxAccum) Add(v sqlval.Value) {
	if v.IsNull() {
		return
	}
	if !a.any {
		a.best, a.any = v, true
		return
	}
	c := v.Compare(a.best)
	if (a.wantLess && c < 0) || (!a.wantLess && c > 0) {
		a.best = v
	}
}

func (a *minmaxAccum) Result() sqlval.Value {
	if !a.any {
		return sqlval.Null
	}
	return a.best
}

type avgAccum struct {
	sum float64
	n   uint64
}

func (a *avgAccum) Add(v sqlval.Value) {
	if v.IsNull() {
		return
	}
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	a.sum += f
	a.n++
}

func (a *avgAccum) Result() sqlval.Value {
	if a.n == 0 {
		return sqlval.Null
	}
	return sqlval.Float(a.sum / float64(a.n))
}

type bitOpKind uint8

const (
	bitOr bitOpKind = iota
	bitAnd
	bitXor
)

type bitAccum struct {
	op  bitOpKind
	acc uint64
	any bool
}

func (a *bitAccum) Add(v sqlval.Value) {
	u, ok := v.AsUint()
	if !ok {
		return
	}
	a.any = true
	switch a.op {
	case bitOr:
		a.acc |= u
	case bitAnd:
		a.acc &= u
	case bitXor:
		a.acc ^= u
	}
}

func (a *bitAccum) Result() sqlval.Value {
	if !a.any {
		return sqlval.Null
	}
	return sqlval.Uint(a.acc)
}

type countDistinctAccum struct {
	seen map[string]bool
}

func (a *countDistinctAccum) Add(v sqlval.Value) {
	if v.IsNull() {
		return
	}
	a.seen[Key([]sqlval.Value{v})] = true
}

func (a *countDistinctAccum) Result() sqlval.Value {
	return sqlval.Uint(uint64(len(a.seen)))
}
