// Package analyzers enforces the repo's source-level contracts on its
// own Go code. The determinism analyzers (walltime, maprange, fanout)
// guard the promise that simulated results are byte-identical across
// runs and worker counts: wall-clock reads, random sources, and
// map-iteration order must never leak into output or accounting
// paths. The hot-path analyzers guard the batched execution path:
// poolleak checks that every pooled batch acquired with exec.GetBatch
// is released (or its ownership transferred) on every control-flow
// path, and hotalloc flags heap-allocating expressions inside
// functions annotated //qap:hot.
//
// The package is a small vet-style framework built only on the
// standard library (go/ast, go/parser, go/types) because the build
// environment has no golang.org/x/tools. Analyzers walk type-checked
// packages and report findings; a site that is deliberately exempt —
// wall-clock timing quarantined behind obs.Timing, a map range that
// sorts before emitting — carries a
//
//	//qap:allow <analyzer> -- reason
//
// comment on the same line or the line above, which suppresses that
// analyzer there. Suppressions are themselves checked: stalesuppress
// fails the run when an allow comment no longer suppresses anything,
// so exemptions cannot outlive the code they excused. Findings are
// sorted by position, so qap-vet output is itself deterministic.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one determinism check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in findings and in
	// //qap:allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package through the pass.
	Run func(*Pass)
}

// All is the registry of analyzers, in reporting order. Stalesuppress
// must come last conceptually — it judges the //qap:allow comments
// after every other analyzer has had the chance to consume them — and
// RunAll enforces that regardless of its position here.
var All = []*Analyzer{Walltime, MapRange, Fanout, Poolleak, Hotalloc, Stalesuppress}

// Stalesuppress flags //qap:allow comments that no longer suppress
// any diagnostic, and allow comments naming no registered analyzer. A
// suppression is "used" when some analyzer in the run reported at a
// position it covers; anything else is dead weight that would hide a
// future real finding. Stale-suppression findings are themselves
// unsuppressable. The check is driven by RunAll (after all other
// analyzers have run), so Run here is a no-op.
var Stalesuppress = &Analyzer{
	Name: "stalesuppress",
	Doc:  "flags //qap:allow comments that no longer suppress any finding",
	Run:  func(*Pass) {},
}

// Finding is one analyzer report at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the familiar file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allow    allowMap
	findings *[]Finding
}

// Reportf records a finding unless a //qap:allow comment suppresses
// this analyzer at the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.allows(position, p.Analyzer.Name) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowEntry is one analyzer name from one //qap:allow comment. An
// entry that never matches a finding is stale.
type allowEntry struct {
	name string
	pos  token.Position
	used bool
}

// allowMap indexes //qap:allow comments: file name -> line -> entries.
type allowMap map[string]map[int][]*allowEntry

// allows reports whether the analyzer is suppressed at the position —
// an allow comment on the same line or the line above matches — and
// marks every matching entry used for the stalesuppress post-pass.
func (m allowMap) allows(pos token.Position, name string) bool {
	lines := m[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			if e.name == name || e.name == "all" {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// buildAllowMap scans a package's comments for //qap:allow directives.
func buildAllowMap(fset *token.FileSet, files []*ast.File) allowMap {
	m := allowMap{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "qap:allow") {
					continue
				}
				names := strings.Fields(strings.TrimPrefix(text, "qap:allow"))
				// A "--" ends the name list; the rest is the reason.
				for i, n := range names {
					if strings.HasPrefix(n, "--") {
						names = names[:i]
						break
					}
				}
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				if m[pos.Filename] == nil {
					m[pos.Filename] = map[int][]*allowEntry{}
				}
				for _, n := range names {
					m[pos.Filename][pos.Line] = append(m[pos.Filename][pos.Line],
						&allowEntry{name: n, pos: pos})
				}
			}
		}
	}
	return m
}

// staleFindings judges every allow entry after the analyzers have run:
// an entry naming no analyzer in the run is a typo, and an entry that
// suppressed nothing is stale. Both fail the build — unsuppressably,
// so a suppression cannot excuse itself.
func staleFindings(allow allowMap, known map[string]bool) []Finding {
	var out []Finding
	for _, lines := range allow { //qap:allow maprange -- RunAll sorts all findings afterwards
		for _, entries := range lines { //qap:allow maprange -- RunAll sorts all findings afterwards
			for _, e := range entries {
				switch {
				case e.name != "all" && !known[e.name]:
					out = append(out, Finding{
						Pos:      e.pos,
						Analyzer: Stalesuppress.Name,
						Message:  fmt.Sprintf("//qap:allow names unknown analyzer %q", e.name),
					})
				case !e.used:
					out = append(out, Finding{
						Pos:      e.pos,
						Analyzer: Stalesuppress.Name,
						Message:  fmt.Sprintf("//qap:allow %s suppresses nothing here — delete it", e.name),
					})
				}
			}
		}
	}
	return out
}

// RunAll runs every given analyzer over the packages and returns the
// findings sorted by position, analyzer, and message. When the list
// includes Stalesuppress it runs last over each package's allow map,
// after every other analyzer has had the chance to consume the
// suppressions.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	known := map[string]bool{}
	stale := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a == Stalesuppress {
			stale = true
		}
	}
	for _, pkg := range pkgs {
		allow := buildAllowMap(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a == Stalesuppress {
				continue // driven below, after the others
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				allow:    allow,
				findings: &findings,
			}
			a.Run(pass)
		}
		if stale {
			findings = append(findings, staleFindings(allow, known)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}
