package exec

import (
	"fmt"
	"math"

	"qap/internal/sqlval"
)

// Batch wire codec (the live TCP backend's tuple serialization).
//
// The encoding is canonical: every batch has exactly one byte
// sequence, and every byte sequence decodes to at most one batch —
// DecodeBatch rejects truncated, oversized, and non-canonical input,
// so encode(decode(data)) == data whenever decode succeeds. That
// fixed point is what FuzzBatchCodec holds the codec to, and it is
// also what makes the live backend's canonical outputs byte-identical
// to the simulator's: a value round-trips to a bit-equal sqlval.Value
// (floats travel as IEEE-754 bits, never as text).
//
// Layout, all integers big-endian:
//
//	batch := u32 tupleCount , tuple*
//	tuple := u16 colCount , value*
//	value := u8 kind , payload
//	  null   -> (nothing)
//	  uint   -> u64
//	  int    -> u64 (two's complement)
//	  float  -> u64 (IEEE-754 bits)
//	  bool   -> u8 (0 or 1; anything else is rejected)
//	  string -> u32 length , bytes
//
// The kind byte is the sqlval.Kind value itself, so the codec needs no
// translation table and a schema bump in sqlval is a wire break by
// construction (guarded by TestWireKindsPinned).

// Wire limits. Frames larger than these are rejected before any
// allocation is sized from attacker-controlled lengths.
const (
	// MaxWireCols bounds the columns of one tuple on the wire.
	MaxWireCols = 1 << 10
	// MaxWireTuples bounds the tuples of one batch on the wire.
	MaxWireTuples = 1 << 20
	// MaxWireString bounds one string value's bytes on the wire.
	MaxWireString = 1 << 20
)

// WireError is a positioned batch-codec decode failure.
type WireError struct {
	// Offset is the byte offset in the input where decoding failed.
	Offset int
	// Msg describes the failure.
	Msg string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("exec: batch wire: offset %d: %s", e.Offset, e.Msg)
}

func wireErr(off int, format string, args ...any) error {
	return &WireError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// AppendBatchWire appends the canonical wire encoding of b to dst and
// returns the extended slice.
func AppendBatchWire(dst []byte, b Batch) []byte {
	dst = appendWireU32(dst, uint32(len(b)))
	for _, t := range b {
		dst = AppendTupleWire(dst, t)
	}
	return dst
}

// AppendTupleWire appends the canonical wire encoding of one tuple.
func AppendTupleWire(dst []byte, t Tuple) []byte {
	dst = append(dst, byte(len(t)>>8), byte(len(t)))
	for _, v := range t {
		dst = appendValueWire(dst, v)
	}
	return dst
}

func appendValueWire(dst []byte, v sqlval.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case sqlval.KindNull:
	case sqlval.KindUint:
		u, _ := v.AsUint()
		dst = appendWireU64(dst, u)
	case sqlval.KindInt:
		i, _ := v.AsInt()
		dst = appendWireU64(dst, uint64(i))
	case sqlval.KindFloat:
		f, _ := v.AsFloat()
		dst = appendWireU64(dst, math.Float64bits(f))
	case sqlval.KindBool:
		if v.AsBool() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case sqlval.KindString:
		s, _ := v.AsString()
		dst = appendWireU32(dst, uint32(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeBatchWire decodes one batch from data, which must contain
// exactly one encoded batch: trailing bytes are an error, as are
// truncation, limit violations, and non-canonical values. The returned
// tuples are carved from one fresh backing slab (capacity-clamped, so
// they obey the immutable-tuple contract) and the container is a fresh
// slice the caller owns.
func DecodeBatchWire(data []byte) (Batch, error) {
	d := wireDecoder{data: data}
	n, err := d.u32("tuple count")
	if err != nil {
		return nil, err
	}
	if n > MaxWireTuples {
		return nil, wireErr(0, "batch of %d tuples exceeds the %d-tuple limit", n, MaxWireTuples)
	}
	b := make(Batch, 0, n)
	var slab []sqlval.Value
	for i := uint32(0); i < n; i++ {
		var t Tuple
		slab, t, err = d.tuple(slab)
		if err != nil {
			return nil, err
		}
		b = append(b, t)
	}
	if d.off != len(d.data) {
		return nil, wireErr(d.off, "%d trailing bytes after the batch", len(d.data)-d.off)
	}
	return b, nil
}

// wireDecoder walks one encoded batch, tracking the offset for
// positioned errors.
type wireDecoder struct {
	data []byte
	off  int
}

func (d *wireDecoder) tuple(slab []sqlval.Value) ([]sqlval.Value, Tuple, error) {
	start := d.off
	if d.off+2 > len(d.data) {
		return slab, nil, wireErr(d.off, "truncated tuple header")
	}
	cols := int(d.data[d.off])<<8 | int(d.data[d.off+1])
	d.off += 2
	if cols > MaxWireCols {
		return slab, nil, wireErr(start, "tuple of %d columns exceeds the %d-column limit", cols, MaxWireCols)
	}
	if cap(slab)-len(slab) < cols {
		// A fresh slab per shortfall: earlier tuples keep their old
		// backing arrays, which stay valid (tuples are immutable).
		size := 1024
		if cols > size {
			size = cols
		}
		slab = make([]sqlval.Value, 0, size)
	}
	base := len(slab)
	for c := 0; c < cols; c++ {
		v, err := d.value()
		if err != nil {
			return slab, nil, err
		}
		slab = append(slab, v)
	}
	return slab, Tuple(slab[base:len(slab):len(slab)]), nil
}

func (d *wireDecoder) value() (sqlval.Value, error) {
	if d.off >= len(d.data) {
		return sqlval.Null, wireErr(d.off, "truncated value kind")
	}
	kind := sqlval.Kind(d.data[d.off])
	d.off++
	switch kind {
	case sqlval.KindNull:
		return sqlval.Null, nil
	case sqlval.KindUint:
		u, err := d.u64("uint payload")
		return sqlval.Uint(u), err
	case sqlval.KindInt:
		u, err := d.u64("int payload")
		return sqlval.Int(int64(u)), err
	case sqlval.KindFloat:
		u, err := d.u64("float payload")
		return sqlval.Float(math.Float64frombits(u)), err
	case sqlval.KindBool:
		if d.off >= len(d.data) {
			return sqlval.Null, wireErr(d.off, "truncated bool payload")
		}
		b := d.data[d.off]
		d.off++
		if b > 1 {
			return sqlval.Null, wireErr(d.off-1, "non-canonical bool byte %d", b)
		}
		return sqlval.Bool(b == 1), nil
	case sqlval.KindString:
		n, err := d.u32("string length")
		if err != nil {
			return sqlval.Null, err
		}
		if n > MaxWireString {
			return sqlval.Null, wireErr(d.off-4, "string of %d bytes exceeds the %d-byte limit", n, MaxWireString)
		}
		if d.off+int(n) > len(d.data) {
			return sqlval.Null, wireErr(d.off, "truncated string payload (%d of %d bytes)", len(d.data)-d.off, n)
		}
		s := string(d.data[d.off : d.off+int(n)])
		d.off += int(n)
		return sqlval.Str(s), nil
	default:
		return sqlval.Null, wireErr(d.off-1, "unknown value kind %d", kind)
	}
}

func (d *wireDecoder) u32(what string) (uint32, error) {
	if d.off+4 > len(d.data) {
		return 0, wireErr(d.off, "truncated %s", what)
	}
	v := uint32(d.data[d.off])<<24 | uint32(d.data[d.off+1])<<16 |
		uint32(d.data[d.off+2])<<8 | uint32(d.data[d.off+3])
	d.off += 4
	return v, nil
}

func (d *wireDecoder) u64(what string) (uint64, error) {
	if d.off+8 > len(d.data) {
		return 0, wireErr(d.off, "truncated %s", what)
	}
	p := d.data[d.off:]
	v := uint64(p[0])<<56 | uint64(p[1])<<48 | uint64(p[2])<<40 | uint64(p[3])<<32 |
		uint64(p[4])<<24 | uint64(p[5])<<16 | uint64(p[6])<<8 | uint64(p[7])
	d.off += 8
	return v, nil
}

func appendWireU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendWireU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
