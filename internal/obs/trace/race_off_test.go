//go:build !race

package trace

// raceEnabled reports whether the race detector instruments this
// build; see race_on_test.go.
const raceEnabled = false
