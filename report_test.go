package qap

import (
	"bytes"
	"encoding/json"
	"testing"

	"qap/internal/netgen"
)

// reportRun deploys the complex workload with stats collection on and
// returns the run result.
func reportRun(t *testing.T, workers int, packets []netgen.Packet) *RunResult {
	t.Helper()
	sys, err := Load(netgen.SchemaDDL, ComplexQuerySet)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(DeployConfig{
		Hosts:             4,
		PartitionsPerHost: 2,
		Partitioning:      MustParseSet("srcIP"),
		Params:            map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
		Workers:           workers,
		CollectStats:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Run("TCP", packets)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunReportDeterministic is the acceptance check for the report
// layer: a collected run emits a valid JSON RunReport whose per-node
// rows are consistent with the host accounting, and whose canonical
// form is byte-identical for workers=1 and workers=8.
func TestRunReportDeterministic(t *testing.T) {
	packets := diffTrace(3)
	seq := reportRun(t, 1, packets)
	par := reportRun(t, 8, packets)

	for _, res := range []*RunResult{seq, par} {
		rep := res.Report()
		if rep == nil {
			t.Fatal("Report() is nil with CollectStats set")
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(b) {
			t.Fatal("report is not valid JSON")
		}
		// Σ RowsIn over nodes == Σ Tuples over hosts: every delivery
		// charges exactly one operator and one host.
		var rowsIn int64
		for _, n := range rep.Nodes {
			rowsIn += n.RowsIn
		}
		var tuples int64
		for _, h := range rep.Hosts {
			tuples += h.Tuples
		}
		if rowsIn == 0 || rowsIn != tuples {
			t.Errorf("sum(RowsIn)=%d, sum(Tuples)=%d; want equal and nonzero", rowsIn, tuples)
		}
		if rep.Timing == nil || rep.Timing.WallNanos <= 0 {
			t.Error("timing section missing or empty")
		}
		if rep.Prometheus() == "" {
			t.Error("empty Prometheus rendering")
		}
	}

	sj, err := seq.Report().Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := par.Report().Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Errorf("canonical reports differ between workers=1 and workers=8:\n%s\n---\n%s", sj, pj)
	}
}

// TestReportNilWhenDisabled: without CollectStats the observability
// layer must stay entirely out of the way.
func TestReportNilWhenDisabled(t *testing.T) {
	res := deployRun(t, ComplexQuerySet, MustParseSet("srcIP"), 2, 1, diffTrace(3))
	if res.Report() != nil || res.OpStats != nil {
		t.Error("stats populated without CollectStats")
	}
}
