package exec

import (
	"testing"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// Committed allocation budgets for the columnar path, in allocations
// per operation as measured by testing.AllocsPerRun. The columnar
// contract is stricter than the row path's: compiled kernels own
// their scratch vectors and the dense aggregate store its arrays, so
// the steady state is exactly zero, not merely small.
const (
	// A compiled kernel over a warmed ColBatch refills private
	// scratch; nothing escapes.
	allocBudgetColKernelSteady = 0
	// SetFromRows into a warmed ColBatch reuses every column slice
	// and validity bitmap.
	allocBudgetColPivotSteady = 0
	// FilterProject.PushCols per input tuple: the selection vector,
	// projection scratch, and output ColBatch are all reused.
	allocBudgetFilterProjectColsPerTuple = 0.02
	// Aggregate.PushCols per input tuple in the dense steady state
	// (every group resident in the word store): key words hash into
	// the generation-tagged slot table and accumulators update in
	// place, so per-tuple allocations round to zero.
	allocBudgetAggregateColsPerTupleSteady = 0.02
)

// colAllocBatch builds a warmed all-uint ColBatch over the 5-column
// schema with n rows in 16 groups.
func colAllocBatch(t *testing.T, n int) (*ColBatch, Batch) {
	t.Helper()
	rows := make(Batch, n)
	for i := range rows {
		rows[i] = Tuple{
			u(uint64(i % 50)),        // time
			u(uint64(i % 16)),        // srcIP
			u(2),                     // destIP
			u(uint64(i) & 0x3f),      // flags
			u(uint64(41 + (i % 11))), // len
		}
	}
	cb := &ColBatch{}
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	return cb, rows
}

func TestAllocsColKernelSteadyState(t *testing.T) {
	skipIfRace(t)
	cb, _ := colAllocBatch(t, 64)
	for _, src := range []string{
		"srcIP + len * 2",
		"flags & 0x26",
		"time / 60",
		"srcIP << len",
	} {
		ce := mustCompileCol(t, src, colTestResolver, nil)
		if ce.U == nil {
			t.Fatalf("%q: no uint kernel", src)
		}
		ce.U(cb) // warm the scratch vector
		got := testing.AllocsPerRun(100, func() { ce.U(cb) })
		if got > allocBudgetColKernelSteady {
			t.Errorf("uint kernel %q: %.2f allocs/op, budget %d", src, got, allocBudgetColKernelSteady)
		}
	}
	for _, src := range []string{
		"len > 45",
		"srcIP = 1 AND (destIP = 2 OR len < 43)",
		"NOT flags",
	} {
		ce := mustCompileCol(t, src, colTestResolver, nil)
		if ce.Truth == nil {
			t.Fatalf("%q: no truth kernel", src)
		}
		ce.Truth(cb)
		got := testing.AllocsPerRun(100, func() { ce.Truth(cb) })
		if got > allocBudgetColKernelSteady {
			t.Errorf("truth kernel %q: %.2f allocs/op, budget %d", src, got, allocBudgetColKernelSteady)
		}
	}
}

func TestAllocsColBatchPivotSteadyState(t *testing.T) {
	skipIfRace(t)
	cb, rows := colAllocBatch(t, 64)
	got := testing.AllocsPerRun(100, func() {
		if !cb.SetFromRows(rows) {
			t.Fatal("SetFromRows failed")
		}
	})
	if got > allocBudgetColPivotSteady {
		t.Errorf("SetFromRows into warm batch: %.2f allocs/op, budget %d", got, allocBudgetColPivotSteady)
	}
}

func TestAllocsFilterProjectPushCols(t *testing.T) {
	skipIfRace(t)
	r := colTestResolver
	op := &FilterProject{
		Filter:    MustCompile(gsql.MustParseExpr("len > 42"), r, nil),
		ColFilter: colPtr(mustCompileCol(t, "len > 42", r, nil)),
		Projs: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP & 0xFF00"), r, nil),
		},
		ColProjs: []ColExpr{
			mustCompileCol(t, "time", r, nil),
			mustCompileCol(t, "srcIP & 0xFF00", r, nil),
		},
		Out: Discard{},
	}
	const n = 64
	cb, _ := colAllocBatch(t, n)
	op.PushCols(cb) // warm selection vector and output columns
	perBatch := testing.AllocsPerRun(100, func() { op.PushCols(cb) })
	if perTuple := perBatch / n; perTuple > allocBudgetFilterProjectColsPerTuple {
		t.Errorf("FilterProject.PushCols: %.3f allocs/tuple (%.1f per %d-tuple batch), budget %.3f",
			perTuple, perBatch, n, allocBudgetFilterProjectColsPerTuple)
	}
}

func TestAllocsAggregatePushColsSteadyState(t *testing.T) {
	skipIfRace(t)
	r := colTestResolver
	agg := NewAggregate(AggregateConfig{
		PreFilter:    MustCompile(gsql.MustParseExpr("len > 40"), r, nil),
		ColPreFilter: colPtr(mustCompileCol(t, "len > 40", r, nil)),
		GroupBy: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
		},
		ColGroupBy: []ColExpr{
			mustCompileCol(t, "time", r, nil),
			mustCompileCol(t, "srcIP", r, nil),
		},
		EpochIdx:  0,
		EpochOfWM: func(wm uint64) sqlval.Value { return sqlval.Uint(wm / 16) },
		Aggs: []AggColumn{
			{Factory: mustFactory(t, "COUNT")},
			{Factory: mustFactory(t, "SUM"), Arg: MustCompile(gsql.MustParseExpr("len"), r, nil)},
		},
		ColArgs: []*ColExpr{
			nil,
			colPtr(mustCompileCol(t, "len", r, nil)),
		},
		Out: Discard{},
	})
	const n = 64
	cb, _ := colAllocBatch(t, n)
	agg.PushCols(cb) // create every dense group up front
	if agg.denseN == 0 {
		t.Fatal("dense columnar store did not engage; this test must measure the dense path")
	}
	perBatch := testing.AllocsPerRun(100, func() { agg.PushCols(cb) })
	if perTuple := perBatch / n; perTuple > allocBudgetAggregateColsPerTupleSteady {
		t.Errorf("Aggregate.PushCols dense steady state: %.4f allocs/tuple (%.1f per %d-tuple batch), budget %.4f",
			perTuple, perBatch, n, allocBudgetAggregateColsPerTupleSteady)
	}
	if agg.GroupCount() == 0 {
		t.Fatal("no groups formed")
	}
}
