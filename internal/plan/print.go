package plan

import (
	"fmt"
	"strings"
)

// String renders the DAG as an indented tree rooted at each root node,
// suitable for golden tests of plan shape (e.g. the paper's Figure 1).
// Shared subtrees are printed once and referenced afterwards.
func (g *Graph) String() string {
	var b strings.Builder
	printed := make(map[*Node]bool)
	roots := g.Roots()
	for i, r := range roots {
		if i > 0 {
			b.WriteByte('\n')
		}
		printNode(&b, r, 0, printed)
	}
	return b.String()
}

func printNode(b *strings.Builder, n *Node, depth int, printed map[*Node]bool) {
	indent := strings.Repeat("  ", depth)
	if printed[n] {
		fmt.Fprintf(b, "%s^%s\n", indent, n.refName())
		return
	}
	printed[n] = true
	fmt.Fprintf(b, "%s%s\n", indent, n.Describe())
	for _, in := range n.Inputs {
		printNode(b, in, depth+1, printed)
	}
}

func (n *Node) refName() string {
	if n.QueryName != "" {
		return n.QueryName
	}
	return fmt.Sprintf("node%d", n.ID)
}

// Describe renders a one-line summary of the node's operator and its
// defining expressions.
func (n *Node) Describe() string {
	switch n.Kind {
	case KindSource:
		return fmt.Sprintf("source %s", n.Stream.Name)
	case KindSelectProject:
		var parts []string
		for _, p := range n.Projs {
			parts = append(parts, p.Name)
		}
		s := fmt.Sprintf("select/project %s [%s]", n.QueryName, strings.Join(parts, ", "))
		if n.Filter != nil {
			s += " where " + n.Filter.String()
		}
		return s
	case KindAggregate:
		var gb, aggs []string
		for _, g := range n.GroupBy {
			gb = append(gb, g.Expr.String())
		}
		for _, a := range n.Aggs {
			aggs = append(aggs, a.String())
		}
		s := fmt.Sprintf("aggregate %s group-by(%s) aggs(%s)", n.QueryName,
			strings.Join(gb, ", "), strings.Join(aggs, ", "))
		if n.PreFilter != nil {
			s += " where " + n.PreFilter.String()
		}
		if n.Having != nil {
			s += " having " + n.Having.String()
		}
		return s
	case KindJoin:
		var keys []string
		for i := range n.LeftKeys {
			keys = append(keys, fmt.Sprintf("%s=%s", n.LeftKeys[i], n.RightKeys[i]))
		}
		return fmt.Sprintf("%s %s on(%s)", strings.ToLower(n.JoinType.String()), n.QueryName, strings.Join(keys, ", "))
	default:
		return n.label()
	}
}
