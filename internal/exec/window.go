package exec

import (
	"sort"

	"qap/internal/sqlval"
)

// SlidingWindowConfig configures pane-based sliding-window merging
// (Li et al.'s "no pane, no gain" evaluation, which the paper's
// Section 3.1 adopts): the upstream aggregation emits per-pane partial
// rows (groups ++ partial aggregates, exactly the sub-aggregate
// layout); this operator merges, for every group, the partials of the
// last Panes panes and emits one result per pane slide.
type SlidingWindowConfig struct {
	// GroupCols is the number of leading group columns in each input
	// row (the remainder are partial aggregate values).
	GroupCols int
	// EpochIdx is the group column holding the pane id.
	EpochIdx int
	// PaneOfWM translates a base-time watermark into the lowest pane
	// id any future row can carry.
	PaneOfWM func(uint64) sqlval.Value
	// Panes is the window size in panes; results cover panes
	// (p-Panes, p] for every closing pane p.
	Panes uint64
	// Mergers create the accumulator merging one partial column
	// across panes (and across hosts, when partials arrive from
	// several sub-aggregates); Mergers[i] consumes input column
	// GroupCols+i.
	Mergers []AccumFactory
	// Having filters merged windows; it sees groups ++ merged values.
	Having EvalFunc
	// Post computes the output row from groups ++ merged values; nil
	// emits them unchanged.
	Post []EvalFunc
	Out  Consumer
	// OnPaneFlush, when set, observes every closed pane: pane is the
	// closing pane id, groups the distinct groups with data in the
	// window, rows the result rows emitted after HAVING. Purely
	// observational — it runs after the rows are pushed.
	OnPaneFlush func(pane uint64, groups, rows int)
}

type paneGroup struct {
	key  string
	vals []sqlval.Value // group values, pane column included
	pane uint64
	rows []Tuple // partial rows for this (group, pane)
}

// SlidingWindow merges per-pane partial aggregates into sliding-window
// results. Rows arrive keyed by (group, pane); when the watermark
// closes pane p, every group with any data in window (p-Panes, p]
// emits a merged row whose pane column is p.
type SlidingWindow struct {
	cfg SlidingWindowConfig
	// panes maps (group-without-pane key, pane) to buffered partials.
	panes map[string]*paneGroup
	// next is the next pane to close; set lazily from the first data.
	next    uint64
	nextSet bool
	anyPane bool
	minPane uint64
	maxPane uint64
	lastWM  uint64
	wmSeen  bool
	flushed bool
	// valsBuf is Push's reused group-column scratch; a persistent
	// copy is made only when a new pane group is created.
	valsBuf []sqlval.Value
}

// NewSlidingWindow builds the operator.
func NewSlidingWindow(cfg SlidingWindowConfig) *SlidingWindow {
	if cfg.Panes == 0 {
		cfg.Panes = 1
	}
	return &SlidingWindow{cfg: cfg, panes: make(map[string]*paneGroup)}
}

// groupKeyNoPane builds the group identity with the pane column
// blanked, so one group's panes collate.
func (w *SlidingWindow) groupKeyNoPane(vals []sqlval.Value) string {
	masked := make([]sqlval.Value, len(vals))
	copy(masked, vals)
	masked[w.cfg.EpochIdx] = sqlval.Null
	return Key(masked)
}

// Push implements Consumer.
//
//qap:hot
func (w *SlidingWindow) Push(t Tuple) {
	scratch := w.valsBuf
	if cap(scratch) < w.cfg.GroupCols {
		scratch = make([]sqlval.Value, w.cfg.GroupCols) //qap:allow hotalloc -- scratch grown once per operator
	}
	scratch = scratch[:w.cfg.GroupCols]
	copy(scratch, t[:w.cfg.GroupCols])
	w.valsBuf = scratch
	pane, ok := scratch[w.cfg.EpochIdx].AsUint()
	if !ok {
		return
	}
	key := w.groupKeyNoPane(scratch)
	pk := key + "\x00" + string(appendU64(nil, pane))
	pg, exists := w.panes[pk]
	if !exists {
		vals := make([]sqlval.Value, w.cfg.GroupCols) //qap:allow hotalloc -- one persistent copy per new pane group
		copy(vals, scratch)
		pg = &paneGroup{key: key, vals: vals, pane: pane} //qap:allow hotalloc -- one per new pane group, not per tuple
		w.panes[pk] = pg
	}
	pg.rows = append(pg.rows, t)
	if !w.anyPane || pane < w.minPane {
		w.minPane = pane
	}
	if !w.anyPane || pane > w.maxPane {
		w.maxPane = pane
	}
	w.anyPane = true
}

// Advance implements Consumer: emit windows for every pane strictly
// below the watermark's pane.
func (w *SlidingWindow) Advance(wm uint64) {
	if w.wmSeen && wm <= w.lastWM {
		return
	}
	w.lastWM, w.wmSeen = wm, true
	if w.cfg.PaneOfWM == nil {
		w.Out().Advance(wm)
		return
	}
	boundary, ok := w.cfg.PaneOfWM(wm).AsUint()
	if ok && boundary > 0 {
		w.emitThrough(boundary - 1)
	}
	w.Out().Advance(wm)
}

// Flush implements Consumer.
func (w *SlidingWindow) Flush() {
	if w.flushed {
		return
	}
	w.flushed = true
	if w.anyPane {
		w.emitThrough(w.maxPane)
	}
	w.Out().Flush()
}

// Out returns the downstream consumer.
func (w *SlidingWindow) Out() Consumer { return w.cfg.Out }

// BufferedPanes reports live (group, pane) buffers, for eviction tests.
func (w *SlidingWindow) BufferedPanes() int { return len(w.panes) }

// emitThrough closes every pane up to and including last.
func (w *SlidingWindow) emitThrough(last uint64) {
	if !w.anyPane {
		return
	}
	if !w.nextSet {
		w.next, w.nextSet = w.minPane, true
	}
	for ; w.next <= last; w.next++ {
		w.emitPane(w.next)
		w.evict()
	}
}

// emitPane emits the window ending at pane p for every group with data
// in (p-Panes, p].
func (w *SlidingWindow) emitPane(p uint64) {
	lo := uint64(0)
	if w.cfg.Panes <= p {
		lo = p - w.cfg.Panes + 1
	}
	type windowState struct {
		vals []sqlval.Value
		accs []Accum
		any  bool
	}
	groups := make(map[string]*windowState)
	var order []string
	for _, pg := range w.panes { //qap:allow maprange -- emission order collected then sorted below
		if pg.pane < lo || pg.pane > p {
			continue
		}
		ws, ok := groups[pg.key]
		if !ok {
			vals := make([]sqlval.Value, len(pg.vals))
			copy(vals, pg.vals)
			vals[w.cfg.EpochIdx] = sqlval.Uint(p) // window end pane
			ws = &windowState{vals: vals, accs: make([]Accum, len(w.cfg.Mergers))}
			for i, m := range w.cfg.Mergers {
				ws.accs[i] = m()
			}
			groups[pg.key] = ws
			order = append(order, pg.key)
		}
		for _, row := range pg.rows {
			for i := range w.cfg.Mergers {
				ws.accs[i].Add(row[w.cfg.GroupCols+i])
			}
			ws.any = true
		}
	}
	sort.Strings(order)
	pushed := 0
	for _, key := range order {
		ws := groups[key]
		if !ws.any {
			continue
		}
		row := make(Tuple, 0, len(ws.vals)+len(ws.accs))
		row = append(row, ws.vals...)
		for _, a := range ws.accs {
			row = append(row, a.Result())
		}
		if w.cfg.Having != nil && !w.cfg.Having(row).AsBool() {
			continue
		}
		if w.cfg.Post == nil {
			w.cfg.Out.Push(row)
			pushed++
			continue
		}
		out := make(Tuple, len(w.cfg.Post))
		for i, f := range w.cfg.Post {
			out[i] = f(row)
		}
		w.cfg.Out.Push(out)
		pushed++
	}
	if w.cfg.OnPaneFlush != nil && len(order) > 0 {
		w.cfg.OnPaneFlush(p, len(order), pushed)
	}
}

// evict drops pane buffers no window ending at pane >= next can
// reference: those with pane + Panes <= next.
func (w *SlidingWindow) evict() {
	for k, pg := range w.panes { //qap:allow maprange -- delete-only eviction
		if pg.pane+w.cfg.Panes <= w.next {
			delete(w.panes, k)
		}
	}
}
