// Package prove turns the partitioning analysis's semantic claim —
// distributed execution under a candidate partitioning set is
// equivalent to centralized execution — into a checkable artifact. For
// every plan node the prover constructs an explicit derivation: a
// chain of named scope-rule applications (with paper-section citations
// and, where a rule surfaces as a lint diagnostic, its QAP code from
// internal/lint) concluding either PARTITIONED≡CENTRAL or
// MUST-CENTRALIZE. The serialized certificate is independently
// re-checkable: Verify validates every step's side condition against
// the plan's lineage and the element-coarsening lattice without
// re-running the inference in internal/core, so a certificate is
// evidence, not an assertion.
package prove

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"qap/internal/core"
	"qap/internal/plan"
)

// Version is the certificate format version. Parse rejects any other.
const Version = 1

// Node verdicts: the two possible conclusions of a node's derivation.
const (
	VerdictPartitioned = "PARTITIONED≡CENTRAL"
	VerdictCentralize  = "MUST-CENTRALIZE"
)

// Step is one named rule application in a node's derivation. The
// subject fields (Term, Elem, Of, Deps) identify what the rule was
// applied to; Premises are indices of earlier steps in the same node
// proof whose conclusions this step consumes; Concl is the canonical
// conclusion string the verifier recomputes.
type Step struct {
	Rule     string   `json:"rule"`
	Code     string   `json:"code,omitempty"` // QAP lint code, when the rule has one
	Section  string   `json:"section"`        // paper-section citation
	Term     string   `json:"term,omitempty"` // GROUP BY term name or "l = r" key pair
	Elem     string   `json:"elem,omitempty"` // partitioning element text
	Of       string   `json:"of,omitempty"`   // covering scope element text
	Deps     []string `json:"deps,omitempty"` // input node names a verdict step relies on
	Premises []int    `json:"premises,omitempty"`
	Concl    string   `json:"concl"`
}

// NodeProof is one query node's derivation chain and verdict.
type NodeProof struct {
	Node    string `json:"node"` // query name
	Kind    string `json:"kind"` // plan.Kind string
	Steps   []Step `json:"steps"`
	Verdict string `json:"verdict"`
}

// Certificate is a complete serialized proof for one plan graph and
// one candidate partitioning set. Fingerprint binds it to the plan:
// Verify refuses a certificate presented against a different graph.
type Certificate struct {
	Version     int         `json:"version"`
	Set         string      `json:"set"` // canonical set text, e.g. "(srcIP & 0xFFF0)"
	Fingerprint string      `json:"fingerprint"`
	Nodes       []NodeProof `json:"nodes"` // query nodes in topological order
}

// CanonicalJSON serializes the certificate to its canonical byte
// form: struct-ordered keys, no maps, a single trailing newline.
// Byte-identical across runs, -shuffle orders, and worker counts.
func (c *Certificate) CanonicalJSON() ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseCertificate decodes a serialized certificate strictly: unknown
// fields, trailing garbage, and unsupported versions are errors.
func ParseCertificate(b []byte) (*Certificate, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var c Certificate
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("prove: bad certificate: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("prove: trailing data after certificate")
	}
	if c.Version != Version {
		return nil, fmt.Errorf("prove: unsupported certificate version %d (want %d)", c.Version, Version)
	}
	return &c, nil
}

// Fingerprint hashes the plan graph's proof-relevant structure: node
// names, kinds, wiring, GROUP BY expressions, window shape, and join
// keys, in topological order. A certificate carries the fingerprint
// of the graph it was proven against.
func Fingerprint(g *plan.Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "node %s kind %s", strings.ToLower(n.QueryName), n.Kind)
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, " in %s", strings.ToLower(in.QueryName))
		}
		for _, gc := range n.GroupBy {
			fmt.Fprintf(&b, " group %s=%s", strings.ToLower(gc.Name), gc.Expr.String())
		}
		if n.WindowPanes > 1 {
			fmt.Fprintf(&b, " panes %d", n.WindowPanes)
		}
		for i := range n.LeftKeys {
			fmt.Fprintf(&b, " key %s=%s", n.LeftKeys[i].String(), n.RightKeys[i].String())
		}
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// setText renders a partitioning set in the canonical form stored in
// Certificate.Set.
func setText(ps core.Set) string { return ps.String() }

// parseSetText parses the canonical "(a, b)" form back into a set and
// rejects non-canonical spellings, so Certificate.Set admits exactly
// one byte representation per set.
func parseSetText(s string) (core.Set, error) {
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("prove: set %q is not in canonical parenthesized form", s)
	}
	inner := s[1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		if s != "()" {
			return nil, fmt.Errorf("prove: empty set must render as %q, got %q", "()", s)
		}
		return nil, nil
	}
	ps, err := core.ParseSet(inner)
	if err != nil {
		return nil, err
	}
	if ps.String() != s {
		return nil, fmt.Errorf("prove: set %q is not canonical (want %q)", s, ps.String())
	}
	return ps, nil
}

// Human renders the certificate as an indented, numbered derivation
// per node — the qap-prove default output.
func (c *Certificate) Human() string {
	var b strings.Builder
	fmt.Fprintf(&b, "certificate v%d for partitioning set %s\n", c.Version, c.Set)
	fmt.Fprintf(&b, "plan fingerprint %s\n", c.Fingerprint)
	for i := range c.Nodes {
		np := &c.Nodes[i]
		fmt.Fprintf(&b, "\nnode %s (%s): %s\n", np.Node, np.Kind, np.Verdict)
		for j, st := range np.Steps {
			fmt.Fprintf(&b, "  %2d. [%s", j+1, st.Rule)
			if st.Code != "" {
				fmt.Fprintf(&b, " %s", st.Code)
			}
			fmt.Fprintf(&b, " §%s]", st.Section)
			if st.Term != "" {
				fmt.Fprintf(&b, " term %s:", st.Term)
			}
			if st.Elem != "" && (st.Rule == RuleUncovered || st.Rule == RuleGroupTemporalSliding) {
				fmt.Fprintf(&b, " %s:", st.Elem)
			}
			if st.Rule == RuleCovers {
				fmt.Fprintf(&b, " %s ⊑ %s:", st.Elem, st.Of)
			}
			fmt.Fprintf(&b, " %s", st.Concl)
			if len(st.Premises) > 0 {
				refs := make([]string, len(st.Premises))
				for k, p := range st.Premises {
					refs[k] = fmt.Sprintf("%d", p+1)
				}
				fmt.Fprintf(&b, "  [from %s]", strings.Join(refs, ","))
			}
			if len(st.Deps) > 0 {
				fmt.Fprintf(&b, "  [inputs %s]", strings.Join(st.Deps, ", "))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
