// Command qap-bench regenerates the data behind every measured figure
// of the paper's evaluation (Figures 8, 9, 10, 11, 13, 14) and prints
// the same series as text tables.
//
// Usage:
//
//	qap-bench [-fig 8|10|13|all] [-rate pps] [-duration sec]
//	          [-hosts n] [-leaf]
//	qap-bench -exec [-exec-runs n] [-rate pps] [-duration sec]
//
// A figure number selects the experiment that produces it (CPU and
// network figures come from the same sweep: 8 prints 8+9, 10 prints
// 10+11, 13 prints 13+14).
//
// -exec runs the batched-vs-scalar hot-path microbenchmark instead
// (the Figure 8 workload at batch sizes 1/64/256/1024, the same shape
// as BenchmarkBatchedThroughput) and, with -bench-out, writes
// BENCH_exec.json including the >=2x speedup / <=0.25x allocs gate
// verdict. The committed seed was produced by:
//
//	qap-bench -exec -rate 2000 -duration 60 -exec-runs 20 -bench-out .
//
// -drift runs the adaptive-repartitioning experiment instead: a
// two-phase skew-shift trace under the default drift scenario, static
// versus adaptive, and, with -bench-out, writes BENCH_drift.json (the
// per-window static/adaptive load comparison plus the trigger and
// bound verdicts; see EXPERIMENTS.md).
//
// Reported numbers are deterministic for any -workers value; the
// determinism contract is machine-enforced by cmd/qap-vet, and the
// wall-clock reads below are quarantined under the report's "timing"
// key.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"qap"
	"qap/internal/netgen"
	"qap/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8, 9, 10, 11, 13, 14, or all")
	rate := flag.Int("rate", 1500, "trace packet rate (packets/sec)")
	duration := flag.Int("duration", 300, "trace duration (sec)")
	hosts := flag.Int("hosts", 4, "maximum cluster size")
	seed := flag.Int64("seed", 1, "trace random seed")
	leaf := flag.Bool("leaf", false, "also print the Section 6.1 leaf-load series")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulator worker goroutines (1 = sequential engine; results are identical)")
	batch := flag.Int("batch", 0, "operator batch size (0 = engine default, 1 = tuple-at-a-time; results are identical)")
	benchOut := flag.String("bench-out", "", "also write each experiment's machine-readable BENCH_<name>.json into this directory")
	execBench := flag.Bool("exec", false, "run the batched-vs-scalar execution microbenchmark instead of the figure experiments")
	execRuns := flag.Int("exec-runs", 5, "measured trace replays per batch size for -exec")
	driftBench := flag.Bool("drift", false, "run the adaptive-repartitioning drift experiment instead of the figure experiments")
	flag.Parse()

	cfg := qap.DefaultExperimentConfig()
	cfg.Trace.Seed = *seed
	cfg.Trace.PacketsPerSec = *rate
	cfg.Trace.DurationSec = *duration
	cfg.MaxHosts = *hosts
	cfg.Workers = *workers
	cfg.BatchSize = *batch

	if *execBench {
		runExec(*seed, *rate, *duration, *execRuns, *benchOut)
		return
	}
	if *driftBench {
		runDrift(*seed, *workers, *batch, *benchOut)
		return
	}

	type experiment struct {
		name string
		ids  []string
		run  func(qap.ExperimentConfig) (*qap.Figure, *qap.Figure, error)
	}
	experiments := []experiment{
		{"fig8_9", []string{"8", "9"}, qap.Figures8and9},
		{"fig10_11", []string{"10", "11"}, qap.Figures10and11},
		{"fig13_14", []string{"13", "14"}, qap.Figures13and14},
	}

	ran := false
	for _, ex := range experiments {
		if *fig != "all" && *fig != ex.ids[0] && *fig != ex.ids[1] {
			continue
		}
		ran = true
		started := time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
		cpu, net, err := ex.run(cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(started) //qap:allow walltime -- wall time quarantined in obs.Timing
		fmt.Println(cpu.Table())
		fmt.Println(net.Table())
		if *benchOut != "" {
			writeBench(*benchOut, ex.name, cfg, wall, cpu, net)
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (use 8, 9, 10, 11, 13, 14, or all)", *fig))
	}

	if *leaf {
		started := time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
		loads, err := qap.LeafLoads(cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(started) //qap:allow walltime -- wall time quarantined in obs.Timing
		fmt.Println("Section 6.1 leaf-node CPU load (Naive configuration):")
		fmt.Printf("%8s  %10s\n", "# nodes", "leaf CPU %")
		hosts := make([]int, len(loads))
		for i, l := range loads {
			fmt.Printf("%8d  %10.1f\n", i+1, l)
			hosts[i] = i + 1
		}
		if *benchOut != "" {
			leafFig := &qap.Figure{
				ID: "leaf", Title: "Leaf-node CPU load (Naive)", Metric: "CPU load (%)",
				Hosts:  hosts,
				Series: []qap.Series{{Name: "Naive", Values: loads}},
			}
			writeBench(*benchOut, "leaf", cfg, wall, leafFig)
		}
	}
}

// writeBench emits one experiment's BENCH_<name>.json: the figure
// series (deterministic) plus the wall-clock cost of producing them.
func writeBench(dir, name string, cfg qap.ExperimentConfig, wall time.Duration, figs ...*qap.Figure) {
	rep := &obs.BenchReport{
		SchemaVersion: obs.SchemaVersion,
		Name:          name,
		Config: obs.BenchConfig{
			RatePPS:     cfg.Trace.PacketsPerSec,
			DurationSec: cfg.Trace.DurationSec,
			MaxHosts:    cfg.MaxHosts,
			Seed:        cfg.Trace.Seed,
			Workers:     cfg.Workers,
		},
		WallNanos: int64(wall),
	}
	runs := 0
	for _, f := range figs {
		bf := obs.BenchFigure{ID: f.ID, Title: f.Title, Metric: f.Metric, Hosts: f.Hosts}
		for _, s := range f.Series {
			bf.Series = append(bf.Series, obs.BenchSeries{Name: s.Name, Values: s.Values})
		}
		rep.Figures = append(rep.Figures, bf)
	}
	// The CPU and network figures of one experiment come from the same
	// sweep, so the run count is one figure's series x cluster sizes.
	if len(figs) > 0 {
		runs = len(figs[0].Series) * len(figs[0].Hosts)
	}
	if sec := wall.Seconds(); sec > 0 {
		packets := float64(runs) * float64(cfg.Trace.PacketsPerSec) * float64(cfg.Trace.DurationSec)
		rep.SimulatedPacketsPerSec = packets / sec
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := obs.WriteJSON(path, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// execBatchSizes is the batch-size sweep of the hot-path benchmark;
// batch 1 is the tuple-at-a-time scalar baseline the gate ratios are
// computed against.
var execBatchSizes = []int{1, 64, 256, 1024}

// Gate thresholds for the batched path (ISSUE 5 acceptance): at least
// one batched row must clear both versus batch size 1.
const (
	execGateMinSpeedup    = 2.0
	execGateMaxAllocRatio = 0.25
)

// runExec measures the batched-vs-scalar hot path on the Figure 8
// workload and optionally writes BENCH_exec.json. The trace uses the
// netgen defaults (the benchmark's shape) rather than the figure
// experiments' widened address mix, so the numbers line up with
// BenchmarkBatchedThroughput.
func runExec(seed int64, rate, duration, runs int, benchOut string) {
	trace := netgen.DefaultConfig()
	trace.Seed = seed
	trace.PacketsPerSec = rate
	trace.DurationSec = duration

	results, err := qap.BatchedThroughput(trace, execBatchSizes, runs)
	if err != nil {
		fatal(err)
	}

	rep := &obs.ExecBenchReport{
		SchemaVersion: obs.SchemaVersion,
		Name:          "exec",
		Config: obs.BenchConfig{
			RatePPS:     rate,
			DurationSec: duration,
			MaxHosts:    1,
			Seed:        seed,
			Workers:     1,
		},
		RunsPerBatchSize:  runs,
		GateMinSpeedup:    execGateMinSpeedup,
		GateMaxAllocRatio: execGateMaxAllocRatio,
	}
	var scalar qap.BatchedThroughputResult
	for _, r := range results {
		if r.BatchSize == 1 {
			scalar = r
		}
	}
	fmt.Printf("Batched vs scalar execution (suspicious flows, %d rows, %d runs/batch):\n", scalar.Rows, runs)
	fmt.Printf("%8s  %12s  %12s  %14s  %12s  %9s  %9s\n",
		"batch", "ns/run", "rows/s", "B/run", "allocs/run", "speedup", "allocs x")
	for _, r := range results {
		row := obs.ExecBenchRow{
			BatchSize:    r.BatchSize,
			NanosPerRun:  r.NanosPerRun,
			RowsPerSec:   r.RowsPerSec,
			BytesPerRun:  r.BytesPerRun,
			AllocsPerRun: r.AllocsPerRun,
		}
		if scalar.RowsPerSec > 0 {
			row.SpeedupVsScalar = r.RowsPerSec / scalar.RowsPerSec
		}
		if scalar.AllocsPerRun > 0 {
			row.AllocRatioVsScalar = float64(r.AllocsPerRun) / float64(scalar.AllocsPerRun)
		}
		if r.BatchSize > 1 &&
			row.SpeedupVsScalar >= execGateMinSpeedup &&
			row.AllocRatioVsScalar <= execGateMaxAllocRatio {
			rep.GateMet = true
		}
		rep.Rows = append(rep.Rows, row)
		rep.RowsPerRun = r.Rows
		fmt.Printf("%8d  %12d  %12.0f  %14d  %12d  %8.2fx  %8.3fx\n",
			r.BatchSize, r.NanosPerRun, r.RowsPerSec, r.BytesPerRun, r.AllocsPerRun,
			row.SpeedupVsScalar, row.AllocRatioVsScalar)
	}
	fmt.Printf("gate (>=%.1fx rows/s, <=%.2fx allocs vs batch=1): met=%v\n",
		execGateMinSpeedup, execGateMaxAllocRatio, rep.GateMet)

	if benchOut != "" {
		path := filepath.Join(benchOut, "BENCH_exec.json")
		if err := obs.WriteJSON(path, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// runDrift executes the adaptive-repartitioning drift experiment and
// prints the static-vs-adaptive per-window comparison; with benchOut it
// also writes BENCH_drift.json.
func runDrift(seed int64, workers, batch int, benchOut string) {
	sc := qap.DefaultDriftScenario()
	sc.Trace.Seed = seed
	sc.Workers = workers
	sc.BatchSize = batch
	rep, ares, err := qap.RunDriftExperiment(sc)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Adaptive repartitioning under drift (window %ds, trigger %.2fx bound):\n",
		rep.LoadWindowSec, rep.TriggerFactor)
	fmt.Printf("  initial set %s (bound %.0f B/s)\n", rep.InitialSet, rep.Bound)
	if rep.TriggerWindow < 0 {
		fmt.Println("  trigger never fired")
	} else {
		fmt.Printf("  trigger: window %d, measured %.0f B/s; switch at t=%ds\n",
			rep.TriggerWindow, rep.TriggerRate, rep.SwitchTimeSec)
		fmt.Printf("  final set %s (refreshed bound %.0f B/s), repartitioned=%v\n",
			rep.FinalSet, rep.NewBound, rep.Repartitioned)
		fmt.Printf("  post-switch peak %.0f B/s, within bound: %v\n",
			rep.PostSwitchPeakBps, rep.WithinBoundAfterSwitch)
	}
	fmt.Printf("%8s  %8s  %14s  %14s  %s\n", "window", "t (s)", "static B/s", "adaptive B/s", "set")
	for _, row := range rep.Rows {
		set := rep.InitialSet
		if row.AdaptiveUsesFinalSet {
			set = rep.FinalSet
		}
		fmt.Printf("%8d  %8d  %14.0f  %14.0f  %s\n",
			row.Window, row.StartSec, row.StaticMaxHostBps, row.AdaptiveMaxHostBps, set)
	}
	_ = ares

	if benchOut != "" {
		path := filepath.Join(benchOut, "BENCH_drift.json")
		if err := obs.WriteJSON(path, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-bench:", err)
	os.Exit(1)
}
