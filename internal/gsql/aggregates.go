package gsql

import "strings"

// AggSpec describes an aggregate function: how it accumulates and how
// it splits into a sub-aggregate (run per host on raw tuples) and a
// super-aggregate (run centrally over the sub-aggregate outputs). The
// split rule is the paper's Section 5.2.2 partial-aggregation
// machinery; every built-in splits trivially, and UDAFs register their
// own decomposition as in the Holistic-UDAF work the paper cites.
type AggSpec struct {
	Name string
	// SubName is the aggregate the per-host sub-aggregate computes over
	// raw tuples.
	SubName string
	// SuperName is the aggregate the central super-aggregate applies to
	// the sub-aggregate outputs.
	SuperName string
	// NeedsArg reports whether the aggregate requires an argument
	// (COUNT permits the * form).
	NeedsArg bool
	// Splittable is false for holistic aggregates that cannot be
	// decomposed; incompatible plans containing them cannot use partial
	// aggregation.
	Splittable bool
}

// builtinAggs is the registry of aggregate functions known to the
// parser, analyzer, and executor, keyed by upper-case name.
var builtinAggs = map[string]AggSpec{
	"COUNT":    {Name: "COUNT", SubName: "COUNT", SuperName: "SUM", NeedsArg: false, Splittable: true},
	"SUM":      {Name: "SUM", SubName: "SUM", SuperName: "SUM", NeedsArg: true, Splittable: true},
	"MIN":      {Name: "MIN", SubName: "MIN", SuperName: "MIN", NeedsArg: true, Splittable: true},
	"MAX":      {Name: "MAX", SubName: "MAX", SuperName: "MAX", NeedsArg: true, Splittable: true},
	"AVG":      {Name: "AVG", NeedsArg: true, Splittable: true}, // split specially: SUM + COUNT
	"OR_AGGR":  {Name: "OR_AGGR", SubName: "OR_AGGR", SuperName: "OR_AGGR", NeedsArg: true, Splittable: true},
	"AND_AGGR": {Name: "AND_AGGR", SubName: "AND_AGGR", SuperName: "AND_AGGR", NeedsArg: true, Splittable: true},
	"XOR_AGGR": {Name: "XOR_AGGR", SubName: "XOR_AGGR", SuperName: "XOR_AGGR", NeedsArg: true, Splittable: true},
	// COUNT_DISTINCT is holistic: its partials are not mergeable
	// without shipping the whole distinct set.
	"COUNT_DISTINCT": {Name: "COUNT_DISTINCT", NeedsArg: true, Splittable: false},
	// Moment-based aggregates split into (sum, sum-of-squares, count)
	// partials; the decomposition is installed by the plan compiler.
	"VARIANCE": {Name: "VARIANCE", NeedsArg: true, Splittable: true},
	"STDDEV":   {Name: "STDDEV", NeedsArg: true, Splittable: true},
	// APPROX_COUNT_DISTINCT is the mergeable alternative to
	// COUNT_DISTINCT: HyperLogLog sketches ship as partials and merge
	// losslessly (the Holistic-UDAF decomposition the paper cites).
	"APPROX_COUNT_DISTINCT": {Name: "APPROX_COUNT_DISTINCT", SubName: "HLL_SKETCH", SuperName: "HLL_MERGE", NeedsArg: true, Splittable: true},
}

// LookupAgg returns the aggregate spec for name (case-insensitive).
func LookupAgg(name string) (AggSpec, bool) {
	s, ok := builtinAggs[strings.ToUpper(name)]
	return s, ok
}

// IsAggregateName reports whether name is a known aggregate function.
func IsAggregateName(name string) bool {
	_, ok := builtinAggs[strings.ToUpper(name)]
	return ok
}

// HasAggregate reports whether the expression contains any aggregate
// function call.
func HasAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && IsAggregateName(f.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// AggregateCalls returns every aggregate call in the expression, in
// source order.
func AggregateCalls(e Expr) []*FuncCall {
	var out []*FuncCall
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && IsAggregateName(f.Name) {
			out = append(out, f)
			return false // aggregates do not nest in this dialect
		}
		return true
	})
	return out
}

// scalarFuncs lists known non-aggregate functions usable in scalar
// expressions and partitioning sets.
var scalarFuncs = map[string]int{
	"ABS":  1,
	"SQRT": 1,
}

// IsScalarFuncName reports whether name is a known scalar function.
func IsScalarFuncName(name string) bool {
	_, ok := scalarFuncs[strings.ToUpper(name)]
	return ok
}
