// Command qap-prove emits and checks partition-correctness
// certificates: for every node of a GSQL query set's plan it
// constructs an explicit derivation — named scope-rule applications
// with paper-section citations and QAP codes — concluding either
// PARTITIONED≡CENTRAL or MUST-CENTRALIZE for a candidate partitioning
// set, and serializes the whole proof as a canonical JSON certificate
// an independent verifier can re-check against the plan.
//
// Usage:
//
//	qap-prove [-schema file] [-queries file] [-set 'srcIP & 0xFFF0'] \
//	          [-format human|json] [-out cert.json]
//	qap-prove [-schema file] [-queries file] -verify cert.json
//
// Without -queries it proves the paper's Section 3.2 example set;
// without -set it proves the partitioning the analysis recommends.
// -verify mode parses a serialized certificate and checks every
// derivation step against the plan, exiting 1 when the certificate
// does not hold. Output is deterministic: certificate bytes are
// identical across runs and -workers settings.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"qap"
	"qap/internal/netgen"
	"qap/internal/prove"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	schemaFile string
	queryFile  string
	set        string
	format     string
	out        string
	verifyFile string
	workers    int
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.StringVar(&f.schemaFile, "schema", "", "stream DDL file (default: the built-in TCP schema)")
	fs.StringVar(&f.queryFile, "queries", "", "GSQL query set file (default: the paper's Section 3.2 set)")
	fs.StringVar(&f.set, "set", "auto", "candidate partitioning set to prove; 'auto' proves the analysis's recommendation, '' proves the empty (round-robin) set")
	fs.StringVar(&f.format, "format", "human", "output format: human or json")
	fs.StringVar(&f.out, "out", "", "also write the canonical JSON certificate to this file")
	fs.StringVar(&f.verifyFile, "verify", "", "verify this serialized certificate against the plan instead of proving")
	fs.IntVar(&f.workers, "workers", runtime.GOMAXPROCS(0), "analysis worker goroutines for -set auto (1 = sequential; results are identical for any value)")
	return f
}

func main() {
	fl := defineFlags(flag.CommandLine)
	flag.Parse()

	if fl.format != "human" && fl.format != "json" {
		fatal(fmt.Errorf("unknown -format %q (want human or json)", fl.format))
	}

	ddl := netgen.SchemaDDL
	if fl.schemaFile != "" {
		b, err := os.ReadFile(fl.schemaFile)
		if err != nil {
			fatal(err)
		}
		ddl = string(b)
	}
	queries := qap.ComplexQuerySet
	if fl.queryFile != "" {
		b, err := os.ReadFile(fl.queryFile)
		if err != nil {
			fatal(err)
		}
		queries = string(b)
	}
	sys, err := qap.Load(ddl, queries)
	if err != nil {
		fatal(err)
	}

	if fl.verifyFile != "" {
		b, err := os.ReadFile(fl.verifyFile)
		if err != nil {
			fatal(err)
		}
		cert, err := prove.ParseCertificate(b)
		if err == nil {
			err = prove.Verify(sys.Graph, cert)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qap-prove: certificate REJECTED:", err)
			os.Exit(1)
		}
		fmt.Printf("certificate verified: set %s, %d node proofs, plan fingerprint %s\n",
			cert.Set, len(cert.Nodes), cert.Fingerprint)
		return
	}

	ps, err := resolveSet(sys, fl.set, fl.workers)
	if err != nil {
		fatal(err)
	}
	cert := prove.Prove(sys.Graph, ps)
	// Self-check before emitting: a certificate qap-prove prints is
	// one the verifier accepts.
	if err := prove.Verify(sys.Graph, cert); err != nil {
		fatal(fmt.Errorf("internal error: emitted certificate fails verification: %w", err))
	}
	js, err := cert.CanonicalJSON()
	if err != nil {
		fatal(err)
	}
	if fl.out != "" {
		if err := os.WriteFile(fl.out, js, 0o644); err != nil {
			fatal(err)
		}
	}
	switch fl.format {
	case "json":
		os.Stdout.Write(js)
	default:
		fmt.Print(cert.Human())
	}
}

// resolveSet maps the -set flag to a partitioning set: "auto" runs
// the partitioning analysis and proves its recommendation; anything
// else (including the empty string) parses as an explicit set.
func resolveSet(sys *qap.System, set string, workers int) (qap.Set, error) {
	if set != "auto" {
		return qap.ParseSet(set)
	}
	opts := qap.DefaultSearchOptions()
	opts.Workers = workers
	analysis, err := sys.AnalyzeWith(nil, opts)
	if err != nil {
		return nil, err
	}
	return analysis.Best, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-prove:", err)
	os.Exit(2)
}
