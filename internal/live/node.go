package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Executor is what a node serves: the cluster package's live engine
// binds one to an in-process island, and cmd/qap-node binds one to an
// island of its own compiled plan. Execute must be deterministic —
// replaying the same feed sequence must produce the same link
// sequence — because recovery re-executes nothing but retransmits
// everything unacknowledged.
type Executor interface {
	// Execute runs one feed's rounds and returns the link message to
	// ship (Seq is assigned by the node; Through and Done are the
	// executor's). Called in feed-sequence order, exactly once per
	// sequence.
	Execute(m *FeedMsg) (*LinkMsg, error)
	// Result serializes the island's final shards after the last feed,
	// for remote nodes; in-process executors return nil.
	Result() ([]byte, error)
}

// NodeOptions identify the deployment slice a node serves.
type NodeOptions struct {
	// Host is the leaf island index this node serves.
	Host int
	// Fingerprint must match the splitter's Hello; empty skips the
	// check (the in-process engine shares one config by construction).
	Fingerprint string
	// BatchSize must match the splitter's Hello when non-zero.
	BatchSize int
	// SendResult makes the node ship a final Result frame (remote
	// mode).
	SendResult bool
	// NewExecutor builds the executor on the first handshake; the
	// executor persists across reconnects (its window state must
	// survive a dropped connection).
	NewExecutor func(h *Hello) (Executor, error)
	// AcceptGrace overrides the wait for the first connection
	// (separate-process nodes start before the splitter does).
	AcceptGrace time.Duration
}

// Node is one host's live server: a TCP listener, a resumable link
// outbox, and the feed-execution loop.
type Node struct {
	cfg Config
	opt NodeOptions
	ln  net.Listener
	out *outbox

	exec         Executor
	feedSeen     uint64
	doneAll      bool
	resultQueued bool
	sessions     int

	mu   sync.Mutex
	conn net.Conn
	stop chan struct{}
	once sync.Once
}

// NewNode listens on a loopback port (or addr, when non-empty) and
// returns the node ready to Serve.
func NewNode(cfg Config, opt NodeOptions, addr string) (*Node, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: node %d: %w", opt.Host, err)
	}
	return &Node{
		cfg:  cfg,
		opt:  opt,
		ln:   ln,
		out:  newOutbox(cfg.linkWindow()),
		stop: make(chan struct{}),
	}, nil
}

// Addr is the listener's address, for the splitter's host list.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close aborts Serve.
func (n *Node) Close() {
	n.once.Do(func() { close(n.stop) })
	n.ln.Close()
	n.out.close()
	n.mu.Lock()
	if n.conn != nil {
		n.conn.Close()
	}
	n.mu.Unlock()
}

func (n *Node) stopping() bool {
	select {
	case <-n.stop:
		return true
	default:
		return false
	}
}

// finished reports that the last feed has been executed and every
// link (and the result, if any) has been acknowledged.
func (n *Node) finished() bool { return n.doneAll && n.out.empty() }

// Serve accepts connections until the host's work is done and fully
// acknowledged, reconnections included. It returns nil on a clean
// finish or stop, and a positioned error if the peer wedges past the
// timeout.
func (n *Node) Serve() error {
	defer n.ln.Close()
	grace := n.opt.AcceptGrace
	if grace <= 0 {
		grace = n.cfg.timeout()
	}
	for {
		if tl, ok := n.ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(grace)) //qap:allow walltime -- accept-grace deadline; transport pacing never shapes outputs
		}
		conn, err := n.ln.Accept()
		if err != nil {
			if n.stopping() || n.finished() {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return fmt.Errorf("live: node %d: no connection within %s (last feed seq %d)", n.opt.Host, grace, n.feedSeen)
			}
			return fmt.Errorf("live: node %d: accept: %w", n.opt.Host, err)
		}
		grace = n.cfg.timeout()
		if n.cfg.WrapAccept != nil {
			conn = n.cfg.WrapAccept(conn, n.sessions)
		}
		n.sessions++
		n.mu.Lock()
		n.conn = conn
		n.mu.Unlock()
		err = n.session(conn)
		n.mu.Lock()
		n.conn = nil
		n.mu.Unlock()
		conn.Close()
		if n.finished() || n.stopping() {
			return nil
		}
		var fe *fatalErr
		if errors.As(err, &fe) {
			// A configuration mismatch redialing cannot heal: fail now
			// instead of rejecting the same splitter forever.
			return fe.err
		}
		// Any other session death is transient; wait for the redial.
	}
}

// fatalErr marks a session error no reconnect can fix.
type fatalErr struct{ err error }

func (e *fatalErr) Error() string { return e.err.Error() }
func (e *fatalErr) Unwrap() error { return e.err }

func fatalf(format string, args ...any) error {
	return &fatalErr{err: fmt.Errorf(format, args...)}
}

// session runs the handshake and the feed loop on one connection.
func (n *Node) session(conn net.Conn) error {
	to := n.cfg.timeout()
	conn.SetReadDeadline(time.Now().Add(to)) //qap:allow walltime -- I/O deadline; transport pacing never shapes outputs
	typ, payload, buf, err := readFrame(conn, n.cfg.maxFrame(), nil)
	if err != nil {
		return err
	}
	if typ != frameHello {
		return fmt.Errorf("live: node %d: expected hello, got frame type %d", n.opt.Host, typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.Version != ProtocolVersion {
		return fatalf("live: node %d: protocol version %d, want %d", n.opt.Host, h.Version, ProtocolVersion)
	}
	if h.Host != n.opt.Host {
		return fatalf("live: node %d: hello addressed to host %d", n.opt.Host, h.Host)
	}
	if n.opt.Fingerprint != "" && h.Fingerprint != n.opt.Fingerprint {
		return fatalf("live: node %d: deployment fingerprint %q, want %q", n.opt.Host, h.Fingerprint, n.opt.Fingerprint)
	}
	if n.opt.BatchSize > 0 && h.BatchSize != n.opt.BatchSize {
		return fatalf("live: node %d: batch size %d, want %d", n.opt.Host, h.BatchSize, n.opt.BatchSize)
	}
	if n.exec == nil {
		if n.exec, err = n.opt.NewExecutor(h); err != nil {
			return fmt.Errorf("live: node %d: %w", n.opt.Host, err)
		}
	}
	n.out.rewind(h.ResumeLink)
	w := Welcome{Version: ProtocolVersion, ResumeFeed: n.feedSeen, HasResult: n.opt.SendResult}
	conn.SetWriteDeadline(time.Now().Add(to)) //qap:allow walltime -- I/O deadline; transport pacing never shapes outputs
	if _, err := writeFrame(conn, nil, frameWelcome, w.encode(nil)); err != nil {
		return err
	}

	s := newSession(conn, n.cfg, n.out, frameFeedAck)
	s.start()
	defer s.shutdown()
	for {
		var typ byte
		var payload []byte
		typ, payload, buf, err = s.read(buf)
		if err != nil {
			if werr := s.writeErr(); werr != nil {
				return werr
			}
			return err
		}
		switch typ {
		case frameLinkAck:
			seq, err := decodeAck(payload)
			if err != nil {
				return err
			}
			n.out.ack(seq)
			if n.finished() {
				return nil
			}
		case frameFeed:
			seq, err := decodeSeq(payload)
			if err != nil {
				return err
			}
			if seq <= n.feedSeen {
				// A retransmit raced our ack: already executed, re-ack.
				s.setAck(n.feedSeen)
				continue
			}
			if seq != n.feedSeen+1 {
				return fmt.Errorf("live: node %d: feed gap: got seq %d, want %d", n.opt.Host, seq, n.feedSeen+1)
			}
			m, err := decodeFeed(payload)
			if err != nil {
				return err
			}
			link, err := n.exec.Execute(m)
			if err != nil {
				return fmt.Errorf("live: node %d: feed seq %d: %w", n.opt.Host, seq, err)
			}
			// Queue the link before acknowledging the feed: once the
			// ack is on the wire the link must be recorded for
			// retransmission, or a crash here would lose it.
			deadline := time.Now().Add(to) //qap:allow walltime -- credit-stall deadline; transport pacing never shapes outputs
			if _, err := n.out.append(frameLink, deadline, func(ls uint64, dst []byte) []byte {
				link.Seq = ls
				return link.encode(dst)
			}); err != nil {
				return fmt.Errorf("live: node %d: feed seq %d: %w", n.opt.Host, seq, err)
			}
			n.feedSeen = seq
			s.setAck(seq)
			if m.Last {
				n.doneAll = true
				if n.opt.SendResult && !n.resultQueued {
					res, err := n.exec.Result()
					if err != nil {
						return fmt.Errorf("live: node %d: result: %w", n.opt.Host, err)
					}
					if _, err := n.out.append(frameResult, deadline, func(ls uint64, dst []byte) []byte {
						dst = appendU64(dst, ls)
						return append(dst, res...)
					}); err != nil {
						return fmt.Errorf("live: node %d: result: %w", n.opt.Host, err)
					}
					n.resultQueued = true
				}
			}
		default:
			return fmt.Errorf("live: node %d: unexpected frame type %d", n.opt.Host, typ)
		}
	}
}
