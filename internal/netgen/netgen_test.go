package netgen

import (
	"math"
	"math/rand" //qap:allow walltime -- tests seed explicitly
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 10, 500
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a.Packets[i], b.Packets[i])
		}
	}
	cfg.Seed = 2
	c := Generate(cfg)
	same := len(a.Packets) == len(c.Packets)
	if same {
		diff := false
		for i := range a.Packets {
			if a.Packets[i] != c.Packets[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateTimeOrderedAndSized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 20, 300
	tr := Generate(cfg)
	if got, want := len(tr.Packets), 20*300; got != want {
		t.Fatalf("packet count = %d, want %d", got, want)
	}
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].Time < tr.Packets[i-1].Time {
			t.Fatal("packets not time ordered")
		}
	}
	last := tr.Packets[len(tr.Packets)-1]
	if last.Time >= uint64(cfg.DurationSec) {
		t.Errorf("time %d out of range", last.Time)
	}
}

func TestFlowFlagInvariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 30, 1000
	cfg.AttackFraction = 0.1
	tr := Generate(cfg)

	// OR flags per 5-tuple flow: attack flows OR to exactly
	// AttackPattern, normal flows never do.
	type key struct{ s, d, sp, dp uint64 }
	or := make(map[key]uint64)
	for _, p := range tr.Packets {
		k := key{p.SrcIP, p.DestIP, p.SrcPort, p.DestPort}
		or[k] |= p.Flags
	}
	attacks := 0
	for _, flags := range or {
		if flags == AttackPattern {
			attacks++
		} else if flags&FlagURG != 0 && flags&FlagRST != 0 && flags&FlagSYN != 0 &&
			flags&(FlagACK|FlagPSH|FlagFIN) == 0 {
			t.Fatalf("attack-like OR %b not equal to pattern", flags)
		}
	}
	if attacks == 0 {
		t.Fatal("no attack flows generated")
	}
	frac := float64(tr.AttackFlows) / float64(tr.TotalFlows)
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("attack fraction %.3f far from configured 0.1", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 30, 2000
	tr := Generate(cfg)
	counts := make(map[uint64]int)
	for _, p := range tr.Packets {
		counts[p.SrcIP]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// With Zipf skew the most popular host carries far more than the
	// uniform share.
	uniform := len(tr.Packets) / len(counts)
	if maxCount < 4*uniform {
		t.Errorf("insufficient skew: max %d vs uniform %d over %d hosts", maxCount, uniform, len(counts))
	}
}

func TestTupleOrderMatchesSchema(t *testing.T) {
	p := Packet{Time: 1, SrcIP: 2, DestIP: 3, SrcPort: 4, DestPort: 5, Len: 6, Flags: 7, Seq: 8}
	tp := p.Tuple()
	if len(tp) != 8 {
		t.Fatalf("tuple width = %d", len(tp))
	}
	for i, want := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		got, _ := tp[i].AsUint()
		if got != want {
			t.Errorf("col %d = %d, want %d", i, got, want)
		}
	}
}

func TestSequenceNumbersConsecutivePerFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 20, 500
	tr := Generate(cfg)
	type key struct{ s, d, sp, dp uint64 }
	maxSeq := make(map[key]uint64)
	count := make(map[key]uint64)
	for _, p := range tr.Packets {
		k := key{p.SrcIP, p.DestIP, p.SrcPort, p.DestPort}
		if p.Seq >= maxSeq[k] {
			maxSeq[k] = p.Seq
		}
		count[k]++
	}
	// Within one flow, sequence numbers are 0..n-1. Rare 5-tuple
	// collisions between flows and the trace-length truncation can
	// perturb a few, so require the invariant for the vast majority.
	good := 0
	for k, c := range count {
		if maxSeq[k] == c-1 {
			good++
		}
	}
	if frac := float64(good) / float64(len(count)); frac < 0.9 {
		t.Errorf("only %.2f of flows have consecutive sequences", frac)
	}
}

// TestValidateRejectsBadConfigs covers every field check: invalid
// configs must surface a positioned error from Validate rather than
// being quietly rewritten inside Generate (the old behavior, which let
// drift scenarios run with silently substituted parameters).
func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := func(f func(*Config)) Config {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg
	}
	cases := map[string]struct {
		cfg  Config
		want string
	}{
		"zero value":        {Config{}, "Config.DurationSec"},
		"negative duration": {mut(func(c *Config) { c.DurationSec = -5 }), "Config.DurationSec"},
		"zero rate":         {mut(func(c *Config) { c.PacketsPerSec = 0 }), "Config.PacketsPerSec"},
		"zero src pool":     {mut(func(c *Config) { c.SrcHosts = 0 }), "Config.SrcHosts"},
		"zero dst pool":     {mut(func(c *Config) { c.DstHosts = 0 }), "Config.DstHosts"},
		"zipf at one":       {mut(func(c *Config) { c.ZipfS = 1 }), "Config.ZipfS"},
		"nan zipf":          {mut(func(c *Config) { c.ZipfS = math.NaN() }), "Config.ZipfS"},
		"inf zipf":          {mut(func(c *Config) { c.ZipfS = math.Inf(1) }), "Config.ZipfS"},
		"nan mean flow":     {mut(func(c *Config) { c.MeanFlowPackets = math.NaN() }), "Config.MeanFlowPackets"},
		"negative mean":     {mut(func(c *Config) { c.MeanFlowPackets = -4 }), "Config.MeanFlowPackets"},
		"nan attack":        {mut(func(c *Config) { c.AttackFraction = math.NaN() }), "Config.AttackFraction"},
		"attack above one":  {mut(func(c *Config) { c.AttackFraction = 7 }), "Config.AttackFraction"},
		"negative ports":    {mut(func(c *Config) { c.Ports = -1 }), "Config.Ports"},
		"bad phase duration": {mut(func(c *Config) {
			c.Phases = []Phase{{DurationSec: 0}}
		}), "Config.Phases[0].DurationSec"},
		"bad phase zipf": {mut(func(c *Config) {
			c.Phases = []Phase{{DurationSec: 5}, {DurationSec: 5, ZipfS: 0.5}}
		}), "Config.Phases[1].ZipfS"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %s", err, tc.want)
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig must validate: %v", err)
	}
}

// TestGeneratePanicsOnInvalidConfig pins Generate's contract: an
// invalid config is a programmer error, not an input to be repaired.
func TestGeneratePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate must panic on an invalid config")
		}
	}()
	Generate(Config{Seed: 1, DurationSec: 2, PacketsPerSec: 50})
}

// TestGenerateSingleHostPools pins the degenerate-Zipf behavior: a
// one-address pool sends every packet from (to) that single address.
func TestGenerateSingleHostPools(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed, cfg.DurationSec, cfg.PacketsPerSec = 11, 2, 80
	cfg.SrcHosts, cfg.DstHosts = 1, 1
	tr := Generate(cfg)
	for _, p := range tr.Packets {
		if p.SrcIP != 0x0A000000 || p.DestIP != 0xC0A80000 {
			t.Fatalf("single-host pools must pin the addresses, got %x -> %x", p.SrcIP, p.DestIP)
		}
	}
}

// TestGenerateAttackFractionOne checks the all-attack extreme.
func TestGenerateAttackFractionOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed, cfg.DurationSec, cfg.PacketsPerSec = 12, 2, 50
	cfg.AttackFraction = 1
	tr := Generate(cfg)
	if tr.AttackFlows != tr.TotalFlows {
		t.Errorf("AttackFraction 1 should mark every flow: %d/%d", tr.AttackFlows, tr.TotalFlows)
	}
}

// TestPhaseFreeGenerationUnchanged pins the refactoring invariant the
// golden-output tests rely on: a phase-free config and the equivalent
// explicit single phase produce byte-identical packet sequences.
func TestPhaseFreeGenerationUnchanged(t *testing.T) {
	base := DefaultConfig()
	base.DurationSec, base.PacketsPerSec = 8, 400
	one := base
	one.DurationSec = 0
	one.Phases = []Phase{{DurationSec: 8}}
	a, b := Generate(base), Generate(one)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a.Packets[i], b.Packets[i])
		}
	}
	if a.TotalFlows != b.TotalFlows || a.AttackFlows != b.AttackFlows {
		t.Errorf("flow mix differs: %d/%d vs %d/%d",
			a.AttackFlows, a.TotalFlows, b.AttackFlows, b.TotalFlows)
	}
}

// TestPhasedDrift checks the drift knobs end to end: phases play back
// to back, each phase's packets stay inside its window, the packet
// volume follows the per-phase rate, and the skew/pool overrides
// actually move the address distribution between phases.
func TestPhasedDrift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.DurationSec = 0
	cfg.SrcHosts, cfg.DstHosts = 20, 2000
	cfg.Phases = []Phase{
		{DurationSec: 10},
		{DurationSec: 10, PacketsPerSec: 3 * cfg.PacketsPerSec, SrcHosts: 2000, DstHosts: 20, AttackFraction: 0.5},
	}
	if cfg.TotalDurationSec() != 20 {
		t.Fatalf("TotalDurationSec = %d, want 20", cfg.TotalDurationSec())
	}
	tr := Generate(cfg)
	if got, want := len(tr.Packets), 10*cfg.PacketsPerSec+10*3*cfg.PacketsPerSec; got != want {
		t.Fatalf("packet count = %d, want %d", got, want)
	}
	var phase1Srcs, phase2Srcs = map[uint64]bool{}, map[uint64]bool{}
	n1 := 0
	for i, p := range tr.Packets {
		if i > 0 && p.Time < tr.Packets[i-1].Time {
			t.Fatal("packets not time ordered across phases")
		}
		if p.Time >= 20 {
			t.Fatalf("time %d beyond total duration", p.Time)
		}
		if p.Time < 10 {
			n1++
			phase1Srcs[p.SrcIP] = true
		} else {
			phase2Srcs[p.SrcIP] = true
		}
	}
	if got, want := n1, 10*cfg.PacketsPerSec; got != want {
		t.Errorf("phase 1 volume = %d, want %d (phases must not bleed)", got, want)
	}
	// Phase 1 draws from a 20-address pool, phase 2 from 2000: the
	// distinct-source count must widen sharply after the shift.
	if len(phase1Srcs) > 20 {
		t.Errorf("phase 1 used %d sources from a pool of 20", len(phase1Srcs))
	}
	if len(phase2Srcs) < 3*len(phase1Srcs) {
		t.Errorf("source pool did not widen: %d vs %d", len(phase2Srcs), len(phase1Srcs))
	}
}

// TestGeometricGuards covers geometric's mean <= 1 / NaN guard and the
// sanity of a real mean.
func TestGeometricGuards(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0, -3, 1, 0.25, math.NaN()} {
		if n := geometric(r, mean); n != 0 {
			t.Errorf("geometric(%v) = %d, want 0", mean, n)
		}
	}
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += geometric(r, 8)
	}
	if avg := float64(sum) / 2000; avg < 4 || avg > 12 {
		t.Errorf("geometric(8) sample mean %.1f implausible", avg)
	}
}
