package core

import (
	"qap/internal/plan"
)

// Requirement is what a single query node demands of the stream
// partitioning (paper Section 3.5).
type Requirement struct {
	// Universal marks nodes compatible with any partitioning:
	// selection/projection, union, and sources (paper Section 3.4:
	// "other types of streaming queries ... are always compatible").
	Universal bool
	// Set is the node's maximal recommended partitioning set — the
	// one the analysis proposes as a candidate. Temporal attributes
	// are excluded (paper Section 3.5.1). Any non-empty coarsening
	// subset is also compatible. When Universal is false and Set is
	// empty, no useful stream partitioning lets the node run
	// partitioned (e.g. it groups only on aggregate results or on
	// temporal attributes).
	Set Set
	// CompatSet is the full set used by the compatibility *test*: it
	// additionally includes temporal expressions, because a
	// partitioning that includes a coarsening of the window expression
	// (the paper's {(time/60)/2, ...} example) is still compatible,
	// even though the analysis never recommends one.
	CompatSet Set
}

// NodeRequirement infers the partitioning requirement of one node:
//
//   - Aggregation (Section 3.5.2): group-by expressions that trace to
//     a scalar expression over a single base attribute. Temporal
//     expressions go to CompatSet only (Section 3.5.1).
//   - Join (Section 3.5.3): equality predicates whose two sides trace
//     to the *same* base expression. (When the sides trace to
//     different expressions of the attribute — e.g. S1.tb = S2.tb+1 —
//     no single shared partitioning expression can co-locate matching
//     tuples, so the pair contributes nothing.)
//   - Selection/projection/source: universal.
func NodeRequirement(n *plan.Node) Requirement {
	switch n.Kind {
	case plan.KindSource, plan.KindSelectProject:
		return Requirement{Universal: true}
	case plan.KindAggregate:
		var rec, full Set
		for _, g := range n.GroupBy {
			lin := n.LineageOf(g.Expr)
			if lin.Base == nil {
				continue
			}
			e := Elem{Attr: lin.Base.Attr, Expr: lin.Base.Expr}
			if lin.Temporal {
				// A sliding window's group allocation must not change
				// mid-window (paper Section 3.5.1), so temporal
				// expressions are excluded even from the compatibility
				// test for windowed aggregations.
				if n.WindowPanes <= 1 {
					full = append(full, e)
				}
				continue
			}
			full = append(full, e)
			rec = append(rec, e)
		}
		return Requirement{Set: rec.Normalize(), CompatSet: full.Normalize()}
	case plan.KindJoin:
		var rec, full Set
		for i := range n.LeftKeys {
			ll := n.SideLineage(0, n.LeftKeys[i])
			rl := n.SideLineage(1, n.RightKeys[i])
			if ll.Base == nil || rl.Base == nil {
				continue
			}
			// A shared partitioning expression e routes matching left
			// and right tuples together only when it is a function of
			// one expression that both sides compute identically:
			// e(x_l) = e(x_r) must follow from se_l(x_l) = se_r(x_r),
			// which a syntactic analysis can only guarantee when
			// se_l == se_r.
			if !sameAttr(Elem{Attr: ll.Base.Attr}, Elem{Attr: rl.Base.Attr}) ||
				!exprEqualNoQual(ll.Base.Expr, rl.Base.Expr) {
				continue
			}
			e := Elem{Attr: ll.Base.Attr, Expr: ll.Base.Expr}
			full = append(full, e)
			if !ll.Temporal && !rl.Temporal {
				rec = append(rec, e)
			}
		}
		return Requirement{Set: rec.Normalize(), CompatSet: full.Normalize()}
	default:
		return Requirement{}
	}
}

// Compatible reports whether partitioning the source streams by ps is
// compatible with node n in the paper's Section 3.4 sense: for every
// time window, n's output equals the stream union of n run
// independently on each partition. The empty partitioning set is
// compatible with nothing (it routes tuples arbitrarily).
func Compatible(ps Set, n *plan.Node) bool {
	if ps.IsEmpty() {
		return false
	}
	req := NodeRequirement(n)
	if req.Universal {
		return true
	}
	return SubsetCompatible(ps, req.CompatSet)
}

// Requirements computes the requirement of every query node in the
// graph, keyed by node.
func Requirements(g *plan.Graph) map[*plan.Node]Requirement {
	out := make(map[*plan.Node]Requirement, len(g.Nodes))
	for _, n := range g.Nodes {
		out[n] = NodeRequirement(n)
	}
	return out
}

// Distributable reports whether n and its entire input subtree are
// compatible with ps, so the optimizer can push n below the partition
// merges and run one copy per partition (paper Section 5.2's
// Opt_Eligible condition, applied transitively).
func Distributable(ps Set, n *plan.Node) bool {
	if n.Kind == plan.KindSource {
		return true
	}
	if !Compatible(ps, n) {
		return false
	}
	for _, in := range n.Inputs {
		if !Distributable(ps, in) {
			return false
		}
	}
	return true
}
