package gsql

import (
	"errors"
	"strings"
	"testing"
)

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		name, src string
		line, col int
	}{
		{"unexpected token", "query q:\nSELECT srcIP,, FROM TCP", 2, 14},
		{"unknown function", "query q:\nSELECT NOPE(x) AS y FROM TCP", 2, 8},
		{"window without group by", "query q:\nSELECT srcIP FROM TCP\nWINDOW 4", 3, 1},
		{"duplicate query name", "query q:\nSELECT srcIP FROM TCP\n\nquery q:\nSELECT destIP FROM TCP", 4, 7},
		{"unterminated string", "query q:\nSELECT 'abc FROM TCP", 2, 8},
		{"stray byte", "query q:\nSELECT srcIP ` FROM TCP", 2, 14},
		{"truncated hex literal", "query q:\nSELECT 0x FROM TCP", 2, 8},
		// "##" is an empty parameter, so the lexer treats '#' as a
		// line comment; the error is the missing select expression.
		{"empty param", "query q:\nSELECT ## FROM TCP", 2, 19},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseQuerySet(tc.src)
			if err == nil {
				t.Fatal("want error")
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error %T is not *gsql.Error: %v", err, err)
			}
			pos := ErrPos(err)
			if pos.Line != tc.line || pos.Col != tc.col {
				t.Errorf("position %s, want %d:%d (error: %v)", pos, tc.line, tc.col, err)
			}
			if !strings.Contains(err.Error(), pos.String()) {
				t.Errorf("message %q does not render the position", err)
			}
		})
	}
}

// TestDeepNestingReturnsError pins the fuzz-found stack hazard: the
// recursive-descent parser must reject pathological nesting with a
// positioned error instead of growing the goroutine stack without
// bound. All three recursion cycles — parens, NOT chains, unary
// operator chains — are exercised.
func TestDeepNestingReturnsError(t *testing.T) {
	cases := map[string]string{
		"parens":  "query q:\nSELECT " + strings.Repeat("(", 100000) + "srcIP" + strings.Repeat(")", 100000) + " FROM TCP",
		"not":     "query q:\nSELECT srcIP FROM TCP WHERE " + strings.Repeat("NOT ", 100000) + "len",
		"bitnot":  "query q:\nSELECT " + strings.Repeat("~", 100000) + "srcIP FROM TCP",
		"grouped": "query q:\nSELECT srcIP FROM TCP GROUP BY " + strings.Repeat("(", 100000) + "srcIP",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ParseQuerySet(src)
			if err == nil {
				t.Fatal("want nesting-depth error, got success")
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error %T is not *gsql.Error: %v", err, err)
			}
			if !strings.Contains(err.Error(), "nested deeper") {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
	// Reasonable nesting still parses.
	ok := "query q:\nSELECT " + strings.Repeat("(", 50) + "srcIP" + strings.Repeat(")", 50) + " FROM TCP"
	if _, err := ParseQuerySet(ok); err != nil {
		t.Fatalf("50 levels of nesting should parse: %v", err)
	}
}

func TestASTNodesCarryPositions(t *testing.T) {
	qs, err := ParseQuerySet(`query q:
SELECT tb, srcIP, COUNT(*) as cnt
FROM TCP
WHERE len > 40
GROUP BY time/60 as tb, srcIP
HAVING COUNT(*) > 2`)
	if err != nil {
		t.Fatal(err)
	}
	q := qs.Queries[0]
	if q.Pos != (Pos{Line: 1, Col: 7}) {
		t.Errorf("query pos %s, want 1:7", q.Pos)
	}
	st := q.Stmt
	if st.Pos != (Pos{Line: 2, Col: 1}) {
		t.Errorf("SELECT pos %s, want 2:1", st.Pos)
	}
	if st.Items[1].Pos != (Pos{Line: 2, Col: 12}) {
		t.Errorf("item pos %s, want 2:12", st.Items[1].Pos)
	}
	if st.From.Left.Pos != (Pos{Line: 3, Col: 6}) {
		t.Errorf("table ref pos %s, want 3:6", st.From.Left.Pos)
	}
	if st.WherePos != (Pos{Line: 4, Col: 1}) {
		t.Errorf("WHERE pos %s, want 4:1", st.WherePos)
	}
	if st.GroupPos != (Pos{Line: 5, Col: 1}) {
		t.Errorf("GROUP pos %s, want 5:1", st.GroupPos)
	}
	if st.GroupBy[1].Pos != (Pos{Line: 5, Col: 25}) {
		t.Errorf("group item pos %s, want 5:25", st.GroupBy[1].Pos)
	}
	if st.HavingPos != (Pos{Line: 6, Col: 1}) {
		t.Errorf("HAVING pos %s, want 6:1", st.HavingPos)
	}
}

func TestErrPosUnknown(t *testing.T) {
	if p := ErrPos(errors.New("plain")); p.IsValid() {
		t.Errorf("plain errors have no position, got %s", p)
	}
	if (Pos{}).String() != "-" {
		t.Errorf("invalid position renders %q, want -", Pos{}.String())
	}
}
