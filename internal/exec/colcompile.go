package exec

// Column-compiled expressions. CompileCol lowers a gsql expression to
// a ColExpr: the ordinary row closure (always present, the oracle)
// plus optional vectorized kernels that evaluate the whole column in
// one call when the input batch is all-uint (ColBatch.AllUint).
//
// Kernels are built by composing column getters: a column reference
// returns the column's payload slice directly (zero copy), constants
// fold at compile time, and each operator node owns a private scratch
// vector it refills per call — so a compiled kernel allocates nothing
// in steady state. Kernels exist only for operators whose result kind
// is provably KindUint (or provably Bool, for predicates) on every
// all-uint input, so their output matches the row evaluator value for
// value, kind for kind:
//
//   - uint vectors (ColExpr.U): column refs, uint literals and
//     parameters, ABS, bitwise not, +, *, &, |, ^, <<, >> (shifts
//     mask to 6 bits exactly like evalUintOp), and / and % with a
//     non-zero constant divisor. Subtraction is excluded (uint
//     underflow yields KindInt), as is division by a non-constant
//     expression (a zero divisor yields NULL).
//   - truth vectors (ColExpr.Truth): comparisons over two uint
//     kernels, AND/OR/NOT composition, and the truthiness (!= 0) of
//     any uint kernel. evalBinary evaluates both operands of AND/OR
//     before testing them, so elementwise &/| is exact, not an
//     approximation of short-circuit evaluation.
//
// Anything outside the whitelist simply compiles with nil kernels and
// the operators fall back to the pivoted row path.

import (
	"strings"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// ColExpr is a column-compiled expression. Row is always set and is
// the semantic oracle; U and Truth, when non-nil, are only valid on
// batches for which AllUint() holds.
type ColExpr struct {
	// Row evaluates one tuple, identically to Compile's closure.
	Row EvalFunc
	// U returns a read-only vector v with len == cb.Len where
	// sqlval.Uint(v[i]) == Row(row i) exactly. The vector may alias a
	// column of cb or scratch owned by this ColExpr: it is valid only
	// until the next U/Truth call on this ColExpr or until cb is
	// recycled, and must not be mutated.
	U func(cb *ColBatch) []uint64
	// Truth returns a read-only 0/1 vector where v[i] != 0 iff
	// Row(row i).AsBool(). Same lifetime rules as U.
	Truth func(cb *ColBatch) []uint64
	// Const is set when the expression folds to a single uint value
	// (U then returns a constant-filled vector).
	Const *uint64
}

// CompileCol compiles e into a ColExpr. The error cases are exactly
// Compile's; kernel derivation never fails, it just yields nil
// kernels for unsupported shapes.
func CompileCol(e gsql.Expr, resolve Resolver, params Params) (ColExpr, error) {
	row, err := Compile(e, resolve, params)
	if err != nil {
		return ColExpr{}, err
	}
	ce := ColExpr{Row: row}
	k := colKernel(e, resolve, params)
	ce.U = k.u
	ce.Const = k.cnst
	if k.b != nil {
		ce.Truth = k.b
	} else if k.u != nil {
		ce.Truth = truthOfUint(k.u)
	}
	return ce, nil
}

// CompileColAll compiles a list of expressions.
func CompileColAll(exprs []gsql.Expr, resolve Resolver, params Params) ([]ColExpr, error) {
	out := make([]ColExpr, len(exprs))
	for i, e := range exprs {
		ce, err := CompileCol(e, resolve, params)
		if err != nil {
			return nil, err
		}
		out[i] = ce
	}
	return out, nil
}

// colKer is the internal kernel form: a uint-value vector producer, a
// 0/1 truth vector producer, or both; cnst marks compile-time
// constants for folding.
type colKer struct {
	u    func(cb *ColBatch) []uint64
	b    func(cb *ColBatch) []uint64
	cnst *uint64
}

// constKernel fills a private scratch vector with c.
func constKernel(c uint64) colKer {
	var buf []uint64
	u := c
	return colKer{
		u: func(cb *ColBatch) []uint64 {
			buf = growUints(buf, cb.Len)
			for i := range buf {
				buf[i] = u
			}
			return buf
		},
		cnst: &u,
	}
}

// truthOfUint maps a uint kernel to its truthiness vector
// (AsBool on KindUint is value != 0).
func truthOfUint(u func(cb *ColBatch) []uint64) func(cb *ColBatch) []uint64 {
	var buf []uint64
	return func(cb *ColBatch) []uint64 {
		v := u(cb)
		buf = growUints(buf, len(v))
		for i, x := range v {
			if x != 0 {
				buf[i] = 1
			} else {
				buf[i] = 0
			}
		}
		return buf
	}
}

// truthOf returns the best truth kernel for a subexpression: its own
// boolean kernel, or the truthiness of its uint kernel.
func truthOf(k colKer) func(cb *ColBatch) []uint64 {
	if k.b != nil {
		return k.b
	}
	if k.u != nil {
		return truthOfUint(k.u)
	}
	return nil
}

// colKernel derives vector kernels for e, returning zero-valued
// colKer for unsupported expressions. It mirrors Compile's structure;
// resolve errors yield no kernel here and surface through Compile.
func colKernel(e gsql.Expr, resolve Resolver, params Params) colKer {
	switch t := e.(type) {
	case *gsql.ColumnRef:
		idx, err := resolve(t)
		if err != nil {
			return colKer{}
		}
		return colKer{u: func(cb *ColBatch) []uint64 { return cb.Cols[idx].U64[:cb.Len] }}
	case *gsql.NumberLit:
		if t.IsFloat {
			return colKer{}
		}
		return constKernel(t.U)
	case *gsql.ParamRef:
		v, ok := params.Get(t.Name)
		if !ok || v.Kind() != sqlval.KindUint {
			return colKer{}
		}
		u, _ := v.AsUint()
		return constKernel(u)
	case *gsql.Unary:
		return colUnaryKernel(t, resolve, params)
	case *gsql.Binary:
		return colBinaryKernel(t, resolve, params)
	case *gsql.FuncCall:
		// ABS is the identity on uint values (evalAbs returns the
		// operand unchanged), so it inherits the argument's kernel.
		if strings.EqualFold(t.Name, "ABS") && len(t.Args) == 1 {
			k := colKernel(t.Args[0], resolve, params)
			return colKer{u: k.u, cnst: k.cnst}
		}
		return colKer{}
	default:
		return colKer{}
	}
}

func colUnaryKernel(t *gsql.Unary, resolve Resolver, params Params) colKer {
	k := colKernel(t.X, resolve, params)
	switch t.Op {
	case gsql.OpBitNot:
		if k.u == nil {
			return colKer{}
		}
		if k.cnst != nil {
			return constKernel(^*k.cnst)
		}
		x := k.u
		var buf []uint64
		return colKer{u: func(cb *ColBatch) []uint64 {
			v := x(cb)
			buf = growUints(buf, len(v))
			for i, w := range v {
				buf[i] = ^w
			}
			return buf
		}}
	case gsql.OpNot:
		tr := truthOf(k)
		if tr == nil {
			return colKer{}
		}
		var buf []uint64
		return colKer{b: func(cb *ColBatch) []uint64 {
			v := tr(cb)
			buf = growUints(buf, len(v))
			for i, w := range v {
				buf[i] = 1 - w
			}
			return buf
		}}
	default: // OpNeg yields KindInt; no kernel.
		return colKer{}
	}
}

func colBinaryKernel(t *gsql.Binary, resolve Resolver, params Params) colKer {
	lk := colKernel(t.L, resolve, params)
	rk := colKernel(t.R, resolve, params)
	switch t.Op {
	case gsql.OpAnd, gsql.OpOr:
		lt, rt := truthOf(lk), truthOf(rk)
		if lt == nil || rt == nil {
			return colKer{}
		}
		and := t.Op == gsql.OpAnd
		var buf []uint64
		return colKer{b: func(cb *ColBatch) []uint64 {
			lv := lt(cb)
			rv := rt(cb)
			buf = growUints(buf, len(lv))
			if and {
				for i := range lv {
					buf[i] = lv[i] & rv[i]
				}
			} else {
				for i := range lv {
					buf[i] = lv[i] | rv[i]
				}
			}
			return buf
		}}
	case gsql.OpEq, gsql.OpNeq, gsql.OpLt, gsql.OpLe, gsql.OpGt, gsql.OpGe:
		if lk.u == nil || rk.u == nil {
			return colKer{}
		}
		return cmpKernel(t.Op, lk.u, rk.u)
	case gsql.OpAdd, gsql.OpMul, gsql.OpBitAnd, gsql.OpBitOr, gsql.OpBitXor, gsql.OpShl, gsql.OpShr:
		if lk.u == nil || rk.u == nil {
			return colKer{}
		}
		if lk.cnst != nil && rk.cnst != nil {
			v := evalUintOp(t.Op, *lk.cnst, *rk.cnst)
			if u, ok := v.AsUint(); ok && v.Kind() == sqlval.KindUint {
				return constKernel(u)
			}
			return colKer{}
		}
		return arithKernel(t.Op, lk.u, rk.u)
	case gsql.OpDiv, gsql.OpMod:
		// Only a non-zero constant divisor is kernelable: a zero
		// divisor yields NULL, which a uint vector cannot carry.
		if lk.u == nil || rk.cnst == nil || *rk.cnst == 0 {
			return colKer{}
		}
		if lk.cnst != nil {
			v := evalUintOp(t.Op, *lk.cnst, *rk.cnst)
			if u, ok := v.AsUint(); ok && v.Kind() == sqlval.KindUint {
				return constKernel(u)
			}
			return colKer{}
		}
		x, d, mod := lk.u, *rk.cnst, t.Op == gsql.OpMod
		var buf []uint64
		return colKer{u: func(cb *ColBatch) []uint64 {
			v := x(cb)
			buf = growUints(buf, len(v))
			if mod {
				for i, w := range v {
					buf[i] = w % d
				}
			} else {
				for i, w := range v {
					buf[i] = w / d
				}
			}
			return buf
		}}
	default: // OpSub may underflow to KindInt; no kernel.
		return colKer{}
	}
}

// arithKernel builds an elementwise uint kernel matching evalUintOp
// for the closed-on-uint operators.
func arithKernel(op gsql.BinOp, l, r func(cb *ColBatch) []uint64) colKer {
	var buf []uint64
	f := func(cb *ColBatch) []uint64 {
		lv := l(cb)
		rv := r(cb)
		buf = growUints(buf, len(lv))
		switch op {
		case gsql.OpAdd:
			for i := range lv {
				buf[i] = lv[i] + rv[i]
			}
		case gsql.OpMul:
			for i := range lv {
				buf[i] = lv[i] * rv[i]
			}
		case gsql.OpBitAnd:
			for i := range lv {
				buf[i] = lv[i] & rv[i]
			}
		case gsql.OpBitOr:
			for i := range lv {
				buf[i] = lv[i] | rv[i]
			}
		case gsql.OpBitXor:
			for i := range lv {
				buf[i] = lv[i] ^ rv[i]
			}
		case gsql.OpShl:
			for i := range lv {
				buf[i] = lv[i] << (rv[i] & 63)
			}
		case gsql.OpShr:
			for i := range lv {
				buf[i] = lv[i] >> (rv[i] & 63)
			}
		}
		return buf
	}
	return colKer{u: f}
}

// cmpKernel builds a 0/1 kernel for a comparison of two uint vectors,
// matching evalBinary's Equal/Compare on two KindUint values.
func cmpKernel(op gsql.BinOp, l, r func(cb *ColBatch) []uint64) colKer {
	var buf []uint64
	f := func(cb *ColBatch) []uint64 {
		lv := l(cb)
		rv := r(cb)
		buf = growUints(buf, len(lv))
		switch op {
		case gsql.OpEq:
			for i := range lv {
				buf[i] = b2u(lv[i] == rv[i])
			}
		case gsql.OpNeq:
			for i := range lv {
				buf[i] = b2u(lv[i] != rv[i])
			}
		case gsql.OpLt:
			for i := range lv {
				buf[i] = b2u(lv[i] < rv[i])
			}
		case gsql.OpLe:
			for i := range lv {
				buf[i] = b2u(lv[i] <= rv[i])
			}
		case gsql.OpGt:
			for i := range lv {
				buf[i] = b2u(lv[i] > rv[i])
			}
		case gsql.OpGe:
			for i := range lv {
				buf[i] = b2u(lv[i] >= rv[i])
			}
		}
		return buf
	}
	return colKer{b: f}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
