// Package cluster executes distributed physical plans on a simulated
// cluster: a hash or round-robin stream splitter (paper Section 3.3),
// one simulated process per (host, partition) plus a central process
// per host, and per-host CPU and network accounting. The measured
// quantities mirror the paper's evaluation: CPU load and network load
// (tuples/sec) on the aggregator node, and CPU load on the leaf nodes.
package cluster

import (
	"fmt"
	"strings"
)

// CostConfig sets the simulator's CPU cost model. Costs are abstract
// units; CapacityPerSec converts a host's accumulated units into a
// CPU-load percentage. The remote surcharge is what makes
// partition-agnostic plans expensive (paper Section 1: "significant
// overhead involved in processing remote tuples as compared to local
// processing").
type CostConfig struct {
	// Per-operator work charged at the receiving host for every tuple
	// the operator receives.
	ScanCost    float64 // packet ingest and parse
	SelProjCost float64
	AggCost     float64 // hash lookup + accumulate (full/sub/super)
	JoinCost    float64 // hash probe + insert
	UnionCost   float64 // stream merge bookkeeping
	OutputCost  float64 // final result delivery
	// IPCCost is the extra charge when a tuple crosses between
	// processes on the same host (Gigascope's per-query processes
	// exchange tuples through shared-memory ring buffers — cheap but
	// not free).
	IPCCost float64
	// RemoteCost is the extra charge when a tuple crosses hosts: it
	// was serialized, sent through a socket, received, and parsed.
	RemoteCost float64
	// CapacityPerSec is the work units one host sustains per second
	// at 100% CPU.
	CapacityPerSec float64
}

// DefaultCosts returns the cost model used by the experiments; the
// remote-to-local ratio reflects the paper's observation that remote
// tuples are far more expensive to process than local ones.
func DefaultCosts() CostConfig {
	return CostConfig{
		ScanCost:    1.0,
		SelProjCost: 0.4,
		AggCost:     1.2,
		JoinCost:    1.5,
		UnionCost:   0.15,
		OutputCost:  0.05,
		IPCCost:     0.3,
		RemoteCost:  6.0,
	}
}

// HostMetrics accumulates one host's activity.
type HostMetrics struct {
	// CPUUnits is the total work charged to the host.
	CPUUnits float64
	// NetTuplesIn / NetBytesIn count arrivals over the network, i.e.
	// from operators on other hosts.
	NetTuplesIn int64
	NetBytesIn  int64
	// IPCTuplesIn counts same-host arrivals that crossed a process
	// boundary (ring buffers / loopback), which cost CPU but not
	// network.
	IPCTuplesIn int64
	// Tuples counts every tuple delivered to an operator on the host.
	Tuples int64
}

// sub returns the field-wise difference m - o: the counter delta
// between two snapshots of the same host, which is how the load
// monitor turns cumulative metrics into per-window activity.
func (m HostMetrics) sub(o HostMetrics) HostMetrics {
	return HostMetrics{
		CPUUnits:    m.CPUUnits - o.CPUUnits,
		NetTuplesIn: m.NetTuplesIn - o.NetTuplesIn,
		NetBytesIn:  m.NetBytesIn - o.NetBytesIn,
		IPCTuplesIn: m.IPCTuplesIn - o.IPCTuplesIn,
		Tuples:      m.Tuples - o.Tuples,
	}
}

// Metrics is the full accounting of one run.
type Metrics struct {
	Hosts       []HostMetrics
	DurationSec float64
	Capacity    float64 // units/sec per host
}

// inRange reports whether host is a valid index. The load accessors
// tolerate out-of-range hosts (returning 0) so report builders and
// CLI formatters iterating over configured rather than actual host
// counts degrade to zeros instead of panicking.
func (m *Metrics) inRange(host int) bool {
	return host >= 0 && host < len(m.Hosts)
}

// CPULoad returns the host's CPU utilization percentage.
func (m *Metrics) CPULoad(host int) float64 {
	if m.Capacity <= 0 || m.DurationSec <= 0 || !m.inRange(host) {
		return 0
	}
	return 100 * m.Hosts[host].CPUUnits / (m.Capacity * m.DurationSec)
}

// OverloadFactor reports how far the host's demanded work exceeds its
// capacity: 0 when within capacity, otherwise the fraction of work
// that a real system would have to shed (the paper's Figure 8 point
// where "the system is clearly overloaded and starts dropping input
// tuples").
func (m *Metrics) OverloadFactor(host int) float64 {
	if m.Capacity <= 0 || m.DurationSec <= 0 || !m.inRange(host) {
		return 0
	}
	budget := m.Capacity * m.DurationSec
	excess := m.Hosts[host].CPUUnits - budget
	if excess <= 0 {
		return 0
	}
	return excess / m.Hosts[host].CPUUnits
}

// NetLoad returns the host's network arrivals in tuples per second
// (the paper's Figures 9, 11, 14 report packets/sec received by the
// aggregator).
func (m *Metrics) NetLoad(host int) float64 {
	if m.DurationSec <= 0 || !m.inRange(host) {
		return 0
	}
	return float64(m.Hosts[host].NetTuplesIn) / m.DurationSec
}

// LeafCPULoad returns the mean CPU load over all hosts except the
// aggregator; with a single host it returns that host's load.
func (m *Metrics) LeafCPULoad(aggregator int) float64 {
	if len(m.Hosts) == 1 {
		return m.CPULoad(0)
	}
	total, n := 0.0, 0
	for h := range m.Hosts {
		if h == aggregator {
			continue
		}
		total += m.CPULoad(h)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// perSec divides a counter by the trace duration, returning 0 for an
// empty trace rather than NaN/Inf.
func (m *Metrics) perSec(n int64) float64 {
	if m.DurationSec <= 0 {
		return 0
	}
	return float64(n) / m.DurationSec
}

// String renders a per-host table.
func (m *Metrics) String() string {
	var b strings.Builder
	for h, hm := range m.Hosts {
		fmt.Fprintf(&b, "host %d: cpu %.1f%%  net %.0f tup/s (%.0f B/s)  ipc %.0f tup/s  tuples %d\n",
			h, m.CPULoad(h), m.NetLoad(h), m.perSec(hm.NetBytesIn),
			m.perSec(hm.IPCTuplesIn), hm.Tuples)
	}
	return b.String()
}
