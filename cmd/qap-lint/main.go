// Command qap-lint runs the static semantic analyzer over a GSQL
// query set: it parses the queries, builds the logical plan DAG, runs
// the partitioning analysis, and reports QAP0xx diagnostics — which
// candidate partitioning sets each node is compatible with and which
// scope rule excluded the rest (paper Sections 3.4-3.5), window
// alignment across join inputs, HAVING placement under the sub/super
// aggregate split, holistic aggregates, dead columns, and outer-join
// NULL-padding hazards (Sections 5.2-5.4).
//
// Usage:
//
//	qap-lint [-schema file] [-queries file] [-sets 'a; b & 0xF'] [-format human|json]
//
// Without -queries it lints the paper's Section 3.2 example set. The
// exit status is 1 when any error-severity diagnostic (or a parse or
// plan failure, reported as QAP000) is present, 0 otherwise. Output is
// deterministic: byte-identical across runs and -workers settings.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"qap"
	"qap/internal/lint"
	"qap/internal/netgen"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	schemaFile string
	queryFile  string
	sets       string
	format     string
	workers    int
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.StringVar(&f.schemaFile, "schema", "", "stream DDL file (default: the built-in TCP schema)")
	fs.StringVar(&f.queryFile, "queries", "", "GSQL query set file (default: the paper's Section 3.2 set)")
	fs.StringVar(&f.sets, "sets", "", "semicolon-separated candidate partitioning sets to explain (default: derived from the analysis)")
	fs.StringVar(&f.format, "format", "human", "output format: human or json")
	fs.IntVar(&f.workers, "workers", runtime.GOMAXPROCS(0), "analysis worker goroutines (1 = sequential; results are identical for any value)")
	return f
}

func main() {
	fl := defineFlags(flag.CommandLine)
	flag.Parse()
	schemaFile, queryFile := &fl.schemaFile, &fl.queryFile
	setsFlag, format, workers := &fl.sets, &fl.format, &fl.workers

	if *format != "human" && *format != "json" {
		fatal(fmt.Errorf("unknown -format %q (want human or json)", *format))
	}

	ddl := netgen.SchemaDDL
	if *schemaFile != "" {
		b, err := os.ReadFile(*schemaFile)
		if err != nil {
			fatal(err)
		}
		ddl = string(b)
	}
	queries := qap.ComplexQuerySet
	source := "<builtin>"
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		queries = string(b)
		source = *queryFile
	}

	var sets []qap.Set
	for _, s := range strings.Split(*setsFlag, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		ps, err := qap.ParseSet(s)
		if err != nil {
			fatal(err)
		}
		sets = append(sets, ps)
	}

	rep := run(ddl, queries, source, sets, *workers)
	switch *format {
	case "json":
		b, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
	default:
		fmt.Print(rep.Human())
	}
	if rep.HasErrors() {
		os.Exit(1)
	}
}

func run(ddl, queries, source string, sets []qap.Set, workers int) *qap.LintReport {
	sys, err := qap.Load(ddl, queries)
	if err != nil {
		return qap.LintLoadError(source, err)
	}
	var analysis *qap.Analysis
	if len(sets) == 0 {
		opts := qap.DefaultSearchOptions()
		opts.Workers = workers
		analysis, err = sys.AnalyzeWith(nil, opts)
		if err != nil {
			return qap.LintLoadError(source, err)
		}
	}
	var lopts lint.Options
	lopts.Source = source
	lopts.Sets = sets
	lopts.Analysis = analysis
	return lint.Run(sys.Graph, sys.Queries, lopts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-lint:", err)
	os.Exit(2)
}
