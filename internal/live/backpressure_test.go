package live

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestOutboxCreditWindow: the outbox accepts frames up to its limit,
// fails a blocked append with the positioned credit-stall error at its
// deadline, and reopens as acks drop frames — the queue never grows
// past the window, which is what bounds splitter memory.
func TestOutboxCreditWindow(t *testing.T) {
	o := newOutbox(2)
	enc := func(seq uint64, dst []byte) []byte { return append(dst, byte(seq)) }
	for want := uint64(1); want <= 2; want++ {
		seq, err := o.append(frameFeed, time.Now().Add(time.Second), enc)
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Fatalf("append assigned seq %d, want %d", seq, want)
		}
	}
	if _, err := o.append(frameFeed, time.Now().Add(30*time.Millisecond), enc); err == nil {
		t.Fatal("append past the credit window succeeded")
	} else if !strings.Contains(err.Error(), "credit window stalled") {
		t.Fatalf("error %q is not the positioned credit-stall error", err)
	}
	o.ack(1)
	if seq, err := o.append(frameFeed, time.Now().Add(time.Second), enc); err != nil || seq != 3 {
		t.Fatalf("append after ack: seq %d, err %v", seq, err)
	}
	o.mu.Lock()
	queued := len(o.frames)
	o.mu.Unlock()
	if queued != 2 {
		t.Fatalf("outbox holds %d frames, want 2 (the credit limit)", queued)
	}
}

// TestOutboxBlockedAppendReleasedByAck: a producer parked at credit
// exhaustion must wake when an ack frees a slot — the no-deadlock half
// of the backpressure contract.
func TestOutboxBlockedAppendReleasedByAck(t *testing.T) {
	o := newOutbox(1)
	enc := func(seq uint64, dst []byte) []byte { return append(dst, byte(seq)) }
	if _, err := o.append(frameFeed, time.Now().Add(time.Second), enc); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := o.append(frameFeed, time.Now().Add(5*time.Second), enc)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("append past the window returned early (err %v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	o.ack(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append still parked after the ack: backpressure deadlock")
	}
}

// stubNode is a protocol-speaking node that executes nothing: it
// answers the handshake, counts the feed frames it reads, and releases
// a feed ack only when the test says so — the slow consumer.
type stubNode struct {
	ln    net.Listener
	acks  chan uint64 // seqs the test releases
	feeds atomic.Int64
	errc  chan error
}

func newStubNode(t *testing.T) *stubNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &stubNode{ln: ln, acks: make(chan uint64, 64), errc: make(chan error, 4)}
	t.Cleanup(func() { ln.Close() })
	go n.serve()
	return n
}

func (n *stubNode) serve() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		go n.session(conn)
	}
}

func (n *stubNode) session(conn net.Conn) {
	defer conn.Close()
	typ, _, buf, err := readFrame(conn, 0, nil)
	if err != nil || typ != frameHello {
		n.errc <- err
		return
	}
	w := Welcome{Version: ProtocolVersion}
	if _, err := writeFrame(conn, nil, frameWelcome, w.encode(nil)); err != nil {
		n.errc <- err
		return
	}
	// Writer: acks flow only when the test releases them.
	go func() {
		var scratch []byte
		for seq := range n.acks {
			var err error
			if scratch, err = writeFrame(conn, scratch, frameFeedAck, appendU64(nil, seq)); err != nil {
				return
			}
		}
	}()
	for {
		typ, _, buf, err = readFrame(conn, 0, buf)
		if err != nil {
			return
		}
		if typ == frameFeed {
			n.feeds.Add(1)
		}
	}
}

// TestSplitterSlowConsumerBoundedMemory is the backpressure contract
// end to end over real sockets: with a node that reads but never acks,
// the splitter queues exactly Credits feed frames and parks the
// producer; each released ack admits exactly one more feed, and the
// queue never grows past the window.
func TestSplitterSlowConsumerBoundedMemory(t *testing.T) {
	node := newStubNode(t)
	cfg := Config{Credits: 2, Timeout: 5 * time.Second}
	sp := NewSplitter(cfg, Hello{BatchSize: 1, Fingerprint: "stub"}, []string{node.ln.Addr().String()})
	sp.Start()
	defer sp.Close()

	queued := func() int {
		out := sp.peers[0].out
		out.mu.Lock()
		defer out.mu.Unlock()
		return len(out.frames)
	}
	var sent atomic.Int64
	go func() {
		for i := 0; i < 6; i++ {
			if err := sp.SendFeed(0, &FeedMsg{Rounds: []Round{{Round: i}}}); err != nil {
				return
			}
			sent.Add(1)
		}
	}()

	// The producer must park at the credit window with the unacked
	// frames — and only those — buffered.
	waitFor(t, "producer parked at the credit window", func() bool { return sent.Load() == 2 })
	time.Sleep(50 * time.Millisecond) // would-be overshoot window
	if got := sent.Load(); got != 2 {
		t.Fatalf("producer sent %d feeds past a 2-credit window", got)
	}
	if q := queued(); q > 2 {
		t.Fatalf("splitter buffers %d frames, credit window is 2", q)
	}
	// The unacked frames still travel: the node reads them even while
	// the producer is parked (credits bound memory, not the pipe).
	waitFor(t, "node received the in-window feeds", func() bool { return node.feeds.Load() == 2 })

	// Each released ack admits exactly one more feed.
	for seq := uint64(1); seq <= 6; seq++ {
		node.acks <- seq
		want := int64(seq) + 2
		if want > 6 {
			want = 6
		}
		waitFor(t, "ack admitted the next feed", func() bool { return sent.Load() == want })
		if q := queued(); q > 2 {
			t.Fatalf("after ack %d the splitter buffers %d frames, credit window is 2", seq, q)
		}
	}
	waitFor(t, "node drained every feed", func() bool { return node.feeds.Load() == 6 })
}

// TestSplitterCreditExhaustionTimesOut: with a consumer that never
// acks, a send parked at the credit window must fail with the
// positioned credit-stall error at its deadline — never deadlock.
func TestSplitterCreditExhaustionTimesOut(t *testing.T) {
	node := newStubNode(t)
	cfg := Config{Credits: 1, Timeout: 200 * time.Millisecond, MaxAttempts: 1}
	sp := NewSplitter(cfg, Hello{BatchSize: 1, Fingerprint: "stub"}, []string{node.ln.Addr().String()})
	sp.Start()
	defer sp.Close()

	if err := sp.SendFeed(0, &FeedMsg{Rounds: []Round{{Round: 0}}}); err != nil {
		t.Fatal(err)
	}
	err := sp.SendFeed(0, &FeedMsg{Rounds: []Round{{Round: 1}}})
	if err == nil {
		t.Fatal("send past a never-acking consumer succeeded")
	}
	for _, want := range []string{"host 0", "credit window stalled", "1 unacked"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
