package qap

import (
	"fmt"
	"sort"

	"qap/internal/netgen"
	"qap/internal/obs"
)

// DriftQuerySet is the workload-drift experiment's query pair: two
// independent aggregations with disjoint partitioning requirements.
// src_flows is only compatible with sets over srcIP, dst_flows only
// with sets over destIP, so the optimizer must sacrifice one of them —
// it pushes down the query whose output is cheaper to ship and runs
// the other centrally. Which one that is depends entirely on the
// traffic's source/destination cardinality mix, which is what the
// drift scenario flips mid-trace.
const DriftQuerySet = `
query src_flows:
SELECT tb, srcIP, COUNT(*) as cnt, SUM(len) as bytes
FROM TCP
GROUP BY time/10 as tb, srcIP

query dst_flows:
SELECT tb, destIP, COUNT(*) as cnt, SUM(len) as bytes
FROM TCP
GROUP BY time/10 as tb, destIP`

// DriftScenario configures the adaptive-repartitioning experiment: a
// two-phase skew-shift trace run once with a static deployment and
// once under the adaptive controller.
type DriftScenario struct {
	// Trace is the drifting packet trace; DefaultDriftScenario's has
	// two phases that swap the source/destination pool sizes and
	// treble the packet rate.
	Trace netgen.Config
	// Hosts and PartitionsPerHost shape the cluster.
	Hosts             int
	PartitionsPerHost int
	// TriggerFactor and LoadWindowSec feed AdaptiveConfig.
	TriggerFactor float64
	LoadWindowSec int
	// Workers and BatchSize select the engine (results identical).
	Workers   int
	BatchSize int
}

// DefaultDriftScenario returns the scenario EXPERIMENTS.md records:
// phase 1 has 200 sources fanning out to 2000 destinations (src_flows
// output is 10x smaller, so the optimizer deploys (srcIP) and ships
// dst_flows' input); phase 2 inverts the pools — 2000 sources, 200
// destinations — and trebles the rate, so the deployed set's measured
// load blows through the bound and the refreshed decision flips to
// (destIP). Both pools stay large enough that hash partitioning
// balances under either set.
func DefaultDriftScenario() DriftScenario {
	tr := netgen.DefaultConfig()
	tr.PacketsPerSec = 400
	tr.SrcHosts = 200
	tr.DstHosts = 2000
	tr.Phases = []netgen.Phase{
		{DurationSec: 40}, // pre-drift: inherits the base mix
		{DurationSec: 40, PacketsPerSec: 1200, SrcHosts: 2000, DstHosts: 200},
	}
	return DriftScenario{
		Trace:             tr,
		Hosts:             8,
		PartitionsPerHost: 1,
		TriggerFactor:     1.5,
		LoadWindowSec:     10,
	}
}

// RunDriftExperiment executes the full drift protocol: measure
// statistics on the pre-drift regime, optimize and deploy, run the
// drifting trace under the adaptive controller, and assemble the
// static-versus-adaptive comparison the BENCH_drift.json artifact and
// EXPERIMENTS.md table record. The static baseline is the adaptive
// run's own monitored initial deployment — same trace, same set, no
// intervention — so the comparison isolates exactly the switch.
func RunDriftExperiment(sc DriftScenario) (*obs.DriftBenchReport, *AdaptiveResult, error) {
	if err := sc.Trace.Validate(); err != nil {
		return nil, nil, err
	}
	sys, err := Load(netgen.SchemaDDL, DriftQuerySet)
	if err != nil {
		return nil, nil, err
	}
	tr := netgen.Generate(sc.Trace)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}

	// Deploy-time statistics come from the pre-drift regime: the first
	// phase's prefix of the trace (the whole trace when phase-free),
	// exactly what an operator planning before the drift would have.
	warmSec := uint64(sc.Trace.TotalDurationSec())
	if len(sc.Trace.Phases) > 0 {
		warmSec = uint64(sc.Trace.Phases[0].DurationSec)
	}
	cut := sort.Search(len(tr.Packets), func(i int) bool { return tr.Packets[i].Time >= warmSec })
	stats, err := sys.MeasureStats(map[string][]netgen.Packet{"TCP": tr.Packets[:cut]})
	if err != nil {
		return nil, nil, fmt.Errorf("qap: drift experiment: pre-drift statistics: %w", err)
	}
	analysis, err := sys.Analyze(stats)
	if err != nil {
		return nil, nil, err
	}

	ares, err := sys.RunAdaptive(AdaptiveConfig{
		Deploy: DeployConfig{
			Hosts:             sc.Hosts,
			PartitionsPerHost: sc.PartitionsPerHost,
			Partitioning:      analysis.Best,
			DisablePartialAgg: true,
			Workers:           sc.Workers,
			BatchSize:         sc.BatchSize,
		},
		Stats:         stats,
		Analysis:      analysis,
		TriggerFactor: sc.TriggerFactor,
		LoadWindowSec: sc.LoadWindowSec,
	}, streams)
	if err != nil {
		return nil, nil, err
	}

	rep := &obs.DriftBenchReport{
		SchemaVersion:          obs.SchemaVersion,
		Name:                   "drift",
		LoadWindowSec:          ares.LoadWindowSec,
		TriggerFactor:          ares.TriggerFactor,
		Bound:                  ares.Bound,
		NewBound:               ares.NewBound,
		TriggerWindow:          ares.TriggerWindow,
		TriggerRate:            ares.TriggerRate,
		SwitchTimeSec:          ares.SwitchTimeSec,
		InitialSet:             ares.InitialSet.String(),
		FinalSet:               ares.FinalSet.String(),
		Repartitioned:          ares.Repartitioned,
		PostSwitchPeakBps:      ares.PostSwitchPeak,
		WithinBoundAfterSwitch: ares.WithinBoundAfterSwitch(),
	}
	// Static load per window is the initial deployment's; the adaptive
	// deployment observes the same windows up to the switch boundary
	// and the post-switch deployment's after it.
	static := ares.Initial.LoadSeries
	adaptive := ares.Final.LoadSeries
	for i, w := range static {
		row := obs.DriftWindowRow{
			Window:             w.Window,
			StartSec:           w.StartSec,
			StaticMaxHostBps:   w.MaxHostNetBytesPerSec(),
			AdaptiveMaxHostBps: w.MaxHostNetBytesPerSec(),
		}
		if ares.Repartitioned && w.Window > ares.TriggerWindow && i < len(adaptive) {
			row.AdaptiveMaxHostBps = adaptive[i].MaxHostNetBytesPerSec()
			row.AdaptiveUsesFinalSet = true
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, ares, nil
}
