package qap

import (
	"strings"
	"testing"

	"qap/internal/netgen"
)

func sampleTrace() *Trace {
	cfg := DefaultTraceConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 120, 500
	return GenerateTrace(cfg)
}

func TestMeasureStatsSelectivities(t *testing.T) {
	sys := MustLoad(TCPSchemaDDL, ComplexQuerySet)
	tr := sampleTrace()
	stats, err := sys.MeasureStats(map[string][]netgen.Packet{"TCP": tr.Packets})
	if err != nil {
		t.Fatal(err)
	}
	// Measured rates and selectivities land where the workload puts
	// them: flows reduces packets to flows (well under 1), heavy_flows
	// reduces flows to per-source maxima, flow_pairs emits fewer rows
	// than heavy_flows feeds it (twice, as a self-join).
	if got := stats.StreamTupleRate("TCP"); got < 400 || got > 600 {
		t.Errorf("measured rate = %f, want ~500", got)
	}
	flowsSel := stats.Selectivities["flows"]
	if flowsSel <= 0 || flowsSel >= 0.6 {
		t.Errorf("flows selectivity = %f, want aggregation reduction", flowsSel)
	}
	hfSel := stats.Selectivities["heavy_flows"]
	if hfSel <= 0 || hfSel > 1 {
		t.Errorf("heavy_flows selectivity = %f", hfSel)
	}
	if _, ok := stats.Selectivities["flow_pairs"]; !ok {
		t.Error("flow_pairs selectivity missing")
	}
}

func TestMeasuredStatsDriveAnalyzer(t *testing.T) {
	sys := MustLoad(TCPSchemaDDL, ComplexQuerySet)
	tr := sampleTrace()
	stats, err := sys.MeasureStats(map[string][]netgen.Packet{"TCP": tr.Packets})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Analyze(stats)
	if err != nil {
		t.Fatal(err)
	}
	// With real measured statistics, the analysis still lands on the
	// paper's answer for this set.
	if !res.Best.Equal(MustParseSet("srcIP")) {
		t.Errorf("best under measured stats = %s, want (srcIP)\n%s", res.Best, res.Summary())
	}
}

func TestMeasureStatsMissingStream(t *testing.T) {
	sys := MustLoad(TCPSchemaDDL, ComplexQuerySet)
	if _, err := sys.MeasureStats(map[string][]netgen.Packet{}); err == nil {
		t.Error("missing sample trace for TCP should fail")
	}
}

// TestMeasureStatsEmptySample: an all-empty sample has no measurable
// duration, so rates are undefined. The old behavior clamped the
// duration to 1s and silently reported every rate as zero — poisoning
// any costing done with the "measured" stats. It must now be a
// positioned error naming the streams.
func TestMeasureStatsEmptySample(t *testing.T) {
	sys := MustLoad(TCPSchemaDDL, ComplexQuerySet)
	_, err := sys.MeasureStats(map[string][]netgen.Packet{"TCP": nil})
	if err == nil {
		t.Fatal("empty sample should fail, not report zero rates")
	}
	if !strings.Contains(err.Error(), "TCP") || !strings.Contains(err.Error(), "empty") {
		t.Errorf("error does not identify the empty sample: %v", err)
	}
}

// TestMeasureStatsStarvedNodeZeroSelectivity: a node whose inputs
// produced no rows in the sample must record a measured selectivity of
// exactly 0 — not silently fall back to the static heuristic, which
// would fabricate a non-zero output rate for a node the sample proved
// dead. With AttackFraction 0 the HAVING filter empties `suspicious`,
// which starves the downstream aggregation completely.
func TestMeasureStatsStarvedNodeZeroSelectivity(t *testing.T) {
	queries := SuspiciousFlowsQuery + `

query suspicious_per_src:
SELECT tb, srcIP, SUM(cnt) as total
FROM suspicious
GROUP BY tb, srcIP`
	sys := MustLoad(TCPSchemaDDL, queries)
	cfg := DefaultTraceConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 30, 200
	cfg.AttackFraction = 0 // no flow ever matches #PATTERN#
	tr := GenerateTrace(cfg)
	stats, err := sys.MeasureStats(map[string][]netgen.Packet{"TCP": tr.Packets})
	if err != nil {
		t.Fatal(err)
	}
	// suspicious saw input but emitted nothing: measured 0 via the
	// normal out/in path.
	if sel := stats.Selectivities["suspicious"]; sel != 0 {
		t.Errorf("suspicious selectivity = %v, want 0", sel)
	}
	// suspicious_per_src saw no input at all: the starved branch must
	// record the measured zero rather than skip the node.
	sel, ok := stats.Selectivities["suspicious_per_src"]
	if !ok {
		t.Fatal("starved node's selectivity not recorded")
	}
	if sel != 0 {
		t.Errorf("starved node selectivity = %v, want explicit 0", sel)
	}
}

func TestNodeRowsExposed(t *testing.T) {
	sys := MustLoad(TCPSchemaDDL, ComplexQuerySet)
	dep, err := sys.Deploy(DeployConfig{Hosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := sampleTrace()
	res, err := dep.Run("TCP", tr.Packets)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeRows["flows"] == 0 || res.NodeRows["heavy_flows"] == 0 {
		t.Errorf("intermediate node rows missing: %v", res.NodeRows)
	}
	if res.NodeRows["flows"] <= res.NodeRows["heavy_flows"] {
		t.Errorf("flows (%d) should outnumber heavy_flows (%d)",
			res.NodeRows["flows"], res.NodeRows["heavy_flows"])
	}
}
