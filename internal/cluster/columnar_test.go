package cluster

import (
	"fmt"
	"testing"
	"time"

	"qap/internal/core"
	"qap/internal/netgen"
	"qap/internal/obs/trace"
	"qap/internal/optimizer"
)

// runColumnar builds and runs a plan with the columnar path enabled,
// stats collection on.
func runColumnar(t testing.TB, queries string, ps core.Set, o optimizer.Options, streams map[string][]netgen.Packet, workers, batch int) *Result {
	t.Helper()
	g := buildGraph(t, queries)
	p, err := optimizer.Build(g, ps, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: workers, BatchSize: batch, Columnar: true, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestColumnarMatchesScalar is the cluster-level equivalence gate for
// the columnar path: every workload and topology must reproduce the
// scalar path's canonical outputs and deterministic counters at every
// batch size and worker count.
func TestColumnarMatchesScalar(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	querySets := []struct {
		name    string
		queries string
		ps      core.Set
	}{
		{"flows", flowsQuery, core.MustParseSet("srcIP, destIP")},
		{"complex", complexSet, core.MustParseSet("srcIP")},
		{"suspicious", suspiciousQuery, core.MustParseSet("srcIP, destIP, srcPort, destPort")},
	}
	for _, qs := range querySets {
		for _, hosts := range []int{1, 4} {
			o := optimizer.Options{Hosts: hosts, PartitionsPerHost: 2, PartialAgg: true}
			t.Run(fmt.Sprintf("%s/hosts=%d", qs.name, hosts), func(t *testing.T) {
				want := runBatch(t, qs.queries, qs.ps, o, streams, 1, 1)
				for _, bs := range []int{7, 64, 1024} {
					for _, workers := range []int{1, 4} {
						got := runColumnar(t, qs.queries, qs.ps, o, streams, workers, bs)
						sameResultCanonical(t, fmt.Sprintf("bs=%d workers=%d", bs, workers), want, got)
					}
				}
			})
		}
	}
}

// TestColumnarSameBatchBitIdentical: at a fixed batch size, the
// columnar path must not move a byte relative to the row batched path —
// every PushCols is observably identical to PushBatch of the pivoted
// rows, so outputs, metrics (bit-equal floats included), and OpStats
// coincide exactly, for any worker count.
func TestColumnarSameBatchBitIdentical(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}
	ps := core.MustParseSet("srcIP")
	for _, bs := range []int{7, 256} {
		want := runBatch(t, complexSet, ps, o, streams, 1, bs)
		for _, workers := range []int{1, 4} {
			got := runColumnar(t, complexSet, ps, o, streams, workers, bs)
			sameResult(t, want, got)
		}
	}
}

// TestColumnarBatchSizeOneFallsBack: Columnar requires batching; at
// BatchSize 1 the scalar path must run unchanged.
func TestColumnarBatchSizeOneFallsBack(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	ps := core.MustParseSet("srcIP, destIP")
	want := runBatch(t, flowsQuery, ps, o, streams, 1, 1)
	got := runColumnar(t, flowsQuery, ps, o, streams, 1, 1)
	sameResult(t, want, got)
}

// TestColumnarLiveMatchesSim: the live TCP backend with the columnar
// path must reproduce the columnar simulator byte for byte — including
// canonical trace bytes — and both must match the row batched engine.
func TestColumnarLiveMatchesSim(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	ps := core.MustParseSet("srcIP, destIP, srcPort, destPort")

	rowCfg := RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: 1, BatchSize: 256,
		CollectStats: true, Trace: &trace.Config{},
	}
	colCfg := rowCfg
	colCfg.Columnar = true
	liveCfg := colCfg
	liveCfg.Engine = EngineLive
	liveCfg.DriveTimeout = 30 * time.Second

	want := runEngine(t, suspiciousQuery, ps, o, streams, rowCfg)
	simCol := runEngine(t, suspiciousQuery, ps, o, streams, colCfg)
	sameResult(t, want, simCol)
	sameTrace(t, want, simCol)
	liveCol := runEngine(t, suspiciousQuery, ps, o, streams, liveCfg)
	sameResult(t, want, liveCol)
	sameTrace(t, want, liveCol)
}
