package core

import (
	"reflect"
	"testing"
)

// TestOptimizeWorkersEquivalence: the parallel candidate costing must
// produce exactly the same Result as the sequential search — same
// candidate ranking, same best set, bit-equal costs — for any worker
// count.
func TestOptimizeWorkersEquivalence(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	want, err := Optimize(g, nil, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Optimize(g, nil, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Best.Equal(want.Best) || got.BestCost != want.BestCost {
			t.Fatalf("workers=%d: best %s cost %v, want %s cost %v",
				workers, got.Best, got.BestCost, want.Best, want.BestCost)
		}
		if !reflect.DeepEqual(got.Candidates, want.Candidates) {
			t.Fatalf("workers=%d: candidate list differs", workers)
		}
	}
}

// TestPerStreamWorkersEquivalence covers the per-stream analysis path,
// which reuses the same search core.
func TestPerStreamWorkersEquivalence(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	want, err := OptimizePerStream(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizePerStream(g, nil, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sets, want.Sets) {
		t.Fatalf("per-stream sets differ: %v vs %v", got.Sets, want.Sets)
	}
}
