// Command qap-vet runs the repo's determinism analyzers over the
// module's own Go source: wall-clock reads (time.Now and friends) and
// math/rand outside quarantined timing paths, range statements over
// maps, and goroutines launched from map-range bodies — the three ways
// nondeterminism has historically leaked into simulated results.
//
// Usage:
//
//	qap-vet [dir]
//
// dir defaults to the current directory; qap-vet locates the enclosing
// module root and checks every non-test package under it. Deliberately
// exempt sites carry a "//qap:allow <analyzer>" comment on the same
// line or the line above. Findings print one per line in file:line:col
// form, sorted, and a non-empty report exits 1.
package main

import (
	"fmt"
	"os"
	"strings"

	"qap/internal/analyzers"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		// Accept a go-style "./..." pattern: the module is always
		// checked as a whole, so only the base directory matters.
		dir = strings.TrimSuffix(os.Args[1], "...")
		if dir == "" {
			dir = "."
		}
	}
	root, err := analyzers.ModuleRoot(dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analyzers.Load(root)
	if err != nil {
		fatal(err)
	}
	findings := analyzers.RunAll(pkgs, analyzers.All)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qap-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-vet:", err)
	os.Exit(2)
}
