package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module vettest\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func findingsFor(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	root := writeModule(t, files)
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	return RunAll(pkgs, All)
}

func byAnalyzer(fs []Finding, name string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer == name {
			out = append(out, f)
		}
	}
	return out
}

func TestWalltimeFlagsClockAndRand(t *testing.T) {
	fs := findingsFor(t, map[string]string{
		"main.go": `package main

import (
	"math/rand"
	"time"
)

func main() {
	_ = time.Now()
	_ = rand.Int()
	time.Sleep(time.Second)
}
`,
	})
	wall := byAnalyzer(fs, "walltime")
	if len(wall) != 3 { // import + Now + Sleep
		t.Fatalf("want 3 walltime findings, got %d: %v", len(wall), wall)
	}
}

func TestWalltimeIgnoresNonClockTimeUse(t *testing.T) {
	fs := findingsFor(t, map[string]string{
		"main.go": `package main

import (
	"fmt"
	"time"
)

func main() {
	var d time.Duration = 3 * time.Second
	fmt.Println(d, time.Unix(0, 42).UTC())
}
`,
	})
	if wall := byAnalyzer(fs, "walltime"); len(wall) != 0 {
		t.Fatalf("time.Duration/time.Unix are deterministic; got %v", wall)
	}
}

func TestAllowSuppresses(t *testing.T) {
	fs := findingsFor(t, map[string]string{
		"main.go": `package main

import "time"

func main() {
	_ = time.Now() //qap:allow walltime -- quarantined
	//qap:allow walltime -- line-above form
	_ = time.Now()
	_ = time.Now() //qap:allow maprange -- wrong analyzer, does not suppress
}
`,
	})
	wall := byAnalyzer(fs, "walltime")
	if len(wall) != 1 {
		t.Fatalf("want exactly the mis-annotated site, got %d: %v", len(wall), wall)
	}
	if wall[0].Pos.Line != 9 {
		t.Errorf("surviving finding at line %d, want 9", wall[0].Pos.Line)
	}
}

func TestMapRangeFlagsMapsOnly(t *testing.T) {
	fs := findingsFor(t, map[string]string{
		"main.go": `package main

type bag map[string]int

func main() {
	m := map[int]string{1: "a"}
	var b bag
	s := []int{1, 2}
	ch := make(chan int)
	close(ch)
	for range m {
	}
	for range b { // named map type
	}
	for range s {
	}
	for range ch {
	}
}
`,
	})
	mr := byAnalyzer(fs, "maprange")
	if len(mr) != 2 {
		t.Fatalf("want 2 maprange findings (map + named map), got %d: %v", len(mr), mr)
	}
	for _, f := range mr {
		if f.Pos.Line != 11 && f.Pos.Line != 13 {
			t.Errorf("unexpected maprange finding at line %d", f.Pos.Line)
		}
	}
}

func TestFanoutFlagsGoInMapRange(t *testing.T) {
	fs := findingsFor(t, map[string]string{
		"main.go": `package main

func main() {
	m := map[string]int{"a": 1}
	done := make(chan struct{})
	for k := range m { //qap:allow maprange -- testing fanout separately
		go func(string) { done <- struct{}{} }(k)
	}
	s := []string{"a"}
	for _, k := range s {
		go func(string) { done <- struct{}{} }(k)
	}
	<-done
	<-done
}
`,
	})
	fo := byAnalyzer(fs, "fanout")
	if len(fo) != 1 {
		t.Fatalf("want 1 fanout finding (map range only), got %d: %v", len(fo), fo)
	}
	if fo[0].Pos.Line != 7 {
		t.Errorf("fanout finding at line %d, want 7", fo[0].Pos.Line)
	}
}

func TestTestFilesExcluded(t *testing.T) {
	fs := findingsFor(t, map[string]string{
		"main.go": "package main\n\nfunc main() {}\n",
		"main_test.go": `package main

import (
	"testing"
	"time"
)

func TestX(t *testing.T) { _ = time.Now() }
`,
	})
	if len(fs) != 0 {
		t.Fatalf("_test.go files are out of scope; got %v", fs)
	}
}

func TestFindingsSortedDeterministically(t *testing.T) {
	files := map[string]string{
		"a/a.go": `package a

import "time"

func A() int64 {
	m := map[int]int{}
	n := 0
	for range m {
		n++
	}
	return time.Now().Unix() + int64(n)
}
`,
		"b/b.go": `package b

import "time"

var T = time.Now
`,
	}
	first := findingsFor(t, files)
	if len(first) == 0 {
		t.Fatal("expected findings")
	}
	for run := 0; run < 3; run++ {
		again := findingsFor(t, files)
		if len(again) != len(first) {
			t.Fatalf("finding count varies: %d vs %d", len(again), len(first))
		}
		for i := range first {
			// Roots differ (t.TempDir), so compare everything but the dir.
			if filepath.Base(first[i].Pos.Filename) != filepath.Base(again[i].Pos.Filename) ||
				first[i].Pos.Line != again[i].Pos.Line ||
				first[i].Analyzer != again[i].Analyzer ||
				first[i].Message != again[i].Message {
				t.Fatalf("finding order varies at %d: %v vs %v", i, first[i], again[i])
			}
		}
	}
}

// repoRoot locates this repository's module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsClean is the contract: the repo's own source must pass all
// determinism analyzers (every exempt site is annotated).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := Load(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	fs := RunAll(pkgs, All)
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

// TestSeededWalltimeFails copies the repo, plants an unannotated
// time.Now call in a cluster-engine file, and asserts the analyzers
// catch it — the acceptance check that the vet step actually guards
// the engine.
func TestSeededWalltimeFails(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	src := repoRoot(t)
	dst := t.TempDir()
	if err := copyGoTree(src, dst); err != nil {
		t.Fatal(err)
	}
	seeded := filepath.Join(dst, "internal", "cluster", "zz_seeded.go")
	if err := os.WriteFile(seeded, []byte(`package cluster

import "time"

func seededWallRead() int64 { return time.Now().UnixNano() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	fs := RunAll(pkgs, All)
	var hit bool
	for _, f := range fs {
		if f.Analyzer == "walltime" && strings.HasSuffix(f.Pos.Filename, "zz_seeded.go") {
			hit = true
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if !hit {
		t.Error("seeded time.Now call was not flagged")
	}
}

// copyGoTree copies go.mod and every non-test .go file, preserving the
// directory layout.
func copyGoTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != src && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if name != "go.mod" && (!strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go")) {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, b, 0o644)
	})
}
