package plan

import (
	"strings"
	"testing"

	"qap/internal/gsql"
	"qap/internal/schema"
)

func TestLineageOfHelpers(t *testing.T) {
	g := buildComplex(t)
	flows, _ := g.Node("flows")
	// Scalar expression over an input column traces to the base attr.
	lin := flows.LineageOf(gsql.MustParseExpr("srcIP & 0xFF"))
	if lin.Base == nil || !strings.EqualFold(lin.Base.Attr, "srcIP") {
		t.Fatalf("lineage = %+v", lin)
	}
	if lin.Base.Expr.String() != "TCP.srcIP & 0xFF" {
		t.Errorf("base expr = %s", lin.Base.Expr)
	}
	// Temporal taint propagates.
	if !flows.LineageOf(gsql.MustParseExpr("time / 5")).Temporal {
		t.Error("time expression must be temporal")
	}
	// Multi-attribute expressions are opaque.
	if flows.LineageOf(gsql.MustParseExpr("srcIP + destIP")).Base != nil {
		t.Error("multi-attribute expression must be opaque")
	}
	// SideLineage on the self-join resolves per side.
	fp, _ := g.Node("flow_pairs")
	l := fp.SideLineage(0, gsql.MustParseExpr("S1.srcIP"))
	r := fp.SideLineage(1, gsql.MustParseExpr("S2.tb"))
	if l.Base == nil || !strings.EqualFold(l.Base.Attr, "srcIP") {
		t.Errorf("left side lineage = %+v", l)
	}
	if r.Base == nil || !r.Temporal {
		t.Errorf("right side temporal lineage = %+v", r)
	}
	// SideLineage on a non-join falls back to LineageOf.
	if flows.SideLineage(0, gsql.MustParseExpr("srcIP")).Base == nil {
		t.Error("SideLineage fallback failed")
	}
}

func TestTypeInference(t *testing.T) {
	cat := schema.MustParse("S(ts increasing, a uint, b int, f float, s string, bl bool)")
	g := MustBuild(cat, gsql.MustParseQuerySet(`
SELECT ts, a + b AS ab, a * 1.5 AS af, s, a = b AS cmp, -a AS neg,
       NOT bl AS nb, ABS(b) AS ab2, a & 0xF AS masked
FROM S`))
	n := g.Roots()[0]
	wantTypes := map[string]schema.Type{
		"ts":     schema.TUint,
		"ab":     schema.TInt,
		"af":     schema.TFloat,
		"s":      schema.TString,
		"cmp":    schema.TBool,
		"neg":    schema.TInt,
		"nb":     schema.TBool,
		"ab2":    schema.TInt,
		"masked": schema.TUint,
	}
	for name, want := range wantTypes {
		_, col, ok := n.Col(name)
		if !ok {
			t.Errorf("column %s missing", name)
			continue
		}
		if col.Type != want {
			t.Errorf("%s type = %v, want %v", name, col.Type, want)
		}
	}
	// Aggregate result types.
	g2 := MustBuild(cat, gsql.MustParseQuerySet(`
SELECT tb, COUNT(*) AS c, AVG(a) AS av, VARIANCE(a) AS vr,
       APPROX_COUNT_DISTINCT(a) AS ad, SUM(f) AS sf
FROM S GROUP BY ts AS tb`))
	n2 := g2.Roots()[0]
	for name, want := range map[string]schema.Type{
		"c": schema.TUint, "av": schema.TFloat, "vr": schema.TFloat,
		"ad": schema.TUint, "sf": schema.TFloat,
	} {
		_, col, _ := n2.Col(name)
		if col.Type != want {
			t.Errorf("%s type = %v, want %v", name, col.Type, want)
		}
	}
}

func TestDescribeAndDOT(t *testing.T) {
	g := buildComplex(t)
	for _, n := range g.Nodes {
		if n.Describe() == "" {
			t.Errorf("empty Describe for %v", n.Kind)
		}
	}
	dot := g.DOT()
	for _, want := range []string{"digraph logical", "house", "diamond", "box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Kind names.
	for _, k := range []Kind{KindSource, KindSelectProject, KindAggregate, KindJoin} {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
}
