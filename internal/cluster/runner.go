package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"qap/internal/exec"
	"qap/internal/gsql"
	"qap/internal/netgen"
	"qap/internal/obs"
	"qap/internal/obs/trace"
	"qap/internal/optimizer"
	"qap/internal/plan"
	"qap/internal/sqlval"
)

// Runner instantiates a distributed physical plan into live operators
// with accounting on every edge, and drives packet traces through it.
//
// A Runner executes either sequentially (Workers <= 1: one goroutine
// pushes every tuple through the whole operator graph) or in parallel
// (Workers > 1: one worker goroutine per simulated host plus a central
// replay goroutine, see engine.go). Both modes produce byte-identical
// Results. A Runner holds operator state and is good for one run.
type Runner struct {
	plan        *optimizer.Plan
	cost        CostConfig
	params      exec.Params
	workers     int
	batchRounds int
	batchSize   int
	collect     bool
	metrics     *Metrics
	routers     map[string]*router
	routerNames []string // sorted lower-case names: the canonical flush order
	collectors  map[string]*exec.Collector

	// islands[0..Hosts-1] are the per-host leaf islands; islands[Hosts]
	// is the central island (the root process on the aggregator host).
	islands  []*island
	parallel bool
	// engine is the backend selector: EngineSim (in-process simulator)
	// or EngineLive (TCP nodes, live.go).
	engine string
	// liveCfg tunes the live backend; driveTimeout guards both engines'
	// replay receive loops (0 disables the guard for the simulator; the
	// live backend always has an effective timeout).
	liveCfg      LiveConfig
	driveTimeout time.Duration
	// edges indexes the island-crossing (captured) accounting edges in
	// deterministic compile order, so the live backend can name an edge
	// on the wire and resolve it on the collector side. Nil unless
	// captures were installed.
	edges []*edge
	// reuseTupleSlabs marks plans whose operators provably drop all
	// references to scan tuples within the delivery round (see
	// scanTuplesSevered), enabling tuple-slab recycling in the
	// sequential batched driver.
	reuseTupleSlabs bool

	// sizeHints pre-sizes aggregate hash state by physical op ID
	// (RunConfig.SizeHints); aggs tracks the built aggregate instances
	// so finalize can harvest the next run's hints. Purely a warm-start
	// performance knob — no canonical output depends on either.
	sizeHints map[int]int
	aggs      []aggInstance

	// columnar enables the columnar batch execution path (effective
	// only when batchSize > 1): the drivers deliver each round's
	// tuples as typed column vectors and operators run compiled column
	// kernels where the plan supports them, pivoting back to rows at
	// every boundary a row consumer needs.
	columnar bool

	// winSec is the load-monitoring window length in trace seconds;
	// 0 disables monitoring. Windows are closed at watermark
	// boundaries in canonical event order on every island, so the
	// resulting load series is bit-equal across engines, worker
	// counts, and batch sizes.
	winSec uint64

	// tracer collects the causal trace when RunConfig.Trace is set:
	// one shard per event writer (trDriver for the splitter, one per
	// island), registered in the canonical order driver, leaf islands
	// 0..Hosts-1, central. Nil tracing (the default) installs no
	// shards and no hooks: the only residual cost is nil checks at
	// round and window boundaries, never on the per-tuple hot path.
	tracer   *trace.Collector
	trDriver *trace.Shard

	// Wall-clock and transport telemetry for the run report. None of it
	// feeds back into execution: started is read only by buildReport,
	// and the eng* counters are written by whichever goroutine owns the
	// corresponding phase (driver: rounds/batches, replay: link items)
	// and read after the engine has fully joined.
	started                             time.Time
	engRounds, engBatches, engLinkItems int64
}

// RunConfig bundles a Runner's execution knobs.
type RunConfig struct {
	// Costs configures the CPU accounting.
	Costs CostConfig
	// Params binds #NAME# query parameters.
	Params exec.Params
	// Workers selects the execution engine: <= 1 runs the sequential
	// in-line engine; > 1 runs up to Workers per-host worker goroutines
	// plus a splitter (driver) and a central replay goroutine. Results
	// are byte-identical either way.
	Workers int
	// BatchRounds is the number of watermark rounds coalesced into one
	// channel message on the splitter feeds and inter-host links; 0
	// uses the default.
	BatchRounds int
	// BatchSize selects the execution hot path. 1 runs the legacy
	// tuple-at-a-time (scalar) path. Values > 1 run batch-at-a-time:
	// the driver buffers each round's tuples per destination partition
	// and delivers them as batches of up to BatchSize through the
	// operators' BatchConsumer fast paths (exec/batch.go), which
	// amortize per-tuple allocations. 0 defaults to defaultBatchSize
	// (batching on). Canonical results are identical at every batch
	// size; raw within-round delivery interleaving across partitions is
	// a plan detail and may differ between batched and scalar runs,
	// while runs at the same BatchSize are byte-identical for any
	// Workers value.
	BatchSize int
	// Columnar selects the columnar batch execution path: the batched
	// drivers deliver each round's tuples as typed column vectors
	// (exec.ColBatch) carved from reusable slabs, and operators run
	// compiled column kernels (exec/colcompile.go) where the plan
	// supports them, pivoting back to rows at every boundary a row
	// consumer needs. Columnar requires batching: at BatchSize 1 the
	// scalar path runs unchanged. Every canonical output — results,
	// OpStats, load series, trace bytes — is byte-identical to the
	// row-at-a-time paths at every Hosts x Workers x BatchSize
	// combination, on both engines.
	Columnar bool
	// SizeHints pre-sizes aggregate hash state by physical operator ID,
	// typically a previous Result.SizeHints from the same plan
	// (Deployment.Run threads them across runs automatically). Purely a
	// warm-start performance knob: no canonical output, stat, or trace
	// byte depends on it.
	SizeHints map[int]int
	// LoadWindowSec enables online load monitoring: per-host counter
	// deltas are sampled every LoadWindowSec seconds of trace time
	// into Result.LoadSeries. 0 (the default) disables monitoring.
	// The sampling happens at the same canonical watermark boundaries
	// on every engine, so the series — like every other deterministic
	// output — is bit-equal for any Workers or BatchSize value, and
	// enabling it never perturbs the run itself.
	LoadWindowSec int
	// CollectStats enables the observability layer: per-operator
	// counters (rows in/out, watermark advances, flushes, per-operator
	// CPU and network/IPC arrivals) in Result.OpStats and the
	// machine-readable Result.Report. Stats are sharded per execution
	// island exactly like the host metrics and merged in a fixed order,
	// so they are bit-equal for any Workers value and never perturb the
	// run itself. When false (the default) no stat hooks are installed
	// and the operator graph is identical to an uninstrumented run.
	CollectStats bool
	// Trace enables deterministic causal tracing into Result.Trace:
	// structured events keyed by round, window, host, and operator —
	// never wall clock — emitted at watermark boundaries from every
	// island plus the splitter, and gathered in a fixed shard order so
	// the canonical export is byte-identical for any Workers or
	// BatchSize value. Tracing implies CollectStats and, when
	// LoadWindowSec is 0, a default monitoring window of
	// DefaultTraceWindowSec; like monitoring it never perturbs the
	// run. Nil (the default) disables tracing entirely.
	Trace *trace.Config
	// Engine selects the cluster backend: EngineSim ("" or "sim") runs
	// the in-process simulator engines; EngineLive ("live") runs each
	// host as a node behind a real TCP listener with the splitter
	// shipping serialized tuple batches over persistent connections
	// (live.go). Canonical results are byte-identical across engines.
	Engine string
	// Live tunes the live backend; ignored for the simulator.
	Live LiveConfig
	// DriveTimeout guards the engines' replay receive loops: a run that
	// makes no progress for this long fails with a positioned error
	// naming the stalled islands instead of hanging. 0 disables the
	// guard for the simulator; the live backend falls back to its
	// transport timeout (LiveConfig.Timeout, default 30s).
	DriveTimeout time.Duration
}

// Engine selector values for RunConfig.Engine.
const (
	EngineSim  = "sim"
	EngineLive = "live"
)

// island is the unit of parallel execution: the operators of one
// aggInstance pairs a built aggregate with its physical operator ID so
// finalize can harvest per-op group high-water marks into
// Result.SizeHints.
type aggInstance struct {
	id  int
	agg *exec.Aggregate
}

// simulated host's capture processes (a leaf island, one per host), or
// the central root process on the aggregator host. Each island owns a
// metrics shard and a NodeRows shard so no accounting state is shared
// between workers; shards are merged in a fixed order when the run
// finishes, which also makes the sequential engine's floating-point
// sums group exactly like the parallel engine's.
type island struct {
	id      int
	metrics HostMetrics
	rows    map[string]*int64
	// ops shards the per-operator stats: every physical operator's
	// counters live on the island that executes it, so no stat is ever
	// written from two goroutines. The maps are fully populated during
	// compile and only the pointed-to counters mutate during a run.
	ops map[int]*obs.OpStats

	// Load-monitoring state: closed window deltas (wins), the counter
	// snapshot at the last closed boundary (lastSnap), and the next
	// window index to close (curWin). Leaf islands close windows at
	// round boundaries on their executing goroutine; the central
	// island closes on the goroutine replaying its deliveries.
	curWin   int
	lastSnap HostMetrics
	wins     []HostMetrics

	// Causal-trace state, written only by the island's executing
	// goroutine (the same single writer as metrics): the trace shard
	// (nil when tracing is off), whether this is the central island,
	// and the per-operator snapshot/metadata used to emit op_window
	// deltas at window closes. opIDs fixes the emission order.
	tr      *trace.Shard
	central bool
	opIDs   []int
	lastOps map[int]obs.OpStats
	opKind  map[int]string
	opQuery map[int]string

	// Parallel-mode state, owned by the island's worker goroutine.
	curRound int
	curTag   uint64
	outbox   []linkItem
	// curWM is the watermark of the round the worker is executing,
	// stamped into captured link items so the central replay can
	// attribute deliveries to monitoring windows.
	curWM uint64
}

// closeWindowsTo closes monitoring windows up to (excluding) win: the
// first closed window takes the counter delta since the last
// snapshot, any further skipped windows are zero. winSec guards
// callers; this method assumes monitoring is on.
func (isl *island) closeWindowsTo(win int) {
	for isl.curWin < win {
		delta := isl.metrics.sub(isl.lastSnap)
		isl.wins = append(isl.wins, delta)
		isl.lastSnap = isl.metrics
		if isl.tr != nil {
			isl.emitWindowEvents(delta)
		}
		isl.curWin++
	}
}

// emitWindowEvents records the closing window's host-level integer
// delta and the per-operator integer deltas on the island's trace
// shard. The host event is emitted even when all-zero — HostLoadSeries
// rebuilds the full series geometry from these records. Neither event
// carries CPU units: float cost sums are only tolerance-equal across
// batch sizes, while canonical traces must be byte-identical.
func (isl *island) emitWindowEvents(delta HostMetrics) {
	ev := trace.Event{
		Kind:        trace.KindHostWindow,
		Window:      isl.curWin,
		NetTuplesIn: delta.NetTuplesIn,
		NetBytesIn:  delta.NetBytesIn,
		IPCTuplesIn: delta.IPCTuplesIn,
		Tuples:      delta.Tuples,
	}
	if isl.central {
		ev.Central = true
	} else {
		ev.Host = isl.id
	}
	isl.tr.Emit(ev)
	for _, id := range isl.opIDs {
		st := *isl.ops[id]
		prev := isl.lastOps[id]
		isl.lastOps[id] = st
		d := obs.OpStats{
			RowsIn:      st.RowsIn - prev.RowsIn,
			RowsOut:     st.RowsOut - prev.RowsOut,
			Advances:    st.Advances - prev.Advances,
			Flushes:     st.Flushes - prev.Flushes,
			NetTuplesIn: st.NetTuplesIn - prev.NetTuplesIn,
			NetBytesIn:  st.NetBytesIn - prev.NetBytesIn,
			IPCTuplesIn: st.IPCTuplesIn - prev.IPCTuplesIn,
		}
		if d.RowsIn|d.RowsOut|d.Advances|d.Flushes|d.NetTuplesIn|d.NetBytesIn|d.IPCTuplesIn == 0 {
			continue
		}
		oev := trace.Event{
			Kind:        trace.KindOpWindow,
			Window:      isl.curWin,
			Op:          id,
			OpKind:      isl.opKind[id],
			Query:       isl.opQuery[id],
			RowsIn:      d.RowsIn,
			RowsOut:     d.RowsOut,
			Advances:    d.Advances,
			Flushes:     d.Flushes,
			NetTuplesIn: d.NetTuplesIn,
			NetBytesIn:  d.NetBytesIn,
			IPCTuplesIn: d.IPCTuplesIn,
		}
		if isl.central {
			oev.Central = true
		} else {
			oev.Host = isl.id
		}
		isl.tr.Emit(oev)
	}
}

// Result is the outcome of one run.
type Result struct {
	// Outputs holds each root query's result rows.
	Outputs map[string][]exec.Tuple
	// NodeRows counts the complete output rows of every logical query
	// node (per-partition instances summed; partial aggregates are
	// not node outputs and are excluded), the raw material for
	// measured selectivity statistics.
	NodeRows map[string]int64
	Metrics  *Metrics
	// OpStats holds per-physical-operator counters keyed by op ID, and
	// Report the machine-readable run report; both are nil unless
	// RunConfig.CollectStats was set. Everything except Report.Timing
	// is bit-equal for any worker count.
	OpStats map[int]*obs.OpStats
	Report  *obs.RunReport
	// LoadSeries is the online monitoring output: per-host counter
	// deltas per RunConfig.LoadWindowSec of trace time. Nil unless
	// monitoring was enabled; bit-equal for any Workers/BatchSize.
	LoadSeries []obs.LoadWindow
	// Trace is the gathered causal trace; nil unless RunConfig.Trace
	// was set. Its canonical JSONL (timing trailer stripped) is
	// byte-identical for any Workers/BatchSize, and its host_window
	// events rebuild LoadSeries (trace.HostLoadSeries) exactly on
	// every integer counter, with CPUUnits left zero.
	Trace *trace.Trace
	// SizeHints reports each aggregate operator's peak live group count
	// by physical op ID, suitable for RunConfig.SizeHints on a later run
	// of the same plan. Covers the operators this process executed (the
	// live backend's remote hosts report nothing). Wall-clock-free but
	// data-dependent; not part of the determinism contract's outputs.
	SizeHints map[int]int
}

// New compiles the physical plan into operator instances for the
// sequential engine.
func New(p *optimizer.Plan, cost CostConfig, params exec.Params) (*Runner, error) {
	return NewRunner(p, RunConfig{Costs: cost, Params: params})
}

// NewRunner compiles the physical plan into operator instances under
// the given run configuration.
func NewRunner(p *optimizer.Plan, cfg RunConfig) (*Runner, error) {
	r := &Runner{
		plan:        p,
		cost:        cfg.Costs,
		params:      cfg.Params,
		workers:     cfg.Workers,
		batchRounds: cfg.BatchRounds,
		collect:     cfg.CollectStats,
		metrics:     &Metrics{Hosts: make([]HostMetrics, p.Hosts), Capacity: cfg.Costs.CapacityPerSec},
		routers:     make(map[string]*router),
		collectors:  make(map[string]*exec.Collector),
		sizeHints:   cfg.SizeHints,
	}
	if r.batchRounds <= 0 {
		r.batchRounds = defaultBatchRounds
	}
	r.batchSize = cfg.BatchSize
	if r.batchSize == 0 {
		r.batchSize = defaultBatchSize
	}
	if r.batchSize < 1 {
		r.batchSize = 1
	}
	r.columnar = cfg.Columnar && r.batchSize > 1
	if cfg.LoadWindowSec > 0 {
		r.winSec = uint64(cfg.LoadWindowSec)
	}
	if cfg.Trace != nil {
		// Tracing needs the op-stat shards (op_window deltas) and a
		// monitoring window to pace window events.
		r.collect = true
		if r.winSec == 0 {
			r.winSec = DefaultTraceWindowSec
		}
		r.tracer = trace.NewCollector(*cfg.Trace)
		r.trDriver = r.tracer.NewShard()
	}
	r.islands = make([]*island, p.Hosts+1)
	for i := range r.islands {
		r.islands[i] = &island{id: i, rows: make(map[string]*int64), ops: make(map[int]*obs.OpStats)}
		if r.tracer != nil {
			isl := r.islands[i]
			isl.tr = r.tracer.NewShard()
			isl.central = i == p.Hosts
			isl.lastOps = make(map[int]obs.OpStats)
			isl.opKind = make(map[int]string)
			isl.opQuery = make(map[int]string)
		}
	}
	switch cfg.Engine {
	case "", EngineSim:
		r.engine = EngineSim
		r.parallel = cfg.Workers > 1 && r.parallelizable()
	case EngineLive:
		// The live backend always needs the island decomposition and
		// the capture consumers, whatever the worker count; plans that
		// are not parallelizable fall back to the sequential engine,
		// exactly like the simulator does.
		r.engine = EngineLive
		r.parallel = r.parallelizable()
	default:
		return nil, fmt.Errorf("cluster: unknown engine %q (want %q or %q)", cfg.Engine, EngineSim, EngineLive)
	}
	r.liveCfg = cfg.Live
	r.driveTimeout = cfg.DriveTimeout
	r.reuseTupleSlabs = scanTuplesSevered(p)
	if err := r.compile(); err != nil {
		return nil, err
	}
	if r.tracer != nil {
		// compile populated each island's op-stat shard; fix the
		// op_window emission order and label every operator.
		for _, op := range p.Ops {
			isl := r.islandOf(op)
			isl.opKind[op.ID] = op.Kind.String()
			switch {
			case op.Kind == optimizer.OpScan:
				isl.opQuery[op.ID] = op.Stream
			case op.Logical != nil:
				isl.opQuery[op.ID] = op.Logical.QueryName
			}
		}
		for _, isl := range r.islands {
			for id := range isl.ops { //qap:allow maprange -- ids sorted below
				isl.opIDs = append(isl.opIDs, id)
			}
			sort.Ints(isl.opIDs)
		}
	}
	return r, nil
}

// DefaultTraceWindowSec paces host_window/op_window trace events when
// tracing is enabled without explicit load monitoring.
const DefaultTraceWindowSec = 10

// scanTuplesSevered reports whether no operator can retain a reference
// to a scan-produced tuple past its delivery round, which lets the
// sequential batched driver recycle the tuple-backing slabs instead of
// allocating fresh ones every ~512 packets. An operator severs the
// aliasing when its output rows are fresh materializations (a
// select/project with a projection list, any aggregate); it retains
// when it stores input tuples beyond the call (a join's hash tables, an
// output collector, a sliding window's panes). Pass-through operators
// (unions, projection-less selections) forward the alias downstream.
func scanTuplesSevered(p *optimizer.Plan) bool {
	down := make(map[*optimizer.Op][]*optimizer.Op, len(p.Ops))
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			down[in] = append(down[in], op)
		}
	}
	memo := make(map[*optimizer.Op]bool, len(p.Ops))
	// safe reports whether an operator receiving aliased scan tuples
	// cannot leak them past the round. The plan is a DAG in topological
	// order, so the recursion terminates.
	var safe func(op *optimizer.Op) bool
	safe = func(op *optimizer.Op) bool {
		if v, ok := memo[op]; ok {
			return v
		}
		v := true
		switch op.Kind {
		case optimizer.OpAggregate, optimizer.OpAggSub, optimizer.OpAggSuper:
			// Severs: group values are copied, emissions are fresh.
		case optimizer.OpSelProj:
			if op.Logical == nil || len(op.Logical.Projs) == 0 {
				// Projection-less: forwards the input tuple itself.
				for _, d := range down[op] {
					v = v && safe(d)
				}
			}
		case optimizer.OpUnion:
			for _, d := range down[op] {
				v = v && safe(d)
			}
		default:
			// Joins and windows buffer input tuples across rounds;
			// collectors retain them for Result.Outputs. Unknown kinds
			// are conservatively treated the same.
			v = false
		}
		memo[op] = v
		return v
	}
	for _, op := range p.Ops {
		if op.Kind != optimizer.OpScan {
			continue
		}
		for _, d := range down[op] {
			if !safe(d) {
				return false
			}
		}
	}
	return true
}

// opStatsOf returns the operator's stat shard on its execution island,
// or nil when collection is disabled. Only called during compile, so
// the shard maps are immutable once a run starts.
func (r *Runner) opStatsOf(op *optimizer.Op) *obs.OpStats {
	if !r.collect {
		return nil
	}
	isl := r.islandOf(op)
	st, ok := isl.ops[op.ID]
	if !ok {
		st = &obs.OpStats{}
		isl.ops[op.ID] = st
	}
	return st
}

// traceEmitter returns a flush-observation hook emitting kind events
// on the operator's island shard, or nil when tracing is off. The
// hook runs on whatever goroutine executes the island, which is the
// shard's single writer by construction.
func (r *Runner) traceEmitter(op *optimizer.Op, kind string) func(wm uint64, groups, rows int) {
	if r.tracer == nil {
		return nil
	}
	isl := r.islandOf(op)
	proto := trace.Event{Kind: kind, Op: op.ID}
	if isl.central {
		proto.Central = true
	} else {
		proto.Host = isl.id
	}
	sh := isl.tr
	return func(wm uint64, groups, rows int) {
		ev := proto
		ev.WM = wm
		ev.Groups = int64(groups)
		ev.Rows = int64(rows)
		sh.Emit(ev)
	}
}

// islandOf maps an operator to its execution island: per-partition and
// per-host operators belong to their host's leaf island, central
// operators (the root process, Proc == -1 on the aggregator host) to
// the central island.
func (r *Runner) islandOf(op *optimizer.Op) *island {
	if op.Proc == -1 {
		return r.islands[r.plan.Hosts]
	}
	return r.islands[op.Host]
}

// parallelizable reports whether every island-crossing edge delivers
// into the central island — the topology the parallel engine's
// leaf-workers-feed-central-replay design requires. The partition-aware
// optimizer only builds such plans; this guards against future plan
// shapes by falling back to the sequential engine.
func (r *Runner) parallelizable() bool {
	for _, op := range r.plan.Ops {
		to := r.islandOf(op)
		if op.Kind == optimizer.OpScan && to == r.islands[r.plan.Hosts] {
			// The splitter feeds leaf islands only.
			return false
		}
		for _, in := range op.Inputs {
			if r.islandOf(in) != to && to != r.islands[r.plan.Hosts] {
				return false
			}
		}
	}
	return true
}

// Run feeds a time-ordered packet trace into the named stream and
// returns the query outputs and load metrics. Streams without data
// are flushed empty.
func (r *Runner) Run(stream string, packets []netgen.Packet) (*Result, error) {
	return r.RunStreams(map[string][]netgen.Packet{stream: packets})
}

// streamCursor walks one source stream's trace during the merge.
type streamCursor struct {
	name    string // lower-case stream name
	rt      *router
	packets []netgen.Packet
	pos     int

	// Batched-driver bookkeeping: gidx[p] is the arena index of
	// partition p's open tuple group, valid only while gstamp[p] equals
	// the current round.
	gidx, gstamp []int
}

// makeCursors validates the input traces and fixes the canonical merge
// order: longer streams first, ties broken by stream name, so two
// equal-length streams sharing timestamps always interleave the same
// way (Go map iteration order must never leak into the merge).
func (r *Runner) makeCursors(streams map[string][]netgen.Packet) ([]*streamCursor, error) {
	var cursors []*streamCursor
	for name, packets := range streams { //qap:allow maprange -- cursors sorted below before the merge
		lower := strings.ToLower(name)
		rt, ok := r.routers[lower]
		if !ok {
			return nil, fmt.Errorf("cluster: plan has no source stream %q", name)
		}
		for i := 1; i < len(packets); i++ {
			if packets[i].Time < packets[i-1].Time {
				return nil, fmt.Errorf("cluster: stream %q is not time-ordered at index %d", name, i)
			}
		}
		cursors = append(cursors, &streamCursor{name: lower, rt: rt, packets: packets})
	}
	sort.Slice(cursors, func(i, j int) bool {
		if len(cursors[i].packets) != len(cursors[j].packets) {
			return len(cursors[i].packets) > len(cursors[j].packets)
		}
		return cursors[i].name < cursors[j].name
	})
	return cursors, nil
}

// nextCursor picks the cursor holding the smallest next timestamp;
// equal timestamps go to the earliest cursor in canonical order.
func nextCursor(cursors []*streamCursor) *streamCursor {
	var best *streamCursor
	for _, c := range cursors {
		if c.pos >= len(c.packets) {
			continue
		}
		if best == nil || c.packets[c.pos].Time < best.packets[best.pos].Time {
			best = c
		}
	}
	return best
}

// RunStreams feeds several traces, one per source stream, interleaved
// in global time order (the watermark is shared: an epoch closes only
// when every stream has moved past it). Each trace must itself be
// time-ordered.
func (r *Runner) RunStreams(streams map[string][]netgen.Packet) (*Result, error) {
	r.started = time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
	cursors, err := r.makeCursors(streams)
	if err != nil {
		return nil, err
	}
	if r.engine == EngineLive && r.parallel {
		return r.runLive(cursors)
	}
	if r.parallel && r.engine != EngineLive {
		return r.runParallel(cursors)
	}
	if r.batchSize > 1 {
		if r.columnar {
			return r.runSequentialColumnar(cursors)
		}
		return r.runSequentialBatched(cursors)
	}
	return r.runSequential(cursors)
}

// runSequential drives the merged trace through the operator graph on
// the calling goroutine, one tuple at a time.
func (r *Runner) runSequential(cursors []*streamCursor) (*Result, error) {
	var lastTime, maxTime uint64
	first := true
	any := false
	trRound, trPk := -1, int64(0)
	for {
		best := nextCursor(cursors)
		if best == nil {
			break
		}
		pk := &best.packets[best.pos]
		best.pos++
		any = true
		if pk.Time > maxTime {
			maxTime = pk.Time
		}
		if first || pk.Time > lastTime {
			// The splitter's trace shard closes the previous round: the
			// same (round, watermark, packets) triple on every engine.
			if r.trDriver != nil && trRound >= 0 {
				r.trDriver.Emit(trace.Event{Kind: trace.KindRound, Round: trRound, WM: lastTime, Rows: trPk})
			}
			trRound, trPk = trRound+1, 0
			// Close monitoring windows before the new round touches any
			// counter: all work for rounds in earlier windows is done.
			if r.winSec > 0 {
				r.closeAllWindowsTo(int(pk.Time / r.winSec))
			}
			// The global watermark advances every stream's pipeline.
			for _, c := range cursors {
				c.rt.Advance(pk.Time)
			}
			lastTime, first = pk.Time, false
			r.engRounds++
		}
		trPk++
		best.rt.Push(pk.Tuple())
	}
	r.emitDriverTail(trRound, trPk, lastTime)
	// Flush in canonical stream order: every router, sorted by name.
	for _, name := range r.routerNames {
		r.routers[name].Flush()
	}
	r.engRounds++ // the flush round
	return r.finalize(any, maxTime), nil
}

// emitDriverTail closes the final data round on the splitter's trace
// shard and records the end-of-stream flush round.
func (r *Runner) emitDriverTail(trRound int, trPk int64, lastTime uint64) {
	if r.trDriver == nil {
		return
	}
	if trRound >= 0 {
		r.trDriver.Emit(trace.Event{Kind: trace.KindRound, Round: trRound, WM: lastTime, Rows: trPk})
	}
	r.trDriver.Emit(trace.Event{Kind: trace.KindFlush, Round: trRound + 1, WM: lastTime})
}

// seqGroup is one destination partition's buffered tuples within the
// current round of the batched sequential driver.
type seqGroup struct {
	out    exec.Consumer
	tuples exec.Batch
}

// tupleSlabVals sizes the shared tuple-backing slabs the batched
// drivers carve packet tuples from (512 packets per slab).
const tupleSlabVals = 512 * netgen.TupleCols

// runSequentialBatched is the batch-at-a-time sequential driver: the
// same round structure as runSequential (advances, then the round's
// tuples, then the final flush round), but each round's tuples are
// buffered per destination partition and delivered at the round
// boundary as batches of up to batchSize, in the order each
// destination first appeared in the round. Tuple values are carved
// from shared slabs instead of one allocation per packet. The parallel
// engine's batched driver replays the identical grouping, so results
// at a given BatchSize are byte-identical for any worker count.
//
//qap:hot
func (r *Runner) runSequentialBatched(cursors []*streamCursor) (*Result, error) {
	bs := r.batchSize
	for _, c := range cursors {
		c.gidx = make([]int, len(c.rt.outs))   //qap:allow hotalloc -- routing scratch, once per cursor per run
		c.gstamp = make([]int, len(c.rt.outs)) //qap:allow hotalloc -- routing scratch, once per cursor per run
		for p := range c.gstamp {
			c.gstamp[p] = -1
		}
	}
	var (
		groups  []seqGroup // the round's groups, in first-tuple order
		valSlab []sqlval.Value
		// Slab recycling, when the plan severs scan-tuple aliases
		// (scanTuplesSevered): a slab exhausted mid-round only holds
		// tuples buffered for the current or already-delivered rounds,
		// so once flushRound has delivered the round it can be reused
		// instead of left to the collector. The parallel driver never
		// recycles — captured island crossings may reference tuples
		// until the central replay reaches them.
		spentSlabs [][]sqlval.Value
		freeSlabs  [][]sqlval.Value
	)
	reuse := r.reuseTupleSlabs
	flushRound := func() { //qap:allow hotalloc -- closure built once per run
		for i := range groups {
			g := &groups[i]
			for off := 0; off < len(g.tuples); off += bs {
				end := off + bs
				if end > len(g.tuples) {
					end = len(g.tuples)
				}
				exec.PushAll(g.out, g.tuples[off:end])
			}
			exec.PutBatch(g.tuples)
			g.out, g.tuples = nil, nil
		}
		groups = groups[:0]
		if len(spentSlabs) > 0 {
			freeSlabs = append(freeSlabs, spentSlabs...)
			spentSlabs = spentSlabs[:0]
		}
	}
	var lastTime, maxTime uint64
	first := true
	any := false
	round := 0
	trRound, trPk := -1, int64(0)
	for {
		best := nextCursor(cursors)
		if best == nil {
			break
		}
		pk := &best.packets[best.pos]
		best.pos++
		any = true
		if pk.Time > maxTime {
			maxTime = pk.Time
		}
		if first || pk.Time > lastTime {
			flushRound()
			if r.trDriver != nil && trRound >= 0 {
				r.trDriver.Emit(trace.Event{Kind: trace.KindRound, Round: trRound, WM: lastTime, Rows: trPk})
			}
			trRound, trPk = trRound+1, 0
			// Close monitoring windows after the previous round's
			// buffered deliveries, so its work lands in its own window.
			if r.winSec > 0 {
				r.closeAllWindowsTo(int(pk.Time / r.winSec))
			}
			round++
			for _, c := range cursors {
				c.rt.Advance(pk.Time)
			}
			lastTime, first = pk.Time, false
			r.engRounds++
		}
		if cap(valSlab)-len(valSlab) < netgen.TupleCols {
			if reuse && cap(valSlab) > 0 {
				spentSlabs = append(spentSlabs, valSlab)
			}
			if n := len(freeSlabs); reuse && n > 0 {
				valSlab = freeSlabs[n-1][:0]
				freeSlabs = freeSlabs[:n-1]
			} else {
				valSlab = make([]sqlval.Value, 0, tupleSlabVals) //qap:allow hotalloc -- slab growth, amortized over tupleSlabVals values
			}
		}
		trPk++
		var t exec.Tuple
		valSlab, t = pk.AppendTuple(valSlab)
		idx := best.rt.route(t)
		if best.gstamp[idx] != round {
			best.gstamp[idx] = round
			best.gidx[idx] = len(groups)
			groups = append(groups, seqGroup{out: best.rt.outs[idx], tuples: exec.GetBatch()})
		}
		g := &groups[best.gidx[idx]]
		g.tuples = append(g.tuples, t)
	}
	flushRound()
	r.emitDriverTail(trRound, trPk, lastTime)
	for _, name := range r.routerNames {
		r.routers[name].Flush()
	}
	r.engRounds++ // the flush round
	return r.finalize(any, maxTime), nil
}

// colSeqGroup is one destination partition's buffered columns within
// the current round of the columnar sequential driver.
type colSeqGroup struct {
	out  exec.Consumer
	cols *exec.ColBatch
}

// runSequentialColumnar is the columnar sequential driver: the exact
// round structure and per-destination grouping of runSequentialBatched,
// but each group buffers the round's packets as eight uint64 column
// vectors instead of carved tuples, and delivers them at the round
// boundary as ColBatch chunks of up to batchSize through the operators'
// columnar fast paths (exec/colops.go). The ColBatch ownership contract
// (valid only during the call) lets the driver recycle every column
// slab unconditionally — no scanTuplesSevered gating. Every observable
// output is byte-identical to the scalar batched driver at the same
// BatchSize.
//
//qap:hot
func (r *Runner) runSequentialColumnar(cursors []*streamCursor) (*Result, error) {
	bs := r.batchSize
	for _, c := range cursors {
		c.gidx = make([]int, len(c.rt.outs))   //qap:allow hotalloc -- routing scratch, once per cursor per run
		c.gstamp = make([]int, len(c.rt.outs)) //qap:allow hotalloc -- routing scratch, once per cursor per run
		for p := range c.gstamp {
			c.gstamp[p] = -1
		}
	}
	var (
		groups   []colSeqGroup    // the round's groups, in first-tuple order
		free     []*exec.ColBatch // recycled column batches
		view     exec.ColBatch    // zero-copy chunk window over a group
		routeBuf []sqlval.Value   // hash-routing tuple scratch, reused per packet
	)
	flushRound := func() { //qap:allow hotalloc -- closure built once per run
		for i := range groups {
			g := &groups[i]
			cb := g.cols
			for off := 0; off < cb.Len; off += bs {
				end := off + bs
				if end > cb.Len {
					end = cb.Len
				}
				cb.Slice(off, end, &view)
				exec.PushColsAll(g.out, &view)
			}
			cb.Reset()
			free = append(free, cb)
			g.out, g.cols = nil, nil
		}
		groups = groups[:0]
	}
	var lastTime, maxTime uint64
	first := true
	any := false
	round := 0
	trRound, trPk := -1, int64(0)
	for {
		best := nextCursor(cursors)
		if best == nil {
			break
		}
		pk := &best.packets[best.pos]
		best.pos++
		any = true
		if pk.Time > maxTime {
			maxTime = pk.Time
		}
		if first || pk.Time > lastTime {
			flushRound()
			if r.trDriver != nil && trRound >= 0 {
				r.trDriver.Emit(trace.Event{Kind: trace.KindRound, Round: trRound, WM: lastTime, Rows: trPk})
			}
			trRound, trPk = trRound+1, 0
			if r.winSec > 0 {
				r.closeAllWindowsTo(int(pk.Time / r.winSec))
			}
			round++
			for _, c := range cursors {
				c.rt.Advance(pk.Time)
			}
			lastTime, first = pk.Time, false
			r.engRounds++
		}
		trPk++
		var idx int
		if best.rt.hashFns == nil {
			// Round-robin routing never reads the tuple.
			idx = best.rt.route(nil)
		} else {
			var t exec.Tuple
			routeBuf, t = pk.AppendTuple(routeBuf[:0])
			idx = best.rt.route(t)
		}
		if best.gstamp[idx] != round {
			best.gstamp[idx] = round
			best.gidx[idx] = len(groups)
			var cb *exec.ColBatch
			if n := len(free); n > 0 {
				cb = free[n-1]
				free = free[:n-1]
			} else {
				cb = new(exec.ColBatch) //qap:allow hotalloc -- one batch per live destination, recycled across rounds
			}
			groups = append(groups, colSeqGroup{out: best.rt.outs[idx], cols: cb})
		}
		pk.AppendCols(groups[best.gidx[idx]].cols)
	}
	flushRound()
	r.emitDriverTail(trRound, trPk, lastTime)
	for _, name := range r.routerNames {
		r.routers[name].Flush()
	}
	r.engRounds++ // the flush round
	return r.finalize(any, maxTime), nil
}

// closeAllWindowsTo closes monitoring windows up to win on every
// island. Only the sequential drivers use it — the parallel engine
// closes leaf windows on the worker goroutines and central windows on
// the replay goroutine, at the same canonical points.
func (r *Runner) closeAllWindowsTo(win int) {
	for _, isl := range r.islands {
		isl.closeWindowsTo(win)
	}
}

// finalize merges the per-island accounting shards (in a fixed order,
// so both engines group floating-point sums identically) and collects
// the run's outputs.
func (r *Runner) finalize(any bool, maxTime uint64) *Result {
	if any {
		r.metrics.DurationSec = float64(maxTime + 1)
	}
	for h := 0; h < r.plan.Hosts; h++ {
		r.metrics.Hosts[h] = r.islands[h].metrics
	}
	central := &r.islands[r.plan.Hosts].metrics
	agg := &r.metrics.Hosts[r.plan.AggregatorHost]
	agg.CPUUnits += central.CPUUnits
	agg.NetTuplesIn += central.NetTuplesIn
	agg.NetBytesIn += central.NetBytesIn
	agg.IPCTuplesIn += central.IPCTuplesIn
	agg.Tuples += central.Tuples

	res := &Result{
		Outputs:  make(map[string][]exec.Tuple),
		NodeRows: make(map[string]int64),
		Metrics:  r.metrics,
	}
	for name, c := range r.collectors { //qap:allow maprange -- map-to-map copy, order-insensitive
		res.Outputs[name] = c.Rows
	}
	for _, isl := range r.islands {
		for name, n := range isl.rows { //qap:allow maprange -- commutative += accumulation
			res.NodeRows[name] += *n
		}
	}
	if r.winSec > 0 && any {
		res.LoadSeries = r.mergeLoadSeries(maxTime)
	}
	if r.collect {
		// Every operator's shard lives on exactly one island, so this
		// "merge" is a copy; Add guards the invariant regardless.
		res.OpStats = make(map[int]*obs.OpStats)
		for _, isl := range r.islands {
			for id, st := range isl.ops { //qap:allow maprange -- commutative OpStats.Add merge
				if prev, ok := res.OpStats[id]; ok {
					prev.Add(st)
				} else {
					cp := *st
					res.OpStats[id] = &cp
				}
			}
		}
		res.Report = r.buildReport(res)
	}
	if len(r.aggs) > 0 {
		res.SizeHints = make(map[int]int, len(r.aggs))
		for _, a := range r.aggs {
			if n := a.agg.GroupHighWater(); n > res.SizeHints[a.id] {
				res.SizeHints[a.id] = n
			}
		}
	}
	if r.tracer != nil {
		res.Trace = r.buildTrace()
	}
	return res
}

// buildTrace gathers the run's causal trace: a header record, every
// shard's events in canonical order (driver, leaf islands, central),
// and the quarantined timing trailer. Called from finalize, after the
// engine's goroutines have fully joined and mergeLoadSeries has closed
// every remaining window, so every shard is complete and no writer
// races the gather.
func (r *Runner) buildTrace() *trace.Trace {
	p := r.plan
	partitioning := p.Set.String()
	if p.StreamSets != nil {
		partitioning = p.StreamSets.String()
	}
	header := trace.Event{
		Kind:           trace.KindHeader,
		SchemaVersion:  obs.SchemaVersion,
		Hosts:          p.Hosts,
		AggregatorHost: p.AggregatorHost,
		WindowSec:      int(r.winSec),
		DurationSec:    r.metrics.DurationSec,
		Partitioning:   partitioning,
	}
	engine := r.engineName()
	timing := trace.Event{
		Kind:      trace.KindTiming,
		Engine:    engine,
		Workers:   r.workers,
		BatchSize: r.batchSize,
		WallNanos: time.Since(r.started).Nanoseconds(), //qap:allow walltime -- quarantined in the timing trailer
		Rounds:    r.engRounds,
		Batches:   r.engBatches,
		LinkItems: r.engLinkItems,
	}
	return r.tracer.Gather(header, timing)
}

// mergeLoadSeries closes every island's remaining monitoring windows
// (the final, possibly partial, window also absorbs the end-of-stream
// flush work) and folds the per-island window deltas into per-host
// rows, mirroring finalize's fold of the central island into the
// aggregator host so the two accountings always agree.
func (r *Runner) mergeLoadSeries(maxTime uint64) []obs.LoadWindow {
	final := int(maxTime/r.winSec) + 1
	for _, isl := range r.islands {
		isl.closeWindowsTo(final)
	}
	series := make([]obs.LoadWindow, 0, final)
	for w := 0; w < final; w++ {
		lw := obs.LoadWindow{
			Window:   w,
			StartSec: uint64(w) * r.winSec,
			EndSec:   uint64(w+1) * r.winSec,
		}
		if lw.EndSec > maxTime+1 {
			lw.EndSec = maxTime + 1
		}
		hosts := make([]obs.HostWindow, r.plan.Hosts)
		for h := 0; h < r.plan.Hosts; h++ {
			hm := r.islands[h].wins[w]
			hosts[h] = obs.HostWindow{
				Host:        h,
				CPUUnits:    hm.CPUUnits,
				NetTuplesIn: hm.NetTuplesIn,
				NetBytesIn:  hm.NetBytesIn,
				IPCTuplesIn: hm.IPCTuplesIn,
				Tuples:      hm.Tuples,
			}
		}
		central := r.islands[r.plan.Hosts].wins[w]
		agg := &hosts[r.plan.AggregatorHost]
		agg.CPUUnits += central.CPUUnits
		agg.NetTuplesIn += central.NetTuplesIn
		agg.NetBytesIn += central.NetBytesIn
		agg.IPCTuplesIn += central.IPCTuplesIn
		agg.Tuples += central.Tuples
		lw.Hosts = hosts
		series = append(series, lw)
	}
	return series
}

// buildReport assembles the machine-readable run report. Everything
// outside the Timing section is deterministic: a pure function of the
// plan, the trace, and the cost configuration.
func (r *Runner) buildReport(res *Result) *obs.RunReport {
	p := r.plan
	partitioning := p.Set.String()
	if p.StreamSets != nil {
		partitioning = p.StreamSets.String()
	}
	rep := &obs.RunReport{
		SchemaVersion:  obs.SchemaVersion,
		DurationSec:    r.metrics.DurationSec,
		CapacityPerSec: r.metrics.Capacity,
		Plan: &obs.PlanInfo{
			Hosts:             p.Hosts,
			Partitions:        p.Partitions,
			PartitionsPerHost: p.PartitionsPerHost,
			AggregatorHost:    p.AggregatorHost,
			Partitioning:      partitioning,
			Operators:         len(p.Ops),
		},
	}
	for _, op := range p.Ops {
		nr := obs.NodeReport{ID: op.ID, Kind: op.Kind.String(), Host: op.Host, Partition: op.Partition}
		switch {
		case op.Kind == optimizer.OpScan:
			nr.Query = op.Stream
		case op.Logical != nil:
			nr.Query = op.Logical.QueryName
		}
		if st := res.OpStats[op.ID]; st != nil {
			nr.OpStats = *st
		}
		if nr.RowsIn > 0 {
			nr.PassRate = float64(nr.RowsOut) / float64(nr.RowsIn)
		}
		rep.Nodes = append(rep.Nodes, nr)
	}
	for h, hm := range r.metrics.Hosts {
		rep.Hosts = append(rep.Hosts, obs.HostReport{
			Host:            h,
			CPUUnits:        hm.CPUUnits,
			CPULoadPct:      r.metrics.CPULoad(h),
			OverloadFactor:  r.metrics.OverloadFactor(h),
			NetTuplesIn:     hm.NetTuplesIn,
			NetBytesIn:      hm.NetBytesIn,
			IPCTuplesIn:     hm.IPCTuplesIn,
			Tuples:          hm.Tuples,
			NetTuplesPerSec: r.metrics.NetLoad(h),
		})
	}
	if len(res.LoadSeries) > 0 {
		rep.LoadWindowSec = int(r.winSec)
		rep.LoadSeries = res.LoadSeries
	}
	engine := r.engineName()
	rep.Timing = &obs.Timing{
		Workers:     r.workers,
		Engine:      engine,
		BatchRounds: r.batchRounds,
		WallNanos:   time.Since(r.started).Nanoseconds(), //qap:allow walltime -- wall time quarantined in obs.Timing
		Rounds:      r.engRounds,
		Batches:     r.engBatches,
		LinkItems:   r.engLinkItems,
	}
	return rep
}

// engineName labels the backend for the report/trace timing records.
func (r *Runner) engineName() string {
	switch {
	case r.engine == EngineLive && r.parallel:
		return "live"
	case r.parallel:
		return "parallel"
	default:
		return "sequential"
	}
}

// rowCounter counts a logical node's complete output rows.
type rowCounter struct {
	n    *int64
	next exec.Consumer
}

func (c *rowCounter) Push(t exec.Tuple) { *c.n++; c.next.Push(t) }
func (c *rowCounter) Advance(wm uint64) { c.next.Advance(wm) }
func (c *rowCounter) Flush()            { c.next.Flush() }

// PushBatch implements exec.BatchConsumer.
func (c *rowCounter) PushBatch(b exec.Batch) {
	*c.n += int64(len(b))
	exec.PushAll(c.next, b)
}

// PushCols implements exec.ColConsumer.
func (c *rowCounter) PushCols(cb *exec.ColBatch) {
	*c.n += int64(cb.Len)
	exec.PushColsAll(c.next, cb)
}

// countedOutput wraps an operator's fanout with a row counter when the
// operator produces a logical node's complete output (full aggregates,
// super-aggregates, select/project, join instances — not scans,
// unions, or partial sub-aggregates).
func (r *Runner) countedOutput(op *optimizer.Op, out exec.Consumer) exec.Consumer {
	switch op.Kind {
	case optimizer.OpAggregate, optimizer.OpAggSuper, optimizer.OpSelProj,
		optimizer.OpJoin, optimizer.OpWindow:
	default:
		return out
	}
	name := strings.ToLower(op.Logical.QueryName)
	isl := r.islandOf(op)
	n, ok := isl.rows[name]
	if !ok {
		n = new(int64)
		isl.rows[name] = n
	}
	return &rowCounter{n: n, next: out}
}

// ---- stream splitter (paper Section 3.3) ----

type router struct {
	hashFns  []exec.EvalFunc // nil => round robin
	outs     []exec.Consumer
	islands  []int // island id owning each partition's scan
	rr       int
	hashVals []sqlval.Value // route scratch, driver-goroutine-owned
}

// route picks the destination partition for one tuple. It mutates the
// round-robin cursor and the hash scratch, so in parallel mode only
// the splitter (driver) goroutine may call it.
func (rt *router) route(t exec.Tuple) int {
	if rt.hashFns == nil {
		idx := rt.rr % len(rt.outs)
		rt.rr++
		return idx
	}
	vals := rt.hashVals[:0]
	for _, f := range rt.hashFns {
		vals = append(vals, f(t))
	}
	rt.hashVals = vals
	h := sqlval.HashTuple(vals)
	// Range split: partition i receives H in [i*R/M, (i+1)*R/M).
	return int((h >> 32) * uint64(len(rt.outs)) >> 32)
}

func (rt *router) Push(t exec.Tuple) {
	rt.outs[rt.route(t)].Push(t)
}

func (rt *router) Advance(wm uint64) {
	for _, o := range rt.outs {
		o.Advance(wm)
	}
}

func (rt *router) Flush() {
	for _, o := range rt.outs {
		o.Flush()
	}
}

// ---- edge accounting ----

type procID struct{ host, partition int }

type edge struct {
	m      *HostMetrics
	next   exec.Consumer
	opCost float64 // receiving operator's per-tuple work
	xfer   float64 // IPC or network surcharge
	net    bool    // crosses hosts (counts as network)
	ipc    bool    // crosses processes on the same host
	// id indexes Runner.edges for island-crossing edges (the live
	// backend's wire name for the edge); 0 and unregistered otherwise.
	id int
	// st is the receiving operator's stat shard, nil when stats are
	// disabled. The edge always executes on the receiving operator's
	// island (captured edges replay centrally), so the shard has a
	// single writer and accumulates in canonical order in both engines.
	st *obs.OpStats
}

func (e *edge) Push(t exec.Tuple) {
	e.m.Tuples++
	e.m.CPUUnits += e.opCost + e.xfer
	switch {
	case e.net:
		e.m.NetTuplesIn++
		e.m.NetBytesIn += int64(t.WireSize())
	case e.ipc:
		e.m.IPCTuplesIn++
	}
	if e.st != nil {
		e.st.RowsIn++
		e.st.CPUUnits += e.opCost + e.xfer
		switch {
		case e.net:
			e.st.NetTuplesIn++
			e.st.NetBytesIn += int64(t.WireSize())
		case e.ipc:
			e.st.IPCTuplesIn++
		}
	}
	e.next.Push(t)
}

// PushBatch implements exec.BatchConsumer: the per-tuple accounting
// loop runs first (identically to scalar pushes, so floating-point
// sums accumulate in the same order regardless of how a round was
// chunked into batches), then the whole batch moves downstream. This
// holds on island-crossing edges too: the parallel engine captures a
// produced batch as a single link item and replays it through this
// same method, so both engines run the accounting loop and the
// downstream cascade over identical batch boundaries.
func (e *edge) PushBatch(b exec.Batch) {
	for _, t := range b {
		e.m.Tuples++
		e.m.CPUUnits += e.opCost + e.xfer
		switch {
		case e.net:
			e.m.NetTuplesIn++
			e.m.NetBytesIn += int64(t.WireSize())
		case e.ipc:
			e.m.IPCTuplesIn++
		}
		if e.st != nil {
			e.st.RowsIn++
			e.st.CPUUnits += e.opCost + e.xfer
			switch {
			case e.net:
				e.st.NetTuplesIn++
				e.st.NetBytesIn += int64(t.WireSize())
			case e.ipc:
				e.st.IPCTuplesIn++
			}
		}
	}
	exec.PushAll(e.next, b)
}

// PushCols implements exec.ColConsumer: the per-row accounting loop is
// identical to PushBatch over the pivoted rows (same integer counters,
// same floating-point accumulation order, wire sizes computed straight
// from the columns), then the columnar batch moves downstream — pivoting
// only if the receiving operator has no columnar fast path.
//
//qap:hot
func (e *edge) PushCols(cb *exec.ColBatch) {
	n := cb.Len
	for i := 0; i < n; i++ {
		e.m.Tuples++
		e.m.CPUUnits += e.opCost + e.xfer
		switch {
		case e.net:
			e.m.NetTuplesIn++
			e.m.NetBytesIn += int64(cb.RowWireSize(i))
		case e.ipc:
			e.m.IPCTuplesIn++
		}
		if e.st != nil {
			e.st.RowsIn++
			e.st.CPUUnits += e.opCost + e.xfer
			switch {
			case e.net:
				e.st.NetTuplesIn++
				e.st.NetBytesIn += int64(cb.RowWireSize(i))
			case e.ipc:
				e.st.IPCTuplesIn++
			}
		}
	}
	exec.PushColsAll(e.next, cb)
}

func (e *edge) Advance(wm uint64) {
	if e.st != nil {
		e.st.Advances++
	}
	e.next.Advance(wm)
}

func (e *edge) Flush() {
	if e.st != nil {
		e.st.Flushes++
	}
	e.next.Flush()
}

// opOut counts an operator's emitted rows. It is installed (only when
// stats are enabled) between the operator and its fanout, on the
// producing operator's island, so RowsOut counts each emission once —
// before any Tee duplication and before island-crossing capture.
type opOut struct {
	st   *obs.OpStats
	next exec.Consumer
}

func (o *opOut) Push(t exec.Tuple) { o.st.RowsOut++; o.next.Push(t) }
func (o *opOut) Advance(wm uint64) { o.next.Advance(wm) }
func (o *opOut) Flush()            { o.next.Flush() }

// PushBatch implements exec.BatchConsumer.
func (o *opOut) PushBatch(b exec.Batch) {
	o.st.RowsOut += int64(len(b))
	exec.PushAll(o.next, b)
}

// PushCols implements exec.ColConsumer.
func (o *opOut) PushCols(cb *exec.ColBatch) {
	o.st.RowsOut += int64(cb.Len)
	exec.PushColsAll(o.next, cb)
}

// opCostOf returns the per-tuple work of an operator kind.
func (c CostConfig) opCostOf(kind optimizer.OpKind) float64 {
	switch kind {
	case optimizer.OpScan:
		return c.ScanCost
	case optimizer.OpSelProj:
		return c.SelProjCost
	case optimizer.OpAggregate, optimizer.OpAggSub, optimizer.OpAggSuper, optimizer.OpWindow:
		return c.AggCost
	case optimizer.OpJoin:
		return c.JoinCost
	case optimizer.OpUnion:
		return c.UnionCost
	case optimizer.OpOutput:
		return c.OutputCost
	default:
		return 1
	}
}

// ---- compilation ----

type portRef struct {
	op   *optimizer.Op
	port int
}

func (r *Runner) compile() error {
	p := r.plan
	// Consumers of each producer, in deterministic order.
	consumers := make(map[*optimizer.Op][]portRef)
	for _, op := range p.Ops {
		for port, in := range op.Inputs {
			consumers[in] = append(consumers[in], portRef{op, port})
		}
	}
	// entries[op][port] is the accounted consumer feeding that port.
	entries := make(map[*optimizer.Op][]exec.Consumer)

	// Build in reverse topological order so downstream entries exist.
	for i := len(p.Ops) - 1; i >= 0; i-- {
		op := p.Ops[i]
		out := r.countedOutput(op, r.fanout(op, consumers[op], entries))
		if st := r.opStatsOf(op); st != nil {
			out = &opOut{st: st, next: out}
		}
		ports, err := r.instantiate(op, out)
		if err != nil {
			return fmt.Errorf("cluster: op %d (%s): %w", op.ID, op.Label(), err)
		}
		entries[op] = ports
	}
	// Routers deliver into the scan entries, partition-ordered.
	for _, src := range p.Graph.Sources() {
		scans := make([]exec.Consumer, p.Partitions)
		islandIDs := make([]int, p.Partitions)
		for _, op := range p.Ops {
			if op.Kind == optimizer.OpScan && op.Logical == src {
				scans[op.Partition] = entries[op][0]
				islandIDs[op.Partition] = r.islandOf(op).id
			}
		}
		rt := &router{outs: scans, islands: islandIDs}
		if set := p.SplitterSet(src.Stream.Name); !set.IsEmpty() {
			names := colNames(src.OutCols)
			for _, elem := range set {
				f, err := exec.Compile(elem.Expr, exec.ColsResolver("", names), r.params)
				if err != nil {
					return fmt.Errorf("cluster: partitioning element %s: %w", elem, err)
				}
				rt.hashFns = append(rt.hashFns, f)
			}
		}
		r.routers[strings.ToLower(src.Stream.Name)] = rt
	}
	r.routerNames = r.routerNames[:0]
	for name := range r.routers { //qap:allow maprange -- names collected then sorted below
		r.routerNames = append(r.routerNames, name)
	}
	sort.Strings(r.routerNames)
	return nil
}

// fanout wraps each consumer's entry port with an accounting edge and
// combines multiple consumers into a Tee.
func (r *Runner) fanout(op *optimizer.Op, cons []portRef, entries map[*optimizer.Op][]exec.Consumer) exec.Consumer {
	if len(cons) == 0 {
		return exec.Discard{}
	}
	sort.SliceStable(cons, func(i, j int) bool {
		if cons[i].op.ID != cons[j].op.ID {
			return cons[i].op.ID < cons[j].op.ID
		}
		return cons[i].port < cons[j].port
	})
	from := procID{op.Host, op.Proc}
	fromIsl := r.islandOf(op)
	outs := make([]exec.Consumer, len(cons))
	for i, c := range cons {
		to := procID{c.op.Host, c.op.Proc}
		toIsl := r.islandOf(c.op)
		e := &edge{
			m:      &toIsl.metrics,
			next:   entries[c.op][c.port],
			opCost: r.cost.opCostOf(c.op.Kind),
			st:     r.opStatsOf(c.op),
		}
		switch {
		case from.host != to.host:
			e.net, e.xfer = true, r.cost.RemoteCost
		case from != to:
			e.ipc, e.xfer = true, r.cost.IPCCost
		}
		if r.parallel && fromIsl != toIsl {
			// Island-crossing link: the producing worker records the
			// delivery; the central replay loop applies it (engine.go).
			// The edge id is its index in compile order — deterministic
			// for a given plan, so two runners compiled from the same
			// plan (a live splitter and a remote node) agree on every id.
			e.id = len(r.edges)
			r.edges = append(r.edges, e)
			outs[i] = &capture{isl: fromIsl, e: e}
		} else {
			outs[i] = e
		}
	}
	if len(outs) == 1 {
		return outs[0]
	}
	return &exec.Tee{Outs: outs}
}

// instantiate builds the exec operator for one physical op and returns
// its input ports.
func (r *Runner) instantiate(op *optimizer.Op, out exec.Consumer) ([]exec.Consumer, error) {
	switch op.Kind {
	case optimizer.OpScan:
		// The scan itself charges the receiving host for ingesting the
		// packet (the splitter hardware is free).
		fp := &exec.FilterProject{Out: out}
		selfEdge := &edge{m: &r.islandOf(op).metrics, next: fp, opCost: r.cost.ScanCost, st: r.opStatsOf(op)}
		return []exec.Consumer{selfEdge}, nil
	case optimizer.OpUnion:
		u := exec.NewUnion(len(op.Inputs), out)
		ports := make([]exec.Consumer, len(op.Inputs))
		for i := range ports {
			ports[i] = u.Port(i)
		}
		return ports, nil
	case optimizer.OpOutput:
		c := &exec.Collector{}
		r.collectors[op.Logical.QueryName] = c
		return []exec.Consumer{c}, nil
	case optimizer.OpSelProj:
		fp, err := r.buildSelProj(op.Logical)
		if err != nil {
			return nil, err
		}
		fp.Out = out
		return []exec.Consumer{fp}, nil
	case optimizer.OpAggregate, optimizer.OpAggSub, optimizer.OpAggSuper:
		agg, err := r.buildAggregate(op, out)
		if err != nil {
			return nil, err
		}
		r.aggs = append(r.aggs, aggInstance{id: op.ID, agg: agg})
		return []exec.Consumer{agg}, nil
	case optimizer.OpWindow:
		w, err := r.buildWindow(op, out)
		if err != nil {
			return nil, err
		}
		return []exec.Consumer{w}, nil
	case optimizer.OpJoin:
		ports, err := r.buildJoin(op.Logical, out)
		if err != nil {
			return nil, err
		}
		return ports, nil
	default:
		return nil, fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

func colNames(cols []plan.ColDef) []string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return names
}

func (r *Runner) buildSelProj(n *plan.Node) (*exec.FilterProject, error) {
	res := exec.ColsResolver(n.InBind, colNames(n.Inputs[0].OutCols))
	fp := &exec.FilterProject{}
	if n.Filter != nil {
		f, err := exec.Compile(n.Filter, res, r.params)
		if err != nil {
			return nil, err
		}
		fp.Filter = f
	}
	exprs := make([]gsql.Expr, len(n.Projs))
	for i, pr := range n.Projs {
		exprs[i] = pr.Expr
	}
	projs, err := exec.CompileAll(exprs, res, r.params)
	if err != nil {
		return nil, err
	}
	fp.Projs = projs
	if r.columnar {
		if n.Filter != nil {
			cf, err := exec.CompileCol(n.Filter, res, r.params)
			if err != nil {
				return nil, err
			}
			fp.ColFilter = &cf
		}
		colProjs, err := exec.CompileColAll(exprs, res, r.params)
		if err != nil {
			return nil, err
		}
		fp.ColProjs = colProjs
	}
	return fp, nil
}

// epochOfWM compiles the watermark translator for a temporal group
// column: the lineage base expression evaluated at the watermark.
func (r *Runner) epochOfWM(lin plan.Lineage) (func(uint64) sqlval.Value, error) {
	if lin.Base == nil {
		return nil, nil
	}
	f, err := exec.Compile(lin.Base.Expr, exec.ColsResolver("", []string{lin.Base.Attr}), r.params)
	if err != nil {
		return nil, err
	}
	return func(wm uint64) sqlval.Value {
		return f(exec.Tuple{sqlval.Uint(wm)})
	}, nil
}

// momentParts returns the partial column suffixes of an aggregate
// whose decomposition needs several components, or nil for aggregates
// that split one-to-one (the SubName/SuperName pair).
func momentParts(spec gsql.AggSpec) []string {
	switch spec.Name {
	case "AVG":
		return []string{"$sum", "$cnt"}
	case "VARIANCE", "STDDEV":
		return []string{"$sum", "$sumsq", "$cnt"}
	default:
		return nil
	}
}

// momentSubAccums returns the accumulator names matching momentParts.
func momentSubAccums(spec gsql.AggSpec) []string {
	switch spec.Name {
	case "AVG":
		return []string{"SUM", "COUNT"}
	case "VARIANCE", "STDDEV":
		return []string{"SUM", "SUMSQ", "COUNT"}
	default:
		return nil
	}
}

// partialNames lists the sub-aggregate output columns for an
// aggregation's partials.
func partialNames(n *plan.Node) []string {
	var out []string
	for _, a := range n.Aggs {
		if parts := momentParts(a.Spec); parts != nil {
			for _, p := range parts {
				out = append(out, a.Name+p)
			}
		} else {
			out = append(out, a.Name)
		}
	}
	return out
}

// momentFinalExpr builds the expression reconstructing a moment-split
// aggregate's value from its merged partials:
//
//	AVG       sum/cnt
//	VARIANCE  sumsq/cnt - (sum/cnt)^2
//	STDDEV    SQRT(variance)
//
// The multiplication by 1.0 forces floating-point arithmetic over
// integer partials.
func momentFinalExpr(spec gsql.AggSpec, name string) gsql.Expr {
	ref := func(suffix string) gsql.Expr { return &gsql.ColumnRef{Name: name + suffix} }
	fdiv := func(num, den gsql.Expr) gsql.Expr {
		return &gsql.Binary{
			Op: gsql.OpDiv,
			L:  &gsql.Binary{Op: gsql.OpMul, L: num, R: &gsql.NumberLit{IsFloat: true, F: 1}},
			R:  den,
		}
	}
	mean := fdiv(ref("$sum"), ref("$cnt"))
	switch spec.Name {
	case "AVG":
		return mean
	case "VARIANCE", "STDDEV":
		variance := &gsql.Binary{
			Op: gsql.OpSub,
			L:  fdiv(ref("$sumsq"), ref("$cnt")),
			R:  &gsql.Binary{Op: gsql.OpMul, L: mean, R: mean},
		}
		if spec.Name == "VARIANCE" {
			return variance
		}
		return &gsql.FuncCall{Name: "SQRT", Args: []gsql.Expr{variance}}
	default:
		return &gsql.ColumnRef{Name: name}
	}
}

// rewriteSplitRefs substitutes references to moment-split aggregates
// with their reconstruction expressions in super-aggregate HAVING and
// projection clauses.
func rewriteSplitRefs(e gsql.Expr, split map[string]gsql.AggSpec) gsql.Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *gsql.ColumnRef:
		if spec, ok := split[strings.ToLower(t.Name)]; ok && t.Qualifier == "" {
			return momentFinalExpr(spec, t.Name)
		}
		return gsql.CloneExpr(e)
	case *gsql.Unary:
		return &gsql.Unary{Op: t.Op, X: rewriteSplitRefs(t.X, split)}
	case *gsql.Binary:
		return &gsql.Binary{Op: t.Op, L: rewriteSplitRefs(t.L, split), R: rewriteSplitRefs(t.R, split)}
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = rewriteSplitRefs(a, split)
		}
		return &gsql.FuncCall{Name: t.Name, Star: t.Star, Args: args}
	default:
		return gsql.CloneExpr(e)
	}
}

func (r *Runner) buildAggregate(op *optimizer.Op, out exec.Consumer) (*exec.Aggregate, error) {
	n := op.Logical
	cfg := exec.AggregateConfig{EpochIdx: n.EpochGroupCol(), Out: out,
		ColEmit:      r.columnar,
		SizeHint:     r.sizeHints[op.ID],
		OnEpochFlush: r.traceEmitter(op, trace.KindEpochFlush)}

	if n.WindowPanes > 1 && op.Kind != optimizer.OpAggSub {
		return nil, fmt.Errorf("windowed aggregation %s must lower to sub-aggregate + window", n.QueryName)
	}
	if op.Kind == optimizer.OpAggSuper {
		return r.buildSuperAggregate(n, cfg)
	}

	inRes := exec.ColsResolver(n.InBind, colNames(n.Inputs[0].OutCols))
	if n.PreFilter != nil {
		f, err := exec.Compile(n.PreFilter, inRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.PreFilter = f
		if r.columnar {
			cf, err := exec.CompileCol(n.PreFilter, inRes, r.params)
			if err != nil {
				return nil, err
			}
			cfg.ColPreFilter = &cf
		}
	}
	for _, g := range n.GroupBy {
		f, err := exec.Compile(g.Expr, inRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.GroupBy = append(cfg.GroupBy, f)
		if r.columnar {
			ce, err := exec.CompileCol(g.Expr, inRes, r.params)
			if err != nil {
				return nil, err
			}
			cfg.ColGroupBy = append(cfg.ColGroupBy, ce)
		}
	}
	if cfg.EpochIdx >= 0 {
		ewm, err := r.epochOfWM(n.LineageOf(n.GroupBy[cfg.EpochIdx].Expr))
		if err != nil {
			return nil, err
		}
		cfg.EpochOfWM = ewm
	}

	sub := op.Kind == optimizer.OpAggSub
	for _, a := range n.Aggs {
		var arg exec.EvalFunc
		var colArg *exec.ColExpr
		if a.Arg != nil {
			f, err := exec.Compile(a.Arg, inRes, r.params)
			if err != nil {
				return nil, err
			}
			arg = f
			if r.columnar {
				ce, err := exec.CompileCol(a.Arg, inRes, r.params)
				if err != nil {
					return nil, err
				}
				colArg = &ce
			}
		}
		// cfg.ColArgs stays index-aligned with cfg.Aggs (nil = COUNT(*)).
		addAgg := func(fac exec.AccumFactory) {
			cfg.Aggs = append(cfg.Aggs, exec.AggColumn{Factory: fac, Arg: arg})
			if r.columnar {
				cfg.ColArgs = append(cfg.ColArgs, colArg)
			}
		}
		switch {
		case sub && momentParts(a.Spec) != nil:
			for _, accName := range momentSubAccums(a.Spec) {
				fac, err := exec.NewAccumFactory(accName)
				if err != nil {
					return nil, err
				}
				addAgg(fac)
			}
		case sub:
			fac, err := exec.NewAccumFactory(a.Spec.SubName)
			if err != nil {
				return nil, err
			}
			addAgg(fac)
		default:
			fac, err := exec.NewAccumFactory(a.Spec.Name)
			if err != nil {
				return nil, err
			}
			addAgg(fac)
		}
	}
	if sub {
		// Sub-aggregates emit groups ++ partials; HAVING and the final
		// projection wait for complete values in the super-aggregate
		// (Section 5.2.2).
		return exec.NewAggregate(cfg), nil
	}

	// Full aggregation: HAVING and post-projection over groups++aggs.
	rowNames := make([]string, 0, len(n.GroupBy)+len(n.Aggs))
	for _, g := range n.GroupBy {
		rowNames = append(rowNames, g.Name)
	}
	for _, a := range n.Aggs {
		rowNames = append(rowNames, a.Name)
	}
	rowRes := exec.ColsResolver("", rowNames)
	if n.Having != nil {
		f, err := exec.Compile(n.Having, rowRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Having = f
	}
	for _, p := range n.Post {
		f, err := exec.Compile(p.Expr, rowRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Post = append(cfg.Post, f)
	}
	return exec.NewAggregate(cfg), nil
}

// buildSuperAggregate assembles the central half of a partial
// aggregation: it groups the sub-aggregates' outputs by the original
// group columns and merges partials with each aggregate's
// super-function (COUNT's partials SUM, MIN's MIN, and so on).
func (r *Runner) buildSuperAggregate(n *plan.Node, cfg exec.AggregateConfig) (*exec.Aggregate, error) {
	groupNames := make([]string, len(n.GroupBy))
	for i, g := range n.GroupBy {
		groupNames[i] = g.Name
	}
	inNames := append(append([]string{}, groupNames...), partialNames(n)...)
	inRes := exec.ColsResolver("", inNames)

	for _, name := range groupNames {
		f, err := exec.Compile(&gsql.ColumnRef{Name: name}, inRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.GroupBy = append(cfg.GroupBy, f)
		if r.columnar {
			ce, err := exec.CompileCol(&gsql.ColumnRef{Name: name}, inRes, r.params)
			if err != nil {
				return nil, err
			}
			cfg.ColGroupBy = append(cfg.ColGroupBy, ce)
		}
	}
	if cfg.EpochIdx >= 0 {
		ewm, err := r.epochOfWM(n.LineageOf(n.GroupBy[cfg.EpochIdx].Expr))
		if err != nil {
			return nil, err
		}
		cfg.EpochOfWM = ewm
	}

	split := make(map[string]gsql.AggSpec)
	var rowNames []string
	rowNames = append(rowNames, groupNames...)
	// Keeps cfg.ColArgs index-aligned with cfg.Aggs; every super-side
	// argument is a plain column reference over the partial row.
	addAgg := func(fac exec.AccumFactory, name string) error {
		f, err := exec.Compile(&gsql.ColumnRef{Name: name}, inRes, r.params)
		if err != nil {
			return err
		}
		cfg.Aggs = append(cfg.Aggs, exec.AggColumn{Factory: fac, Arg: f})
		if r.columnar {
			ce, err := exec.CompileCol(&gsql.ColumnRef{Name: name}, inRes, r.params)
			if err != nil {
				return err
			}
			cfg.ColArgs = append(cfg.ColArgs, &ce)
		}
		return nil
	}
	for _, a := range n.Aggs {
		if parts := momentParts(a.Spec); parts != nil {
			split[strings.ToLower(a.Name)] = a.Spec
			for _, suffix := range parts {
				pn := a.Name + suffix
				fac, _ := exec.NewAccumFactory("SUM")
				if err := addAgg(fac, pn); err != nil {
					return nil, err
				}
				rowNames = append(rowNames, pn)
			}
			continue
		}
		fac, err := exec.NewAccumFactory(a.Spec.SuperName)
		if err != nil {
			return nil, err
		}
		if err := addAgg(fac, a.Name); err != nil {
			return nil, err
		}
		rowNames = append(rowNames, a.Name)
	}

	rowRes := exec.ColsResolver("", rowNames)
	if n.Having != nil {
		f, err := exec.Compile(rewriteSplitRefs(n.Having, split), rowRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Having = f
	}
	for _, p := range n.Post {
		f, err := exec.Compile(rewriteSplitRefs(p.Expr, split), rowRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Post = append(cfg.Post, f)
	}
	return exec.NewAggregate(cfg), nil
}

// buildWindow assembles the sliding-window merge over per-pane
// partials: mergers per partial column (SUM for moment parts, the
// super-function otherwise), then the original HAVING and projection
// with moment references reconstructed.
func (r *Runner) buildWindow(op *optimizer.Op, out exec.Consumer) (*exec.SlidingWindow, error) {
	n := op.Logical
	cfg := exec.SlidingWindowConfig{
		GroupCols:   len(n.GroupBy),
		EpochIdx:    n.EpochGroupCol(),
		Panes:       n.WindowPanes,
		Out:         out,
		OnPaneFlush: r.traceEmitter(op, trace.KindPaneFlush),
	}
	if cfg.EpochIdx < 0 {
		return nil, fmt.Errorf("window %s has no temporal pane column", n.QueryName)
	}
	ewm, err := r.epochOfWM(n.LineageOf(n.GroupBy[cfg.EpochIdx].Expr))
	if err != nil {
		return nil, err
	}
	cfg.PaneOfWM = ewm

	split := make(map[string]gsql.AggSpec)
	groupNames := make([]string, len(n.GroupBy))
	for i, g := range n.GroupBy {
		groupNames[i] = g.Name
	}
	rowNames := append([]string{}, groupNames...)
	for _, a := range n.Aggs {
		if parts := momentParts(a.Spec); parts != nil {
			split[strings.ToLower(a.Name)] = a.Spec
			for _, suffix := range parts {
				fac, _ := exec.NewAccumFactory("SUM")
				cfg.Mergers = append(cfg.Mergers, fac)
				rowNames = append(rowNames, a.Name+suffix)
			}
			continue
		}
		fac, err := exec.NewAccumFactory(a.Spec.SuperName)
		if err != nil {
			return nil, err
		}
		cfg.Mergers = append(cfg.Mergers, fac)
		rowNames = append(rowNames, a.Name)
	}
	rowRes := exec.ColsResolver("", rowNames)
	if n.Having != nil {
		f, err := exec.Compile(rewriteSplitRefs(n.Having, split), rowRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Having = f
	}
	for _, p := range n.Post {
		f, err := exec.Compile(rewriteSplitRefs(p.Expr, split), rowRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Post = append(cfg.Post, f)
	}
	return exec.NewSlidingWindow(cfg), nil
}

// joinResolver resolves qualified references over the concatenation of
// the two join inputs.
func joinResolver(leftBind string, leftNames []string, rightBind string, rightNames []string) exec.Resolver {
	return func(ref *gsql.ColumnRef) (int, error) {
		if ref.Qualifier != "" {
			switch {
			case strings.EqualFold(ref.Qualifier, leftBind):
				for i, nm := range leftNames {
					if strings.EqualFold(nm, ref.Name) {
						return i, nil
					}
				}
			case strings.EqualFold(ref.Qualifier, rightBind):
				for i, nm := range rightNames {
					if strings.EqualFold(nm, ref.Name) {
						return len(leftNames) + i, nil
					}
				}
			default:
				return 0, fmt.Errorf("exec: unknown qualifier %q", ref.Qualifier)
			}
			return 0, fmt.Errorf("exec: unknown column %s", ref)
		}
		found := -1
		for i, nm := range leftNames {
			if strings.EqualFold(nm, ref.Name) {
				found = i
			}
		}
		for i, nm := range rightNames {
			if strings.EqualFold(nm, ref.Name) {
				if found >= 0 {
					return 0, fmt.Errorf("exec: ambiguous column %q", ref.Name)
				}
				found = len(leftNames) + i
			}
		}
		if found < 0 {
			return 0, fmt.Errorf("exec: unknown column %q", ref.Name)
		}
		return found, nil
	}
}

func (r *Runner) buildJoin(n *plan.Node, out exec.Consumer) ([]exec.Consumer, error) {
	leftNames := colNames(n.Inputs[0].OutCols)
	rightNames := colNames(n.Inputs[1].OutCols)
	leftRes := exec.ColsResolver(n.LeftBind, leftNames)
	rightRes := exec.ColsResolver(n.RightBind, rightNames)

	cfg := exec.JoinConfig{Type: n.JoinType, Out: out}
	cfg.Left.Width, cfg.Right.Width = len(leftNames), len(rightNames)
	cfg.Left.TemporalIdx, cfg.Right.TemporalIdx = n.TemporalKey, n.TemporalKey

	for i := range n.LeftKeys {
		lf, err := exec.Compile(n.LeftKeys[i], leftRes, r.params)
		if err != nil {
			return nil, err
		}
		rf, err := exec.Compile(n.RightKeys[i], rightRes, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Left.Keys = append(cfg.Left.Keys, lf)
		cfg.Right.Keys = append(cfg.Right.Keys, rf)
		if r.columnar {
			lc, err := exec.CompileCol(n.LeftKeys[i], leftRes, r.params)
			if err != nil {
				return nil, err
			}
			rc, err := exec.CompileCol(n.RightKeys[i], rightRes, r.params)
			if err != nil {
				return nil, err
			}
			cfg.Left.ColKeys = append(cfg.Left.ColKeys, lc)
			cfg.Right.ColKeys = append(cfg.Right.ColKeys, rc)
		}
	}
	lwm, err := r.epochOfWM(n.SideLineage(0, n.LeftKeys[n.TemporalKey]))
	if err != nil {
		return nil, err
	}
	rwm, err := r.epochOfWM(n.SideLineage(1, n.RightKeys[n.TemporalKey]))
	if err != nil {
		return nil, err
	}
	cfg.Left.MinFutureKey, cfg.Right.MinFutureKey = lwm, rwm

	comb := joinResolver(n.LeftBind, leftNames, n.RightBind, rightNames)
	if n.Residual != nil {
		f, err := exec.Compile(n.Residual, comb, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Residual = f
	}
	for _, p := range n.JoinProjs {
		f, err := exec.Compile(p.Expr, comb, r.params)
		if err != nil {
			return nil, err
		}
		cfg.Projs = append(cfg.Projs, f)
	}
	j := exec.NewJoin(cfg)
	// Side filters split out of the WHERE clause apply before the join
	// tables; interpose lightweight local filters on the ports.
	left, right := exec.Consumer(j.LeftIn()), exec.Consumer(j.RightIn())
	if n.LeftFilter != nil {
		f, err := exec.Compile(n.LeftFilter, leftRes, r.params)
		if err != nil {
			return nil, err
		}
		fp := &exec.FilterProject{Filter: f, Out: left}
		if r.columnar {
			cf, err := exec.CompileCol(n.LeftFilter, leftRes, r.params)
			if err != nil {
				return nil, err
			}
			fp.ColFilter = &cf
		}
		left = fp
	}
	if n.RightFilter != nil {
		f, err := exec.Compile(n.RightFilter, rightRes, r.params)
		if err != nil {
			return nil, err
		}
		fp := &exec.FilterProject{Filter: f, Out: right}
		if r.columnar {
			cf, err := exec.CompileCol(n.RightFilter, rightRes, r.params)
			if err != nil {
				return nil, err
			}
			fp.ColFilter = &cf
		}
		right = fp
	}
	return []exec.Consumer{left, right}, nil
}
