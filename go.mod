module qap

go 1.22
