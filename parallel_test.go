package qap

// The parallel engine's public correctness oracle: for every figure
// workload, seed, host count, and strategy, running with worker
// goroutines must reproduce the sequential engine's result byte for
// byte — same output rows in the same order, same node-row counts, and
// bit-equal metrics.

import (
	"reflect"
	"sort"
	"testing"

	"qap/internal/netgen"
)

func diffTrace(seed int64) []netgen.Packet {
	cfg := netgen.DefaultConfig()
	cfg.Seed = seed
	cfg.DurationSec = 30
	cfg.PacketsPerSec = 300
	return netgen.Generate(cfg).Packets
}

func deployRun(t *testing.T, queries string, ps Set, hosts, workers int, packets []netgen.Packet) *RunResult {
	t.Helper()
	sys, err := Load(netgen.SchemaDDL, queries)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(DeployConfig{
		Hosts:             hosts,
		PartitionsPerHost: 2,
		Partitioning:      ps,
		Params:            map[string]Value{"PATTERN": Uint(netgen.AttackPattern)},
		Workers:           workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Run("TCP", packets)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkersDifferential(t *testing.T) {
	workloads := []struct {
		name    string
		queries string
		ps      Set
	}{
		{"fig8-suspicious", SuspiciousFlowsQuery, MustParseSet("srcIP, destIP, srcPort, destPort")},
		{"fig10-section62", QuerySetSection62, MustParseSet("srcIP & 0xFFF0, destIP")},
		{"fig13-complex", ComplexQuerySet, MustParseSet("srcIP")},
	}
	for _, w := range workloads {
		for _, seed := range []int64{1, 7} {
			packets := diffTrace(seed)
			for _, hosts := range []int{1, 2, 4} {
				for _, strategy := range []struct {
					name string
					ps   Set
				}{
					{"naive", nil},
					{"partitioned", w.ps},
				} {
					want := deployRun(t, w.queries, strategy.ps, hosts, 1, packets)
					got := deployRun(t, w.queries, strategy.ps, hosts, 4, packets)
					if !reflect.DeepEqual(want.Outputs, got.Outputs) {
						t.Errorf("%s seed=%d hosts=%d %s: Outputs differ", w.name, seed, hosts, strategy.name)
					}
					if !reflect.DeepEqual(want.NodeRows, got.NodeRows) {
						t.Errorf("%s seed=%d hosts=%d %s: NodeRows differ", w.name, seed, hosts, strategy.name)
					}
					if !reflect.DeepEqual(*want.Metrics, *got.Metrics) {
						t.Errorf("%s seed=%d hosts=%d %s: Metrics differ:\n  want %+v\n  got  %+v",
							w.name, seed, hosts, strategy.name, *want.Metrics, *got.Metrics)
					}
				}
			}
		}
	}
}

func TestRunResultOutputNames(t *testing.T) {
	res := deployRun(t, ComplexQuerySet, MustParseSet("srcIP"), 2, 1, diffTrace(1))
	names := res.OutputNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("OutputNames not sorted: %v", names)
	}
	if len(names) != len(res.Outputs) {
		t.Fatalf("OutputNames has %d names, Outputs has %d", len(names), len(res.Outputs))
	}
	for _, name := range names {
		if _, ok := res.Outputs[name]; !ok {
			t.Fatalf("OutputNames lists %q, not an output", name)
		}
	}
}
