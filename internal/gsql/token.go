// Package gsql implements the front end for the GSQL subset used in
// the paper: a lexer, an expression/statement AST, a parser for named
// query sets (SELECT/FROM/JOIN/WHERE/GROUP BY/HAVING with scalar
// expressions and aggregate functions), and printers.
package gsql

import "fmt"

// TokKind identifies a lexical token class.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber  // integer or float literal; hex accepted
	TokString  // quoted string literal
	TokParam   // #NAME# placeholder parameter
	TokLParen  // (
	TokRParen  // )
	TokComma   // ,
	TokDot     // .
	TokSemi    // ;
	TokColon   // :
	TokStar    // *
	TokPlus    // +
	TokMinus   // -
	TokSlash   // /
	TokPercent // %
	TokAmp     // &
	TokPipe    // |
	TokCaret   // ^
	TokTilde   // ~
	TokShl     // <<
	TokShr     // >>
	TokEq      // =
	TokNeq     // != or <>
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
)

// String returns a description of the token kind.
func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokParam:
		return "parameter"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokSemi:
		return "';'"
	case TokColon:
		return "':'"
	case TokStar:
		return "'*'"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokSlash:
		return "'/'"
	case TokPercent:
		return "'%'"
	case TokAmp:
		return "'&'"
	case TokPipe:
		return "'|'"
	case TokCaret:
		return "'^'"
	case TokTilde:
		return "'~'"
	case TokShl:
		return "'<<'"
	case TokShr:
		return "'>>'"
	case TokEq:
		return "'='"
	case TokNeq:
		return "'!='"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // raw text for identifiers, numbers, strings, params
	Line int    // 1-based
	Col  int    // 1-based
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber:
		return fmt.Sprintf("%q", t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	case TokParam:
		return fmt.Sprintf("parameter #%s#", t.Text)
	default:
		return t.Kind.String()
	}
}
