package prove

import (
	"fmt"
	"strings"

	"qap/internal/core"
	"qap/internal/plan"
)

// Verify checks a serialized certificate against the plan graph
// without re-running the partitioning inference: every step's side
// condition is validated locally — lineage claims against the plan's
// column lineage, coverage claims against the element-coarsening
// lattice, verdicts against the premises they cite — and the chain
// structure (one lineage step per GROUP BY term and key pair, scope
// assembled from exactly the contributed elements, one coverage step
// per candidate element, premise indices, registered rule codes and
// sections) is enforced, so a tampered derivation is rejected.
func Verify(g *plan.Graph, c *Certificate) error {
	if c == nil {
		return fmt.Errorf("prove: nil certificate")
	}
	if c.Version != Version {
		return fmt.Errorf("prove: unsupported certificate version %d (want %d)", c.Version, Version)
	}
	if fp := Fingerprint(g); c.Fingerprint != fp {
		return fmt.Errorf("prove: certificate fingerprint %s does not match plan %s", c.Fingerprint, fp)
	}
	ps, err := parseSetText(c.Set)
	if err != nil {
		return err
	}
	qnodes := g.QueryNodes()
	if len(c.Nodes) != len(qnodes) {
		return fmt.Errorf("prove: certificate proves %d nodes, plan has %d query nodes", len(c.Nodes), len(qnodes))
	}
	verdicts := map[string]string{}
	for i, n := range qnodes {
		np := &c.Nodes[i]
		if np.Node != n.QueryName {
			return fmt.Errorf("prove: node %d is %q, plan expects %q", i, np.Node, n.QueryName)
		}
		if np.Kind != n.Kind.String() {
			return fmt.Errorf("prove: node %s has kind %q, plan says %q", np.Node, np.Kind, n.Kind)
		}
		if err := verifyNode(n, np, ps, verdicts); err != nil {
			return fmt.Errorf("prove: node %s: %w", np.Node, err)
		}
		verdicts[n.QueryName] = np.Verdict
	}
	return nil
}

// cursor walks a node proof's steps in order.
type cursor struct {
	steps []Step
	pos   int
}

func (ck *cursor) take() (*Step, int, error) {
	if ck.pos >= len(ck.steps) {
		return nil, -1, fmt.Errorf("derivation ends early at step %d", ck.pos+1)
	}
	st := &ck.steps[ck.pos]
	idx := ck.pos
	ck.pos++
	return st, idx, nil
}

func (ck *cursor) expect(rule string) (*Step, int, error) {
	st, idx, err := ck.take()
	if err != nil {
		return nil, -1, err
	}
	if st.Rule != rule {
		return nil, -1, fmt.Errorf("step %d applies %q where %q is required", idx+1, st.Rule, rule)
	}
	return st, idx, nil
}

// verifyNode checks one node's derivation chain. verdicts holds the
// already-verified verdicts of every earlier node.
func verifyNode(n *plan.Node, np *NodeProof, ps core.Set, verdicts map[string]string) error {
	if np.Verdict != VerdictPartitioned && np.Verdict != VerdictCentralize {
		return fmt.Errorf("unknown verdict %q", np.Verdict)
	}
	// Global step hygiene: registered rule, registered code and
	// section, premises strictly earlier.
	for i, st := range np.Steps {
		info, ok := rules[st.Rule]
		if !ok {
			return fmt.Errorf("step %d cites unregistered rule %q", i+1, st.Rule)
		}
		if st.Code != info.Code {
			return fmt.Errorf("step %d (%s) carries code %q, registry says %q", i+1, st.Rule, st.Code, info.Code)
		}
		if st.Section != info.Section {
			return fmt.Errorf("step %d (%s) cites section %q, registry says %q", i+1, st.Rule, st.Section, info.Section)
		}
		for _, p := range st.Premises {
			if p < 0 || p >= i {
				return fmt.Errorf("step %d premise %d is not an earlier step", i+1, p+1)
			}
		}
	}

	ck := &cursor{steps: np.Steps}
	compatIdx, badIdx := -1, -1
	if n.Kind == plan.KindSelectProject {
		st, idx, err := ck.expect(RuleUniversal)
		if err != nil {
			return err
		}
		if st.Concl != conclUniversal() || len(st.Premises) != 0 {
			return fmt.Errorf("step %d: malformed universal step", idx+1)
		}
		compatIdx = idx
	} else {
		scope, linIdx, err := verifyLineage(n, ck)
		if err != nil {
			return err
		}
		st, scopeIdx, err := ck.expect(RuleScope)
		if err != nil {
			return err
		}
		if !intsEqual(st.Premises, linIdx) {
			return fmt.Errorf("step %d: scope premises %v do not cover the lineage steps %v", scopeIdx+1, st.Premises, linIdx)
		}
		if st.Concl != conclScope(scope) {
			return fmt.Errorf("step %d: scope conclusion %q, lineage derives %q", scopeIdx+1, st.Concl, conclScope(scope))
		}
		switch {
		case scope.IsEmpty():
			st, idx, err := ck.expect(RuleUnpartitionable)
			if err != nil {
				return err
			}
			if st.Concl != conclUnpartitionable() || !intsEqual(st.Premises, []int{scopeIdx}) {
				return fmt.Errorf("step %d: malformed unpartitionable step", idx+1)
			}
			badIdx = idx
		case ps.IsEmpty():
			st, idx, err := ck.expect(RuleSetEmpty)
			if err != nil {
				return err
			}
			if st.Concl != conclSetEmpty() || len(st.Premises) != 0 {
				return fmt.Errorf("step %d: malformed set-empty step", idx+1)
			}
			badIdx = idx
		default:
			coverIdx, uncoverIdx, err := verifyCoverage(ck, ps, scope, scopeIdx)
			if err != nil {
				return err
			}
			if len(uncoverIdx) == 0 {
				st, idx, err := ck.expect(RuleCompatible)
				if err != nil {
					return err
				}
				if st.Concl != conclCompatible() || !intsEqual(st.Premises, coverIdx) {
					return fmt.Errorf("step %d: malformed compatible step", idx+1)
				}
				compatIdx = idx
			} else {
				st, idx, err := ck.expect(RuleIncompatible)
				if err != nil {
					return err
				}
				if st.Concl != conclIncompatible() || !intsEqual(st.Premises, uncoverIdx) {
					return fmt.Errorf("step %d: malformed incompatible step", idx+1)
				}
				badIdx = idx
			}
		}
	}

	if err := verifyVerdict(n, np, ck, compatIdx, badIdx, verdicts); err != nil {
		return err
	}
	if ck.pos != len(np.Steps) {
		return fmt.Errorf("derivation continues past its verdict (%d extra steps)", len(np.Steps)-ck.pos)
	}
	return nil
}

// verifyLineage checks the per-term (aggregate) or per-key-pair
// (join) lineage steps against the plan's column lineage and returns
// the scope set those steps derive.
func verifyLineage(n *plan.Node, ck *cursor) (core.Set, []int, error) {
	var scope core.Set
	var linIdx []int
	check := func(st *Step, idx int, wantRule, wantTerm, wantElem, wantConcl string, e *core.Elem) error {
		if st.Rule != wantRule {
			return fmt.Errorf("step %d applies %q to term %q; the plan's lineage supports %q", idx+1, st.Rule, wantTerm, wantRule)
		}
		if st.Term != wantTerm {
			return fmt.Errorf("step %d names term %q, plan order expects %q", idx+1, st.Term, wantTerm)
		}
		if st.Elem != wantElem {
			return fmt.Errorf("step %d claims element %q, lineage traces to %q", idx+1, st.Elem, wantElem)
		}
		if st.Concl != wantConcl {
			return fmt.Errorf("step %d concludes %q, rule derives %q", idx+1, st.Concl, wantConcl)
		}
		if len(st.Premises) != 0 {
			return fmt.Errorf("step %d: lineage steps are axiomatic and take no premises", idx+1)
		}
		linIdx = append(linIdx, idx)
		if e != nil {
			scope = append(scope, *e)
		}
		return nil
	}
	switch n.Kind {
	case plan.KindAggregate:
		for _, gc := range n.GroupBy {
			st, idx, err := ck.take()
			if err != nil {
				return nil, nil, err
			}
			lin := n.LineageOf(gc.Expr)
			switch {
			case lin.Base == nil:
				err = check(st, idx, RuleGroupOpaque, gc.Name, "", conclGroupOpaque(), nil)
			case lin.Temporal && n.WindowPanes > 1:
				e := core.Elem{Attr: lin.Base.Attr, Expr: lin.Base.Expr}
				err = check(st, idx, RuleGroupTemporalSliding, gc.Name, e.String(), conclTemporalSliding(), nil)
			case lin.Temporal:
				e := core.Elem{Attr: lin.Base.Attr, Expr: lin.Base.Expr}
				err = check(st, idx, RuleGroupTemporal, gc.Name, e.String(), conclTemporal(e.String()), &e)
			default:
				e := core.Elem{Attr: lin.Base.Attr, Expr: lin.Base.Expr}
				err = check(st, idx, RuleGroupRequires, gc.Name, e.String(), conclRequires(e.String()), &e)
			}
			if err != nil {
				return nil, nil, err
			}
		}
	case plan.KindJoin:
		for i := range n.LeftKeys {
			st, idx, err := ck.take()
			if err != nil {
				return nil, nil, err
			}
			term := n.LeftKeys[i].String() + " = " + n.RightKeys[i].String()
			ll := n.SideLineage(0, n.LeftKeys[i])
			rl := n.SideLineage(1, n.RightKeys[i])
			switch {
			case ll.Base == nil || rl.Base == nil:
				err = check(st, idx, RuleJoinOpaque, term, "", conclJoinOpaque(), nil)
			case !sameAttrName(ll.Base.Attr, rl.Base.Attr) || !equalNoQual(ll.Base.Expr, rl.Base.Expr):
				le := core.Elem{Attr: ll.Base.Attr, Expr: ll.Base.Expr}
				re := core.Elem{Attr: rl.Base.Attr, Expr: rl.Base.Expr}
				err = check(st, idx, RuleJoinDivergent, term, "", conclJoinDivergent(le.String(), re.String()), nil)
			default:
				e := core.Elem{Attr: ll.Base.Attr, Expr: ll.Base.Expr}
				err = check(st, idx, RuleJoinRequires, term, e.String(), conclRequires(e.String()), &e)
			}
			if err != nil {
				return nil, nil, err
			}
		}
	default:
		return nil, nil, fmt.Errorf("kind %s has no lineage rules", n.Kind)
	}
	return scope.Normalize(), linIdx, nil
}

// verifyCoverage checks one covers/uncovered step per candidate
// element, in canonical set order, re-deriving each claim on the
// element-coarsening lattice.
func verifyCoverage(ck *cursor, ps, scope core.Set, scopeIdx int) (coverIdx, uncoverIdx []int, err error) {
	for _, e := range ps {
		st, idx, err := ck.take()
		if err != nil {
			return nil, nil, err
		}
		if st.Elem != e.String() {
			return nil, nil, fmt.Errorf("step %d covers element %q, set order expects %q", idx+1, st.Elem, e.String())
		}
		if !intsEqual(st.Premises, []int{scopeIdx}) {
			return nil, nil, fmt.Errorf("step %d must cite the scope step as its premise", idx+1)
		}
		switch st.Rule {
		case RuleCovers:
			var of *core.Elem
			for i := range scope {
				if scope[i].String() == st.Of {
					of = &scope[i]
					break
				}
			}
			if of == nil {
				return nil, nil, fmt.Errorf("step %d cites %q, which is not a scope element", idx+1, st.Of)
			}
			if !core.IsCoarseningOf(e, *of) {
				return nil, nil, fmt.Errorf("step %d claims %s is a function of %s; the lattice disagrees", idx+1, st.Elem, st.Of)
			}
			if st.Concl != conclCovers(st.Elem, st.Of) {
				return nil, nil, fmt.Errorf("step %d: malformed covers conclusion", idx+1)
			}
			coverIdx = append(coverIdx, idx)
		case RuleUncovered:
			for _, g := range scope {
				if core.IsCoarseningOf(e, g) {
					return nil, nil, fmt.Errorf("step %d claims %s uncovered, but scope element %s covers it", idx+1, st.Elem, g.String())
				}
			}
			if st.Of != "" || st.Concl != conclUncovered(st.Elem) {
				return nil, nil, fmt.Errorf("step %d: malformed uncovered step", idx+1)
			}
			uncoverIdx = append(uncoverIdx, idx)
		default:
			return nil, nil, fmt.Errorf("step %d applies %q where a coverage rule is required", idx+1, st.Rule)
		}
	}
	return coverIdx, uncoverIdx, nil
}

// verifyVerdict checks the final step and that it matches the node
// proof's declared verdict.
func verifyVerdict(n *plan.Node, np *NodeProof, ck *cursor, compatIdx, badIdx int, verdicts map[string]string) error {
	st, idx, err := ck.take()
	if err != nil {
		return err
	}
	switch st.Rule {
	case RuleDistributable:
		if np.Verdict != VerdictPartitioned || st.Concl != VerdictPartitioned {
			return fmt.Errorf("step %d: distributable must conclude %s", idx+1, VerdictPartitioned)
		}
		if compatIdx < 0 || !intsEqual(st.Premises, []int{compatIdx}) {
			return fmt.Errorf("step %d: distributable must cite the node's compatibility step", idx+1)
		}
		if !strsEqual(st.Deps, inputNames(n)) {
			return fmt.Errorf("step %d: deps %v do not list the node's inputs %v", idx+1, st.Deps, inputNames(n))
		}
		for _, in := range n.Inputs {
			if in.Kind == plan.KindSource {
				continue // axiomatically partitioned by the splitter
			}
			if verdicts[in.QueryName] != VerdictPartitioned {
				return fmt.Errorf("step %d: input %s is not proven %s", idx+1, in.QueryName, VerdictPartitioned)
			}
		}
	case RuleCentralize:
		if np.Verdict != VerdictCentralize || st.Concl != VerdictCentralize {
			return fmt.Errorf("step %d: centralize must conclude %s", idx+1, VerdictCentralize)
		}
		switch {
		case len(st.Premises) == 1 && len(st.Deps) == 0:
			if badIdx < 0 || st.Premises[0] != badIdx {
				return fmt.Errorf("step %d: centralize cites step %d, which does not disqualify the node", idx+1, st.Premises[0]+1)
			}
		case len(st.Premises) == 0 && len(st.Deps) > 0:
			for _, dep := range st.Deps {
				in := inputNamed(n, dep)
				if in == nil || in.Kind == plan.KindSource {
					return fmt.Errorf("step %d: dep %q is not a query input of the node", idx+1, dep)
				}
				if verdicts[in.QueryName] == VerdictPartitioned {
					return fmt.Errorf("step %d: dep %q is proven %s and cannot force centralization", idx+1, dep, VerdictPartitioned)
				}
			}
		default:
			return fmt.Errorf("step %d: centralize needs either one disqualifying premise or centralizing inputs", idx+1)
		}
	default:
		return fmt.Errorf("step %d applies %q where a verdict rule is required", idx+1, st.Rule)
	}
	return nil
}

func inputNamed(n *plan.Node, name string) *plan.Node {
	for _, in := range n.Inputs {
		if in.QueryName == name {
			return in
		}
	}
	return nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func strsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}
