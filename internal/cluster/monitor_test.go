package cluster

import (
	"math"
	"reflect"
	"testing"

	"qap/internal/core"
	"qap/internal/netgen"
	"qap/internal/obs"
	"qap/internal/optimizer"
)

// driftTrace generates a two-phase skew-shift trace: the second phase
// swaps the source/destination pools and doubles the rate, so the
// windowed load series has genuinely different activity per window.
func driftTrace(t testing.TB) *netgen.Trace {
	t.Helper()
	cfg := netgen.DefaultConfig()
	cfg.PacketsPerSec = 300
	cfg.SrcHosts, cfg.DstHosts = 40, 500
	cfg.Phases = []netgen.Phase{
		{DurationSec: 30},
		{DurationSec: 30, PacketsPerSec: 600, SrcHosts: 500, DstHosts: 40},
	}
	return netgen.Generate(cfg)
}

// runMonitored runs the complex DAG with load monitoring on.
func runMonitored(t testing.TB, streams map[string][]netgen.Packet, workers, batch, winSec int) *Result {
	t.Helper()
	g := buildGraph(t, complexSet)
	p, err := optimizer.Build(g, core.MustParseSet("srcIP"), optimizer.Options{
		Hosts: 4, PartitionsPerHost: 2, PartialAgg: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: workers, BatchSize: batch, LoadWindowSec: winSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLoadSeriesDeltasSumToTotals: the windowed series is a partition
// of the run's cumulative accounting — per host, the window deltas
// must sum back to the final metrics (integer counters exactly,
// CPUUnits within float summation tolerance), and the windows must
// tile the trace timeline in order.
func TestLoadSeriesDeltasSumToTotals(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	const winSec = 10
	res := runMonitored(t, streams, 1, 1, winSec)
	if len(res.LoadSeries) == 0 {
		t.Fatal("monitored run produced no load series")
	}

	sums := make([]HostMetrics, len(res.Metrics.Hosts))
	for i, w := range res.LoadSeries {
		if w.Window != i {
			t.Fatalf("window %d has Window=%d; series must be dense from 0", i, w.Window)
		}
		if want := uint64(i * winSec); w.StartSec != want {
			t.Errorf("window %d starts at %d, want %d", i, w.StartSec, want)
		}
		if w.EndSec <= w.StartSec {
			t.Errorf("window %d is empty: [%d,%d)", i, w.StartSec, w.EndSec)
		}
		if len(w.Hosts) != len(sums) {
			t.Fatalf("window %d covers %d hosts, want %d", i, len(w.Hosts), len(sums))
		}
		for h, hw := range w.Hosts {
			if hw.Host != h {
				t.Fatalf("window %d host row %d labeled %d", i, h, hw.Host)
			}
			if hw.NetTuplesIn < 0 || hw.NetBytesIn < 0 || hw.IPCTuplesIn < 0 || hw.Tuples < 0 {
				t.Fatalf("window %d host %d has negative delta: %+v", i, h, hw)
			}
			sums[h].CPUUnits += hw.CPUUnits
			sums[h].NetTuplesIn += hw.NetTuplesIn
			sums[h].NetBytesIn += hw.NetBytesIn
			sums[h].IPCTuplesIn += hw.IPCTuplesIn
			sums[h].Tuples += hw.Tuples
		}
	}
	for h, total := range res.Metrics.Hosts {
		got := sums[h]
		if got.NetTuplesIn != total.NetTuplesIn || got.NetBytesIn != total.NetBytesIn ||
			got.IPCTuplesIn != total.IPCTuplesIn || got.Tuples != total.Tuples {
			t.Errorf("host %d: window sums %+v != totals %+v", h, got, total)
		}
		if d := math.Abs(got.CPUUnits - total.CPUUnits); d > 1e-9*math.Max(total.CPUUnits, 1) {
			t.Errorf("host %d: CPUUnits window sum %v drifts from total %v", h, got.CPUUnits, total.CPUUnits)
		}
	}
}

// TestLoadSeriesBitEqualAcrossEngines: at a fixed batch size the load
// series — float CPUUnits included — must not move a byte between the
// sequential and parallel engines; across batch sizes the integer
// counters must be identical per window (the trigger only reads
// integers, which is what makes the adaptive decision engine-
// independent).
func TestLoadSeriesBitEqualAcrossEngines(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	const winSec = 10
	want := runMonitored(t, streams, 1, 1, winSec)

	for _, batch := range []int{1, 64} {
		seq := runMonitored(t, streams, 1, batch, winSec)
		par := runMonitored(t, streams, 4, batch, winSec)
		if !reflect.DeepEqual(seq.LoadSeries, par.LoadSeries) {
			t.Errorf("batch=%d: load series differ between engines", batch)
		}
		sameIntegerWindows(t, want.LoadSeries, seq.LoadSeries)
	}
}

// sameIntegerWindows asserts two series agree on geometry and every
// integer counter; CPUUnits within summation tolerance.
func sameIntegerWindows(t *testing.T, want, got []obs.LoadWindow) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("series length %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Window != g.Window || w.StartSec != g.StartSec || w.EndSec != g.EndSec {
			t.Fatalf("window %d geometry (%d,[%d,%d)) vs (%d,[%d,%d))",
				i, g.Window, g.StartSec, g.EndSec, w.Window, w.StartSec, w.EndSec)
		}
		for h := range w.Hosts {
			wh, gh := w.Hosts[h], g.Hosts[h]
			if wh.NetTuplesIn != gh.NetTuplesIn || wh.NetBytesIn != gh.NetBytesIn ||
				wh.IPCTuplesIn != gh.IPCTuplesIn || wh.Tuples != gh.Tuples {
				t.Errorf("window %d host %d integer counters differ:\n  want %+v\n  got  %+v", i, h, wh, gh)
			}
			if d := math.Abs(wh.CPUUnits - gh.CPUUnits); d > 1e-9*math.Max(math.Abs(wh.CPUUnits), 1) {
				t.Errorf("window %d host %d CPUUnits %v vs %v", i, h, gh.CPUUnits, wh.CPUUnits)
			}
		}
	}
}

// TestLoadSeriesMonitoringIsFree: monitoring must never perturb the
// run — results with and without LoadWindowSec are byte-identical
// apart from the series itself, and an unmonitored run has none.
func TestLoadSeriesMonitoringIsFree(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	plain := runMonitored(t, streams, 1, 1, 0)
	if plain.LoadSeries != nil {
		t.Fatal("unmonitored run grew a load series")
	}
	mon := runMonitored(t, streams, 1, 1, 10)
	if !reflect.DeepEqual(plain.Outputs, mon.Outputs) ||
		!reflect.DeepEqual(plain.NodeRows, mon.NodeRows) ||
		!reflect.DeepEqual(*plain.Metrics, *mon.Metrics) {
		t.Error("enabling monitoring perturbed the run")
	}
}
