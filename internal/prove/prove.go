package prove

import (
	"strings"

	"qap/internal/core"
	"qap/internal/plan"
)

// Prove constructs a certificate for the graph under candidate
// partitioning set ps: one derivation per query node, in topological
// order, concluding PARTITIONED≡CENTRAL or MUST-CENTRALIZE.
//
// The derivations are built from the plan's column lineage and the
// element-coarsening lattice directly — not by calling the inference
// in internal/core — so the difftest agreement axis cross-checks two
// independent readings of the paper's scope rules.
//
// One deliberate divergence from core.Compatible: universal (per-
// tuple) nodes are proven compatible with *any* routing, including
// the empty set's round robin, matching what the physical builder
// actually does (it pushes selections per partition even when no
// partitioning set is configured). core.Compatible reports false for
// the empty set on every node because the analysis never recommends
// it; the physical plans agree with the certificate, and the difftest
// axis holds both to that.
func Prove(g *plan.Graph, ps core.Set) *Certificate {
	ps = ps.Normalize()
	c := &Certificate{
		Version:     Version,
		Set:         setText(ps),
		Fingerprint: Fingerprint(g),
	}
	verdicts := map[string]string{}
	for _, n := range g.QueryNodes() {
		np := proveNode(n, ps, verdicts)
		verdicts[n.QueryName] = np.Verdict
		c.Nodes = append(c.Nodes, np)
	}
	return c
}

// proveNode derives one node's verdict. verdicts holds the verdicts
// of every node earlier in topological order (so all inputs).
func proveNode(n *plan.Node, ps core.Set, verdicts map[string]string) NodeProof {
	np := NodeProof{Node: n.QueryName, Kind: n.Kind.String()}
	add := func(s Step) int {
		info := rules[s.Rule]
		s.Code, s.Section = info.Code, info.Section
		np.Steps = append(np.Steps, s)
		return len(np.Steps) - 1
	}

	// Phase 1: node-local compatibility.
	compatIdx, badIdx := -1, -1
	if n.Kind == plan.KindSelectProject {
		compatIdx = add(Step{Rule: RuleUniversal, Concl: conclUniversal()})
	} else {
		// Lineage steps, one per GROUP BY term or key pair, each
		// optionally contributing a scope element.
		var scope core.Set
		var linIdx []int
		contribute := func(s Step, e *core.Elem) {
			idx := add(s)
			linIdx = append(linIdx, idx)
			if e != nil {
				scope = append(scope, *e)
			}
		}
		switch n.Kind {
		case plan.KindAggregate:
			for _, gc := range n.GroupBy {
				lin := n.LineageOf(gc.Expr)
				switch {
				case lin.Base == nil:
					contribute(Step{Rule: RuleGroupOpaque, Term: gc.Name, Concl: conclGroupOpaque()}, nil)
				case lin.Temporal && n.WindowPanes > 1:
					e := core.Elem{Attr: lin.Base.Attr, Expr: lin.Base.Expr}
					contribute(Step{Rule: RuleGroupTemporalSliding, Term: gc.Name, Elem: e.String(), Concl: conclTemporalSliding()}, nil)
				case lin.Temporal:
					e := core.Elem{Attr: lin.Base.Attr, Expr: lin.Base.Expr}
					contribute(Step{Rule: RuleGroupTemporal, Term: gc.Name, Elem: e.String(), Concl: conclTemporal(e.String())}, &e)
				default:
					e := core.Elem{Attr: lin.Base.Attr, Expr: lin.Base.Expr}
					contribute(Step{Rule: RuleGroupRequires, Term: gc.Name, Elem: e.String(), Concl: conclRequires(e.String())}, &e)
				}
			}
		case plan.KindJoin:
			for i := range n.LeftKeys {
				term := n.LeftKeys[i].String() + " = " + n.RightKeys[i].String()
				ll := n.SideLineage(0, n.LeftKeys[i])
				rl := n.SideLineage(1, n.RightKeys[i])
				switch {
				case ll.Base == nil || rl.Base == nil:
					contribute(Step{Rule: RuleJoinOpaque, Term: term, Concl: conclJoinOpaque()}, nil)
				case !sameAttrName(ll.Base.Attr, rl.Base.Attr) || !equalNoQual(ll.Base.Expr, rl.Base.Expr):
					le := core.Elem{Attr: ll.Base.Attr, Expr: ll.Base.Expr}
					re := core.Elem{Attr: rl.Base.Attr, Expr: rl.Base.Expr}
					contribute(Step{Rule: RuleJoinDivergent, Term: term, Concl: conclJoinDivergent(le.String(), re.String())}, nil)
				default:
					e := core.Elem{Attr: ll.Base.Attr, Expr: ll.Base.Expr}
					contribute(Step{Rule: RuleJoinRequires, Term: term, Elem: e.String(), Concl: conclRequires(e.String())}, &e)
				}
			}
		}
		scope = scope.Normalize()
		scopeIdx := add(Step{Rule: RuleScope, Premises: linIdx, Concl: conclScope(scope)})

		switch {
		case scope.IsEmpty():
			badIdx = add(Step{Rule: RuleUnpartitionable, Premises: []int{scopeIdx}, Concl: conclUnpartitionable()})
		case ps.IsEmpty():
			badIdx = add(Step{Rule: RuleSetEmpty, Concl: conclSetEmpty()})
		default:
			var coverIdx, uncoverIdx []int
			for _, e := range ps {
				covered := false
				for _, g := range scope {
					if core.IsCoarseningOf(e, g) {
						coverIdx = append(coverIdx, add(Step{
							Rule: RuleCovers, Elem: e.String(), Of: g.String(),
							Premises: []int{scopeIdx}, Concl: conclCovers(e.String(), g.String()),
						}))
						covered = true
						break
					}
				}
				if !covered {
					uncoverIdx = append(uncoverIdx, add(Step{
						Rule: RuleUncovered, Elem: e.String(),
						Premises: []int{scopeIdx}, Concl: conclUncovered(e.String()),
					}))
				}
			}
			if len(uncoverIdx) == 0 {
				compatIdx = add(Step{Rule: RuleCompatible, Premises: coverIdx, Concl: conclCompatible()})
			} else {
				badIdx = add(Step{Rule: RuleIncompatible, Premises: uncoverIdx, Concl: conclIncompatible()})
			}
		}
	}

	// Phase 2: transitive verdict over the inputs (Section 5.2).
	var centralInputs []string
	for _, in := range n.Inputs {
		if in.Kind == plan.KindSource {
			continue // sources are partitioned by the splitter axiomatically
		}
		if verdicts[in.QueryName] != VerdictPartitioned {
			centralInputs = append(centralInputs, in.QueryName)
		}
	}
	switch {
	case compatIdx >= 0 && len(centralInputs) == 0:
		np.Verdict = VerdictPartitioned
		add(Step{Rule: RuleDistributable, Premises: []int{compatIdx}, Deps: inputNames(n), Concl: VerdictPartitioned})
	case badIdx >= 0:
		np.Verdict = VerdictCentralize
		add(Step{Rule: RuleCentralize, Premises: []int{badIdx}, Concl: VerdictCentralize})
	default:
		np.Verdict = VerdictCentralize
		add(Step{Rule: RuleCentralize, Deps: centralInputs, Concl: VerdictCentralize})
	}
	return np
}

func inputNames(n *plan.Node) []string {
	out := make([]string, len(n.Inputs))
	for i, in := range n.Inputs {
		out[i] = in.QueryName
	}
	return out
}

func sameAttrName(a, b string) bool { return strings.EqualFold(a, b) }
