package plan

import "qap/internal/gsql"

// inputEnv reconstructs the column environment a node's clause
// expressions were validated in.
func (n *Node) inputEnv() colEnv {
	env := colEnv{queryName: n.QueryName}
	switch n.Kind {
	case KindJoin:
		env.bindings = []binding{
			{n.LeftBind, n.Inputs[0].OutCols},
			{n.RightBind, n.Inputs[1].OutCols},
		}
	default:
		if len(n.Inputs) > 0 {
			env.bindings = []binding{{n.InBind, n.Inputs[0].OutCols}}
		}
	}
	return env
}

// LineageOf resolves an expression over the node's inputs down to base
// stream attributes. For joins the combined environment is used; an
// expression mixing both sides is reported opaque.
func (n *Node) LineageOf(expr gsql.Expr) Lineage {
	env := n.inputEnv()
	lin := env.lineageOf(expr)
	if n.Kind == KindJoin {
		if used, err := env.sidesUsed(expr); err == nil && len(used) > 1 {
			lin.Base = nil
		}
	}
	return lin
}

// SideLineage resolves a join key expression over one input side
// (0 = left, 1 = right).
func (n *Node) SideLineage(side int, expr gsql.Expr) Lineage {
	if n.Kind != KindJoin {
		return n.LineageOf(expr)
	}
	bindName, in := n.LeftBind, n.Inputs[0]
	if side == 1 {
		bindName, in = n.RightBind, n.Inputs[1]
	}
	env := colEnv{queryName: n.QueryName, bindings: []binding{{bindName, in.OutCols}}}
	return env.lineageOf(expr)
}
