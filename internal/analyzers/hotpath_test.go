package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// poolFixture is the minimal stand-in for qap/internal/exec: the
// poolleak analyzer matches GetBatch/PutBatch by function name and
// package name, so fixture modules can exercise it without importing
// the real module.
const poolFixture = `package exec

type Tuple struct{ V int }
type Batch []Tuple

func GetBatch() Batch     { return nil }
func PutBatch(b Batch)    {}
func PushAll(dst *Batch, b Batch) {}
`

func poolFiles(body string) map[string]string {
	return map[string]string{
		"exec/pool.go": poolFixture,
		"lib/lib.go":   "package lib\n\nimport \"vettest/exec\"\n\n" + body,
	}
}

func TestPoolleakFlagsEarlyReturn(t *testing.T) {
	fs := findingsFor(t, poolFiles(`func leaky(fail bool) {
	b := exec.GetBatch()
	if fail {
		return
	}
	exec.PutBatch(b)
}
`))
	pl := byAnalyzer(fs, "poolleak")
	if len(pl) != 1 {
		t.Fatalf("want 1 poolleak finding, got %d: %v", len(pl), pl)
	}
	if pl[0].Pos.Line != 6 { // the GetBatch call, not the return
		t.Errorf("finding at line %d, want 6 (the acquire site)", pl[0].Pos.Line)
	}
	if !strings.Contains(pl[0].Message, "no PutBatch") {
		t.Errorf("unexpected message: %s", pl[0].Message)
	}
}

func TestPoolleakFlagsFallOffEndAndOverwrite(t *testing.T) {
	fs := findingsFor(t, poolFiles(`func dropped() {
	b := exec.GetBatch()
	b = append(b, exec.Tuple{V: 1})
	_ = len(b)
}

func overwritten() {
	b := exec.GetBatch()
	b = exec.GetBatch()
	exec.PutBatch(b)
}
`))
	pl := byAnalyzer(fs, "poolleak")
	if len(pl) != 2 {
		t.Fatalf("want 2 poolleak findings (fall-off leak + overwrite), got %d: %v", len(pl), pl)
	}
	if !strings.Contains(pl[0].Message, "may leak") {
		t.Errorf("first finding should be the fall-off leak: %s", pl[0].Message)
	}
	if !strings.Contains(pl[1].Message, "overwritten") {
		t.Errorf("second finding should be the overwrite: %s", pl[1].Message)
	}
}

// TestPoolleakAcceptsOwnershipIdioms pins the contract's legal shapes:
// balanced put, deferred put (direct and in a closure), transfer by
// return, transfer into a struct or composite literal, self-append
// growth, neutral call arguments (consumers copy, producers still
// put), and release on every branch of an if/else.
func TestPoolleakAcceptsOwnershipIdioms(t *testing.T) {
	fs := findingsFor(t, poolFiles(`type box struct{ b exec.Batch }

func balanced() {
	b := exec.GetBatch()
	b = append(b, exec.Tuple{V: 1})
	exec.PushAll(nil, b)
	exec.PutBatch(b)
}

func deferred(fail bool) {
	b := exec.GetBatch()
	defer exec.PutBatch(b)
	if fail {
		return
	}
	b = append(b, exec.Tuple{})
}

func deferredClosure() {
	b := exec.GetBatch()
	defer func() { exec.PutBatch(b) }()
	b = append(b, exec.Tuple{})
}

func transfersToCaller() exec.Batch {
	b := exec.GetBatch()
	return b
}

func storedInStruct(x *box) {
	b := exec.GetBatch()
	x.b = b
}

func storedInLiteral() *box {
	b := exec.GetBatch()
	return &box{b: b}
}

func branches(fail bool) {
	b := exec.GetBatch()
	if fail {
		exec.PutBatch(b)
		return
	}
	exec.PutBatch(b)
}

func loops(rounds int) {
	for i := 0; i < rounds; i++ {
		b := exec.GetBatch()
		b = append(b, exec.Tuple{V: i})
		exec.PutBatch(b)
	}
}
`))
	if pl := byAnalyzer(fs, "poolleak"); len(pl) != 0 {
		t.Fatalf("every function follows the ownership contract; got %v", pl)
	}
}

func TestHotallocFlagsOnlyHotFunctions(t *testing.T) {
	fs := findingsFor(t, map[string]string{"lib/lib.go": `package lib

type point struct{ X, Y int }

// hot is the per-tuple path.
//
//qap:hot
func hot(n int) int {
	s := make([]int, n)
	p := &point{X: 1}
	m := map[int]int{}
	f := func() int { return 1 }
	v := point{X: 3}
	q := new(point)
	return len(s) + p.X + len(m) + f() + v.X + q.Y
}

func cold(n int) int {
	s := make([]int, n)
	p := &point{X: 1}
	return len(s) + p.X
}
`})
	ha := byAnalyzer(fs, "hotalloc")
	if len(ha) != 5 { // make, &point{}, map literal, closure, new — not the value literal
		t.Fatalf("want 5 hotalloc findings in hot only, got %d: %v", len(ha), ha)
	}
	for _, f := range ha {
		if !strings.Contains(f.Message, "hot function hot") {
			t.Errorf("finding outside the hot function: %s", f)
		}
	}
}

func TestHotallocAllowsAnnotatedSites(t *testing.T) {
	fs := findingsFor(t, map[string]string{"lib/lib.go": `package lib

//qap:hot
func hot(n int) []int {
	s := make([]int, 0, n) //qap:allow hotalloc -- amortized: grown once per run
	return s
}
`})
	if ha := byAnalyzer(fs, "hotalloc"); len(ha) != 0 {
		t.Fatalf("annotated site should be suppressed; got %v", ha)
	}
	if ss := byAnalyzer(fs, "stalesuppress"); len(ss) != 0 {
		t.Fatalf("the allow is live, not stale; got %v", ss)
	}
}

func TestStalesuppressFlagsDeadAndUnknownAllows(t *testing.T) {
	fs := findingsFor(t, map[string]string{"lib/lib.go": `package lib

import "time"

func f() int64 {
	n := time.Now().Unix() //qap:allow walltime -- live: suppresses this read
	x := 1                 //qap:allow walltime -- dead: nothing to suppress
	y := 2                 //qap:allow wibble -- unknown analyzer name
	return n + int64(x+y)
}
`})
	if wall := byAnalyzer(fs, "walltime"); len(wall) != 0 {
		t.Fatalf("live allow should still suppress; got %v", wall)
	}
	ss := byAnalyzer(fs, "stalesuppress")
	if len(ss) != 2 {
		t.Fatalf("want 2 stalesuppress findings (dead + unknown), got %d: %v", len(ss), ss)
	}
	if ss[0].Pos.Line != 7 || !strings.Contains(ss[0].Message, "suppresses nothing") {
		t.Errorf("want dead-allow finding at line 7, got %s", ss[0])
	}
	if ss[1].Pos.Line != 8 || !strings.Contains(ss[1].Message, "unknown analyzer") {
		t.Errorf("want unknown-name finding at line 8, got %s", ss[1])
	}
}

// TestSeededPoolleakFails plants a leaky GetBatch user in the cluster
// package of a repo copy and asserts the vet run catches it — the
// acceptance check that poolleak actually guards the engine.
func TestSeededPoolleakFails(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	src := repoRoot(t)
	dst := t.TempDir()
	if err := copyGoTree(src, dst); err != nil {
		t.Fatal(err)
	}
	seeded := filepath.Join(dst, "internal", "cluster", "zz_seeded.go")
	if err := os.WriteFile(seeded, []byte(`package cluster

import "qap/internal/exec"

func seededLeak(fail bool) {
	b := exec.GetBatch()
	if fail {
		return
	}
	exec.PutBatch(b)
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	fs := RunAll(pkgs, All)
	var hit bool
	for _, f := range fs {
		if f.Analyzer == "poolleak" && strings.HasSuffix(f.Pos.Filename, "zz_seeded.go") {
			hit = true
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if !hit {
		t.Error("seeded pool leak was not flagged")
	}
}
