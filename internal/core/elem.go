// Package core implements the paper's primary contribution: the
// query-aware stream-partitioning analysis. It infers compatible
// partitioning sets for individual query nodes (Section 3.5),
// reconciles the conflicting requirements of a query set into a single
// partitioning set (Section 4.1), and searches for the partitioning
// that minimizes the maximum network load on any one node under the
// paper's cost model (Sections 4.2.1-4.2.2).
package core

import (
	"fmt"
	"math/bits"
	"strings"

	"qap/internal/gsql"
)

// Elem is one element of a partitioning set: a scalar expression over
// exactly one attribute of a base input stream, written with the
// attribute as ColumnRef{Qualifier: Stream, Name: Attr}.
//
// Under the paper's simplifying assumption that every source stream is
// partitioned with the same partitioning set, elements are identified
// by attribute name: TCP.srcIP and PKT.srcIP denote the same
// partitioning column applied to each stream.
type Elem struct {
	Attr string    // base attribute name (canonical: as first seen)
	Expr gsql.Expr // scalar expression over the attribute
}

// String renders the element as its expression with an unqualified
// attribute reference, e.g. "srcIP & 0xFFF0".
func (e Elem) String() string {
	out, _ := substituteRefs(e.Expr, func(ref *gsql.ColumnRef) (gsql.Expr, bool) {
		return &gsql.ColumnRef{Name: ref.Name}, true
	})
	return out.String()
}

// ParseElem parses a partitioning-set element from its textual form,
// e.g. "srcIP", "srcIP & 0xFFF0", "time/60". The expression must
// reference exactly one attribute.
func ParseElem(src string) (Elem, error) {
	expr, err := gsql.ParseExpr(src)
	if err != nil {
		return Elem{}, err
	}
	attrs := referencedAttrs(expr)
	if len(attrs) != 1 {
		return Elem{}, fmt.Errorf("core: partitioning element %q must reference exactly one attribute, found %d", src, len(attrs))
	}
	return Elem{Attr: attrs[0], Expr: expr}, nil
}

// MustParseElem is ParseElem that panics on error.
func MustParseElem(src string) Elem {
	e, err := ParseElem(src)
	if err != nil {
		panic(err)
	}
	return e
}

func referencedAttrs(e gsql.Expr) []string {
	seen := make(map[string]bool)
	var out []string
	gsql.WalkExpr(e, func(x gsql.Expr) bool {
		if ref, ok := x.(*gsql.ColumnRef); ok {
			key := strings.ToLower(ref.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, ref.Name)
			}
		}
		return true
	})
	return out
}

// sameAttr reports whether two elements partition on the same base
// attribute (by case-insensitive name, per the shared-set assumption).
func sameAttr(a, b Elem) bool { return strings.EqualFold(a.Attr, b.Attr) }

// ---- canonical forms ----
//
// The reconciliation lattice recognizes the shapes that network
// monitoring partitioning uses in practice (paper Sections 3.3-4.1):
//
//	bare   x             the attribute itself (finest)
//	div    x / c         epoch bucketing (time/60)
//	mask   x & m         subnet masking (srcIP & 0xFFF0)
//	mod    x % c         striping (hash-bucket style)
//	other  anything else (handled by the function-of containment rule)
//
// Shifts are divisions: x>>s = x/2^s for the unsigned attributes
// partitioning uses, which keeps the division sub-lattice closed under
// lcm. Nested chains fold: (x/a)/b = x/(a*b); (x&m1)&m2 = x&(m1&m2);
// (x>>a)>>b = x/2^(a+b); (x%a)%b = x%b when b divides a.

type formKind uint8

const (
	formBare formKind = iota
	formDiv
	formMask
	formMod
	formOther
)

type form struct {
	kind formKind
	c    uint64 // divisor or mask
}

// pow2Shift returns the exponent when the divisor is a power of two.
func (f form) pow2Shift() (uint64, bool) {
	if f.kind == formDiv && f.c&(f.c-1) == 0 {
		return uint64(bits.TrailingZeros64(f.c)), true
	}
	return 0, false
}

// classify extracts the canonical form of an element expression.
func classify(e gsql.Expr) form {
	switch t := e.(type) {
	case *gsql.ColumnRef:
		return form{kind: formBare}
	case *gsql.Binary:
		c, cOK := constOf(t.R)
		if !cOK {
			// Allow the constant on the left for & (commutative).
			if t.Op == gsql.OpBitAnd {
				if cl, ok := constOf(t.L); ok {
					return combineMask(classify(t.R), cl)
				}
			}
			return form{kind: formOther}
		}
		inner := classify(t.L)
		switch t.Op {
		case gsql.OpDiv:
			return combineDiv(inner, c)
		case gsql.OpShr:
			if c >= 64 {
				return form{kind: formOther}
			}
			return combineDiv(inner, uint64(1)<<c)
		case gsql.OpBitAnd:
			return combineMask(inner, c)
		case gsql.OpMod:
			return combineMod(inner, c)
		default:
			return form{kind: formOther}
		}
	default:
		return form{kind: formOther}
	}
}

func combineDiv(inner form, c uint64) form {
	if c == 0 {
		return form{kind: formOther}
	}
	switch inner.kind {
	case formBare:
		if c == 1 {
			return form{kind: formBare}
		}
		return form{kind: formDiv, c: c}
	case formDiv:
		if inner.c != 0 && c > ^uint64(0)/inner.c {
			return form{kind: formOther} // overflow
		}
		return form{kind: formDiv, c: inner.c * c}
	default:
		return form{kind: formOther}
	}
}

func combineMod(inner form, c uint64) form {
	if c == 0 {
		return form{kind: formOther}
	}
	switch inner.kind {
	case formBare:
		return form{kind: formMod, c: c}
	case formMod:
		// (x%a)%b = x%b exactly when b divides a.
		if inner.c%c == 0 {
			return form{kind: formMod, c: c}
		}
		return form{kind: formOther}
	default:
		return form{kind: formOther}
	}
}

func combineMask(inner form, m uint64) form {
	if m == 0 {
		return form{kind: formOther}
	}
	switch inner.kind {
	case formBare:
		return form{kind: formMask, c: m}
	case formMask:
		if inner.c&m == 0 {
			return form{kind: formOther}
		}
		return form{kind: formMask, c: inner.c & m}
	default:
		return form{kind: formOther}
	}
}

func constOf(e gsql.Expr) (uint64, bool) {
	if n, ok := e.(*gsql.NumberLit); ok && !n.IsFloat {
		return n.U, true
	}
	return 0, false
}

// shiftAsMask returns the information-content mask of x/2^s: the bits
// of x that survive.
func shiftAsMask(s uint64) uint64 {
	if s >= 64 {
		return 0
	}
	return ^uint64(0) << s
}

// ---- the coarsening relation ----

// IsCoarseningOf reports whether e is a function of g — i.e. equal
// values of g imply equal values of e, so partitioning by e keeps
// together every set of tuples that agree on g. This is the partition
// compatibility test at the level of single elements.
func IsCoarseningOf(e, g Elem) bool {
	if !sameAttr(e, g) {
		return false
	}
	if gsql.EqualExpr(normalizeAttrRef(e.Expr), normalizeAttrRef(g.Expr)) {
		return true
	}
	gf := classify(g.Expr)
	if gf.kind == formBare {
		return true // any scalar expression of the bare attribute
	}
	ef := classify(e.Expr)
	switch {
	case ef.kind == formDiv && gf.kind == formDiv:
		// x/b is a function of x/a exactly when a divides b: the
		// width-b buckets are aligned unions of width-a buckets.
		return ef.c%gf.c == 0
	case ef.kind == formMask && gf.kind == formMask:
		return ef.c&^gf.c == 0
	case ef.kind == formMask && gf.kind == formDiv:
		// x & m as a function of x/2^s: m must keep no bits below s.
		if s, ok := gf.pow2Shift(); ok {
			return ef.c&^shiftAsMask(s) == 0
		}
		return false
	case ef.kind == formDiv && gf.kind == formMask:
		// x/2^s as a function of x & m: all bits >= s must be in m.
		if s, ok := ef.pow2Shift(); ok {
			return shiftAsMask(s)&^gf.c == 0
		}
		return false
	case ef.kind == formMod && gf.kind == formMod:
		// x%a is a function of x%b exactly when a divides b.
		return gf.c%ef.c == 0
	case ef.kind == formMod && gf.kind == formMask:
		// x%2^k depends only on the low k bits: a function of x&m
		// when m covers them.
		if ef.c&(ef.c-1) == 0 {
			return (ef.c-1)&^gf.c == 0
		}
		return false
	case ef.kind == formMask && gf.kind == formMod:
		// x&m as a function of x%2^k: m must sit inside the low bits.
		if gf.c&(gf.c-1) == 0 {
			return ef.c&^(gf.c-1) == 0
		}
		return false
	}
	// Containment rule: e = h(g) when replacing every occurrence of
	// g's expression inside e removes all attribute references.
	return containsAsFunction(e.Expr, g.Expr)
}

// containsAsFunction reports whether outer can be written as a
// function of inner: every occurrence of the partitioned attribute in
// outer sits inside a subexpression structurally equal to inner.
func containsAsFunction(outer, inner gsql.Expr) bool {
	replaced, _ := replaceSubexpr(outer, inner)
	return len(referencedAttrs(replaced)) == 0
}

// replaceSubexpr substitutes a placeholder for every subtree of e that
// equals target (modulo attribute-reference qualifiers).
func replaceSubexpr(e, target gsql.Expr) (gsql.Expr, bool) {
	if gsql.EqualExpr(normalizeAttrRef(e), normalizeAttrRef(target)) {
		return &gsql.StringLit{S: "\x00hole"}, true
	}
	switch t := e.(type) {
	case *gsql.Unary:
		x, c := replaceSubexpr(t.X, target)
		return &gsql.Unary{Op: t.Op, X: x}, c
	case *gsql.Binary:
		l, c1 := replaceSubexpr(t.L, target)
		r, c2 := replaceSubexpr(t.R, target)
		return &gsql.Binary{Op: t.Op, L: l, R: r}, c1 || c2
	case *gsql.FuncCall:
		changed := false
		args := make([]gsql.Expr, len(t.Args))
		for i, a := range t.Args {
			x, c := replaceSubexpr(a, target)
			args[i] = x
			changed = changed || c
		}
		return &gsql.FuncCall{Name: t.Name, Star: t.Star, Args: args}, changed
	default:
		return gsql.CloneExpr(e), false
	}
}

// normalizeAttrRef strips column-reference qualifiers so that
// TCP.srcIP and srcIP compare equal; partitioning elements identify
// attributes by name under the shared-set assumption.
func normalizeAttrRef(e gsql.Expr) gsql.Expr {
	out, _ := substituteRefs(e, func(ref *gsql.ColumnRef) (gsql.Expr, bool) {
		return &gsql.ColumnRef{Name: strings.ToLower(ref.Name)}, true
	})
	return out
}

func substituteRefs(e gsql.Expr, sub func(*gsql.ColumnRef) (gsql.Expr, bool)) (gsql.Expr, bool) {
	switch t := e.(type) {
	case *gsql.ColumnRef:
		return sub(t)
	case *gsql.NumberLit, *gsql.StringLit, *gsql.ParamRef:
		return gsql.CloneExpr(e), true
	case *gsql.Unary:
		x, ok := substituteRefs(t.X, sub)
		if !ok {
			return nil, false
		}
		return &gsql.Unary{Op: t.Op, X: x}, true
	case *gsql.Binary:
		l, ok := substituteRefs(t.L, sub)
		if !ok {
			return nil, false
		}
		r, ok := substituteRefs(t.R, sub)
		if !ok {
			return nil, false
		}
		return &gsql.Binary{Op: t.Op, L: l, R: r}, true
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(t.Args))
		for i, a := range t.Args {
			x, ok := substituteRefs(a, sub)
			if !ok {
				return nil, false
			}
			args[i] = x
		}
		return &gsql.FuncCall{Name: t.Name, Star: t.Star, Args: args}, true
	default:
		return nil, false
	}
}

// ---- element reconciliation ----

// ReconcileElems computes the "least common denominator" of two
// partitioning elements on the same attribute (paper Section 4.1): the
// finest expression that is a function of both, so that partitioning
// by it satisfies queries requiring either. Examples:
//
//	time/60  with time/90        -> time/180
//	srcIP    with srcIP & 0xFFF0 -> srcIP & 0xFFF0
//	ip & 0xFF00 with ip & 0xFFF0 -> ip & 0xFF00
//
// The second result is false when no common coarsening exists.
func ReconcileElems(a, b Elem) (Elem, bool) {
	if !sameAttr(a, b) {
		return Elem{}, false
	}
	// Fast paths via the coarsening relation (covers identical
	// expressions and function-of containment).
	if IsCoarseningOf(a, b) {
		return a, true
	}
	if IsCoarseningOf(b, a) {
		return b, true
	}
	af, bf := classify(a.Expr), classify(b.Expr)
	attr := &gsql.ColumnRef{Name: a.Attr}
	lit := func(u uint64) gsql.Expr {
		text := fmt.Sprintf("%d", u)
		if u > 255 && bits.OnesCount64(u)+bits.TrailingZeros64(u) >= 16 {
			text = fmt.Sprintf("0x%X", u)
		}
		return &gsql.NumberLit{U: u, Text: text}
	}
	switch {
	case af.kind == formDiv && bf.kind == formDiv:
		// x/lcm(a,b) is a function of both x/a and x/b.
		l := lcm(af.c, bf.c)
		if l == 0 {
			return Elem{}, false
		}
		return Elem{Attr: a.Attr, Expr: &gsql.Binary{Op: gsql.OpDiv, L: attr, R: lit(l)}}, true
	case af.kind == formMask && bf.kind == formMask:
		m := af.c & bf.c
		if m == 0 {
			return Elem{}, false
		}
		return Elem{Attr: a.Attr, Expr: &gsql.Binary{Op: gsql.OpBitAnd, L: attr, R: lit(m)}}, true
	case af.kind == formMask && bf.kind == formDiv:
		return reconcileMaskDiv(a.Attr, af.c, bf, lit, attr)
	case af.kind == formDiv && bf.kind == formMask:
		return reconcileMaskDiv(a.Attr, bf.c, af, lit, attr)
	case af.kind == formMod && bf.kind == formMod:
		// x%gcd(a,b) is a function of both x%a and x%b.
		g := gcd(af.c, bf.c)
		if g <= 1 {
			return Elem{}, false
		}
		return Elem{Attr: a.Attr, Expr: &gsql.Binary{Op: gsql.OpMod, L: attr, R: lit(g)}}, true
	default:
		return Elem{}, false
	}
}

// reconcileMaskDiv handles a mask against a power-of-two division
// (x>>s): the bits above s that the mask keeps serve both.
func reconcileMaskDiv(attrName string, m uint64, div form, lit func(uint64) gsql.Expr, attr gsql.Expr) (Elem, bool) {
	s, ok := div.pow2Shift()
	if !ok {
		return Elem{}, false
	}
	common := m & shiftAsMask(s)
	if common == 0 {
		return Elem{}, false
	}
	return Elem{Attr: attrName, Expr: &gsql.Binary{Op: gsql.OpBitAnd, L: attr, R: lit(common)}}, true
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := gcd(a, b)
	// Guard overflow; partitioning constants are small in practice.
	q := a / g
	if q != 0 && b > ^uint64(0)/q {
		return 0
	}
	return q * b
}
