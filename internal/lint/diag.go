package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"qap/internal/gsql"
	"qap/internal/obs"
)

// Severity orders diagnostics by importance.
type Severity uint8

// Severities, most severe first.
const (
	SevError Severity = iota
	SevWarning
	SevInfo
)

// String renders the severity in lower case.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// MarshalText encodes the severity as its lower-case name in JSON.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes a lower-case severity name.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("lint: unknown severity %q", b)
	}
	return nil
}

// Diagnostic is one lint finding. Field order is the JSON key order
// (encoding/json emits struct fields in declaration order), following
// the obs package's determinism conventions.
type Diagnostic struct {
	// Code is the stable QAP0xx rule code.
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Line/Col locate the construct in the query-set text (1-based);
	// zero when the rule has no source anchor.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Query is the query (= logical DAG node) the finding is about.
	Query   string `json:"query,omitempty"`
	Message string `json:"message"`
	// Section cites the paper section the rule encodes.
	Section string `json:"section,omitempty"`
}

// Pos returns the diagnostic's source position.
func (d Diagnostic) Pos() gsql.Pos { return gsql.Pos{Line: d.Line, Col: d.Col} }

// String renders the diagnostic in the human one-line form:
//
//	3:1: warning QAP002: [heavy_flows] message (paper §3.5.2)
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s %s: ", d.Pos(), d.Severity, d.Code)
	if d.Query != "" {
		fmt.Fprintf(&b, "[%s] ", d.Query)
	}
	b.WriteString(d.Message)
	if d.Section != "" {
		fmt.Fprintf(&b, " (paper §%s)", d.Section)
	}
	return b.String()
}

// Report is a full lint run: schema-versioned, deterministically
// ordered, rendered as JSON or human text.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Source        string       `json:"source,omitempty"` // input label, e.g. a file name
	Diagnostics   []Diagnostic `json:"diagnostics"`
	Errors        int          `json:"errors"`
	Warnings      int          `json:"warnings"`
	Infos         int          `json:"infos"`
}

// finish sorts the diagnostics into the canonical order and fills the
// severity counters. Order: position, then code, then query, then
// message — a total order, so the report is byte-identical run to run.
func (r *Report) finish() {
	sort.SliceStable(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		return a.Message < b.Message
	})
	r.Errors, r.Warnings, r.Infos = 0, 0, 0
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case SevError:
			r.Errors++
		case SevWarning:
			r.Warnings++
		default:
			r.Infos++
		}
	}
	r.SchemaVersion = obs.SchemaVersion
}

// HasErrors reports whether any diagnostic has error severity.
func (r *Report) HasErrors() bool { return r.Errors > 0 }

// JSON renders the report as indented JSON with a trailing newline.
// Key order follows struct declaration order and the diagnostics are
// canonically sorted, so the encoding is deterministic.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Human renders the report as one line per diagnostic plus a summary
// line.
func (r *Report) Human() string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d error(s), %d warning(s), %d info(s)\n", r.Errors, r.Warnings, r.Infos)
	return b.String()
}
