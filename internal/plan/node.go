// Package plan builds and analyzes the logical query DAG for a GSQL
// query set: named queries become nodes (selection/projection,
// tumbling-window aggregation, or two-way equi-join), inter-query
// references become edges, and every output column carries a lineage
// record tracing it back to a scalar expression over a single base
// stream attribute when possible. Lineage is what the partitioning
// analyzer (internal/core) consumes to infer compatible partitioning
// sets (paper Sections 3.5 and 4).
package plan

import (
	"fmt"
	"strings"

	"qap/internal/gsql"
	"qap/internal/schema"
)

// Kind classifies a logical node.
type Kind uint8

// Node kinds.
const (
	KindSource Kind = iota
	KindSelectProject
	KindAggregate
	KindJoin
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindSelectProject:
		return "select/project"
	case KindAggregate:
		return "aggregate"
	case KindJoin:
		return "join"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// BaseRef is the resolution of an output column to a scalar expression
// over exactly one attribute of one base input stream. Expr references
// the attribute as ColumnRef{Qualifier: Stream, Name: Attr}.
type BaseRef struct {
	Stream string
	Attr   string
	Expr   gsql.Expr
}

// String renders the base expression.
func (b *BaseRef) String() string { return b.Expr.String() }

// Lineage describes where an output column's values come from.
type Lineage struct {
	// Base is non-nil when the column is a scalar expression over a
	// single base-stream attribute; nil for aggregate results and
	// multi-attribute expressions ("opaque" columns).
	Base *BaseRef
	// Temporal is true when the column derives from a temporally
	// ordered attribute; temporal columns are excluded from
	// partitioning sets (paper Section 3.5.1).
	Temporal bool
}

// ColDef is one output column of a node.
type ColDef struct {
	Name    string
	Type    schema.Type
	Lineage Lineage
}

// NamedExpr pairs an output name with its defining expression (over
// the node's input columns, or over group/aggregate names in an
// Aggregate's post-projection).
type NamedExpr struct {
	Name string
	Expr gsql.Expr
}

// GroupCol is one GROUP BY term of an aggregation.
type GroupCol struct {
	Name string
	Expr gsql.Expr // over the node's input columns
	// Temporal is true when the expression derives from a temporal
	// attribute; the executor uses the first temporal group column as
	// the tumbling-window epoch.
	Temporal bool
}

// AggDef is one aggregate computed by an aggregation node.
type AggDef struct {
	Name string       // output name of the aggregate value
	Spec gsql.AggSpec // which aggregate
	Arg  gsql.Expr    // argument over input columns; nil for COUNT(*)
}

// String renders the aggregate call.
func (a AggDef) String() string {
	if a.Arg == nil {
		return a.Spec.Name + "(*)"
	}
	return a.Spec.Name + "(" + a.Arg.String() + ")"
}

// Node is one vertex of the logical query DAG.
type Node struct {
	ID        int
	Kind      Kind
	QueryName string // defining query name; stream name for sources
	// Pos is the defining query's source position; zero for sources.
	Pos gsql.Pos

	Inputs  []*Node // children (data providers); len 0/1/2 by kind
	Parents []*Node // consumers

	OutCols []ColDef

	// KindSource.
	Stream *schema.Stream

	// InBind is the binding (alias) name of Inputs[0] for single-input
	// nodes; joins use LeftBind/RightBind instead.
	InBind string

	// KindSelectProject.
	Filter gsql.Expr   // WHERE, over input columns; nil passes all
	Projs  []NamedExpr // output expressions over input columns

	// KindAggregate.
	GroupBy []GroupCol
	Aggs    []AggDef
	// WindowPanes > 1 makes this a pane-based sliding-window
	// aggregation: results merge the WindowPanes most recent panes
	// and slide by one pane.
	WindowPanes uint64
	// Having is evaluated over group names + aggregate names.
	Having gsql.Expr
	// Post maps the aggregate's outputs: expressions over group names
	// and aggregate names, one per OutCol.
	Post []NamedExpr
	// PreFilter is the WHERE clause of an aggregation query, evaluated
	// on input tuples before grouping.
	PreFilter gsql.Expr

	// KindJoin.
	JoinType  gsql.JoinType
	LeftBind  string // binding name (alias) of Inputs[0]
	RightBind string // binding name (alias) of Inputs[1]
	// LeftKeys[i] must equal RightKeys[i] for tuples to join; key
	// expressions are over the respective side's columns (qualified).
	LeftKeys  []gsql.Expr
	RightKeys []gsql.Expr
	// TemporalKey is the index into LeftKeys/RightKeys of the pair
	// derived from temporal attributes (window alignment); -1 if none.
	TemporalKey int
	// LeftFilter/RightFilter are single-side WHERE conjuncts pushed to
	// the inputs; Residual is evaluated on joined pairs.
	LeftFilter, RightFilter, Residual gsql.Expr
	// JoinProjs are the select items over qualified columns.
	JoinProjs []NamedExpr
}

// Col returns the position and definition of an output column by
// case-insensitive name.
func (n *Node) Col(name string) (int, ColDef, bool) {
	for i, c := range n.OutCols {
		if strings.EqualFold(c.Name, name) {
			return i, c, true
		}
	}
	return -1, ColDef{}, false
}

// IsRoot reports whether no other query consumes this node.
func (n *Node) IsRoot() bool { return len(n.Parents) == 0 }

// EpochGroupCol returns the index of the group column the executor
// uses as the tumbling-window epoch, or -1.
func (n *Node) EpochGroupCol() int {
	for i, g := range n.GroupBy {
		if g.Temporal {
			return i
		}
	}
	return -1
}

// label renders a short human-readable description used by the plan
// printer and error messages.
func (n *Node) label() string {
	switch n.Kind {
	case KindSource:
		return "source " + n.Stream.Name
	case KindSelectProject:
		return "select/project " + n.QueryName
	case KindAggregate:
		return "aggregate " + n.QueryName
	case KindJoin:
		return "join " + n.QueryName
	default:
		return fmt.Sprintf("node %d", n.ID)
	}
}

// Graph is the logical query DAG for a query set.
type Graph struct {
	Catalog *schema.Catalog
	// Nodes in topological order: every node appears after all of its
	// inputs; sources come first.
	Nodes  []*Node
	byName map[string]*Node
}

// Node looks up a node by case-insensitive query or stream name.
func (g *Graph) Node(name string) (*Node, bool) {
	n, ok := g.byName[strings.ToLower(name)]
	return n, ok
}

// Roots returns the nodes with no consumers, in topological order.
func (g *Graph) Roots() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.IsRoot() && n.Kind != KindSource {
			out = append(out, n)
		}
	}
	// A degenerate set where a source itself is unread: surface it so
	// the caller can still execute something sensible.
	if len(out) == 0 {
		for _, n := range g.Nodes {
			if n.IsRoot() {
				out = append(out, n)
			}
		}
	}
	return out
}

// Sources returns the source nodes in topological order.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindSource {
			out = append(out, n)
		}
	}
	return out
}

// QueryNodes returns all non-source nodes in topological order.
func (g *Graph) QueryNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind != KindSource {
			out = append(out, n)
		}
	}
	return out
}
