package live

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Splitter is the ingress side of the live backend: one reliable
// session per host, a credit-bounded feed outbox each, and a shared
// inbox of link messages for the collector's replay merge.
type Splitter struct {
	cfg   Config
	hello Hello
	peers []*peer
	links chan *LinkMsg
	errc  chan error
	stop  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
}

// NewSplitter builds a splitter for one host address per leaf island.
// hello is the session template (BatchSize, Streams, Fingerprint);
// Host and ResumeLink are stamped per peer.
func NewSplitter(cfg Config, hello Hello, addrs []string) *Splitter {
	s := &Splitter{
		cfg:   cfg,
		hello: hello,
		links: make(chan *LinkMsg, 2*len(addrs)+2),
		errc:  make(chan error, len(addrs)+1),
		stop:  make(chan struct{}),
	}
	for h, addr := range addrs {
		s.peers = append(s.peers, &peer{
			sp:   s,
			host: h,
			addr: addr,
			out:  newOutbox(cfg.credits()),
		})
	}
	return s
}

// Start launches the per-host connection loops.
func (s *Splitter) Start() {
	for _, p := range s.peers {
		s.wg.Add(1)
		go p.run()
	}
}

// SendFeed queues one feed message for host, blocking while the
// host's credit window is exhausted — the backpressure that bounds
// splitter memory under a slow consumer. m.Seq is assigned here.
func (s *Splitter) SendFeed(host int, m *FeedMsg) error {
	p := s.peers[host]
	deadline := time.Now().Add(s.cfg.timeout()) //qap:allow walltime -- credit-stall deadline; transport pacing never shapes outputs
	_, err := p.out.append(frameFeed, deadline, func(seq uint64, dst []byte) []byte {
		m.Seq = seq
		return m.encode(dst)
	})
	if err != nil {
		return fmt.Errorf("live: host %d: feed: %w", host, err)
	}
	return nil
}

// Links is the shared stream of decoded link messages, each stamped
// with its host, delivered in per-host sequence order.
func (s *Splitter) Links() <-chan *LinkMsg { return s.links }

// Errs delivers fatal per-host errors (retries exhausted, protocol
// violations).
func (s *Splitter) Errs() <-chan error { return s.errc }

// Result returns host's final result payload (remote mode), valid
// after Wait.
func (s *Splitter) Result(host int) []byte { return s.peers[host].result }

// Wait blocks until every peer loop has exited — each host finished
// (done link seen, result received if promised) or failed.
func (s *Splitter) Wait(d time.Duration) error {
	ch := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return nil
	case <-time.After(d): //qap:allow walltime -- drain guard; a timeout fails the wait, never shapes outputs
		return fmt.Errorf("live: splitter: peers still draining after %s", d)
	}
}

// Close aborts every peer and waits for them to exit.
func (s *Splitter) Close() {
	s.once.Do(func() { close(s.stop) })
	for _, p := range s.peers {
		p.out.close()
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	s.wg.Wait()
}

func (s *Splitter) fatal(err error) {
	select {
	case s.errc <- err:
	default:
	}
}

// peer is one host's connection loop.
type peer struct {
	sp   *Splitter
	host int
	addr string
	out  *outbox

	// linkSeen is the last link sequence applied (delivered to the
	// shared inbox); it is the resume point sent in each Hello.
	linkSeen   uint64
	done       bool
	wantResult bool
	result     []byte
	attempts   int
	fails      int

	mu   sync.Mutex
	conn net.Conn
}

func (p *peer) finished() bool {
	return p.done && (!p.wantResult || p.result != nil)
}

func (p *peer) stopping() bool {
	select {
	case <-p.sp.stop:
		return true
	default:
		return false
	}
}

func (p *peer) run() {
	defer p.sp.wg.Done()
	dial := p.sp.cfg.dialFn()
	for {
		if p.stopping() {
			return
		}
		attempt := p.attempts
		p.attempts++
		conn, err := dial(p.host, attempt, p.addr)
		if err == nil {
			p.mu.Lock()
			p.conn = conn
			p.mu.Unlock()
			err = p.session(conn)
			p.mu.Lock()
			p.conn = nil
			p.mu.Unlock()
			conn.Close()
		}
		if p.finished() || p.stopping() {
			return
		}
		p.fails++
		if p.fails >= p.sp.cfg.maxAttempts() {
			p.sp.fatal(fmt.Errorf("live: host %d: giving up after %d consecutive failed attempts (link seq %d): %w",
				p.host, p.fails, p.linkSeen, err))
			return
		}
		backoff := time.Duration(p.fails) * 5 * time.Millisecond
		if backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
		select {
		case <-time.After(backoff): //qap:allow walltime -- reconnect backoff; recovery restores identical outputs
		case <-p.sp.stop:
			return
		}
	}
}

// session runs the handshake and the link loop on one connection. A
// nil return means the host finished cleanly.
func (p *peer) session(conn net.Conn) error {
	to := p.sp.cfg.timeout()
	hello := p.sp.hello
	hello.Version = ProtocolVersion
	hello.Host = p.host
	hello.ResumeLink = p.linkSeen
	conn.SetWriteDeadline(time.Now().Add(to)) //qap:allow walltime -- I/O deadline; transport pacing never shapes outputs
	if _, err := writeFrame(conn, nil, frameHello, hello.encode(nil)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(to)) //qap:allow walltime -- I/O deadline; transport pacing never shapes outputs
	typ, payload, buf, err := readFrame(conn, p.sp.cfg.maxFrame(), nil)
	if err != nil {
		return err
	}
	if typ != frameWelcome {
		return fmt.Errorf("live: host %d: expected welcome, got frame type %d", p.host, typ)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return err
	}
	if w.Version != ProtocolVersion {
		return fmt.Errorf("live: host %d: protocol version %d, want %d", p.host, w.Version, ProtocolVersion)
	}
	p.wantResult = w.HasResult
	p.out.rewind(w.ResumeFeed)
	p.fails = 0

	s := newSession(conn, p.sp.cfg, p.out, frameLinkAck)
	s.start()
	defer s.shutdown()
	for {
		typ, payload, buf, err = s.read(buf)
		if err != nil {
			if p.finished() {
				return nil
			}
			if werr := s.writeErr(); werr != nil {
				return werr
			}
			return err
		}
		switch typ {
		case frameFeedAck:
			seq, err := decodeAck(payload)
			if err != nil {
				return err
			}
			p.out.ack(seq)
		case frameLink, frameResult:
			seq, err := decodeSeq(payload)
			if err != nil {
				return err
			}
			if seq <= p.linkSeen {
				// A retransmit raced our ack: already applied, re-ack.
				s.setAck(p.linkSeen)
				continue
			}
			if seq != p.linkSeen+1 {
				return fmt.Errorf("live: host %d: link gap: got seq %d, want %d", p.host, seq, p.linkSeen+1)
			}
			if typ == frameLink {
				m, err := decodeLink(payload)
				if err != nil {
					return err
				}
				m.Host = p.host
				select {
				case p.sp.links <- m:
				case <-p.sp.stop:
					return errStopped
				}
				if m.Done {
					p.done = true
				}
			} else {
				p.result = append([]byte(nil), payload[8:]...)
			}
			p.linkSeen = seq
			s.setAck(seq)
		default:
			return fmt.Errorf("live: host %d: unexpected frame type %d", p.host, typ)
		}
	}
}
