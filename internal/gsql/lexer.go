package gsql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer tokenizes GSQL source text. Comments start with '--' or '#'
// followed by a space (bare #NAME# is a parameter) and run to the end
// of the line.
type Lexer struct {
	src  string
	pos  int
	line int // 0-based
	col  int // 0-based
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	startLine, startCol := l.line+1, l.col+1
	mk := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: startLine, Col: startCol}
	}
	if l.eof() {
		return mk(TokEOF, ""), nil
	}
	ch := l.src[l.pos]
	switch {
	case isIdentStart(rune(ch)):
		return mk(TokIdent, l.ident()), nil
	case ch >= '0' && ch <= '9':
		num, err := l.number()
		if err != nil {
			return Token{}, Errorf(Pos{Line: startLine, Col: startCol}, "%v", err)
		}
		return mk(TokNumber, num), nil
	case ch == '\'' || ch == '"':
		s, err := l.stringLit(ch)
		if err != nil {
			return Token{}, Errorf(Pos{Line: startLine, Col: startCol}, "%v", err)
		}
		return mk(TokString, s), nil
	case ch == '#':
		p, err := l.param()
		if err != nil {
			return Token{}, Errorf(Pos{Line: startLine, Col: startCol}, "%v", err)
		}
		return mk(TokParam, p), nil
	}
	// Operators and punctuation.
	two := func(k TokKind) (Token, error) { l.advance(2); return mk(k, ""), nil }
	one := func(k TokKind) (Token, error) { l.advance(1); return mk(k, ""), nil }
	if l.pos+1 < len(l.src) {
		switch l.src[l.pos : l.pos+2] {
		case "<<":
			return two(TokShl)
		case ">>":
			return two(TokShr)
		case "<=":
			return two(TokLe)
		case ">=":
			return two(TokGe)
		case "!=", "<>":
			return two(TokNeq)
		}
	}
	switch ch {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case ',':
		return one(TokComma)
	case '.':
		return one(TokDot)
	case ';':
		return one(TokSemi)
	case ':':
		return one(TokColon)
	case '*':
		return one(TokStar)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '&':
		return one(TokAmp)
	case '|':
		return one(TokPipe)
	case '^':
		return one(TokCaret)
	case '~':
		return one(TokTilde)
	case '=':
		return one(TokEq)
	case '<':
		return one(TokLt)
	case '>':
		return one(TokGt)
	}
	return Token{}, Errorf(Pos{Line: startLine, Col: startCol}, "unexpected character %q", ch)
}

// Tokens lexes the entire input, for testing.
func Tokens(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) eof() bool { return l.pos >= len(l.src) }

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 0
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for !l.eof() {
		ch := l.src[l.pos]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance(1)
		case ch == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			l.skipLine()
		case ch == '#' && !l.paramAhead():
			l.skipLine()
		default:
			return
		}
	}
}

// paramAhead reports whether the '#' at the current position begins a
// #NAME# parameter rather than a comment.
func (l *Lexer) paramAhead() bool {
	i := l.pos + 1
	if i >= len(l.src) || !isIdentStart(rune(l.src[i])) {
		return false
	}
	for i < len(l.src) && isIdentPart(rune(l.src[i])) {
		i++
	}
	return i < len(l.src) && l.src[i] == '#'
}

func (l *Lexer) skipLine() {
	for !l.eof() && l.src[l.pos] != '\n' {
		l.advance(1)
	}
}

func (l *Lexer) ident() string {
	start := l.pos
	for !l.eof() && isIdentPart(rune(l.src[l.pos])) {
		l.advance(1)
	}
	return l.src[start:l.pos]
}

func (l *Lexer) number() (string, error) {
	start := l.pos
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.advance(2)
		n := 0
		for !l.eof() && isHexDigit(l.src[l.pos]) {
			l.advance(1)
			n++
		}
		if n == 0 {
			return "", fmt.Errorf("malformed hex literal")
		}
		return l.src[start:l.pos], nil
	}
	for !l.eof() && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.advance(1)
	}
	// Fractional part; a '.' must be followed by a digit to count as
	// part of the number (so "1." is "1" then TokDot).
	if !l.eof() && l.src[l.pos] == '.' && l.pos+1 < len(l.src) &&
		l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.advance(1)
		for !l.eof() && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.advance(1)
		}
	}
	return l.src[start:l.pos], nil
}

func (l *Lexer) stringLit(quote byte) (string, error) {
	l.advance(1) // opening quote
	var b strings.Builder
	for !l.eof() {
		ch := l.src[l.pos]
		if ch == quote {
			l.advance(1)
			return b.String(), nil
		}
		if ch == '\n' {
			return "", fmt.Errorf("unterminated string literal")
		}
		if ch == '\\' && l.pos+1 < len(l.src) {
			l.advance(1)
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'', '"':
				b.WriteByte(esc)
			default:
				return "", fmt.Errorf("unknown escape \\%c", esc)
			}
			l.advance(1)
			continue
		}
		b.WriteByte(ch)
		l.advance(1)
	}
	return "", fmt.Errorf("unterminated string literal")
}

func (l *Lexer) param() (string, error) {
	l.advance(1) // '#'
	name := l.ident()
	if name == "" {
		return "", fmt.Errorf("empty parameter name")
	}
	if l.eof() || l.src[l.pos] != '#' {
		return "", fmt.Errorf("parameter #%s not terminated with '#'", name)
	}
	l.advance(1)
	return name, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
func isHexDigit(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}
