package prove_test

import (
	"bytes"
	"strings"
	"testing"

	"qap"
	"qap/internal/core"
	"qap/internal/lint"
	"qap/internal/plan"
	"qap/internal/prove"
)

// figure1 is the paper's Section 3.2 / Figure 1 DAG: two stacked
// aggregations and a cross-epoch self-join.
const figure1 = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP

query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1
`

// filtered adds a universal selection below an aggregation.
const filtered = `
query syns:
SELECT time, srcIP, destIP, len
FROM TCP
WHERE flags & 0x2 > 0

query syn_counts:
SELECT tb, srcIP, COUNT(*) as cnt
FROM syns
GROUP BY time/60 as tb, srcIP
`

// opaqueGroup groups on an aggregate result only, so heavy is
// unpartitionable by any stream partitioning.
const opaqueGroup = `
query flows:
SELECT tb, srcIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP

query heavy:
SELECT cnt, COUNT(*) as n
FROM flows
GROUP BY cnt
`

func load(t *testing.T, queries string) *qap.System {
	t.Helper()
	sys, err := qap.Load(qap.TCPSchemaDDL, queries)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// provenVerdict extracts one node's verdict from a certificate.
func provenVerdict(t *testing.T, c *prove.Certificate, node string) string {
	t.Helper()
	for _, np := range c.Nodes {
		if strings.EqualFold(np.Node, node) {
			return np.Verdict
		}
	}
	t.Fatalf("certificate has no proof for node %s", node)
	return ""
}

// TestProveVerify proves each workload under several candidate sets
// and checks the verifier accepts and the verdicts agree with the
// independent core inference.
func TestProveVerify(t *testing.T) {
	sets := []string{"", "srcIP", "srcIP & 0xFFF0", "destIP", "srcIP, destIP", "time/60"}
	for _, queries := range []string{figure1, filtered, opaqueGroup} {
		sys := load(t, queries)
		for _, s := range sets {
			ps := qap.MustParseSet(s)
			cert := prove.Prove(sys.Graph, ps)
			if err := prove.Verify(sys.Graph, cert); err != nil {
				t.Errorf("set %q: verifier rejects the prover's own certificate: %v", s, err)
				continue
			}
			for _, n := range sys.Graph.QueryNodes() {
				want := prove.VerdictCentralize
				if certEligible(ps, n) {
					want = prove.VerdictPartitioned
				}
				if got := provenVerdict(t, cert, n.QueryName); got != want {
					t.Errorf("set %q node %s: verdict %s, core says %s", s, n.QueryName, got, want)
				}
			}
		}
	}
}

// certEligible is the expected verdict predicate: core.Distributable,
// except that universal nodes tolerate the empty set's round robin
// (matching the physical builder; see the Prove doc comment).
func certEligible(ps core.Set, n *plan.Node) bool {
	if n.Kind == plan.KindSource {
		return true
	}
	if !core.Compatible(ps, n) && !(ps.IsEmpty() && n.Kind == plan.KindSelectProject) {
		return false
	}
	for _, in := range n.Inputs {
		if !certEligible(ps, in) {
			return false
		}
	}
	return true
}

// TestVerdicts pins the expected verdicts for the Figure 1 DAG under
// the paper's discussion sets.
func TestVerdicts(t *testing.T) {
	sys := load(t, figure1)
	cases := []struct {
		set   string
		flows string
		pairs string
	}{
		{"srcIP", prove.VerdictPartitioned, prove.VerdictPartitioned},
		{"srcIP & 0xFFF0", prove.VerdictPartitioned, prove.VerdictPartitioned},
		{"destIP", prove.VerdictPartitioned, prove.VerdictCentralize},
		{"srcIP, destIP", prove.VerdictPartitioned, prove.VerdictCentralize},
		{"", prove.VerdictCentralize, prove.VerdictCentralize},
	}
	for _, tc := range cases {
		cert := prove.Prove(sys.Graph, qap.MustParseSet(tc.set))
		if err := prove.Verify(sys.Graph, cert); err != nil {
			t.Fatalf("set %q: %v", tc.set, err)
		}
		if got := provenVerdict(t, cert, "flows"); got != tc.flows {
			t.Errorf("set %q: flows verdict %s, want %s", tc.set, got, tc.flows)
		}
		if got := provenVerdict(t, cert, "flow_pairs"); got != tc.pairs {
			t.Errorf("set %q: flow_pairs verdict %s, want %s", tc.set, got, tc.pairs)
		}
	}
	// The unpartitionable workload must carry a QAP002 step.
	sys = load(t, opaqueGroup)
	cert := prove.Prove(sys.Graph, qap.MustParseSet("srcIP"))
	if err := prove.Verify(sys.Graph, cert); err != nil {
		t.Fatal(err)
	}
	if got := provenVerdict(t, cert, "heavy"); got != prove.VerdictCentralize {
		t.Errorf("heavy verdict %s, want %s", got, prove.VerdictCentralize)
	}
	found := false
	for _, np := range cert.Nodes {
		for _, st := range np.Steps {
			if st.Rule == prove.RuleUnpartitionable && st.Code != lint.CodeUnpartitionable {
				t.Errorf("unpartitionable step carries code %q, want %s", st.Code, lint.CodeUnpartitionable)
			}
			if np.Node == "heavy" && st.Rule == prove.RuleUnpartitionable {
				found = true
			}
		}
	}
	if !found {
		t.Error("heavy's derivation has no unpartitionable step")
	}
}

// TestRoundTrip checks ParseCertificate(CanonicalJSON) reproduces the
// certificate byte-for-byte and the reparse still verifies.
func TestRoundTrip(t *testing.T) {
	sys := load(t, figure1)
	cert := prove.Prove(sys.Graph, qap.MustParseSet("srcIP & 0xFFF0"))
	b, err := cert.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := prove.ParseCertificate(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := prove.Verify(sys.Graph, back); err != nil {
		t.Fatalf("reparsed certificate rejected: %v", err)
	}
	b2, err := back.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("canonical bytes changed across a parse round trip")
	}
}

// TestHuman smoke-checks the human rendering.
func TestHuman(t *testing.T) {
	sys := load(t, figure1)
	cert := prove.Prove(sys.Graph, qap.MustParseSet("srcIP"))
	h := cert.Human()
	for _, want := range []string{"node flows", prove.VerdictPartitioned, "§3.5.2", "QAP003", "requires srcIP"} {
		if !strings.Contains(h, want) {
			t.Errorf("human rendering missing %q:\n%s", want, h)
		}
	}
}

// TestRuleRegistry keeps the prover's rule registry tied to the lint
// code registry: every code-bearing rule cites the code's registered
// paper section.
func TestRuleRegistry(t *testing.T) {
	sys := load(t, figure1)
	cert := prove.Prove(sys.Graph, qap.MustParseSet("srcIP"))
	sections := map[string]string{}
	for _, c := range lint.Codes {
		sections[c.Code] = c.Section
	}
	for _, np := range cert.Nodes {
		for _, st := range np.Steps {
			if st.Section == "" {
				t.Errorf("step rule %q has no paper section", st.Rule)
			}
			if st.Code == "" {
				continue
			}
			want, ok := sections[st.Code]
			if !ok {
				t.Errorf("step rule %q cites unregistered code %q", st.Rule, st.Code)
			} else if st.Section != want {
				t.Errorf("rule %q cites section %q for %s; lint registry says %q", st.Rule, st.Section, st.Code, want)
			}
		}
	}
}

// TestFingerprintBinds checks a certificate is rejected against a
// different plan.
func TestFingerprintBinds(t *testing.T) {
	sys1 := load(t, figure1)
	sys2 := load(t, filtered)
	cert := prove.Prove(sys1.Graph, qap.MustParseSet("srcIP"))
	if err := prove.Verify(sys2.Graph, cert); err == nil {
		t.Error("certificate for one plan verified against another")
	}
}
