// Per-stream partitioning (the paper's stated future work): two input
// streams with their own query groups plus a cross-stream join on
// differently named attributes. The shared-set assumption cannot
// partition this workload at all — srcIP and clientIP never reconcile —
// but the per-stream analysis assigns each stream its own set,
// position-aligned so the join's matching tuples still co-locate.
package main

import (
	"fmt"
	"log"

	"qap"
)

const ddl = `
TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)
DNS(time increasing, clientIP, server, clientPort, qtype, size, flags, qseq)`

const queries = `
query tcp_flows:
SELECT tb, srcIP, destIP, COUNT(*) AS pkts, SUM(len) AS bytes
FROM TCP GROUP BY time/60 AS tb, srcIP, destIP

query dns_volume:
SELECT tb, clientIP, COUNT(*) AS lookups
FROM DNS GROUP BY time/60 AS tb, clientIP

query lookups_then_traffic:
SELECT TCP.time, TCP.srcIP, DNS.server, TCP.len + DNS.size AS effort
FROM TCP JOIN DNS
WHERE TCP.time = DNS.time AND TCP.srcIP = DNS.clientIP
  AND TCP.srcPort = DNS.clientPort AND TCP.seq = DNS.qseq`

func main() {
	sys, err := qap.Load(ddl, queries)
	if err != nil {
		log.Fatal(err)
	}

	// The shared-set analysis cannot satisfy both streams' queries.
	shared, err := sys.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared-set analysis:  %s\n", shared.Best)

	per, err := sys.AnalyzePerStream(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-stream analysis:  %s\n", per.Sets)
	fmt.Printf("cross-stream joins aligned: %v\n\n", per.CrossJoins)

	dep, err := sys.Deploy(qap.DeployConfig{
		Hosts:     4,
		PerStream: per.Sets,
		Costs:     qap.CostConfig{CapacityPerSec: 6000},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two traces, one per stream, interleaved in global time order.
	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 120
	cfg.SrcHosts, cfg.DstHosts = 5000, 3000
	tcp := qap.GenerateTrace(cfg)
	cfg.Seed = 9
	dns := qap.GenerateTrace(cfg)

	res, err := dep.RunStreams(map[string][]qap.Packet{
		"TCP": tcp.Packets,
		"DNS": dns.Packets,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"tcp_flows", "dns_volume", "lookups_then_traffic"} {
		fmt.Printf("%-22s %6d rows\n", name, len(res.Outputs[name]))
	}
	fmt.Println("\nper-host load:")
	fmt.Print(res.Metrics.String())
}
