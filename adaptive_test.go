package qap

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"qap/internal/netgen"
)

// TestDriftScenarioTriggersAndRepartitions is the acceptance check for
// the adaptive controller: under the default skew-shift trace the
// deployed (pre-drift optimal) set's measured load must blow through
// the Section 4.2.1 bound, the trigger must fire in the drifted
// phase, the refreshed decision must flip the partitioning, and the
// post-switch measured max-host load must come back inside the
// refreshed bound.
func TestDriftScenarioTriggersAndRepartitions(t *testing.T) {
	sc := DefaultDriftScenario()
	rep, ares, err := RunDriftExperiment(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !ares.InitialSet.Equal(MustParseSet("srcIP")) {
		t.Fatalf("pre-drift optimal = %s, want (srcIP)", ares.InitialSet)
	}
	// Phase 2 starts at t=40s: windows 4..7 under 10s windows. The
	// trigger must fire inside the drifted phase, not before it.
	phase2 := sc.Trace.Phases[0].DurationSec / sc.LoadWindowSec
	if ares.TriggerWindow < phase2 {
		t.Fatalf("trigger fired at window %d (rate %.0f, bound %.0f), before the drift at window %d",
			ares.TriggerWindow, ares.TriggerRate, ares.Bound, phase2)
	}
	if ares.TriggerRate <= ares.TriggerFactor*ares.Bound {
		t.Errorf("trigger rate %.0f does not exceed %.2f x bound %.0f",
			ares.TriggerRate, ares.TriggerFactor, ares.Bound)
	}
	if !ares.Repartitioned || !ares.FinalSet.Equal(MustParseSet("destIP")) {
		t.Fatalf("repartitioned=%v final=%s, want switch to (destIP)", ares.Repartitioned, ares.FinalSet)
	}
	if !ares.WithinBoundAfterSwitch() {
		t.Errorf("post-switch peak %.0f exceeds %.2f x refreshed bound %.0f",
			ares.PostSwitchPeak, ares.TriggerFactor, ares.NewBound)
	}
	if ares.PostSwitchPeak <= 0 {
		t.Error("post-switch peak not measured")
	}

	// The report mirrors the run and the per-window rows cover the
	// whole monitored series with the switch reflected after the
	// trigger window.
	if rep.TriggerWindow != ares.TriggerWindow || rep.InitialSet != ares.InitialSet.String() ||
		rep.FinalSet != ares.FinalSet.String() || !rep.WithinBoundAfterSwitch {
		t.Errorf("report disagrees with the run: %+v", rep)
	}
	if len(rep.Rows) != len(ares.Initial.LoadSeries) {
		t.Fatalf("report rows %d, want %d", len(rep.Rows), len(ares.Initial.LoadSeries))
	}
	for _, row := range rep.Rows {
		if row.AdaptiveUsesFinalSet != (row.Window > ares.TriggerWindow) {
			t.Errorf("window %d: adaptive_uses_final_set = %v", row.Window, row.AdaptiveUsesFinalSet)
		}
		if !row.AdaptiveUsesFinalSet && row.AdaptiveMaxHostBps != row.StaticMaxHostBps {
			t.Errorf("window %d: pre-switch adaptive load %.0f != static %.0f",
				row.Window, row.AdaptiveMaxHostBps, row.StaticMaxHostBps)
		}
	}
}

// canonOut renders outputs order-insensitively (per query, sorted row
// renderings): batched execution may permute join probe order within a
// round, so cross-batch-size equivalence is canonical, mirroring the
// cluster-level batch gate.
func canonOut(outputs map[string][]Tuple) map[string][]string {
	out := make(map[string][]string, len(outputs))
	for name, rows := range outputs { //qap:allow maprange -- per-key sort; map rebuilt key-for-key
		rs := make([]string, len(rows))
		for i, r := range rows {
			rs[i] = r.String()
		}
		sort.Strings(rs)
		out[name] = rs
	}
	return out
}

// sameIntegerLoad asserts two load series agree on every deterministic
// integer counter (network tuples/bytes, IPC tuples, processed tuples)
// and window geometry; CPUUnits is float-summation-order sensitive
// across batch sizes and is compared within tolerance.
func sameIntegerLoad(t *testing.T, name string, want, got []LoadWindow) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d windows, want %d", name, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Window != g.Window || w.StartSec != g.StartSec || w.EndSec != g.EndSec || len(w.Hosts) != len(g.Hosts) {
			t.Fatalf("%s: window %d geometry differs: %+v vs %+v", name, i, w, g)
		}
		for h := range w.Hosts {
			wh, gh := w.Hosts[h], g.Hosts[h]
			if wh.NetTuplesIn != gh.NetTuplesIn || wh.NetBytesIn != gh.NetBytesIn ||
				wh.IPCTuplesIn != gh.IPCTuplesIn || wh.Tuples != gh.Tuples {
				t.Errorf("%s: window %d host %d integer counters differ:\n  want %+v\n  got  %+v", name, i, h, wh, gh)
			}
			if d := math.Abs(wh.CPUUnits - gh.CPUUnits); d > 1e-9*math.Max(math.Abs(wh.CPUUnits), 1) {
				t.Errorf("%s: window %d host %d CPUUnits differ beyond tolerance: %v vs %v", name, i, h, wh.CPUUnits, gh.CPUUnits)
			}
		}
	}
}

// TestAdaptiveRunDeterministicAndMatchesColdRestart pins the
// repartitioning protocol's equivalence claims at the public API,
// sweeping workers {1,4} x batch {1,256}:
//
//   - Within every cell, the adapted run is byte-identical to a cold
//     restart of the post-switch set over the same streams with the
//     same engine configuration.
//   - Across cells, the trigger decision (window, rate, switch time,
//     chosen set) is bit-identical — the monitoring counters it reads
//     are integers — and outputs/metrics agree canonically, exactly
//     as the cluster-level engine gates promise.
func TestAdaptiveRunDeterministicAndMatchesColdRestart(t *testing.T) {
	sc := DefaultDriftScenario()
	sys := MustLoad(netgen.SchemaDDL, DriftQuerySet)
	tr := netgen.Generate(sc.Trace)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	stats, err := sys.MeasureStats(map[string][]netgen.Packet{
		"TCP": tr.Packets[:len(tr.Packets)/3]})
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := sys.Analyze(stats)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers, batch int) *AdaptiveResult {
		t.Helper()
		ares, err := sys.RunAdaptive(AdaptiveConfig{
			Deploy: DeployConfig{
				Hosts:             sc.Hosts,
				PartitionsPerHost: sc.PartitionsPerHost,
				Partitioning:      analysis.Best,
				DisablePartialAgg: true,
				Workers:           workers,
				BatchSize:         batch,
			},
			Stats:         stats,
			Analysis:      analysis,
			TriggerFactor: sc.TriggerFactor,
			LoadWindowSec: sc.LoadWindowSec,
		}, streams)
		if err != nil {
			t.Fatal(err)
		}
		return ares
	}

	want := run(1, 1)
	if !want.Repartitioned {
		t.Fatalf("scenario did not repartition (trigger window %d)", want.TriggerWindow)
	}
	for _, cell := range []struct{ workers, batch int }{{1, 1}, {1, 256}, {4, 1}, {4, 256}} {
		name := fmt.Sprintf("workers=%d batch=%d", cell.workers, cell.batch)
		got := run(cell.workers, cell.batch)

		// The trigger decision must not move a byte across engines.
		if got.TriggerWindow != want.TriggerWindow || got.TriggerRate != want.TriggerRate ||
			got.SwitchTimeSec != want.SwitchTimeSec || !got.FinalSet.Equal(want.FinalSet) ||
			got.NewBound != want.NewBound {
			t.Errorf("%s: trigger decision diverged: window %d rate %v switch %d set %s",
				name, got.TriggerWindow, got.TriggerRate, got.SwitchTimeSec, got.FinalSet)
		}
		for _, p := range []struct {
			kind string
			a, b *RunResult
		}{{"final", got.Final, want.Final}, {"initial", got.Initial, want.Initial}} {
			if !reflect.DeepEqual(canonOut(p.a.Outputs), canonOut(p.b.Outputs)) ||
				!reflect.DeepEqual(p.a.NodeRows, p.b.NodeRows) {
				t.Errorf("%s: %s canonical outputs differ", name, p.kind)
			}
			sameIntegerLoad(t, name+" "+p.kind, p.b.LoadSeries, p.a.LoadSeries)
		}

		// Cold restart with the same engine configuration: a fresh
		// deployment of the post-switch set over the same streams must
		// reproduce the adapted run byte for byte.
		dep, err := sys.Deploy(DeployConfig{
			Hosts:             sc.Hosts,
			PartitionsPerHost: sc.PartitionsPerHost,
			Partitioning:      got.FinalSet,
			DisablePartialAgg: true,
			LoadWindowSec:     sc.LoadWindowSec,
			Workers:           cell.workers,
			BatchSize:         cell.batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := dep.RunStreams(streams)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold.Outputs, got.Final.Outputs) ||
			!reflect.DeepEqual(cold.NodeRows, got.Final.NodeRows) ||
			!reflect.DeepEqual(*cold.Metrics, *got.Final.Metrics) ||
			!reflect.DeepEqual(cold.LoadSeries, got.Final.LoadSeries) {
			t.Errorf("%s: adapted run is not byte-identical to a cold restart on the final set", name)
		}
	}
}

// TestAdaptiveNoDriftNoTrigger: with representative deploy-time stats
// and a drift-free trace, the monitored load stays inside the bound
// and the controller leaves the deployment alone.
func TestAdaptiveNoDriftNoTrigger(t *testing.T) {
	cfg := netgen.DefaultConfig()
	cfg.DurationSec = 60
	cfg.PacketsPerSec = 400
	sys := MustLoad(netgen.SchemaDDL, DriftQuerySet)
	tr := netgen.Generate(cfg)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	stats, err := sys.MeasureStats(streams)
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := sys.Analyze(stats)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := sys.RunAdaptive(AdaptiveConfig{
		Deploy: DeployConfig{
			Hosts:             4,
			PartitionsPerHost: 2,
			Partitioning:      analysis.Best,
			DisablePartialAgg: true,
		},
		Stats:         stats,
		Analysis:      analysis,
		TriggerFactor: 1.5,
		LoadWindowSec: 10,
	}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if ares.TriggerWindow != -1 || ares.Repartitioned {
		t.Fatalf("trigger fired on a drift-free trace: window %d rate %.0f bound %.0f",
			ares.TriggerWindow, ares.TriggerRate, ares.Bound)
	}
	if ares.Final != ares.Initial || !ares.FinalSet.Equal(ares.InitialSet) {
		t.Error("no-trigger run should return the initial deployment unchanged")
	}
}
