package exec

import (
	"slices"
	"sort"
	"strings"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// FilterProject applies an optional predicate and an optional
// projection; with both nil it is a pass-through.
type FilterProject struct {
	Filter EvalFunc   // nil passes all tuples
	Projs  []EvalFunc // nil forwards tuples unchanged
	Out    Consumer

	lastWM  uint64
	wmSeen  bool
	flushed bool

	// Batched-path scratch, reused across PushBatch calls. Containers
	// only — output tuple backing arrays are allocated per batch since
	// downstream operators may retain the tuples.
	filtBuf Batch
	outBuf  Batch
}

// Push implements Consumer.
func (o *FilterProject) Push(t Tuple) {
	if o.Filter != nil && !o.Filter(t).AsBool() {
		return
	}
	if o.Projs == nil {
		o.Out.Push(t)
		return
	}
	out := make(Tuple, len(o.Projs))
	for i, p := range o.Projs {
		out[i] = p(t)
	}
	o.Out.Push(out)
}

// PushBatch implements BatchConsumer: the predicate runs over the
// whole batch into a reused scratch run, then the projection
// materializes every surviving row out of a single backing allocation
// instead of one per tuple.
//
//qap:hot
func (o *FilterProject) PushBatch(b Batch) {
	pass := b
	if o.Filter != nil {
		pass = o.filtBuf[:0]
		for _, t := range b {
			if o.Filter(t).AsBool() {
				pass = append(pass, t)
			}
		}
		o.filtBuf = pass
	}
	if len(pass) == 0 {
		return
	}
	if o.Projs == nil {
		PushAll(o.Out, pass)
		return
	}
	np := len(o.Projs)
	backing := make([]sqlval.Value, len(pass)*np) //qap:allow hotalloc -- deliberate: one backing per batch, retained by downstream consumers
	out := o.outBuf[:0]
	for i, t := range pass {
		row := backing[i*np : (i+1)*np : (i+1)*np]
		for k, p := range o.Projs {
			row[k] = p(t)
		}
		out = append(out, Tuple(row))
	}
	o.outBuf = out
	PushAll(o.Out, out)
}

// Advance implements Consumer.
func (o *FilterProject) Advance(wm uint64) {
	if o.wmSeen && wm <= o.lastWM {
		return
	}
	o.lastWM, o.wmSeen = wm, true
	o.Out.Advance(wm)
}

// Flush implements Consumer.
func (o *FilterProject) Flush() {
	if o.flushed {
		return
	}
	o.flushed = true
	o.Out.Flush()
}

// Union merges several input streams into one output. Create it with
// NewUnion, then attach each upstream to its own port (Port(i)). The
// union forwards the *minimum* watermark over its ports — an upstream
// aggregate flushing epoch e on its own Advance must deliver those
// rows before a downstream consumer (a super-aggregate, say) closes
// epoch e, so the union may not advance until every input has. Flush
// is likewise forwarded only after every port has flushed.
type Union struct {
	Out Consumer

	ports       []*unionPort
	lastWM      uint64
	wmForwarded bool
	flushed     int
}

// NewUnion creates a union with n input ports.
func NewUnion(n int, out Consumer) *Union {
	u := &Union{Out: out}
	u.ports = make([]*unionPort, n)
	for i := range u.ports {
		u.ports[i] = &unionPort{u: u}
	}
	return u
}

// Port returns the i'th input port.
func (u *Union) Port(i int) Consumer { return u.ports[i] }

// Inputs reports the number of ports.
func (u *Union) Inputs() int { return len(u.ports) }

// maybeAdvance forwards the minimum watermark across ports when it
// increases. Ports that have flushed no longer constrain the minimum.
func (u *Union) maybeAdvance() {
	min := ^uint64(0)
	live := false
	for _, p := range u.ports {
		if p.flushed {
			continue
		}
		live = true
		if !p.wmSeen {
			return // a port has not advanced yet
		}
		if p.wm < min {
			min = p.wm
		}
	}
	if !live {
		return
	}
	if !u.wmForwarded || min > u.lastWM {
		u.lastWM, u.wmForwarded = min, true
		u.Out.Advance(min)
	}
}

type unionPort struct {
	u       *Union
	wm      uint64
	wmSeen  bool
	flushed bool
}

func (p *unionPort) Push(t Tuple) { p.u.Out.Push(t) }

// PushBatch implements BatchConsumer: a union port forwards tuples
// unchanged, so the batch passes straight through.
func (p *unionPort) PushBatch(b Batch) { PushAll(p.u.Out, b) }

func (p *unionPort) Advance(wm uint64) {
	if p.wmSeen && wm <= p.wm {
		return
	}
	p.wm, p.wmSeen = wm, true
	p.u.maybeAdvance()
}

func (p *unionPort) Flush() {
	if p.flushed {
		return
	}
	p.flushed = true
	p.u.flushed++
	if p.u.flushed == len(p.u.ports) {
		p.u.Out.Flush()
		return
	}
	// This port no longer holds the minimum back.
	p.u.maybeAdvance()
}

// AggColumn configures one aggregate of an aggregation operator.
type AggColumn struct {
	Factory AccumFactory
	// Arg evaluates the aggregate argument; nil means COUNT(*)-style
	// (count every tuple).
	Arg EvalFunc
}

// AggregateConfig configures a tumbling-window aggregation.
type AggregateConfig struct {
	// PreFilter applies to input tuples before grouping (a pushed-down
	// WHERE); nil passes everything.
	PreFilter EvalFunc
	// GroupBy computes the group key values from an input tuple.
	GroupBy []EvalFunc
	// EpochIdx is the index in GroupBy of the temporal expression the
	// tumbling window tumbles on; -1 blocks until Flush.
	EpochIdx int
	// EpochOfWM translates a base-time watermark into the minimal
	// epoch value any future tuple can have; groups below it flush.
	// Required when EpochIdx >= 0.
	EpochOfWM func(uint64) sqlval.Value
	// Aggs are the aggregate columns, appended after the group values.
	Aggs []AggColumn
	// Having filters finished groups; it sees groups++aggs. Nil passes
	// all groups.
	Having EvalFunc
	// Post computes the output tuple from groups++aggs; nil emits
	// groups++aggs unchanged.
	Post []EvalFunc
	Out  Consumer
	// OnEpochFlush, when set, observes every non-empty emission: wm is
	// the watermark that closed the epochs (the last one seen; 0 at a
	// data-free Flush), groups the closed (epoch, group) states, rows
	// the result rows emitted after HAVING. Purely observational — it
	// runs after the rows are pushed and must not touch them.
	OnEpochFlush func(wm uint64, groups, rows int)
}

type groupState struct {
	key   string
	vals  []sqlval.Value
	accs  []Accum
	epoch sqlval.Value
}

// Aggregate is the tumbling-window aggregation operator. It maintains
// one accumulator row per group and emits each group exactly once,
// when the watermark passes the group's epoch (or at Flush). Tuples
// arriving after their epoch closed (watermark violations) are counted
// and dropped rather than silently re-opening the group, which would
// emit a duplicate partial result downstream.
type Aggregate struct {
	cfg    AggregateConfig
	groups map[string]*groupState

	// Late counts dropped watermark-violating tuples.
	Late int64

	boundary    sqlval.Value
	boundarySet bool
	lastWM      uint64
	wmSeen      bool
	flushed     bool

	// Batched-path scratch and slabs. valsBuf/keyBuf are reused per
	// tuple (the key encoding probes the map via string(keyBuf), which
	// Go compiles without a copy); the slabs carve groupState structs,
	// stored group values, and accumulator slots out of chunked arrays
	// so a new group costs amortized rather than per-group allocations.
	valsBuf   []sqlval.Value
	keyBuf    []byte
	stateSlab []groupState
	valSlab   []sqlval.Value
	accSlab   []Accum
	// emitBuf and rowBuf are flush-path scratch: the batch container
	// reused across epochs, and (with Post set) the groups++aggs input
	// row Having/Post read but downstream never sees.
	emitBuf Batch
	rowBuf  Tuple
	// minEpoch tracks the smallest non-NULL epoch among live groups, so
	// an Advance whose boundary has not passed it skips the full group
	// scan — most watermarks close no epoch but would otherwise pay
	// O(groups) compares each.
	minEpoch sqlval.Value
	minSet   bool
}

// slabChunk is how many groups' worth of state one slab chunk holds.
const slabChunk = 256

// NewAggregate builds the operator.
func NewAggregate(cfg AggregateConfig) *Aggregate {
	return &Aggregate{cfg: cfg, groups: make(map[string]*groupState)}
}

// Push implements Consumer.
func (o *Aggregate) Push(t Tuple) {
	if o.cfg.PreFilter != nil && !o.cfg.PreFilter(t).AsBool() {
		return
	}
	vals := make([]sqlval.Value, len(o.cfg.GroupBy))
	for i, g := range o.cfg.GroupBy {
		vals[i] = g(t)
	}
	if o.boundarySet && o.cfg.EpochIdx >= 0 &&
		!vals[o.cfg.EpochIdx].IsNull() && vals[o.cfg.EpochIdx].Compare(o.boundary) < 0 {
		o.Late++
		return
	}
	key := Key(vals)
	gs, ok := o.groups[key]
	if !ok {
		gs = &groupState{key: key, vals: vals, accs: make([]Accum, len(o.cfg.Aggs))}
		for i, a := range o.cfg.Aggs {
			gs.accs[i] = a.Factory()
		}
		if o.cfg.EpochIdx >= 0 {
			gs.epoch = vals[o.cfg.EpochIdx]
			o.noteEpoch(gs.epoch)
		}
		o.groups[key] = gs
	}
	for i, a := range o.cfg.Aggs {
		if a.Arg == nil {
			gs.accs[i].Add(sqlval.Uint(1))
		} else {
			gs.accs[i].Add(a.Arg(t))
		}
	}
}

// PushBatch implements BatchConsumer with the amortized per-tuple
// path: group values evaluate into a reused scratch slice, the key
// encodes into a reused byte buffer, and the map is probed once per
// tuple without materializing a key string unless the group is new.
//
//qap:hot
func (o *Aggregate) PushBatch(b Batch) {
	for _, t := range b {
		o.pushFast(t)
	}
}

// pushFast is the amortized per-tuple aggregate path behind PushBatch.
//
//qap:hot
func (o *Aggregate) pushFast(t Tuple) {
	if o.cfg.PreFilter != nil && !o.cfg.PreFilter(t).AsBool() {
		return
	}
	vals := o.valsBuf[:0]
	for _, g := range o.cfg.GroupBy {
		vals = append(vals, g(t))
	}
	o.valsBuf = vals
	if o.boundarySet && o.cfg.EpochIdx >= 0 &&
		!vals[o.cfg.EpochIdx].IsNull() && vals[o.cfg.EpochIdx].Compare(o.boundary) < 0 {
		o.Late++
		return
	}
	key := AppendKey(o.keyBuf[:0], vals)
	o.keyBuf = key
	gs, ok := o.groups[string(key)]
	if !ok {
		gs = o.newGroup(string(key), vals)
	}
	for i, a := range o.cfg.Aggs {
		if a.Arg == nil {
			gs.accs[i].Add(sqlval.Uint(1))
		} else {
			gs.accs[i].Add(a.Arg(t))
		}
	}
}

// newGroup registers a fresh group, carving its state from the slabs.
// vals is scratch owned by the caller and is copied.
func (o *Aggregate) newGroup(key string, vals []sqlval.Value) *groupState {
	if len(o.stateSlab) == 0 {
		o.stateSlab = make([]groupState, slabChunk)
	}
	gs := &o.stateSlab[0]
	o.stateSlab = o.stateSlab[1:]

	nv := len(o.cfg.GroupBy)
	if len(o.valSlab)+nv > cap(o.valSlab) {
		o.valSlab = make([]sqlval.Value, 0, maxInt(slabChunk*nv, nv))
	}
	start := len(o.valSlab)
	o.valSlab = o.valSlab[:start+nv]
	stored := o.valSlab[start : start+nv : start+nv]
	copy(stored, vals)

	na := len(o.cfg.Aggs)
	if len(o.accSlab)+na > cap(o.accSlab) {
		o.accSlab = make([]Accum, 0, maxInt(slabChunk*na, na))
	}
	astart := len(o.accSlab)
	o.accSlab = o.accSlab[:astart+na]
	accs := o.accSlab[astart : astart+na : astart+na]
	for i, a := range o.cfg.Aggs {
		accs[i] = a.Factory()
	}

	gs.key, gs.vals, gs.accs = key, stored, accs
	if o.cfg.EpochIdx >= 0 {
		gs.epoch = stored[o.cfg.EpochIdx]
		o.noteEpoch(gs.epoch)
	}
	o.groups[key] = gs
	return gs
}

// noteEpoch folds a new group's epoch into the live minimum.
func (o *Aggregate) noteEpoch(epoch sqlval.Value) {
	if !epoch.IsNull() && (!o.minSet || epoch.Compare(o.minEpoch) < 0) {
		o.minEpoch, o.minSet = epoch, true
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Advance implements Consumer: groups whose epoch precedes every
// possible future epoch are finished and emitted.
func (o *Aggregate) Advance(wm uint64) {
	if o.wmSeen && wm <= o.lastWM {
		return
	}
	o.lastWM, o.wmSeen = wm, true
	if o.cfg.EpochIdx >= 0 && o.cfg.EpochOfWM != nil {
		boundary := o.cfg.EpochOfWM(wm)
		o.boundary, o.boundarySet = boundary, true
		o.emitBefore(&boundary)
	}
	o.Out().Advance(wm)
}

// Flush implements Consumer: every remaining group is emitted.
func (o *Aggregate) Flush() {
	if o.flushed {
		return
	}
	o.flushed = true
	o.emitBefore(nil)
	o.Out().Flush()
}

// Out returns the downstream consumer.
func (o *Aggregate) Out() Consumer { return o.cfg.Out }

// GroupCount reports the live (unflushed) group count, used by memory
// accounting and tests.
func (o *Aggregate) GroupCount() int { return len(o.groups) }

// emitBefore flushes groups with epoch < boundary (all groups when
// boundary is nil), in deterministic (epoch, key) order.
func (o *Aggregate) emitBefore(boundary *sqlval.Value) {
	if boundary != nil && (!o.minSet || o.minEpoch.Compare(*boundary) >= 0) {
		// No live group's epoch precedes the boundary (NULL-epoch groups
		// only drain at Flush): nothing to emit, skip the group scan.
		return
	}
	var done []*groupState
	var survMin sqlval.Value
	survSet := false
	for _, gs := range o.groups { //qap:allow maprange -- groups collected then sorted below
		if boundary != nil && (gs.epoch.IsNull() || gs.epoch.Compare(*boundary) >= 0) {
			if !gs.epoch.IsNull() && (!survSet || gs.epoch.Compare(survMin) < 0) {
				survMin, survSet = gs.epoch, true
			}
			continue
		}
		done = append(done, gs)
	}
	o.minEpoch, o.minSet = survMin, survSet
	if len(done) == 0 {
		return
	}
	if len(done) == len(o.groups) {
		// Every group drained (always true at Flush; the common case at
		// an epoch boundary of a tumbling window). Rebuilding the map
		// pre-sized from this epoch's cardinality beats per-key deletes:
		// insertions up to that count never rehash, and a cardinality
		// spike's bucket memory is returned instead of lingering for the
		// rest of the run. Emission order cannot change — groups are
		// sorted before emitting — so this is a pure cost change.
		o.groups = make(map[string]*groupState, len(done))
	} else {
		for _, gs := range done {
			delete(o.groups, gs.key)
		}
	}
	sameEpoch := true
	for _, gs := range done[1:] {
		if gs.epoch != done[0].epoch {
			sameEpoch = false
			break
		}
	}
	if sameEpoch {
		// The usual tumbling-window drain closes a single epoch; the
		// (epoch, key) order degenerates to key order, sparing a
		// Value.Compare per sort comparison.
		slices.SortFunc(done, func(a, b *groupState) int {
			return strings.Compare(a.key, b.key)
		})
	} else {
		slices.SortFunc(done, func(a, b *groupState) int {
			if c := a.epoch.Compare(b.epoch); c != 0 {
				return c
			}
			return strings.Compare(a.key, b.key)
		})
	}
	// Emit the epoch as one batch: output rows carve from a single
	// backing array (fresh per flush — downstream retains them) and the
	// whole run moves downstream through the batched path, crossing
	// island boundaries as one captured batch item.
	out := o.emitBuf[:0]
	if o.cfg.Post == nil {
		width := len(o.cfg.GroupBy) + len(o.cfg.Aggs)
		backing := make([]sqlval.Value, 0, len(done)*width)
		for _, gs := range done {
			start := len(backing)
			backing = append(backing, gs.vals...)
			for _, a := range gs.accs {
				backing = append(backing, a.Result())
			}
			row := Tuple(backing[start:len(backing):len(backing)])
			if o.cfg.Having != nil && !o.cfg.Having(row).AsBool() {
				backing = backing[:start]
				continue
			}
			out = append(out, row)
		}
	} else {
		np := len(o.cfg.Post)
		backing := make([]sqlval.Value, 0, len(done)*np)
		for _, gs := range done {
			row := o.rowBuf[:0]
			row = append(row, gs.vals...)
			for _, a := range gs.accs {
				row = append(row, a.Result())
			}
			o.rowBuf = row
			if o.cfg.Having != nil && !o.cfg.Having(row).AsBool() {
				continue
			}
			start := len(backing)
			for _, p := range o.cfg.Post {
				backing = append(backing, p(row))
			}
			out = append(out, Tuple(backing[start:len(backing):len(backing)]))
		}
	}
	o.emitBuf = out
	PushAll(o.cfg.Out, out)
	if o.cfg.OnEpochFlush != nil {
		o.cfg.OnEpochFlush(o.lastWM, len(done), len(out))
	}
}

// JoinSideConfig configures one input of a join.
type JoinSideConfig struct {
	// Keys compute the composite equi-join key from a side tuple; the
	// two sides' key lists are index-aligned.
	Keys []EvalFunc
	// Width is the side's column count, needed for outer-join NULL
	// padding.
	Width int
	// MinFutureKey gives, for a base-time watermark, the smallest
	// temporal key value any *future* tuple of this side can produce;
	// the opposite side evicts entries below it. Nil disables
	// eviction until Flush.
	MinFutureKey func(uint64) sqlval.Value
	// TemporalIdx is the position of the temporal key within Keys.
	TemporalIdx int
}

// JoinConfig configures a tumbling-window symmetric hash equi-join.
type JoinConfig struct {
	Left, Right JoinSideConfig
	Type        gsql.JoinType
	// Residual filters joined pairs; it sees left columns followed by
	// right columns. Nil passes all pairs.
	Residual EvalFunc
	// Projs compute the output tuple over left++right columns.
	Projs []EvalFunc
	Out   Consumer
}

type joinEntry struct {
	key     string
	tuple   Tuple
	tkey    sqlval.Value
	matched bool
}

// Join is the symmetric hash join: each arriving tuple probes the
// opposite side's table and emits matches immediately, then is
// inserted into its own side's table. Watermarks evict entries that
// can no longer match, emitting outer-join padding for unmatched rows.
type Join struct {
	cfg        JoinConfig
	leftTab    map[string][]*joinEntry
	rightTab   map[string][]*joinEntry
	leftPort   joinPort
	rightPort  joinPort
	lastWM     uint64
	wmSeen     bool
	flushCount int
	flushed    bool

	// Batched-path scratch: key values, key encoding, and the combined
	// probe row are reused per tuple; entries carve from a slab. The
	// combined scratch is safe because Residual and emit only read it —
	// the projected output row is a fresh allocation.
	valsBuf   []sqlval.Value
	keyBuf    []byte
	combBuf   Tuple
	entrySlab []joinEntry
}

// NewJoin builds the operator.
func NewJoin(cfg JoinConfig) *Join {
	j := &Join{
		cfg:      cfg,
		leftTab:  make(map[string][]*joinEntry),
		rightTab: make(map[string][]*joinEntry),
	}
	j.leftPort = joinPort{j: j, left: true}
	j.rightPort = joinPort{j: j}
	return j
}

// LeftIn returns the left input port.
func (j *Join) LeftIn() Consumer { return &j.leftPort }

// RightIn returns the right input port.
func (j *Join) RightIn() Consumer { return &j.rightPort }

type joinPort struct {
	j    *Join
	left bool
}

func (p *joinPort) Push(t Tuple)      { p.j.push(t, p.left) }
func (p *joinPort) Advance(wm uint64) { p.j.advance(wm) }
func (p *joinPort) Flush()            { p.j.portFlush() }

// PushBatch implements BatchConsumer via the amortized build/probe.
//
//qap:hot
func (p *joinPort) PushBatch(b Batch) {
	for _, t := range b {
		p.j.pushFast(t, p.left)
	}
}

func (j *Join) push(t Tuple, left bool) {
	side := &j.cfg.Left
	myTab, otherTab := j.leftTab, j.rightTab
	if !left {
		side = &j.cfg.Right
		myTab, otherTab = j.rightTab, j.leftTab
	}
	vals := make([]sqlval.Value, len(side.Keys))
	for i, k := range side.Keys {
		vals[i] = k(t)
	}
	key := Key(vals)
	e := &joinEntry{key: key, tuple: t, tkey: vals[side.TemporalIdx]}
	for _, oe := range otherTab[key] {
		var combined Tuple
		if left {
			combined = j.combine(t, oe.tuple)
		} else {
			combined = j.combine(oe.tuple, t)
		}
		if j.cfg.Residual != nil && !j.cfg.Residual(combined).AsBool() {
			continue
		}
		e.matched, oe.matched = true, true
		j.emit(combined)
	}
	myTab[key] = append(myTab[key], e)
}

// pushFast is push with the per-tuple allocations amortized: key
// values and encoding go through reused buffers, the map is probed
// with string(keyBuf) (no copy), the key string is materialized only
// when no entry or match already interns it, the combined probe row is
// scratch, and entries carve from a slab.
//
//qap:hot
func (j *Join) pushFast(t Tuple, left bool) {
	side := &j.cfg.Left
	myTab, otherTab := j.leftTab, j.rightTab
	if !left {
		side = &j.cfg.Right
		myTab, otherTab = j.rightTab, j.leftTab
	}
	vals := j.valsBuf[:0]
	for _, k := range side.Keys {
		vals = append(vals, k(t))
	}
	j.valsBuf = vals
	kb := AppendKey(j.keyBuf[:0], vals)
	j.keyBuf = kb
	matches := otherTab[string(kb)]
	mine := myTab[string(kb)]
	var key string
	switch {
	case len(mine) > 0:
		key = mine[0].key
	case len(matches) > 0:
		key = matches[0].key
	default:
		key = string(kb)
	}
	if len(j.entrySlab) == 0 {
		j.entrySlab = make([]joinEntry, slabChunk) //qap:allow hotalloc -- slab refill, amortized over slabChunk entries
	}
	e := &j.entrySlab[0]
	j.entrySlab = j.entrySlab[1:]
	*e = joinEntry{key: key, tuple: t, tkey: vals[side.TemporalIdx]}
	for _, oe := range matches {
		comb := j.combBuf[:0]
		if left {
			comb = append(comb, t...)
			comb = append(comb, oe.tuple...)
		} else {
			comb = append(comb, oe.tuple...)
			comb = append(comb, t...)
		}
		j.combBuf = comb
		if j.cfg.Residual != nil && !j.cfg.Residual(comb).AsBool() {
			continue
		}
		e.matched, oe.matched = true, true
		j.emit(comb)
	}
	myTab[key] = append(mine, e)
}

func (j *Join) combine(l, r Tuple) Tuple {
	out := make(Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func (j *Join) emit(combined Tuple) {
	out := make(Tuple, len(j.cfg.Projs))
	for i, p := range j.cfg.Projs {
		out[i] = p(combined)
	}
	j.cfg.Out.Push(out)
}

func (j *Join) advance(wm uint64) {
	if j.wmSeen && wm <= j.lastWM {
		return
	}
	j.lastWM, j.wmSeen = wm, true
	// Left entries survive only while a future right tuple could still
	// produce their key, and vice versa.
	if j.cfg.Right.MinFutureKey != nil {
		b := j.cfg.Right.MinFutureKey(wm)
		j.leftTab = j.evict(j.leftTab, &b, true)
	}
	if j.cfg.Left.MinFutureKey != nil {
		b := j.cfg.Left.MinFutureKey(wm)
		j.rightTab = j.evict(j.rightTab, &b, false)
	}
	j.cfg.Out.Advance(wm)
}

func (j *Join) portFlush() {
	j.flushCount++
	if j.flushCount < 2 || j.flushed {
		return
	}
	j.flushed = true
	j.leftTab = j.evict(j.leftTab, nil, true)
	j.rightTab = j.evict(j.rightTab, nil, false)
	j.cfg.Out.Flush()
}

// evict removes entries with temporal key below boundary (all when
// nil), emitting outer-join padding for never-matched rows. It returns
// the table to keep using: when an epoch fully drains, a fresh map
// pre-sized from the drained cardinality replaces the old one (see the
// matching rebuild in Aggregate.emitBefore).
func (j *Join) evict(tab map[string][]*joinEntry, boundary *sqlval.Value, left bool) map[string][]*joinEntry {
	var unmatched []*joinEntry
	drained := 0
	for key, entries := range tab { //qap:allow maprange -- delete-only; unmatched sorted before padding
		var keep []*joinEntry
		for _, e := range entries {
			if boundary != nil && e.tkey.Compare(*boundary) >= 0 {
				keep = append(keep, e)
				continue
			}
			if !e.matched && j.padsSide(left) {
				unmatched = append(unmatched, e)
			}
		}
		if len(keep) == 0 {
			delete(tab, key)
			drained++
		} else {
			tab[key] = keep
		}
	}
	if boundary != nil && len(tab) == 0 && drained > 0 {
		tab = make(map[string][]*joinEntry, drained)
	}
	sort.Slice(unmatched, func(a, b int) bool {
		if c := unmatched[a].tkey.Compare(unmatched[b].tkey); c != 0 {
			return c < 0
		}
		return unmatched[a].key < unmatched[b].key
	})
	for _, e := range unmatched {
		j.emit(j.pad(e.tuple, left))
	}
	return tab
}

// padsSide reports whether unmatched rows of the given side appear in
// the output under the configured outer-join type.
func (j *Join) padsSide(left bool) bool {
	switch j.cfg.Type {
	case gsql.JoinLeftOuter:
		return left
	case gsql.JoinRightOuter:
		return !left
	case gsql.JoinFullOuter:
		return true
	default:
		return false
	}
}

// pad builds the combined row for an unmatched outer-join entry with
// NULLs on the missing side.
func (j *Join) pad(t Tuple, left bool) Tuple {
	if left {
		combined := make(Tuple, 0, len(t)+j.cfg.Right.Width)
		combined = append(combined, t...)
		for i := 0; i < j.cfg.Right.Width; i++ {
			combined = append(combined, sqlval.Null)
		}
		return combined
	}
	combined := make(Tuple, 0, len(t)+j.cfg.Left.Width)
	for i := 0; i < j.cfg.Left.Width; i++ {
		combined = append(combined, sqlval.Null)
	}
	return append(combined, t...)
}

// StoredTuples reports the number of buffered tuples, for memory
// accounting and eviction tests.
func (j *Join) StoredTuples() int {
	n := 0
	for _, es := range j.leftTab { //qap:allow maprange -- commutative count
		n += len(es)
	}
	for _, es := range j.rightTab { //qap:allow maprange -- commutative count
		n += len(es)
	}
	return n
}
