package cluster

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"qap/internal/core"
	"qap/internal/live"
	"qap/internal/netgen"
	"qap/internal/obs/trace"
	"qap/internal/optimizer"
)

// liveRunConfig is the live backend's RunConfig for tests: stats on (so
// the differential checks cover the observability layer) and tracing on
// (so trace bytes are compared too).
func liveRunConfig(workers, batch int, lc LiveConfig) RunConfig {
	return RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: workers, BatchSize: batch,
		CollectStats: true, Trace: &trace.Config{},
		Engine: EngineLive, Live: lc,
		DriveTimeout: 30 * time.Second,
	}
}

// runEngine builds and runs a plan under an explicit RunConfig.
func runEngine(t testing.TB, queries string, ps core.Set, o optimizer.Options, streams map[string][]netgen.Packet, cfg RunConfig) *Result {
	t.Helper()
	g := buildGraph(t, queries)
	p, err := optimizer.Build(g, ps, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameTrace asserts byte-identical canonical trace exports.
func sameTrace(t *testing.T, want, got *Result) {
	t.Helper()
	if (want.Trace == nil) != (got.Trace == nil) {
		t.Fatalf("trace presence differs: want %v, got %v", want.Trace != nil, got.Trace != nil)
	}
	if want.Trace == nil {
		return
	}
	wb, err := want.Trace.CanonicalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.Trace.CanonicalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		wl := strings.Split(string(wb), "\n")
		gl := strings.Split(string(gb), "\n")
		n := len(wl)
		if len(gl) < n {
			n = len(gl)
		}
		for i := 0; i < n; i++ {
			if wl[i] != gl[i] {
				t.Fatalf("canonical trace diverged at line %d:\n  sim:  %s\n  live: %s", i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("canonical trace lengths differ: sim %d lines, live %d lines", len(wl), len(gl))
	}
}

// TestLiveMatchesSim is the live backend's equivalence oracle inside
// the cluster package: for every workload, host count, worker count,
// and batch size, the live TCP backend must reproduce the simulator
// byte for byte — canonical outputs, metrics, OpStats, run report, and
// canonical trace bytes.
func TestLiveMatchesSim(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	querySets := []struct {
		name    string
		queries string
		ps      core.Set
	}{
		{"flows", flowsQuery, core.MustParseSet("srcIP, destIP")},
		{"complex", complexSet, core.MustParseSet("srcIP")},
		{"suspicious", suspiciousQuery, core.MustParseSet("srcIP, destIP, srcPort, destPort")},
	}
	for _, qs := range querySets {
		qs := qs
		t.Run(qs.name, func(t *testing.T) {
			t.Parallel()
			for _, hosts := range []int{1, 2, 4} {
				o := optimizer.Options{Hosts: hosts, PartitionsPerHost: 2, PartialAgg: true}
				for _, batch := range []int{1, 256} {
					simCfg := liveRunConfig(1, batch, LiveConfig{})
					simCfg.Engine = EngineSim
					want := runEngine(t, qs.queries, qs.ps, o, streams, simCfg)
					for _, workers := range []int{1, 4} {
						// The live backend always runs one goroutine per
						// host; Workers is recorded config only, and the
						// results must not depend on it.
						got := runEngine(t, qs.queries, qs.ps, o, streams, liveRunConfig(workers, batch, LiveConfig{}))
						sameResult(t, want, got)
						sameTrace(t, want, got)
					}
				}
			}
		})
	}
}

// TestLiveRoundRobin covers the round-robin splitter on the live
// backend: route state lives in the driver and must not drift.
func TestLiveRoundRobin(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 3, PartitionsPerHost: 2, PartialAgg: true}
	simCfg := liveRunConfig(1, 1, LiveConfig{})
	simCfg.Engine = EngineSim
	want := runEngine(t, flowsQuery, nil, o, streams, simCfg)
	got := runEngine(t, flowsQuery, nil, o, streams, liveRunConfig(1, 1, LiveConfig{}))
	sameResult(t, want, got)
	sameTrace(t, want, got)
}

// TestLiveTwoStream exercises the multi-cursor merge over the wire:
// advance tags span streams and the Hello's canonical stream order is
// load-bearing.
func TestLiveTwoStream(t *testing.T) {
	g := buildTwoStream(t)
	a, b := twoTraces(t)
	o := optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}
	streams := map[string][]netgen.Packet{"PKT1": a.Packets, "PKT2": b.Packets}
	build := func() *optimizer.Plan {
		p, err := optimizer.Build(g, core.MustParseSet("srcIP, destIP"), o)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, batch := range []int{1, 256} {
		simCfg := liveRunConfig(1, batch, LiveConfig{})
		simCfg.Engine = EngineSim
		seq, err := NewRunner(build(), simCfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seq.RunStreams(streams)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Outputs["combined"]) == 0 {
			t.Fatal("two-stream join found no matches")
		}
		lr, err := NewRunner(build(), liveRunConfig(1, batch, LiveConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		got, err := lr.RunStreams(streams)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, want, got)
		sameTrace(t, want, got)
	}
}

// TestLiveRemoteNodes runs every leaf host as a separately compiled
// runner served over ServeLiveHost — the same shape as qap-node
// processes — and demands byte-identical results, including the result
// shards shipped back over the wire.
func TestLiveRemoteNodes(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	g := buildGraph(t, complexSet)
	ps := core.MustParseSet("srcIP")
	build := func() *optimizer.Plan {
		p, err := optimizer.Build(g, ps, o)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, batch := range []int{1, 256} {
		simCfg := liveRunConfig(1, batch, LiveConfig{})
		simCfg.Engine = EngineSim
		seq, err := NewRunner(build(), simCfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seq.RunStreams(streams)
		if err != nil {
			t.Fatal(err)
		}

		// Serve both hosts from independently compiled runners, as
		// qap-node does in its own process.
		addrc := make(chan string, o.Hosts)
		errc := make(chan error, o.Hosts)
		var wg sync.WaitGroup
		addrs := make([]string, o.Hosts)
		for h := 0; h < o.Hosts; h++ {
			node, err := NewRunner(build(), liveRunConfig(1, batch, LiveConfig{}))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(h int, node *Runner) {
				defer wg.Done()
				if err := node.ServeLiveHost(h, "127.0.0.1:0", func(addr string) { addrc <- addr }); err != nil {
					errc <- err
				}
			}(h, node)
			addrs[h] = <-addrc
		}
		lr, err := NewRunner(build(), liveRunConfig(1, batch, LiveConfig{Nodes: addrs}))
		if err != nil {
			t.Fatal(err)
		}
		got, err := lr.RunStreams(streams)
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatal(err)
		default:
		}
		sameResult(t, want, got)
		sameTrace(t, want, got)
	}
}

// TestLiveFingerprintMismatch: a node compiled from a different
// configuration must be rejected at the handshake, not silently
// diverge.
func TestLiveFingerprintMismatch(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	g := buildGraph(t, complexSet)
	ps := core.MustParseSet("srcIP")
	build := func(batch int) *Runner {
		p, err := optimizer.Build(g, ps, o)
		if err != nil {
			t.Fatal(err)
		}
		lc := LiveConfig{MaxAttempts: 1, Timeout: 5 * time.Second}
		r, err := NewRunner(p, liveRunConfig(1, batch, lc))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	addrc := make(chan string, 2)
	done := make(chan error, 2)
	addrs := make([]string, 2)
	for h := 0; h < 2; h++ {
		// Nodes compiled with BatchSize 7; the splitter runs 256.
		node := build(7)
		go func(h int) {
			done <- node.ServeLiveHost(h, "127.0.0.1:0", func(addr string) { addrc <- addr })
		}(h)
		addrs[h] = <-addrc
	}
	sp := build(256)
	sp.liveCfg.Nodes = addrs
	if _, err := sp.RunStreams(streams); err == nil {
		t.Fatal("mismatched deployment fingerprints were accepted")
	}
	// The nodes reject the handshake as fatal and name the mismatch.
	for i := 0; i < 2; i++ {
		if err := <-done; err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Fatalf("want a node-side fingerprint error, got: %v", err)
		}
	}
}

// TestLiveFaultRecovery injects dropped, duplicated, stalled, and cut
// connections into the live transport and demands the run still
// converge to the simulator's exact bytes: the reconnect-and-replay
// protocol may cost time, never correctness.
func TestLiveFaultRecovery(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	ps := core.MustParseSet("srcIP")

	simCfg := liveRunConfig(1, 256, LiveConfig{})
	simCfg.Engine = EngineSim
	want := runEngine(t, complexSet, ps, o, streams, simCfg)

	plans := []struct {
		name   string
		faults []live.Fault
	}{
		{"drop-feed", []live.Fault{{Host: 0, Session: 0, Write: 3, Action: live.FaultDrop}}},
		{"drop-link", []live.Fault{{Host: 1, Session: 0, Write: 2, Action: live.FaultDrop}}},
		{"dup-feed", []live.Fault{{Host: 0, Session: -1, Write: 2, Action: live.FaultDup}}},
		{"dup-link", []live.Fault{{Host: 0, Session: -1, Write: 1, Action: live.FaultDup}}},
		{"cut-feed", []live.Fault{{Host: 1, Session: 0, Write: 4, Action: live.FaultCut}}},
		{"cut-link", []live.Fault{{Host: 0, Session: 0, Write: 3, Action: live.FaultCut}}},
		{"stall-feed", []live.Fault{{Host: 0, Session: 0, Write: 2, Action: live.FaultStall, Stall: 150 * time.Millisecond}}},
		{"cut-both", []live.Fault{
			{Host: 0, Session: 0, Write: 2, Action: live.FaultCut},
			{Host: 1, Session: 0, Write: 3, Action: live.FaultCut},
			{Host: 0, Session: 1, Write: 5, Action: live.FaultCut},
		}},
	}
	for _, pl := range plans {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			t.Parallel()
			fp := &live.FaultPlan{Faults: pl.faults}
			lc := LiveConfig{Faults: fp, Timeout: 2 * time.Second}
			got := runEngine(t, complexSet, ps, o, streams, liveRunConfig(1, 256, lc))
			if fp.Hits() == 0 {
				t.Fatal("fault plan never fired; the scenario tested nothing")
			}
			sameResult(t, want, got)
			sameTrace(t, want, got)
		})
	}
}
