package exec

import (
	"math"
	"testing"
	"testing/quick"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 50000} {
		acc := &hllAccum{}
		for i := 0; i < n; i++ {
			acc.Add(sqlval.Uint(uint64(i) * 2654435761))
		}
		got, _ := acc.Result().AsUint()
		err := math.Abs(float64(got)-float64(n)) / float64(n)
		// 256 registers give ~6.5% standard error; allow 4 sigma.
		if err > 0.26 {
			t.Errorf("HLL estimate for n=%d: got %d (error %.1f%%)", n, got, err*100)
		}
	}
}

func TestHLLDuplicatesIgnored(t *testing.T) {
	acc := &hllAccum{}
	for i := 0; i < 10000; i++ {
		acc.Add(sqlval.Uint(uint64(i % 5)))
	}
	got, _ := acc.Result().AsUint()
	if got < 3 || got > 8 {
		t.Errorf("5 distinct values estimated as %d", got)
	}
	acc.Add(sqlval.Null) // NULLs ignored
	got2, _ := acc.Result().AsUint()
	if got2 != got {
		t.Error("NULL changed the estimate")
	}
}

func TestHLLSketchMergeEquivalenceProperty(t *testing.T) {
	// Splitting values across k sketches and merging must equal the
	// single-sketch estimate exactly (register-wise max is lossless).
	f := func(vals []uint32, k uint8) bool {
		parts := int(k%4) + 1
		single := &hllAccum{}
		subs := make([]*hllSketchAccum, parts)
		for i := range subs {
			subs[i] = &hllSketchAccum{}
		}
		for i, v := range vals {
			val := sqlval.Uint(uint64(v))
			single.Add(val)
			subs[i%parts].Add(val)
		}
		merged := &hllMergeAccum{}
		for _, s := range subs {
			merged.Add(s.Result())
		}
		a, _ := single.Result().AsUint()
		b, _ := merged.Result().AsUint()
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHLLMergeIgnoresGarbage(t *testing.T) {
	m := &hllMergeAccum{}
	m.Add(sqlval.Str("short"))
	m.Add(sqlval.Uint(5))
	got, _ := m.Result().AsUint()
	if got != 0 {
		t.Errorf("garbage partials should merge to empty, got %d", got)
	}
}

func TestVarianceAndStddev(t *testing.T) {
	vf, _ := NewAccumFactory("VARIANCE")
	sf, _ := NewAccumFactory("STDDEV")
	va, sa := vf(), sf()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		va.Add(sqlval.Float(x))
		sa.Add(sqlval.Float(x))
	}
	v, _ := va.Result().AsFloat()
	s, _ := sa.Result().AsFloat()
	if math.Abs(v-4) > 1e-9 {
		t.Errorf("variance = %g, want 4", v)
	}
	if math.Abs(s-2) > 1e-9 {
		t.Errorf("stddev = %g, want 2", s)
	}
	// Empty accumulators yield NULL.
	if fresh := vf(); !fresh.Result().IsNull() {
		t.Error("empty variance should be NULL")
	}
}

func TestSumsqAccum(t *testing.T) {
	fac, _ := NewAccumFactory("SUMSQ")
	acc := fac()
	acc.Add(sqlval.Uint(3))
	acc.Add(sqlval.Uint(4))
	got, _ := acc.Result().AsFloat()
	if got != 25 {
		t.Errorf("sumsq = %g, want 25", got)
	}
	if fresh := fac(); !fresh.Result().IsNull() {
		t.Error("empty SUMSQ should be NULL")
	}
}

func TestSqrtScalar(t *testing.T) {
	r := res("x")
	f := MustCompile(gsql.MustParseExpr("SQRT(x)"), r, nil)
	got, _ := f(Tuple{sqlval.Uint(9)}).AsFloat()
	if got != 3 {
		t.Errorf("SQRT(9) = %g", got)
	}
	if !f(Tuple{sqlval.Int(-1)}).IsNull() {
		t.Error("SQRT of negative should be NULL")
	}
}
