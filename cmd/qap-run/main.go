// Command qap-run executes a GSQL query set on the simulated cluster
// over a synthetic packet trace and reports the query outputs and the
// per-host CPU/network load, under a chosen partitioning strategy.
//
// Usage:
//
//	qap-run [-queries file] [-partition set] [-hosts n] [-rate pps]
//	        [-duration sec] [-seed n] [-show n] [-plan]
//
// Examples:
//
//	qap-run -partition srcIP -hosts 4
//	qap-run -queries monitor.gsql -partition 'srcIP & 0xFFF0, destIP'
//	qap-run -partition srcIP -metrics-out report.json   # JSON run report
//	qap-run -partition srcIP -report                    # Prometheus text
//
// To check a query set statically before running it — partitioning
// compatibility per node, window alignment, dead columns — see
// cmd/qap-lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"qap"
	"qap/internal/netgen"
)

func main() {
	queryFile := flag.String("queries", "", "GSQL query set file (default: the paper's Section 3.2 set)")
	partition := flag.String("partition", "", "partitioning set, e.g. 'srcIP, destIP' (empty = round robin)")
	hosts := flag.Int("hosts", 4, "cluster size")
	pph := flag.Int("pph", 2, "stream partitions per host")
	rate := flag.Int("rate", 2000, "trace packet rate (packets/sec)")
	duration := flag.Int("duration", 120, "trace duration (sec)")
	seed := flag.Int64("seed", 1, "trace random seed")
	show := flag.Int("show", 5, "result rows to print per query")
	showPlan := flag.Bool("plan", false, "print the distributed physical plan")
	dotPlan := flag.Bool("dot", false, "print the physical plan as Graphviz DOT and exit")
	naiveScope := flag.Bool("naive", false, "use per-partition (naive) partial aggregation")
	traceFile := flag.String("trace", "", "CSV trace file to replay instead of generating one")
	dumpFile := flag.String("dump", "", "write the generated trace to this CSV file")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulator worker goroutines (1 = sequential engine; results are identical)")
	batch := flag.Int("batch", 0, "operator batch size (0 = engine default, 1 = tuple-at-a-time; results are identical)")
	metricsOut := flag.String("metrics-out", "", "write the machine-readable JSON run report to this file")
	report := flag.Bool("report", false, "print the run report in Prometheus text format")
	flag.Parse()

	queries := qap.ComplexQuerySet
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		queries = string(b)
	}
	sys, err := qap.Load(netgen.SchemaDDL, queries)
	if err != nil {
		fatal(err)
	}

	var ps qap.Set
	if *partition != "" {
		ps, err = qap.ParseSet(*partition)
		if err != nil {
			fatal(err)
		}
	}
	scope := qap.ScopeHost
	if *naiveScope {
		scope = qap.ScopePartition
	}
	dep, err := sys.Deploy(qap.DeployConfig{
		Hosts:             *hosts,
		PartitionsPerHost: *pph,
		Partitioning:      ps,
		PartialScope:      scope,
		Costs:             qap.CostConfig{CapacityPerSec: float64(*rate) * 3},
		Params:            map[string]qap.Value{"PATTERN": qap.Uint(netgen.AttackPattern)},
		Workers:           *workers,
		BatchSize:         *batch,
		CollectStats:      *metricsOut != "" || *report,
	})
	if err != nil {
		fatal(err)
	}
	if *dotPlan {
		fmt.Print(dep.PlanDOT())
		return
	}
	if *showPlan {
		fmt.Println("distributed plan:")
		fmt.Print(dep.PlanString())
		fmt.Println()
	}

	var packets []netgen.Packet
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		packets, err = netgen.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d packets from %s\n", len(packets), *traceFile)
	} else {
		cfg := netgen.DefaultConfig()
		cfg.Seed, cfg.DurationSec, cfg.PacketsPerSec = *seed, *duration, *rate
		trace := netgen.Generate(cfg)
		packets = trace.Packets
		fmt.Printf("trace: %d packets over %ds (%d flows, %d suspicious)\n",
			len(packets), cfg.DurationSec, trace.TotalFlows, trace.AttackFlows)
	}
	if *dumpFile != "" {
		f, err := os.Create(*dumpFile)
		if err != nil {
			fatal(err)
		}
		err = netgen.WriteCSV(f, packets)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", *dumpFile)
	}
	if ps.IsEmpty() {
		fmt.Println("partitioning: round robin (query-agnostic)")
	} else {
		fmt.Printf("partitioning: %s\n", ps)
	}

	res, err := dep.Run("TCP", packets)
	if err != nil {
		fatal(err)
	}

	for _, name := range res.OutputNames() {
		rows := res.Outputs[name]
		fmt.Printf("\n%s: %d rows\n", name, len(rows))
		for i, r := range rows {
			if i >= *show {
				fmt.Printf("  ... %d more\n", len(rows)-*show)
				break
			}
			fmt.Printf("  %s\n", r)
		}
	}

	fmt.Println("\nload:")
	fmt.Print(res.Metrics.String())

	if rep := res.Report(); rep != nil {
		if *metricsOut != "" {
			b, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*metricsOut, b, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote run report to %s\n", *metricsOut)
		}
		if *report {
			fmt.Println("\nreport:")
			fmt.Print(rep.Prometheus())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-run:", err)
	os.Exit(1)
}
