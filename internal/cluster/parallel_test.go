package cluster

import (
	"reflect"
	"testing"

	"qap/internal/core"
	"qap/internal/netgen"
	"qap/internal/optimizer"
)

// runWorkers builds and runs the flows/complex/suspicious plans with an
// explicit worker count, returning the full result. Stats collection is
// on so that the differential tests also cover the observability layer.
func runWorkers(t testing.TB, queries string, ps core.Set, o optimizer.Options, streams map[string][]netgen.Packet, workers int) *Result {
	t.Helper()
	g := buildGraph(t, queries)
	p, err := optimizer.Build(g, ps, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunConfig{Costs: DefaultCosts(), Params: testParams, Workers: workers, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameResult asserts byte-identical results: same output rows in the
// same order, same node-row counts, bit-equal metrics, bit-equal
// per-operator stats, and byte-identical canonical run reports.
func sameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Outputs, got.Outputs) {
		t.Errorf("Outputs differ")
	}
	if !reflect.DeepEqual(want.NodeRows, got.NodeRows) {
		t.Errorf("NodeRows differ: %v vs %v", want.NodeRows, got.NodeRows)
	}
	if !reflect.DeepEqual(*want.Metrics, *got.Metrics) {
		t.Errorf("Metrics differ:\n  want %+v\n  got  %+v", *want.Metrics, *got.Metrics)
	}
	if !reflect.DeepEqual(want.OpStats, got.OpStats) {
		t.Errorf("OpStats differ:\n  want %+v\n  got  %+v", want.OpStats, got.OpStats)
	}
	if (want.Report == nil) != (got.Report == nil) {
		t.Fatalf("Report presence differs: want %v, got %v", want.Report != nil, got.Report != nil)
	}
	if want.Report != nil {
		wj, err := want.Report.Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		gj, err := got.Report.Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(wj) != string(gj) {
			t.Errorf("canonical reports differ:\n  want %s\n  got  %s", wj, gj)
		}
	}
	checkStatsInvariants(t, want)
	checkStatsInvariants(t, got)
}

// checkStatsInvariants asserts the construction invariant that every
// edge.Push charges exactly one op's RowsIn and one host's Tuples:
// the two totals must always agree.
func checkStatsInvariants(t *testing.T, res *Result) {
	t.Helper()
	if res.OpStats == nil {
		return
	}
	var rowsIn int64
	for _, st := range res.OpStats {
		rowsIn += st.RowsIn
	}
	var tuples int64
	for _, hm := range res.Metrics.Hosts {
		tuples += hm.Tuples
	}
	if rowsIn != tuples {
		t.Errorf("sum(RowsIn)=%d != sum(Tuples)=%d", rowsIn, tuples)
	}
}

// TestParallelMatchesSequential is the parallel engine's correctness
// oracle inside the cluster package: for every workload and topology,
// Workers=N must reproduce the sequential engine byte for byte.
func TestParallelMatchesSequential(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	querySets := []struct {
		name    string
		queries string
		ps      core.Set
	}{
		{"flows", flowsQuery, core.MustParseSet("srcIP, destIP")},
		{"complex", complexSet, core.MustParseSet("srcIP")},
		{"suspicious", suspiciousQuery, core.MustParseSet("srcIP, destIP, srcPort, destPort")},
	}
	for _, qs := range querySets {
		for _, hosts := range []int{1, 2, 4} {
			for _, partial := range []bool{false, true} {
				o := optimizer.Options{Hosts: hosts, PartitionsPerHost: 2, PartialAgg: partial}
				t.Run(qs.name, func(t *testing.T) {
					want := runWorkers(t, qs.queries, qs.ps, o, streams, 1)
					for _, workers := range []int{2, 8} {
						got := runWorkers(t, qs.queries, qs.ps, o, streams, workers)
						sameResult(t, want, got)
					}
				})
			}
		}
	}
}

// TestParallelRoundRobin covers the round-robin splitter (no
// partitioning set): the route decision is driver-side state, which
// must not drift between engines.
func TestParallelRoundRobin(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 3, PartitionsPerHost: 2, PartialAgg: true}
	want := runWorkers(t, flowsQuery, nil, o, streams, 1)
	got := runWorkers(t, flowsQuery, nil, o, streams, 4)
	sameResult(t, want, got)
}

// TestParallelTwoStream exercises the multi-cursor merge (advance tags
// span streams) and a join across two input streams.
func TestParallelTwoStream(t *testing.T) {
	g := buildTwoStream(t)
	a, b := twoTraces(t)
	o := optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}
	p, err := optimizer.Build(g, core.MustParseSet("srcIP, destIP"), o)
	if err != nil {
		t.Fatal(err)
	}
	streams := map[string][]netgen.Packet{"PKT1": a.Packets, "PKT2": b.Packets}
	seq, err := NewRunner(p, RunConfig{Costs: DefaultCosts(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Outputs["combined"]) == 0 {
		t.Fatal("two-stream join found no matches")
	}
	p2, err := optimizer.Build(g, core.MustParseSet("srcIP, destIP"), o)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(p2, RunConfig{Costs: DefaultCosts(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

// TestParallelBatchSizes sweeps the channel batching knob: batching is
// a transport detail and must never leak into results.
func TestParallelBatchSizes(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}
	g := buildGraph(t, complexSet)
	ps := core.MustParseSet("srcIP")
	build := func() *optimizer.Plan {
		p, err := optimizer.Build(g, ps, o)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	seq, err := NewRunner(build(), RunConfig{Costs: DefaultCosts(), Params: testParams, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 1024} {
		par, err := NewRunner(build(), RunConfig{
			Costs: DefaultCosts(), Params: testParams, Workers: 4, BatchRounds: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.RunStreams(streams)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, want, got)
	}
}

// TestCursorOrderStable is the regression test for the unstable cursor
// sort: two equal-length streams sharing every timestamp must merge in
// the same order on every run, regardless of map iteration order. The
// join's output order is sensitive to the merge order, so identical
// outputs across fresh runners prove the tie-break works.
func TestCursorOrderStable(t *testing.T) {
	g := buildTwoStream(t)
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}

	// Two packets per stream at the same timestamps with crossed keys:
	// (k1, k2) on PKT1 and (k2, k1) on PKT2, so the probe-side emission
	// order of the join depends on which stream is pushed first.
	mk := func(tm, src, dst uint64) netgen.Packet {
		return netgen.Packet{Time: tm, SrcIP: src, DestIP: dst, Len: 10, Seq: 0}
	}
	a := []netgen.Packet{mk(0, 1, 1), mk(0, 2, 2), mk(1, 1, 1), mk(1, 2, 2)}
	b := []netgen.Packet{mk(0, 2, 2), mk(0, 1, 1), mk(1, 2, 2), mk(1, 1, 1)}

	var want *Result
	for i := 0; i < 30; i++ {
		p, err := optimizer.Build(g, nil, o)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(p, DefaultCosts(), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.RunStreams(map[string][]netgen.Packet{"PKT1": a, "PKT2": b})
		if err != nil {
			t.Fatal(err)
		}
		if rows := got.Outputs["combined"]; len(rows) != 4 {
			t.Fatalf("want 4 join rows, got %d", len(rows))
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want.Outputs, got.Outputs) {
			t.Fatalf("run %d: output order drifted across identical runs", i)
		}
	}
}

// TestSequentialFallback: a Workers>1 request on a 1-host 1-partition
// plan must still produce correct results (the parallel engine runs
// with a single leaf worker, or falls back when the plan shape demands
// it).
func TestSequentialFallback(t *testing.T) {
	tr := smallTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	o := optimizer.Options{Hosts: 1, PartitionsPerHost: 1}
	want := runWorkers(t, flowsQuery, nil, o, streams, 1)
	got := runWorkers(t, flowsQuery, nil, o, streams, 8)
	sameResult(t, want, got)
}

// benchRun measures a full run of the complex workload with stats
// collection on or off. Comparing the two benchmarks shows the cost of
// the observability layer; the disabled case installs no wrappers and
// only nil-checks a pointer per event, so it should be within noise of
// the pre-instrumentation engine.
func benchRun(b *testing.B, collect bool) {
	tr := smallTrace(b)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	g := buildGraph(b, complexSet)
	ps := core.MustParseSet("srcIP")
	o := optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := optimizer.Build(g, ps, o)
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewRunner(p, RunConfig{Costs: DefaultCosts(), Params: testParams, Workers: 1, CollectStats: collect})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.RunStreams(streams); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunStatsDisabled(b *testing.B) { benchRun(b, false) }
func BenchmarkRunStatsEnabled(b *testing.B)  { benchRun(b, true) }
