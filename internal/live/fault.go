package live

import (
	"errors"
	"net"
	"sync"
	"time"
)

// FaultAction is what a scripted fault does to one Write call.
type FaultAction int

// The fault actions. Frames are written one per Write call, so every
// action operates on a whole frame and the surviving stream stays
// frame-aligned.
const (
	// FaultDrop swallows the write: the peer sees a sequence gap (or
	// silence until its read deadline) and forces a reconnect.
	FaultDrop FaultAction = iota + 1
	// FaultDup writes the frame twice: the peer must dedup by
	// sequence.
	FaultDup
	// FaultStall sleeps before writing, long enough to trip the peer's
	// read deadline when scripted that way.
	FaultStall
	// FaultCut closes the connection instead of writing: both
	// directions die and the unacked tails must be retransmitted.
	FaultCut
)

// ErrInjectedCut is returned by a Write that a FaultCut consumed.
var ErrInjectedCut = errors.New("live: injected connection cut")

// Fault scripts one deterministic transport misbehavior, keyed by the
// coordinates the session machinery already exposes: which host, which
// connection attempt (splitter side) or accepted session (node side),
// and which Write call on that connection. -1 matches any value.
type Fault struct {
	Host    int
	Session int
	Write   int
	Action  FaultAction
	// Stall is the FaultStall sleep.
	Stall time.Duration
}

// FaultPlan is a set of scripted faults plus a hit counter, so tests
// can assert the script actually fired. Wire it in with Dial (splitter
// side) and WrapAccept (node side).
type FaultPlan struct {
	Faults []Fault

	mu   sync.Mutex
	hits int
}

func (p *FaultPlan) match(host, session, write int) *Fault {
	for i := range p.Faults {
		f := &p.Faults[i]
		if (f.Host == -1 || f.Host == host) &&
			(f.Session == -1 || f.Session == session) &&
			(f.Write == -1 || f.Write == write) {
			p.mu.Lock()
			p.hits++
			p.mu.Unlock()
			return f
		}
	}
	return nil
}

// Hits is how many Write calls a fault was applied to.
func (p *FaultPlan) Hits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// Dial wraps a dial function so every splitter connection's writes run
// through the plan.
func (p *FaultPlan) Dial(base func(host, attempt int, addr string) (net.Conn, error)) func(host, attempt int, addr string) (net.Conn, error) {
	return func(host, attempt int, addr string) (net.Conn, error) {
		conn, err := base(host, attempt, addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: conn, plan: p, host: host, session: attempt}, nil
	}
}

// WrapAccept wraps a node's accepted connections the same way; host is
// the node's host index (a node doesn't learn it from the listener).
func (p *FaultPlan) WrapAccept(host int) func(conn net.Conn, session int) net.Conn {
	return func(conn net.Conn, session int) net.Conn {
		return &faultConn{Conn: conn, plan: p, host: host, session: session}
	}
}

// faultConn applies the plan's scripted actions to Write calls.
type faultConn struct {
	net.Conn
	plan    *FaultPlan
	host    int
	session int

	mu     sync.Mutex
	writes int
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	idx := c.writes
	c.writes++
	c.mu.Unlock()
	f := c.plan.match(c.host, c.session, idx)
	if f == nil {
		return c.Conn.Write(b)
	}
	switch f.Action {
	case FaultDrop:
		// Pretend the write succeeded; the bytes are gone.
		return len(b), nil
	case FaultDup:
		n, err := c.Conn.Write(b)
		if err == nil {
			_, err = c.Conn.Write(b)
		}
		return n, err
	case FaultStall:
		time.Sleep(f.Stall) //qap:allow walltime -- the scripted stall fault is wall-clock by design; recovery restores identical outputs
		return c.Conn.Write(b)
	case FaultCut:
		c.Conn.Close()
		return 0, ErrInjectedCut
	}
	return c.Conn.Write(b)
}
