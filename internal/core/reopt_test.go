package core

import (
	"testing"
)

// sameDecision asserts two search results agree on everything the
// adaptive controller consumes: the recommendation, the baseline, and
// the costed candidate ranking (compared by set and cost — Queries
// lists of fully tied candidates may legally permute).
func sameDecision(t *testing.T, got, want *Result) {
	t.Helper()
	if !got.Best.Equal(want.Best) || got.BestCost != want.BestCost {
		t.Fatalf("best %s cost %v, want %s cost %v", got.Best, got.BestCost, want.Best, want.BestCost)
	}
	if got.CentralCost != want.CentralCost || got.CentralTotal != want.CentralTotal {
		t.Fatalf("central %v/%v, want %v/%v",
			got.CentralCost, got.CentralTotal, want.CentralCost, want.CentralTotal)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("candidate count %d, want %d", len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		a, b := got.Candidates[i], want.Candidates[i]
		if !a.Set.Equal(b.Set) || a.Cost != b.Cost || a.Total != b.Total {
			t.Fatalf("candidate %d: %s cost %v/%v, want %s cost %v/%v",
				i, a.Set, a.Cost, a.Total, b.Set, b.Cost, b.Total)
		}
	}
}

// TestReoptimizeMatchesFreshOptimize pins the theorem Reoptimize leans
// on: the enumeration is stats-independent, so re-costing a prior
// candidate list under new statistics must reach exactly the decision
// a from-scratch search under those statistics reaches.
func TestReoptimizeMatchesFreshOptimize(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	prior, err := Optimize(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Same stats: the re-cost is a no-op and everything matches.
	re, err := Reoptimize(g, prior, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, re, prior)

	// Shifted stats: crank the stream rate and skew the selectivities
	// so the cost landscape genuinely moves, then compare against a
	// fresh search under the same stats.
	st := NewStaticStats()
	st.SetRate("TCP", 50000)
	for name := range prior.PerNode { //qap:allow maprange -- setting uniform per-node stats
		st.SetSelectivity(name, 0.7)
	}
	fresh, err := Optimize(g, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err = Reoptimize(g, prior, st, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, re, fresh)
	if re.Search.Enumerated != prior.Search.Enumerated {
		t.Errorf("Enumerated = %d, want carried-over %d", re.Search.Enumerated, prior.Search.Enumerated)
	}

	// Nil prior falls back to the full search.
	re, err = Reoptimize(g, nil, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, re, fresh)
}
