package difftest

import (
	"flag"
	"sync/atomic"
	"testing"
)

// sweepSeeds is the fixed seed range CI runs; 15 workload seeds at the
// default sweep dimensions yield well over 200 compared configurations
// (each workload is checked across hosts × partitioning × workers, the
// batched-execution cells across batch sizes × workers, plus the
// metamorphic invariants).
var sweepSeeds = flag.Int64("difftest.seeds", 15, "number of workload seeds TestDifferentialSweep checks")

// TestDifferentialSweep is the table-driven face of the oracle: a fixed
// seed range, every invariant, zero tolerance for mismatches. A failure
// message is a complete repro (seed, trace literal, query text, rerun
// command).
func TestDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not a -short test")
	}
	var configs atomic.Int64
	for seed := int64(0); seed < *sweepSeeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rep, err := CheckSeed(seed, Options{})
			if err != nil {
				t.Fatalf("seed %d not runnable (generator must emit valid workloads): %v", seed, err)
			}
			configs.Add(int64(rep.Configs))
			if !rep.OK() {
				t.Errorf("differential mismatch:\n%s", rep)
			}
		})
	}
	t.Cleanup(func() {
		if got := configs.Load(); *sweepSeeds >= 15 && got < 200 {
			t.Errorf("sweep compared only %d configurations, want >= 200", got)
		}
	})
}

// columnarSeeds is the seed range the columnar-execution axis covers;
// each seed re-runs the full hosts × workers × batch matrix on the
// columnar path against a scalar reference per cluster size, so the
// range is smaller than the base sweep's.
var columnarSeeds = flag.Int64("difftest.columnarseeds", 5, "number of workload seeds TestColumnarSweep checks")

// TestColumnarSweep is the columnar path's equivalence sweep: compiled
// column kernels and dense aggregate state against the scalar
// tuple-at-a-time oracle across every hosts {1,2,4} × workers {1,4} ×
// batch {1,64,1024} cell — canonical output, OpStats, and canonical
// trace bytes all byte-identical.
func TestColumnarSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("columnar sweep is not a -short test")
	}
	for seed := int64(0); seed < *columnarSeeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rep, err := CheckSeed(seed, Options{Columnar: true})
			if err != nil {
				t.Fatalf("seed %d not runnable (generator must emit valid workloads): %v", seed, err)
			}
			if !rep.OK() {
				t.Errorf("columnar mismatch:\n%s", rep)
			}
		})
	}
}

// TestColumnarLiveSweep crosses the columnar and live axes on one
// seed: columnar cells must reproduce the simulator's bytes on real
// sockets, CPUUnits included.
func TestColumnarLiveSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("columnar live sweep is not a -short test")
	}
	rep, err := CheckSeed(0, Options{Live: true, Columnar: true})
	if err != nil {
		t.Fatalf("seed 0 not runnable (generator must emit valid workloads): %v", err)
	}
	if !rep.OK() {
		t.Errorf("columnar live mismatch:\n%s", rep)
	}
}

// liveSeeds is the seed range the live-vs-sim axis covers; each seed
// runs the full hosts × workers × batch matrix on real sockets plus
// the fault-injection leg, so the range is smaller than the base
// sweep's.
var liveSeeds = flag.Int64("difftest.liveseeds", 3, "number of workload seeds TestLiveVsSimSweep checks")

// TestLiveVsSimSweep is the live backend's equivalence sweep: the TCP
// cluster backend against the simulator oracle across every
// hosts {1,2,4} × workers {1,4} × batch {1,256} cell, plus scripted
// transport faults (drop, duplicate, cut) that must recover to the
// same bytes.
func TestLiveVsSimSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("live-vs-sim sweep is not a -short test")
	}
	for seed := int64(0); seed < *liveSeeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rep, err := CheckSeed(seed, Options{Live: true})
			if err != nil {
				t.Fatalf("seed %d not runnable (generator must emit valid workloads): %v", seed, err)
			}
			if !rep.OK() {
				t.Errorf("live-vs-sim mismatch:\n%s", rep)
			}
		})
	}
}
