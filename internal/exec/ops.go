package exec

import (
	"bytes"
	"slices"
	"sort"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// FilterProject applies an optional predicate and an optional
// projection; with both nil it is a pass-through.
type FilterProject struct {
	Filter EvalFunc   // nil passes all tuples
	Projs  []EvalFunc // nil forwards tuples unchanged
	Out    Consumer

	// ColFilter/ColProjs are the column-compiled forms of Filter and
	// Projs (CompileCol); when set and their kernels apply, PushCols
	// runs vectorized (colops.go). Optional: the row closures above
	// remain the semantic oracle and the fallback.
	ColFilter *ColExpr
	ColProjs  []ColExpr

	lastWM  uint64
	wmSeen  bool
	flushed bool

	// Batched-path scratch, reused across PushBatch calls. Containers
	// only — output tuple backing arrays are allocated per batch since
	// downstream operators may retain the tuples.
	filtBuf Batch
	outBuf  Batch

	// Columnar-path scratch (colops.go): the filter-compacted input
	// columns and the projected output batch, reused across PushCols
	// calls. Downstream consumers see them only during the call.
	colPass ColBatch
	colOut  ColBatch
}

// Push implements Consumer.
func (o *FilterProject) Push(t Tuple) {
	if o.Filter != nil && !o.Filter(t).AsBool() {
		return
	}
	if o.Projs == nil {
		o.Out.Push(t)
		return
	}
	out := make(Tuple, len(o.Projs))
	for i, p := range o.Projs {
		out[i] = p(t)
	}
	o.Out.Push(out)
}

// PushBatch implements BatchConsumer: the predicate runs over the
// whole batch into a reused scratch run, then the projection
// materializes every surviving row out of a single backing allocation
// instead of one per tuple.
//
//qap:hot
func (o *FilterProject) PushBatch(b Batch) {
	pass := b
	if o.Filter != nil {
		pass = o.filtBuf[:0]
		for _, t := range b {
			if o.Filter(t).AsBool() {
				pass = append(pass, t)
			}
		}
		o.filtBuf = pass
	}
	if len(pass) == 0 {
		return
	}
	if o.Projs == nil {
		PushAll(o.Out, pass)
		return
	}
	np := len(o.Projs)
	backing := make([]sqlval.Value, len(pass)*np) //qap:allow hotalloc -- deliberate: one backing per batch, retained by downstream consumers
	out := o.outBuf[:0]
	for i, t := range pass {
		row := backing[i*np : (i+1)*np : (i+1)*np]
		for k, p := range o.Projs {
			row[k] = p(t)
		}
		out = append(out, Tuple(row))
	}
	o.outBuf = out
	PushAll(o.Out, out)
}

// Advance implements Consumer.
func (o *FilterProject) Advance(wm uint64) {
	if o.wmSeen && wm <= o.lastWM {
		return
	}
	o.lastWM, o.wmSeen = wm, true
	o.Out.Advance(wm)
}

// Flush implements Consumer.
func (o *FilterProject) Flush() {
	if o.flushed {
		return
	}
	o.flushed = true
	o.Out.Flush()
}

// Union merges several input streams into one output. Create it with
// NewUnion, then attach each upstream to its own port (Port(i)). The
// union forwards the *minimum* watermark over its ports — an upstream
// aggregate flushing epoch e on its own Advance must deliver those
// rows before a downstream consumer (a super-aggregate, say) closes
// epoch e, so the union may not advance until every input has. Flush
// is likewise forwarded only after every port has flushed.
type Union struct {
	Out Consumer

	ports       []*unionPort
	lastWM      uint64
	wmForwarded bool
	flushed     int
}

// NewUnion creates a union with n input ports.
func NewUnion(n int, out Consumer) *Union {
	u := &Union{Out: out}
	u.ports = make([]*unionPort, n)
	for i := range u.ports {
		u.ports[i] = &unionPort{u: u}
	}
	return u
}

// Port returns the i'th input port.
func (u *Union) Port(i int) Consumer { return u.ports[i] }

// Inputs reports the number of ports.
func (u *Union) Inputs() int { return len(u.ports) }

// maybeAdvance forwards the minimum watermark across ports when it
// increases. Ports that have flushed no longer constrain the minimum.
func (u *Union) maybeAdvance() {
	min := ^uint64(0)
	live := false
	for _, p := range u.ports {
		if p.flushed {
			continue
		}
		live = true
		if !p.wmSeen {
			return // a port has not advanced yet
		}
		if p.wm < min {
			min = p.wm
		}
	}
	if !live {
		return
	}
	if !u.wmForwarded || min > u.lastWM {
		u.lastWM, u.wmForwarded = min, true
		u.Out.Advance(min)
	}
}

type unionPort struct {
	u       *Union
	wm      uint64
	wmSeen  bool
	flushed bool
}

func (p *unionPort) Push(t Tuple) { p.u.Out.Push(t) }

// PushBatch implements BatchConsumer: a union port forwards tuples
// unchanged, so the batch passes straight through.
func (p *unionPort) PushBatch(b Batch) { PushAll(p.u.Out, b) }

func (p *unionPort) Advance(wm uint64) {
	if p.wmSeen && wm <= p.wm {
		return
	}
	p.wm, p.wmSeen = wm, true
	p.u.maybeAdvance()
}

func (p *unionPort) Flush() {
	if p.flushed {
		return
	}
	p.flushed = true
	p.u.flushed++
	if p.u.flushed == len(p.u.ports) {
		p.u.Out.Flush()
		return
	}
	// This port no longer holds the minimum back.
	p.u.maybeAdvance()
}

// AggColumn configures one aggregate of an aggregation operator.
type AggColumn struct {
	Factory AccumFactory
	// Arg evaluates the aggregate argument; nil means COUNT(*)-style
	// (count every tuple).
	Arg EvalFunc
}

// AggregateConfig configures a tumbling-window aggregation.
type AggregateConfig struct {
	// PreFilter applies to input tuples before grouping (a pushed-down
	// WHERE); nil passes everything.
	PreFilter EvalFunc
	// GroupBy computes the group key values from an input tuple.
	GroupBy []EvalFunc
	// EpochIdx is the index in GroupBy of the temporal expression the
	// tumbling window tumbles on; -1 blocks until Flush.
	EpochIdx int
	// EpochOfWM translates a base-time watermark into the minimal
	// epoch value any future tuple can have; groups below it flush.
	// Required when EpochIdx >= 0.
	EpochOfWM func(uint64) sqlval.Value
	// Aggs are the aggregate columns, appended after the group values.
	Aggs []AggColumn
	// ColPreFilter/ColGroupBy/ColArgs are the column-compiled forms of
	// PreFilter, GroupBy, and each AggColumn.Arg (ColArgs is
	// index-aligned with Aggs; nil entries mean COUNT(*)). When set and
	// their kernels apply, PushCols aggregates vectorized (colops.go);
	// otherwise the row path runs. Optional.
	ColPreFilter *ColExpr
	ColGroupBy   []ColExpr
	ColArgs      []*ColExpr
	// ColEmit, when set, delivers each emitted epoch batch through
	// PushColsAll (pivoting the rows into a column batch) instead of
	// PushAll, so a columnar downstream aggregate consumes it on its
	// vectorized path. Observably identical by the ColConsumer
	// contract; rows with mixed-kind columns fall back to PushAll.
	ColEmit bool
	// Having filters finished groups; it sees groups++aggs. Nil passes
	// all groups.
	Having EvalFunc
	// Post computes the output tuple from groups++aggs; nil emits
	// groups++aggs unchanged.
	Post []EvalFunc
	Out  Consumer
	// OnEpochFlush, when set, observes every non-empty emission: wm is
	// the watermark that closed the epochs (the last one seen; 0 at a
	// data-free Flush), groups the closed (epoch, group) states, rows
	// the result rows emitted after HAVING. Purely observational — it
	// runs after the rows are pushed and must not touch them.
	OnEpochFlush func(wm uint64, groups, rows int)
	// SizeHint pre-sizes the group hash state to an expected live group
	// count, typically a previous run's GroupHighWater (the cluster
	// runner threads these across Deployment.Run calls). Purely a
	// warm-start performance knob: no output depends on it.
	SizeHint int
}

type groupState struct {
	// key is the group's encoded AppendKey bytes, carved from keySlab.
	// The groups map owns its own string copy of it; a pending group
	// (created by the columnar path, see colPending) has no map entry
	// yet and key is its only identity.
	key   []byte
	vals  []sqlval.Value
	accs  []Accum
	epoch sqlval.Value
}

// Aggregate is the tumbling-window aggregation operator. It maintains
// one accumulator row per group and emits each group exactly once,
// when the watermark passes the group's epoch (or at Flush). Tuples
// arriving after their epoch closed (watermark violations) are counted
// and dropped rather than silently re-opening the group, which would
// emit a duplicate partial result downstream.
type Aggregate struct {
	cfg    AggregateConfig
	groups map[string]*groupState

	// Late counts dropped watermark-violating tuples.
	Late int64

	boundary    sqlval.Value
	boundarySet bool
	lastWM      uint64
	wmSeen      bool
	flushed     bool

	// Batched-path scratch and slabs. valsBuf/keyBuf are reused per
	// tuple (the key encoding probes the map via string(keyBuf), which
	// Go compiles without a copy); the slabs carve groupState structs,
	// stored group values, and accumulator slots out of chunked arrays
	// so a new group costs amortized rather than per-group allocations.
	valsBuf   []sqlval.Value
	keyBuf    []byte
	stateSlab []groupState
	valSlab   []sqlval.Value
	accSlab   []Accum
	keySlab   []byte
	// emitBuf and rowBuf are flush-path scratch: the batch container
	// reused across epochs, and (with Post set) the groups++aggs input
	// row Having/Post read but downstream never sees. doneBuf collects
	// the epoch's retired groups and sortBuf is the radix-sort
	// distribution scratch; both are reused across epochs (they hold
	// stale *groupState pointers between flushes, bounding retention to
	// one epoch's cardinality).
	emitBuf Batch
	rowBuf  Tuple
	doneBuf []*groupState
	sortBuf []*groupState
	// minEpoch tracks the smallest non-NULL epoch among live groups, so
	// an Advance whose boundary has not passed it skips the full group
	// scan — most watermarks close no epoch but would otherwise pay
	// O(groups) compares each.
	minEpoch sqlval.Value
	minSet   bool

	// Columnar fast-path state (colops.go): an open-addressing cache
	// over the groups map keyed by raw uint64 key words, plus per-batch
	// kernel vector scratch. colDirty invalidates the cache whenever
	// emitBefore retires groups; colReady memoizes kernel support.
	colTable   []colSlot
	colCount   int
	colGen     uint32
	colWords   []uint64
	colDirty   bool
	colReady   int8 // 0 unknown, 1 supported, -1 row path only
	colKeyVecs [][]uint64
	colArgVecs [][]uint64
	// colPending are groups the columnar path created that have no
	// groups-map entry yet: their only index is their colTable slot,
	// which skips the per-group map insert and key-string allocation on
	// the hot path. They sync into the map lazily — before any row-path
	// lookup (colSyncPending) and at emitBefore, which drains or syncs
	// every pending group, restoring the everything-in-the-map
	// invariant whenever the slot table is about to be invalidated.
	colPending []*groupState
	// emitCols is the ColEmit pivot scratch (see AggregateConfig).
	emitCols ColBatch

	// Dense columnar group store (colops.go): while every input batch
	// is all-uint and every aggregate is word-vectorizable, groups live
	// as struct-of-arrays — key words in colWords (indexed by
	// denseKeys), one state word per (agg, group) in denseAccW — with
	// no groupState, no map entry and no Accum objects. The first
	// row-path push or non-conforming batch migrates every dense group
	// into the ordinary representation (denseMigrate); dense mode only
	// (re-)activates while the map and pending list are empty, so at
	// any instant either the dense arrays or the map own the groups,
	// never both.
	denseReady int8 // 0 unknown, 1 vectorizable aggs, -1 row/col-generic only
	denseAcc   []denseAccKind
	denseN     int
	denseKeys  [][]uint64 // per group: key-word view into colWords
	denseAccW  [][]uint64 // per agg: one state word per group
	denseDone  []int32
	denseRows  []int32
	denseSlots []int32
	densePos   []uint16
	hiGroups   int
	survWords  []uint64
	survAccW   [][]uint64
}

// slabChunk is how many groups' worth of state one slab chunk holds.
const slabChunk = 256

// NewAggregate builds the operator.
func NewAggregate(cfg AggregateConfig) *Aggregate {
	return &Aggregate{cfg: cfg, groups: make(map[string]*groupState, cfg.SizeHint)}
}

// Push implements Consumer.
func (o *Aggregate) Push(t Tuple) {
	if o.cfg.PreFilter != nil && !o.cfg.PreFilter(t).AsBool() {
		return
	}
	vals := make([]sqlval.Value, len(o.cfg.GroupBy))
	for i, g := range o.cfg.GroupBy {
		vals[i] = g(t)
	}
	if o.boundarySet && o.cfg.EpochIdx >= 0 &&
		!vals[o.cfg.EpochIdx].IsNull() && vals[o.cfg.EpochIdx].Compare(o.boundary) < 0 {
		o.Late++
		return
	}
	key := Key(vals)
	if o.denseN > 0 {
		o.denseMigrate()
	}
	if len(o.colPending) > 0 {
		o.colSyncPending()
	}
	gs, ok := o.groups[key]
	if !ok {
		gs = o.newGroup([]byte(key), vals)
		o.groups[key] = gs
	}
	for i, a := range o.cfg.Aggs {
		if a.Arg == nil {
			gs.accs[i].Add(sqlval.Uint(1))
		} else {
			gs.accs[i].Add(a.Arg(t))
		}
	}
}

// PushBatch implements BatchConsumer with the amortized per-tuple
// path: group values evaluate into a reused scratch slice, the key
// encodes into a reused byte buffer, and the map is probed once per
// tuple without materializing a key string unless the group is new.
//
//qap:hot
func (o *Aggregate) PushBatch(b Batch) {
	for _, t := range b {
		o.pushFast(t)
	}
}

// pushFast is the amortized per-tuple aggregate path behind PushBatch.
//
//qap:hot
func (o *Aggregate) pushFast(t Tuple) {
	if o.cfg.PreFilter != nil && !o.cfg.PreFilter(t).AsBool() {
		return
	}
	vals := o.valsBuf[:0]
	for _, g := range o.cfg.GroupBy {
		vals = append(vals, g(t))
	}
	o.valsBuf = vals
	if o.boundarySet && o.cfg.EpochIdx >= 0 &&
		!vals[o.cfg.EpochIdx].IsNull() && vals[o.cfg.EpochIdx].Compare(o.boundary) < 0 {
		o.Late++
		return
	}
	key := AppendKey(o.keyBuf[:0], vals)
	o.keyBuf = key
	if o.denseN > 0 {
		o.denseMigrate()
	}
	if len(o.colPending) > 0 {
		o.colSyncPending()
	}
	gs, ok := o.groups[string(key)]
	if !ok {
		gs = o.newGroup(key, vals)
		o.groups[string(key)] = gs
	}
	for i, a := range o.cfg.Aggs {
		if a.Arg == nil {
			gs.accs[i].Add(sqlval.Uint(1))
		} else {
			gs.accs[i].Add(a.Arg(t))
		}
	}
}

// newGroup carves a fresh group's state from the slabs; registering it
// (in the groups map, or in colPending) is the caller's job. key and
// vals are caller-owned scratch and are copied.
func (o *Aggregate) newGroup(key []byte, vals []sqlval.Value) *groupState {
	if len(o.stateSlab) == 0 {
		o.stateSlab = make([]groupState, slabChunk)
	}
	gs := &o.stateSlab[0]
	o.stateSlab = o.stateSlab[1:]

	nv := len(o.cfg.GroupBy)
	if len(o.valSlab)+nv > cap(o.valSlab) {
		o.valSlab = make([]sqlval.Value, 0, maxInt(slabChunk*nv, nv))
	}
	start := len(o.valSlab)
	o.valSlab = o.valSlab[:start+nv]
	stored := o.valSlab[start : start+nv : start+nv]
	copy(stored, vals)

	na := len(o.cfg.Aggs)
	if len(o.accSlab)+na > cap(o.accSlab) {
		o.accSlab = make([]Accum, 0, maxInt(slabChunk*na, na))
	}
	astart := len(o.accSlab)
	o.accSlab = o.accSlab[:astart+na]
	accs := o.accSlab[astart : astart+na : astart+na]
	for i, a := range o.cfg.Aggs {
		accs[i] = a.Factory()
	}

	if len(o.keySlab)+len(key) > cap(o.keySlab) {
		o.keySlab = make([]byte, 0, maxInt(slabChunk*32, len(key)))
	}
	kstart := len(o.keySlab)
	o.keySlab = append(o.keySlab, key...)
	stored2 := o.keySlab[kstart:len(o.keySlab):len(o.keySlab)]

	gs.key, gs.vals, gs.accs = stored2, stored, accs
	if o.cfg.EpochIdx >= 0 {
		gs.epoch = stored[o.cfg.EpochIdx]
		o.noteEpoch(gs.epoch)
	}
	return gs
}

// colSyncPending registers every pending columnar-created group in the
// groups map, restoring the invariant the row path relies on. Runs
// only when row- and column-path pushes interleave between emits, or
// when an emit leaves survivors whose slot-table entries are about to
// be invalidated.
func (o *Aggregate) colSyncPending() {
	for _, gs := range o.colPending {
		o.groups[string(gs.key)] = gs
	}
	o.colPending = o.colPending[:0]
}

// noteEpoch folds a new group's epoch into the live minimum.
func (o *Aggregate) noteEpoch(epoch sqlval.Value) {
	if !epoch.IsNull() && (!o.minSet || epoch.Compare(o.minEpoch) < 0) {
		o.minEpoch, o.minSet = epoch, true
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Advance implements Consumer: groups whose epoch precedes every
// possible future epoch are finished and emitted.
func (o *Aggregate) Advance(wm uint64) {
	if o.wmSeen && wm <= o.lastWM {
		return
	}
	o.lastWM, o.wmSeen = wm, true
	if o.cfg.EpochIdx >= 0 && o.cfg.EpochOfWM != nil {
		boundary := o.cfg.EpochOfWM(wm)
		o.boundary, o.boundarySet = boundary, true
		o.emitBefore(&boundary)
	}
	o.Out().Advance(wm)
}

// Flush implements Consumer: every remaining group is emitted.
func (o *Aggregate) Flush() {
	if o.flushed {
		return
	}
	o.flushed = true
	o.emitBefore(nil)
	o.Out().Flush()
}

// Out returns the downstream consumer.
func (o *Aggregate) Out() Consumer { return o.cfg.Out }

// GroupCount reports the live (unflushed) group count, used by memory
// accounting and tests.
func (o *Aggregate) GroupCount() int { return len(o.groups) + len(o.colPending) + o.denseN }

// GroupHighWater reports the peak live group count the operator has
// held, the natural AggregateConfig.SizeHint for a later run of the
// same plan. Peaks occur just before emission, so emitBefore samples
// the count on entry.
func (o *Aggregate) GroupHighWater() int {
	if n := o.GroupCount(); n > o.hiGroups {
		o.hiGroups = n
	}
	return o.hiGroups
}

// emitBefore flushes groups with epoch < boundary (all groups when
// boundary is nil), in deterministic (epoch, key) order.
func (o *Aggregate) emitBefore(boundary *sqlval.Value) {
	if n := o.GroupCount(); n > o.hiGroups {
		o.hiGroups = n
	}
	if boundary != nil && (!o.minSet || o.minEpoch.Compare(*boundary) >= 0) {
		// No live group's epoch precedes the boundary (NULL-epoch groups
		// only drain at Flush): nothing to emit, skip the group scan.
		return
	}
	if o.denseN > 0 {
		// Dense mode owns every live group (the map and pending list
		// are empty by invariant); it drains, sorts and emits from the
		// flat arrays directly.
		o.denseEmit(boundary)
		return
	}
	done := o.doneBuf[:0]
	var survMin sqlval.Value
	survSet := false
	mapTotal := len(o.groups)
	for _, gs := range o.groups { //qap:allow maprange -- groups collected then sorted below
		if boundary != nil && (gs.epoch.IsNull() || gs.epoch.Compare(*boundary) >= 0) {
			if !gs.epoch.IsNull() && (!survSet || gs.epoch.Compare(survMin) < 0) {
				survMin, survSet = gs.epoch, true
			}
			continue
		}
		done = append(done, gs)
	}
	mapDone := len(done)
	pendingSurvivors := false
	if len(o.colPending) > 0 {
		// Pending groups drain like map groups; survivors sync into the
		// map now, because retiring anything below invalidates the slot
		// table that was their only index.
		for _, gs := range o.colPending {
			if boundary != nil && (gs.epoch.IsNull() || gs.epoch.Compare(*boundary) >= 0) {
				if !gs.epoch.IsNull() && (!survSet || gs.epoch.Compare(survMin) < 0) {
					survMin, survSet = gs.epoch, true
				}
				o.groups[string(gs.key)] = gs
				pendingSurvivors = true
				continue
			}
			done = append(done, gs)
		}
		if len(done) > mapDone || pendingSurvivors {
			o.colPending = o.colPending[:0]
		}
	}
	o.doneBuf = done
	o.minEpoch, o.minSet = survMin, survSet
	if len(done) == 0 {
		return
	}
	// Retired groups may be cached in the columnar slot table; make the
	// next PushCols rebuild it (colops.go).
	o.colDirty = true
	if mapDone == mapTotal && !pendingSurvivors {
		// Every group drained (always true at Flush; the common case at
		// an epoch boundary of a tumbling window). Rebuilding the map
		// pre-sized from this epoch's cardinality beats per-key deletes:
		// insertions up to that count never rehash, and a cardinality
		// spike's bucket memory is returned instead of lingering for the
		// rest of the run. Emission order cannot change — groups are
		// sorted before emitting — so this is a pure cost change. The
		// terminal Flush sees no more input, so pre-sizing there would
		// allocate one epoch's bucket array just to throw it away.
		if boundary == nil {
			o.groups = make(map[string]*groupState)
		} else {
			o.groups = make(map[string]*groupState, len(done))
		}
	} else {
		// done[:mapDone] came from the map; pending retirees past that
		// were never inserted.
		for _, gs := range done[:mapDone] {
			delete(o.groups, string(gs.key))
		}
	}
	sameEpoch := true
	for _, gs := range done[1:] {
		if gs.epoch != done[0].epoch {
			sameEpoch = false
			break
		}
	}
	if sameEpoch {
		// The usual tumbling-window drain closes a single epoch; the
		// (epoch, key) order degenerates to key order, so the radix
		// sort applies (identical order to strings.Compare at a
		// fraction of the cost — see sortGroupsByKey).
		if cap(o.sortBuf) < len(done) {
			o.sortBuf = make([]*groupState, len(done))
		}
		sortGroupsByKey(done, o.sortBuf[:len(done)], 0)
	} else {
		slices.SortFunc(done, func(a, b *groupState) int {
			if c := a.epoch.Compare(b.epoch); c != 0 {
				return c
			}
			return bytes.Compare(a.key, b.key)
		})
	}
	// Emit the epoch as one batch: output rows carve from a single
	// backing array (fresh per flush — downstream retains them) and the
	// whole run moves downstream through the batched path, crossing
	// island boundaries as one captured batch item.
	out := o.emitBuf[:0]
	if o.cfg.Post == nil {
		width := len(o.cfg.GroupBy) + len(o.cfg.Aggs)
		backing := make([]sqlval.Value, 0, len(done)*width)
		for _, gs := range done {
			start := len(backing)
			backing = append(backing, gs.vals...)
			for _, a := range gs.accs {
				backing = append(backing, a.Result())
			}
			row := Tuple(backing[start:len(backing):len(backing)])
			if o.cfg.Having != nil && !o.cfg.Having(row).AsBool() {
				backing = backing[:start]
				continue
			}
			out = append(out, row)
		}
	} else {
		np := len(o.cfg.Post)
		backing := make([]sqlval.Value, 0, len(done)*np)
		for _, gs := range done {
			row := o.rowBuf[:0]
			row = append(row, gs.vals...)
			for _, a := range gs.accs {
				row = append(row, a.Result())
			}
			o.rowBuf = row
			if o.cfg.Having != nil && !o.cfg.Having(row).AsBool() {
				continue
			}
			start := len(backing)
			for _, p := range o.cfg.Post {
				backing = append(backing, p(row))
			}
			out = append(out, Tuple(backing[start:len(backing):len(backing)]))
		}
	}
	o.emitBuf = out
	if o.cfg.ColEmit && len(out) > 0 && o.emitCols.SetFromRows(out) {
		PushColsAll(o.cfg.Out, &o.emitCols)
	} else {
		PushAll(o.cfg.Out, out)
	}
	if o.cfg.OnEpochFlush != nil {
		o.cfg.OnEpochFlush(o.lastWM, len(done), len(out))
	}
}

// radixCutoff is the segment size below which sortGroupsByKey falls
// back to insertion sort: a counting pass over 257 buckets costs more
// than a handful of string compares.
const radixCutoff = 24

// keyBucket maps byte `depth` of key k to a radix bucket. Bucket 0 is
// "key ended", which sorts before every byte value — exactly where
// strings.Compare puts a strict prefix.
func keyBucket(k []byte, depth int) int {
	if depth >= len(k) {
		return 0
	}
	return int(k[depth]) + 1
}

// insertGroupsByKey insertion-sorts a small segment by full-key
// compare.
func insertGroupsByKey(gs []*groupState) {
	for i := 1; i < len(gs); i++ {
		g := gs[i]
		j := i - 1
		for j >= 0 && bytes.Compare(gs[j].key, g.key) > 0 {
			gs[j+1] = gs[j]
			j--
		}
		gs[j+1] = g
	}
}

// sortGroupsByKey orders gs by ascending key bytes — the same total
// order strings.Compare induces (keys are unique, so no tie exists and
// stability is moot) — with an MSD byte radix sort. A comparison sort
// of n groups pays n·log n full-key compares; one radix pass pays n
// byte reads. Encoded keys waste most positions (tag bytes and the
// high bytes of big-endian words are near-constant), so the
// fixed-width fast path pre-scans OR/AND masks per byte position and
// radixes only the positions that actually vary; variable-width key
// sets take the general pass-per-byte path, which still descends
// constant bytes without moving anything. scratch must be the same
// length as gs; both are clobbered.
func sortGroupsByKey(gs, scratch []*groupState, depth int) {
	if n := len(gs); n > radixCutoff && depth == 0 {
		if w := len(gs[0].key); w > 0 && w <= 64 {
			fixed := true
			for _, g := range gs {
				if len(g.key) != w {
					fixed = false
					break
				}
			}
			if fixed {
				var orb, andb [64]byte
				for p := 0; p < w; p++ {
					andb[p] = 0xff
				}
				for _, g := range gs {
					for p, b := range g.key {
						orb[p] |= b
						andb[p] &= b
					}
				}
				var pos [64]uint8
				np := 0
				for p := 0; p < w; p++ {
					if orb[p] != andb[p] {
						pos[np] = uint8(p)
						np++
					}
				}
				if np > 0 {
					sortGroupsPos(gs, scratch, pos[:np], 0)
				}
				return
			}
		}
	}
	for {
		n := len(gs)
		if n <= radixCutoff {
			// Insertion sort on full keys: Go's string compare starts at
			// byte 0, re-scanning the shared prefix, but segments this
			// small don't earn a counting pass.
			insertGroupsByKey(gs)
			return
		}
		var counts [257]int
		for _, g := range gs {
			counts[keyBucket(g.key, depth)]++
		}
		first := 0
		for counts[first] == 0 {
			first++
		}
		if counts[first] == n {
			if first == 0 {
				return // every key ends at depth: all equal
			}
			depth++ // whole segment shares this byte: descend in place
			continue
		}
		offs := counts
		sum := 0
		for b, c := range counts {
			offs[b] = sum
			sum += c
		}
		for _, g := range gs {
			b := keyBucket(g.key, depth)
			scratch[offs[b]] = g
			offs[b]++
		}
		copy(gs, scratch)
		start := 0
		for b, c := range counts {
			// Bucket 0 holds keys that end at depth — equal, hence unique,
			// hence at most one; no recursion needed.
			if b > 0 && c > 1 {
				sortGroupsByKey(gs[start:start+c], scratch[start:start+c], depth+1)
			}
			start += c
		}
		return
	}
}

// sortGroupsPos is sortGroupsByKey's fixed-width engine: an MSD radix
// over just the varying byte positions pos (ascending). A position a
// sub-segment happens to share still descends without moving anything.
func sortGroupsPos(gs, scratch []*groupState, pos []uint8, depth int) {
	for {
		n := len(gs)
		if n <= radixCutoff || depth >= len(pos) {
			insertGroupsByKey(gs)
			return
		}
		p := int(pos[depth])
		var counts [256]int
		for _, g := range gs {
			counts[g.key[p]]++
		}
		first := -1
		single := true
		for b, c := range counts {
			if c != 0 {
				if first < 0 {
					first = b
				} else {
					single = false
					break
				}
			}
		}
		if single {
			depth++
			continue
		}
		offs := counts
		sum := 0
		for b, c := range counts {
			offs[b] = sum
			sum += c
		}
		for _, g := range gs {
			b := g.key[p]
			scratch[offs[b]] = g
			offs[b]++
		}
		copy(gs, scratch)
		start := 0
		for b := 0; b < 256; b++ {
			c := counts[b]
			if c > 1 {
				sortGroupsPos(gs[start:start+c], scratch[start:start+c], pos, depth+1)
			}
			start += c
		}
		return
	}
}

// JoinSideConfig configures one input of a join.
type JoinSideConfig struct {
	// Keys compute the composite equi-join key from a side tuple; the
	// two sides' key lists are index-aligned.
	Keys []EvalFunc
	// ColKeys are the column-compiled forms of Keys; when set and
	// their kernels apply, PushCols evaluates the side's keys
	// vectorized before probing (colops.go). Optional.
	ColKeys []ColExpr
	// Width is the side's column count, needed for outer-join NULL
	// padding.
	Width int
	// MinFutureKey gives, for a base-time watermark, the smallest
	// temporal key value any *future* tuple of this side can produce;
	// the opposite side evicts entries below it. Nil disables
	// eviction until Flush.
	MinFutureKey func(uint64) sqlval.Value
	// TemporalIdx is the position of the temporal key within Keys.
	TemporalIdx int
}

// JoinConfig configures a tumbling-window symmetric hash equi-join.
type JoinConfig struct {
	Left, Right JoinSideConfig
	Type        gsql.JoinType
	// Residual filters joined pairs; it sees left columns followed by
	// right columns. Nil passes all pairs.
	Residual EvalFunc
	// Projs compute the output tuple over left++right columns.
	Projs []EvalFunc
	Out   Consumer
}

type joinEntry struct {
	key     string
	tuple   Tuple
	tkey    sqlval.Value
	matched bool
}

// Join is the symmetric hash join: each arriving tuple probes the
// opposite side's table and emits matches immediately, then is
// inserted into its own side's table. Watermarks evict entries that
// can no longer match, emitting outer-join padding for unmatched rows.
type Join struct {
	cfg        JoinConfig
	leftTab    map[string][]*joinEntry
	rightTab   map[string][]*joinEntry
	leftPort   joinPort
	rightPort  joinPort
	lastWM     uint64
	wmSeen     bool
	flushCount int
	flushed    bool

	// Batched-path scratch: key values, key encoding, and the combined
	// probe row are reused per tuple; entries carve from a slab. The
	// combined scratch is safe because Residual and emit only read it —
	// the projected output row is a fresh allocation.
	valsBuf   []sqlval.Value
	keyBuf    []byte
	combBuf   Tuple
	entrySlab []joinEntry
	// Columnar-path scratch (colops.go): per-batch key vectors.
	colKeyVecs [][]uint64
}

// NewJoin builds the operator.
func NewJoin(cfg JoinConfig) *Join {
	j := &Join{
		cfg:      cfg,
		leftTab:  make(map[string][]*joinEntry),
		rightTab: make(map[string][]*joinEntry),
	}
	j.leftPort = joinPort{j: j, left: true}
	j.rightPort = joinPort{j: j}
	return j
}

// LeftIn returns the left input port.
func (j *Join) LeftIn() Consumer { return &j.leftPort }

// RightIn returns the right input port.
func (j *Join) RightIn() Consumer { return &j.rightPort }

type joinPort struct {
	j    *Join
	left bool
}

func (p *joinPort) Push(t Tuple)      { p.j.push(t, p.left) }
func (p *joinPort) Advance(wm uint64) { p.j.advance(wm) }
func (p *joinPort) Flush()            { p.j.portFlush() }

// PushBatch implements BatchConsumer via the amortized build/probe.
//
//qap:hot
func (p *joinPort) PushBatch(b Batch) {
	for _, t := range b {
		p.j.pushFast(t, p.left)
	}
}

func (j *Join) push(t Tuple, left bool) {
	side := &j.cfg.Left
	myTab, otherTab := j.leftTab, j.rightTab
	if !left {
		side = &j.cfg.Right
		myTab, otherTab = j.rightTab, j.leftTab
	}
	vals := make([]sqlval.Value, len(side.Keys))
	for i, k := range side.Keys {
		vals[i] = k(t)
	}
	key := Key(vals)
	e := &joinEntry{key: key, tuple: t, tkey: vals[side.TemporalIdx]}
	for _, oe := range otherTab[key] {
		var combined Tuple
		if left {
			combined = j.combine(t, oe.tuple)
		} else {
			combined = j.combine(oe.tuple, t)
		}
		if j.cfg.Residual != nil && !j.cfg.Residual(combined).AsBool() {
			continue
		}
		e.matched, oe.matched = true, true
		j.emit(combined)
	}
	myTab[key] = append(myTab[key], e)
}

// pushFast is push with the per-tuple allocations amortized: key
// values and encoding go through reused buffers, the map is probed
// with string(keyBuf) (no copy), the key string is materialized only
// when no entry or match already interns it, the combined probe row is
// scratch, and entries carve from a slab.
//
//qap:hot
func (j *Join) pushFast(t Tuple, left bool) {
	side := &j.cfg.Left
	myTab, otherTab := j.leftTab, j.rightTab
	if !left {
		side = &j.cfg.Right
		myTab, otherTab = j.rightTab, j.leftTab
	}
	vals := j.valsBuf[:0]
	for _, k := range side.Keys {
		vals = append(vals, k(t))
	}
	j.valsBuf = vals
	j.probeInsert(t, left, side, myTab, otherTab, vals)
}

// probeInsert is the build/probe body of pushFast, taking the
// already-evaluated key values (caller-owned scratch; read only
// during the call). The columnar join path (colops.go) enters here
// with kernel-evaluated keys.
//
//qap:hot
func (j *Join) probeInsert(t Tuple, left bool, side *JoinSideConfig, myTab, otherTab map[string][]*joinEntry, vals []sqlval.Value) {
	kb := AppendKey(j.keyBuf[:0], vals)
	j.keyBuf = kb
	matches := otherTab[string(kb)]
	mine := myTab[string(kb)]
	var key string
	switch {
	case len(mine) > 0:
		key = mine[0].key
	case len(matches) > 0:
		key = matches[0].key
	default:
		key = string(kb)
	}
	if len(j.entrySlab) == 0 {
		j.entrySlab = make([]joinEntry, slabChunk) //qap:allow hotalloc -- slab refill, amortized over slabChunk entries
	}
	e := &j.entrySlab[0]
	j.entrySlab = j.entrySlab[1:]
	*e = joinEntry{key: key, tuple: t, tkey: vals[side.TemporalIdx]}
	for _, oe := range matches {
		comb := j.combBuf[:0]
		if left {
			comb = append(comb, t...)
			comb = append(comb, oe.tuple...)
		} else {
			comb = append(comb, oe.tuple...)
			comb = append(comb, t...)
		}
		j.combBuf = comb
		if j.cfg.Residual != nil && !j.cfg.Residual(comb).AsBool() {
			continue
		}
		e.matched, oe.matched = true, true
		j.emit(comb)
	}
	myTab[key] = append(mine, e)
}

func (j *Join) combine(l, r Tuple) Tuple {
	out := make(Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func (j *Join) emit(combined Tuple) {
	out := make(Tuple, len(j.cfg.Projs))
	for i, p := range j.cfg.Projs {
		out[i] = p(combined)
	}
	j.cfg.Out.Push(out)
}

func (j *Join) advance(wm uint64) {
	if j.wmSeen && wm <= j.lastWM {
		return
	}
	j.lastWM, j.wmSeen = wm, true
	// Left entries survive only while a future right tuple could still
	// produce their key, and vice versa.
	if j.cfg.Right.MinFutureKey != nil {
		b := j.cfg.Right.MinFutureKey(wm)
		j.leftTab = j.evict(j.leftTab, &b, true)
	}
	if j.cfg.Left.MinFutureKey != nil {
		b := j.cfg.Left.MinFutureKey(wm)
		j.rightTab = j.evict(j.rightTab, &b, false)
	}
	j.cfg.Out.Advance(wm)
}

func (j *Join) portFlush() {
	j.flushCount++
	if j.flushCount < 2 || j.flushed {
		return
	}
	j.flushed = true
	j.leftTab = j.evict(j.leftTab, nil, true)
	j.rightTab = j.evict(j.rightTab, nil, false)
	j.cfg.Out.Flush()
}

// evict removes entries with temporal key below boundary (all when
// nil), emitting outer-join padding for never-matched rows. It returns
// the table to keep using: when an epoch fully drains, a fresh map
// pre-sized from the drained cardinality replaces the old one (see the
// matching rebuild in Aggregate.emitBefore).
func (j *Join) evict(tab map[string][]*joinEntry, boundary *sqlval.Value, left bool) map[string][]*joinEntry {
	var unmatched []*joinEntry
	drained := 0
	for key, entries := range tab { //qap:allow maprange -- delete-only; unmatched sorted before padding
		var keep []*joinEntry
		for _, e := range entries {
			if boundary != nil && e.tkey.Compare(*boundary) >= 0 {
				keep = append(keep, e)
				continue
			}
			if !e.matched && j.padsSide(left) {
				unmatched = append(unmatched, e)
			}
		}
		if len(keep) == 0 {
			delete(tab, key)
			drained++
		} else {
			tab[key] = keep
		}
	}
	if boundary != nil && len(tab) == 0 && drained > 0 {
		tab = make(map[string][]*joinEntry, drained)
	}
	sort.Slice(unmatched, func(a, b int) bool {
		if c := unmatched[a].tkey.Compare(unmatched[b].tkey); c != 0 {
			return c < 0
		}
		return unmatched[a].key < unmatched[b].key
	})
	for _, e := range unmatched {
		j.emit(j.pad(e.tuple, left))
	}
	return tab
}

// padsSide reports whether unmatched rows of the given side appear in
// the output under the configured outer-join type.
func (j *Join) padsSide(left bool) bool {
	switch j.cfg.Type {
	case gsql.JoinLeftOuter:
		return left
	case gsql.JoinRightOuter:
		return !left
	case gsql.JoinFullOuter:
		return true
	default:
		return false
	}
}

// pad builds the combined row for an unmatched outer-join entry with
// NULLs on the missing side.
func (j *Join) pad(t Tuple, left bool) Tuple {
	if left {
		combined := make(Tuple, 0, len(t)+j.cfg.Right.Width)
		combined = append(combined, t...)
		for i := 0; i < j.cfg.Right.Width; i++ {
			combined = append(combined, sqlval.Null)
		}
		return combined
	}
	combined := make(Tuple, 0, len(t)+j.cfg.Left.Width)
	for i := 0; i < j.cfg.Left.Width; i++ {
		combined = append(combined, sqlval.Null)
	}
	return append(combined, t...)
}

// StoredTuples reports the number of buffered tuples, for memory
// accounting and eviction tests.
func (j *Join) StoredTuples() int {
	n := 0
	for _, es := range j.leftTab { //qap:allow maprange -- commutative count
		n += len(es)
	}
	for _, es := range j.rightTab { //qap:allow maprange -- commutative count
		n += len(es)
	}
	return n
}
