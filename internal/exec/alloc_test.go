package exec

import (
	"fmt"
	"testing"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// Committed allocation budgets for the hot path, in allocations per
// operation as measured by testing.AllocsPerRun. A change that pushes
// a measured value above its budget is an allocation regression on the
// batched execution path and should be either fixed or justified by
// raising the budget here with a comment.
const (
	// Key materializes a fresh string per call: the []byte encoding
	// plus the string copy (append growth can add one more).
	allocBudgetKey = 4
	// AppendKey into a warmed buffer is allocation-free.
	allocBudgetAppendKeySteady = 0
	// FilterProject.PushBatch per input tuple: the whole batch shares
	// one projection backing array, so the per-tuple share of a
	// 64-tuple batch stays far below one.
	allocBudgetFilterProjectPerTuple = 0.1
	// Aggregate's batched path per input tuple in the steady state
	// (every group already exists): the key encodes into a reused
	// buffer and the map is probed without materializing a string, so
	// per-tuple allocations round to zero.
	allocBudgetAggregatePerTupleSteady = 0.02
)

// skipIfRace skips allocation-count assertions under the race
// detector, whose instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

func TestAllocsKey(t *testing.T) {
	skipIfRace(t)
	vals := []sqlval.Value{u(1), u(0xABCD), u(99)}
	var s string
	got := testing.AllocsPerRun(100, func() { s = Key(vals) })
	if got > allocBudgetKey {
		t.Errorf("Key: %.2f allocs/op, budget %d", got, allocBudgetKey)
	}
	_ = s
}

func TestAllocsAppendKeySteadyState(t *testing.T) {
	skipIfRace(t)
	vals := []sqlval.Value{u(1), u(0xABCD), u(99)}
	buf := AppendKey(nil, vals) // warm the buffer to full size
	got := testing.AllocsPerRun(100, func() { buf = AppendKey(buf[:0], vals) })
	if got > allocBudgetAppendKeySteady {
		t.Errorf("AppendKey into warm buffer: %.2f allocs/op, budget %d",
			got, allocBudgetAppendKeySteady)
	}
}

func TestAllocsFilterProjectBatch(t *testing.T) {
	skipIfRace(t)
	r := res("time", "srcIP", "len")
	op := &FilterProject{
		Filter: MustCompile(gsql.MustParseExpr("len > 10"), r, nil),
		Projs: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP & 0xFF00"), r, nil),
		},
		Out: Discard{},
	}
	const n = 64
	b := make(Batch, n)
	for i := range b {
		b[i] = Tuple{u(uint64(i)), u(0xABCD), u(uint64(5 + i))} // ~90% pass the filter
	}
	perBatch := testing.AllocsPerRun(100, func() { op.PushBatch(b) })
	if perTuple := perBatch / n; perTuple > allocBudgetFilterProjectPerTuple {
		t.Errorf("FilterProject.PushBatch: %.3f allocs/tuple (%.1f per %d-tuple batch), budget %.3f",
			perTuple, perBatch, n, allocBudgetFilterProjectPerTuple)
	}
}

func TestAllocsAggregateBatchSteadyState(t *testing.T) {
	skipIfRace(t)
	agg := buildFlowsAgg(Discard{})
	// 64 tuples spread over 16 groups, all in epoch 0.
	const n = 64
	b := make(Batch, n)
	for i := range b {
		b[i] = Tuple{u(uint64(i % 50)), u(uint64(i % 16)), u(2), u(100)}
	}
	agg.PushBatch(b) // create every group up front
	perBatch := testing.AllocsPerRun(100, func() { agg.PushBatch(b) })
	if perTuple := perBatch / n; perTuple > allocBudgetAggregatePerTupleSteady {
		t.Errorf("Aggregate.PushBatch steady state: %.4f allocs/tuple (%.1f per %d-tuple batch), budget %.4f",
			perTuple, perBatch, n, allocBudgetAggregatePerTupleSteady)
	}
	if agg.GroupCount() != 16 {
		t.Fatalf("expected 16 groups, got %d", agg.GroupCount())
	}
}

// TestAllocsReport prints the measured values next to their budgets so
// a budget bump has numbers to cite; it never fails.
func TestAllocsReport(t *testing.T) {
	skipIfRace(t)
	vals := []sqlval.Value{u(1), u(0xABCD), u(99)}
	var s string
	key := testing.AllocsPerRun(100, func() { s = Key(vals) })
	_ = s
	buf := AppendKey(nil, vals)
	ak := testing.AllocsPerRun(100, func() { buf = AppendKey(buf[:0], vals) })
	t.Log(fmt.Sprintf("Key: %.2f allocs/op (budget %d); AppendKey steady: %.2f (budget %d)",
		key, allocBudgetKey, ak, allocBudgetAppendKeySteady))
}
