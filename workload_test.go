package qap

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"qap/internal/exec"
	"qap/internal/netgen"
)

// fiftyQueryWorkload builds a 50-query monitoring application like the
// one the paper mentions ("one of our applications runs 50
// simultaneous queries"): a mix of flow aggregations at several
// granularities, filtered variants, HAVING detectors, second-level
// rollups, and self-joins.
func fiftyQueryWorkload() string {
	var b strings.Builder
	groupings := []struct{ sel, gb string }{
		{"srcIP", "srcIP"},
		{"destIP", "destIP"},
		{"srcIP, destIP", "srcIP, destIP"},
		{"subnet, destIP", "srcIP & 0xFFF0 AS subnet, destIP"},
		{"srcIP, destIP, srcPort, destPort", "srcIP, destIP, srcPort, destPort"},
		{"destIP, destPort", "destIP, destPort"},
		{"srcIP, srcPort", "srcIP, srcPort"},
		{"destPort", "destPort"},
		{"srcnet", "srcIP & 0xFF00 AS srcnet"},
		{"dstnet, destPort", "destIP & 0xFFF0 AS dstnet, destPort"},
	}
	n := 0
	for _, epoch := range []int{30, 60, 120} {
		for _, grouping := range groupings {
			n++
			fmt.Fprintf(&b, `
query agg%d:
SELECT tb, %s, COUNT(*) AS cnt, SUM(len) AS bytes
FROM TCP GROUP BY time/%d AS tb, %s
`, n, grouping.sel, epoch, grouping.gb)
		}
	}
	// Filtered variants.
	for i, port := range []int{80, 443, 53, 22, 25} {
		n++
		fmt.Fprintf(&b, `
query svc%d:
SELECT tb, srcIP, COUNT(*) AS cnt
FROM TCP WHERE destPort = %d GROUP BY time/60 AS tb, srcIP
`, i, port)
	}
	// Detectors with HAVING.
	for i, threshold := range []int{50, 200, 1000} {
		n++
		fmt.Fprintf(&b, `
query hot%d:
SELECT tb, srcIP, destIP, COUNT(*) AS cnt
FROM TCP GROUP BY time/60 AS tb, srcIP, destIP
HAVING COUNT(*) > %d
`, i, threshold)
	}
	// Rollups over the earlier queries that expose srcIP.
	for i, src := range []int{1, 3, 5, 7, 11, 13, 15, 17, 21, 23} {
		fmt.Fprintf(&b, `
query roll%d:
SELECT tb, srcIP, MAX(cnt) AS max_cnt
FROM agg%d GROUP BY tb, srcIP
`, i+1, src)
	}
	// Self-joins correlating consecutive epochs.
	for i := 1; i <= 2; i++ {
		fmt.Fprintf(&b, `
query corr%d:
SELECT A.tb, A.srcIP, A.max_cnt, B.max_cnt
FROM roll%d A, roll%d B
WHERE A.srcIP = B.srcIP AND A.tb = B.tb + 1
`, i, i, i)
	}
	return b.String()
}

func TestFiftyQueryWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("large workload")
	}
	text := fiftyQueryWorkload()
	sys, err := Load(TCPSchemaDDL, text)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Queries.Queries); got != 50 {
		t.Fatalf("workload has %d queries, want 50", got)
	}

	// The analysis completes quickly despite 50 constrained nodes and
	// the subset search space.
	start := time.Now()
	res, err := sys.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 30*time.Second {
		t.Fatalf("analysis took %v", elapsed)
	}
	if res.Best.IsEmpty() {
		t.Fatalf("no recommendation for the 50-query set\n%s", res.Summary())
	}
	t.Logf("50-query analysis in %v: recommended %s (cost %.0f vs central %.0f)",
		elapsed, res.Best, res.BestCost, res.CentralCost)

	// Deploy and run both centralized and partitioned; every one of
	// the 50 root outputs must agree.
	cfg := DefaultTraceConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 150, 400
	trace := GenerateTrace(cfg)

	run := func(ps Set, hosts, pph int) *RunResult {
		dep, err := sys.Deploy(DeployConfig{Hosts: hosts, PartitionsPerHost: pph, Partitioning: ps})
		if err != nil {
			t.Fatal(err)
		}
		r, err := dep.Run("TCP", trace.Packets)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want := run(nil, 1, 1)
	got := run(res.Best, 4, 2)
	// 50 queries, of which 10 aggs feed rollups and 2 rollups feed
	// correlation joins: 38 roots.
	if len(want.Outputs) != 38 {
		t.Fatalf("got %d root outputs, want 38", len(want.Outputs))
	}
	for name, rows := range want.Outputs {
		if len(rows) != len(got.Outputs[name]) {
			t.Fatalf("%s: %d vs %d rows", name, len(rows), len(got.Outputs[name]))
		}
		wm := make(map[string]int, len(rows))
		for _, r := range rows {
			wm[exec.Key(r)]++
		}
		for _, r := range got.Outputs[name] {
			wm[exec.Key(r)]--
		}
		for _, c := range wm {
			if c != 0 {
				t.Fatalf("%s: multiset mismatch", name)
			}
		}
	}
	// The recommended partitioning satisfies a substantial fraction of
	// the workload.
	satisfied := 0
	for name := range sys.Requirements() {
		if ok, _ := sys.Compatible(res.Best, name); ok {
			satisfied++
		}
	}
	t.Logf("recommended set satisfies %d/50 queries", satisfied)
	if satisfied < 20 {
		t.Errorf("only %d/50 queries satisfied by %s", satisfied, res.Best)
	}
	_ = netgen.SchemaDDL
}
