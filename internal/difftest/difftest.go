// Package difftest is the equivalence oracle of the randomized
// differential-testing subsystem. Given a workload — a query set over
// the TCP schema plus a trace configuration — it checks the claims the
// partitioning theorems make executable:
//
//   - Plan equivalence (paper Sections 3–4): a compatible partitioning
//     preserves query outputs, so the centralized plan, the partitioned
//     plan, every host count, and every worker count must produce the
//     same canonical result set.
//   - Load bound (Section 4.2.1): with measured statistics, the cost
//     model's predicted network load is an upper bound on the load any
//     host actually receives (aggregator-resident partitions ship over
//     IPC, so the model over- rather than under-states).
//   - Optimizer/lint agreement (Sections 3.4–3.5, 5.2): a node runs
//     partitioned exactly when the compatibility theory says it may,
//     and every centralize fallback in the physical plan is explained
//     by an incompatibility diagnostic from the static analyzer.
//   - Proof soundness (internal/prove): the explicit per-node
//     derivations the prover emits verify against the plan, their
//     canonical serialization round-trips byte-stably, and every
//     verdict matches the optimizer's placement — so the sweep holds
//     the certificate theory to the same evidence as the runtime.
//
// Workloads usually come from internal/qgen (CheckSeed), but the oracle
// also accepts raw query text (CheckQueries) so the fuzz harness and
// cmd/qap-difftest can feed it directly. A workload the loader or the
// baseline run rejects is reported as an error — "not runnable" — which
// is distinct from a Report with mismatches: the former is an invalid
// input, the latter a found bug.
package difftest

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"time"

	"qap"
	"qap/internal/core"
	"qap/internal/lint"
	"qap/internal/live"
	"qap/internal/netgen"
	obstrace "qap/internal/obs/trace"
	"qap/internal/optimizer"
	"qap/internal/plan"
	"qap/internal/prove"
	"qap/internal/qgen"
)

// Options configures the sweep dimensions.
type Options struct {
	// Hosts are the cluster sizes to compare; default {1, 2, 4}.
	Hosts []int
	// Workers are the engine worker counts to compare; default {1, 4}.
	Workers []int
	// BatchSizes are the operator batch sizes the batched-equivalence
	// section compares against the scalar path; default {1, 7, 64,
	// 1024} (1 is the scalar path itself, 7 exercises ragged final
	// chunks, 64 and 1024 straddle the engine default).
	BatchSizes []int
	// Live adds the live-vs-sim axis: every hosts × workers × batch
	// {1, 256} cell re-runs on the live TCP backend and must match the
	// simulator byte for byte (canonical output, OpStats, trace
	// bytes), plus fault-injection runs (dropped, duplicated, and cut
	// connections) that must converge to the same bytes. Off by
	// default: the axis opens real sockets and costs a multiple of the
	// base sweep.
	Live bool
	// Columnar adds the columnar-execution axis: for every cluster
	// size, the columnar batch path (DeployConfig.Columnar) re-runs
	// the workers × batch {1, 64, 1024} matrix and must reproduce the
	// scalar reference byte for byte — canonical output, per-operator
	// counters (integers exactly, CPUUnits to summation tolerance:
	// column kernels regroup the same per-tuple float additions), and
	// canonical trace bytes. With Live also set, the largest cluster
	// re-checks columnar cells on the live TCP backend, where even the
	// CPUUnits summation order must be preserved. Off by default: the
	// axis roughly doubles the base sweep.
	Columnar bool
}

func (o Options) withDefaults() Options {
	if len(o.Hosts) == 0 {
		o.Hosts = []int{1, 2, 4}
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 4}
	}
	if len(o.BatchSizes) == 0 {
		o.BatchSizes = []int{1, 7, 64, 1024}
	}
	return o
}

// Mismatch is one violated invariant: a configuration whose result
// deviates from the baseline, or a metamorphic check that failed.
type Mismatch struct {
	// Axis names the oracle axis the deviation belongs to
	// (equivalence, batched, loadbound, lintagree, certificate,
	// repartition, trace, live) — the first thing to read in a repro.
	Axis string
	// Config names the deviating configuration or invariant.
	Config string
	// Detail localizes the deviation (first differing line, or the
	// violated inequality).
	Detail string
}

// Report is the outcome of checking one workload.
type Report struct {
	Seed    int64
	Queries string
	Trace   netgen.Config
	// Configs counts the plan configurations and metamorphic
	// invariants compared against the baseline.
	Configs    int
	Mismatches []Mismatch
	// Best is the partitioning set the search recommended.
	Best core.Set
}

// OK reports whether every configuration agreed with the baseline.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// String renders the report; for failures it is a complete repro: the
// seed, the rerun command, the trace literal, and the query text.
func (r *Report) String() string {
	var b strings.Builder
	if r.OK() {
		fmt.Fprintf(&b, "seed %d: PASS (%d configurations, best set %s)\n", r.Seed, r.Configs, r.Best)
		return b.String()
	}
	fmt.Fprintf(&b, "seed %d: FAIL (%d of %d configurations mismatched)\n", r.Seed, len(r.Mismatches), r.Configs)
	first := r.Mismatches[0]
	fmt.Fprintf(&b, "first failure: axis %s, config %s\n", first.Axis, first.Config)
	fmt.Fprintf(&b, "rerun: go run ./cmd/qap-difftest -seed %d\n", r.Seed)
	fmt.Fprintf(&b, "trace: %+v\n", r.Trace)
	fmt.Fprintf(&b, "best partitioning: %s\n", r.Best)
	b.WriteString("queries:\n")
	b.WriteString(indent(r.Queries))
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "mismatch [%s: %s]:\n%s", m.Axis, m.Config, indent(m.Detail))
	}
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}

// CheckSeed generates the workload for seed and checks it.
func CheckSeed(seed int64, opts Options) (*Report, error) {
	return CheckWorkload(qgen.Generate(qgen.Config{Seed: seed}), opts)
}

// CheckWorkload checks a generated workload.
func CheckWorkload(w *qgen.Workload, opts Options) (*Report, error) {
	r, err := CheckQueries(w.DDL, w.Queries, w.Trace, opts)
	if r != nil {
		r.Seed = w.Seed
	}
	return r, err
}

// CheckQueries runs the full oracle over one (ddl, queries, trace)
// triple. The returned error means the workload is not runnable (parse,
// plan, or baseline failure) — not that an invariant failed; those are
// Report.Mismatches.
func CheckQueries(ddl, queries string, trace netgen.Config, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := &Report{Queries: queries, Trace: trace}

	sys, err := qap.Load(ddl, queries)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	tr := netgen.Generate(trace)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	params := map[string]qap.Value{"PATTERN": qap.Uint(qap.AttackPattern)}

	measured, err := sys.MeasureStats(streams)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	analysis, err := sys.Analyze(measured)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	rep.Best = analysis.Best

	run := func(cfg qap.DeployConfig) (*qap.RunResult, error) {
		cfg.Params = params
		dep, err := sys.Deploy(cfg)
		if err != nil {
			return nil, err
		}
		return dep.RunStreams(streams)
	}

	// Baseline: one host, centralized plan, sequential engine, scalar
	// (tuple-at-a-time) execution. The sweep below runs with the
	// engine's default batch size, so every cell also gates the batched
	// hot path against this scalar reference.
	base, err := run(qap.DeployConfig{Hosts: 1, Workers: 1, BatchSize: 1})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	want := Canonical(base)

	// Equivalence sweep: every (hosts, partitioning, workers) cell, the
	// query-aware set against the query-agnostic round robin.
	sets := []struct {
		name string
		set  core.Set
	}{{"roundrobin", nil}, {"best", analysis.Best}}
	for _, hosts := range opts.Hosts {
		for _, s := range sets {
			for _, workers := range opts.Workers {
				name := fmt.Sprintf("hosts=%d set=%s workers=%d", hosts, s.name, workers)
				rep.compare(name, want, run, qap.DeployConfig{
					Hosts: hosts, Partitioning: s.set, Workers: workers,
				})
			}
		}
	}
	// Strategy variants on the largest cluster: partial aggregation off,
	// and per-partition (naive) pre-aggregation scope.
	last := opts.Hosts[len(opts.Hosts)-1]
	rep.compare(fmt.Sprintf("hosts=%d set=best nopartial", last), want, run, qap.DeployConfig{
		Hosts: last, Partitioning: analysis.Best, DisablePartialAgg: true,
	})
	rep.compare(fmt.Sprintf("hosts=%d set=best scope=partition", last), want, run, qap.DeployConfig{
		Hosts: last, Partitioning: analysis.Best, PartialScope: qap.ScopePartition,
	})

	rep.checkBatched(opts, want, run, analysis.Best, last)
	rep.checkColumnar(opts, sys, want, analysis.Best, streams, params)
	rep.checkLive(opts, sys, want, analysis.Best, streams, params)
	rep.checkLoadBound(sys, measured, analysis.Best, run)
	rep.checkLintAgreement(sys, analysis.Best)
	rep.checkCertificate(sys, analysis.Best)
	rep.checkRepartition(sys, measured, analysis, trace, params)
	rep.checkTrace(sys, analysis.Best, trace, streams, params)
	return rep, nil
}

// checkTrace exercises the deterministic-tracing axis over the
// workload: with causal tracing on, the canonical JSONL export (timing
// trailer stripped) must be byte-identical in every workers×batch cell
// — both engines, scalar and batched delivery — and the per-host load
// series rebuilt from the trace's host_window events (after a round
// trip through the JSONL codec) must equal the engine's own monitoring
// output exactly. The comparison strips CPUUnits from the engine
// series: float cost sums are deliberately quarantined from the
// canonical trace, which carries only the integer counters the
// Section 4.2.1 trigger reads.
func (r *Report) checkTrace(sys *qap.System, best core.Set, traceCfg netgen.Config, streams map[string][]netgen.Packet, params map[string]qap.Value) {
	winSec := traceCfg.DurationSec / 3
	if winSec < 1 {
		winSec = 1
	}
	var ref []byte
	for _, cell := range []struct{ workers, batch int }{{1, 1}, {1, 256}, {4, 1}, {4, 256}} {
		name := fmt.Sprintf("trace workers=%d batch=%d", cell.workers, cell.batch)
		r.Configs++
		dep, err := sys.Deploy(qap.DeployConfig{
			Hosts: 4, Partitioning: best, Params: params,
			Workers: cell.workers, BatchSize: cell.batch,
			LoadWindowSec: winSec, Trace: &qap.RunTraceConfig{},
		})
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "trace", Config: name,
				Detail: fmt.Sprintf("deploy failed: %v\n", err)})
			continue
		}
		res, err := dep.RunStreams(streams)
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "trace", Config: name,
				Detail: fmt.Sprintf("run failed: %v\n", err)})
			continue
		}
		if res.Trace == nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "trace", Config: name,
				Detail: "tracing was enabled but the run carries no trace\n"})
			continue
		}
		canon, err := res.Trace.CanonicalJSONL()
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "trace", Config: name,
				Detail: fmt.Sprintf("canonical encode failed: %v\n", err)})
			continue
		}
		if ref == nil {
			ref = canon
		} else if !bytes.Equal(canon, ref) {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "trace", Config: name,
				Detail: "canonical trace diverged across engines:\n" + firstDiff(string(ref), string(canon))})
			continue
		}
		rt, err := obstrace.ReadJSONL(bytes.NewReader(canon))
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "trace", Config: name,
				Detail: fmt.Sprintf("JSONL round trip failed: %v\n", err)})
			continue
		}
		got := rt.HostLoadSeries("")
		want := obstrace.StripCPUUnits(res.LoadSeries)
		if !reflect.DeepEqual(got, want) {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "trace", Config: name, Detail: fmt.Sprintf(
				"trace-rebuilt load series differs from the engine's monitoring output:\n  rebuilt: %+v\n  engine:  %+v\n",
				got, want)})
		}
	}
}

// checkRepartition exercises the adaptive-repartitioning protocol on a
// drifted variant of the workload trace: the original trace as phase 1
// (so the statistics measured above are exactly the pre-drift regime)
// followed by a phase with the source/destination pools swapped and
// the rate trebled. Two invariants are swept across engines (workers
// {1,4} x batch {1,256}):
//
//   - The trigger decision — whether it fires at all, the window, the
//     measured rate, and the refreshed set — is bit-identical in every
//     cell; the monitoring counters it reads are integers.
//   - The adapted run is byte-identical to a cold restart of the
//     post-switch set over the same streams under the same engine
//     configuration: outputs, node rows, metrics, and load series.
func (r *Report) checkRepartition(sys *qap.System, measured *qap.StaticStats, analysis *qap.Analysis, trace netgen.Config, params map[string]qap.Value) {
	if analysis.Best.IsEmpty() {
		// The Section 4.2.1 bound the trigger compares against is only
		// meaningful for a deployed (non-empty) partitioning set.
		return
	}
	drift := trace
	drift.Phases = []netgen.Phase{
		{DurationSec: trace.DurationSec},
		{DurationSec: trace.DurationSec, PacketsPerSec: 3 * trace.PacketsPerSec,
			SrcHosts: trace.DstHosts, DstHosts: trace.SrcHosts},
	}
	streams := map[string][]netgen.Packet{"TCP": netgen.Generate(drift).Packets}
	winSec := trace.DurationSec / 3
	if winSec < 1 {
		winSec = 1
	}

	var ref *qap.AdaptiveResult
	for _, cell := range []struct{ workers, batch int }{{1, 1}, {1, 256}, {4, 1}, {4, 256}} {
		name := fmt.Sprintf("repartition workers=%d batch=%d", cell.workers, cell.batch)
		r.Configs++
		ares, err := sys.RunAdaptive(qap.AdaptiveConfig{
			Deploy: qap.DeployConfig{
				Hosts: 4, Partitioning: analysis.Best, DisablePartialAgg: true,
				Params: params, Workers: cell.workers, BatchSize: cell.batch,
			},
			Stats:         measured,
			Analysis:      analysis,
			TriggerFactor: 1.5,
			LoadWindowSec: winSec,
		}, streams)
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "repartition", Config: name,
				Detail: fmt.Sprintf("adaptive run failed: %v\n", err)})
			continue
		}
		if ref == nil {
			ref = ares
		} else if ares.TriggerWindow != ref.TriggerWindow || ares.TriggerRate != ref.TriggerRate ||
			ares.SwitchTimeSec != ref.SwitchTimeSec || ares.Repartitioned != ref.Repartitioned ||
			!ares.FinalSet.Equal(ref.FinalSet) {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "repartition", Config: name, Detail: fmt.Sprintf(
				"trigger decision diverged across engines:\n  reference: window=%d rate=%v switch=%d repartitioned=%v set=%s\n  this cell: window=%d rate=%v switch=%d repartitioned=%v set=%s\n",
				ref.TriggerWindow, ref.TriggerRate, ref.SwitchTimeSec, ref.Repartitioned, ref.FinalSet,
				ares.TriggerWindow, ares.TriggerRate, ares.SwitchTimeSec, ares.Repartitioned, ares.FinalSet)})
			continue
		}

		dep, err := sys.Deploy(qap.DeployConfig{
			Hosts: 4, Partitioning: ares.FinalSet, DisablePartialAgg: true,
			Params: params, Workers: cell.workers, BatchSize: cell.batch,
			LoadWindowSec: winSec,
		})
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "repartition", Config: name,
				Detail: fmt.Sprintf("cold-restart deploy failed: %v\n", err)})
			continue
		}
		cold, err := dep.RunStreams(streams)
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "repartition", Config: name,
				Detail: fmt.Sprintf("cold-restart run failed: %v\n", err)})
			continue
		}
		if want, got := Canonical(cold), Canonical(ares.Final); want != got {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "repartition", Config: name, Detail: firstDiff(want, got)})
			continue
		}
		if !reflect.DeepEqual(cold.Outputs, ares.Final.Outputs) ||
			!reflect.DeepEqual(*cold.Metrics, *ares.Final.Metrics) ||
			!reflect.DeepEqual(cold.LoadSeries, ares.Final.LoadSeries) {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "repartition", Config: name, Detail: fmt.Sprintf(
				"adapted run is not byte-identical to a cold restart on set %s\n", ares.FinalSet)})
		}
	}
}

// checkBatched verifies the batch-at-a-time execution path against the
// legacy scalar path on one fixed plan: for every (batch size, worker
// count) cell the canonical output must equal the scalar reference's,
// and the per-operator deterministic counters must agree — integer
// counters exactly, CPUUnits up to float summation-order drift
// (batching regroups the same per-tuple cost additions, which can move
// a float64 sum by ULPs but no more).
func (r *Report) checkBatched(opts Options, want string, run func(qap.DeployConfig) (*qap.RunResult, error), best core.Set, hosts int) {
	r.Configs++
	ref, err := run(qap.DeployConfig{
		Hosts: hosts, Partitioning: best, Workers: 1, BatchSize: 1, CollectStats: true,
	})
	if err != nil {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "batched", Config: "batched scalar-ref",
			Detail: fmt.Sprintf("run failed where baseline succeeded: %v\n", err)})
		return
	}
	if got := Canonical(ref); got != want {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "batched", Config: "batched scalar-ref", Detail: firstDiff(want, got)})
		return
	}
	for _, bs := range opts.BatchSizes {
		for _, workers := range opts.Workers {
			if bs == 1 && workers == 1 {
				continue // the scalar reference itself
			}
			name := fmt.Sprintf("hosts=%d set=best workers=%d batch=%d", hosts, workers, bs)
			r.Configs++
			res, err := run(qap.DeployConfig{
				Hosts: hosts, Partitioning: best, Workers: workers, BatchSize: bs, CollectStats: true,
			})
			if err != nil {
				r.Mismatches = append(r.Mismatches, Mismatch{Axis: "batched", Config: name,
					Detail: fmt.Sprintf("run failed where baseline succeeded: %v\n", err)})
				continue
			}
			if got := Canonical(res); got != want {
				r.Mismatches = append(r.Mismatches, Mismatch{Axis: "batched", Config: name, Detail: firstDiff(want, got)})
				continue
			}
			if d := diffOpStats(ref.OpStats, res.OpStats); d != "" {
				r.Mismatches = append(r.Mismatches, Mismatch{Axis: "batched", Config: name, Detail: d})
			}
		}
	}
}

// checkColumnar is the columnar-execution axis: the columnar batch
// path — typed column vectors, compiled kernels, dense aggregate
// state — must be observably identical to the scalar reference in
// every hosts × workers × batch cell: canonical output, per-operator
// counters (integers exactly, CPUUnits to summation tolerance), and
// canonical trace bytes. Batch size 1 is included deliberately:
// columnar requires batching, so that cell must degrade to the scalar
// path rather than misbehave. With Live also set, the largest cluster
// re-runs columnar cells on the live TCP backend, which replays the
// exact event sequence and so must preserve even CPUUnits bit for bit.
func (r *Report) checkColumnar(opts Options, sys *qap.System, want string, best core.Set, streams map[string][]netgen.Packet, params map[string]qap.Value) {
	if !opts.Columnar {
		return
	}
	run := func(hosts, workers, batch int, columnar bool, engine string) (*qap.RunResult, error) {
		dep, err := sys.Deploy(qap.DeployConfig{
			Hosts: hosts, Partitioning: best, Params: params,
			Workers: workers, BatchSize: batch, Columnar: columnar,
			CollectStats: true, Trace: &qap.RunTraceConfig{},
			Engine: engine, DriveTimeout: 30 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		return dep.RunStreams(streams)
	}
	fail := func(name, format string, args ...any) {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "columnar", Config: name,
			Detail: fmt.Sprintf(format, args...)})
	}
	batches := []int{1, 64, 1024}
	for _, hosts := range opts.Hosts {
		refName := fmt.Sprintf("columnar-ref hosts=%d", hosts)
		r.Configs++
		ref, err := run(hosts, 1, 1, false, qap.EngineSim)
		if err != nil {
			fail(refName, "scalar reference failed: %v\n", err)
			continue
		}
		if got := Canonical(ref); got != want {
			fail(refName, "%s", firstDiff(want, got))
			continue
		}
		refTrace, err := ref.Trace.CanonicalJSONL()
		if err != nil {
			fail(refName, "reference trace encode failed: %v\n", err)
			continue
		}
		for _, workers := range opts.Workers {
			for _, batch := range batches {
				name := fmt.Sprintf("columnar hosts=%d workers=%d batch=%d", hosts, workers, batch)
				r.Configs++
				res, err := run(hosts, workers, batch, true, qap.EngineSim)
				if err != nil {
					fail(name, "run failed where the scalar reference succeeded: %v\n", err)
					continue
				}
				if got := Canonical(res); got != want {
					fail(name, "%s", firstDiff(want, got))
					continue
				}
				if d := diffOpStats(ref.OpStats, res.OpStats); d != "" {
					fail(name, "%s", d)
					continue
				}
				canon, err := res.Trace.CanonicalJSONL()
				if err != nil {
					fail(name, "canonical trace encode failed: %v\n", err)
					continue
				}
				if !bytes.Equal(canon, refTrace) {
					fail(name, "canonical trace diverged from the scalar reference:\n%s",
						firstDiff(string(refTrace), string(canon)))
				}
			}
		}
	}
	if !opts.Live {
		return
	}
	// Live leg: columnar on real sockets against the columnar simulator
	// run of the same cell. The live engine replays the exact event
	// sequence, so OpStats must match bit for bit, CPUUnits included.
	hosts := opts.Hosts[len(opts.Hosts)-1]
	for _, batch := range []int{64, 1024} {
		refName := fmt.Sprintf("columnar-live-ref hosts=%d batch=%d", hosts, batch)
		r.Configs++
		ref, err := run(hosts, 1, batch, true, qap.EngineSim)
		if err != nil {
			fail(refName, "simulator columnar reference failed: %v\n", err)
			continue
		}
		if got := Canonical(ref); got != want {
			fail(refName, "%s", firstDiff(want, got))
			continue
		}
		refTrace, err := ref.Trace.CanonicalJSONL()
		if err != nil {
			fail(refName, "reference trace encode failed: %v\n", err)
			continue
		}
		for _, workers := range opts.Workers {
			name := fmt.Sprintf("columnar-live hosts=%d workers=%d batch=%d", hosts, workers, batch)
			r.Configs++
			res, err := run(hosts, workers, batch, true, qap.EngineLive)
			if err != nil {
				fail(name, "live columnar run failed where the simulator succeeded: %v\n", err)
				continue
			}
			if got := Canonical(res); got != want {
				fail(name, "%s", firstDiff(want, got))
				continue
			}
			if !reflect.DeepEqual(ref.OpStats, res.OpStats) {
				d := diffOpStats(ref.OpStats, res.OpStats)
				if d == "" {
					d = "OpStats differ (CPUUnits summation order; the live engine must preserve it exactly)\n"
				}
				fail(name, "%s", d)
				continue
			}
			canon, err := res.Trace.CanonicalJSONL()
			if err != nil {
				fail(name, "canonical trace encode failed: %v\n", err)
				continue
			}
			if !bytes.Equal(canon, refTrace) {
				fail(name, "canonical trace diverged from the simulator's:\n%s",
					firstDiff(string(refTrace), string(canon)))
			}
		}
	}
}

// diffOpStats compares two per-operator counter maps and renders the
// first disagreement: integer counters must be identical, CPUUnits may
// differ only within summation-order tolerance.
func diffOpStats(want, got map[int]*qap.OpStats) string {
	if len(want) != len(got) {
		return fmt.Sprintf("operator count differs: scalar %d, batched %d\n", len(want), len(got))
	}
	ids := make([]int, 0, len(want))
	for id := range want { //qap:allow maprange -- ids collected then sorted below
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w, g := want[id], got[id]
		if g == nil {
			return fmt.Sprintf("op %d: present in scalar run, missing in batched run\n", id)
		}
		wi, gi := *w, *g
		wi.CPUUnits, gi.CPUUnits = 0, 0
		if wi != gi {
			return fmt.Sprintf("op %d: counters differ:\n  scalar:  %+v\n  batched: %+v\n", id, *w, *g)
		}
		tol := 1e-9 * math.Max(math.Abs(w.CPUUnits), 1)
		if math.Abs(w.CPUUnits-g.CPUUnits) > tol {
			return fmt.Sprintf("op %d: CPUUnits differ beyond summation tolerance: scalar %v, batched %v\n",
				id, w.CPUUnits, g.CPUUnits)
		}
	}
	return ""
}

// compare runs one configuration and records a mismatch if its
// canonical result differs from the baseline's.
func (r *Report) compare(name, want string, run func(qap.DeployConfig) (*qap.RunResult, error), cfg qap.DeployConfig) {
	r.Configs++
	res, err := run(cfg)
	if err != nil {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "equivalence", Config: name,
			Detail: fmt.Sprintf("run failed where baseline succeeded: %v\n", err)})
		return
	}
	if got := Canonical(res); got != want {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "equivalence", Config: name, Detail: firstDiff(want, got)})
	}
}

// checkLive is the live-vs-sim axis: the live TCP backend — real
// listeners, serialized tuple batches, credit-based backpressure —
// must reproduce the simulator byte for byte in every hosts × workers
// × batch cell: canonical output, per-operator counters (bit-equal,
// CPUUnits included: the live engine replays the exact event sequence,
// so even float summation order is preserved), and canonical trace
// bytes. A second leg injects transport faults (dropped, duplicated,
// and cut connections on both directions) and demands the
// reconnect-and-replay recovery converge to the same bytes.
func (r *Report) checkLive(opts Options, sys *qap.System, want string, best core.Set, streams map[string][]netgen.Packet, params map[string]qap.Value) {
	if !opts.Live {
		return
	}
	run := func(hosts, workers, batch int, lo qap.LiveOptions, engine string) (*qap.RunResult, error) {
		dep, err := sys.Deploy(qap.DeployConfig{
			Hosts: hosts, Partitioning: best, Params: params,
			Workers: workers, BatchSize: batch,
			CollectStats: true, Trace: &qap.RunTraceConfig{},
			Engine: engine, Live: lo,
			DriveTimeout: 30 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		return dep.RunStreams(streams)
	}
	check := func(name string, ref *qap.RunResult, refTrace []byte, res *qap.RunResult, err error) {
		r.Configs++
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: name,
				Detail: fmt.Sprintf("live run failed where the simulator succeeded: %v\n", err)})
			return
		}
		if got := Canonical(res); got != want {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: name,
				Detail: firstDiff(want, got)})
			return
		}
		if !reflect.DeepEqual(ref.OpStats, res.OpStats) {
			d := diffOpStats(ref.OpStats, res.OpStats)
			if d == "" {
				d = "OpStats differ (CPUUnits summation order; the live engine must preserve it exactly)\n"
			}
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: name, Detail: d})
			return
		}
		canon, err := res.Trace.CanonicalJSONL()
		if err != nil {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: name,
				Detail: fmt.Sprintf("canonical trace encode failed: %v\n", err)})
			return
		}
		if !bytes.Equal(canon, refTrace) {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: name,
				Detail: "canonical trace diverged from the simulator's:\n" + firstDiff(string(refTrace), string(canon))})
		}
	}
	for _, hosts := range opts.Hosts {
		for _, batch := range []int{1, 256} {
			ref, err := run(hosts, 1, batch, qap.LiveOptions{}, qap.EngineSim)
			if err != nil {
				r.Configs++
				r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live",
					Config: fmt.Sprintf("live-ref hosts=%d batch=%d", hosts, batch),
					Detail: fmt.Sprintf("simulator reference failed: %v\n", err)})
				continue
			}
			refTrace, err := ref.Trace.CanonicalJSONL()
			if err != nil {
				r.Configs++
				r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live",
					Config: fmt.Sprintf("live-ref hosts=%d batch=%d", hosts, batch),
					Detail: fmt.Sprintf("reference trace encode failed: %v\n", err)})
				continue
			}
			if got := Canonical(ref); got != want {
				r.Configs++
				r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live",
					Config: fmt.Sprintf("live-ref hosts=%d batch=%d", hosts, batch),
					Detail: firstDiff(want, got)})
				continue
			}
			for _, workers := range opts.Workers {
				name := fmt.Sprintf("live hosts=%d workers=%d batch=%d", hosts, workers, batch)
				res, err := run(hosts, workers, batch, qap.LiveOptions{}, qap.EngineLive)
				check(name, ref, refTrace, res, err)
			}
		}
	}

	// Fault leg: on the largest cluster, scripted transport faults on
	// both directions must cost time, never bytes.
	hosts := opts.Hosts[len(opts.Hosts)-1]
	ref, err := run(hosts, 1, 256, qap.LiveOptions{}, qap.EngineSim)
	if err != nil {
		r.Configs++
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: "live-fault-ref",
			Detail: fmt.Sprintf("simulator reference failed: %v\n", err)})
		return
	}
	refTrace, err := ref.Trace.CanonicalJSONL()
	if err != nil {
		r.Configs++
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: "live-fault-ref",
			Detail: fmt.Sprintf("reference trace encode failed: %v\n", err)})
		return
	}
	for _, fc := range []struct {
		name   string
		faults []live.Fault
	}{
		{"drop", []live.Fault{{Host: 0, Session: 0, Write: 2, Action: live.FaultDrop}}},
		{"dup", []live.Fault{{Host: 0, Session: -1, Write: 1, Action: live.FaultDup}}},
		{"cut", []live.Fault{
			{Host: 0, Session: 0, Write: 2, Action: live.FaultCut},
			{Host: hosts - 1, Session: 0, Write: 3, Action: live.FaultCut},
		}},
	} {
		name := "live-fault " + fc.name
		plan := &live.FaultPlan{Faults: fc.faults}
		res, err := run(hosts, 1, 256, qap.LiveOptions{Faults: plan, Timeout: 2 * time.Second}, qap.EngineLive)
		check(name, ref, refTrace, res, err)
		if err == nil && plan.Hits() == 0 {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "live", Config: name,
				Detail: "fault plan never fired; the scenario tested nothing\n"})
		}
	}
}

// checkLoadBound verifies the Section 4.2.1 metamorphic invariant: the
// cost model's TotalCost under measured statistics bounds the network
// byte rate any host receives. It needs partial aggregation disabled
// (the sub-aggregate rewrite re-shapes tuples, which the static model
// does not price) and a non-empty set (for the empty set the builder
// still pushes selections per partition while the model centralizes
// them, so the model's charge is not comparable op by op).
func (r *Report) checkLoadBound(sys *qap.System, measured *qap.StaticStats, best core.Set, run func(qap.DeployConfig) (*qap.RunResult, error)) {
	if best.IsEmpty() {
		return
	}
	r.Configs++
	res, err := run(qap.DeployConfig{Hosts: 4, Partitioning: best, DisablePartialAgg: true, Workers: 1})
	if err != nil {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "loadbound", Config: "loadbound",
			Detail: fmt.Sprintf("run failed: %v\n", err)})
		return
	}
	duration := res.Metrics.DurationSec
	if duration <= 0 {
		duration = 1
	}
	achieved := 0.0
	for _, h := range res.Metrics.Hosts {
		if rate := float64(h.NetBytesIn) / duration; rate > achieved {
			achieved = rate
		}
	}
	predicted := core.NewCostModel(sys.Graph, measured).TotalCost(best)
	if achieved > predicted*(1+1e-6)+1e-3 {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "loadbound", Config: "loadbound", Detail: fmt.Sprintf(
			"achieved max per-host net rate %.3f B/s exceeds cost-model bound %.3f B/s for set %s\n",
			achieved, predicted, best)})
	}
}

// checkLintAgreement verifies that the physical plan, the
// compatibility theory, and the static analyzer tell the same story
// about the best set: a node's operators all run in partition
// processes iff the node is Distributable, lint's QAP001/QAP003
// findings appear exactly for the Compatible nodes, and every
// centralize fallback traces to an incompatibility diagnostic
// (QAP002/QAP004) somewhere in the node's input subtree.
func (r *Report) checkLintAgreement(sys *qap.System, best core.Set) {
	if best.IsEmpty() {
		// lint skips empty candidate sets, so there is nothing to
		// cross-check the plan against.
		return
	}
	r.Configs++
	p, err := optimizer.Build(sys.Graph, best, optimizer.Options{
		Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost,
	})
	if err != nil {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "lintagree", Config: "lintagree",
			Detail: fmt.Sprintf("optimizer.Build failed: %v\n", err)})
		return
	}
	lrep := lint.Run(sys.Graph, sys.Queries, lint.Options{Sets: []core.Set{best}})
	pos := map[string]bool{} // query -> has QAP001/QAP003
	neg := map[string]bool{} // query -> has QAP002/QAP004
	for _, d := range lrep.Diagnostics {
		switch d.Code {
		case lint.CodeUniversal, lint.CodeSetCompatible:
			pos[d.Query] = true
		case lint.CodeUnpartitionable, lint.CodeSetExcluded:
			neg[d.Query] = true
		}
	}

	central := centralNodes(p)

	var fail []string
	for _, n := range sys.Graph.QueryNodes() {
		q := n.QueryName
		compat := core.Compatible(best, n)
		if compat != pos[q] || compat == neg[q] {
			fail = append(fail, fmt.Sprintf(
				"%s: Compatible(%s)=%v but lint says compatible=%v excluded=%v", q, best, compat, pos[q], neg[q]))
		}
		if dist := core.Distributable(best, n); dist == central[q] {
			fail = append(fail, fmt.Sprintf(
				"%s: Distributable(%s)=%v but plan has central-process ops=%v", q, best, dist, central[q]))
		}
		if central[q] && !subtreeHasNeg(n, neg) {
			fail = append(fail, fmt.Sprintf(
				"%s: centralize fallback with no incompatibility diagnostic in its subtree", q))
		}
	}
	if len(fail) > 0 {
		r.Mismatches = append(r.Mismatches, Mismatch{Axis: "lintagree", Config: "lintagree",
			Detail: strings.Join(fail, "\n") + "\n"})
	}
}

// centralNodes maps each logical query node to whether the physical
// plan placed at least one of its operators in the central root
// process (Proc -1) — a centralize fallback or a partial-aggregation
// super stage. OpOutput always sits in the central root process, even
// when the query itself ran fully partitioned — it is the result
// sink, not a fallback — so it is excluded, as are sources.
func centralNodes(p *optimizer.Plan) map[string]bool {
	central := map[string]bool{}
	for _, op := range p.Ops {
		if op.Kind == optimizer.OpOutput || op.Logical == nil || op.Logical.Kind == plan.KindSource {
			continue
		}
		if op.Proc < 0 {
			central[op.Logical.QueryName] = true
		}
	}
	return central
}

// checkCertificate is the proof-theory axis: for the recommended set
// and the query-agnostic empty set it builds the explicit
// partition-correctness certificate, has the independent verifier
// re-check every derivation step against the plan, round-trips the
// canonical serialization, and demands the per-node verdicts agree
// with the optimizer's actual placement — a node has operators in the
// central root process iff its verdict is MUST-CENTRALIZE — and, for
// non-empty sets, with the core.Distributable theory the optimizer
// chose the set by. The runtime leg closes through the rest of the
// report: the same configs must already be output-equivalent, so a
// certificate verdict that disagreed with the runtime equivalence
// oracle would surface either here (placement) or in the sweep
// (outputs). Every disagreement is a Mismatch.
func (r *Report) checkCertificate(sys *qap.System, best core.Set) {
	sets := []struct {
		name string
		set  core.Set
	}{{"roundrobin", nil}}
	if !best.IsEmpty() {
		sets = append(sets, struct {
			name string
			set  core.Set
		}{"best", best})
	}
	for _, s := range sets {
		r.Configs++
		cfg := "certificate set=" + s.name
		fail := func(format string, args ...any) {
			r.Mismatches = append(r.Mismatches, Mismatch{Axis: "certificate", Config: cfg,
				Detail: fmt.Sprintf(format, args...) + "\n"})
		}

		cert := prove.Prove(sys.Graph, s.set)
		if err := prove.Verify(sys.Graph, cert); err != nil {
			fail("verifier rejects the prover's certificate: %v", err)
			continue
		}
		b1, err := cert.CanonicalJSON()
		if err != nil {
			fail("canonical serialization failed: %v", err)
			continue
		}
		back, err := prove.ParseCertificate(b1)
		if err != nil {
			fail("canonical bytes failed to reparse: %v", err)
			continue
		}
		if err := prove.Verify(sys.Graph, back); err != nil {
			fail("reparsed certificate rejected: %v", err)
			continue
		}
		b2, err := back.CanonicalJSON()
		if err != nil || !bytes.Equal(b1, b2) {
			fail("canonical bytes unstable across a parse round trip")
			continue
		}

		p, err := optimizer.Build(sys.Graph, s.set, optimizer.Options{
			Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost,
		})
		if err != nil {
			fail("optimizer.Build failed: %v", err)
			continue
		}
		central := centralNodes(p)
		verdict := map[string]string{}
		for _, np := range cert.Nodes {
			verdict[np.Node] = np.Verdict
		}
		for _, n := range sys.Graph.QueryNodes() {
			q := n.QueryName
			v, ok := verdict[q]
			if !ok {
				fail("%s: certificate has no proof for the node", q)
				continue
			}
			partitioned := v == prove.VerdictPartitioned
			if partitioned == central[q] {
				fail("%s: certificate verdict %s but plan has central-process ops=%v", q, v, central[q])
			}
			if !s.set.IsEmpty() {
				if dist := core.Distributable(s.set, n); dist != partitioned {
					fail("%s: certificate verdict %s but Distributable(%s)=%v", q, v, s.set, dist)
				}
			}
		}
	}
}

// subtreeHasNeg reports whether n or any node feeding it carries an
// incompatibility diagnostic.
func subtreeHasNeg(n *plan.Node, neg map[string]bool) bool {
	if n.Kind != plan.KindSource && neg[n.QueryName] {
		return true
	}
	for _, in := range n.Inputs {
		if subtreeHasNeg(in, neg) {
			return true
		}
	}
	return false
}

// Canonical renders a run result in a plan-independent form: per query
// (in sorted name order) the row multiset in sorted rendering order,
// followed by the logical per-node row counts. Two runs of equivalent
// plans over the same trace must render identically; physical row
// order is deliberately erased (epoch flush interleaving and partition
// merge order are plan details, not query semantics).
func Canonical(res *qap.RunResult) string {
	var b strings.Builder
	for _, name := range res.OutputNames() {
		rows := make([]string, len(res.Outputs[name]))
		for i, t := range res.Outputs[name] {
			rows[i] = t.String()
		}
		sort.Strings(rows)
		fmt.Fprintf(&b, "== %s (%d rows)\n", name, len(rows))
		for _, row := range rows {
			b.WriteString(row)
			b.WriteByte('\n')
		}
	}
	names := make([]string, 0, len(res.NodeRows))
	for name := range res.NodeRows { //qap:allow maprange -- names collected then sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("== node rows\n")
	for _, name := range names {
		fmt.Fprintf(&b, "%s\t%d\n", name, res.NodeRows[name])
	}
	return b.String()
}

// firstDiff renders the first line where two canonical results
// disagree, with the line number for context.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  baseline: %s\n  variant:  %s\n", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: baseline %d lines, variant %d lines\n", len(w), len(g))
}
