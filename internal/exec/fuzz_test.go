package exec

import (
	"math"
	"testing"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// FuzzExprCompile cross-checks the column-compiled kernels against the
// row evaluator oracle. The fuzzer supplies an arbitrary GSQL
// expression source plus a data seed; the test parses it, compiles it
// with CompileCol over the canonical 5-column network schema, and then
// asserts the whitelist's soundness claim on a generated all-uint
// batch: wherever a kernel exists, its vector output must match the
// row closure value for value (and the row result must actually be
// KindUint — a kernel on an expression that can leave uint at runtime
// is exactly the bug class this fuzzer hunts). The generated data is
// biased toward overflow edges (0, 1, MaxUint64, 1<<63, shift counts
// near 64) so wraparound in +, *, <<, >> is exercised on every run.
//
// A second batch mixes NULLs and every value kind to fuzz the
// row↔column pivot itself: SetFromRows must round-trip each value
// through the validity bitmaps exactly, and AllUint must reject the
// batch so no kernel could legally touch it.
func FuzzExprCompile(f *testing.F) {
	for _, src := range []string{
		"srcIP + len * 2",
		"time / 60",
		"flags & 0x26 = 0x26",
		"srcIP = 1 AND (destIP = 2 OR len < 43)",
		"NOT flags",
		"~flags ^ srcIP",
		"srcIP << len",
		"len >> 1",
		"ABS(len) % 7",
		"#P# + time",
		"srcIP - destIP",
		"len / srcIP",
		"-srcIP",
		"1.5 * len",
	} {
		f.Add(src, uint64(0x9e3779b97f4a7c15), uint8(97))
	}
	f.Fuzz(func(t *testing.T, src string, seed uint64, nrows uint8) {
		e, err := gsql.ParseExpr(src)
		if err != nil {
			t.Skip()
		}
		params := Params{
			"P": sqlval.Uint(seed | 1),
			"F": sqlval.Float(1.5),
		}
		ce, err := CompileCol(e, colTestResolver, params)
		if err != nil {
			// CompileCol's error cases are exactly Compile's; an
			// unresolvable column or unknown function is not a bug.
			t.Skip()
		}
		n := int(nrows)%256 + 1
		rows := fuzzUintRows(seed, n)

		var cb ColBatch
		if !cb.SetFromRows(rows) {
			t.Fatalf("SetFromRows failed on an all-uint batch (n=%d)", n)
		}
		if !cb.AllUint() {
			t.Fatal("AllUint is false for a batch of pure uints")
		}
		if back := cb.AppendRows(nil); len(back) != n {
			t.Fatalf("pivot round-trip length %d, want %d", len(back), n)
		} else {
			for i, row := range back {
				for c, v := range row {
					if !sameValue(v, rows[i][c]) {
						t.Fatalf("pivot round-trip row %d col %d: %v != %v", i, c, v, rows[i][c])
					}
				}
			}
		}

		if ce.U != nil {
			v := ce.U(&cb)
			if len(v) != n {
				t.Fatalf("%q: uint kernel length %d, want %d", src, len(v), n)
			}
			for i, row := range rows {
				want := ce.Row(row)
				if want.Kind() != sqlval.KindUint {
					t.Fatalf("%q row %d: kernel exists but row eval is %v (%v), not uint — unsound whitelist",
						src, i, want, want.Kind())
				}
				if !sameValue(want, sqlval.Uint(v[i])) {
					t.Fatalf("%q row %d: kernel %d, row eval %v", src, i, v[i], want)
				}
				if ce.Const != nil && v[i] != *ce.Const {
					t.Fatalf("%q row %d: Const=%d but kernel yields %d", src, i, *ce.Const, v[i])
				}
			}
			// Scratch reuse must be deterministic: a second call over
			// the same batch yields the same vector.
			v2 := ce.U(&cb)
			for i := range v2 {
				if want := ce.Row(rows[i]); !sameValue(want, sqlval.Uint(v2[i])) {
					t.Fatalf("%q row %d: second kernel call drifted to %d (row eval %v)", src, i, v2[i], want)
				}
			}
		}
		if ce.Truth != nil {
			v := ce.Truth(&cb)
			if len(v) != n {
				t.Fatalf("%q: truth kernel length %d, want %d", src, len(v), n)
			}
			for i, row := range rows {
				want := ce.Row(row).AsBool()
				if (v[i] != 0) != want {
					t.Fatalf("%q row %d: truth kernel %d, row eval %v", src, i, v[i], want)
				}
			}
		}

		// Pivot fuzz: a batch mixing NULLs and every kind must
		// round-trip exactly and must never claim AllUint.
		mixed, hasNonUint := fuzzMixedRows(seed^0xabcd, n)
		var mb ColBatch
		if !mb.SetFromRows(mixed) {
			t.Fatalf("SetFromRows failed on mixed batch (n=%d)", n)
		}
		if hasNonUint && mb.AllUint() {
			t.Fatal("AllUint is true for a batch holding non-uint values")
		}
		for i, row := range mixed {
			for c, want := range row {
				if got := mb.Cols[c].Value(i); !sameValue(got, want) {
					t.Fatalf("mixed pivot row %d col %d: %v != %v", i, c, got, want)
				}
			}
		}
	})
}

// fuzzEdges is the value pool uint columns draw from: overflow and
// shift boundaries first, so arithmetic wraparound is the common case
// rather than a lottery win.
var fuzzEdges = [...]uint64{
	0, 1, 2, 62, 63, 64, 65, 0x3f, 0x26,
	1 << 31, 1 << 32, 1 << 63,
	math.MaxUint64, math.MaxUint64 - 1, math.MaxInt64,
}

// fuzzNext is splitmix64: a tiny deterministic PRNG so every fuzz
// input maps to one reproducible batch.
func fuzzNext(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fuzzUintRows builds n rows over the 5-column schema, half edge
// values, half raw PRNG output.
func fuzzUintRows(seed uint64, n int) Batch {
	s := seed
	b := make(Batch, 0, n)
	for i := 0; i < n; i++ {
		row := make(Tuple, 5)
		for c := range row {
			r := fuzzNext(&s)
			if r&1 == 0 {
				row[c] = sqlval.Uint(fuzzEdges[(r>>1)%uint64(len(fuzzEdges))])
			} else {
				row[c] = sqlval.Uint(r >> 1)
			}
		}
		b = append(b, row)
	}
	return b
}

// fuzzMixedRows builds n rows where each column commits to one value
// kind (SetFromRows rejects kind-mixing columns by contract) and
// sprinkles NULLs per cell, and reports whether any value is non-uint
// or NULL (forcing AllUint to reject the batch).
func fuzzMixedRows(seed uint64, n int) (Batch, bool) {
	s := seed
	kinds := make([]uint64, 5)
	for c := range kinds {
		kinds[c] = fuzzNext(&s) % 5
	}
	b := make(Batch, 0, n)
	nonUint := false
	for i := 0; i < n; i++ {
		row := make(Tuple, 5)
		for c := range row {
			r := fuzzNext(&s)
			if r%5 == 0 {
				row[c] = sqlval.Null
				nonUint = true
				continue
			}
			switch kinds[c] {
			case 0:
				row[c] = sqlval.Uint(r >> 3)
			case 1:
				row[c] = sqlval.Int(-int64(r >> 33))
				nonUint = true
			case 2:
				row[c] = sqlval.Float(float64(r>>40) / 8)
				nonUint = true
			case 3:
				row[c] = sqlval.Bool(r&8 != 0)
				nonUint = true
			default:
				row[c] = sqlval.Str(string(rune('a' + r%26)))
				nonUint = true
			}
		}
		b = append(b, row)
	}
	return b, nonUint
}
