package prove_test

import (
	"bytes"
	"testing"

	"qap"
	"qap/internal/prove"
)

// TestCertificateDeterminism re-proves the same workload from fresh
// loads and checks the canonical bytes never move: the certificate is
// a pure function of (plan, set), so bytes are identical across
// processes, -shuffle=on orders, and repeated runs.
func TestCertificateDeterminism(t *testing.T) {
	var want []byte
	for i := 0; i < 5; i++ {
		sys := load(t, figure1)
		cert := prove.Prove(sys.Graph, qap.MustParseSet("srcIP & 0xFFF0"))
		b, err := cert.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
			continue
		}
		if !bytes.Equal(b, want) {
			t.Fatalf("run %d produced different canonical bytes", i)
		}
	}
}

// TestCertificateDeterminismAcrossWorkers proves the analysis's
// chosen set after running the search at different worker counts: the
// search result is worker-invariant, so the certificate bytes must be
// too. This is the certificate leg of the repo-wide "byte-identical
// across workers/batch" contract (DESIGN.md §13).
func TestCertificateDeterminismAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		sys := load(t, figure1)
		opts := qap.DefaultSearchOptions()
		opts.Workers = workers
		analysis, err := sys.AnalyzeWith(nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		cert := prove.Prove(sys.Graph, analysis.Best)
		if err := prove.Verify(sys.Graph, cert); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := cert.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
			continue
		}
		if !bytes.Equal(b, want) {
			t.Fatalf("workers=%d produced different canonical bytes", workers)
		}
	}
}
