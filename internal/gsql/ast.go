package gsql

import (
	"fmt"
	"strings"
)

// Expr is a GSQL scalar or aggregate expression.
type Expr interface {
	isExpr()
	String() string
}

// ColumnRef is a (possibly qualified) column reference: name or
// qualifier.name.
type ColumnRef struct {
	Qualifier string // table alias or stream/query name; "" if unqualified
	Name      string
}

// NumberLit is an integer or floating-point literal.
type NumberLit struct {
	IsFloat bool
	U       uint64  // integer payload
	F       float64 // float payload
	Text    string  // original spelling (preserves hex)
}

// StringLit is a quoted string literal.
type StringLit struct{ S string }

// ParamRef is a #NAME# placeholder bound at plan time.
type ParamRef struct{ Name string }

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	OpNeg UnaryOp = iota // -x
	OpBitNot
	OpNot
)

// Unary applies a unary operator.
type Unary struct {
	Op UnaryOp
	X  Expr
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators, grouped by precedence class.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpBitOr
	OpBitXor
	OpBitAnd
	OpShl
	OpShr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// FuncCall is a function invocation; Star marks COUNT(*).
type FuncCall struct {
	Name string
	Star bool
	Args []Expr
}

func (*ColumnRef) isExpr() {}
func (*NumberLit) isExpr() {}
func (*StringLit) isExpr() {}
func (*ParamRef) isExpr()  {}
func (*Unary) isExpr()     {}
func (*Binary) isExpr()    {}
func (*FuncCall) isExpr()  {}

// String renders the reference as written.
func (e *ColumnRef) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// String renders the literal with its original spelling when known.
func (e *NumberLit) String() string {
	if e.Text != "" {
		return e.Text
	}
	if e.IsFloat {
		return fmt.Sprintf("%g", e.F)
	}
	return fmt.Sprintf("%d", e.U)
}

// String renders the literal single-quoted, escaping the characters
// the lexer's escape handling understands.
func (e *StringLit) String() string {
	var b strings.Builder
	b.WriteByte('\'')
	for i := 0; i < len(e.S); i++ {
		switch c := e.S[i]; c {
		case '\'':
			b.WriteString(`\'`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

// String renders the parameter placeholder.
func (e *ParamRef) String() string { return "#" + e.Name + "#" }

// String renders the unary expression. Non-primary operands are
// parenthesized: "-(-x)" must not print as "--x" (a comment), and
// "-(NOT x)" is not parseable without the parentheses.
func (e *Unary) String() string {
	var op string
	switch e.Op {
	case OpNeg:
		op = "-"
	case OpBitNot:
		op = "~"
	case OpNot:
		op = "NOT "
	}
	x := e.X.String()
	switch e.X.(type) {
	case *Binary, *Unary:
		x = "(" + x + ")"
	}
	return op + x
}

// OpText returns the surface syntax of a binary operator.
func (op BinOp) OpText() string {
	switch op {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBitOr:
		return "|"
	case OpBitXor:
		return "^"
	case OpBitAnd:
		return "&"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Precedence returns the binding strength of the operator; higher
// binds tighter. Mirrors the parser's precedence ladder.
func (op BinOp) Precedence() int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
		return 4
	case OpBitOr, OpBitXor:
		return 5
	case OpBitAnd:
		return 6
	case OpShl, OpShr:
		return 7
	case OpAdd, OpSub:
		return 8
	case OpMul, OpDiv, OpMod:
		return 9
	default:
		return 0
	}
}

// IsComparison reports whether the operator is one of the six
// (non-associative) comparison operators.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// String renders the binary expression with minimal parentheses.
// Comparisons are non-associative, so a comparison child of a
// comparison parent is parenthesized on either side; a NOT operand of
// anything binding tighter than NOT itself (precedence 3) needs
// parentheses too, since the grammar only admits NOT above the
// comparison level.
func (e *Binary) String() string {
	wrapChild := func(child Expr, left bool) string {
		s := child.String()
		switch c := child.(type) {
		case *Binary:
			if c.Op.Precedence() < e.Op.Precedence() ||
				(!left && c.Op.Precedence() == e.Op.Precedence()) ||
				(c.Op.IsComparison() && e.Op.IsComparison()) {
				return "(" + s + ")"
			}
		case *Unary:
			if c.Op == OpNot && e.Op.Precedence() > 2 {
				return "(" + s + ")"
			}
		}
		return s
	}
	return wrapChild(e.L, true) + " " + e.Op.OpText() + " " + wrapChild(e.R, false)
}

// String renders the call.
func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

func parenthesize(e Expr) string {
	if b, ok := e.(*Binary); ok {
		return "(" + b.String() + ")"
	}
	return e.String()
}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Expr  Expr
	Alias string // "" if none
	Pos   Pos    // position of the item's first token
}

// String renders the item.
func (s SelectItem) String() string {
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// JoinType enumerates join kinds.
type JoinType uint8

// Join kinds. JoinNone means a single-input FROM.
const (
	JoinNone JoinType = iota
	JoinInner
	JoinLeftOuter
	JoinRightOuter
	JoinFullOuter
)

// String returns the SQL keywords for the join type.
func (j JoinType) String() string {
	switch j {
	case JoinNone:
		return ""
	case JoinInner:
		return "JOIN"
	case JoinLeftOuter:
		return "LEFT OUTER JOIN"
	case JoinRightOuter:
		return "RIGHT OUTER JOIN"
	case JoinFullOuter:
		return "FULL OUTER JOIN"
	default:
		return fmt.Sprintf("join(%d)", uint8(j))
	}
}

// TableRef names a source stream or an upstream query, optionally
// aliased.
type TableRef struct {
	Name  string
	Alias string
	Pos   Pos // position of the referenced name
}

// Binding returns the name other clauses use to refer to this input.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// String renders the reference.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// FromClause is the FROM part: one input, or a two-way join. Following
// the paper, join predicates normally live in WHERE; On holds an
// explicit ON condition when given.
type FromClause struct {
	Left  TableRef
	Join  JoinType
	Right TableRef // valid when Join != JoinNone
	On    Expr     // optional explicit ON condition
}

// GroupItem is one GROUP BY term, optionally aliased so the select
// list can reference it (GROUP BY time/60 AS tb).
type GroupItem struct {
	Expr  Expr
	Alias string
	Pos   Pos // position of the term's first token
}

// String renders the item.
func (g GroupItem) String() string {
	if g.Alias != "" {
		return g.Expr.String() + " AS " + g.Alias
	}
	return g.Expr.String()
}

// SelectStmt is a single GSQL SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    FromClause
	Where   Expr // nil if absent
	GroupBy []GroupItem
	Having  Expr // nil if absent
	// WindowPanes > 1 turns the aggregation into a pane-based sliding
	// window: the temporal GROUP BY term defines the pane, and each
	// result covers the WindowPanes most recent panes, sliding by one
	// pane (Li et al.'s evaluation strategy, paper Section 3.1).
	WindowPanes uint64
	// Clause positions: Pos is the SELECT keyword; the others are the
	// corresponding clause keywords, zero when the clause is absent.
	Pos       Pos
	WherePos  Pos
	GroupPos  Pos
	HavingPos Pos
	WindowPos Pos
}

// String pretty-prints the statement on multiple lines.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString("\nFROM ")
	b.WriteString(s.From.Left.String())
	if s.From.Join != JoinNone {
		b.WriteByte(' ')
		b.WriteString(s.From.Join.String())
		b.WriteByte(' ')
		b.WriteString(s.From.Right.String())
		if s.From.On != nil {
			b.WriteString(" ON ")
			b.WriteString(s.From.On.String())
		}
	}
	if s.Where != nil {
		b.WriteString("\nWHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString("\nGROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString("\nHAVING ")
		b.WriteString(s.Having.String())
	}
	if s.WindowPanes > 1 {
		fmt.Fprintf(&b, "\nWINDOW %d", s.WindowPanes)
	}
	return b.String()
}

// Query is a named statement within a query set.
type Query struct {
	Name string
	Stmt *SelectStmt
	// Pos is the position of the query's name token, or of the SELECT
	// keyword for anonymous queries.
	Pos Pos
}

// QuerySet is an ordered collection of named queries; later queries may
// read the outputs of earlier ones by name.
type QuerySet struct {
	Queries []*Query
}

// Lookup finds a query by case-insensitive name.
func (qs *QuerySet) Lookup(name string) (*Query, bool) {
	for _, q := range qs.Queries {
		if strings.EqualFold(q.Name, name) {
			return q, true
		}
	}
	return nil, false
}

// String renders the whole set in the paper's "query NAME: ..." form.
func (qs *QuerySet) String() string {
	var b strings.Builder
	for i, q := range qs.Queries {
		if i > 0 {
			b.WriteString("\n\n")
		}
		fmt.Fprintf(&b, "query %s:\n%s", q.Name, q.Stmt)
	}
	return b.String()
}

// WalkExpr calls fn for e and every sub-expression, pre-order. fn
// returning false prunes descent into that node's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		WalkExpr(x.X, fn)
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	}
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		c := *x
		return &c
	case *NumberLit:
		c := *x
		return &c
	case *StringLit:
		c := *x
		return &c
	case *ParamRef:
		c := *x
		return &c
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncCall{Name: x.Name, Star: x.Star, Args: args}
	default:
		panic(fmt.Sprintf("gsql: CloneExpr: unknown expression type %T", e))
	}
}

// EqualExpr reports structural equality of two expressions, with
// case-insensitive identifier and function-name comparison.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *ColumnRef:
		y, ok := b.(*ColumnRef)
		return ok && strings.EqualFold(x.Qualifier, y.Qualifier) && strings.EqualFold(x.Name, y.Name)
	case *NumberLit:
		y, ok := b.(*NumberLit)
		if !ok || x.IsFloat != y.IsFloat {
			return false
		}
		if x.IsFloat {
			return x.F == y.F
		}
		return x.U == y.U
	case *StringLit:
		y, ok := b.(*StringLit)
		return ok && x.S == y.S
	case *ParamRef:
		y, ok := b.(*ParamRef)
		return ok && strings.EqualFold(x.Name, y.Name)
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && EqualExpr(x.X, y.X)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *FuncCall:
		y, ok := b.(*FuncCall)
		if !ok || !strings.EqualFold(x.Name, y.Name) || x.Star != y.Star || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
