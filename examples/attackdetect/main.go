// Attack detection (paper Section 6.1): find flows that do not follow
// the TCP protocol — their OR-ed flags match an attack pattern — using
// a HAVING clause over a flow aggregation. The example contrasts the
// query-agnostic (round robin) deployment with the query-aware one on
// the same trace: only the partitioned plan can evaluate the HAVING
// clause at the leaves and ship nothing but actual attack flows.
package main

import (
	"fmt"
	"log"

	"qap"
)

const query = `
query suspicious:
SELECT tb, srcIP, destIP, srcPort, destPort,
       OR_AGGR(flags) AS orflag, COUNT(*) AS cnt, SUM(len) AS bytes
FROM TCP
GROUP BY time/60 AS tb, srcIP, destIP, srcPort, destPort
HAVING OR_AGGR(flags) = #PATTERN#
`

func main() {
	sys, err := qap.Load(qap.TCPSchemaDDL, query)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := sys.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzer recommends partitioning on %s\n\n", analysis.Best)

	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 180
	cfg.AttackFraction = 0.05 // the paper's trace had ~5% suspicious flows
	trace := qap.GenerateTrace(cfg)
	fmt.Printf("trace: %d packets, %d/%d flows suspicious\n\n",
		len(trace.Packets), trace.AttackFlows, trace.TotalFlows)

	params := map[string]qap.Value{"PATTERN": qap.Uint(qap.AttackPattern)}
	run := func(name string, ps qap.Set) {
		dep, err := sys.Deploy(qap.DeployConfig{
			Hosts:        4,
			Partitioning: ps,
			Params:       params,
			Costs:        qap.CostConfig{CapacityPerSec: float64(cfg.PacketsPerSec) * 3},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Run("TCP", trace.Packets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %5d attack flows found, aggregator: cpu %5.1f%%  net %7.0f tuples/sec\n",
			name, len(res.Outputs["suspicious"]), res.Metrics.CPULoad(0), res.Metrics.NetLoad(0))
	}
	run("round robin:", nil)
	run("query-aware:", analysis.Best)

	// Show a few detections from the query-aware run.
	dep, err := sys.Deploy(qap.DeployConfig{Hosts: 4, Partitioning: analysis.Best, Params: params})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Run("TCP", trace.Packets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample detections (epoch, src, dst, sport, dport, flags, pkts, bytes):")
	for i, r := range res.Outputs["suspicious"] {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", r)
	}
}
