package prove_test

import (
	"bytes"
	"testing"

	"qap"
	"qap/internal/prove"
)

// TestVerifyRejectsCorrupted tampers with a valid certificate in one
// targeted way per case and checks the verifier (or the strict
// parser) rejects every mutation.
func TestVerifyRejectsCorrupted(t *testing.T) {
	sys := load(t, figure1)
	fresh := func() *prove.Certificate {
		return prove.Prove(sys.Graph, qap.MustParseSet("srcIP & 0xFFF0"))
	}
	if err := prove.Verify(sys.Graph, fresh()); err != nil {
		t.Fatalf("baseline certificate rejected: %v", err)
	}

	cases := []struct {
		name   string
		set    string // baseline set; default "srcIP & 0xFFF0"
		mutate func(c *prove.Certificate)
	}{
		{"verdict flipped to partitioned", "destIP", func(c *prove.Certificate) {
			// flow_pairs centralizes under destIP (its join key is
			// srcIP); forging the verdict must not survive.
			c.Nodes[2].Verdict = prove.VerdictPartitioned
		}},
		{"verdict flipped to centralize", "", func(c *prove.Certificate) {
			c.Nodes[0].Verdict = prove.VerdictCentralize
		}},
		{"rule renamed", "", func(c *prove.Certificate) {
			c.Nodes[0].Steps[0].Rule = prove.RuleJoinRequires
		}},
		{"unregistered rule", "", func(c *prove.Certificate) {
			c.Nodes[0].Steps[0].Rule = "group-requires-v2"
		}},
		{"step dropped", "", func(c *prove.Certificate) {
			c.Nodes[0].Steps = c.Nodes[0].Steps[1:]
		}},
		{"step duplicated", "", func(c *prove.Certificate) {
			st := c.Nodes[0].Steps[0]
			c.Nodes[0].Steps = append([]prove.Step{st}, c.Nodes[0].Steps...)
		}},
		{"lineage element forged", "", func(c *prove.Certificate) {
			// flows' first group term traces to time/60, not destIP.
			c.Nodes[0].Steps[0].Elem = "destIP"
		}},
		{"covers target forged", "", func(c *prove.Certificate) {
			for i := range c.Nodes[0].Steps {
				st := &c.Nodes[0].Steps[i]
				if st.Rule == prove.RuleCovers {
					st.Of = "destIP"
					return
				}
			}
			panic("no covers step")
		}},
		{"conclusion edited", "", func(c *prove.Certificate) {
			c.Nodes[0].Steps[0].Concl = "requires destIP"
		}},
		{"premise redirected", "", func(c *prove.Certificate) {
			for i := range c.Nodes[0].Steps {
				st := &c.Nodes[0].Steps[i]
				if st.Rule == prove.RuleScope {
					st.Premises = st.Premises[:1]
					return
				}
			}
			panic("no scope step")
		}},
		{"section edited", "", func(c *prove.Certificate) {
			c.Nodes[0].Steps[0].Section = "9.9"
		}},
		{"code edited", "", func(c *prove.Certificate) {
			c.Nodes[0].Steps[0].Code = "QAP003"
		}},
		{"set rewritten", "", func(c *prove.Certificate) {
			c.Set = "(destIP)"
		}},
		{"set non-canonical", "", func(c *prove.Certificate) {
			c.Set = "(srcIP&0xFFF0)"
		}},
		{"fingerprint rewritten", "", func(c *prove.Certificate) {
			c.Fingerprint = "0000000000000000000000000000dead"
		}},
		{"nodes reordered", "", func(c *prove.Certificate) {
			c.Nodes[0], c.Nodes[1] = c.Nodes[1], c.Nodes[0]
		}},
		{"node proof dropped", "", func(c *prove.Certificate) {
			c.Nodes = c.Nodes[:len(c.Nodes)-1]
		}},
		{"deps forged on verdict", "", func(c *prove.Certificate) {
			last := len(c.Nodes[0].Steps) - 1
			c.Nodes[0].Steps[last].Deps = []string{"flows"}
		}},
	}
	for _, tc := range cases {
		c := fresh()
		if tc.set != "" {
			c = prove.Prove(sys.Graph, qap.MustParseSet(tc.set))
		}
		tc.mutate(c)
		if err := prove.Verify(sys.Graph, c); err == nil {
			t.Errorf("%s: verifier accepted the tampered certificate", tc.name)
		}
	}
}

// TestVerifyRejectsSplicedProof grafts a node proof proven under one
// set into a certificate for another: the coverage side conditions
// must catch it.
func TestVerifyRejectsSplicedProof(t *testing.T) {
	sys := load(t, figure1)
	src := prove.Prove(sys.Graph, qap.MustParseSet("srcIP"))
	dst := prove.Prove(sys.Graph, qap.MustParseSet("destIP"))
	// heavy_flows is partitioned under srcIP but centralizes under
	// destIP; splice the favorable proof in.
	dst.Nodes[1] = src.Nodes[1]
	if err := prove.Verify(sys.Graph, dst); err == nil {
		t.Error("verifier accepted a node proof spliced from another set's certificate")
	}
}

// TestParseRejectsMalformed covers the strict-decode surface.
func TestParseRejectsMalformed(t *testing.T) {
	sys := load(t, figure1)
	cert := prove.Prove(sys.Graph, qap.MustParseSet("srcIP"))
	b, err := cert.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"unknown field":    append(bytes.TrimRight(bytes.TrimRight(b, "\n"), "}"), []byte(`,"extra":1}`)...),
		"trailing garbage": append(append([]byte{}, b...), []byte("junk")...),
		"trailing json":    append(append([]byte{}, b...), []byte("{}")...),
		"wrong version":    bytes.Replace(b, []byte(`"version":1`), []byte(`"version":2`), 1),
		"not json":         []byte("certificate"),
		"empty":            nil,
	}
	for name, input := range bad {
		if _, err := prove.ParseCertificate(input); err == nil {
			t.Errorf("%s: ParseCertificate accepted it", name)
		}
	}
}
