// Sliding windows via panes (Li et al., adopted by the paper's
// Section 3.1): a 60-second window sliding every 10 seconds over flow
// statistics, lowered to per-pane sub-aggregates plus a window merge.
// Under the compatible partitioning the whole chain runs per
// partition; the example also demonstrates the Section 3.5.1 rule that
// a sliding window must never be partitioned on a temporal expression
// (the group-to-processor allocation cannot change mid-window).
package main

import (
	"fmt"
	"log"

	"qap"
)

const queries = `
query flow_rates:
SELECT pane, srcIP, destIP,
       COUNT(*) AS pkts, SUM(len) AS bytes, AVG(len) AS avg_len
FROM TCP
GROUP BY time/10 AS pane, srcIP, destIP
WINDOW 6
`

func main() {
	sys, err := qap.Load(qap.TCPSchemaDDL, queries)
	if err != nil {
		log.Fatal(err)
	}

	analysis, err := sys.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended partitioning: %s\n", analysis.Best)

	// Section 3.5.1: the temporal pane expression is rejected for
	// sliding windows even though it would be accepted for the same
	// query without WINDOW.
	if ok, _ := sys.Compatible(qap.MustParseSet("time/10, srcIP, destIP"), "flow_rates"); ok {
		log.Fatal("temporal partitioning must be incompatible with a sliding window")
	}
	fmt.Println("temporal element (time/10) correctly rejected for the window")

	dep, err := sys.Deploy(qap.DeployConfig{
		Hosts:        4,
		Partitioning: analysis.Best,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 120
	trace := qap.GenerateTrace(cfg)
	res, err := dep.Run("TCP", trace.Packets)
	if err != nil {
		log.Fatal(err)
	}

	rows := res.Outputs["flow_rates"]
	fmt.Printf("\n%d sliding-window rows (each covers 6 panes = 60s, sliding by 10s)\n", len(rows))
	fmt.Println("sample (window-end pane, src, dst, pkts, bytes, avg_len):")
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", r)
	}
	// The same flow appears in up to 6 consecutive windows.
	seen := map[string]int{}
	for _, r := range rows {
		seen[r[1].String()+"->"+r[2].String()]++
	}
	maxWindows := 0
	for _, n := range seen { //qap:allow maprange -- max over values, order-insensitive
		if n > maxWindows {
			maxWindows = n
		}
	}
	fmt.Printf("\nbusiest flow appears in %d overlapping windows\n", maxWindows)
}
