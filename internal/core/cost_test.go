package core

import (
	"strings"
	"testing"

	"qap/internal/plan"
	"qap/internal/schema"
)

func TestStaticStatsDefaultsAndOverrides(t *testing.T) {
	s := NewStaticStats()
	if s.StreamTupleRate("TCP") != 100000 {
		t.Errorf("default rate = %f", s.StreamTupleRate("TCP"))
	}
	s.SetRate("TCP", 5000)
	if s.StreamTupleRate("tcp") != 5000 {
		t.Error("SetRate should be case-insensitive")
	}
	g := buildGraph(t, tcpDDL, complexSet)
	flows, _ := g.Node("flows")
	fp, _ := g.Node("flow_pairs")
	// Heuristics: aggregation 0.1, join 0.2.
	if got := s.Selectivity(flows); got != 0.1 {
		t.Errorf("aggregation selectivity = %f", got)
	}
	if got := s.Selectivity(fp); got != 0.2 {
		t.Errorf("join selectivity = %f", got)
	}
	s.SetSelectivity("flows", 0.42)
	if got := s.Selectivity(flows); got != 0.42 {
		t.Errorf("override lost: %f", got)
	}
	// HAVING halves the aggregation heuristic; filters pass 30%.
	g2 := buildGraph(t, tcpDDL, `
query h: SELECT tb, srcIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, srcIP HAVING COUNT(*) > 5
query f: SELECT time, srcIP FROM TCP WHERE destPort = 80
query p: SELECT time, srcIP FROM TCP`)
	h, _ := g2.Node("h")
	f, _ := g2.Node("f")
	p, _ := g2.Node("p")
	if s.Selectivity(h) != 0.05 || s.Selectivity(f) != 0.3 || s.Selectivity(p) != 1.0 {
		t.Errorf("heuristics = %f %f %f", s.Selectivity(h), s.Selectivity(f), s.Selectivity(p))
	}
}

func TestTupleSizeAccounting(t *testing.T) {
	cols := []plan.ColDef{
		{Name: "a", Type: schema.TUint},
		{Name: "s", Type: schema.TString},
	}
	// 8 header + 9 numeric + 24 string.
	if got := TupleSize(cols); got != 41 {
		t.Errorf("TupleSize = %f", got)
	}
}

func TestRatesComposeThroughDAG(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	stats := NewStaticStats()
	stats.SetRate("TCP", 1000)
	stats.SetSelectivity("flows", 0.1)
	stats.SetSelectivity("heavy_flows", 0.5)
	stats.SetSelectivity("flow_pairs", 0.25)
	cm := NewCostModel(g, stats)
	flows, _ := g.Node("flows")
	hf, _ := g.Node("heavy_flows")
	fp, _ := g.Node("flow_pairs")
	if got := cm.OutputTupleRate(flows); got != 100 {
		t.Errorf("flows rate = %f", got)
	}
	if got := cm.OutputTupleRate(hf); got != 50 {
		t.Errorf("heavy_flows rate = %f", got)
	}
	// Self-join input counts the producer once per side: 100 in.
	if got := cm.OutputTupleRate(fp); got != 25 {
		t.Errorf("flow_pairs rate = %f", got)
	}
	// Byte rates scale by tuple size.
	if cm.OutputByteRate(flows) <= cm.OutputTupleRate(flows) {
		t.Error("byte rate must exceed tuple rate")
	}
	if cm.InputByteRate(hf) != cm.OutputByteRate(flows) {
		t.Error("input rate should equal the child's output rate")
	}
}

func TestNodeCostStates(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	cm := NewCostModel(g, nil)
	flows, _ := g.Node("flows")
	hf, _ := g.Node("heavy_flows")
	fp, _ := g.Node("flow_pairs")
	full := MustParseSet("srcIP")
	// Fully distributable chain: inner nodes are free, only the root
	// ships its output.
	if cm.NodeCost(flows, full) != 0 || cm.NodeCost(hf, full) != 0 {
		t.Error("inner compatible nodes should cost 0")
	}
	if cm.NodeCost(fp, full) != cm.OutputByteRate(fp) {
		t.Error("root ships its output")
	}
	// Partial: heavy_flows centralizes and pays flows' output; the
	// join reads locally at the center (cost 0).
	partial := MustParseSet("srcIP, destIP")
	if cm.NodeCost(hf, partial) != cm.OutputByteRate(flows) {
		t.Error("central node pays its distributed child's output")
	}
	if cm.NodeCost(fp, partial) != 0 {
		t.Error("central node with central children is local")
	}
	// Sources are free.
	src := g.Sources()[0]
	if cm.NodeCost(src, full) != 0 {
		t.Error("sources cost nothing")
	}
}

func TestRequirementsMapAndSummaryPerNode(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet+`

query passthru:
SELECT time, srcIP FROM TCP`)
	reqs := Requirements(g)
	found := 0
	for n, r := range reqs {
		switch n.QueryName {
		case "passthru":
			if !r.Universal {
				t.Error("select/project must be universal")
			}
			found++
		case "flows":
			if r.Universal || r.Set.IsEmpty() {
				t.Error("flows must be constrained")
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("requirements missing entries: %d", found)
	}
	res, err := Optimize(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary(), "compatible with any partitioning") {
		t.Error("summary should call out universal queries")
	}
}
